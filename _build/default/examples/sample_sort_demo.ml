(* Paper Figure 1 / Section 3: sample sort turns sorting into an
   (almost) divisible load.

   Runs a real sample sort, shows the three phases and their costs, the
   bucket-size concentration, and the heterogeneous variant of §3.2.

   Run:  dune exec examples/sample_sort_demo.exe *)

let () =
  let n = 400_000 and p = 8 in
  let rng = Core.Rng.create ~seed:7 () in
  let keys = Array.init n (fun _ -> Core.Rng.float rng) in
  let s = Core.Sample_sort.default_oversampling ~n in
  Printf.printf "Sorting N = %d keys on p = %d workers, oversampling s = %d\n\n" n p s;

  (* Phase 1: splitters from an oversampled random sample. *)
  let splitters = Core.Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p ~s in
  Printf.printf "Phase 1 - splitters (p-1 = %d):\n  " (Array.length splitters);
  Array.iter (fun x -> Printf.printf "%.3f " x) splitters;

  (* Phase 2: bucket the keys. *)
  let buckets = Core.Sample_sort.partition ~cmp:Float.compare keys ~splitters in
  let sizes = Array.map Array.length buckets.Core.Sample_sort.contents in
  Printf.printf "\n\nPhase 2 - bucket sizes (ideal %d each):\n  " (n / p);
  Array.iter (Printf.printf "%d ") sizes;
  Printf.printf "\n  max/avg ratio %.4f, w.h.p. envelope %.4f\n"
    (Core.Sample_sort.max_bucket_ratio buckets)
    (Core.Sample_sort.theoretical_envelope ~n);

  (* Phase 3: local sorts (executed for real). *)
  Array.iter (Array.sort Float.compare) buckets.Core.Sample_sort.contents;
  let sorted = Array.concat (Array.to_list buckets.Core.Sample_sort.contents) in
  let ok = ref true in
  for i = 0 to n - 2 do
    if sorted.(i) > sorted.(i + 1) then ok := false
  done;
  Printf.printf "\nPhase 3 - local sorts done; output fully sorted: %b\n" !ok;

  (* Timing model on a homogeneous platform. *)
  let star = Core.Star.of_speeds (List.init p (fun _ -> 1.)) in
  let timing = Core.Sort_model.evaluate star ~bucket_sizes:sizes ~s in
  Printf.printf "\nTiming model (comparison units):\n";
  Printf.printf "  phase 1 (master):      %12.0f\n" timing.Core.Sort_model.phase1;
  Printf.printf "  phase 2 (master):      %12.0f\n" timing.Core.Sort_model.phase2;
  Printf.printf "  phase 3 (parallel):    %12.0f\n" timing.Core.Sort_model.phase3;
  Printf.printf "  sequential reference:  %12.0f\n" timing.Core.Sort_model.sequential;
  Printf.printf "  speedup %.2f (of %d ideal); divisible fraction %.4f (1 - log p/log N = %.4f)\n"
    timing.Core.Sort_model.speedup p timing.Core.Sort_model.divisible_fraction
    (1. -. (log (float_of_int p) /. log (float_of_int n)));

  (* Heterogeneous splitters (§3.2). *)
  let het = Core.Star.of_speeds [ 1.; 1.; 2.; 2.; 4.; 4.; 8.; 8. ] in
  let result = Core.Hetero_sort.run rng het ~keys in
  Printf.printf "\nHeterogeneous platform (speeds 1,1,2,2,4,4,8,8) - bucket sizes:\n  ";
  Array.iter (Printf.printf "%d ") result.Core.Hetero_sort.bucket_sizes;
  Printf.printf "\n  local sort times (should be nearly equal):\n  ";
  Array.iter (fun t -> Printf.printf "%.0f " t) result.Core.Hetero_sort.times;
  Printf.printf "\n  imbalance e = %.4f\n" result.Core.Hetero_sort.imbalance
