(* The discrete-event substrate, process style: the one-port
   master-worker protocol of Section 1.2 written as straight-line
   code with OCaml 5 effect handlers.

   Each worker process acquires the master's port (a capacity-1
   resource), receives its share, releases the port and computes.  The
   simulated finish times land exactly on the closed-form equal-finish
   makespan — the analytic schedule and the executable system agree.

   Run:  dune exec examples/process_simulation.exe *)

module Process = Des.Process

let () =
  let star = Core.Star.of_speeds ~bandwidth:2. [ 1.; 1.5; 3.; 6. ] in
  let total = 120. in
  let allocation = Core.Linear_dlt.one_port_allocation star ~total in
  let order = Core.Linear_dlt.one_port_order star in

  Format.printf "Platform:@.%a@." Core.Star.pp star;
  Printf.printf "One-port shares of %.0f units: " total;
  Array.iter (fun n -> Printf.printf "%.2f " n) allocation;
  Printf.printf "\nAnalytic makespan: %.4f\n\n"
    (Core.Linear_dlt.one_port_makespan star ~total);

  let world = Process.create () in
  let port = Process.resource world ~capacity:1 in
  let trace = Des.Trace.create () in

  Array.iter
    (fun i ->
      let proc = Core.Star.worker star i in
      let name = Printf.sprintf "P%d" proc.Core.Processor.id in
      Process.spawn world (fun () ->
          Process.with_resource port (fun () ->
              let t0 = Process.now world in
              Process.wait (Core.Processor.transfer_time proc ~data:allocation.(i));
              Des.Trace.record trace ~resource:("link-" ^ name) ~start:t0
                ~finish:(Process.now world) ~label:"c");
          let t1 = Process.now world in
          Process.wait (Core.Processor.compute_time proc ~work:allocation.(i));
          Des.Trace.record trace ~resource:name ~start:t1 ~finish:(Process.now world)
            ~label:"x";
          Printf.printf "%s done at t = %.4f\n" name (Process.now world)))
    order;

  Process.run world;

  Printf.printf "\nGantt (c = receiving, x = computing):\n\n%s"
    (Des.Trace.render_gantt ~width:60 trace);
  Printf.printf "\nSimulated makespan %.4f = closed form %.4f\n"
    (Des.Trace.makespan trace)
    (Core.Linear_dlt.one_port_makespan star ~total)
