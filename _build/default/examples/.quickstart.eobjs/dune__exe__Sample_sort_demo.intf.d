examples/sample_sort_demo.mli:
