examples/hierarchical_platform.mli:
