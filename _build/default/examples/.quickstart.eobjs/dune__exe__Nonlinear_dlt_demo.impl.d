examples/nonlinear_dlt_demo.ml: Array Core Format List Printf
