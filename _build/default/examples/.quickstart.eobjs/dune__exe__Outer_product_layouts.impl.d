examples/outer_product_layouts.ml: Array Core Format Printf
