examples/applications.ml: Array Core Format Printf
