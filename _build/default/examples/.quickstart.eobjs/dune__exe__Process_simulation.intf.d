examples/process_simulation.mli:
