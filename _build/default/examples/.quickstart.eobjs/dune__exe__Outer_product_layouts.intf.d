examples/outer_product_layouts.mli:
