examples/hierarchical_platform.ml: Array Core Format List Printf String
