examples/applications.mli:
