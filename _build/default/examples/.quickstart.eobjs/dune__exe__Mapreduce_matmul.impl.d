examples/mapreduce_matmul.ml: Array Core Float List Printf
