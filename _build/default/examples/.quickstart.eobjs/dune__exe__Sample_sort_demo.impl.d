examples/sample_sort_demo.ml: Array Core Float List Printf
