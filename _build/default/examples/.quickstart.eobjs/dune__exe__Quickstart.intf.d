examples/quickstart.mli:
