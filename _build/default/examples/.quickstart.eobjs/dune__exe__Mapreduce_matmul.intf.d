examples/mapreduce_matmul.mli:
