examples/nonlinear_dlt_demo.mli:
