examples/process_simulation.ml: Array Core Des Format Printf
