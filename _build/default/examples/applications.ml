(* The classical divisible-load applications of §1.1, end to end:
   image filtering, database scanning, video streaming.

   These are the workloads where DLT *does* deliver — cost linear in
   the data — in contrast to the N^alpha workloads of the rest of the
   paper.

   Run:  dune exec examples/applications.exe *)

let () =
  let rng = Core.Rng.create ~seed:2013 () in
  let star = Core.Profiles.generate ~bandwidth:50. rng ~p:6 Core.Profiles.paper_uniform in
  Format.printf "Platform:@.%a@." Core.Star.pp star;

  (* 1. Image filtering. *)
  let image = Core.Matrix.random rng ~rows:480 ~cols:640 in
  let d = Core.Image.distribute star image ~kernel:(Core.Image.box_blur 5) in
  Printf.printf "\n1. Image filter (480x640, 5x5 blur), DLT row bands:\n";
  Printf.printf "   bands (rows): ";
  Array.iter (fun (_, rows) -> Printf.printf "%d " rows) d.Core.Image.bands;
  Printf.printf "\n   halo overhead: %d rows (%.2f%% extra communication)\n"
    d.Core.Image.halo_rows
    (100. *. (d.Core.Image.communication /. (480. *. 640.) -. 1.));
  Printf.printf "   makespan %.1f vs %.1f sequential on the fastest worker\n"
    d.Core.Image.makespan
    (480. *. 640. /. (Core.Star.fastest star).Core.Processor.speed);

  (* 2. Database scan. *)
  let records = Core.Database.generate rng ~rows:200_000 ~groups:16 in
  let query =
    Core.Database.sum_where ~name:"sum(value) where group < 4"
      (fun r -> r.Core.Database.group < 4)
      (fun r -> r.Core.Database.value)
  in
  let execution = Core.Database.distributed_scan star query records in
  Printf.printf "\n2. Database scan (200k records, one-port DLT):\n";
  Printf.printf "   answer %.1f (sequential %.1f), makespan %.1f, speedup %.2f\n"
    execution.Core.Database.answer
    (Core.Database.scan query records)
    execution.Core.Database.makespan execution.Core.Database.speedup;

  (* 3. Video stream. *)
  let frame_size = 100. and frame_cost = 40. in
  Printf.printf "\n3. Video stream (frames: %.0f data units, %.0f work units):\n" frame_size
    frame_cost;
  Printf.printf "   sustainable rate %.3f frames/time (one-port steady state)\n"
    (Core.Stream.sustainable_fps star ~frame_size ~frame_cost);
  Printf.printf "   burst of 1000 frames: pipelining gain %.2fx over single-shot dispatch\n"
    (Core.Stream.pipeline_gain star ~frames:1000 ~frame_size ~frame_cost)
