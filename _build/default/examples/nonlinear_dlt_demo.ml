(* Paper §2 hands-on: scheduling an N^alpha load as a divisible task.

   Solves the optimal single-round allocation on a heterogeneous star
   (the problem of Hung & Robertazzi / Suresh et al.), prints the
   schedule, and shows why the whole exercise is futile for large p:
   the round performs a vanishing fraction of the total work.

   Run:  dune exec examples/nonlinear_dlt_demo.exe *)

let () =
  let alpha = 2. in
  let cost = Core.Cost_model.of_alpha alpha in
  let star = Core.Star.of_speeds ~bandwidth:4. [ 1.; 2.; 4.; 8. ] in
  let total = 1000. in

  Printf.printf "Scheduling an N^%.0f load of N = %.0f on speeds 1,2,4,8\n\n" alpha total;

  List.iter
    (fun (model, name) ->
      let allocation, makespan =
        Core.Nonlinear_dlt.equal_finish_allocation model star cost ~total
      in
      Printf.printf "%s model: makespan %.1f, shares:\n  " name makespan;
      Array.iter (fun x -> Printf.printf "%.1f " x) allocation;
      Printf.printf "\n";
      let schedule = Core.Nonlinear_dlt.schedule model star cost ~total in
      Format.printf "%a@." Core.Dlt_schedule.pp schedule;
      (* Event-driven replay of the schedule, as a Gantt chart. *)
      print_string (Core.Dlt_simulate.gantt ~width:64 schedule);
      print_newline ())
    [ (Core.Dlt_schedule.Parallel, "parallel-links"); (Core.Dlt_schedule.One_port, "one-port") ];

  (* The futility argument. *)
  Printf.printf "Fraction of the sequential work W = N^%.0f done by one round:\n" alpha;
  List.iter
    (fun p ->
      let hom = Core.Star.of_speeds (List.init p (fun _ -> 1.)) in
      let allocation, _ =
        Core.Nonlinear_dlt.equal_finish_allocation Core.Dlt_schedule.Parallel hom cost
          ~total
      in
      Printf.printf "  p = %4d: measured %.5f   closed form p^(1-a) = %.5f\n" p
        (Core.Fraction.done_fraction cost ~allocation ~total)
        (Core.Fraction.power_partial_fraction ~alpha ~p))
    [ 2; 8; 32; 128; 512 ];
  Printf.printf
    "\nAs p grows the round does asymptotically none of the work: the sophisticated\n\
     ordering/allocation optimizations of the nonlinear-DLT literature cannot matter.\n\n";

  (* What chunking does to the executed work (divisibility implies
     linearity). *)
  let hom = Core.Star.of_speeds [ 1. ] in
  Printf.printf "Executed work when one worker processes N = 100 in independent chunks:\n";
  List.iter
    (fun rounds ->
      let result =
        Core.Multi_round.run Core.Dlt_schedule.Parallel hom cost ~allocation:[| 100. |]
          ~rounds
      in
      let work =
        List.fold_left
          (fun acc c -> acc +. Core.Cost_model.work cost c.Core.Multi_round.data)
          0. result.Core.Multi_round.chunks
      in
      Printf.printf "  %4d chunks: executed work %10.1f\n" rounds work)
    [ 1; 4; 25; 100 ];
  Printf.printf
    "\n100 unit chunks cost 100 units of work - the N^2 task decomposed into\n\
     independent pieces is a different (linear!) computation: there is no free lunch.\n"
