(* Quickstart: the library in five minutes.

   Build and run:  dune exec examples/quickstart.exe

   1. Why non-linear loads are not divisible (paper §2).
   2. How to partition a non-linear workload on a heterogeneous
      platform instead (paper §4), and what it saves. *)

let () =
  Printf.printf "nldl quickstart (library version %s)\n\n" Core.version;

  (* --- 1. The no-free-lunch effect ------------------------------------ *)
  Printf.printf "1. Fraction of an N^2 workload left undone by one DLT round:\n";
  List.iter
    (fun p ->
      Printf.printf "   p = %4d  ->  %.4f\n" p (Core.no_free_lunch ~alpha:2. ~p))
    [ 2; 10; 100; 1000 ];
  Printf.printf "   (tends to 1: with many workers the divisible round is useless)\n\n";

  (* --- 2. A heterogeneous platform ------------------------------------ *)
  let rng = Core.Rng.create ~seed:42 () in
  let star = Core.Profiles.generate rng ~p:8 Core.Profiles.paper_uniform in
  Format.printf "2. A random platform (speeds uniform in [1,100]):@.%a@." Core.Star.pp
    star;

  (* --- 3. Classical linear DLT still works ---------------------------- *)
  let allocation = Core.Linear_dlt.parallel_allocation star ~total:1000. in
  Printf.printf "3. Optimal linear-DLT shares of 1000 units:\n   ";
  Array.iter (fun n -> Printf.printf "%.1f " n) allocation;
  Printf.printf "\n   makespan %.2f (all workers finish simultaneously)\n\n"
    (Core.Linear_dlt.parallel_makespan star ~total:1000.);

  (* --- 4. Non-linear loads need data-aware partitioning --------------- *)
  let r = Core.communication_ratios star in
  Printf.printf "4. Outer-product communication vs the lower bound on this platform:\n";
  Printf.printf "   Heterogeneous Blocks (PERI-SUM):    %.3f x LB\n" r.Core.Strategies.het;
  Printf.printf "   Homogeneous Blocks  (MapReduce):    %.3f x LB\n" r.Core.Strategies.hom;
  Printf.printf "   Homogeneous Blocks / k (balanced):  %.3f x LB (k = %d)\n"
    r.Core.Strategies.hom_over_k r.Core.Strategies.k;
  Printf.printf
    "\n   Taking heterogeneity into account when cutting the data saves a factor %.1f.\n"
    (r.Core.Strategies.hom_over_k /. r.Core.Strategies.het)
