(* Paper Figure 2: what each strategy ships to the workers.

   Renders the unit-square partitions of the outer-product domain for a
   heterogeneous platform: the Heterogeneous Blocks (PERI-SUM) zones,
   and the footprint of the Homogeneous Blocks demand-driven hand-out.

   Run:  dune exec examples/outer_product_layouts.exe *)

let () =
  let star = Core.Star.of_speeds [ 1.; 1.; 2.; 4.; 4.; 12. ] in
  Format.printf "Platform:@.%a@." Core.Star.pp star;

  (* Heterogeneous Blocks: one rectangle per worker, areas ∝ speeds. *)
  let layout = Core.Strategies.het_layout star in
  Printf.printf "Heterogeneous Blocks (PERI-SUM column partition), zone of worker i:\n\n";
  print_string (Core.Layout.render ~width:48 ~height:20 layout);
  Printf.printf "\nSum of half-perimeters: %.4f (lower bound %.4f)\n\n"
    (Core.Layout.sum_half_perimeters layout)
    (Core.Comm_lower_bound.peri_sum ~areas:(Core.Star.relative_speeds star));

  (* Homogeneous Blocks: identical squares handed out on demand. *)
  let n = 1. in
  let schedule = Core.Block_hom.commhom star ~n in
  Printf.printf
    "Homogeneous Blocks: %d identical blocks of side %.4f, demand-driven owners\n"
    schedule.Core.Block_hom.blocks schedule.Core.Block_hom.block_side;
  Printf.printf "(blocks in hand-out order, digit = worker index):\n\n  ";
  Array.iteri
    (fun b owner ->
      if b > 0 && b mod 16 = 0 then Printf.printf "\n  ";
      Printf.printf "%x" owner)
    schedule.Core.Block_hom.owners;
  Printf.printf "\n\nBlocks per worker: ";
  Array.iter (Printf.printf "%d ") schedule.Core.Block_hom.per_worker;
  Printf.printf "\nCommunication: %.4f vs %.4f for Heterogeneous Blocks (ratio %.2f)\n"
    schedule.Core.Block_hom.communication
    (Core.Layout.communication_volume layout ~n)
    (schedule.Core.Block_hom.communication /. Core.Layout.communication_volume layout ~n);
  Printf.printf
    "\nThe fast worker's many scattered blocks are exactly the data redundancy\n\
     the paper blames on platform-oblivious (MapReduce-style) distribution.\n"
