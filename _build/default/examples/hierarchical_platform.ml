(* Beyond the flat star: aggregate a grid of clusters into the paper's
   star model, then schedule on the equivalent platform.

   Shows (1) steady-state aggregation of sub-clusters into equivalent
   workers, (2) how much compute power the uplinks destroy, and (3)
   running the affine one-port DLT solver — with participation
   selection — on the flattened platform.

   Run:  dune exec examples/hierarchical_platform.exe *)

let () =
  (* Three sites: a fast local cluster, a remote cluster behind a thin
     uplink, and a lone workstation with noticeable latency. *)
  let local =
    Core.Topology.cluster ~bandwidth:8.
      (List.init 4 (fun _ -> Core.Topology.worker ~bandwidth:4. ~speed:2. ()))
  in
  let remote =
    Core.Topology.cluster ~bandwidth:1.5 ~latency:0.2
      (List.init 16 (fun _ -> Core.Topology.worker ~bandwidth:2. ~speed:1. ()))
  in
  let workstation = Core.Topology.worker ~bandwidth:1. ~latency:2. ~speed:3. () in
  let nodes = [ local; remote; workstation ] in

  Printf.printf "Raw platform: %d leaf workers, total speed %.1f\n"
    (List.fold_left (fun acc n -> acc + Core.Topology.leaf_count n) 0 nodes)
    (List.fold_left (fun acc n -> acc +. Core.Topology.total_speed n) 0. nodes);

  let star = Core.Topology.flatten nodes in
  Format.printf "@.Equivalent star (steady-state aggregation):@.%a@." Core.Star.pp star;
  Printf.printf "Aggregation loss: %.1f%% of raw compute power is stranded behind uplinks\n\n"
    (100. *. Core.Topology.aggregation_loss nodes);

  (* Steady-state throughput of the flattened platform. *)
  let steady = Core.Steady_state.one_port star in
  Printf.printf "One-port steady-state throughput: %.3f load/time (efficiency %.1f%%)\n"
    steady.Core.Steady_state.throughput
    (100. *. Core.Steady_state.efficiency star);
  Printf.printf "Per-site rates: ";
  Array.iter (fun r -> Printf.printf "%.3f " r) steady.Core.Steady_state.rates;

  (* A finite batch with the affine (latency-aware) solver. *)
  let total = 500. in
  let sol = Core.Affine_dlt.solve star ~total in
  Printf.printf "\n\nBatch of %.0f units, affine one-port solver:\n" total;
  Printf.printf "  participants: %s\n"
    (String.concat ", "
       (List.map
          (fun i -> Printf.sprintf "worker %d" i)
          sol.Core.Affine_dlt.participants));
  Printf.printf "  shares: ";
  Array.iter (fun n -> Printf.printf "%.1f " n) sol.Core.Affine_dlt.allocation;
  Printf.printf "\n  makespan: %.2f\n" sol.Core.Affine_dlt.makespan;

  (* Does the dispatch order matter here? *)
  Printf.printf "\nDispatch-order sensitivity (worst/best - 1): %.4f\n"
    (Core.Dlt_ordering.order_spread star ~total);

  (* The real multi-level schedule, store-and-forward through the
     gateways. *)
  let tree = Core.Tree_dlt.schedule nodes ~total in
  Printf.printf "\nTree schedule (store-and-forward through gateways):\n";
  List.iter
    (fun (l : Core.Tree_dlt.leaf_share) ->
      Printf.printf "  leaf %-8s share %7.2f  finishes at %.2f\n"
        (String.concat "." (List.map string_of_int l.Core.Tree_dlt.path))
        l.Core.Tree_dlt.share l.Core.Tree_dlt.finish)
    tree.Core.Tree_dlt.leaves;
  Printf.printf "  tree makespan %.2f vs flat summary %.2f\n" tree.Core.Tree_dlt.makespan
    (Core.Tree_dlt.flat_makespan nodes ~total)
