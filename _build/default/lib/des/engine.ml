type t = { queue : (t -> unit) Event_queue.t; mutable now : float }

exception Causality of { now : float; requested : float }

let create () = { queue = Event_queue.create (); now = 0. }
let now t = t.now

let schedule t ~time handler =
  if time < t.now then raise (Causality { now = t.now; requested = time });
  Event_queue.push t.queue ~priority:time handler

let schedule_after t ~delay handler =
  if delay < 0. then raise (Causality { now = t.now; requested = t.now +. delay });
  schedule t ~time:(t.now +. delay) handler

let pending t = Event_queue.size t.queue

type cancel = unit -> unit

let every t ~period ?start handler =
  if period <= 0. then raise (Causality { now = t.now; requested = t.now +. period });
  let cancelled = ref false in
  let rec tick engine =
    if not !cancelled then begin
      handler engine;
      if not !cancelled then schedule_after engine ~delay:period tick
    end
  in
  let first = match start with Some s -> s | None -> t.now +. period in
  schedule t ~time:first tick;
  fun () -> cancelled := true

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, handler) ->
      t.now <- time;
      handler t;
      true

let run ?until t =
  let within time = match until with None -> true | Some horizon -> time <= horizon in
  let rec loop () =
    match Event_queue.peek t.queue with
    | None -> ()
    | Some (time, _) ->
        if within time then begin
          ignore (step t);
          loop ()
        end
  in
  loop ()
