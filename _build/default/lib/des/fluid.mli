(** Fluid network model with max-min fair bandwidth sharing (the
    SimGrid-style alternative to the paper's independent-links model):
    concurrent transfers crossing shared links split the capacity by
    progressive filling, and the simulation advances from one flow
    completion (or arrival) to the next, re-solving the allocation at
    every event. *)

type link = { capacity : float }

type flow = {
  id : int;
  size : float;  (** data units to transfer, > 0 *)
  links : int list;  (** indices into the link array, non-empty *)
  start : float;  (** arrival time, >= 0 *)
}

val make_flow : ?start:float -> id:int -> size:float -> links:int list -> unit -> flow
(** Raises [Invalid_argument] on non-positive size, empty route or
    negative start. *)

val max_min_rates : links:link array -> active:flow list -> (int * float) list
(** The max-min fair allocation for the given concurrent flows:
    progressive filling — all rates rise together, flows freeze when a
    link on their route saturates.  Returns [(flow id, rate)]. *)

type completion = { flow : int; finish : float }

val run : links:link array -> flows:flow list -> completion list
(** Simulate all flows to completion; returns completions sorted by
    finish time.  Raises [Invalid_argument] on duplicate flow ids or
    out-of-range link indices. *)

val makespan : links:link array -> flows:flow list -> float
(** Finish time of the last flow (0 when there are none). *)
