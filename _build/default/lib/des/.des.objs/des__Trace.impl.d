lib/des/trace.ml: Buffer Bytes Hashtbl List Printf String
