lib/des/fluid.mli:
