lib/des/fluid.ml: Array Float Hashtbl List
