lib/des/engine.mli:
