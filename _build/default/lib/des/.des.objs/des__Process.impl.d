lib/des/process.ml: Effect Engine Fun Queue
