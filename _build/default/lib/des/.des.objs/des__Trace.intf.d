lib/des/trace.mli:
