type 'a entry = { priority : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* empty until the first push *)
  mutable size : int;
  mutable next_seq : int;
  initial_capacity : int;
}

let create ?(initial_capacity = 16) () =
  { heap = [||]; size = 0; next_seq = 0; initial_capacity = max 1 initial_capacity }

let is_empty t = t.size = 0
let size t = t.size

let less a b = a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && less t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.size && less t.heap.(right) t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* Ensure room for one more entry, using [filler] to pad fresh slots. *)
let ensure_capacity t filler =
  let capacity = Array.length t.heap in
  if capacity = 0 then t.heap <- Array.make t.initial_capacity filler
  else if t.size = capacity then begin
    let bigger = Array.make (2 * capacity) filler in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let push t ~priority payload =
  if Float.is_nan priority then invalid_arg "Event_queue.push: NaN priority";
  let entry = { priority; seq = t.next_seq; payload } in
  ensure_capacity t entry;
  t.heap.(t.size) <- entry;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.heap.(0).priority, t.heap.(0).payload)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.priority, top.payload)
  end

let clear t = t.size <- 0

let to_sorted_list t =
  let sorted = Array.sub t.heap 0 t.size in
  Array.sort
    (fun a b ->
      match Float.compare a.priority b.priority with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
    sorted;
  Array.to_list (Array.map (fun e -> (e.priority, e.payload)) sorted)
