(** A binary-heap priority queue with float priorities.

    Ties are broken by insertion order (FIFO), which makes
    discrete-event simulations deterministic when several events share a
    timestamp. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> priority:float -> 'a -> unit
(** Raises [Invalid_argument] on a NaN priority. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-priority element, not removed. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive snapshot in priority order (for tests). *)
