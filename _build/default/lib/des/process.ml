open Effect
open Effect.Deep

type t = { engine : Engine.t }

type resource = {
  world : t;
  capacity : int;
  mutable available : int;
  waiters : (unit -> unit) Queue.t;
}

type _ Effect.t += Wait : float -> unit Effect.t
type _ Effect.t += Acquire : resource -> unit Effect.t

exception Outside_process

let create () = { engine = Engine.create () }
let engine t = t.engine
let now t = Engine.now t.engine

(* Each process body runs under this deep handler, which also covers
   every later resumption of the process: blocking points capture the
   continuation and hand it to the engine (Wait) or to the resource's
   waiter queue (Acquire). *)
let spawn t body =
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait delay ->
              Some
                (fun (k : (a, _) continuation) ->
                  Engine.schedule_after t.engine ~delay (fun _ -> continue k ()))
          | Acquire resource ->
              Some
                (fun (k : (a, _) continuation) ->
                  if resource.available > 0 then begin
                    resource.available <- resource.available - 1;
                    continue k ()
                  end
                  else Queue.add (fun () -> continue k ()) resource.waiters)
          | _ -> None);
    }

let wait delay =
  if delay < 0. then invalid_arg "Process.wait: negative delay";
  try perform (Wait delay) with Unhandled _ -> raise Outside_process

let resource world ~capacity =
  if capacity <= 0 then invalid_arg "Process.resource: capacity must be > 0";
  { world; capacity; available = capacity; waiters = Queue.create () }

let acquire resource =
  try perform (Acquire resource) with Unhandled _ -> raise Outside_process

let release resource =
  match Queue.take_opt resource.waiters with
  | Some wake ->
      (* Hand the unit straight to the first waiter, resuming it at the
         current simulated time. *)
      Engine.schedule resource.world.engine
        ~time:(Engine.now resource.world.engine)
        (fun _ -> wake ())
  | None ->
      if resource.available >= resource.capacity then
        invalid_arg "Process.release: resource already at capacity";
      resource.available <- resource.available + 1

let with_resource resource f =
  acquire resource;
  Fun.protect ~finally:(fun () -> release resource) f

let run ?until t = Engine.run ?until t.engine
