(** A minimal discrete-event simulation engine.

    Events are closures scheduled at absolute times; the engine pops
    them in time order (FIFO within a timestamp) and lets each handler
    schedule further events.  This drives the demand-driven block
    scheduler of Section 4.1.1 and the MapReduce runtime. *)

type t

exception Causality of { now : float; requested : float }
(** Raised when scheduling an event in the past. *)

val create : unit -> t

val now : t -> float
(** Current simulated time; 0 before any event runs. *)

val schedule : t -> time:float -> (t -> unit) -> unit
(** Schedule at absolute [time >= now t]. *)

val schedule_after : t -> delay:float -> (t -> unit) -> unit
(** Schedule [delay >= 0] after the current time. *)

val pending : t -> int
(** Number of events not yet executed. *)

type cancel = unit -> unit

val every : t -> period:float -> ?start:float -> (t -> unit) -> cancel
(** Recurring event: fire at [start] (default [now + period]) and then
    every [period > 0] until the returned cancel thunk is called.
    Cancellation takes effect at the next firing. *)

val step : t -> bool
(** Execute the next event.  [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Run until the queue drains, or until simulated time would exceed
    [until] (remaining events stay queued). *)
