type link = { capacity : float }
type flow = { id : int; size : float; links : int list; start : float }

let make_flow ?(start = 0.) ~id ~size ~links () =
  if size <= 0. || Float.is_nan size then invalid_arg "Fluid.make_flow: size must be > 0";
  if links = [] then invalid_arg "Fluid.make_flow: empty route";
  if start < 0. then invalid_arg "Fluid.make_flow: negative start";
  { id; size; links; start }

let check ~links ~flows =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.id then invalid_arg "Fluid: duplicate flow id";
      Hashtbl.add seen f.id ();
      List.iter
        (fun l ->
          if l < 0 || l >= Array.length links then invalid_arg "Fluid: bad link index")
        f.links)
    flows

(* Progressive filling.  All unfrozen flows share one growing rate
   level; each step finds the link that saturates first, freezes its
   flows at the current level, and continues with the rest. *)
let max_min_rates ~links ~active =
  let rates = Hashtbl.create 16 in
  let unfrozen = ref active in
  let level = ref 0. in
  let slack = Array.map (fun l -> l.capacity) links in
  let rec fill () =
    if !unfrozen <> [] then begin
      let count = Array.make (Array.length links) 0 in
      List.iter
        (fun f -> List.iter (fun l -> count.(l) <- count.(l) + 1) f.links)
        !unfrozen;
      (* Smallest extra headroom per unfrozen flow over all loaded links. *)
      let delta = ref infinity and bottleneck = ref (-1) in
      Array.iteri
        (fun l c ->
          if c > 0 then begin
            let headroom = slack.(l) /. float_of_int c in
            if headroom < !delta then begin
              delta := headroom;
              bottleneck := l
            end
          end)
        count;
      assert (!bottleneck >= 0);
      level := !level +. !delta;
      (* Charge the increment to every loaded link. *)
      Array.iteri
        (fun l c -> if c > 0 then slack.(l) <- slack.(l) -. (float_of_int c *. !delta))
        count;
      let frozen, rest =
        List.partition (fun f -> List.mem !bottleneck f.links) !unfrozen
      in
      List.iter (fun f -> Hashtbl.replace rates f.id !level) frozen;
      unfrozen := rest;
      fill ()
    end
  in
  fill ();
  List.map (fun f -> (f.id, Hashtbl.find rates f.id)) active

type completion = { flow : int; finish : float }

type live = { spec : flow; mutable remaining : float }

let run ~links ~flows =
  check ~links ~flows;
  let pending = ref (List.sort (fun a b -> Float.compare a.start b.start) flows) in
  let active : live list ref = ref [] in
  let now = ref 0. in
  let completions = ref [] in
  let rec step () =
    (* Admit flows that have arrived. *)
    (match !pending with
    | f :: rest when f.start <= !now +. 1e-12 ->
        pending := rest;
        active := { spec = f; remaining = f.size } :: !active;
        step ()
    | _ ->
        if !active = [] then begin
          (* Jump to the next arrival, if any. *)
          match !pending with
          | [] -> ()
          | f :: _ ->
              now := f.start;
              step ()
        end
        else begin
          let rates = max_min_rates ~links ~active:(List.map (fun l -> l.spec) !active) in
          let rate_of id = List.assoc id rates in
          (* Next event: first completion at current rates, or next
             arrival. *)
          let next_completion =
            List.fold_left
              (fun acc live ->
                let rate = rate_of live.spec.id in
                if rate <= 0. then acc
                else Float.min acc (!now +. (live.remaining /. rate)))
              infinity !active
          in
          let next_arrival =
            match !pending with [] -> infinity | f :: _ -> f.start
          in
          let horizon = Float.min next_completion next_arrival in
          assert (Float.is_finite horizon);
          let elapsed = horizon -. !now in
          List.iter
            (fun live ->
              live.remaining <- live.remaining -. (elapsed *. rate_of live.spec.id))
            !active;
          now := horizon;
          let finished, running =
            List.partition (fun live -> live.remaining <= 1e-9 *. live.spec.size) !active
          in
          List.iter
            (fun live -> completions := { flow = live.spec.id; finish = !now } :: !completions)
            finished;
          active := running;
          step ()
        end)
  in
  step ();
  List.sort (fun a b -> Float.compare a.finish b.finish) !completions

let makespan ~links ~flows =
  match List.rev (run ~links ~flows) with [] -> 0. | last :: _ -> last.finish
