(** Process-oriented simulation on top of {!Engine}, written with OCaml
    5 effect handlers: simulation entities read as straight-line code
    ([wait], [acquire], [release]) and the handler turns each blocking
    point into an engine event.

    This is the programming style SimPy/SimGrid users expect; the
    event-level API of {!Engine} remains available underneath. *)

type t
(** A simulation world: an engine plus the process runtime. *)

val create : unit -> t
val engine : t -> Engine.t
val now : t -> float

val spawn : t -> (unit -> unit) -> unit
(** Start a process at the current time.  The body may call {!wait},
    {!acquire}, {!release} and {!spawn} (nested spawns run in the same
    world). *)

val wait : float -> unit
(** Suspend the calling process for the given simulated delay
    ([>= 0]).  Must be called from inside a process. *)

type resource
(** A counted resource (semaphore) with FIFO waiters. *)

val resource : t -> capacity:int -> resource
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val acquire : resource -> unit
(** Take one unit, suspending until available. *)

val release : resource -> unit
(** Return one unit, waking the first waiter.  Raises
    [Invalid_argument] when the resource is already at capacity. *)

val with_resource : resource -> (unit -> 'a) -> 'a
(** [acquire]/[release] bracket, exception safe. *)

val run : ?until:float -> t -> unit
(** Drive the world until no events remain (or the horizon). *)

exception Outside_process
(** Raised when {!wait}/{!acquire}/{!release} are called outside
    {!spawn}. *)
