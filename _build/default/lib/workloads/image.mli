(** Image filtering — one of the classical linear-complexity DLT
    applications (paper §1.1, refs [11, 12]): the cost is proportional
    to the number of pixels, so the workload is genuinely divisible.

    The image is cut into horizontal bands sized by the linear-DLT
    allocation; each worker needs its band plus a halo of
    [kernel radius] rows on each side (the only data dependency), so the
    communication overhead of the split is exactly the halo volume. *)

type kernel = float array array
(** Square convolution kernel with odd side. *)

val box_blur : int -> kernel
(** Normalized [size × size] averaging kernel (odd [size]). *)

val sharpen : kernel
val edge_detect : kernel

val convolve : Linalg.Matrix.t -> kernel:kernel -> Linalg.Matrix.t
(** Sequential 2D convolution with zero padding at the borders. *)

type distribution = {
  bands : (int * int) array;  (** per worker: first row, row count *)
  halo_rows : int;  (** total extra rows shipped as halo *)
  communication : float;  (** pixels sent, bands + halos *)
  makespan : float;  (** parallel-link model: transfer then compute *)
  result : Linalg.Matrix.t;  (** assembled output, equals {!convolve} *)
}

val distribute :
  Platform.Star.t -> Linalg.Matrix.t -> kernel:kernel -> distribution
(** Split the image rows with {!Dlt.Linear.parallel_allocation}
    (cost ∝ pixels), execute each band (with halos) and reassemble.
    Raises [Invalid_argument] if the image has fewer rows than
    workers. *)
