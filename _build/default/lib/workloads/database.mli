(** Database scan — the "database searching" DLT application of §1.1
    (refs [14, 15]): a predicate evaluated over a large table is
    perfectly divisible (cost ∝ records scanned, no dependencies).

    Records are synthetic rows; queries are predicates plus an
    aggregation.  The distributed scan uses the one-port linear DLT
    schedule and verifies its result against the sequential scan. *)

type record = { key : int; group : int; value : float }

val generate : Numerics.Rng.t -> rows:int -> groups:int -> record array
(** Random table: uniform keys, [group] in [\[0, groups)], value in
    [\[0, 1)]. *)

type query = {
  name : string;
  predicate : record -> bool;
  weight : record -> float;  (** contribution of a matching record *)
}

val count_where : name:string -> (record -> bool) -> query
val sum_where : name:string -> (record -> bool) -> (record -> float) -> query

val scan : query -> record array -> float
(** Sequential reference. *)

type execution = {
  shares : int array;  (** records per worker *)
  answer : float;
  makespan : float;  (** one-port model: staggered transfer + scan *)
  speedup : float;  (** vs the slowest worker scanning alone *)
}

val distributed_scan : Platform.Star.t -> query -> record array -> execution
(** One-port linear DLT split of the table (1 record = 1 data unit = 1
    work unit), executed for real. *)
