module Star = Platform.Star
module Processor = Platform.Processor

type record = { key : int; group : int; value : float }

let generate rng ~rows ~groups =
  if rows < 0 || groups <= 0 then invalid_arg "Database.generate: bad dimensions";
  Array.init rows (fun _ ->
      {
        key = Numerics.Rng.int rng 1_000_000_000;
        group = Numerics.Rng.int rng groups;
        value = Numerics.Rng.float rng;
      })

type query = {
  name : string;
  predicate : record -> bool;
  weight : record -> float;
}

let count_where ~name predicate = { name; predicate; weight = (fun _ -> 1.) }
let sum_where ~name predicate weight = { name; predicate; weight }

type execution = {
  shares : int array;
  answer : float;
  makespan : float;
  speedup : float;
}

let scan query records =
  let acc = Numerics.Kahan.create () in
  Array.iter (fun r -> if query.predicate r then Numerics.Kahan.add acc (query.weight r)) records;
  Numerics.Kahan.total acc

let distributed_scan star query records =
  let total = Array.length records in
  let shares =
    Numerics.Apportion.largest_remainder
      ~weights:(Dlt.Linear.one_port_allocation star ~total:(float_of_int total))
      ~total
  in
  let workers = Star.workers star in
  let order = Dlt.Linear.one_port_order star in
  let acc = Numerics.Kahan.create () in
  let offsets = Array.make (Star.size star) 0 in
  let start = ref 0 in
  Array.iteri
    (fun i n ->
      offsets.(i) <- !start;
      start := !start + n;
      ignore i)
    shares;
  let port = ref 0. in
  let makespan = ref 0. in
  Array.iter
    (fun i ->
      let n = shares.(i) in
      if n > 0 then begin
        let proc = workers.(i) in
        let arrival = !port +. Processor.transfer_time proc ~data:(float_of_int n) in
        port := arrival;
        let finish = arrival +. Processor.compute_time proc ~work:(float_of_int n) in
        if finish > !makespan then makespan := finish;
        for r = offsets.(i) to offsets.(i) + n - 1 do
          if query.predicate records.(r) then Numerics.Kahan.add acc (query.weight records.(r))
        done
      end)
    order;
  let slowest = Star.slowest star in
  let solo =
    Processor.transfer_time slowest ~data:(float_of_int total)
    +. Processor.compute_time slowest ~work:(float_of_int total)
  in
  {
    shares;
    answer = Numerics.Kahan.total acc;
    makespan = !makespan;
    speedup = (if !makespan > 0. then solo /. !makespan else 1.);
  }
