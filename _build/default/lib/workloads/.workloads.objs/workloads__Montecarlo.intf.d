lib/workloads/montecarlo.mli: Numerics Platform
