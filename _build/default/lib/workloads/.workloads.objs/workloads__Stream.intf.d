lib/workloads/stream.mli: Platform
