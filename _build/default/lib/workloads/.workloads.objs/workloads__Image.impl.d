lib/workloads/image.ml: Array Dlt Linalg Numerics Platform
