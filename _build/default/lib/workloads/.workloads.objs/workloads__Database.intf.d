lib/workloads/database.mli: Numerics Platform
