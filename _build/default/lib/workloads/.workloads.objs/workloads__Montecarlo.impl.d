lib/workloads/montecarlo.ml: Array Float Numerics Platform
