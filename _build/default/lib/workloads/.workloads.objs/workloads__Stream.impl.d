lib/workloads/stream.ml: Array Dlt Platform
