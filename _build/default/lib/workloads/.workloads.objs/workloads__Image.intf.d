lib/workloads/image.mli: Linalg Platform
