lib/workloads/database.ml: Array Dlt Numerics Platform
