module Star = Platform.Star
module Processor = Platform.Processor

let check ~frame_size ~frame_cost =
  if frame_size <= 0. || frame_cost <= 0. then
    invalid_arg "Stream: frame size and cost must be positive"

(* A platform whose unit of data/work is one frame. *)
let normalized star ~frame_size ~frame_cost =
  Star.create
    (Array.to_list
       (Array.map
          (fun (p : Processor.t) ->
            Processor.make ~id:p.Processor.id
              ~speed:(p.Processor.speed /. frame_cost)
              ~bandwidth:(p.Processor.bandwidth /. frame_size)
              ~latency:p.Processor.latency ())
          (Star.workers star)))

let sustainable_fps star ~frame_size ~frame_cost =
  check ~frame_size ~frame_cost;
  (Dlt.Steady_state.one_port (normalized star ~frame_size ~frame_cost)).Dlt.Steady_state
    .throughput

let burst_makespan star ~frames ~frame_size ~frame_cost ~rounds =
  check ~frame_size ~frame_cost;
  if frames < 0 then invalid_arg "Stream.burst_makespan: negative burst";
  let star = normalized star ~frame_size ~frame_cost in
  let allocation = Dlt.Linear.one_port_allocation star ~total:(float_of_int frames) in
  Dlt.Multi_round.makespan Dlt.Schedule.One_port star Dlt.Cost_model.Linear ~allocation
    ~rounds

let pipeline_gain star ~frames ~frame_size ~frame_cost =
  let single = burst_makespan star ~frames ~frame_size ~frame_cost ~rounds:1 in
  let star_n = normalized star ~frame_size ~frame_cost in
  let allocation = Dlt.Linear.one_port_allocation star_n ~total:(float_of_int frames) in
  let _, best =
    Dlt.Multi_round.best_rounds Dlt.Schedule.One_port star_n Dlt.Cost_model.Linear
      ~allocation
  in
  single /. best
