(** Video / streaming pipelines — the multimedia DLT applications of
    §1.1 (refs [12, 13]): a long stream of fixed-size frames, each with
    a linear processing cost.

    Frames are natural "installments": a burst is dispatched with the
    multi-round pipeline, and the sustainable frame rate comes from the
    steady-state closed form on a frame-normalized platform. *)

val sustainable_fps :
  Platform.Star.t -> frame_size:float -> frame_cost:float -> float
(** Maximum frames/time the one-port master can sustain: worker [i]
    processes at most [s_i/frame_cost] and receives at most
    [bw_i/frame_size] frames per time unit; the port adds
    [Σ rate_i·frame_size/bw_i <= 1]. *)

val burst_makespan :
  Platform.Star.t ->
  frames:int -> frame_size:float -> frame_cost:float -> rounds:int ->
  float
(** Time to process a finite burst, dispatched in [rounds]
    installments sized by the linear-DLT shares (one-port pipeline,
    {!Dlt.Multi_round}). *)

val pipeline_gain :
  Platform.Star.t -> frames:int -> frame_size:float -> frame_cost:float -> float
(** [burst_makespan ~rounds:1 / burst_makespan ~rounds:best]: how much
    installment pipelining buys on this platform. *)
