module Rng = Numerics.Rng
module Star = Platform.Star
module Processor = Platform.Processor

type estimate = { value : float; std_error : float; samples : int }

(* Accumulate Σf and Σf² so partial results pool exactly. *)
let sums rng ~f ~samples =
  let sum = Numerics.Kahan.create () and squares = Numerics.Kahan.create () in
  for _ = 1 to samples do
    let v = f (Rng.float rng) (Rng.float rng) in
    Numerics.Kahan.add sum v;
    Numerics.Kahan.add squares (v *. v)
  done;
  (Numerics.Kahan.total sum, Numerics.Kahan.total squares)

let estimate_of_sums ~sum ~squares ~samples =
  let n = float_of_int samples in
  let mean = sum /. n in
  let variance = Float.max 0. ((squares /. n) -. (mean *. mean)) in
  { value = mean; std_error = sqrt (variance /. n); samples }

let estimate rng ~f ~samples =
  if samples <= 0 then invalid_arg "Montecarlo.estimate: samples must be > 0";
  let sum, squares = sums rng ~f ~samples in
  estimate_of_sums ~sum ~squares ~samples

let pi rng ~samples =
  let indicator x y = if (x *. x) +. (y *. y) < 1. then 4. else 0. in
  estimate rng ~f:indicator ~samples

type distributed = {
  combined : estimate;
  per_worker : int array;
  makespan : float;
  efficiency : float;
}

let distributed_estimate rng star ~f ~samples =
  if samples <= 0 then invalid_arg "Montecarlo.distributed_estimate: samples must be > 0";
  let per_worker =
    Numerics.Apportion.largest_remainder
      ~weights:(Star.relative_speeds star)
      ~total:samples
  in
  let workers = Star.workers star in
  let sum = Numerics.Kahan.create () and squares = Numerics.Kahan.create () in
  let makespan = ref 0. in
  Array.iteri
    (fun i count ->
      if count > 0 then begin
        let worker_rng = Rng.split rng in
        let s, sq = sums worker_rng ~f ~samples:count in
        Numerics.Kahan.add sum s;
        Numerics.Kahan.add squares sq;
        let finish = Processor.compute_time workers.(i) ~work:(float_of_int count) in
        if finish > !makespan then makespan := finish
      end)
    per_worker;
  let ideal = float_of_int samples /. Star.total_speed star in
  {
    combined =
      estimate_of_sums ~sum:(Numerics.Kahan.total sum)
        ~squares:(Numerics.Kahan.total squares) ~samples;
    per_worker;
    makespan = !makespan;
    efficiency = (if !makespan > 0. then ideal /. !makespan else 1.);
  }
