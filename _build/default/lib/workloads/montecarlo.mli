(** Monte-Carlo estimation — the communication-free extreme of the
    divisibility spectrum the paper maps out: sample counts split
    arbitrarily, no input data to ship at all (only a seed), cost
    exactly linear.  Where matrix multiplication is the "no free lunch"
    case, Monte Carlo is the free lunch.

    The estimator integrates a function over the unit square by uniform
    sampling; the distributed version assigns sample counts with the
    linear-DLT shares (reduced to pure compute, since transfers are a
    few words) and merges the per-worker sums exactly. *)

type estimate = {
  value : float;
  std_error : float;  (** √(sample variance / samples) *)
  samples : int;
}

val estimate :
  Numerics.Rng.t -> f:(float -> float -> float) -> samples:int -> estimate
(** Plain sequential estimator of [∫∫ f] over [\[0,1)²].  Requires
    [samples > 0]. *)

val pi : Numerics.Rng.t -> samples:int -> estimate
(** The classic disc-area estimator of π. *)

type distributed = {
  combined : estimate;
  per_worker : int array;  (** sample counts, ∝ speeds *)
  makespan : float;  (** parallel compute, one sample = one work unit *)
  efficiency : float;  (** ideal/actual, ≈ 1: nothing to communicate *)
}

val distributed_estimate :
  Numerics.Rng.t ->
  Platform.Star.t ->
  f:(float -> float -> float) ->
  samples:int ->
  distributed
(** Each worker draws an independent split of the generator; the
    combined estimate pools sums and sums-of-squares exactly, so the
    result is identical in distribution to the sequential estimator. *)
