(** Heterogeneity measures of a platform, used to relate the measured
    communication ratios of Figure 4 to how skewed the speed vector is. *)

val speed_ratio : Star.t -> float
(** [s_max / s_min], >= 1. *)

val coefficient_of_variation : Star.t -> float
(** stddev / mean of the speed vector; 0 for homogeneous platforms. *)

val sum_sqrt_relative : Star.t -> float
(** [Σ √x_i] where [x_i] are relative speeds: the quantity appearing in
    the communication lower bound [LBComm = 2N Σ √x_i]. *)

val hom_over_het_bound : Star.t -> float
(** The ratio lower bound of Section 4.1.3:
    [(4/7) · Σ s_i / (√s_1 · Σ √s_i)]. *)

val bimodal_rho_bound : factor:float -> float
(** [(1+k)/(1+√k)] — the closed-form bound for the half-slow /
    half-[k]-fast platform. *)
