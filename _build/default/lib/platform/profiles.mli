(** Speed-profile generators matching the evaluation of Section 4.3:
    homogeneous, uniform on [\[1, 100\]] and log-normal(0, 1), plus the
    bimodal "half slow, half k-times faster" platform of Section 4.1.3
    and a Pareto profile used for stress tests. *)

type t =
  | Homogeneous of float  (** all workers at this speed *)
  | Uniform of { lo : float; hi : float }
  | Lognormal of { mu : float; sigma : float }
  | Bimodal of { slow : float; factor : float }
      (** first half at [slow], second half at [slow *. factor] *)
  | Pareto of { scale : float; shape : float }

val paper_homogeneous : t
(** Speed 1 everywhere — Figure 4(a). *)

val paper_uniform : t
(** Uniform on [\[1, 100\]] — Figure 4(b). *)

val paper_lognormal : t
(** Log-normal with [mu = 0], [sigma = 1] — Figure 4(c). *)

val generate :
  ?bandwidth:float -> ?latency:float -> Numerics.Rng.t -> p:int -> t -> Star.t
(** Draw a [p]-worker platform.  Raises [Invalid_argument] when
    [p <= 0]. *)

val name : t -> string
val of_name : string -> t option
(** Inverse of {!name} for the paper's three profiles plus ["bimodal"];
    used by the CLI. *)

val pp : Format.formatter -> t -> unit
