let parse_line ~line_number line =
  let stripped =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let fields =
    String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) stripped)
    |> List.filter (fun f -> f <> "")
  in
  let err msg = Error (Printf.sprintf "line %d: %s" line_number msg) in
  let float_field name s =
    match float_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "line %d: bad %s %S" line_number name s)
  in
  match fields with
  | [] -> Ok None
  | [ speed ] -> Result.map (fun s -> Some (s, 1., 0.)) (float_field "speed" speed)
  | [ speed; bandwidth ] ->
      Result.bind (float_field "speed" speed) (fun s ->
          Result.map (fun bw -> Some (s, bw, 0.)) (float_field "bandwidth" bandwidth))
  | [ speed; bandwidth; latency ] ->
      Result.bind (float_field "speed" speed) (fun s ->
          Result.bind (float_field "bandwidth" bandwidth) (fun bw ->
              Result.map (fun l -> Some (s, bw, l)) (float_field "latency" latency)))
  | _ -> err "expected: speed [bandwidth [latency]]"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec collect acc line_number = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line ~line_number line with
        | Error _ as e -> e
        | Ok None -> collect acc (line_number + 1) rest
        | Ok (Some spec) -> collect (spec :: acc) (line_number + 1) rest)
  in
  match collect [] 1 lines with
  | Error _ as e -> e
  | Ok [] -> Error "no workers defined"
  | Ok specs -> (
      try
        Ok
          (Star.create
             (List.mapi
                (fun i (speed, bandwidth, latency) ->
                  Processor.make ~id:(i + 1) ~speed ~bandwidth ~latency ())
                specs))
      with Invalid_argument msg -> Error msg)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let to_string star =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "# speed bandwidth latency\n";
  Array.iter
    (fun (p : Processor.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%.17g %.17g %.17g\n" p.Processor.speed p.Processor.bandwidth
           p.Processor.latency))
    (Star.workers star);
  Buffer.contents buf
