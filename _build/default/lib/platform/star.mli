(** The heterogeneous master/worker star platform of Section 1.2: a
    master [P0] holding the data, and [p] workers [P1..Pp] reachable over
    independent links (parallel-communication model) or a shared
    outgoing port (one-port model, used by the classical DLT variants).

    Workers are stored sorted by non-decreasing speed, the convention
    used throughout Section 4 ([s1 <= s2 <= ... <= sp]). *)

type t

val create : Processor.t list -> t
(** Sorts the workers by non-decreasing speed.  Raises
    [Invalid_argument] on an empty list. *)

val of_speeds : ?bandwidth:float -> ?latency:float -> float list -> t
(** Workers with the given speeds and uniform link characteristics. *)

val size : t -> int
val workers : t -> Processor.t array
(** The workers sorted by non-decreasing speed.  The returned array is a
    copy; mutating it does not affect the platform. *)

val worker : t -> int -> Processor.t
(** [worker t i] is the [i]-th slowest worker, [0]-based. *)

val total_speed : t -> float
(** [Σ s_i]. *)

val relative_speeds : t -> float array
(** [x_i = s_i / Σ s_k]; sums to 1 (Section 4.1). *)

val speeds : t -> float array
val slowest : t -> Processor.t
val fastest : t -> Processor.t

val is_homogeneous : ?tol:float -> t -> bool
(** All speeds within relative tolerance [tol] (default [1e-9]) of each
    other. *)

val pp : Format.formatter -> t -> unit
