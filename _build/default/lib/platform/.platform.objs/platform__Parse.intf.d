lib/platform/parse.mli: Star
