lib/platform/metrics.ml: Numerics Processor Star
