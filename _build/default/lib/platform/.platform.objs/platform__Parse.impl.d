lib/platform/parse.ml: Array Buffer In_channel List Printf Processor Result Star String
