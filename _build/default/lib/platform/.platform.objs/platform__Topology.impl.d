lib/platform/topology.ml: Float List Processor Star
