lib/platform/star.mli: Format Processor
