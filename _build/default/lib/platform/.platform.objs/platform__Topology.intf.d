lib/platform/topology.mli: Processor Star
