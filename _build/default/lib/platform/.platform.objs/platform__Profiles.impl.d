lib/platform/profiles.ml: Format List Numerics Star
