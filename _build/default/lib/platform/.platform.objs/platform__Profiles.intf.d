lib/platform/profiles.mli: Format Numerics Star
