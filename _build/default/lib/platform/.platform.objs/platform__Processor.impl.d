lib/platform/processor.ml: Format
