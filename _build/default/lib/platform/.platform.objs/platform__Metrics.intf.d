lib/platform/metrics.mli: Star
