lib/platform/star.ml: Array Float Format List Numerics Processor
