lib/platform/processor.mli: Format
