module Rng = Numerics.Rng
module Distributions = Numerics.Distributions

type t =
  | Homogeneous of float
  | Uniform of { lo : float; hi : float }
  | Lognormal of { mu : float; sigma : float }
  | Bimodal of { slow : float; factor : float }
  | Pareto of { scale : float; shape : float }

let paper_homogeneous = Homogeneous 1.
let paper_uniform = Uniform { lo = 1.; hi = 100. }
let paper_lognormal = Lognormal { mu = 0.; sigma = 1. }

let draw_speed rng = function
  | Homogeneous s -> s
  | Uniform { lo; hi } -> Distributions.uniform rng ~lo ~hi
  | Lognormal { mu; sigma } -> Distributions.lognormal rng ~mu ~sigma
  | Bimodal _ -> assert false (* handled positionally in [generate] *)
  | Pareto { scale; shape } -> Distributions.pareto rng ~scale ~shape

let generate ?bandwidth ?latency rng ~p profile =
  if p <= 0 then invalid_arg "Profiles.generate: p must be positive";
  let speed_of_rank i =
    match profile with
    | Bimodal { slow; factor } -> if i < (p + 1) / 2 then slow else slow *. factor
    | Homogeneous _ | Uniform _ | Lognormal _ | Pareto _ -> draw_speed rng profile
  in
  let speeds = List.init p speed_of_rank in
  Star.of_speeds ?bandwidth ?latency speeds

let name = function
  | Homogeneous _ -> "homogeneous"
  | Uniform _ -> "uniform"
  | Lognormal _ -> "lognormal"
  | Bimodal _ -> "bimodal"
  | Pareto _ -> "pareto"

let of_name = function
  | "homogeneous" -> Some paper_homogeneous
  | "uniform" -> Some paper_uniform
  | "lognormal" -> Some paper_lognormal
  | "bimodal" -> Some (Bimodal { slow = 1.; factor = 10. })
  | _ -> None

let pp ppf t =
  match t with
  | Homogeneous s -> Format.fprintf ppf "homogeneous(s=%.4g)" s
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform[%.4g,%.4g]" lo hi
  | Lognormal { mu; sigma } -> Format.fprintf ppf "lognormal(mu=%.4g,sigma=%.4g)" mu sigma
  | Bimodal { slow; factor } -> Format.fprintf ppf "bimodal(slow=%.4g,x%.4g)" slow factor
  | Pareto { scale; shape } -> Format.fprintf ppf "pareto(scale=%.4g,shape=%.4g)" scale shape
