type node =
  | Worker of Processor.t
  | Cluster of { bandwidth : float; latency : float; children : node list }

let worker ?(bandwidth = 1.) ?(latency = 0.) ~speed () =
  Worker (Processor.make ~bandwidth ~latency ~id:0 ~speed ())

let cluster ?(bandwidth = 1.) ?(latency = 0.) children =
  if children = [] then invalid_arg "Topology.cluster: empty cluster";
  if bandwidth <= 0. then invalid_arg "Topology.cluster: bandwidth must be positive";
  if latency < 0. then invalid_arg "Topology.cluster: latency must be non-negative";
  Cluster { bandwidth; latency; children }

let rec leaf_count = function
  | Worker _ -> 1
  | Cluster { children; _ } -> List.fold_left (fun acc c -> acc + leaf_count c) 0 children

let rec total_speed = function
  | Worker p -> p.Processor.speed
  | Cluster { children; _ } -> List.fold_left (fun acc c -> acc +. total_speed c) 0. children

(* Steady-state one-port throughput of a set of workers behind one
   port: the fractional-knapsack closed form of {!Dlt.Steady_state},
   restated here to keep the dependency direction platform <- dlt. *)
let one_port_throughput procs =
  let sorted =
    List.sort
      (fun (a : Processor.t) b -> Float.compare b.Processor.bandwidth a.Processor.bandwidth)
      procs
  in
  let port_left = ref 1. in
  List.fold_left
    (fun acc (proc : Processor.t) ->
      let affordable = !port_left *. proc.Processor.bandwidth in
      let rate = Float.min proc.Processor.speed affordable in
      port_left := !port_left -. (rate /. proc.Processor.bandwidth);
      acc +. rate)
    0. sorted

let rec equivalent_processor ?(id = 0) node =
  match node with
  | Worker p -> { p with Processor.id }
  | Cluster { bandwidth; latency; children } ->
      let inner = List.map (fun c -> equivalent_processor c) children in
      let internal = one_port_throughput inner in
      Processor.make ~bandwidth ~latency ~id ~speed:(Float.min bandwidth internal) ()

let flatten nodes =
  if nodes = [] then invalid_arg "Topology.flatten: empty platform";
  Star.create (List.mapi (fun i node -> equivalent_processor ~id:(i + 1) node) nodes)

let aggregation_loss nodes =
  let raw = List.fold_left (fun acc n -> acc +. total_speed n) 0. nodes in
  let flat = Star.total_speed (flatten nodes) in
  1. -. (flat /. raw)
