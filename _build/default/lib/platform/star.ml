type t = { workers : Processor.t array; total_speed : float }

let create procs =
  if procs = [] then invalid_arg "Star.create: at least one worker required";
  let workers = Array.of_list procs in
  Array.stable_sort (fun (a : Processor.t) b -> Float.compare a.speed b.speed) workers;
  let total_speed = Numerics.Kahan.sum_by (fun (p : Processor.t) -> p.speed) workers in
  { workers; total_speed }

let of_speeds ?bandwidth ?latency speeds =
  create (List.mapi (fun i s -> Processor.make ?bandwidth ?latency ~id:(i + 1) ~speed:s ()) speeds)

let size t = Array.length t.workers
let workers t = Array.copy t.workers
let worker t i = t.workers.(i)
let total_speed t = t.total_speed
let speeds t = Array.map (fun (p : Processor.t) -> p.speed) t.workers
let relative_speeds t = Array.map (fun (p : Processor.t) -> p.speed /. t.total_speed) t.workers
let slowest t = t.workers.(0)
let fastest t = t.workers.(Array.length t.workers - 1)

let is_homogeneous ?(tol = 1e-9) t =
  let s0 = (slowest t).speed and s1 = (fastest t).speed in
  s1 -. s0 <= tol *. s1

let pp ppf t =
  Format.fprintf ppf "@[<v>star platform, %d workers:@," (size t);
  Array.iter (fun p -> Format.fprintf ppf "  %a@," Processor.pp p) t.workers;
  Format.fprintf ppf "@]"
