(** One worker of the star platform of Section 1.2.

    Following the paper's notation, the processing speed is
    [s_i = 1/w_i] ([w_i] = time per unit of computation) and the incoming
    bandwidth is [1/c_i] ([c_i] = time per unit of data).  An optional
    per-message latency extends the model for the multi-round studies. *)

type t = {
  id : int;
  speed : float;  (** s_i > 0, work units per time unit *)
  bandwidth : float;  (** 1/c_i > 0, data units per time unit *)
  latency : float;  (** per-message start-up cost, >= 0 *)
}

val make : ?bandwidth:float -> ?latency:float -> id:int -> speed:float -> unit -> t
(** Defaults: [bandwidth = 1.], [latency = 0.].  Raises
    [Invalid_argument] on non-positive speed or bandwidth, or negative
    latency. *)

val w : t -> float
(** [w p] is [1 /. p.speed]: seconds per unit of work. *)

val c : t -> float
(** [c p] is [1 /. p.bandwidth]: seconds per unit of data. *)

val compute_time : t -> work:float -> float
(** Time to execute [work] units of computation. *)

val transfer_time : t -> data:float -> float
(** Time to receive [data] units, including latency when [data > 0]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
