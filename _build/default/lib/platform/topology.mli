(** Hierarchical platforms: stars of stars.

    Real grids are rarely flat; a classical DLT device is to aggregate a
    whole sub-cluster into one equivalent worker, valid in steady state
    (large loads): the sub-cluster can absorb load no faster than its
    own master's port and internal workers allow, and no faster than its
    uplink delivers. *)

type node =
  | Worker of Processor.t
  | Cluster of { bandwidth : float; latency : float; children : node list }
      (** A gateway with an uplink of the given bandwidth/latency that
          redistributes (one-port) to its children. *)

val worker : ?bandwidth:float -> ?latency:float -> speed:float -> unit -> node
val cluster : ?bandwidth:float -> ?latency:float -> node list -> node
(** Defaults: bandwidth 1, latency 0.  Raises [Invalid_argument] on an
    empty cluster or non-positive bandwidth. *)

val leaf_count : node -> int
val total_speed : node -> float
(** Sum of the leaves' raw speeds (ignoring link limits). *)

val equivalent_processor : ?id:int -> node -> Processor.t
(** Steady-state aggregation: a [Worker] is itself; a [Cluster] becomes
    a worker of speed [min(uplink bandwidth, one-port steady-state
    throughput of its (recursively aggregated) children)], with the
    uplink's bandwidth and latency. *)

val flatten : node list -> Star.t
(** The equivalent flat star seen by the root master: one aggregated
    worker per top-level node. *)

val aggregation_loss : node list -> float
(** [1 - flat total speed / raw total speed]: compute power lost to
    link bottlenecks. *)
