module Stats = Numerics.Stats
module Kahan = Numerics.Kahan

let speed_ratio star = (Star.fastest star).Processor.speed /. (Star.slowest star).Processor.speed

let coefficient_of_variation star = Stats.coefficient_of_variation (Star.speeds star)

let sum_sqrt_relative star = Kahan.sum_by sqrt (Star.relative_speeds star)

let hom_over_het_bound star =
  let speeds = Star.speeds star in
  let s1 = (Star.slowest star).Processor.speed in
  let sum = Kahan.sum speeds in
  let sum_sqrt = Kahan.sum_by sqrt speeds in
  4. /. 7. *. sum /. (sqrt s1 *. sum_sqrt)

let bimodal_rho_bound ~factor = (1. +. factor) /. (1. +. sqrt factor)
