type t = { id : int; speed : float; bandwidth : float; latency : float }

let make ?(bandwidth = 1.) ?(latency = 0.) ~id ~speed () =
  if speed <= 0. then invalid_arg "Processor.make: speed must be positive";
  if bandwidth <= 0. then invalid_arg "Processor.make: bandwidth must be positive";
  if latency < 0. then invalid_arg "Processor.make: latency must be non-negative";
  { id; speed; bandwidth; latency }

let w p = 1. /. p.speed
let c p = 1. /. p.bandwidth
let compute_time p ~work = work /. p.speed
let transfer_time p ~data = if data > 0. then p.latency +. (data /. p.bandwidth) else 0.

let equal a b =
  a.id = b.id && a.speed = b.speed && a.bandwidth = b.bandwidth && a.latency = b.latency

let pp ppf p =
  Format.fprintf ppf "P%d(s=%.4g, bw=%.4g, lat=%.4g)" p.id p.speed p.bandwidth p.latency
