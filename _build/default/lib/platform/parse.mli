(** Text format for platform descriptions, so experiments can run
    against user-supplied machines.

    One worker per line: [speed [bandwidth [latency]]] (whitespace
    separated; bandwidth defaults to 1, latency to 0).  Blank lines and
    [#] comments are ignored. *)

val of_string : string -> (Star.t, string) result
(** Error messages carry the 1-based line number. *)

val of_file : string -> (Star.t, string) result

val to_string : Star.t -> string
(** Canonical rendering (platform order), re-parseable by
    {!of_string}. *)
