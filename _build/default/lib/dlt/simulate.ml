module Processor = Platform.Processor

let replay (schedule : Schedule.t) =
  let engine = Des.Engine.create () in
  let trace = Des.Trace.create () in
  Array.iter
    (fun (e : Schedule.entry) ->
      if e.Schedule.data > 0. then begin
        let id = e.Schedule.proc.Processor.id in
        (* The handler fires at the interval start and records it using
           the engine's clock, so any causality bug shows up as a
           mismatched trace. *)
        Des.Engine.schedule engine ~time:e.Schedule.comm_start (fun engine ->
            Des.Trace.record trace
              ~resource:(Printf.sprintf "link-P%d" id)
              ~start:(Des.Engine.now engine) ~finish:e.Schedule.comm_end ~label:"c");
        Des.Engine.schedule engine ~time:e.Schedule.compute_start (fun engine ->
            Des.Trace.record trace
              ~resource:(Printf.sprintf "P%d" id)
              ~start:(Des.Engine.now engine) ~finish:e.Schedule.compute_end ~label:"x")
      end)
    schedule.Schedule.entries;
  Des.Engine.run engine;
  trace

let makespan schedule = Des.Trace.makespan (replay schedule)
let gantt ?width schedule = Des.Trace.render_gantt ?width (replay schedule)
