(** Concrete single-round schedules: per-worker communication and
    computation intervals.  Schedules are produced by the allocation
    solvers and validated against the communication model, which lets
    the tests cross-check closed forms against an executable artefact. *)

type entry = {
  proc : Platform.Processor.t;
  data : float;  (** data units received *)
  comm_start : float;
  comm_end : float;
  compute_start : float;
  compute_end : float;
}

type t = { entries : entry array; makespan : float }

type comm_model =
  | Parallel  (** all master→worker links usable simultaneously (§1.2) *)
  | One_port  (** the master serializes its outgoing communications *)

val of_allocation :
  ?order:int array ->
  comm_model -> Platform.Star.t -> Cost_model.t -> allocation:float array -> t
(** Build the earliest schedule realizing [allocation] (data units for
    each worker, in platform order).  Under [One_port] the master sends
    in [order] (a permutation of platform indices; platform order by
    default — note that the *optimal* one-port order is by decreasing
    bandwidth, see {!Linear.one_port_order}).  Workers with 0 data get
    empty intervals.  Raises [Invalid_argument] if the allocation
    length differs from the platform size, contains negative amounts,
    or [order] is not a permutation.  [entries] stay in platform
    order. *)

val validate : comm_model -> Cost_model.t -> t -> (unit, string) result
(** Checks interval consistency: transfer and compute durations match
    the platform parameters, computation starts after reception, and
    under [One_port] communication intervals do not overlap. *)

val total_data : t -> float
val makespan : t -> float
val pp : Format.formatter -> t -> unit
