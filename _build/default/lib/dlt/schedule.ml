module Processor = Platform.Processor
module Star = Platform.Star

type entry = {
  proc : Processor.t;
  data : float;
  comm_start : float;
  comm_end : float;
  compute_start : float;
  compute_end : float;
}

type t = { entries : entry array; makespan : float }
type comm_model = Parallel | One_port

let check_permutation p order =
  if Array.length order <> p then invalid_arg "Schedule.of_allocation: bad order length";
  let seen = Array.make p false in
  Array.iter
    (fun i ->
      if i < 0 || i >= p || seen.(i) then
        invalid_arg "Schedule.of_allocation: order is not a permutation";
      seen.(i) <- true)
    order

let of_allocation ?order comm_model star cost ~allocation =
  let p = Star.size star in
  if Array.length allocation <> p then
    invalid_arg "Schedule.of_allocation: allocation size mismatch";
  Array.iter
    (fun n -> if n < 0. || Float.is_nan n then invalid_arg "Schedule.of_allocation: bad amount")
    allocation;
  let order = match order with Some o -> o | None -> Array.init p (fun i -> i) in
  check_permutation p order;
  let port_free = ref 0. in
  let entries = Array.make p None in
  Array.iter
    (fun i ->
      let proc = Star.worker star i in
      let data = allocation.(i) in
      let comm_start = match comm_model with Parallel -> 0. | One_port -> !port_free in
      let comm_end = comm_start +. Processor.transfer_time proc ~data in
      (match comm_model with
      | One_port -> if data > 0. then port_free := comm_end
      | Parallel -> ());
      let compute_start = comm_end in
      let compute_end =
        compute_start +. Processor.compute_time proc ~work:(Cost_model.work cost data)
      in
      entries.(i) <- Some { proc; data; comm_start; comm_end; compute_start; compute_end })
    order;
  let entries =
    Array.map (function Some e -> e | None -> assert false) entries
  in
  let makespan = Array.fold_left (fun acc e -> Float.max acc e.compute_end) 0. entries in
  { entries; makespan }

let float_close ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol *. (1. +. Float.max (Float.abs a) (Float.abs b))

let validate comm_model cost t =
  let problems = ref [] in
  let fail fmt = Format.kasprintf (fun msg -> problems := msg :: !problems) fmt in
  Array.iter
    (fun e ->
      let expected_comm = Processor.transfer_time e.proc ~data:e.data in
      if not (float_close (e.comm_end -. e.comm_start) expected_comm) then
        fail "P%d: transfer duration %.6g, expected %.6g" e.proc.Processor.id
          (e.comm_end -. e.comm_start) expected_comm;
      let expected_compute =
        Processor.compute_time e.proc ~work:(Cost_model.work cost e.data)
      in
      if not (float_close (e.compute_end -. e.compute_start) expected_compute) then
        fail "P%d: compute duration %.6g, expected %.6g" e.proc.Processor.id
          (e.compute_end -. e.compute_start) expected_compute;
      if e.compute_start +. 1e-9 < e.comm_end then
        fail "P%d: computation starts before reception completes" e.proc.Processor.id)
    t.entries;
  (match comm_model with
  | Parallel -> ()
  | One_port ->
      (* Communication intervals with data must not overlap pairwise. *)
      let busy =
        Array.to_list t.entries
        |> List.filter (fun e -> e.data > 0.)
        |> List.map (fun e -> (e.comm_start, e.comm_end, e.proc.Processor.id))
        |> List.sort compare
      in
      let rec check = function
        | (_, fin, id1) :: ((start, _, id2) :: _ as rest) ->
            if start +. 1e-9 < fin then
              fail "one-port violation: P%d and P%d communications overlap" id1 id2;
            check rest
        | [ _ ] | [] -> ()
      in
      check busy);
  match !problems with [] -> Ok () | msgs -> Error (String.concat "; " (List.rev msgs))

let total_data t = Numerics.Kahan.sum_by (fun e -> e.data) t.entries
let makespan t = t.makespan

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule (makespan %.6g):@," t.makespan;
  Array.iter
    (fun e ->
      Format.fprintf ppf "  P%d: data=%.6g comm=[%.6g,%.6g] compute=[%.6g,%.6g]@,"
        e.proc.Processor.id e.data e.comm_start e.comm_end e.compute_start e.compute_end)
    t.entries;
  Format.fprintf ppf "@]"
