let power_partial_fraction ~alpha ~p =
  if p <= 0 then invalid_arg "Fraction.power_partial_fraction: p must be > 0";
  if alpha < 1. then invalid_arg "Fraction.power_partial_fraction: alpha must be >= 1";
  float_of_int p ** (1. -. alpha)

let power_remaining_fraction ~alpha ~p = 1. -. power_partial_fraction ~alpha ~p

let sorting_gap ~n ~p =
  if n <= 1. then invalid_arg "Fraction.sorting_gap: n must be > 1";
  if p <= 0 then invalid_arg "Fraction.sorting_gap: p must be > 0";
  log (float_of_int p) /. log n

let done_fraction cost ~allocation ~total =
  if total <= 0. then invalid_arg "Fraction.done_fraction: total must be > 0";
  let partial = Numerics.Kahan.sum_by (Cost_model.work cost) allocation in
  partial /. Cost_model.work cost total

let undone_fraction cost ~allocation ~total = 1. -. done_fraction cost ~allocation ~total
