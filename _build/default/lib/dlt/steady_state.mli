(** Steady-state throughput of a stream of (linear) divisible load.

    When the master dispatches an unbounded stream of independent load
    instead of a single batch, the relevant metric is the sustainable
    rate (load per time unit).  Worker [i] can absorb at most [s_i]
    (compute-bound) and at most [bw_i] (link-bound) load per time unit;
    under the one-port model the master's port adds the global
    constraint [Σ c_i·rate_i <= 1].  Both optima have simple closed
    forms — a useful sanity layer for the single-batch schedulers. *)

type solution = {
  rates : float array;  (** load/time accepted by each worker *)
  throughput : float;  (** [Σ rates] *)
}

val parallel : Platform.Star.t -> solution
(** Independent links: [rate_i = min(s_i, bw_i)]. *)

val one_port : Platform.Star.t -> solution
(** Maximize [Σ rate_i] s.t. [rate_i <= s_i] and [Σ rate_i/bw_i <= 1]:
    the fractional-knapsack optimum, greedily saturating the workers
    with the cheapest communication (largest bandwidth) first. *)

val efficiency : Platform.Star.t -> float
(** [one_port throughput / Σ s_i]: how much of the aggregate compute
    power the master's port can feed. *)
