(** Linear DLT under the affine one-port model: sending [n] units to
    worker [i] costs [L_i + c_i·n] (per-message latency [L_i]), the
    master serializes its sends, computation costs [w_i·n].

    This is the "more complicated communication model" of the classical
    DLT literature ([9]) that Section 3 argues becomes meaningful again
    once a preprocessing (sample sort) has made the workload divisible.
    With latencies, (a) participation is no longer free — a worker whose
    latency eats its contribution is better dropped — and (b) the
    dispatch order matters. *)

type solution = {
  allocation : float array;
      (** data per worker in platform order; 0 for dropped workers *)
  makespan : float;
  participants : int list;  (** indices of workers with positive share *)
}

val solve : ?order:int array -> Platform.Star.t -> total:float -> solution
(** Equal-finish-time solution among participating workers, served in
    [order] (decreasing bandwidth by default — the classical optimal
    activation order, see {!Linear.one_port_order}).  Workers whose share would be
    negative are dropped (most negative first), and the participant set
    is then improved by greedy descent: any worker whose removal lowers
    the makespan — e.g. one whose latency dwarfs its contribution — is
    dropped too.  Uses each processor's [latency] field.  Requires
    [total > 0] and [order] to be a permutation. *)

val makespan_of_allocation :
  ?order:int array -> Platform.Star.t -> allocation:float array -> float
(** Simulated makespan of an arbitrary allocation under the same model
    (validation and what-if analysis). *)

val drops_slow_high_latency_workers : Platform.Star.t -> total:float -> bool
(** [true] when the optimal solution uses strictly fewer workers than
    the platform has — a convenience predicate used by experiments. *)
