module Star = Platform.Star
module Processor = Platform.Processor

type solution = { rates : float array; throughput : float }

let parallel star =
  let rates =
    Array.map
      (fun (p : Processor.t) -> Float.min p.Processor.speed p.Processor.bandwidth)
      (Star.workers star)
  in
  { rates; throughput = Numerics.Kahan.sum rates }

let one_port star =
  let workers = Star.workers star in
  let p = Array.length workers in
  let rates = Array.make p 0. in
  (* Serve cheapest communication first: one unit of rate to worker i
     consumes c_i = 1/bw_i of the port. *)
  let order = Array.init p (fun i -> i) in
  Array.sort
    (fun i j -> Float.compare workers.(j).Processor.bandwidth workers.(i).Processor.bandwidth)
    order;
  let port_left = ref 1. in
  Array.iter
    (fun i ->
      let proc = workers.(i) in
      let cost_per_rate = Processor.c proc in
      let rate_limit = proc.Processor.speed in
      let affordable = !port_left /. cost_per_rate in
      let rate = Float.min rate_limit affordable in
      if rate > 0. then begin
        rates.(i) <- rate;
        port_left := !port_left -. (rate *. cost_per_rate)
      end)
    order;
  { rates; throughput = Numerics.Kahan.sum rates }

let efficiency star = (one_port star).throughput /. Star.total_speed star
