module Processor = Platform.Processor
module Star = Platform.Star
module Kahan = Numerics.Kahan
module Roots = Numerics.Roots

let ideal_makespan star cost ~total =
  Cost_model.work cost total /. Star.total_speed star

let divisible_ideal_makespan star cost ~total =
  if total <= 0. then invalid_arg "Bounds.divisible_ideal_makespan: total must be > 0";
  let workers = Star.workers star in
  (* share(T) for compute-only finish w·work(n) = T. *)
  let share proc t =
    let w = Processor.w proc in
    let f n = (w *. Cost_model.work cost n) -. t in
    if f 0. >= 0. then 0.
    else
      match Roots.expand_bracket ~f ~lo:0. ~hi:(Float.max (t /. w) 1.) () with
      | None -> 0.
      | Some (lo, hi) -> Roots.brent ~f ~lo ~hi ()
  in
  let capacity t = Kahan.sum_by (fun proc -> share proc t) workers in
  let f t = capacity t -. total in
  let hi0 =
    Processor.compute_time (Star.slowest star) ~work:(Cost_model.work cost total)
  in
  match Roots.expand_bracket ~f ~lo:0. ~hi:(Float.max hi0 1e-9) () with
  | None -> invalid_arg "Bounds.divisible_ideal_makespan: cannot bracket"
  | Some (lo, hi) -> Roots.brent ~tol:1e-13 ~f ~lo ~hi ()

let communication_bound star ~total =
  let total_bw = Kahan.sum_by (fun (p : Processor.t) -> p.Processor.bandwidth) (Star.workers star) in
  total /. total_bw

let efficiency star cost ~total ~makespan = ideal_makespan star cost ~total /. makespan
