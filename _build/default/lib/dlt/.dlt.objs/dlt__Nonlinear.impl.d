lib/dlt/nonlinear.ml: Array Cost_model Float Linear Numerics Platform Schedule
