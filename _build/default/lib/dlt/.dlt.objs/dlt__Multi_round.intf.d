lib/dlt/multi_round.mli: Cost_model Platform Schedule
