lib/dlt/simulate.ml: Array Des Platform Printf Schedule
