lib/dlt/return_messages.mli: Platform
