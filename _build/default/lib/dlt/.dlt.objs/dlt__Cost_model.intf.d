lib/dlt/cost_model.mli: Format
