lib/dlt/schedule.mli: Cost_model Format Platform
