lib/dlt/bounds.ml: Cost_model Float Numerics Platform
