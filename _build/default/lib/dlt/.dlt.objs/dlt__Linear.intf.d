lib/dlt/linear.mli: Platform Schedule
