lib/dlt/fraction.ml: Cost_model Numerics
