lib/dlt/ordering.ml: Affine Array Float Platform
