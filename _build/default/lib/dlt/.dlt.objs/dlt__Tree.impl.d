lib/dlt/tree.ml: Array Float Linear List Platform
