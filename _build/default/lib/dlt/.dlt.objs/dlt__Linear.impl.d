lib/dlt/linear.ml: Array Cost_model Float Numerics Platform Schedule
