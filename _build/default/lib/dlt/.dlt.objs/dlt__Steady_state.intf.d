lib/dlt/steady_state.mli: Platform
