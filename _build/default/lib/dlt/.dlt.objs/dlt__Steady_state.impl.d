lib/dlt/steady_state.ml: Array Float Numerics Platform
