lib/dlt/affine.mli: Platform
