lib/dlt/fraction.mli: Cost_model
