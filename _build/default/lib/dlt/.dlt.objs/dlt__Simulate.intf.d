lib/dlt/simulate.mli: Des Schedule
