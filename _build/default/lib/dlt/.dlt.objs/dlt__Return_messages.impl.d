lib/dlt/return_messages.ml: Array Float List Platform
