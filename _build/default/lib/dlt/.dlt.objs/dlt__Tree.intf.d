lib/dlt/tree.mli: Platform
