lib/dlt/schedule.ml: Array Cost_model Float Format List Numerics Platform String
