lib/dlt/nonlinear.mli: Cost_model Platform Schedule
