lib/dlt/affine.ml: Array Linear List Logs Numerics Platform
