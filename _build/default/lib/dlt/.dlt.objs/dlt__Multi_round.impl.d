lib/dlt/multi_round.ml: Array Cost_model Float List Platform Schedule
