lib/dlt/bounds.mli: Cost_model Platform
