lib/dlt/ordering.mli: Platform
