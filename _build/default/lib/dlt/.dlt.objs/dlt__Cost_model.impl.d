lib/dlt/cost_model.ml: Format Printf
