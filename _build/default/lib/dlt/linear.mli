(** Classical linear Divisible Load Theory on a heterogeneous star
    (the well-understood case the paper contrasts against).

    Closed-form optimal single-round allocations exist both for the
    parallel-communication model of Section 1.2 and for the classical
    one-port model of [9]; in both the optimal solution has every
    participating worker finish at the same instant. *)

val parallel_allocation : Platform.Star.t -> total:float -> float array
(** Parallel-communication model: worker [i] finishes at
    [(c_i + w_i)·n_i], so the optimum is [n_i ∝ 1/(c_i + w_i)].
    Returns the data amounts in platform order; requires
    [total >= 0]. *)

val parallel_makespan : Platform.Star.t -> total:float -> float
(** [total / Σ 1/(c_i + w_i)]. *)

val one_port_order : Platform.Star.t -> int array
(** The classical optimal one-port activation order: decreasing
    bandwidth (platform indices). *)

val one_port_allocation : Platform.Star.t -> total:float -> float array
(** One-port model (latency-free): the master serves workers in
    {!one_port_order}; along that order the equal-finish-time
    recurrence [n_{next} = n_prev · w_prev / (c_next + w_next)] fixes
    the relative shares, which are then scaled to [total].  Returned in
    platform order. *)

val one_port_makespan : Platform.Star.t -> total:float -> float

val schedule :
  Schedule.comm_model -> Platform.Star.t -> total:float -> Schedule.t
(** The optimal single-round schedule under the given model. *)
