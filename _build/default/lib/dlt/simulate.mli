(** Event-driven replay of a DLT schedule.

    Feeds a {!Schedule.t} through the discrete-event engine, recording
    link and worker activity as a {!Des.Trace.t}: an executable
    cross-check of the analytical makespans, and the source of the
    Gantt charts shown by the examples. *)

val replay : Schedule.t -> Des.Trace.t
(** Resources are ["link-Pi"] for transfers and ["Pi"] for computation;
    empty entries leave no intervals. *)

val makespan : Schedule.t -> float
(** Trace makespan of {!replay} — equals [Schedule.makespan] for
    consistent schedules (asserted by the test suite). *)

val gantt : ?width:int -> Schedule.t -> string
