(** Divisible load scheduling on multi-level (star-of-stars) platforms:
    the tree networks of the classical DLT literature ([9]), built on
    {!Platform.Topology}.

    Strategy: each gateway is summarized by its steady-state-equivalent
    worker to compute shares with the one-port closed form, and the
    dispatch is store-and-forward — a gateway starts redistributing to
    its children once its whole share has arrived.  The resulting
    makespan is exact for this strategy (computed recursively), though
    the strategy itself is a heuristic: cut-through forwarding could
    pipeline levels. *)

type leaf_share = {
  path : int list;  (** child indices from the root, e.g. [\[1; 0\]] *)
  share : float;
  finish : float;  (** when this leaf completes its computation *)
}

type result = {
  leaves : leaf_share list;  (** depth-first order *)
  makespan : float;
}

val schedule : Platform.Topology.node list -> total:float -> result
(** Raises [Invalid_argument] on an empty platform or non-positive
    total. *)

val flat_makespan : Platform.Topology.node list -> total:float -> float
(** One-port makespan of the fully aggregated (single-level) star.
    Note this is a {e summary}, not a bound: the steady-state
    equivalent worker caps a cluster's compute rate by its uplink
    bandwidth, which for a finite batch double-counts the uplink (the
    transfer is already paid explicitly) — so the real tree schedule
    can finish {e earlier} than the flat summary when a cluster's
    internal fabric outruns its uplink.  The test suite demonstrates
    both directions. *)
