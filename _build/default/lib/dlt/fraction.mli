(** The work-fraction analysis at the heart of Section 2 ("there is no
    free lunch") and its Section 3 counterpart for sorting.

    For a cost model where splitting the data changes the total work,
    the quantity of interest is the fraction of the sequential work
    [W = work(N)] actually performed when the load is split. *)

val power_partial_fraction : alpha:float -> p:int -> float
(** [W_partial / W = P^(1-alpha)]: the fraction of an [N^alpha] workload
    performed by one divisible-load round over [p] identical workers
    (Section 2).  Tends to 0 as [p] grows when [alpha > 1]. *)

val power_remaining_fraction : alpha:float -> p:int -> float
(** [1 - P^(1-alpha)], the fraction of work left after the round. *)

val sorting_gap : n:float -> p:int -> float
(** [(W - W_partial)/W = log p / log n] for sorting [n] keys split into
    [p] equal lists (Section 3).  Tends to 0 as [n] grows. *)

val done_fraction : Cost_model.t -> allocation:float array -> total:float -> float
(** Measured counterpart: [Σ work(n_i) / work(total)] for an arbitrary
    split of [total] data units.  Requires [total > 0]. *)

val undone_fraction : Cost_model.t -> allocation:float array -> total:float -> float
(** [1 - done_fraction]. *)
