module Star = Platform.Star
module Processor = Platform.Processor

type policy = Fifo | Lifo

type event = {
  worker : int;
  send_start : float;
  send_end : float;
  compute_end : float;
  return_start : float;
  return_end : float;
}

type t = { events : event list; makespan : float }

let run ?order ?(delta = 1.) policy star ~allocation =
  if delta < 0. then invalid_arg "Return_messages.run: delta must be >= 0";
  let p = Star.size star in
  if Array.length allocation <> p then
    invalid_arg "Return_messages.run: allocation size mismatch";
  let workers = Star.workers star in
  let order = match order with Some o -> o | None -> Array.init p (fun i -> i) in
  if Array.length order <> p then invalid_arg "Return_messages.run: bad order";
  (* Forward phase: one-port sends in dispatch order. *)
  let port = ref 0. in
  let forward =
    Array.map
      (fun i ->
        let proc = workers.(i) in
        let n = allocation.(i) in
        let send_start = !port in
        let send_end = send_start +. Processor.transfer_time proc ~data:n in
        if n > 0. then port := send_end;
        let compute_end = send_end +. (Processor.w proc *. n) in
        (i, send_start, send_end, compute_end))
      order
  in
  (* Return phase: the same port, in the policy's order. *)
  let return_sequence =
    match policy with
    | Fifo -> Array.to_list forward
    | Lifo -> List.rev (Array.to_list forward)
  in
  let events =
    List.map
      (fun (i, send_start, send_end, compute_end) ->
        let proc = workers.(i) in
        let data = delta *. allocation.(i) in
        let return_start = Float.max !port compute_end in
        let return_end = return_start +. Processor.transfer_time proc ~data in
        if data > 0. then port := return_end;
        { worker = i; send_start; send_end; compute_end; return_start; return_end })
      return_sequence
  in
  let makespan = List.fold_left (fun acc e -> Float.max acc e.return_end) 0. events in
  { events; makespan }

let makespan ?order ?delta policy star ~allocation =
  (run ?order ?delta policy star ~allocation).makespan

let best_policy ?order ?delta star ~allocation =
  let fifo = makespan ?order ?delta Fifo star ~allocation in
  let lifo = makespan ?order ?delta Lifo star ~allocation in
  if fifo <= lifo then (Fifo, fifo) else (Lifo, lifo)
