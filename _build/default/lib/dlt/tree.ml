module Topology = Platform.Topology
module Star = Platform.Star
module Processor = Platform.Processor

type leaf_share = { path : int list; share : float; finish : float }
type result = { leaves : leaf_share list; makespan : float }

(* Serve [nodes] from a master whose data is complete at [start]:
   shares come from the one-port closed form over the equivalent
   workers; child [i]'s data arrives when its transfer (in activation
   order) completes, and clusters recurse from that instant. *)
let rec serve nodes ~start ~total ~path_prefix =
  let star =
    Star.create (List.mapi (fun i n -> Topology.equivalent_processor ~id:i n) nodes)
  in
  let allocation = Linear.one_port_allocation star ~total in
  let order = Linear.one_port_order star in
  let node_of = Array.of_list nodes in
  let port = ref start in
  let leaves = ref [] in
  Array.iter
    (fun rank ->
      let proc = Star.worker star rank in
      (* [Star.create] sorted the equivalents by speed; the id we set
         above recovers the position in [nodes]. *)
      let child = proc.Processor.id in
      let share = allocation.(rank) in
      if share > 0. then begin
        let arrival = !port +. Processor.transfer_time proc ~data:share in
        port := arrival;
        let path = path_prefix @ [ child ] in
        match node_of.(child) with
        | Topology.Worker real ->
            let finish = arrival +. Processor.compute_time real ~work:share in
            leaves := { path; share; finish } :: !leaves
        | Topology.Cluster { children; _ } ->
            let sub = serve children ~start:arrival ~total:share ~path_prefix:path in
            leaves := List.rev_append (List.rev sub.leaves) !leaves
      end)
    order;
  let leaves = List.rev !leaves in
  let makespan = List.fold_left (fun acc l -> Float.max acc l.finish) start leaves in
  { leaves; makespan }

let schedule nodes ~total =
  if nodes = [] then invalid_arg "Tree.schedule: empty platform";
  if total <= 0. then invalid_arg "Tree.schedule: total must be > 0";
  let result = serve nodes ~start:0. ~total ~path_prefix:[] in
  (* Depth-first order by path. *)
  { result with leaves = List.sort (fun a b -> compare a.path b.path) result.leaves }

let flat_makespan nodes ~total =
  Linear.one_port_makespan (Topology.flatten nodes) ~total
