(** Multi-installment dispatch (the "multiple rounds" of Section 1.2):
    each worker's share is cut into [rounds] equal chunks sent
    round-robin, so communication pipelines with computation.

    Chunks are processed independently — the divisibility assumption —
    so under a non-linear cost model the executed work is
    [Σ work(chunk)], not [work(total)]: running this simulator with
    [Power alpha] makes Section 2's "intrinsic linearity" argument
    executable. *)

type chunk = {
  worker : int;  (** index in platform order *)
  round : int;
  data : float;
  comm_start : float;
  comm_end : float;
  compute_start : float;
  compute_end : float;
}

type t = { chunks : chunk list; makespan : float }

val run :
  Schedule.comm_model ->
  Platform.Star.t ->
  Cost_model.t ->
  allocation:float array ->
  rounds:int ->
  t
(** Simulate the pipelined dispatch of [allocation] (data per worker, in
    platform order) in [rounds] installments.  Raises
    [Invalid_argument] when [rounds <= 0] or the allocation is
    malformed. *)

val makespan :
  Schedule.comm_model ->
  Platform.Star.t ->
  Cost_model.t ->
  allocation:float array ->
  rounds:int ->
  float

val best_rounds :
  ?max_rounds:int ->
  Schedule.comm_model ->
  Platform.Star.t ->
  Cost_model.t ->
  allocation:float array ->
  int * float
(** Exhaustive search for the round count minimizing the makespan
    (latency pushes the optimum down; pipelining pushes it up). *)
