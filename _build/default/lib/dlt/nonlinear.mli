(** Allocation of non-linear ([n^alpha], [n·log n]) divisible loads, the
    object of Section 2 and of the prior work [31-35] the paper rebuts.

    There is no closed form for general cost models, so the solvers
    equalize finish times numerically: the per-worker finish time is
    monotone in its share, hence for a target makespan [T] each share
    [n_i(T)] is the unique root of the finish-time equation, and the
    optimal [T] is found by bisection on [Σ n_i(T) = total]. *)

val worker_share :
  Schedule.comm_model ->
  Platform.Processor.t ->
  Cost_model.t ->
  offset:float ->
  deadline:float ->
  float
(** Largest load a worker can finish by [deadline] when its
    communication starts at [offset]: the root [n] of
    [offset + c·n + w·work(n) = deadline] (plus latency when [n > 0]);
    0 when even an empty load cannot meet the deadline. *)

val equal_finish_allocation :
  Schedule.comm_model -> Platform.Star.t -> Cost_model.t -> total:float ->
  float array * float
(** Optimal single-round allocation and its makespan.  Under
    [One_port], the master serves workers in platform order and the
    shares are solved sequentially for each candidate makespan.
    Requires [total > 0]. *)

val quadratic_share :
  Platform.Processor.t -> offset:float -> deadline:float -> float
(** Closed form of {!worker_share} for the quadratic cost ([alpha = 2],
    the "second-order loads" of Suresh et al. [35]): the positive root
    of [c·n + w·n² = deadline - offset - latency],
    [n = (−c + √(c² + 4w·budget)) / 2w].  The test suite checks the
    numerical solver against this algebra. *)

val homogeneous_allocation : p:int -> total:float -> float array
(** The trivial optimal split of Section 2: [total/p] everywhere. *)

val homogeneous_makespan :
  c:float -> w:float -> Cost_model.t -> p:int -> total:float -> float
(** [(N/P)·c + w·work(N/P)] — the finish time of the first (and only)
    round on a homogeneous platform with parallel communications. *)

val schedule :
  Schedule.comm_model -> Platform.Star.t -> Cost_model.t -> total:float -> Schedule.t
(** Executable schedule realizing {!equal_finish_allocation}. *)
