module Processor = Platform.Processor
module Star = Platform.Star

type chunk = {
  worker : int;
  round : int;
  data : float;
  comm_start : float;
  comm_end : float;
  compute_start : float;
  compute_end : float;
}

type t = { chunks : chunk list; makespan : float }

let run comm_model star cost ~allocation ~rounds =
  if rounds <= 0 then invalid_arg "Multi_round.run: rounds must be > 0";
  let p = Star.size star in
  if Array.length allocation <> p then invalid_arg "Multi_round.run: allocation size mismatch";
  Array.iter
    (fun n -> if n < 0. || Float.is_nan n then invalid_arg "Multi_round.run: bad amount")
    allocation;
  let workers = Star.workers star in
  let shared_link = ref 0. in
  let link_free = Array.make p 0. in
  let worker_free = Array.make p 0. in
  let chunks = ref [] in
  for round = 0 to rounds - 1 do
    for i = 0 to p - 1 do
      let data = allocation.(i) /. float_of_int rounds in
      if data > 0. then begin
        let proc = workers.(i) in
        let comm_start =
          match comm_model with
          | Schedule.One_port -> !shared_link
          | Schedule.Parallel -> link_free.(i)
        in
        let comm_end = comm_start +. Processor.transfer_time proc ~data in
        (match comm_model with
        | Schedule.One_port -> shared_link := comm_end
        | Schedule.Parallel -> link_free.(i) <- comm_end);
        let compute_start = Float.max comm_end worker_free.(i) in
        let compute_end =
          compute_start +. Processor.compute_time proc ~work:(Cost_model.work cost data)
        in
        worker_free.(i) <- compute_end;
        chunks := { worker = i; round; data; comm_start; comm_end; compute_start; compute_end } :: !chunks
      end
    done
  done;
  let makespan = Array.fold_left Float.max 0. worker_free in
  { chunks = List.rev !chunks; makespan }

let makespan comm_model star cost ~allocation ~rounds =
  (run comm_model star cost ~allocation ~rounds).makespan

let best_rounds ?(max_rounds = 64) comm_model star cost ~allocation =
  let best = ref (1, makespan comm_model star cost ~allocation ~rounds:1) in
  for rounds = 2 to max_rounds do
    let span = makespan comm_model star cost ~allocation ~rounds in
    let _, best_span = !best in
    if span < best_span then best := (rounds, span)
  done;
  !best
