(** Makespan lower bounds and efficiency measures used to normalize the
    experiments. *)

val ideal_makespan : Platform.Star.t -> Cost_model.t -> total:float -> float
(** Perfect-parallelism bound: [work(total) / Σ s_i] — communication is
    free and the sequential work parallelizes with no loss.  For
    super-linear models this is optimistic (splitting reduces the work
    actually needed), which is exactly why the DLT round looks so cheap
    in Section 2; still the right normalizer for efficiency plots. *)

val divisible_ideal_makespan :
  Platform.Star.t -> Cost_model.t -> total:float -> float
(** Equal-finish-time compute-only bound for a *divisible* non-linear
    load: minimize [max_i w_i·work(n_i)] s.t. [Σ n_i = total] — i.e.
    {!Nonlinear.equal_finish_allocation} with free communication.
    Coincides with {!ideal_makespan} for linear loads. *)

val communication_bound : Platform.Star.t -> total:float -> float
(** Every data unit leaves the master: with parallel links the transfer
    phase takes at least [total / Σ bw_i]. *)

val efficiency : Platform.Star.t -> Cost_model.t -> total:float -> makespan:float -> float
(** [ideal_makespan / makespan], in (0, 1] for valid schedules of linear
    loads. *)
