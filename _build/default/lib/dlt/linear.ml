module Processor = Platform.Processor
module Star = Platform.Star
module Kahan = Numerics.Kahan

let check_total total =
  if total < 0. || Float.is_nan total then invalid_arg "Dlt.Linear: total must be >= 0"

let parallel_allocation star ~total =
  check_total total;
  let workers = Star.workers star in
  let inverse_rate p = 1. /. (Processor.c p +. Processor.w p) in
  let denom = Kahan.sum_by inverse_rate workers in
  Array.map (fun p -> total *. inverse_rate p /. denom) workers

let parallel_makespan star ~total =
  check_total total;
  let workers = Star.workers star in
  let denom = Kahan.sum_by (fun p -> 1. /. (Processor.c p +. Processor.w p)) workers in
  total /. denom

let one_port_order star =
  let workers = Star.workers star in
  let order = Array.init (Array.length workers) (fun i -> i) in
  Array.stable_sort
    (fun i j ->
      Float.compare workers.(j).Processor.bandwidth workers.(i).Processor.bandwidth)
    order;
  order

(* Relative shares along the activation order. *)
let one_port_ratios star order =
  let workers = Star.workers star in
  let p = Array.length workers in
  let ratios = Array.make p 1. in
  for r = 1 to p - 1 do
    let prev = workers.(order.(r - 1)) and cur = workers.(order.(r)) in
    ratios.(r) <-
      ratios.(r - 1) *. Processor.w prev /. (Processor.c cur +. Processor.w cur)
  done;
  ratios

let one_port_allocation star ~total =
  check_total total;
  let order = one_port_order star in
  let ratios = one_port_ratios star order in
  let sum = Kahan.sum ratios in
  let allocation = Array.make (Array.length ratios) 0. in
  Array.iteri (fun r i -> allocation.(i) <- total *. ratios.(r) /. sum) order;
  allocation

let one_port_makespan star ~total =
  check_total total;
  let order = one_port_order star in
  let allocation = one_port_allocation star ~total in
  let first = Star.worker star order.(0) in
  (* All workers finish simultaneously; the first-served one finishes
     at (c + w)·n. *)
  (Processor.c first +. Processor.w first) *. allocation.(order.(0))

let schedule comm_model star ~total =
  match comm_model with
  | Schedule.Parallel ->
      Schedule.of_allocation comm_model star Cost_model.Linear
        ~allocation:(parallel_allocation star ~total)
  | Schedule.One_port ->
      Schedule.of_allocation ~order:(one_port_order star) comm_model star
        Cost_model.Linear
        ~allocation:(one_port_allocation star ~total)
