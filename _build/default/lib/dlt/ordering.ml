module Star = Platform.Star
module Processor = Platform.Processor

type evaluation = { order : int array; makespan : float }

let makespan star ~order ~total = (Affine.solve ~order star ~total).Affine.makespan

let identity_order p = Array.init p (fun i -> i)

let sorted_order star compare_procs =
  let workers = Star.workers star in
  let order = identity_order (Star.size star) in
  Array.sort (fun i j -> compare_procs workers.(i) workers.(j)) order;
  order

let by_bandwidth star =
  sorted_order star (fun (a : Processor.t) b -> Float.compare b.bandwidth a.bandwidth)

let by_latency star =
  sorted_order star (fun (a : Processor.t) b -> Float.compare a.latency b.latency)

let by_speed star =
  sorted_order star (fun (a : Processor.t) b -> Float.compare b.speed a.speed)

(* Fold [f] over every permutation of [order] (Heap's algorithm). *)
let iter_permutations order f =
  let a = Array.copy order in
  let n = Array.length a in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec generate k =
    if k <= 1 then f a
    else begin
      for i = 0 to k - 1 do
        generate (k - 1);
        if k mod 2 = 0 then swap i (k - 1) else swap 0 (k - 1)
      done
    end
  in
  generate n

let extremal_order star ~total better =
  let p = Star.size star in
  if p > 9 then invalid_arg "Ordering: exhaustive search limited to p <= 9";
  let best = ref { order = identity_order p; makespan = makespan star ~order:(identity_order p) ~total } in
  iter_permutations (identity_order p) (fun order ->
      let span = makespan star ~order ~total in
      if better span !best.makespan then best := { order = Array.copy order; makespan = span });
  !best

let best_order star ~total = extremal_order star ~total ( < )
let worst_order star ~total = extremal_order star ~total ( > )

let order_spread star ~total =
  let best = best_order star ~total in
  let worst = worst_order star ~total in
  (worst.makespan /. best.makespan) -. 1.
