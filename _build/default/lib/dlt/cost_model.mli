(** Computation-cost models.

    A load of [n] data units costs [work model n] units of computation;
    a worker of speed [s_i = 1/w_i] executes it in [w_i · work model n]
    time.  The paper contrasts [Linear] (classical DLT), [Power alpha]
    with [alpha > 1] (Section 2: matrix product, outer product) and
    [N_log_n] (Section 3: sorting). *)

type t =
  | Linear
  | Power of float  (** [n ↦ n^alpha]; requires [alpha >= 1] *)
  | N_log_n  (** [n ↦ n·log₂ n], 0 for [n <= 1] *)

val work : t -> float -> float
(** Total computation units for [n >= 0] data units. *)

val work_derivative : t -> float -> float
(** d(work)/dn, used by Newton-based allocation solvers. *)

val is_linear : t -> bool

val alpha : t -> float option
(** The exponent for [Power]; [Some 1.] for [Linear]; [None] for
    [N_log_n]. *)

val of_alpha : float -> t
(** [Linear] when [alpha = 1.], otherwise [Power alpha].  Raises
    [Invalid_argument] when [alpha < 1]. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
