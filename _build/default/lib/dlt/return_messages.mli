(** Divisible loads with return messages ([28, 29], explicitly left out
    of the paper's model — provided here as the natural extension).

    After computing its share a worker returns a result of size
    [delta · n] through the master's single port, so forward and return
    transfers contend.  Two classical return policies:

    - {b FIFO}: results come back in the dispatch order;
    - {b LIFO}: results come back in reverse dispatch order (last
      served, first back).

    The simulator takes an allocation (e.g. from {!Linear} or
    {!Affine}) and computes the exact makespan under either policy. *)

type policy = Fifo | Lifo

type event = {
  worker : int;  (** platform index *)
  send_start : float;
  send_end : float;
  compute_end : float;
  return_start : float;
  return_end : float;
}

type t = { events : event list; makespan : float }

val run :
  ?order:int array ->
  ?delta:float ->
  policy ->
  Platform.Star.t ->
  allocation:float array ->
  t
(** [delta] (default 1: results as big as inputs) scales return sizes.
    The port is used for the sends in [order], then for returns in the
    policy's order, each return starting no earlier than its worker's
    computation end and the previous port activity.  Returns use the
    same per-worker bandwidth and latency as sends. *)

val makespan :
  ?order:int array -> ?delta:float -> policy -> Platform.Star.t ->
  allocation:float array -> float

val best_policy :
  ?order:int array -> ?delta:float -> Platform.Star.t -> allocation:float array ->
  policy * float
(** The cheaper of FIFO and LIFO for this instance. *)
