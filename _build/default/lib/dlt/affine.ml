module Star = Platform.Star
module Processor = Platform.Processor
module Kahan = Numerics.Kahan

let src = Logs.Src.create "nldl.dlt" ~doc:"Divisible-load solvers"

module Log = (val Logs.src_log src : Logs.LOG)

type solution = { allocation : float array; makespan : float; participants : int list }

let check_order p order =
  if Array.length order <> p then invalid_arg "Affine: order must cover the platform";
  let seen = Array.make p false in
  Array.iter
    (fun i ->
      if i < 0 || i >= p || seen.(i) then invalid_arg "Affine: order is not a permutation";
      seen.(i) <- true)
    order

(* Solve the equal-finish system for the workers listed in [chosen]
   (served in that order).  With n_i = a_i + b_i·n_first:
     a_first = 0, b_first = 1
     n_{i+1} = (w_i·n_i - L_{i+1}) / (c_{i+1} + w_{i+1}).
   Returns the shares, in the order of [chosen]. *)
let solve_subset workers chosen ~total =
  let k = Array.length chosen in
  let a = Array.make k 0. and b = Array.make k 1. in
  for r = 1 to k - 1 do
    let prev : Processor.t = workers.(chosen.(r - 1)) in
    let cur : Processor.t = workers.(chosen.(r)) in
    let denominator = Processor.c cur +. Processor.w cur in
    a.(r) <- ((Processor.w prev *. a.(r - 1)) -. cur.Processor.latency) /. denominator;
    b.(r) <- Processor.w prev *. b.(r - 1) /. denominator
  done;
  let sum_a = Kahan.sum a and sum_b = Kahan.sum b in
  let n_first = (total -. sum_a) /. sum_b in
  Array.init k (fun r -> a.(r) +. (b.(r) *. n_first))

let makespan_of_shares workers chosen shares =
  let port = ref 0. in
  let worst = ref 0. in
  Array.iteri
    (fun r i ->
      let proc : Processor.t = workers.(i) in
      let n = shares.(r) in
      if n > 0. then begin
        let arrival = !port +. Processor.transfer_time proc ~data:n in
        port := arrival;
        let finish = arrival +. (Processor.w proc *. n) in
        if finish > !worst then worst := finish
      end)
    chosen;
  !worst

let solve ?order star ~total =
  if total <= 0. then invalid_arg "Affine.solve: total must be > 0";
  let p = Star.size star in
  let workers = Star.workers star in
  let order = match order with Some o -> o | None -> Linear.one_port_order star in
  check_order p order;
  (* Greedily drop the most negative share until all are positive. *)
  let rec fit chosen =
    let shares = solve_subset workers chosen ~total in
    let worst_rank = ref (-1) and worst_value = ref 0. in
    Array.iteri
      (fun r n ->
        if n < !worst_value then begin
          worst_value := n;
          worst_rank := r
        end)
      shares;
    if !worst_rank < 0 then (chosen, shares)
    else begin
      if Array.length chosen = 1 then
        invalid_arg "Affine.solve: no feasible participant";
      let kept =
        Array.of_list
          (List.filteri (fun r _ -> r <> !worst_rank) (Array.to_list chosen))
      in
      fit kept
    end
  in
  (* A feasible (all-positive) solution can still be improved by
     dropping a worker whose latency dominates its contribution, so
     descend greedily on the makespan. *)
  let without chosen r =
    Array.of_list (List.filteri (fun r' _ -> r' <> r) (Array.to_list chosen))
  in
  let rec improve (chosen, shares) =
    let span = makespan_of_shares workers chosen shares in
    if Array.length chosen <= 1 then (chosen, shares)
    else begin
      let best = ref None in
      for r = 0 to Array.length chosen - 1 do
        let candidate = fit (without chosen r) in
        let candidate_span =
          let c, s = candidate in
          makespan_of_shares workers c s
        in
        match !best with
        | Some (_, best_span) when candidate_span >= best_span -> ()
        | Some _ | None -> best := Some (candidate, candidate_span)
      done;
      match !best with
      | Some (candidate, candidate_span) when candidate_span < span -. (1e-12 *. span) ->
          Log.debug (fun m ->
              m "affine solve: dropping to %d participants improves %.6g -> %.6g"
                (Array.length (fst candidate)) span candidate_span);
          improve candidate
      | Some _ | None -> (chosen, shares)
    end
  in
  let chosen, shares = improve (fit order) in
  let allocation = Array.make p 0. in
  Array.iteri (fun r i -> allocation.(i) <- shares.(r)) chosen;
  {
    allocation;
    makespan = makespan_of_shares workers chosen shares;
    participants = Array.to_list chosen;
  }

let makespan_of_allocation ?order star ~allocation =
  let p = Star.size star in
  if Array.length allocation <> p then
    invalid_arg "Affine.makespan_of_allocation: allocation size mismatch";
  let workers = Star.workers star in
  let order = match order with Some o -> o | None -> Linear.one_port_order star in
  check_order p order;
  makespan_of_shares workers order (Array.map (fun i -> allocation.(i)) order)

let drops_slow_high_latency_workers star ~total =
  List.length (solve star ~total).participants < Star.size star
