(** Dispatch-order analysis for one-port DLT.

    A classical result for latency-free linear loads is that the
    optimal makespan does not depend on the order in which the master
    serves the workers; with per-message latencies (the affine model)
    order matters, and heuristic orders are compared against the
    brute-force optimum for small platforms. *)

type evaluation = { order : int array; makespan : float }

val makespan : Platform.Star.t -> order:int array -> total:float -> float
(** Optimal equal-finish makespan when serving in [order]
    (see {!Affine.solve}). *)

val identity_order : int -> int array

val by_bandwidth : Platform.Star.t -> int array
(** Decreasing bandwidth — the classical heuristic. *)

val by_latency : Platform.Star.t -> int array
(** Increasing latency. *)

val by_speed : Platform.Star.t -> int array
(** Decreasing compute speed. *)

val best_order : Platform.Star.t -> total:float -> evaluation
(** Exhaustive search over all [p!] orders; raises [Invalid_argument]
    for [p > 9]. *)

val worst_order : Platform.Star.t -> total:float -> evaluation

val order_spread : Platform.Star.t -> total:float -> float
(** [worst/best - 1]: how much the dispatch order matters on this
    platform.  0 (up to numerical noise) for latency-free linear
    loads. *)
