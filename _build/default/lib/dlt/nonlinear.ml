module Processor = Platform.Processor
module Star = Platform.Star
module Roots = Numerics.Roots
module Kahan = Numerics.Kahan

let worker_share _comm_model proc cost ~offset ~deadline =
  let c = Processor.c proc and w = Processor.w proc in
  let lat = proc.Processor.latency in
  let budget = deadline -. offset -. lat in
  if budget <= 0. then 0.
  else begin
    (* finish(n) = c·n + w·work(n) is strictly increasing in n. *)
    let finish n = (c *. n) +. (w *. Cost_model.work cost n) in
    let f n = finish n -. budget in
    if f 0. >= 0. then 0.
    else
      let hi0 = Float.max (budget /. c) 1. in
      match Roots.expand_bracket ~f ~lo:0. ~hi:hi0 () with
      | None -> 0.
      | Some (lo, hi) -> Roots.brent ~f ~lo ~hi ()
  end

(* Total load the platform can absorb by deadline [t] under the model. *)
let capacity comm_model star cost t =
  let workers = Star.workers star in
  match comm_model with
  | Schedule.Parallel ->
      Kahan.sum_by
        (fun proc -> worker_share comm_model proc cost ~offset:0. ~deadline:t)
        workers
  | Schedule.One_port ->
      let order = Linear.one_port_order star in
      let offset = ref 0. in
      let acc = Kahan.create () in
      Array.iter
        (fun i ->
          let proc = workers.(i) in
          let n = worker_share comm_model proc cost ~offset:!offset ~deadline:t in
          if n > 0. then
            offset := !offset +. Processor.transfer_time proc ~data:n;
          Kahan.add acc n)
        order;
      Kahan.total acc

let shares comm_model star cost t =
  let workers = Star.workers star in
  match comm_model with
  | Schedule.Parallel ->
      Array.map (fun proc -> worker_share comm_model proc cost ~offset:0. ~deadline:t) workers
  | Schedule.One_port ->
      let order = Linear.one_port_order star in
      let offset = ref 0. in
      let allocation = Array.make (Array.length workers) 0. in
      Array.iter
        (fun i ->
          let proc = workers.(i) in
          let n = worker_share comm_model proc cost ~offset:!offset ~deadline:t in
          if n > 0. then offset := !offset +. Processor.transfer_time proc ~data:n;
          allocation.(i) <- n)
        order;
      allocation

let equal_finish_allocation comm_model star cost ~total =
  if total <= 0. then invalid_arg "Nonlinear.equal_finish_allocation: total must be > 0";
  let f t = capacity comm_model star cost t -. total in
  (* Any deadline large enough for the slowest worker alone brackets the
     optimum from above. *)
  let slowest = Star.slowest star in
  let hi0 =
    slowest.Processor.latency
    +. Processor.transfer_time slowest ~data:total
    +. Processor.compute_time slowest ~work:(Cost_model.work cost total)
  in
  match Roots.expand_bracket ~f ~lo:0. ~hi:(Float.max hi0 1e-9) () with
  | None -> invalid_arg "Nonlinear.equal_finish_allocation: cannot bracket makespan"
  | Some (lo, hi) ->
      let t = Roots.brent ~tol:1e-13 ~f ~lo ~hi () in
      let allocation = shares comm_model star cost t in
      (* Remove the residual of the outer root find by rescaling; the
         perturbation is O(tol) and keeps Σ n_i = total exactly. *)
      let sum = Kahan.sum allocation in
      let allocation =
        if sum > 0. then Array.map (fun n -> n *. total /. sum) allocation else allocation
      in
      (allocation, t)

let quadratic_share proc ~offset ~deadline =
  let c = Processor.c proc and w = Processor.w proc in
  let budget = deadline -. offset -. proc.Processor.latency in
  if budget <= 0. then 0.
  else (-.c +. sqrt ((c *. c) +. (4. *. w *. budget))) /. (2. *. w)

let homogeneous_allocation ~p ~total =
  if p <= 0 then invalid_arg "Nonlinear.homogeneous_allocation: p must be > 0";
  Array.make p (total /. float_of_int p)

let homogeneous_makespan ~c ~w cost ~p ~total =
  let chunk = total /. float_of_int p in
  (c *. chunk) +. (w *. Cost_model.work cost chunk)

let schedule comm_model star cost ~total =
  let allocation, _ = equal_finish_allocation comm_model star cost ~total in
  match comm_model with
  | Schedule.Parallel -> Schedule.of_allocation comm_model star cost ~allocation
  | Schedule.One_port ->
      Schedule.of_allocation ~order:(Linear.one_port_order star) comm_model star cost
        ~allocation
