(** Experiment E2 (paper Section 3): sorting as an almost-divisible
    load.

    For each [(N, p)]: run a real sample sort, measure the divisible
    fraction of the work (phase 3 share) against the closed form
    [1 - log p / log N], the max-bucket concentration against the
    Theorem B.4 envelope, and the modelled parallel speedup.  A second
    table exercises the heterogeneous splitters of Section 3.2. *)

type row = {
  n : int;
  p : int;
  s : int;  (** oversampling ratio used *)
  predicted_gap : float;  (** [log p / log N] *)
  measured_gap : float;  (** 1 - measured divisible fraction *)
  max_bucket_ratio : float;
  envelope : float;
  speedup : float;
  ideal_speedup : float;  (** [Σ s_i / master speed], = p here *)
}

type hetero_row = {
  p : int;
  n : int;
  imbalance : float;  (** (tmax-tmin)/tmin over local sort times *)
  naive_imbalance : float;  (** same with equal-size buckets *)
}

val run :
  ?sizes:int list -> ?processor_counts:int list -> ?seed:int -> unit -> row list

val run_hetero :
  ?sizes:int list -> ?processor_counts:int list -> ?trials:int -> ?seed:int -> unit ->
  hetero_row list

val print : row list -> unit
val print_hetero : hetero_row list -> unit
