let mean_sd (s : Numerics.Stats.summary) = Printf.sprintf "%.4g ± %.2g" s.mean s.stddev
let float_cell ?(digits = 4) v = Printf.sprintf "%.*g" digits v
let int_cell = string_of_int

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let subsection title = Printf.printf "\n--- %s ---\n%!" title
