(** Shared formatting helpers for the experiment drivers: every
    reproduced table/figure is printed as an aligned text table (the
    paper's "rows/series") plus an optional ASCII chart of the shape. *)

val mean_sd : Numerics.Stats.summary -> string
(** ["mean ± sd"] with compact precision. *)

val float_cell : ?digits:int -> float -> string
val int_cell : int -> string

val section : string -> unit
(** Print a banner: [=== title ===]. *)

val subsection : string -> unit
