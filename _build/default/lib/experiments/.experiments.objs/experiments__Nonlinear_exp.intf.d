lib/experiments/nonlinear_exp.mli:
