lib/experiments/mapreduce_exp.mli:
