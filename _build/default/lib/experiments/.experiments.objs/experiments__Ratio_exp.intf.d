lib/experiments/ratio_exp.mli:
