lib/experiments/nonlinear_exp.ml: Dlt List Numerics Platform Report
