lib/experiments/sorting_exp.mli:
