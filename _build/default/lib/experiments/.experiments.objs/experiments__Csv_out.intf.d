lib/experiments/csv_out.mli:
