lib/experiments/time_exp.mli: Platform
