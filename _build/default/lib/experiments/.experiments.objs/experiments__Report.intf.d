lib/experiments/report.mli: Numerics
