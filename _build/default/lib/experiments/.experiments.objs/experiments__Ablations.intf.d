lib/experiments/ablations.mli:
