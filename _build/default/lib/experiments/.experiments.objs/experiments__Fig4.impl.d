lib/experiments/fig4.ml: Array List Numerics Partition Platform Printf Report
