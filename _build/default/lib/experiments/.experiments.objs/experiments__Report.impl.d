lib/experiments/report.ml: Numerics Printf
