lib/experiments/sorting_exp.ml: Array Dlt Float List Numerics Platform Report Sortlib
