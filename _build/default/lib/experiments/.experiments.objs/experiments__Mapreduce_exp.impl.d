lib/experiments/mapreduce_exp.ml: Array Linalg List Mapreduce Numerics Platform Report
