lib/experiments/ratio_exp.ml: Array List Numerics Partition Platform Report
