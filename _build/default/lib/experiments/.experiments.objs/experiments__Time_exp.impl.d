lib/experiments/time_exp.ml: Array List Numerics Partition Platform Printf Report
