lib/experiments/csv_out.ml: Buffer Fun List String
