lib/experiments/fig4.mli: Numerics Platform
