lib/experiments/ablations.ml: Array Dlt Float Linalg List Mapreduce Numerics Partition Platform Printf Report Sortlib
