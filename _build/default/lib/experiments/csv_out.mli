(** Minimal CSV writer so experiment series can be post-processed with
    external plotting tools. *)

val escape : string -> string
(** RFC-4180 quoting of one field. *)

val to_string : header:string list -> rows:string list list -> string
(** Raises [Invalid_argument] when a row's width differs from the
    header's. *)

val write : path:string -> header:string list -> rows:string list list -> unit
