(** Experiment E1 (paper Section 2): the fraction of an [N^alpha]
    workload performed by one divisible-load round.

    For each [(alpha, p)] the driver builds the optimal single-round
    allocation with the numerical solver, measures
    [Σ work(n_i)/work(N)], and compares it with the closed form
    [p^(1-alpha)] (exact on homogeneous platforms).  It also reports the
    heterogeneous measured fraction, which the paper's asymptotic
    argument covers qualitatively. *)

type row = {
  alpha : float;
  p : int;
  predicted : float;  (** [p^(1-alpha)] *)
  measured_homogeneous : float;
  measured_heterogeneous : float;  (** uniform-speed platform, same p *)
  makespan : float;  (** homogeneous equal-finish makespan *)
}

val run :
  ?alphas:float list ->
  ?processor_counts:int list ->
  ?total:float ->
  ?seed:int ->
  unit ->
  row list

val print : row list -> unit
