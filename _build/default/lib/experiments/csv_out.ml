let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_string ~header ~rows =
  let width = List.length header in
  let buf = Buffer.create 1024 in
  let emit row =
    if List.length row <> width then invalid_arg "Csv_out: row width mismatch";
    Buffer.add_string buf (String.concat "," (List.map escape row));
    Buffer.add_char buf '\n'
  in
  emit header;
  List.iter emit rows;
  Buffer.contents buf

let write ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header ~rows))
