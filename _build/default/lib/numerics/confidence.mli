(** Confidence intervals for experiment means (normal approximation —
    the Figure-4 points average 100 i.i.d. trials, comfortably in CLT
    territory). *)

type interval = { lo : float; hi : float; level : float }

val mean_interval : ?level:float -> float array -> interval
(** Two-sided interval for the mean at confidence [level] (default
    0.95): [mean ± z·sd/√n].  Requires at least 2 samples. *)

val of_summary : ?level:float -> Stats.summary -> interval

val contains : interval -> float -> bool

val pp : Format.formatter -> interval -> unit
