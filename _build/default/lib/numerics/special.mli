(** Special functions needed by the statistical checks: error function,
    normal CDF/quantile, log-gamma.  Implementations are classical
    rational/series approximations with documented absolute error. *)

val erf : float -> float
(** Abramowitz-Stegun 7.1.26 rational approximation; absolute error
    below 1.5e-7. *)

val erfc : float -> float

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** Φ((x-mu)/sigma). *)

val normal_quantile : float -> float
(** Inverse standard-normal CDF (Acklam's algorithm, refined by one
    Newton step; |error| < 1e-9).  Raises [Invalid_argument] outside
    (0, 1). *)

val log_gamma : float -> float
(** Lanczos approximation, [x > 0]; relative error below 1e-10. *)

val log_factorial : int -> float
(** [log n!] via {!log_gamma}. *)
