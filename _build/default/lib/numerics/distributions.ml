let uniform rng ~lo ~hi = Rng.uniform rng lo hi

let gaussian rng ~mu ~sigma =
  (* Box-Muller; we draw u1 away from 0 to keep log finite. *)
  let rec nonzero () =
    let u = Rng.float rng in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = Rng.float rng in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (gaussian rng ~mu ~sigma)

let exponential rng ~rate =
  assert (rate > 0.);
  let rec nonone () =
    let u = Rng.float rng in
    if u < 1. then u else nonone ()
  in
  -.log (1. -. nonone ()) /. rate

let pareto rng ~scale ~shape =
  assert (scale > 0. && shape > 0.);
  let u = 1. -. Rng.float rng in
  scale /. (u ** (1. /. shape))

let zipf_weights ~n ~skew =
  assert (n > 0);
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** skew)) in
  let total = Array.fold_left ( +. ) 0. w in
  Array.map (fun x -> x /. total) w

let categorical rng ~weights =
  let u = Rng.float rng in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  scan 0 0.
