type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ?(bins = 20) ~lo ~hi () =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be > 0";
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_of t x =
  let bins = Array.length t.counts in
  let raw = int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins) in
  max 0 (min (bins - 1) raw)

let add t x =
  t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
  t.total <- t.total + 1

let of_array ?bins a =
  if Array.length a = 0 then invalid_arg "Histogram.of_array: empty array";
  let lo = Array.fold_left Float.min a.(0) a in
  let hi = Array.fold_left Float.max a.(0) a in
  (* Widen degenerate ranges so every value fits in a bin. *)
  let hi = if hi > lo then hi else lo +. 1. in
  let t = create ?bins ~lo ~hi () in
  Array.iter (add t) a;
  t

let counts t = Array.copy t.counts
let total t = t.total

let bin_bounds t i =
  let bins = Array.length t.counts in
  if i < 0 || i >= bins then invalid_arg "Histogram.bin_bounds: out of range";
  let width = (t.hi -. t.lo) /. float_of_int bins in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

let render ?(width = 40) t =
  let buf = Buffer.create 512 in
  let peak = max 1 t.counts.(mode_bin t) in
  Array.iteri
    (fun i count ->
      let lo, hi = bin_bounds t i in
      let bar = count * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%10.4g, %10.4g) |%s%s %d\n" lo hi (String.make bar '#')
           (String.make (width - bar) ' ')
           count))
    t.counts;
  Buffer.contents buf
