(** Deterministic pseudo-random number generation.

    The generator is xoshiro256++ seeded through splitmix64, which gives
    high-quality, reproducible streams without depending on the state of
    the global [Random] module.  Every experiment in this repository
    takes an explicit generator so that runs are replayable. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a fresh generator.  The default seed is a
    fixed constant so that unseeded runs are still deterministic. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    resulting streams are statistically independent.  Used to give each
    trial of a sweep its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)].  Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
