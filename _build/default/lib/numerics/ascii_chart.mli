(** Minimal ASCII line charts so the benchmark harness can show the
    *shape* of each paper figure directly in the terminal. *)

type series = { label : string; points : (float * float) array }

val render :
  ?width:int -> ?height:int -> ?title:string -> series list -> string
(** Renders all series on a shared scale; each series is drawn with its
    own marker character ([0]..[9] then [a]..).  Returns the multi-line
    chart followed by a legend.  Empty input yields an empty string. *)

val print : ?width:int -> ?height:int -> ?title:string -> series list -> unit
