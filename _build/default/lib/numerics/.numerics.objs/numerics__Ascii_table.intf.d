lib/numerics/ascii_table.mli: Format
