lib/numerics/distributions.ml: Array Float Rng
