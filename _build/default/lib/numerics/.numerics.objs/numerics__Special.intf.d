lib/numerics/special.mli:
