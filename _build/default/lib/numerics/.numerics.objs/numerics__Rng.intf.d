lib/numerics/rng.mli:
