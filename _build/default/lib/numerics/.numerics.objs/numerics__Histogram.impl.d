lib/numerics/histogram.ml: Array Buffer Float Printf String
