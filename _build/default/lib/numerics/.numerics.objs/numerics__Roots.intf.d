lib/numerics/roots.mli:
