lib/numerics/distributions.mli: Rng
