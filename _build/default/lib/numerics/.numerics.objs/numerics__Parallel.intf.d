lib/numerics/parallel.mli:
