lib/numerics/ascii_table.ml: Array Buffer Format List Printf String
