lib/numerics/confidence.ml: Format Special Stats
