lib/numerics/apportion.mli:
