lib/numerics/ascii_chart.mli:
