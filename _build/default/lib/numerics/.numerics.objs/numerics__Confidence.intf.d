lib/numerics/confidence.mli: Format Stats
