lib/numerics/apportion.ml: Array Float Int Kahan
