lib/numerics/histogram.mli:
