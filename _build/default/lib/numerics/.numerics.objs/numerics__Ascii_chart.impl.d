lib/numerics/ascii_chart.ml: Array Buffer List Printf String
