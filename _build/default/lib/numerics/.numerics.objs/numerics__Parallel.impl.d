lib/numerics/parallel.ml: Array Domain List
