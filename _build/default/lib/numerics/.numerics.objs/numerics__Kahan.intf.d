lib/numerics/kahan.mli:
