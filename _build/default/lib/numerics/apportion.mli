(** Integer apportionment: split an integer total into parts
    proportional to real weights (largest-remainder / Hamilton method).

    Used to snap real-valued partition prescriptions (areas ∝ speeds) to
    integer matrix dimensions without gaps or overlaps. *)

val largest_remainder : weights:float array -> total:int -> int array
(** Parts are non-negative, sum exactly to [total], and differ from the
    exact proportional share by less than 1.  Raises [Invalid_argument]
    on negative totals, empty or non-positive-sum weights, or any
    negative weight. *)
