(** Aligned plain-text tables, used by the benchmark harness to print the
    rows of each reproduced figure. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Right] everywhere. *)

val render : t -> string
val pp : Format.formatter -> t -> unit
val print : t -> unit
(** Render to [stdout] followed by a newline flush. *)
