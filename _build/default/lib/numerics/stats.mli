(** Summary statistics for experiment reporting (mean ± stddev error bars
    of Figure 4, concentration measurements of Section 3). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
}

val mean : float array -> float
val variance : float array -> float
(** Sample variance; 0 for arrays of length < 2. *)

val stddev : float array -> float
val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val median : float array -> float
val quantile : float array -> float -> float
(** [quantile a q] with [0 <= q <= 1], linear interpolation between order
    statistics.  Does not mutate [a]. *)

val coefficient_of_variation : float array -> float
(** stddev / mean; a heterogeneity measure for speed vectors. *)

val pp_summary : Format.formatter -> summary -> unit

(** Streaming (single-pass, numerically stable) moments — Welford's
    algorithm; used where experiment series are too long to buffer. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 before any sample. *)

  val variance : t -> float
  (** Sample variance (n-1); 0 with fewer than 2 samples. *)

  val stddev : t -> float

  val merge : t -> t -> t
  (** Combine two independent accumulators (Chan's parallel update). *)
end
