(** Random variate generation for the speed profiles used in the paper's
    evaluation (Section 4.3) and for workload generation. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. *)

val gaussian : Rng.t -> mu:float -> sigma:float -> float
(** Normal variate by the Box-Muller transform. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian; the paper uses [mu = 0], [sigma = 1]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate > 0]. *)

val pareto : Rng.t -> scale:float -> shape:float -> float
(** Pareto with minimum [scale] and tail index [shape]. *)

val zipf_weights : n:int -> skew:float -> float array
(** Normalized Zipf probability vector of length [n] with exponent
    [skew]; used to generate skewed key populations for sorting. *)

val categorical : Rng.t -> weights:float array -> int
(** Draw an index according to a normalized probability vector. *)
