type series = { label : string; points : (float * float) array }

let markers = "0123456789abcdefghijklmnopqrstuvwxyz"

let bounds all =
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  List.iter
    (fun s ->
      Array.iter
        (fun (x, y) ->
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        s.points)
    all;
  (!xmin, !xmax, !ymin, !ymax)

let render ?(width = 64) ?(height = 16) ?title all =
  let total_points = List.fold_left (fun acc s -> acc + Array.length s.points) 0 all in
  if total_points = 0 then ""
  else begin
    let xmin, xmax, ymin, ymax = bounds all in
    let xspan = if xmax > xmin then xmax -. xmin else 1. in
    let yspan = if ymax > ymin then ymax -. ymin else 1. in
    let grid = Array.make_matrix height width ' ' in
    let place marker (x, y) =
      let col = int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)) in
      let row = int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1)) in
      let row = height - 1 - row in
      grid.(row).(col) <- marker
    in
    List.iteri
      (fun i s ->
        let marker = markers.[i mod String.length markers] in
        Array.iter (place marker) s.points)
      all;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    (match title with
    | Some t ->
        Buffer.add_string buf t;
        Buffer.add_char buf '\n'
    | None -> ());
    for row = 0 to height - 1 do
      let y = ymax -. (float_of_int row /. float_of_int (height - 1) *. yspan) in
      Buffer.add_string buf (Printf.sprintf "%10.3g |" y);
      Buffer.add_string buf (String.init width (fun col -> grid.(row).(col)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s%-10.4g%*s%.4g\n" (String.make 12 ' ') xmin (width - 10) ""
         xmax);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "  [%c] %s\n" markers.[i mod String.length markers] s.label))
      all;
    Buffer.contents buf
  end

let print ?width ?height ?title all =
  print_string (render ?width ?height ?title all);
  flush stdout
