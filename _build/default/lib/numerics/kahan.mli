(** Compensated (Kahan-Babuška) summation.

    Communication-volume accounting sums millions of small block
    contributions; compensated summation keeps the totals exact enough
    that ratio comparisons against closed-form bounds are meaningful. *)

type t
(** A running compensated sum. *)

val create : unit -> t
val add : t -> float -> unit
val total : t -> float

val sum : float array -> float
(** One-shot compensated sum of an array. *)

val sum_list : float list -> float

val sum_by : ('a -> float) -> 'a array -> float
(** [sum_by f a] is the compensated sum of [f a.(i)]. *)
