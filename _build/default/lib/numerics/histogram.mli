(** Fixed-width binned histograms with a terminal rendering, used to
    show the distributions behind the concentration experiments. *)

type t

val create : ?bins:int -> lo:float -> hi:float -> unit -> t
(** [bins] defaults to 20.  Raises [Invalid_argument] unless
    [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
(** Values outside [\[lo, hi)] land in the closest edge bin. *)

val of_array : ?bins:int -> float array -> t
(** Bounds taken from the data; raises on an empty array. *)

val counts : t -> int array
val total : t -> int
val bin_bounds : t -> int -> float * float

val mode_bin : t -> int
(** Index of the fullest bin (smallest index on ties). *)

val render : ?width:int -> t -> string
(** One line per bin: bounds, a bar scaled to the fullest bin, count. *)
