type t = { mutable sum : float; mutable compensation : float }

let create () = { sum = 0.; compensation = 0. }

(* Neumaier's variant: also correct when the addend dominates the sum. *)
let add t x =
  let s = t.sum +. x in
  if Float.abs t.sum >= Float.abs x then
    t.compensation <- t.compensation +. (t.sum -. s +. x)
  else t.compensation <- t.compensation +. (x -. s +. t.sum);
  t.sum <- s

let total t = t.sum +. t.compensation

let sum a =
  let t = create () in
  Array.iter (add t) a;
  total t

let sum_list l =
  let t = create () in
  List.iter (add t) l;
  total t

let sum_by f a =
  let t = create () in
  Array.iter (fun x -> add t (f x)) a;
  total t
