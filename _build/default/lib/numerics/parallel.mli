(** Small multicore helpers over OCaml 5 domains.

    The simulators in this repository model parallel platforms; these
    helpers let the heavy kernels (local sorts, matrix products) also
    *run* in parallel on the host machine. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val parallel_for : ?domains:int -> int -> (int -> unit) -> unit
(** [parallel_for n body] runs [body i] for [i in 0..n-1], partitioned
    into contiguous ranges across [domains] worker domains (the calling
    domain works too).  [body] must only write to disjoint state per
    index.  Falls back to a sequential loop when [domains <= 1] or
    [n <= 1]. *)

val parallel_map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Element-wise map with the same partitioning contract. *)
