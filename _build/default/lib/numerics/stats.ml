type summary = { n : int; mean : float; stddev : float; min : float; max : float }

let mean a =
  if Array.length a = 0 then invalid_arg "Stats.mean: empty array";
  Kahan.sum a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else
    let m = mean a in
    Kahan.sum_by (fun x -> (x -. m) *. (x -. m)) a /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

let summarize a =
  if Array.length a = 0 then invalid_arg "Stats.summarize: empty array";
  let lo = Array.fold_left Float.min a.(0) a in
  let hi = Array.fold_left Float.max a.(0) a in
  { n = Array.length a; mean = mean a; stddev = stddev a; min = lo; max = hi }

let quantile a q =
  if Array.length a = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median a = quantile a 0.5
let coefficient_of_variation a = stddev a /. mean a

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" s.n s.mean s.stddev
    s.min s.max

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let merge a b =
    if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      {
        n;
        mean = a.mean +. (delta *. float_of_int b.n /. nf);
        m2 =
          a.m2 +. b.m2
          +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf);
      }
    end
end
