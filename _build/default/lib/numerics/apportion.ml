let largest_remainder ~weights ~total =
  if total < 0 then invalid_arg "Apportion.largest_remainder: negative total";
  let n = Array.length weights in
  if n = 0 then invalid_arg "Apportion.largest_remainder: empty weights";
  Array.iter
    (fun w -> if w < 0. || Float.is_nan w then invalid_arg "Apportion.largest_remainder: bad weight")
    weights;
  let sum = Kahan.sum weights in
  if sum <= 0. then invalid_arg "Apportion.largest_remainder: weights sum to zero";
  let exact = Array.map (fun w -> w /. sum *. float_of_int total) weights in
  let parts = Array.map (fun e -> int_of_float (Float.floor e)) exact in
  let assigned = Array.fold_left ( + ) 0 parts in
  let leftover = total - assigned in
  (* Hand the leftover units to the largest fractional remainders. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let ri = exact.(i) -. Float.floor exact.(i) in
      let rj = exact.(j) -. Float.floor exact.(j) in
      match Float.compare rj ri with 0 -> Int.compare i j | c -> c)
    order;
  for rank = 0 to leftover - 1 do
    let i = order.(rank) in
    parts.(i) <- parts.(i) + 1
  done;
  parts
