(** One-dimensional root finding, used by the non-linear DLT allocation
    solver of Section 2 (equal-finish-time equations
    [c·n + w·n^α = T] have no closed form for general [α]). *)

exception No_bracket
(** Raised when the supplied interval does not bracket a root. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Plain bisection.  Requires [f lo] and [f hi] of opposite signs
    (or one of them zero); raises [No_bracket] otherwise. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Brent's method: inverse-quadratic/secant steps guarded by bisection.
    Same bracketing requirement as {!bisect}, much faster convergence. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) -> x0:float ->
  unit -> float option
(** Newton iteration from [x0]; [None] when it fails to converge. *)

val expand_bracket :
  f:(float -> float) -> lo:float -> hi:float -> ?grow:float -> ?max_iter:int -> unit ->
  (float * float) option
(** Geometrically grow [hi] until [lo, hi] brackets a root of [f]. *)
