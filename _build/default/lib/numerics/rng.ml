type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let default_seed = 0x5eed_0f_1abe11ed

(* splitmix64, used only to expand a user seed into xoshiro state. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let create ?(seed = default_seed) () = of_seed64 (Int64.of_int seed)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (int64 t)

let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t lo hi =
  assert (lo < hi);
  lo +. ((hi -. lo) *. float t)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over the low 62 bits keeps the draw unbiased. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let limit = Int64.mul (Int64.div mask (Int64.of_int bound)) (Int64.of_int bound) in
  let rec draw () =
    let v = Int64.logand (int64 t) mask in
    if v >= limit then draw ()
    else Int64.to_int (Int64.rem v (Int64.of_int bound))
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
