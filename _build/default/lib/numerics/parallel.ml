let default_domains () = max 1 (Domain.recommended_domain_count ())

let parallel_for ?domains n body =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if domains <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      body i
    done
  else begin
    let workers = min domains n in
    (* Contiguous ranges; the last worker runs on the calling domain. *)
    let range w =
      let per = n / workers and extra = n mod workers in
      let start = (w * per) + min w extra in
      let len = per + (if w < extra then 1 else 0) in
      (start, len)
    in
    let run w () =
      let start, len = range w in
      for i = start to start + len - 1 do
        body i
      done
    in
    let spawned = List.init (workers - 1) (fun w -> Domain.spawn (run w)) in
    run (workers - 1) ();
    List.iter Domain.join spawned
  end

let parallel_map_array ?domains f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    parallel_for ?domains (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end
