type align = Left | Right

type t = {
  headers : string list;
  width : int;
  mutable rows : string list list; (* reverse order *)
  mutable align : align array;
}

let create ~headers =
  {
    headers;
    width = List.length headers;
    rows = [];
    align = Array.make (List.length headers) Right;
  }

let add_row t row =
  if List.length row <> t.width then
    invalid_arg
      (Printf.sprintf "Ascii_table.add_row: expected %d cells, got %d" t.width
         (List.length row));
  t.rows <- row :: t.rows

let set_align t aligns =
  if List.length aligns <> t.width then
    invalid_arg "Ascii_table.set_align: wrong number of alignments";
  t.align <- Array.of_list aligns

let column_widths t =
  let widths = Array.of_list (List.map String.length t.headers) in
  let account row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter account t.rows;
  widths

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 256 in
  let render_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad t.align.(i) widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  let rule = Array.fold_left (fun acc w -> acc + w) 0 widths + (2 * (t.width - 1)) in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter render_row (List.rev t.rows);
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

let print t =
  print_string (render t);
  flush stdout
