type interval = { lo : float; hi : float; level : float }

let of_summary ?(level = 0.95) (s : Stats.summary) =
  if s.Stats.n < 2 then invalid_arg "Confidence: at least 2 samples required";
  if level <= 0. || level >= 1. then invalid_arg "Confidence: level must be in (0,1)";
  let z = Special.normal_quantile (1. -. ((1. -. level) /. 2.)) in
  let half = z *. s.Stats.stddev /. sqrt (float_of_int s.Stats.n) in
  { lo = s.Stats.mean -. half; hi = s.Stats.mean +. half; level }

let mean_interval ?level samples = of_summary ?level (Stats.summarize samples)
let contains t x = t.lo <= x && x <= t.hi

let pp ppf t =
  Format.fprintf ppf "[%.6g, %.6g] @%.0f%%" t.lo t.hi (100. *. t.level)
