(** K-way merge of sorted runs with a binary heap — the linear-ithmic
    building block the bucket-merging phases of PSRS and the MapReduce
    sort reducers need ([O(N log k)] instead of re-sorting,
    [O(N log N)]). *)

val k_way : float array list -> float array
(** Merge sorted runs into one sorted array.  Runs must each be sorted
    ascending (checked in debug builds via [assert]); empty runs are
    fine. *)

val two_way : float array -> float array -> float array
(** The classical binary merge, exposed for tests and small cases. *)

val is_sorted : float array -> bool
