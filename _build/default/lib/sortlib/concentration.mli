(** Empirical verification of the Theorem B.4 bucket-size bound: run
    many seeded sample-sort trials and measure how often the largest
    bucket exceeds the [(N/p)(1 + (1/ln N)^(1/3))] envelope. *)

type report = {
  trials : int;
  n : int;
  p : int;
  s : int;
  ratios : Numerics.Stats.summary;  (** of MaxSize/(N/p) over trials *)
  envelope : float;  (** [1 + (1/ln N)^(1/3)] *)
  exceed_count : int;  (** trials whose ratio exceeded the envelope *)
}

val run :
  ?cmp:(float -> float -> int) ->
  ?s:int ->
  Numerics.Rng.t ->
  keys:(Numerics.Rng.t -> int -> float array) ->
  n:int -> p:int -> trials:int ->
  report
(** [keys rng n] generates the input population for each trial (e.g.
    uniform or Zipf-skewed draws). *)

val uniform_keys : Numerics.Rng.t -> int -> float array
val zipf_like_keys : ?skew:float -> Numerics.Rng.t -> int -> float array
(** Heavy repetition of small values: a stress test for splitter
    selection under skew. *)

val pp_report : Format.formatter -> report -> unit
