module Star = Platform.Star
module Processor = Platform.Processor

type timing = {
  phase1 : float;
  phase2 : float;
  phase3 : float;
  communication : float;
  total : float;
  sequential : float;
  speedup : float;
  divisible_fraction : float;
}

let log2 x = log x /. log 2.
let nlogn n = if n <= 1. then 0. else n *. log2 n

let evaluate ?(master_speed = 1.) ?(with_communication = true) star ~bucket_sizes ~s =
  let p = Star.size star in
  if Array.length bucket_sizes <> p then
    invalid_arg "Parallel_model.evaluate: one bucket per worker required";
  let workers = Star.workers star in
  let n = Array.fold_left ( + ) 0 bucket_sizes in
  let nf = float_of_int n in
  let sample = float_of_int (s * p) in
  let phase1 = nlogn sample /. master_speed in
  let phase2 = nf *. log2 (float_of_int (max 2 p)) /. master_speed in
  let phase3 =
    Array.to_list (Array.mapi (fun i size -> (i, size)) bucket_sizes)
    |> List.fold_left
         (fun acc (i, size) ->
           Float.max acc
             (Processor.compute_time workers.(i) ~work:(nlogn (float_of_int size))))
         0.
  in
  let communication =
    if not with_communication then 0.
    else
      Array.to_list (Array.mapi (fun i size -> (i, size)) bucket_sizes)
      |> List.fold_left
           (fun acc (i, size) ->
             Float.max acc (Processor.transfer_time workers.(i) ~data:(float_of_int size)))
           0.
  in
  let total = phase1 +. phase2 +. communication +. phase3 in
  let sequential = nlogn nf /. master_speed in
  let partial =
    Numerics.Kahan.sum_by (fun size -> nlogn size) (Array.map float_of_int bucket_sizes)
  in
  {
    phase1;
    phase2;
    phase3;
    communication;
    total;
    sequential;
    speedup = (if total > 0. then sequential /. total else 1.);
    divisible_fraction = (if n > 1 then partial /. nlogn nf else 1.);
  }

let ideal_phase3 star ~n =
  let nf = float_of_int n in
  nlogn nf /. Star.total_speed star
