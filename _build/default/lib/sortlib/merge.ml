let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok

let two_way a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0. in
  let i = ref 0 and j = ref 0 in
  for k = 0 to na + nb - 1 do
    if !i < na && (!j >= nb || a.(!i) <= b.(!j)) then begin
      out.(k) <- a.(!i);
      incr i
    end
    else begin
      out.(k) <- b.(!j);
      incr j
    end
  done;
  out

(* Min-heap of (value, run index); cursors track each run's position. *)
let k_way runs =
  List.iter (fun run -> assert (is_sorted run)) runs;
  let runs = Array.of_list (List.filter (fun r -> Array.length r > 0) runs) in
  let k = Array.length runs in
  if k = 0 then [||]
  else if k = 1 then Array.copy runs.(0)
  else begin
    let total = Array.fold_left (fun acc r -> acc + Array.length r) 0 runs in
    let out = Array.make total 0. in
    let cursor = Array.make k 0 in
    let heap = Des.Event_queue.create ~initial_capacity:k () in
    for r = 0 to k - 1 do
      Des.Event_queue.push heap ~priority:runs.(r).(0) r
    done;
    for slot = 0 to total - 1 do
      match Des.Event_queue.pop heap with
      | None -> assert false
      | Some (value, r) ->
          out.(slot) <- value;
          cursor.(r) <- cursor.(r) + 1;
          if cursor.(r) < Array.length runs.(r) then
            Des.Event_queue.push heap ~priority:runs.(r).(cursor.(r)) r
    done;
    out
  end
