module Rng = Numerics.Rng

type 'a buckets = { splitters : 'a array; contents : 'a array array }

let default_oversampling ~n =
  let l = log (float_of_int (max 2 n)) /. log 2. in
  max 1 (int_of_float (Float.round (l *. l)))

let take_sample rng keys count =
  Array.init count (fun _ -> keys.(Rng.int rng (Array.length keys)))

let choose_splitters ?(cmp = compare) rng keys ~p ~s =
  if p < 1 then invalid_arg "Sample_sort.choose_splitters: p must be >= 1";
  if s < 1 then invalid_arg "Sample_sort.choose_splitters: s must be >= 1";
  if Array.length keys = 0 then invalid_arg "Sample_sort.choose_splitters: empty input";
  let sample = take_sample rng keys (s * p) in
  Array.sort cmp sample;
  Array.init (p - 1) (fun j -> sample.((j + 1) * s))

let weighted_splitters ?(cmp = compare) rng keys ~weights ~s =
  let p = Array.length weights in
  if p < 1 then invalid_arg "Sample_sort.weighted_splitters: empty weights";
  if s < 1 then invalid_arg "Sample_sort.weighted_splitters: s must be >= 1";
  if Array.length keys = 0 then invalid_arg "Sample_sort.weighted_splitters: empty input";
  Array.iter
    (fun w -> if w <= 0. || Float.is_nan w then invalid_arg "Sample_sort.weighted_splitters: bad weight")
    weights;
  let total = Numerics.Kahan.sum weights in
  let sample_size = s * p in
  let sample = take_sample rng keys sample_size in
  Array.sort cmp sample;
  let cumulative = ref 0. in
  Array.init (p - 1) (fun j ->
      cumulative := !cumulative +. weights.(j);
      let rank =
        int_of_float (Float.round (!cumulative /. total *. float_of_int sample_size))
      in
      sample.(min (max rank 0) (sample_size - 1)))

let bucket_index ?(cmp = compare) splitters key =
  (* Smallest i with key < splitters.(i); p-1 when none. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cmp key splitters.(mid) < 0 then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length splitters)

let partition ?(cmp = compare) keys ~splitters =
  let p = Array.length splitters + 1 in
  let cells = Array.make p [] in
  Array.iter
    (fun key ->
      let b = bucket_index ~cmp splitters key in
      cells.(b) <- key :: cells.(b))
    keys;
  let contents = Array.map (fun cell -> Array.of_list (List.rev cell)) cells in
  { splitters; contents }

let sort ?(cmp = compare) ?s rng keys ~p =
  if p < 1 then invalid_arg "Sample_sort.sort: p must be >= 1";
  if Array.length keys = 0 then [||]
  else if p = 1 then begin
    let out = Array.copy keys in
    Array.sort cmp out;
    out
  end
  else begin
    let s = match s with Some s -> s | None -> default_oversampling ~n:(Array.length keys) in
    let splitters = choose_splitters ~cmp rng keys ~p ~s in
    let { contents; _ } = partition ~cmp keys ~splitters in
    Array.iter (Array.sort cmp) contents;
    Array.concat (Array.to_list contents)
  end

let max_bucket_ratio buckets =
  let sizes = Array.map Array.length buckets.contents in
  let total = Array.fold_left ( + ) 0 sizes in
  let p = Array.length sizes in
  let expected = float_of_int total /. float_of_int p in
  float_of_int (Array.fold_left max 0 sizes) /. expected

let theoretical_envelope ~n =
  1. +. ((1. /. log (float_of_int (max 3 n))) ** (1. /. 3.))
