(** Parallel Sorting by Regular Sampling (Shi & Schaeffer) — the third
    classical splitter-selection scheme, next to random oversampling
    (sample sort, §3) and histogramming.

    Each of the [p] workers sorts its local chunk and contributes [p]
    regularly spaced samples; the [p²] samples are sorted and the
    [p - 1] regular splitters taken from them.  Deterministic, one
    local-sort pass, with the classical worst-case guarantee that no
    bucket exceeds [2·N/p] elements (for distinct keys). *)

type result = {
  splitters : float array;
  bucket_sizes : int array;
  sorted : float array;  (** the fully sorted output *)
}

val sort : float array -> p:int -> result
(** Requires [p >= 1]; with fewer than [p] keys the degenerate buckets
    are empty but the output is still sorted. *)

val max_bucket_ratio : result -> float
(** Largest bucket over the ideal [N/p]; the PSRS guarantee bounds this
    by 2 for distinct keys. *)
