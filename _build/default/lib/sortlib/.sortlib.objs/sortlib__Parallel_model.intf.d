lib/sortlib/parallel_model.mli: Platform
