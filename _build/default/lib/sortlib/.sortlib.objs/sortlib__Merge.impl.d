lib/sortlib/merge.ml: Array Des List
