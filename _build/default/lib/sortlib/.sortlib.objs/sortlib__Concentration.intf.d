lib/sortlib/concentration.mli: Format Numerics
