lib/sortlib/psrs.ml: Array Float List Merge Numerics
