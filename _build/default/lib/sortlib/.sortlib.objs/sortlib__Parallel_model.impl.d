lib/sortlib/parallel_model.ml: Array Float List Numerics Platform
