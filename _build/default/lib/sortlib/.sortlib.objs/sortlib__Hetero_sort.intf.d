lib/sortlib/hetero_sort.mli: Numerics Parallel_model Platform
