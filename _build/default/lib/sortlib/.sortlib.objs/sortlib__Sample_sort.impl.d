lib/sortlib/sample_sort.ml: Array Float List Numerics
