lib/sortlib/histogram_sort.mli:
