lib/sortlib/histogram_sort.ml: Array Float Sample_sort
