lib/sortlib/multicore.mli: Numerics
