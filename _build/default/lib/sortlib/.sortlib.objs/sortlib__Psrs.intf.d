lib/sortlib/psrs.mli:
