lib/sortlib/multicore.ml: Array Float Numerics Sample_sort Unix
