lib/sortlib/sample_sort.mli: Numerics
