lib/sortlib/hetero_sort.ml: Array Float Parallel_model Platform Sample_sort
