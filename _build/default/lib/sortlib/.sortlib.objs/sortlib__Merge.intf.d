lib/sortlib/merge.mli:
