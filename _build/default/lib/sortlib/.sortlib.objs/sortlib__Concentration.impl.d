lib/sortlib/concentration.ml: Array Float Format Numerics Sample_sort
