module Rng = Numerics.Rng
module Stats = Numerics.Stats

type report = {
  trials : int;
  n : int;
  p : int;
  s : int;
  ratios : Stats.summary;
  envelope : float;
  exceed_count : int;
}

let uniform_keys rng n = Array.init n (fun _ -> Rng.float rng)

let zipf_like_keys ?(skew = 1.2) rng n =
  (* Values concentrated near 0: inverse-power transform of a uniform. *)
  Array.init n (fun _ -> Rng.float rng ** skew)

let run ?(cmp = Float.compare) ?s rng ~keys ~n ~p ~trials =
  if trials <= 0 then invalid_arg "Concentration.run: trials must be > 0";
  let s = match s with Some s -> s | None -> Sample_sort.default_oversampling ~n in
  let ratios = Array.make trials 0. in
  for t = 0 to trials - 1 do
    let trial_rng = Rng.split rng in
    let population = keys trial_rng n in
    let splitters = Sample_sort.choose_splitters ~cmp trial_rng population ~p ~s in
    let buckets = Sample_sort.partition ~cmp population ~splitters in
    ratios.(t) <- Sample_sort.max_bucket_ratio buckets
  done;
  let envelope = Sample_sort.theoretical_envelope ~n in
  let exceed_count = Array.fold_left (fun acc r -> if r > envelope then acc + 1 else acc) 0 ratios in
  { trials; n; p; s; ratios = Stats.summarize ratios; envelope; exceed_count }

let pp_report ppf r =
  Format.fprintf ppf
    "n=%d p=%d s=%d trials=%d: max-bucket ratio %a; envelope %.4f exceeded %d/%d" r.n r.p
    r.s r.trials Stats.pp_summary r.ratios r.envelope r.exceed_count r.trials
