(** Heterogeneous sample sort (Section 3.2): splitters are placed so
    that bucket [i] receives a fraction of the keys proportional to the
    speed of worker [i], balancing the [w_i · N_i log N_i] local sort
    times. *)

type result = {
  bucket_sizes : int array;  (** in platform order *)
  sorted : float array;  (** the fully sorted output *)
  times : float array;  (** per-worker local sort times *)
  imbalance : float;  (** (tmax - tmin)/tmin over local sort times *)
  timing : Parallel_model.timing;
}

val run :
  ?s:int -> Numerics.Rng.t -> Platform.Star.t -> keys:float array -> result
(** Executes the full pipeline: weighted splitter choice, bucketing,
    local sorts (actually performed, so [sorted] is checked against the
    input), and the timing model.  [s] defaults to
    {!Sample_sort.default_oversampling}. *)
