(** Histogram sort: the deterministic alternative to sample sort's
    randomized splitter selection, used as an ablation baseline.

    Splitters are refined by parallel bisection: each pass counts, in
    one sweep over the keys, how many fall below each probe value, and
    narrows each splitter's bracket until every bucket is within
    [tolerance] of the ideal [N/p].  Balance is as tight as requested
    (sample sort only promises the w.h.p. envelope) at the price of
    several passes over the data instead of one sample sort. *)

type result = {
  splitters : float array;  (** [p - 1] refined splitters *)
  bucket_sizes : int array;
  passes : int;  (** refinement sweeps over the data *)
}

val splitters :
  ?tolerance:float -> ?max_passes:int -> float array -> p:int -> result
(** [tolerance] (default 0.02) bounds the relative deviation of every
    bucket from [N/p]; [max_passes] defaults to 64.  Requires a
    non-empty array and [p >= 1]. *)

val sort : ?tolerance:float -> float array -> p:int -> float array
(** Full pipeline: refine splitters, bucket, sort buckets, concatenate. *)

val max_bucket_ratio : result -> float
(** Largest bucket relative to the ideal [N/p]. *)
