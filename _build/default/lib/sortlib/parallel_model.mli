(** Timing model of parallel sample sort on a star platform
    (Section 3): phases 1 and 2 run on the master, phase 3 in parallel
    on the workers.

    Costs (in comparison units, scaled by the master/worker speeds):
    - phase 1: [s·p · log₂(s·p)] — sorting the sample;
    - phase 2: [N · log₂ p] — one binary search per key;
    - phase 3: [max_i w_i · |bucket_i| · log₂ |bucket_i|];
    plus an optional communication term [c_i · |bucket_i|] per worker
    under the parallel-link model. *)

type timing = {
  phase1 : float;
  phase2 : float;
  phase3 : float;  (** the parallel local-sort phase *)
  communication : float;  (** max over workers of its bucket transfer *)
  total : float;
  sequential : float;  (** [N log₂ N] on the master, for speedup *)
  speedup : float;
  divisible_fraction : float;
      (** measured [Σ work(bucket_i) / work(N)] with the [N log N]
          model: how much of the sequential work phase 3 represents *)
}

val evaluate :
  ?master_speed:float ->
  ?with_communication:bool ->
  Platform.Star.t ->
  bucket_sizes:int array ->
  s:int ->
  timing
(** [bucket_sizes] in platform order (bucket [i] on worker [i]).
    [master_speed] defaults to 1; [with_communication] defaults to
    [true].  Raises [Invalid_argument] when the number of buckets
    differs from the platform size. *)

val ideal_phase3 : Platform.Star.t -> n:int -> float
(** [(N/p)·log₂ N / s_max-normalized]: the optimal parallel time
    [N log N / (p·s)] on a homogeneous platform of per-worker speed
    taken from the platform mean — the target of the Section 3
    optimality claim. *)
