(** Strassen's sub-cubic multiplication — the sequential fast-matmul
    reference.  Its existence is exactly why the "cost = N³" framing of
    quadratic/cubic workloads in the DLT literature is a modelling
    choice; here it doubles as an independent oracle for the
    distributed algorithms' results. *)

val multiply : ?cutoff:int -> Matrix.t -> Matrix.t -> Matrix.t
(** [O(n^2.807)] product of two square matrices; pads odd sizes and
    falls back to {!Matrix.mul_blocked} below [cutoff] (default 64).
    Raises [Invalid_argument] on non-square or mismatched inputs. *)

val operation_count : n:int -> cutoff:int -> float
(** Model of the number of scalar multiplications performed (7 branches
    per halving until the cutoff), for the complexity tests. *)
