let quadrant m ~half ~qi ~qj =
  Matrix.init ~rows:half ~cols:half (fun i j ->
      let row = (qi * half) + i and col = (qj * half) + j in
      if row < Matrix.rows m && col < Matrix.cols m then Matrix.get m row col else 0.)

let assemble ~n ~half c11 c12 c21 c22 =
  Matrix.init ~rows:n ~cols:n (fun i j ->
      let quadrant = if i < half then (if j < half then c11 else c12)
                     else if j < half then c21 else c22 in
      Matrix.get quadrant (i mod half) (j mod half))

let rec multiply ?(cutoff = 64) a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n || Matrix.rows b <> n || Matrix.cols b <> n then
    invalid_arg "Strassen.multiply: square matrices of equal size required";
  if n <= cutoff then Matrix.mul_blocked a b
  else begin
    let half = (n + 1) / 2 in
    let a11 = quadrant a ~half ~qi:0 ~qj:0 and a12 = quadrant a ~half ~qi:0 ~qj:1 in
    let a21 = quadrant a ~half ~qi:1 ~qj:0 and a22 = quadrant a ~half ~qi:1 ~qj:1 in
    let b11 = quadrant b ~half ~qi:0 ~qj:0 and b12 = quadrant b ~half ~qi:0 ~qj:1 in
    let b21 = quadrant b ~half ~qi:1 ~qj:0 and b22 = quadrant b ~half ~qi:1 ~qj:1 in
    let mul = multiply ~cutoff in
    let m1 = mul (Matrix.add a11 a22) (Matrix.add b11 b22) in
    let m2 = mul (Matrix.add a21 a22) b11 in
    let m3 = mul a11 (Matrix.sub b12 b22) in
    let m4 = mul a22 (Matrix.sub b21 b11) in
    let m5 = mul (Matrix.add a11 a12) b22 in
    let m6 = mul (Matrix.sub a21 a11) (Matrix.add b11 b12) in
    let m7 = mul (Matrix.sub a12 a22) (Matrix.add b21 b22) in
    let c11 = Matrix.add (Matrix.sub (Matrix.add m1 m4) m5) m7 in
    let c12 = Matrix.add m3 m5 in
    let c21 = Matrix.add m2 m4 in
    let c22 = Matrix.add (Matrix.add (Matrix.sub m1 m2) m3) m6 in
    let padded = assemble ~n:(2 * half) ~half c11 c12 c21 c22 in
    if 2 * half = n then padded
    else Matrix.init ~rows:n ~cols:n (fun i j -> Matrix.get padded i j)
  end

let rec operation_count ~n ~cutoff =
  if n <= cutoff then float_of_int n ** 3.
  else 7. *. operation_count ~n:((n + 1) / 2) ~cutoff
