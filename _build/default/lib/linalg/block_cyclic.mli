(** Two-dimensional block-cyclic distribution (the ScaLAPACK
    virtualization layer mentioned in Section 4.2): blocks are scattered
    cyclically over a [q × r] processor grid so that each processor
    updates many scattered blocks at every step. *)

type t

val create : grid_rows:int -> grid_cols:int -> block:int -> n:int -> t
(** Distribution of an [n × n] matrix in [block × block] tiles over a
    [grid_rows × grid_cols] grid.  Raises [Invalid_argument] on
    non-positive parameters. *)

val grid_rows : t -> int
val grid_cols : t -> int
val processors : t -> int

val owner : t -> row:int -> col:int -> int
(** Processor (linear index [gr * grid_cols + gc]) owning element
    [(row, col)]. *)

val owned_rows : t -> proc:int -> int
(** Number of distinct matrix rows with at least one element owned by
    [proc]. *)

val owned_cols : t -> proc:int -> int

val communication_volume : t -> int
(** Volume of the outer-product algorithm under this distribution:
    [n · Σ_proc (owned_rows + owned_cols)] — at each of the [n] steps a
    processor receives one [A] entry per owned row and one [B] entry per
    owned column. *)

val load : t -> int array
(** Elements of [C] owned by each processor (balance check). *)
