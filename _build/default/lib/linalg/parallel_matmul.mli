(** Shared-memory parallel matrix multiplication over OCaml 5 domains:
    the result rows are partitioned into contiguous bands, one per
    domain — the same row-band decomposition the DLT image workload
    uses, but executed on real cores. *)

val multiply : ?domains:int -> Matrix.t -> Matrix.t -> Matrix.t
(** Same result as {!Matrix.mul}; [domains] defaults to the
    recommended domain count. *)

val heterogeneous_bands :
  Platform.Star.t -> rows:int -> int array
(** Row counts proportional to worker speeds (largest remainder): how a
    heterogeneity-aware runtime would cut the band work; exposed for
    the examples and tests. *)
