(** SUMMA — the blocked (panel) version of the outer-product algorithm
    of Figure 3, as implemented by ScaLAPACK on a processor grid.

    Rank-1 updates are grouped into panels of [panel] columns/rows: the
    word volume is unchanged (still [n·Σ(rows_p + cols_p)]) but the
    number of messages drops by a factor [panel] — the latency/bandwidth
    trade-off that justifies blocking in practice. *)

type stats = {
  result : Matrix.t;
  words : int;  (** total words received by all processors *)
  messages : int;  (** total broadcast messages received *)
  steps : int;  (** [⌈n/panel⌉] *)
}

val distributed :
  grid_rows:int -> grid_cols:int -> panel:int -> Matrix.t -> Matrix.t -> stats
(** Multiply two square [n × n] matrices on a [grid_rows × grid_cols]
    grid of equal zones.  Requires positive grid dimensions and
    [1 <= panel <= n]. *)

val word_volume : grid_rows:int -> grid_cols:int -> n:int -> int
(** Closed form [n · Σ_p (rows_p + cols_p)] for the equal-zone grid —
    independent of [panel]. *)

val message_count : grid_rows:int -> grid_cols:int -> n:int -> panel:int -> int
(** [2 · p · ⌈n/panel⌉]. *)
