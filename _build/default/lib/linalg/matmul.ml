type stats = { per_worker : int array; total : int; result : Matrix.t }

let distributed ~zones a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n || Matrix.rows b <> n || Matrix.cols b <> n then
    invalid_arg "Matmul.distributed: square n x n matrices required";
  (match Zone.validate_tiling ~n zones with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Matmul.distributed: " ^ msg));
  let result = Matrix.create ~rows:n ~cols:n in
  let per_worker = Array.make (Array.length zones) 0 in
  (* Step k: rank-1 update with column k of A and row k of B.  Each
     worker applies the update to its own zone using only the slices it
     received, which we charge as communication. *)
  for k = 0 to n - 1 do
    Array.iteri
      (fun w z ->
        per_worker.(w) <- per_worker.(w) + Zone.half_perimeter z;
        for i = z.Zone.row0 to z.Zone.row0 + z.Zone.rows - 1 do
          let aik = Matrix.get a i k in
          if aik <> 0. then
            for j = z.Zone.col0 to z.Zone.col0 + z.Zone.cols - 1 do
              Matrix.set result i j (Matrix.get result i j +. (aik *. Matrix.get b k j))
            done
        done)
      zones
  done;
  { per_worker; total = Array.fold_left ( + ) 0 per_worker; result }

let predicted_communication ~zones ~n = n * Zone.half_perimeter_sum zones

let lower_bound_communication star ~n =
  float_of_int n *. Partition.Lower_bound.communication star ~n:(float_of_int n)
