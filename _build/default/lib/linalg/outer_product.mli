(** The outer product [aᵀ × b] of Section 4.1, executed for real under a
    zone distribution, with exact communication accounting.

    A worker assigned a zone of [rows × cols] results needs [rows]
    entries of [a] and [cols] entries of [b]: its communication is
    exactly the zone's half-perimeter.  For the Homogeneous Blocks
    strategy every block is paid in full even when a worker receives
    overlapping slices (the MapReduce redundancy the paper criticizes);
    a [dedup] option instead charges each (worker, entry) pair once, to
    quantify how much of the overhead is redundant transfers. *)

type stats = {
  per_worker : int array;  (** words received by each worker *)
  total : int;  (** [Σ per_worker] *)
  result : Matrix.t;  (** assembled [n × n] product, for verification *)
}

val sequential : float array -> float array -> Matrix.t

val distributed : zones:Zone.t array -> float array -> float array -> stats
(** One zone per worker; [zones] must tile [n × n] with
    [n = |a| = |b|] (checked).  Communication = half-perimeter of each
    zone. *)

val demand_driven_blocks :
  ?dedup:bool ->
  Partition.Block_hom.result ->
  n_side:int ->
  float array -> float array -> stats
(** Execute the block schedule produced by
    {!Partition.Block_hom.demand_driven} on actual vectors: blocks are
    laid out row-major on the [n_side × n_side] grid of blocks and each
    costs two slices of [block_side] entries ([dedup = false], default,
    the paper's accounting) or only the entries the worker has not yet
    received ([dedup = true]). *)
