(** Integer rectangular zones of an [n × n] computation domain: the
    concrete, index-level realization of a unit-square {!Partition.Layout}
    (areas can only be proportional to speeds up to integer rounding). *)

type t = { row0 : int; rows : int; col0 : int; cols : int }

val area : t -> int
val half_perimeter : t -> int
val contains : t -> row:int -> col:int -> bool

val of_column_assignment :
  areas:float array -> Partition.Column_partition.assignment -> n:int -> t array
(** Realize a column-based assignment on the integer [n × n] grid:
    column widths and per-column heights are apportioned by largest
    remainder, so the zones tile the domain exactly.  [result.(i)] is
    the zone of [areas.(i)].  Requires [n >= 1]. *)

val for_platform : Platform.Star.t -> n:int -> t array
(** PERI-SUM zones with areas proportional to worker speeds: the
    Heterogeneous Blocks distribution at index level. *)

val uniform_grid : p:int -> n:int -> t array
(** A near-square [q × r] grid of equal zones for [p = q·r] workers
    (requires [p] to admit such a factorization close to square; any
    [p >= 1] works since [1 × p] is always available — the most square
    factorization is chosen). *)

val validate_tiling : n:int -> t array -> (unit, string) result
(** Every cell of the [n × n] domain covered exactly once. *)

val half_perimeter_sum : t array -> int
val pp : Format.formatter -> t -> unit
