(** Cholesky factorization of symmetric positive-definite matrices —
    the third ScaLAPACK workhorse, with the same blocked right-looking
    structure as {!Lu} (and half its flops). *)

val factorize : ?block:int -> Matrix.t -> Matrix.t
(** Lower-triangular [L] with [L·Lᵀ = A].  Raises [Invalid_argument]
    on non-square input and [Failure] when the matrix is not (numerically)
    positive definite.  [block] is the panel width (default 32). *)

val solve : Matrix.t -> float array -> float array
(** [solve l rhs] solves [A x = rhs] given [l = factorize a]. *)

val reconstruct : Matrix.t -> Matrix.t
(** [L·Lᵀ]. *)

val log_determinant : Matrix.t -> float
(** [log det A = 2·Σ log L_ii], given [l = factorize a]. *)

val flop_count : n:int -> float
(** [n³/3]. *)
