(** The outer-product matrix-multiplication algorithm of Section 4.2
    (paper Figure 3, the ScaLAPACK scheme): [C = A × B] computed as [n]
    successive rank-1 updates; at step [k] a worker owning a
    [rows × cols] zone of [C] receives the matching [rows] entries of
    column [k] of [A] and [cols] entries of row [k] of [B].

    Total communication is therefore exactly
    [n × Σ half-perimeters] — the identity that transfers the
    outer-product partitioning results to matrix multiplication. *)

type stats = {
  per_worker : int array;  (** words received, counted during execution *)
  total : int;
  result : Matrix.t;
}

val distributed : zones:Zone.t array -> Matrix.t -> Matrix.t -> stats
(** Requires square [n × n] inputs and zones tiling [n × n].  The
    result is the true product (verified in tests against
    {!Matrix.mul}); [total] satisfies
    [total = n * Zone.half_perimeter_sum zones]. *)

val predicted_communication : zones:Zone.t array -> n:int -> int
(** [n * Σ (rows_i + cols_i)]. *)

val lower_bound_communication : Platform.Star.t -> n:int -> float
(** [n · 2n Σ √x_i]: the outer-product lower bound applied to the [n]
    rank-1 steps. *)
