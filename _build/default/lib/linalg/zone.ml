module Apportion = Numerics.Apportion

type t = { row0 : int; rows : int; col0 : int; cols : int }

let area z = z.rows * z.cols
let half_perimeter z = z.rows + z.cols

let contains z ~row ~col =
  row >= z.row0 && row < z.row0 + z.rows && col >= z.col0 && col < z.col0 + z.cols

let of_column_assignment ~areas assignment ~n =
  if n < 1 then invalid_arg "Zone.of_column_assignment: n must be >= 1";
  let columns = assignment.Partition.Column_partition.columns in
  let column_weight column = Numerics.Kahan.sum_by (fun i -> areas.(i)) column in
  let widths =
    Apportion.largest_remainder ~weights:(Array.map column_weight columns) ~total:n
  in
  let zones = Array.make (Array.length areas) { row0 = 0; rows = 0; col0 = 0; cols = 0 } in
  let col0 = ref 0 in
  Array.iteri
    (fun c column ->
      let cols = widths.(c) in
      let heights =
        Apportion.largest_remainder
          ~weights:(Array.map (fun i -> areas.(i)) column)
          ~total:n
      in
      let row0 = ref 0 in
      Array.iteri
        (fun r i ->
          zones.(i) <- { row0 = !row0; rows = heights.(r); col0 = !col0; cols };
          row0 := !row0 + heights.(r))
        column;
      col0 := !col0 + cols)
    columns;
  zones

let for_platform star ~n =
  let areas = Platform.Star.relative_speeds star in
  of_column_assignment ~areas (Partition.Column_partition.peri_sum ~areas) ~n

let most_square_factorization p =
  let rec search q = if p mod q = 0 then (q, p / q) else search (q - 1) in
  search (int_of_float (sqrt (float_of_int p)))

let uniform_grid ~p ~n =
  if p < 1 then invalid_arg "Zone.uniform_grid: p must be >= 1";
  let q, r = most_square_factorization p in
  let row_edges = Apportion.largest_remainder ~weights:(Array.make q 1.) ~total:n in
  let col_edges = Apportion.largest_remainder ~weights:(Array.make r 1.) ~total:n in
  let zones = ref [] in
  let row0 = ref 0 in
  Array.iter
    (fun rows ->
      let col0 = ref 0 in
      Array.iter
        (fun cols ->
          zones := { row0 = !row0; rows; col0 = !col0; cols } :: !zones;
          col0 := !col0 + cols)
        col_edges;
      row0 := !row0 + rows)
    row_edges;
  Array.of_list (List.rev !zones)

let validate_tiling ~n zones =
  let cover = Array.make_matrix n n 0 in
  Array.iter
    (fun z ->
      for row = z.row0 to z.row0 + z.rows - 1 do
        for col = z.col0 to z.col0 + z.cols - 1 do
          if row >= 0 && row < n && col >= 0 && col < n then
            cover.(row).(col) <- cover.(row).(col) + 1
        done
      done)
    zones;
  let missing = ref 0 and duplicated = ref 0 in
  for row = 0 to n - 1 do
    for col = 0 to n - 1 do
      if cover.(row).(col) = 0 then incr missing
      else if cover.(row).(col) > 1 then incr duplicated
    done
  done;
  let out_of_bounds =
    Array.exists
      (fun z -> z.row0 < 0 || z.col0 < 0 || z.row0 + z.rows > n || z.col0 + z.cols > n)
      zones
  in
  if !missing = 0 && !duplicated = 0 && not out_of_bounds then Ok ()
  else
    Error
      (Printf.sprintf "tiling invalid: %d cells uncovered, %d covered twice%s" !missing
         !duplicated
         (if out_of_bounds then ", zones out of bounds" else ""))

let half_perimeter_sum zones =
  Array.fold_left (fun acc z -> acc + half_perimeter z) 0 zones

let pp ppf z =
  Format.fprintf ppf "rows[%d..%d) x cols[%d..%d)" z.row0 (z.row0 + z.rows) z.col0
    (z.col0 + z.cols)
