type stats = { result : Matrix.t; words : int; messages : int; rounds : int }

let block_of m ~b ~bi ~bj =
  Matrix.init ~rows:b ~cols:b (fun i j -> Matrix.get m ((bi * b) + i) ((bj * b) + j))

let blit_block target block ~b ~bi ~bj =
  for i = 0 to b - 1 do
    for j = 0 to b - 1 do
      Matrix.set target ((bi * b) + i) ((bj * b) + j) (Matrix.get block i j)
    done
  done

let accumulate c product =
  for i = 0 to Matrix.rows c - 1 do
    for j = 0 to Matrix.cols c - 1 do
      Matrix.set c i j (Matrix.get c i j +. Matrix.get product i j)
    done
  done

let distributed ~grid a b =
  if grid < 1 then invalid_arg "Cannon.distributed: grid must be >= 1";
  let n = Matrix.rows a in
  if Matrix.cols a <> n || Matrix.rows b <> n || Matrix.cols b <> n then
    invalid_arg "Cannon.distributed: square n x n matrices required";
  if n mod grid <> 0 then invalid_arg "Cannon.distributed: grid must divide n";
  let q = grid in
  let bs = n / q in
  let words = ref 0 and messages = ref 0 in
  let transfer count =
    (* [count] blocks change owner: each is a message of bs² words. *)
    words := !words + (count * bs * bs);
    messages := !messages + count
  in
  (* Local block storage, indexed by grid position. *)
  let a_blocks = Array.init q (fun bi -> Array.init q (fun bj -> block_of a ~b:bs ~bi ~bj)) in
  let b_blocks = Array.init q (fun bi -> Array.init q (fun bj -> block_of b ~b:bs ~bi ~bj)) in
  let c_blocks = Array.init q (fun _ -> Array.init q (fun _ -> Matrix.create ~rows:bs ~cols:bs)) in
  (* Initial skew: row i of A rotates left by i, column j of B up by j;
     blocks with shift 0 stay put. *)
  let rotate_row blocks bi ~by =
    if by mod q <> 0 then begin
      let row = Array.init q (fun bj -> blocks.(bi).((bj + by) mod q)) in
      Array.iteri (fun bj block -> blocks.(bi).(bj) <- block) row;
      transfer q
    end
  in
  let rotate_col blocks bj ~by =
    if by mod q <> 0 then begin
      let col = Array.init q (fun bi -> blocks.((bi + by) mod q).(bj)) in
      Array.iteri (fun bi block -> blocks.(bi).(bj) <- block) col;
      transfer q
    end
  in
  for bi = 0 to q - 1 do
    rotate_row a_blocks bi ~by:bi
  done;
  for bj = 0 to q - 1 do
    rotate_col b_blocks bj ~by:bj
  done;
  (* q rounds of multiply-accumulate, then unit rotations. *)
  for round = 0 to q - 1 do
    for bi = 0 to q - 1 do
      for bj = 0 to q - 1 do
        accumulate c_blocks.(bi).(bj) (Matrix.mul a_blocks.(bi).(bj) b_blocks.(bi).(bj))
      done
    done;
    if round < q - 1 then begin
      for bi = 0 to q - 1 do
        rotate_row a_blocks bi ~by:1
      done;
      for bj = 0 to q - 1 do
        rotate_col b_blocks bj ~by:1
      done
    end
  done;
  let result = Matrix.create ~rows:n ~cols:n in
  for bi = 0 to q - 1 do
    for bj = 0 to q - 1 do
      blit_block result c_blocks.(bi).(bj) ~b:bs ~bi ~bj
    done
  done;
  { result; words = !words; messages = !messages; rounds = q }

let word_volume ~grid ~n =
  let q = grid in
  let bs = n / q in
  let block = bs * bs in
  (* Skew: rows/columns 1..q-1 move (q blocks each); rotations: q-1
     rounds move every block of A and B. *)
  let skew = 2 * (q - 1) * q * block in
  let rotations = 2 * (q - 1) * q * q * block in
  skew + rotations
