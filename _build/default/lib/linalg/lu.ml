type factorization = { lu : Matrix.t; pivots : int array; sign : float }

let swap_rows m i j =
  if i <> j then
    for col = 0 to Matrix.cols m - 1 do
      let tmp = Matrix.get m i col in
      Matrix.set m i col (Matrix.get m j col);
      Matrix.set m j col tmp
    done

(* Unblocked factorization of columns [k0, k1) over rows [k0, n),
   updating only those columns (the panel); pivot rows swap across the
   whole matrix so previously computed L columns stay consistent. *)
let factorize_panel lu pivots sign ~k0 ~k1 =
  let n = Matrix.rows lu in
  for k = k0 to k1 - 1 do
    (* Partial pivoting within the panel column. *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Matrix.get lu i k) > Float.abs (Matrix.get lu !pivot k) then pivot := i
    done;
    if Float.abs (Matrix.get lu !pivot k) < 1e-12 then failwith "Lu.factorize: singular matrix";
    pivots.(k) <- !pivot;
    if !pivot <> k then begin
      swap_rows lu k !pivot;
      sign := -. !sign
    end;
    let pivot_value = Matrix.get lu k k in
    for i = k + 1 to n - 1 do
      let multiplier = Matrix.get lu i k /. pivot_value in
      Matrix.set lu i k multiplier;
      for j = k + 1 to k1 - 1 do
        Matrix.set lu i j (Matrix.get lu i j -. (multiplier *. Matrix.get lu k j))
      done
    done
  done

(* Apply the panel's pivoting and L factors to the trailing columns
   [k1, n): row swaps, triangular solve for U rows, rank-b update. *)
let update_trailing lu pivots ~k0 ~k1 =
  let n = Matrix.rows lu in
  if k1 < n then begin
    (* Triangular solve: U(k, j) -= Σ L(k,m)·U(m,j) for k0 <= m < k. *)
    for k = k0 to k1 - 1 do
      for j = k1 to n - 1 do
        let acc = ref (Matrix.get lu k j) in
        for m = k0 to k - 1 do
          acc := !acc -. (Matrix.get lu k m *. Matrix.get lu m j)
        done;
        Matrix.set lu k j !acc
      done
    done;
    (* Rank-b update of the trailing submatrix. *)
    for i = k1 to n - 1 do
      for j = k1 to n - 1 do
        let acc = ref (Matrix.get lu i j) in
        for m = k0 to k1 - 1 do
          acc := !acc -. (Matrix.get lu i m *. Matrix.get lu m j)
        done;
        Matrix.set lu i j !acc
      done
    done
  end;
  ignore pivots

let factorize ?(block = 32) a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.factorize: square matrix required";
  if block <= 0 then invalid_arg "Lu.factorize: block must be > 0";
  let lu = Matrix.copy a in
  let pivots = Array.init n (fun i -> i) in
  let sign = ref 1. in
  let k0 = ref 0 in
  while !k0 < n do
    let k1 = min n (!k0 + block) in
    (* The panel spans all trailing columns for the row swaps, so swap
       first on the full rows via factorize_panel (which swaps whole
       rows), then propagate to the trailing block. *)
    factorize_panel lu pivots sign ~k0:!k0 ~k1;
    update_trailing lu pivots ~k0:!k0 ~k1;
    k0 := k1
  done;
  { lu; pivots; sign = !sign }

let solve { lu; pivots; _ } rhs =
  let n = Matrix.rows lu in
  if Array.length rhs <> n then invalid_arg "Lu.solve: rhs size mismatch";
  let x = Array.copy rhs in
  (* Apply the recorded row swaps. *)
  for k = 0 to n - 1 do
    if pivots.(k) <> k then begin
      let tmp = x.(k) in
      x.(k) <- x.(pivots.(k));
      x.(pivots.(k)) <- tmp
    end
  done;
  (* Forward substitution with unit lower L. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Matrix.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.get lu i i
  done;
  x

let determinant { lu; sign; _ } =
  let n = Matrix.rows lu in
  let det = ref sign in
  for i = 0 to n - 1 do
    det := !det *. Matrix.get lu i i
  done;
  !det

let reconstruct { lu; pivots; _ } =
  let n = Matrix.rows lu in
  let lower =
    Matrix.init ~rows:n ~cols:n (fun i j ->
        if i = j then 1. else if i > j then Matrix.get lu i j else 0.)
  in
  let upper =
    Matrix.init ~rows:n ~cols:n (fun i j -> if i <= j then Matrix.get lu i j else 0.)
  in
  let product = Matrix.mul lower upper in
  (* Undo the row swaps (they were applied in order k = 0..n-1). *)
  for k = n - 1 downto 0 do
    if pivots.(k) <> k then swap_rows product k pivots.(k)
  done;
  product

let flop_count ~n = 2. /. 3. *. (float_of_int n ** 3.)
