(** Communication model of 2.5D matrix multiplication
    (Solomonik & Demmel, the "notable exception" of Section 4.2).

    With [c]-fold replication of the inputs over a
    [√(p/c) × √(p/c) × c] processor grid, each processor moves
    [O(n²/√(c·p))] words instead of [O(n²/√p)] — communication traded
    for memory.  This module provides the volume model (not an
    execution) and the optimal replication factor. *)

type model = {
  p : int;
  c : int;  (** replication factor *)
  n : int;
  per_processor : float;  (** words sent/received per processor *)
  total : float;  (** including the initial input replication *)
  replication : float;  (** words spent copying the inputs [c] times *)
  memory_factor : float;  (** memory used relative to 2D ([= c]) *)
}

val evaluate : p:int -> c:int -> n:int -> model
(** Raises [Invalid_argument] unless [1 <= c] and [c <= p^(1/3)]
    (beyond [c = p^(1/3)] the algorithm stops improving) and [p/c] is
    a perfect square. *)

val best_replication : p:int -> int
(** The largest valid [c <= p^(1/3)] such that [p/c] is a perfect
    square; 1 when none larger exists. *)

val speedup_over_2d : p:int -> c:int -> n:int -> float
(** Ratio of 2D ([c = 1]) to 2.5D per-processor volume: [√c]. *)
