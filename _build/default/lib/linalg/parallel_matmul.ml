let multiply ?domains a b =
  if Matrix.cols a <> Matrix.rows b then
    invalid_arg "Parallel_matmul.multiply: inner dimension mismatch";
  let rows = Matrix.rows a and cols = Matrix.cols b and inner = Matrix.cols a in
  let c = Matrix.create ~rows ~cols in
  (* Rows of [c] are disjoint, so per-row bodies are race-free. *)
  Numerics.Parallel.parallel_for ?domains rows (fun i ->
      for k = 0 to inner - 1 do
        let aik = Matrix.get a i k in
        if aik <> 0. then
          for j = 0 to cols - 1 do
            Matrix.set c i j (Matrix.get c i j +. (aik *. Matrix.get b k j))
          done
      done);
  c

let heterogeneous_bands star ~rows =
  Numerics.Apportion.largest_remainder ~weights:(Platform.Star.speeds star) ~total:rows
