(* Unblocked Cholesky of the diagonal block [k0, k1), reading/writing
   the lower triangle, and updating rows below within those columns. *)
let factor_panel l ~k0 ~k1 =
  let n = Matrix.rows l in
  for k = k0 to k1 - 1 do
    let diag = ref (Matrix.get l k k) in
    for m = k0 to k - 1 do
      let v = Matrix.get l k m in
      diag := !diag -. (v *. v)
    done;
    if !diag <= 0. then failwith "Cholesky.factorize: matrix not positive definite";
    let pivot = sqrt !diag in
    Matrix.set l k k pivot;
    for i = k + 1 to n - 1 do
      let acc = ref (Matrix.get l i k) in
      for m = k0 to k - 1 do
        acc := !acc -. (Matrix.get l i m *. Matrix.get l k m)
      done;
      Matrix.set l i k (!acc /. pivot)
    done
  done

(* Trailing update: A(i,j) -= Σ_{m in panel} L(i,m)·L(j,m) for the
   lower triangle below the panel. *)
let update_trailing l ~k0 ~k1 =
  let n = Matrix.rows l in
  for i = k1 to n - 1 do
    for j = k1 to i do
      let acc = ref (Matrix.get l i j) in
      for m = k0 to k1 - 1 do
        acc := !acc -. (Matrix.get l i m *. Matrix.get l j m)
      done;
      Matrix.set l i j !acc
    done
  done

let factorize ?(block = 32) a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Cholesky.factorize: square matrix required";
  if block <= 0 then invalid_arg "Cholesky.factorize: block must be > 0";
  let l = Matrix.copy a in
  let k0 = ref 0 in
  while !k0 < n do
    let k1 = min n (!k0 + block) in
    factor_panel l ~k0:!k0 ~k1;
    update_trailing l ~k0:!k0 ~k1;
    k0 := k1
  done;
  (* Zero the strictly upper triangle. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Matrix.set l i j 0.
    done
  done;
  l

let solve l rhs =
  let n = Matrix.rows l in
  if Array.length rhs <> n then invalid_arg "Cholesky.solve: rhs size mismatch";
  let y = Array.copy rhs in
  (* Forward: L y = rhs. *)
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Matrix.get l i j *. y.(j))
    done;
    y.(i) <- !acc /. Matrix.get l i i
  done;
  (* Backward: Lᵀ x = y. *)
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get l j i *. y.(j))
    done;
    y.(i) <- !acc /. Matrix.get l i i
  done;
  y

let reconstruct l = Matrix.mul l (Matrix.transpose l)

let log_determinant l =
  let n = Matrix.rows l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Matrix.get l i i)
  done;
  2. *. !acc

let flop_count ~n = float_of_int n ** 3. /. 3.
