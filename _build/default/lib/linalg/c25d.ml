type model = {
  p : int;
  c : int;
  n : int;
  per_processor : float;
  total : float;
  replication : float;
  memory_factor : float;
}

let is_perfect_square k =
  let r = int_of_float (Float.round (sqrt (float_of_int k))) in
  r * r = k

let validate ~p ~c =
  if p <= 0 then invalid_arg "C25d: p must be positive";
  if c < 1 then invalid_arg "C25d: c must be >= 1";
  if float_of_int c > (float_of_int p ** (1. /. 3.)) +. 1e-9 then
    invalid_arg "C25d: c must not exceed p^(1/3)";
  if p mod c <> 0 || not (is_perfect_square (p / c)) then
    invalid_arg "C25d: p/c must be a perfect square"

let evaluate ~p ~c ~n =
  validate ~p ~c;
  let nf = float_of_int n in
  let pf = float_of_int p and cf = float_of_int c in
  (* Solomonik-Demmel bandwidth cost: 2n²/√(cp) words per processor for
     the multiplication phase. *)
  let per_processor = 2. *. nf *. nf /. sqrt (cf *. pf) in
  (* Replicating both inputs across the c layers moves (c-1)·2n²/c
     additional words in total. *)
  let replication = (cf -. 1.) *. 2. *. nf *. nf /. cf in
  {
    p;
    c;
    n;
    per_processor;
    total = (pf *. per_processor) +. replication;
    replication;
    memory_factor = cf;
  }

let best_replication ~p =
  let limit = int_of_float (float_of_int p ** (1. /. 3.) +. 1e-9) in
  let rec search c =
    if c < 1 then 1
    else if p mod c = 0 && is_perfect_square (p / c) then c
    else search (c - 1)
  in
  search limit

let speedup_over_2d ~p ~c ~n =
  validate ~p ~c;
  ignore n;
  (* per-processor volumes are 2n²/√p and 2n²/√(cp): the ratio is √c. *)
  sqrt (float_of_int c)
