lib/linalg/cannon.mli: Matrix
