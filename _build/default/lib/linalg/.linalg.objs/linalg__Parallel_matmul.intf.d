lib/linalg/parallel_matmul.mli: Matrix Platform
