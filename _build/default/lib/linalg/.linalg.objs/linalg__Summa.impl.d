lib/linalg/summa.ml: Array List Matrix Numerics Zone
