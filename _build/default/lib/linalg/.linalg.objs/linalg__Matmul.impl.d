lib/linalg/matmul.ml: Array Matrix Partition Zone
