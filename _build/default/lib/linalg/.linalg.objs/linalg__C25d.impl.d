lib/linalg/c25d.ml: Float
