lib/linalg/summa.mli: Matrix
