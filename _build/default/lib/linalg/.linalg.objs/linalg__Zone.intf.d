lib/linalg/zone.mli: Format Partition Platform
