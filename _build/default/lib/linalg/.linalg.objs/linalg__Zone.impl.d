lib/linalg/zone.ml: Array Format List Numerics Partition Platform Printf
