lib/linalg/strassen.ml: Matrix
