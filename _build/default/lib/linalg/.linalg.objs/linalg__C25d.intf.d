lib/linalg/c25d.mli:
