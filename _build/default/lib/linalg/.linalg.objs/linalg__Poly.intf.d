lib/linalg/poly.mli: Zone
