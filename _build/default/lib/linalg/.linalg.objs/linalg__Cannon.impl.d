lib/linalg/cannon.ml: Array Matrix
