lib/linalg/outer_product.mli: Matrix Partition Zone
