lib/linalg/parallel_matmul.ml: Matrix Numerics Platform
