lib/linalg/matmul.mli: Matrix Platform Zone
