lib/linalg/cholesky.mli: Matrix
