lib/linalg/poly.ml: Array Zone
