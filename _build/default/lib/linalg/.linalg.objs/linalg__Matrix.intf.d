lib/linalg/matrix.mli: Format Numerics
