lib/linalg/outer_product.ml: Array Matrix Partition Zone
