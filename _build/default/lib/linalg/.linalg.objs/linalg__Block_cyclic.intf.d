lib/linalg/block_cyclic.mli:
