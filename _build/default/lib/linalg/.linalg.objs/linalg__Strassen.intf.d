lib/linalg/strassen.mli: Matrix
