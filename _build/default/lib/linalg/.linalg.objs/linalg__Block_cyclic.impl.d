lib/linalg/block_cyclic.ml: Array
