(** Cannon's algorithm: the classical memory-minimal distributed matrix
    multiplication on a square [q × q] torus, included as a second
    comparator next to SUMMA/rank-1 (Section 4.2 context).

    After an initial skew (row [i] of [A] rotated left by [i], column
    [j] of [B] rotated up by [j]) the grid performs [q] rounds of local
    multiply-accumulate followed by a unit rotation of [A] (left) and
    [B] (up).  Per-step communication is one [A] and one [B] block per
    processor; total volume [≈ 2n²·q], the same order as SUMMA, but
    with fixed-size point-to-point messages instead of broadcasts. *)

type stats = {
  result : Matrix.t;
  words : int;  (** words moved, skew + rotations *)
  messages : int;  (** block transfers *)
  rounds : int;  (** [q] *)
}

val distributed : grid:int -> Matrix.t -> Matrix.t -> stats
(** Multiply two [n × n] matrices on a [grid × grid] torus.  Requires
    [grid >= 1] and [grid] dividing [n]. *)

val word_volume : grid:int -> n:int -> int
(** Closed form: skew movements plus [2·n²] per round for the [grid]
    rounds (blocks that stay put during the skew are not counted). *)
