(** Polynomial multiplication: the other quadratic workload the DLT
    literature tried to treat as divisible (the cloud polynomial
    products of Iyer-Veeravalli-Krishnamoorthy, ref [20] of the paper).

    The product of two degree-[(n-1)] polynomials needs all [n²]
    elementary products [a_i·b_j] (coefficient [k] sums those with
    [i + j = k]): the computation domain is the same [n × n] square as
    the outer product, so the Section 4 partitioning theory applies
    verbatim — a worker assigned a [rows × cols] zone needs
    [rows + cols] coefficients. *)

val schoolbook : float array -> float array -> float array
(** The [O(n²)] product; result length [|a| + |b| - 1].  Raises
    [Invalid_argument] on empty inputs. *)

val karatsuba : ?cutoff:int -> float array -> float array -> float array
(** [O(n^1.585)] divide-and-conquer product (sequential reference used
    to check that sub-quadratic algorithms agree); falls back to
    {!schoolbook} below [cutoff] (default 32). *)

type stats = {
  per_worker : int array;  (** coefficients received by each worker *)
  total : int;
  result : float array;
}

val distributed : zones:Zone.t array -> float array -> float array -> stats
(** Compute the product under a zone distribution of the [n × n]
    product domain ([n = |a| = |b|], zones must tile it): each worker
    receives its [a]/[b] slices (half-perimeter words) and emits
    partial coefficient sums, which the master adds.  The result equals
    {!schoolbook}. *)
