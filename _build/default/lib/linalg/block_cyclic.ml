type t = { grid_rows : int; grid_cols : int; block : int; n : int }

let create ~grid_rows ~grid_cols ~block ~n =
  if grid_rows <= 0 || grid_cols <= 0 || block <= 0 || n <= 0 then
    invalid_arg "Block_cyclic.create: all parameters must be positive";
  { grid_rows; grid_cols; block; n }

let grid_rows t = t.grid_rows
let grid_cols t = t.grid_cols
let processors t = t.grid_rows * t.grid_cols

let owner t ~row ~col =
  if row < 0 || row >= t.n || col < 0 || col >= t.n then
    invalid_arg "Block_cyclic.owner: out of bounds";
  let gr = row / t.block mod t.grid_rows in
  let gc = col / t.block mod t.grid_cols in
  (gr * t.grid_cols) + gc

(* Distinct rows owned by grid-row [gr]: rows whose block index is ≡ gr
   (mod grid_rows). *)
let rows_of_grid_row t gr =
  let count = ref 0 in
  let blocks = (t.n + t.block - 1) / t.block in
  for b = 0 to blocks - 1 do
    if b mod t.grid_rows = gr then begin
      let size = min t.block (t.n - (b * t.block)) in
      count := !count + size
    end
  done;
  !count

let owned_rows t ~proc =
  if proc < 0 || proc >= processors t then invalid_arg "Block_cyclic.owned_rows: bad proc";
  rows_of_grid_row t (proc / t.grid_cols)

let owned_cols t ~proc =
  if proc < 0 || proc >= processors t then invalid_arg "Block_cyclic.owned_cols: bad proc";
  let gc = proc mod t.grid_cols in
  let count = ref 0 in
  let blocks = (t.n + t.block - 1) / t.block in
  for b = 0 to blocks - 1 do
    if b mod t.grid_cols = gc then begin
      let size = min t.block (t.n - (b * t.block)) in
      count := !count + size
    end
  done;
  !count

let communication_volume t =
  let sum = ref 0 in
  for proc = 0 to processors t - 1 do
    sum := !sum + owned_rows t ~proc + owned_cols t ~proc
  done;
  t.n * !sum

let load t =
  let loads = Array.make (processors t) 0 in
  for proc = 0 to processors t - 1 do
    loads.(proc) <- owned_rows t ~proc * owned_cols t ~proc
  done;
  loads
