(** LU factorization with partial pivoting — the other workhorse the
    2.5D paper ([42]) covers, rounding out the dense-linear-algebra
    substrate.  Right-looking blocked elimination, the same shape the
    outer-product multiplication exploits: each step is a panel
    factorization plus a rank-[b] trailing update. *)

type factorization = {
  lu : Matrix.t;  (** packed L (unit lower) and U (upper) *)
  pivots : int array;  (** row swapped with row [i] at step [i] *)
  sign : float;  (** determinant sign from the permutation *)
}

val factorize : ?block:int -> Matrix.t -> factorization
(** Raises [Invalid_argument] on non-square input and [Failure] on
    (numerically) singular matrices.  [block] is the panel width
    (default 32). *)

val solve : factorization -> float array -> float array
(** Solve [A x = rhs] by forward/back substitution. *)

val determinant : factorization -> float

val reconstruct : factorization -> Matrix.t
(** [P⁻¹ L U]: equals the original matrix up to rounding (tested). *)

val flop_count : n:int -> float
(** [2n³/3] — the super-linear cost that makes LU another "no free
    lunch" workload. *)
