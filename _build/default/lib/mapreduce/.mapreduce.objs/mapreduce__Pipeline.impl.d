lib/mapreduce/pipeline.ml: Array Engine Float Jobs List Task
