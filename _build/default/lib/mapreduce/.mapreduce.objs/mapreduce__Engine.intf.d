lib/mapreduce/engine.mli: Platform Scheduler Shuffle Task
