lib/mapreduce/timeline.mli: Des Platform Scheduler
