lib/mapreduce/scheduler.mli: Numerics Platform Task
