lib/mapreduce/task.mli:
