lib/mapreduce/engine.ml: Array Hashtbl List Scheduler Shuffle Task
