lib/mapreduce/shuffle.mli: Platform
