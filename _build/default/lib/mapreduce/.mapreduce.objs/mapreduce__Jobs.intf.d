lib/mapreduce/jobs.mli: Engine
