lib/mapreduce/scheduler.ml: Array Des Float Hashtbl List Logs Numerics Platform Task
