lib/mapreduce/jobs.ml: Array Engine Float Int List Sortlib String Task
