lib/mapreduce/timeline.ml: Array Des List Platform Printf Scheduler
