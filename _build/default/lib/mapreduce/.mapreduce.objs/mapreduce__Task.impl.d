lib/mapreduce/task.ml: Array Float
