lib/mapreduce/pipeline.mli: Engine Platform Scheduler
