lib/mapreduce/shuffle.ml: Array Hashtbl List Numerics Platform
