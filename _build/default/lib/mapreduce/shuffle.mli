(** The shuffle/reduce phase: intermediate pairs are routed to reducers
    (hash placement, as in Hadoop), pairs produced on their reducer's
    own worker stay local, and each reducer folds its key groups. *)

type stats = {
  pairs : int;  (** intermediate pairs produced *)
  volume : float;  (** pairs shipped to a different worker *)
  per_reducer_volume : float array;
  per_reducer_work : float array;  (** values folded by each reducer *)
  reduce_time : float;  (** max over reducers of transfer + fold time *)
}

val placement : p:int -> 'k -> int
(** Deterministic hash placement of a key among [p] reducers. *)

val speed_weighted_placement : Platform.Star.t -> 'k -> int
(** Hash placement biased by worker speeds: a worker with a fraction
    [x_i] of the platform's speed receives an expected fraction [x_i]
    of the keys — the reducer-side analogue of the paper's
    heterogeneity-aware load balancing. *)

val run :
  ?place:('k -> int) ->
  Platform.Star.t ->
  pairs:('k * 'v * int) list ->
  reduce:('k -> 'v list -> 'v) ->
  ('k * 'v) list * stats
(** [pairs] carries [(key, value, producing_worker)].  Values reach
    their reducer in production order.  Each pair weighs one data unit;
    each value costs one work unit to fold.  [place] overrides the
    default hash {!placement}; it must return indices in
    [\[0, size star)]. *)
