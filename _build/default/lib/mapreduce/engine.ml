type ('k, 'v) job = {
  tasks : Task.t array;
  execute : int -> ('k * 'v) list;
  block_size : int -> float;
}

type ('k, 'v) result = {
  output : ('k * 'v) list;
  map : Scheduler.outcome;
  shuffle : Shuffle.stats;
  makespan : float;
}

let run ?config ?combine ?place star job ~reduce =
  Array.iteri
    (fun i task ->
      if task.Task.id <> i then invalid_arg "Engine.run: task ids must be 0..n-1 in order")
    job.tasks;
  let map = Scheduler.run ?config star ~tasks:job.tasks ~block_size:job.block_size in
  (* Optional map-side combiner: fold same-key pairs of one task before
     they enter the shuffle. *)
  let task_pairs i =
    let raw = job.execute i in
    match combine with
    | None -> raw
    | Some combine ->
        let groups = Hashtbl.create 16 in
        let order = ref [] in
        List.iter
          (fun (k, v) ->
            match Hashtbl.find_opt groups k with
            | Some cell -> cell := v :: !cell
            | None ->
                Hashtbl.add groups k (ref [ v ]);
                order := k :: !order)
          raw;
        List.rev_map (fun k -> (k, combine k (List.rev !(Hashtbl.find groups k)))) !order
  in
  let pairs =
    Array.to_list job.tasks
    |> List.concat_map (fun task ->
           let i = task.Task.id in
           let producer = if map.Scheduler.winner.(i) >= 0 then map.Scheduler.winner.(i) else 0 in
           List.map (fun (k, v) -> (k, v, producer)) (task_pairs i))
  in
  let output, shuffle = Shuffle.run ?place star ~pairs ~reduce in
  { output; map; shuffle; makespan = map.Scheduler.makespan +. shuffle.Shuffle.reduce_time }

let total_communication result =
  result.map.Scheduler.communication +. result.shuffle.Shuffle.volume
