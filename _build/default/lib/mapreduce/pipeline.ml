type 'state step =
  | Step : {
      name : string;
      job : 'state -> ('k, 'v) Engine.job;
      reduce : 'k -> 'v list -> 'v;
      collect : 'state -> ('k * 'v) list -> 'state;
    }
      -> 'state step

type stats = {
  steps : (string * float * float) list;
  communication : float;
  makespan : float;
}

let run ?config star ~init ~steps =
  let state = ref init in
  let rows = ref [] in
  List.iter
    (fun (Step { name; job; reduce; collect }) ->
      let result = Engine.run ?config star (job !state) ~reduce in
      let communication = Engine.total_communication result in
      rows := (name, communication, result.Engine.makespan) :: !rows;
      state := collect !state result.Engine.output)
    steps;
  let steps = List.rev !rows in
  ( !state,
    {
      steps;
      communication = List.fold_left (fun acc (_, c, _) -> acc +. c) 0. steps;
      makespan = List.fold_left (fun acc (_, _, m) -> acc +. m) 0. steps;
    } )

let sort ~keys ~chunk ~p =
  let n = Array.length keys in
  if n = 0 || chunk <= 0 || n mod chunk <> 0 then
    invalid_arg "Pipeline.sort: chunk must be a positive divisor of |keys|";
  if p < 1 then invalid_arg "Pipeline.sort: p must be >= 1";
  let chunks = n / chunk in
  let splitters = ref [||] in
  let sampling =
    Step
      {
        name = "sample + select splitters";
        job =
          (fun _ ->
            {
              Engine.tasks =
                Array.init chunks (fun t ->
                    Task.make ~id:t ~data_ids:[| t |] ~cost:(float_of_int chunk));
              execute =
                (fun t ->
                  (* p regular samples from the task's (sorted) chunk. *)
                  let local = Array.sub keys (t * chunk) chunk in
                  Array.sort Float.compare local;
                  List.init p (fun j -> (0, [| local.(j * chunk / p) |])));
              block_size = (fun _ -> float_of_int chunk);
            });
        reduce = (fun _ samples -> Array.concat samples);
        collect =
          (fun state output ->
            let samples = Array.concat (List.map snd output) in
            Array.sort Float.compare samples;
            let m = Array.length samples in
            splitters :=
              (if p = 1 then [||]
               else
                 Array.init (p - 1) (fun j -> samples.(min ((j + 1) * m / p) (m - 1))));
            state);
      }
  in
  let sorting =
    Step
      {
        name = "bucket + sort";
        job = (fun state -> Jobs.distributed_sort ~keys:state ~chunk ~splitters:!splitters);
        reduce =
          (fun _ runs ->
            let merged = Array.concat runs in
            Array.sort Float.compare merged;
            merged);
        collect = (fun _ output -> Jobs.assemble_sorted output);
      }
  in
  [ sampling; sorting ]

let matmul ~a ~b ~n ~chunk =
  (* State: the flat row-major result, with the phase-1 partial blocks
     stashed alongside via a closure-free encoding — phase 2's job is
     built from phase 1's output, so the state between the steps is the
     phase-1 output itself, smuggled through a ref captured by both
     steps. *)
  let phase1_output = ref [] in
  [
    Step
      {
        name = "block products";
        job = (fun _ -> Jobs.matmul_phase1 ~a ~b ~n ~chunk);
        reduce = (fun _ -> function [ one ] -> one | many -> Jobs.sum_blocks () many);
        collect =
          (fun state output ->
            phase1_output := output;
            state);
      };
    Step
      {
        name = "partial sums";
        job = (fun _ -> Jobs.matmul_phase2 ~phase1_output:!phase1_output ~chunk);
        reduce = Jobs.sum_blocks;
        collect = (fun _ output -> Jobs.assemble_blocks output ~n ~chunk);
      };
  ]
