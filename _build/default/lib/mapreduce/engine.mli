(** The end-to-end MapReduce engine: demand-driven map phase
    ({!Scheduler}), hash shuffle and reduce ({!Shuffle}), with functional
    execution of the user's map and reduce so that job outputs can be
    verified against sequential references. *)

type ('k, 'v) job = {
  tasks : Task.t array;  (** [tasks.(i).id] must equal [i] *)
  execute : int -> ('k * 'v) list;  (** the map function of task [i] *)
  block_size : int -> float;  (** size of each input block id *)
}

type ('k, 'v) result = {
  output : ('k * 'v) list;  (** reduced output, unordered *)
  map : Scheduler.outcome;
  shuffle : Shuffle.stats;
  makespan : float;  (** map makespan + shuffle/reduce time *)
}

val run :
  ?config:Scheduler.config ->
  ?combine:('k -> 'v list -> 'v) ->
  ?place:('k -> int) ->
  Platform.Star.t ->
  ('k, 'v) job ->
  reduce:('k -> 'v list -> 'v) ->
  ('k, 'v) result
(** Raises [Invalid_argument] when task ids are not [0..n-1] in order.

    [combine] is the classic map-side combiner: same-key pairs emitted
    by one task are pre-folded before the shuffle, cutting its volume
    (it must be the same associative fold as [reduce] for the output to
    be unchanged). *)

val total_communication : ('k, 'v) result -> float
(** Map-input volume + shuffle volume. *)
