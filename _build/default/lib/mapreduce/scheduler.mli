(** The map-phase scheduler: demand-driven task hand-out on a
    heterogeneous platform, as in Hadoop (Section 4: "processors ask for
    new tasks as soon as they end processing one"), plus two extensions
    the paper discusses:

    - {b affinity-aware} selection (the conclusion's proposal): among
      pending tasks, prefer the one whose input blocks are already
      cached on the requesting worker;
    - {b speculative re-execution} (Hadoop behaviour): when no pending
      task remains, an idle worker duplicates the running task with the
      latest estimated finish; the task completes when its first copy
      does. *)

type policy =
  | Fifo  (** take pending tasks in submission order *)
  | Affinity  (** minimize the volume of blocks to fetch; ties → Fifo *)

type config = { policy : policy; speculation : bool }

val default_config : config
(** [Fifo], no speculation: plain MapReduce. *)

type assignment = {
  task : int;  (** task id *)
  worker : int;
  start : float;
  fetch_end : float;  (** when all missing blocks have arrived *)
  finish : float;
  fetched : float;  (** data volume actually transferred *)
}

type outcome = {
  assignments : assignment list;  (** in assignment order, incl. copies *)
  completion : float array;  (** per task: earliest copy finish *)
  winner : int array;  (** per task: worker of the earliest copy *)
  makespan : float;  (** last task completion *)
  busy_until : float array;  (** per worker: end of its last copy *)
  communication : float;  (** total data fetched, incl. duplicates *)
  per_worker_comm : float array;
  per_worker_tasks : int array;  (** copies run by each worker *)
  duplicates : int;  (** speculative copies launched *)
}

val run :
  ?config:config ->
  ?jitter:Numerics.Rng.t * float ->
  Platform.Star.t ->
  tasks:Task.t array ->
  block_size:(int -> float) ->
  outcome
(** Simulate the map phase.  Workers cache every block they fetch for
    the duration of the job (the paper's "data already stored on a slave
    processor").  Deterministic given the same inputs: ties are broken
    by worker then task index.

    [jitter] = [(rng, sigma)] multiplies every copy's computation time
    by an independent log-normal(0, sigma) factor — the stragglers that
    make speculative re-execution worthwhile.  The scheduler sees the
    realized duration at assignment time (a clairvoyant simplification;
    real runtimes estimate progress instead). *)

val imbalance : outcome -> float
(** [(tmax - tmin)/tmin] over [busy_until]; [infinity] when a worker
    never ran a task. *)
