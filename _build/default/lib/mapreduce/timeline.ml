let trace (outcome : Scheduler.outcome) =
  let t = Des.Trace.create () in
  List.iter
    (fun (a : Scheduler.assignment) ->
      let resource = Printf.sprintf "w%d" a.Scheduler.worker in
      if a.Scheduler.fetch_end > a.Scheduler.start then
        Des.Trace.record t ~resource ~start:a.Scheduler.start ~finish:a.Scheduler.fetch_end
          ~label:"f";
      Des.Trace.record t ~resource ~start:a.Scheduler.fetch_end ~finish:a.Scheduler.finish
        ~label:"x")
    outcome.Scheduler.assignments;
  t

let gantt ?width outcome = Des.Trace.render_gantt ?width (trace outcome)

let utilizations star (outcome : Scheduler.outcome) =
  let t = trace outcome in
  let makespan = outcome.Scheduler.makespan in
  Array.init (Platform.Star.size star) (fun w ->
      if makespan <= 0. then 0.
      else Des.Trace.busy_time t ~resource:(Printf.sprintf "w%d" w) /. makespan)
