(** Sequences of MapReduce jobs — the paper's option (ii) for
    non-linear workloads ([25]) as a first-class construct.

    A pipeline threads a state value through steps; each step builds a
    job from the current state (the key/value types are local to the
    step) and folds the job's reduced output back into the state.
    Communication and makespan accumulate across steps (jobs run one
    after the other, as in Hadoop job chains). *)

type 'state step =
  | Step : {
      name : string;
      job : 'state -> ('k, 'v) Engine.job;
      reduce : 'k -> 'v list -> 'v;
      collect : 'state -> ('k * 'v) list -> 'state;
    }
      -> 'state step

type stats = {
  steps : (string * float * float) list;
      (** per step: name, total communication, makespan *)
  communication : float;  (** summed over steps *)
  makespan : float;  (** summed over steps (sequential chain) *)
}

val run :
  ?config:Scheduler.config ->
  Platform.Star.t ->
  init:'state ->
  steps:'state step list ->
  'state * stats

val matmul :
  a:(int -> int -> float) -> b:(int -> int -> float) -> n:int -> chunk:int ->
  float array step list
(** The two-phase matrix product as a pipeline over the flat row-major
    result state (start from [Array.make (n*n) 0.]). *)

val sort : keys:float array -> chunk:int -> p:int -> float array step list
(** Section 3 end to end as a two-job pipeline: job 1 draws regular
    samples from every chunk and selects the [p - 1] splitters (the
    preprocessing the paper says makes sorting divisible); job 2 buckets
    and sorts.  Start from the unsorted [keys]; the final state is the
    sorted array. *)
