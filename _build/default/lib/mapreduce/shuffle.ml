module Star = Platform.Star
module Processor = Platform.Processor

type stats = {
  pairs : int;
  volume : float;
  per_reducer_volume : float array;
  per_reducer_work : float array;
  reduce_time : float;
}

let placement ~p key = Hashtbl.hash key mod p

let speed_weighted_placement star key =
  let x = Star.relative_speeds star in
  (* Map the key hash to [0,1) and walk the cumulative speed vector. *)
  let u = float_of_int (Hashtbl.hash key land 0x3FFFFFFF) /. float_of_int 0x40000000 in
  let p = Array.length x in
  let rec scan i acc =
    if i = p - 1 then i
    else
      let acc = acc +. x.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let run ?place star ~pairs ~reduce =
  let p = Star.size star in
  let place = match place with Some f -> f | None -> placement ~p in
  let workers = Star.workers star in
  let groups : ('k, 'v list ref) Hashtbl.t = Hashtbl.create 256 in
  let per_reducer_volume = Array.make p 0. in
  let per_reducer_work = Array.make p 0. in
  let count = ref 0 in
  List.iter
    (fun (key, value, producer) ->
      incr count;
      let reducer = place key in
      if reducer < 0 || reducer >= p then invalid_arg "Shuffle.run: placement out of range";
      if reducer <> producer then
        per_reducer_volume.(reducer) <- per_reducer_volume.(reducer) +. 1.;
      per_reducer_work.(reducer) <- per_reducer_work.(reducer) +. 1.;
      (match Hashtbl.find_opt groups key with
      | Some cell -> cell := value :: !cell
      | None -> Hashtbl.add groups key (ref [ value ])))
    pairs;
  let output =
    Hashtbl.fold (fun key cell acc -> (key, reduce key (List.rev !cell)) :: acc) groups []
  in
  let reduce_time =
    let worst = ref 0. in
    for r = 0 to p - 1 do
      let time =
        Processor.transfer_time workers.(r) ~data:per_reducer_volume.(r)
        +. Processor.compute_time workers.(r) ~work:per_reducer_work.(r)
      in
      if time > !worst then worst := time
    done;
    !worst
  in
  ( output,
    {
      pairs = !count;
      volume = Numerics.Kahan.sum per_reducer_volume;
      per_reducer_volume;
      per_reducer_work;
      reduce_time;
    } )
