let words_of doc =
  String.split_on_char ' ' doc
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

let word_count ~docs =
  let tasks =
    Array.mapi
      (fun i doc ->
        Task.make ~id:i ~data_ids:[| i |] ~cost:(float_of_int (max 1 (String.length doc))))
      docs
  in
  let execute i = List.map (fun w -> (w, 1)) (words_of docs.(i)) in
  let block_size i = float_of_int (max 1 (String.length docs.(i))) in
  { Engine.tasks; execute; block_size }

let check_chunk ~n ~chunk ~name =
  if chunk <= 0 || n mod chunk <> 0 then
    invalid_arg (name ^ ": chunk must be a positive divisor of n")

let outer_product ~a ~b ~chunk =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Jobs.outer_product: |a| <> |b|";
  check_chunk ~n ~chunk ~name:"Jobs.outer_product";
  let blocks = n / chunk in
  (* Block ids: [0..blocks) are chunks of a, [blocks..2·blocks) of b. *)
  let tasks =
    Array.init (blocks * blocks) (fun t ->
        let brow = t / blocks and bcol = t mod blocks in
        Task.make ~id:t
          ~data_ids:[| brow; blocks + bcol |]
          ~cost:(float_of_int (chunk * chunk)))
  in
  let execute t =
    let brow = t / blocks and bcol = t mod blocks in
    let pairs = ref [] in
    for i = brow * chunk to ((brow + 1) * chunk) - 1 do
      for j = bcol * chunk to ((bcol + 1) * chunk) - 1 do
        pairs := ((i, j), a.(i) *. b.(j)) :: !pairs
      done
    done;
    List.rev !pairs
  in
  let block_size _ = float_of_int chunk in
  { Engine.tasks; execute; block_size }

let matmul_replicated ~a ~b ~n ~chunk =
  check_chunk ~n ~chunk ~name:"Jobs.matmul_replicated";
  let blocks = n / chunk in
  (* Block ids: A-blocks first ([ib·blocks + kb]), then B-blocks. *)
  let a_block ib kb = (ib * blocks) + kb in
  let b_block kb jb = (blocks * blocks) + (kb * blocks) + jb in
  let tasks =
    Array.init (blocks * blocks * blocks) (fun t ->
        let ib = t / (blocks * blocks) in
        let jb = t / blocks mod blocks in
        let kb = t mod blocks in
        Task.make ~id:t
          ~data_ids:[| a_block ib kb; b_block kb jb |]
          ~cost:(float_of_int (chunk * chunk * chunk)))
  in
  let execute t =
    let ib = t / (blocks * blocks) in
    let jb = t / blocks mod blocks in
    let kb = t mod blocks in
    let pairs = ref [] in
    for i = ib * chunk to ((ib + 1) * chunk) - 1 do
      for j = jb * chunk to ((jb + 1) * chunk) - 1 do
        let acc = ref 0. in
        for k = kb * chunk to ((kb + 1) * chunk) - 1 do
          acc := !acc +. (a i k *. b k j)
        done;
        pairs := ((i, j), !acc) :: !pairs
      done
    done;
    List.rev !pairs
  in
  let block_size _ = float_of_int (chunk * chunk) in
  { Engine.tasks; execute; block_size }

let replication_factor ~n ~chunk =
  check_chunk ~n ~chunk ~name:"Jobs.replication_factor";
  float_of_int n /. float_of_int chunk

let distributed_sort ~keys ~chunk ~splitters =
  let n = Array.length keys in
  if n = 0 then invalid_arg "Jobs.distributed_sort: empty input";
  check_chunk ~n ~chunk ~name:"Jobs.distributed_sort";
  let chunks = n / chunk in
  let tasks =
    Array.init chunks (fun t ->
        Task.make ~id:t ~data_ids:[| t |] ~cost:(float_of_int chunk))
  in
  let execute t =
    let pairs = ref [] in
    for i = t * chunk to ((t + 1) * chunk) - 1 do
      let bucket = Sortlib.Sample_sort.bucket_index ~cmp:Float.compare splitters keys.(i) in
      pairs := (bucket, [| keys.(i) |]) :: !pairs
    done;
    List.rev !pairs
  in
  let block_size _ = float_of_int chunk in
  { Engine.tasks; execute; block_size }

let assemble_sorted outputs =
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) outputs in
  Array.concat (List.map snd sorted)

let matmul_phase1 ~a ~b ~n ~chunk =
  check_chunk ~n ~chunk ~name:"Jobs.matmul_phase1";
  let blocks = n / chunk in
  let a_block ib kb = (ib * blocks) + kb in
  let b_block kb jb = (blocks * blocks) + (kb * blocks) + jb in
  let tasks =
    Array.init (blocks * blocks * blocks) (fun t ->
        let ib = t / (blocks * blocks) in
        let jb = t / blocks mod blocks in
        let kb = t mod blocks in
        Task.make ~id:t
          ~data_ids:[| a_block ib kb; b_block kb jb |]
          ~cost:(float_of_int (chunk * chunk * chunk)))
  in
  let execute t =
    let ib = t / (blocks * blocks) in
    let jb = t / blocks mod blocks in
    let kb = t mod blocks in
    let partial = Array.make (chunk * chunk) 0. in
    for i = 0 to chunk - 1 do
      for j = 0 to chunk - 1 do
        let acc = ref 0. in
        for k = 0 to chunk - 1 do
          acc := !acc +. (a ((ib * chunk) + i) ((kb * chunk) + k)
                          *. b ((kb * chunk) + k) ((jb * chunk) + j))
        done;
        partial.((i * chunk) + j) <- !acc
      done
    done;
    [ ((ib, jb, kb), partial) ]
  in
  let block_size _ = float_of_int (chunk * chunk) in
  { Engine.tasks; execute; block_size }

let matmul_phase2 ~phase1_output ~chunk =
  let inputs = Array.of_list phase1_output in
  let tasks =
    Array.init (Array.length inputs) (fun t ->
        (* The input block is the task's single data item. *)
        Task.make ~id:t ~data_ids:[| t |] ~cost:(float_of_int (chunk * chunk)))
  in
  let execute t =
    let (ib, jb, _kb), partial = inputs.(t) in
    [ ((ib, jb), partial) ]
  in
  let block_size _ = float_of_int (chunk * chunk) in
  { Engine.tasks; execute; block_size }

let sum_blocks _ partials =
  match partials with
  | [] -> [||]
  | first :: rest ->
      let acc = Array.copy first in
      List.iter (Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v)) rest;
      acc

let assemble_blocks outputs ~n ~chunk =
  check_chunk ~n ~chunk ~name:"Jobs.assemble_blocks";
  let result = Array.make (n * n) 0. in
  List.iter
    (fun ((ib, jb), block) ->
      for i = 0 to chunk - 1 do
        for j = 0 to chunk - 1 do
          result.((((ib * chunk) + i) * n) + (jb * chunk) + j) <- block.((i * chunk) + j)
        done
      done)
    outputs;
  result
