(** Ready-made MapReduce jobs.

    [word_count] is the linear-complexity workload MapReduce was
    designed for (Section 1.1); [outer_product] and [matmul_replicated]
    are the non-linear workloads of Section 4, expressed with the data
    replication the paper describes (the [N² → N³] blow-up for matrix
    multiplication). *)

val word_count : docs:string array -> (string, int) Engine.job
(** One map task per document; keys are whitespace-separated words,
    reduced by summing counts. *)

val outer_product :
  a:float array -> b:float array -> chunk:int -> (int * int, float) Engine.job
(** Square blocks of side [chunk] over the [n × n] outer-product domain
    ([chunk] must divide [n = |a| = |b|]); a task reads one chunk of [a]
    and one of [b] (identified blocks, so affinity scheduling can reuse
    them) and emits one pair per cell. *)

val matmul_replicated :
  a:(int -> int -> float) ->
  b:(int -> int -> float) ->
  n:int -> chunk:int ->
  (int * int, float) Engine.job
(** The replicated-data matrix product: one task per block triple
    [(i-block, j-block, k-block)], reading one block of [A] and one of
    [B] and emitting partial sums keyed by [(i, j)]; the reducer adds
    the [n/chunk] partials.  Total map input is [2n³/chunk] data units
    for matrices of size [2n²] — the replication factor of Section 2. *)

val replication_factor : n:int -> chunk:int -> float
(** [(2n³/chunk) / (2n²) = n/chunk]. *)

val distributed_sort :
  keys:float array -> chunk:int -> splitters:float array ->
  (int, float array) Engine.job
(** Section 3 expressed as a MapReduce job: map tasks route their chunk
    of keys to buckets (one pair [(bucket, singleton)] per key), the
    reducer of bucket [b] concatenates and sorts — use
    [reduce = fun _ runs -> sort (concat runs)] and concatenate the
    outputs in bucket order for the fully sorted result.  [chunk] must
    divide [|keys|]; splitters must be sorted. *)

val assemble_sorted : (int * float array) list -> float array
(** Order the reducer outputs of {!distributed_sort} by bucket and
    concatenate. *)

val matmul_phase1 :
  a:(int -> int -> float) -> b:(int -> int -> float) -> n:int -> chunk:int ->
  (int * int * int, float array) Engine.job
(** The paper's alternative (ii) for non-linear workloads: instead of
    replicating the inputs [n/chunk] times up front, run a {e sequence}
    of two MapReduce jobs ([25]).  Phase 1 computes every block product
    [A(ib,kb)·B(kb,jb)]: one map task per block triple, reading exactly
    two blocks and emitting one flattened [chunk × chunk] partial block
    keyed by [(ib, jb, kb)]; reduce is the identity merge. *)

val matmul_phase2 :
  phase1_output:((int * int * int) * float array) list -> chunk:int ->
  (int * int, float array) Engine.job
(** Phase 2: one map task per phase-1 partial block, re-keying it to
    [(ib, jb)]; the reducer sums the [n/chunk] partials element-wise.
    The inter-phase data is [n³/chunk] values — the inflation has moved
    from map input into the pipeline, which is the trade-off the paper
    points out for the sequence-of-jobs approach. *)

val assemble_blocks :
  ((int * int) * float array) list -> n:int -> chunk:int -> float array
(** Rebuild the row-major [n × n] result from phase-2 outputs. *)

val sum_blocks : 'k -> float array list -> float array
(** Element-wise sum — the phase-2 reducer. *)
