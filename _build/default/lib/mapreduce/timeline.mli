(** Visualization of a map-phase outcome: per-worker fetch/compute
    intervals as a {!Des.Trace}, with utilization figures. *)

val trace : Scheduler.outcome -> Des.Trace.t
(** Resources ["w<i>"]: label [f] for fetch intervals, [x] for compute
    intervals (one pair per executed copy). *)

val gantt : ?width:int -> Scheduler.outcome -> string

val utilizations : Platform.Star.t -> Scheduler.outcome -> float array
(** Busy time / makespan per worker (0 when the makespan is 0). *)
