type t = { id : int; data_ids : int array; cost : float }

let make ~id ~data_ids ~cost =
  if cost < 0. || Float.is_nan cost then invalid_arg "Task.make: negative cost";
  { id; data_ids; cost }

let input_size ~block_size t =
  Array.fold_left (fun acc id -> acc +. block_size id) 0. t.data_ids
