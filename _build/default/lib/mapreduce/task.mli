(** Map-task descriptors.

    A task reads a set of identified data blocks (so the runtime can
    recognize when a worker already holds a block — the affinity
    information of the paper's conclusion) and performs a fixed amount
    of computation. *)

type t = {
  id : int;
  data_ids : int array;  (** identities of the input blocks *)
  cost : float;  (** work units *)
}

val make : id:int -> data_ids:int array -> cost:float -> t
(** Raises [Invalid_argument] on negative cost. *)

val input_size : block_size:(int -> float) -> t -> float
(** Total size of the task's blocks. *)
