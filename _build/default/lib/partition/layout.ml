type t = { rects : Rect.t array }

let size t = Array.length t.rects
let areas t = Array.map Rect.area t.rects
let sum_half_perimeters t = Numerics.Kahan.sum_by Rect.half_perimeter t.rects

let max_half_perimeter t =
  Array.fold_left (fun acc r -> Float.max acc (Rect.half_perimeter r)) 0. t.rects

let communication_volume t ~n = n *. sum_half_perimeters t

let validate ?(tol = 1e-9) ?expected_areas t =
  let problems = ref [] in
  let fail fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  Array.iteri
    (fun i r ->
      if r.Rect.x < -.tol || r.Rect.y < -.tol
         || Rect.x_max r > 1. +. tol || Rect.y_max r > 1. +. tol
      then fail "rect %d exceeds the unit square" i)
    t.rects;
  let p = Array.length t.rects in
  for i = 0 to p - 1 do
    for j = i + 1 to p - 1 do
      if Rect.overlaps ~tol t.rects.(i) t.rects.(j) then fail "rects %d and %d overlap" i j
    done
  done;
  let covered = Numerics.Kahan.sum (areas t) in
  if Float.abs (covered -. 1.) > tol *. float_of_int (max 1 p) then
    fail "areas sum to %.12g, expected 1" covered;
  (match expected_areas with
  | None -> ()
  | Some expected ->
      if Array.length expected <> p then fail "expected_areas length mismatch"
      else
        Array.iteri
          (fun i a ->
            let actual = Rect.area t.rects.(i) in
            if Float.abs (actual -. a) > tol then
              fail "rect %d has area %.12g, prescribed %.12g" i actual a)
          expected);
  match !problems with [] -> Ok () | msgs -> Error (String.concat "; " (List.rev msgs))

let pp ppf t =
  Format.fprintf ppf "@[<v>layout (%d zones, C=%.6g):@," (size t) (sum_half_perimeters t);
  Array.iteri (fun i r -> Format.fprintf ppf "  %d: %a@," i Rect.pp r) t.rects;
  Format.fprintf ppf "@]"

let markers = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

let render ?(width = 48) ?(height = 24) t =
  let buf = Buffer.create ((width + 1) * height) in
  for row = 0 to height - 1 do
    for col = 0 to width - 1 do
      let x = (float_of_int col +. 0.5) /. float_of_int width in
      let y = (float_of_int row +. 0.5) /. float_of_int height in
      let owner = ref '?' in
      Array.iteri
        (fun i r -> if Rect.contains r ~x ~y then owner := markers.[i mod String.length markers])
        t.rects;
      Buffer.add_char buf !owner
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
