(** Axis-aligned rectangles inside the unit computational domain.

    In Section 4.1 a processor assigned the rectangle
    [\[x, x+width\] × \[y, y+height\]] of the (normalized) outer-product
    domain receives [width + height] units of data (a slice of each
    input vector), i.e. its half-perimeter. *)

type t = { x : float; y : float; width : float; height : float }

val make : x:float -> y:float -> width:float -> height:float -> t
(** Raises [Invalid_argument] on negative dimensions. *)

val area : t -> float
val half_perimeter : t -> float

val x_max : t -> float
val y_max : t -> float

val contains : t -> x:float -> y:float -> bool
(** Closed on the low edges, open on the high edges, so that a tiling
    assigns every interior point to exactly one rectangle. *)

val intersection_area : t -> t -> float
val overlaps : ?tol:float -> t -> t -> bool
(** True when the open interiors intersect with area above [tol]. *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
