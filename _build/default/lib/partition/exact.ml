let check areas =
  if Array.length areas > 10 then
    invalid_arg "Partition.Exact: exhaustive search limited to 10 areas";
  if Array.length areas = 0 then invalid_arg "Partition.Exact: empty areas"

(* Enumerate set partitions: [visit groups] is called for every
   partition of indices [0..n-1] into non-empty groups (as lists). *)
let iter_set_partitions n visit =
  let groups : int list array = Array.make n [] in
  let rec place i group_count =
    if i = n then visit (Array.to_list (Array.sub groups 0 group_count))
    else begin
      for g = 0 to group_count - 1 do
        groups.(g) <- i :: groups.(g);
        place (i + 1) group_count;
        groups.(g) <- List.tl groups.(g)
      done;
      groups.(group_count) <- [ i ];
      place (i + 1) (group_count + 1);
      groups.(group_count) <- []
    end
  in
  place 0 0

let optimize ~areas ~column_cost ~combine ~neutral =
  check areas;
  let best = ref infinity in
  iter_set_partitions (Array.length areas) (fun groups ->
      let cost =
        List.fold_left (fun acc group -> combine acc (column_cost group)) neutral groups
      in
      if cost < !best then best := cost);
  !best

let peri_sum_cost ~areas =
  let column_cost group =
    let width = List.fold_left (fun acc i -> acc +. areas.(i)) 0. group in
    (float_of_int (List.length group) *. width) +. 1.
  in
  optimize ~areas ~column_cost ~combine:( +. ) ~neutral:0.

let peri_max_cost ~areas =
  let column_cost group =
    let width = List.fold_left (fun acc i -> acc +. areas.(i)) 0. group in
    let largest = List.fold_left (fun acc i -> Float.max acc areas.(i)) 0. group in
    width +. (largest /. width)
  in
  optimize ~areas ~column_cost ~combine:Float.max ~neutral:0.
