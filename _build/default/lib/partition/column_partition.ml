type assignment = { columns : int array array; cost : float }

let check_areas areas =
  if Array.length areas = 0 then invalid_arg "Column_partition: empty areas";
  Array.iter
    (fun a -> if a <= 0. || Float.is_nan a then invalid_arg "Column_partition: non-positive area")
    areas;
  let total = Numerics.Kahan.sum areas in
  if Float.abs (total -. 1.) > 1e-6 then
    invalid_arg (Printf.sprintf "Column_partition: areas sum to %.9g, expected 1" total)

(* Indices of [areas] sorted by non-increasing area (stable). *)
let sorted_indices areas =
  let idx = Array.init (Array.length areas) (fun i -> i) in
  Array.sort
    (fun i j ->
      match Float.compare areas.(j) areas.(i) with 0 -> Int.compare i j | c -> c)
    idx;
  idx

let prefix_sums areas order =
  let p = Array.length order in
  let prefix = Array.make (p + 1) 0. in
  for i = 0 to p - 1 do
    prefix.(i + 1) <- prefix.(i) +. areas.(order.(i))
  done;
  prefix

(* Generic DP over contiguous segments of the sorted order.
   [column_cost j i] is the cost of a column holding sorted positions
   [j..i-1]; [combine] folds column costs ((+.) for PERI-SUM,
   Float.max for PERI-MAX). *)
let solve ~areas ~column_cost ~combine ~neutral =
  check_areas areas;
  let order = sorted_indices areas in
  let p = Array.length order in
  let best = Array.make (p + 1) infinity in
  let cut = Array.make (p + 1) 0 in
  best.(0) <- neutral;
  for i = 1 to p do
    for j = 0 to i - 1 do
      let candidate = combine best.(j) (column_cost j i) in
      if candidate < best.(i) then begin
        best.(i) <- candidate;
        cut.(i) <- j
      end
    done
  done;
  (* Walk the cut positions back to recover the columns. *)
  let rec segments i acc = if i = 0 then acc else segments cut.(i) ((cut.(i), i) :: acc) in
  let columns =
    segments p []
    |> List.map (fun (j, i) -> Array.sub order j (i - j))
    |> Array.of_list
  in
  { columns; cost = best.(p) }

let peri_sum ~areas =
  let order = sorted_indices areas in
  let prefix = prefix_sums areas order in
  let column_cost j i =
    let width = prefix.(i) -. prefix.(j) in
    (float_of_int (i - j) *. width) +. 1.
  in
  solve ~areas ~column_cost ~combine:( +. ) ~neutral:0.

let peri_max ~areas =
  let order = sorted_indices areas in
  let prefix = prefix_sums areas order in
  let column_cost j i =
    let width = prefix.(i) -. prefix.(j) in
    (* The widest half-perimeter in the column comes from its largest
       area, i.e. the first element of the (descending) segment. *)
    width +. (areas.(order.(j)) /. width)
  in
  solve ~areas ~column_cost ~combine:Float.max ~neutral:0.

let to_layout ~areas assignment =
  let p = Array.length areas in
  let rects = Array.make p (Rect.make ~x:0. ~y:0. ~width:0. ~height:0.) in
  let ncols = Array.length assignment.columns in
  let x = ref 0. in
  Array.iteri
    (fun c column ->
      let width = Numerics.Kahan.sum_by (fun i -> areas.(i)) column in
      (* Snap the last column to the right edge to absorb rounding. *)
      let width = if c = ncols - 1 then 1. -. !x else width in
      let y = ref 0. in
      Array.iteri
        (fun r i ->
          let height =
            if r = Array.length column - 1 then 1. -. !y else areas.(i) /. width
          in
          rects.(i) <- Rect.make ~x:!x ~y:!y ~width ~height;
          y := !y +. height)
        column;
      x := !x +. width)
    assignment.columns;
  { Layout.rects }

let peri_sum_layout ~areas = to_layout ~areas (peri_sum ~areas)

let normalize_speeds star = Platform.Star.relative_speeds star
