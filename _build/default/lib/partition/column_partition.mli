(** Column-based partitioning of the unit square into rectangles of
    prescribed areas — the PERI-SUM / PERI-MAX algorithms of
    Beaumont, Boudet, Rastello & Robert (Algorithmica 2002), used by the
    Heterogeneous Blocks strategy (Section 4.1.2).

    A column-based partition cuts the square into vertical columns, each
    then sliced horizontally.  A column containing zones of areas
    [{a_i}] is forced to width [w = Σ a_i], and contributes
    [k·w + 1] to the sum of half-perimeters ([k] zones of width [w] and
    total height 1).  Restricting to partitions that assign areas sorted
    in non-increasing order to consecutive columns, the optimum over the
    class is computed exactly by an O(p²) dynamic program; it is within
    [1 + (5/4)·LB] of the unrestricted optimum, hence a
    [7/4]-approximation (asymptotically [5/4]). *)

type assignment = {
  columns : int array array;
      (** [columns.(c)] lists the indices (into the input [areas]) of
          the zones stacked in column [c], left to right. *)
  cost : float;  (** value of the optimized objective *)
}

val peri_sum : areas:float array -> assignment
(** Optimal column-based partition for the sum of half-perimeters.
    Raises [Invalid_argument] on an empty array, non-positive areas, or
    areas that do not sum to 1 (within 1e-6). *)

val peri_max : areas:float array -> assignment
(** Same DP, minimizing the maximum half-perimeter.  Unlike PERI-SUM,
    the min-max objective is not guaranteed optimal over arbitrary
    column groupings by the contiguity restriction; measured against
    exhaustive search it stays within ~2% (see the test suite). *)

val to_layout : areas:float array -> assignment -> Layout.t
(** Realize the assignment geometrically: columns left to right, zones
    stacked bottom-up; [rects.(i)] is the zone of [areas.(i)]. *)

val peri_sum_layout : areas:float array -> Layout.t
(** [to_layout ∘ peri_sum]. *)

val normalize_speeds : Platform.Star.t -> float array
(** Relative speeds [x_i], the prescribed areas of Section 4.1.2. *)
