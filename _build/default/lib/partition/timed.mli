(** Time-domain evaluation of the Section 4 distribution strategies.

    The paper compares communication *volumes*; this module adds the
    execution-time view under the parallel-link model of Section 1.2:
    worker [i] first receives its data at rate [bw_i], then computes its
    cells at rate [s_i] (one cell of the outer-product domain = one work
    unit, one vector entry = one data unit).

    For the Heterogeneous Blocks layout each worker makes one fetch;
    for Homogeneous Blocks the demand-driven hand-out is simulated with
    per-block fetches (every block pays its [2D] input words, as in the
    volume accounting). *)

type timing = {
  makespan : float;
  comm_makespan : float;  (** slowest single worker's total fetch time *)
  per_worker : float array;  (** finish time of each worker *)
}

val het : Platform.Star.t -> n:float -> timing
(** One zone per worker (PERI-SUM layout scaled to [n × n]). *)

val hom : ?k:int -> Platform.Star.t -> n:float -> timing
(** Demand-driven homogeneous blocks with subdivision [k]
    (default 1). *)

val hom_balanced : ?target_imbalance:float -> Platform.Star.t -> n:float -> timing
(** [Commhom/k]: the subdivision picked by the balance search. *)

val het_shared_backbone :
  Platform.Star.t -> n:float -> backbone:float -> timing
(** Like {!het} but all fetches traverse a shared backbone of the given
    capacity in addition to each worker's private link, with max-min
    fair sharing ({!Des.Fluid}): the contention model the paper's
    parallel-links assumption abstracts away.  With an ample backbone
    this converges to {!het}. *)

val compute_bound : Platform.Star.t -> n:float -> float
(** [n² / Σ s_i]: the communication-free lower bound on the makespan. *)
