(** Recursive weighted bisection: an alternative to the column-based
    PERI-SUM partitioner, included as an ablation baseline.

    The zone set is split into two groups of (nearly) equal total area,
    the current rectangle is cut across its longer side proportionally
    to the group weights, and both halves recurse.  Areas are realized
    exactly (every cut is exact), but the half-perimeter sum carries no
    approximation guarantee — the benchmarks compare it against the DP
    optimum. *)

val layout : areas:float array -> Layout.t
(** Partition the unit square into zones of exactly the prescribed
    areas.  Same input contract as {!Column_partition.peri_sum}:
    positive areas summing to 1. *)

val cost : areas:float array -> float
(** Sum of half-perimeters of {!layout}. *)
