(** A partition of the unit square into per-processor rectangles — the
    Heterogeneous Blocks data distribution of Section 4.1.2. *)

type t = { rects : Rect.t array }
(** [rects.(i)] is the zone of worker [i] (platform order). *)

val size : t -> int
val areas : t -> float array

val sum_half_perimeters : t -> float
(** [Ĉ = Σ (w_i + h_i)]: the PERI-SUM objective, equal (up to the [N]
    scale factor) to the total communication volume. *)

val max_half_perimeter : t -> float
(** The PERI-MAX objective. *)

val communication_volume : t -> n:float -> float
(** Data sent for an [n × n] outer-product domain: [n ·
    sum_half_perimeters]. *)

val validate : ?tol:float -> ?expected_areas:float array -> t -> (unit, string) result
(** Checks that rectangles stay inside the unit square, do not overlap,
    cover it (areas sum to 1), and — when [expected_areas] is given —
    that each worker's area matches its prescription (load balance). *)

val pp : Format.formatter -> t -> unit

val render : ?width:int -> ?height:int -> t -> string
(** ASCII rendering of the partition (each zone drawn with the marker of
    its worker index), used by the layout example (paper Figure 2). *)
