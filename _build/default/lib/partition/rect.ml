type t = { x : float; y : float; width : float; height : float }

let make ~x ~y ~width ~height =
  if width < 0. || height < 0. then invalid_arg "Rect.make: negative dimensions";
  { x; y; width; height }

let area r = r.width *. r.height
let half_perimeter r = r.width +. r.height
let x_max r = r.x +. r.width
let y_max r = r.y +. r.height

let contains r ~x ~y = x >= r.x && x < x_max r && y >= r.y && y < y_max r

let intersection_area a b =
  let dx = Float.min (x_max a) (x_max b) -. Float.max a.x b.x in
  let dy = Float.min (y_max a) (y_max b) -. Float.max a.y b.y in
  if dx > 0. && dy > 0. then dx *. dy else 0.

let overlaps ?(tol = 1e-12) a b = intersection_area a b > tol

let equal ?(tol = 1e-12) a b =
  Float.abs (a.x -. b.x) <= tol
  && Float.abs (a.y -. b.y) <= tol
  && Float.abs (a.width -. b.width) <= tol
  && Float.abs (a.height -. b.height) <= tol

let pp ppf r =
  Format.fprintf ppf "[%.4g,%.4g]x[%.4g,%.4g]" r.x (x_max r) r.y (y_max r)
