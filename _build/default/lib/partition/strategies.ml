module Star = Platform.Star

type ratios = {
  lower_bound : float;
  het : float;
  hom : float;
  hom_over_k : float;
  k : int;
  het_imbalance : float;
  hom_imbalance : float;
  hom_over_k_imbalance : float;
}

let het_layout star =
  Column_partition.peri_sum_layout ~areas:(Star.relative_speeds star)

(* Imbalance of a layout whose zone areas should be ∝ speeds: the
   compute time of worker i is area_i / x_i (normalized), so
   e = max/min - 1 over those times. *)
let layout_imbalance star layout =
  let x = Star.relative_speeds star in
  let times = Array.mapi (fun i a -> a /. x.(i)) (Layout.areas layout) in
  let tmax = Array.fold_left Float.max 0. times in
  let tmin = Array.fold_left Float.min infinity times in
  if tmin > 0. then (tmax -. tmin) /. tmin else infinity

let evaluate ?(n = 1e6) ?(target_imbalance = 0.01) star =
  let lower_bound = Lower_bound.communication star ~n in
  let layout = het_layout star in
  let het = Layout.communication_volume layout ~n /. lower_bound in
  let hom_result = Block_hom.commhom star ~n in
  let homk_result = Block_hom.commhom_over_k ~target_imbalance star ~n in
  {
    lower_bound;
    het;
    hom = hom_result.Block_hom.communication /. lower_bound;
    hom_over_k = homk_result.Block_hom.communication /. lower_bound;
    k = homk_result.Block_hom.k;
    het_imbalance = layout_imbalance star layout;
    hom_imbalance = hom_result.Block_hom.imbalance;
    hom_over_k_imbalance = homk_result.Block_hom.imbalance;
  }
