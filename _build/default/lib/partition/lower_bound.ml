module Kahan = Numerics.Kahan

let peri_sum ~areas = 2. *. Kahan.sum_by sqrt areas

let peri_max ~areas =
  2. *. Array.fold_left (fun acc a -> Float.max acc (sqrt a)) 0. areas

let communication star ~n = n *. peri_sum ~areas:(Platform.Star.relative_speeds star)
