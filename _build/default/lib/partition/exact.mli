(** Brute-force optimum over the *whole* column-based class — every way
    of grouping the zones into columns, contiguous in sorted order or
    not — for small instances.

    Used to validate that the O(p²) dynamic program of
    {!Column_partition} (which only searches contiguous groups of the
    sorted areas) is exact within the class, per the structure theorem
    of Beaumont-Boudet-Rastello-Robert. *)

val peri_sum_cost : areas:float array -> float
(** Minimum [Σ_c (k_c·w_c + 1)] over all set partitions of the areas
    into columns.  Exponential (Bell-number) search: raises
    [Invalid_argument] for more than 10 areas. *)

val peri_max_cost : areas:float array -> float
(** Same for the PERI-MAX objective
    [max_c (w_c + a_max(c)/w_c)]. *)
