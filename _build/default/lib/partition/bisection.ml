let check_areas areas =
  if Array.length areas = 0 then invalid_arg "Bisection: empty areas";
  Array.iter
    (fun a -> if a <= 0. || Float.is_nan a then invalid_arg "Bisection: non-positive area")
    areas;
  let total = Numerics.Kahan.sum areas in
  if Float.abs (total -. 1.) > 1e-6 then
    invalid_arg (Printf.sprintf "Bisection: areas sum to %.9g, expected 1" total)

(* Split the (index, weight) list into two groups of nearly equal total
   weight: weights descending, each into the lighter group. *)
let balance items =
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) items in
  let rec assign left left_weight right right_weight = function
    | [] -> ((left, left_weight), (right, right_weight))
    | ((_, w) as item) :: rest ->
        if left_weight <= right_weight then
          assign (item :: left) (left_weight +. w) right right_weight rest
        else assign left left_weight (item :: right) (right_weight +. w) rest
  in
  assign [] 0. [] 0. sorted

let layout ~areas =
  check_areas areas;
  let rects = Array.make (Array.length areas) (Rect.make ~x:0. ~y:0. ~width:0. ~height:0.) in
  let rec cut x y width height items =
    match items with
    | [] -> ()
    | [ (i, _) ] -> rects.(i) <- Rect.make ~x ~y ~width ~height
    | _ ->
        let (left, lw), (right, rw) = balance items in
        let fraction = lw /. (lw +. rw) in
        if width >= height then begin
          let cut_width = width *. fraction in
          cut x y cut_width height left;
          cut (x +. cut_width) y (width -. cut_width) height right
        end
        else begin
          let cut_height = height *. fraction in
          cut x y width cut_height left;
          cut x (y +. cut_height) width (height -. cut_height) right
        end
  in
  cut 0. 0. 1. 1. (Array.to_list (Array.mapi (fun i a -> (i, a)) areas));
  { Layout.rects }

let cost ~areas = Layout.sum_half_perimeters (layout ~areas)
