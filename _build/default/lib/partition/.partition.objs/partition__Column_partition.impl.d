lib/partition/column_partition.ml: Array Float Int Layout List Numerics Platform Printf Rect
