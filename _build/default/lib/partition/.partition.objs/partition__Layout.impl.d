lib/partition/layout.ml: Array Buffer Float Format List Numerics Rect String
