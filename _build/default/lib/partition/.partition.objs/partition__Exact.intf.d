lib/partition/exact.mli:
