lib/partition/layout.mli: Format Rect
