lib/partition/bisection.ml: Array Float Layout List Numerics Printf Rect
