lib/partition/lower_bound.mli: Platform
