lib/partition/timed.mli: Platform
