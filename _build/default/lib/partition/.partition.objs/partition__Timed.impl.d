lib/partition/timed.ml: Array Block_hom Column_partition Des Float Layout List Platform Rect
