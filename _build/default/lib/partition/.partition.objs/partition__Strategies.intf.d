lib/partition/strategies.mli: Layout Platform
