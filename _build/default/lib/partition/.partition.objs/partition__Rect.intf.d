lib/partition/rect.mli: Format
