lib/partition/block_hom.ml: Array Des Float Logs Numerics Platform
