lib/partition/exact.ml: Array Float List
