lib/partition/strategies.ml: Array Block_hom Column_partition Float Layout Lower_bound Platform
