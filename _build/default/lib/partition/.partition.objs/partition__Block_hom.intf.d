lib/partition/block_hom.mli: Platform
