lib/partition/rect.ml: Float Format
