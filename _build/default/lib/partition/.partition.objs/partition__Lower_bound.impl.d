lib/partition/lower_bound.ml: Array Float Numerics Platform
