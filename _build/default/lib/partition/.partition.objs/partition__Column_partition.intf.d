lib/partition/column_partition.mli: Layout Platform
