lib/partition/bisection.mli: Layout
