(** The Homogeneous Blocks strategy of Section 4.1.1 — the
    MapReduce-style baseline.

    The [n × n] computational domain is cut into identical square blocks
    of side [D = √x₁·n] where [x₁] is the relative speed of the slowest
    worker, so that one block is exactly the slowest worker's fair
    share; the number of blocks is [1/x₁] (paper Section 4.1.1, all
    quantities treated as reals; we round the count to the nearest
    integer).  Blocks are handed out demand-driven: whenever a worker
    finishes a block it requests the next one.  Every block costs [2D]
    of input data regardless of overlap with data already sent, so the
    total communication is [#blocks · 2D].

    [Commhom/k] (Section 4.3) divides the block side by successive
    integers [k] — [k² / x₁] blocks of side [D/k] — until the load
    imbalance [e = (tmax - tmin)/tmin] drops below a threshold (1% in
    the paper). *)

type result = {
  k : int;  (** subdivision factor (1 for plain [Commhom]) *)
  blocks : int;
  block_side : float;  (** in data units *)
  owners : int array;  (** worker of each block, in hand-out order *)
  per_worker : int array;  (** number of blocks per worker *)
  finish_times : float array;  (** per-worker computation finish time *)
  communication : float;  (** [blocks · 2 · block_side] *)
  imbalance : float;  (** [e]; [infinity] when some worker got no block *)
  makespan : float;
}

val block_count : Platform.Star.t -> k:int -> int
(** [max 1 (round (k²/x₁))]. *)

val demand_driven : Platform.Star.t -> n:float -> k:int -> result
(** Simulate the demand-driven hand-out with subdivision [k].
    Requires [n > 0] and [k > 0]. *)

val commhom : Platform.Star.t -> n:float -> result
(** [demand_driven ~k:1]: the paper's block size. *)

val commhom_over_k :
  ?target_imbalance:float -> ?max_k:int -> Platform.Star.t -> n:float -> result
(** Increase [k] until [imbalance <= target_imbalance] (default 0.01,
    the paper's 1%) or [k = max_k] (default 128); returns the first
    result meeting the target, or the last one attempted. *)

val ideal_ratio : Platform.Star.t -> float
(** Closed-form ratio of [Commhom] to the lower bound when all
    quantities are treated as reals: [1 / (√x₁ · Σ √x_i)]
    (= [Σs_i / (√s₁ · Σ √s_i)], the quantity bounded in §4.1.3). *)
