(** Side-by-side evaluation of the three data-distribution strategies of
    Section 4.3 on one platform: the ratios plotted in Figures 4(a-c). *)

type ratios = {
  lower_bound : float;  (** [LBComm] in data units *)
  het : float;  (** [Commhet / LBComm] *)
  hom : float;  (** [Commhom / LBComm] *)
  hom_over_k : float;  (** [Commhom/k / LBComm] *)
  k : int;  (** subdivision reached by [Commhom/k] *)
  het_imbalance : float;
      (** load imbalance of the heterogeneous layout (0 up to rounding:
          areas are exactly proportional to speeds) *)
  hom_imbalance : float;  (** imbalance of plain [Commhom] *)
  hom_over_k_imbalance : float;
}

val evaluate :
  ?n:float -> ?target_imbalance:float -> Platform.Star.t -> ratios
(** [n] defaults to [1e6] (a "large matrix"); the ratios are
    [n]-independent up to block rounding.  [target_imbalance] defaults
    to the paper's 1%. *)

val het_layout : Platform.Star.t -> Layout.t
(** The Heterogeneous Blocks layout (PERI-SUM column partition with
    areas = relative speeds). *)
