(** Communication lower bounds of Section 4.1 / 4.3.

    For any partition of the unit square into zones of prescribed areas
    [a_i], zone [i] has half-perimeter at least [2√a_i] (the square
    shape is optimal), hence [LBComm = 2 Σ √a_i].  Scaled to the
    [N × N] outer-product domain: [2N Σ √x_i]. *)

val peri_sum : areas:float array -> float
(** [2 Σ √a_i]. *)

val peri_max : areas:float array -> float
(** [max_i 2√a_i]: the PERI-MAX counterpart. *)

val communication : Platform.Star.t -> n:float -> float
(** [LBComm = 2N Σ √x_i = 2N Σ √s_i / √(Σ s_i)] — each worker gets an
    ideal square of area equal to its relative speed. *)
