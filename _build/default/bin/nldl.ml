let () = exit (Cli.run ())
