(* Smoke and shape tests of the experiment drivers: the reproduced
   series must have the paper's qualitative shape even at low trial
   counts. *)

module Fig4 = Experiments.Fig4
module Nonlinear_exp = Experiments.Nonlinear_exp
module Sorting_exp = Experiments.Sorting_exp
module Ratio_exp = Experiments.Ratio_exp
module Mapreduce_exp = Experiments.Mapreduce_exp

let checkb = Alcotest.(check bool)

let test_fig4_homogeneous_shape () =
  let points =
    Fig4.sweep ~processor_counts:[ 10; 40; 100 ] ~trials:5 Platform.Profiles.paper_homogeneous
  in
  List.iter
    (fun pt ->
      checkb "hom at LB" true (Float.abs (pt.Fig4.hom.Numerics.Stats.mean -. 1.) < 1e-9);
      checkb "hom/k at LB" true
        (Float.abs (pt.Fig4.hom_over_k.Numerics.Stats.mean -. 1.) < 1e-9);
      checkb "het within 2%" true (pt.Fig4.het.Numerics.Stats.mean <= 1.02);
      checkb "k stays 1" true (pt.Fig4.mean_k = 1.))
    points

let test_fig4_heterogeneous_shape () =
  (* The paper's headline: under heterogeneity Commhom/k blows up
     (15-30x at p = 100) while Commhet stays within 2% of the bound. *)
  List.iter
    (fun profile ->
      let points = Fig4.sweep ~processor_counts:[ 10; 100 ] ~trials:10 profile in
      match points with
      | [ small; large ] ->
          checkb "het within 5% everywhere" true
            (small.Fig4.het.Numerics.Stats.mean <= 1.05
            && large.Fig4.het.Numerics.Stats.mean <= 1.05);
          checkb "hom/k blows up at p=100" true
            (large.Fig4.hom_over_k.Numerics.Stats.mean > 10.);
          checkb "hom above het" true
            (large.Fig4.hom.Numerics.Stats.mean > 2. *. large.Fig4.het.Numerics.Stats.mean);
          checkb "hom grows with p" true
            (large.Fig4.hom.Numerics.Stats.mean > small.Fig4.hom.Numerics.Stats.mean)
      | _ -> Alcotest.fail "expected two points")
    [ Platform.Profiles.paper_uniform; Platform.Profiles.paper_lognormal ]

let test_fig4_deterministic () =
  let run () =
    Fig4.sweep ~processor_counts:[ 20 ] ~trials:3 ~seed:9 Platform.Profiles.paper_uniform
  in
  match (run (), run ()) with
  | [ a ], [ b ] ->
      Alcotest.(check (float 0.)) "same seed, same mean" a.Fig4.hom.Numerics.Stats.mean
        b.Fig4.hom.Numerics.Stats.mean
  | _ -> Alcotest.fail "expected single points"

let test_e1_exactness () =
  let rows = Nonlinear_exp.run ~alphas:[ 2. ] ~processor_counts:[ 4; 64 ] () in
  List.iter
    (fun r ->
      checkb "homogeneous measured == closed form" true
        (Float.abs (r.Nonlinear_exp.measured_homogeneous -. r.Nonlinear_exp.predicted)
        < 1e-6);
      checkb "heterogeneous same order" true
        (r.Nonlinear_exp.measured_heterogeneous < 3. *. r.Nonlinear_exp.predicted))
    rows

let test_e1_vanishing_with_p () =
  let rows = Nonlinear_exp.run ~alphas:[ 2. ] ~processor_counts:[ 4; 256 ] () in
  match rows with
  | [ small; large ] ->
      checkb "fraction vanishes" true
        (large.Nonlinear_exp.measured_homogeneous
        < small.Nonlinear_exp.measured_homogeneous /. 10.)
  | _ -> Alcotest.fail "expected two rows"

let test_e2_gap_matches () =
  let rows = Sorting_exp.run ~sizes:[ 50_000 ] ~processor_counts:[ 8 ] () in
  List.iter
    (fun (r : Sorting_exp.row) ->
      checkb "measured gap near log p/log N" true
        (Float.abs (r.Sorting_exp.measured_gap -. r.Sorting_exp.predicted_gap) < 0.02);
      checkb "bucket concentration" true
        (r.Sorting_exp.max_bucket_ratio < r.Sorting_exp.envelope +. 0.3))
    rows

let test_e2_hetero_improves () =
  let rows = Sorting_exp.run_hetero ~sizes:[ 50_000 ] ~processor_counts:[ 8 ] ~trials:2 () in
  List.iter
    (fun (r : Sorting_exp.hetero_row) ->
      checkb "speed-aware beats equal buckets" true
        (r.Sorting_exp.imbalance < r.Sorting_exp.naive_imbalance))
    rows

let test_e3_bimodal_bound () =
  let rows = Ratio_exp.run_bimodal ~p:20 ~factors:[ 4.; 25.; 100. ] () in
  List.iter
    (fun (r : Ratio_exp.bimodal_row) ->
      (* The paper's closed form bounds Commhom/LB (it takes
         Commhet ≈ LB); allow 3% for block-count rounding. *)
      checkb "hom/LB >= sqrt(k) - 1" true
        (r.Ratio_exp.hom_over_lb >= r.Ratio_exp.sqrt_bound -. 1e-9);
      checkb "hom/LB reaches (1+k)/(1+sqrt k)" true
        (r.Ratio_exp.hom_over_lb >= 0.97 *. r.Ratio_exp.bound);
      checkb "measured rho tracks the bound" true
        (r.Ratio_exp.measured_rho > 0.8 *. r.Ratio_exp.bound))
    rows

let test_e3_general_bound () =
  let rows = Ratio_exp.run_general ~processor_counts:[ 40 ] ~trials:5 () in
  List.iter
    (fun r ->
      checkb "measured above (4/7) bound" true
        (r.Ratio_exp.measured_rho >= r.Ratio_exp.general_bound *. 0.95))
    rows

let test_ablation_affinity_helps () =
  let rows = Mapreduce_exp.run ~n:128 ~chunk:16 ~processor_counts:[ 4 ] ~trials:1 () in
  List.iter
    (fun r ->
      checkb "affinity never worse" true (r.Mapreduce_exp.affinity_comm <= r.Mapreduce_exp.fifo_comm +. 1e-9);
      checkb "zones cheapest" true (r.Mapreduce_exp.zone_comm <= r.Mapreduce_exp.affinity_comm +. 1e-9))
    rows

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "fig4 homogeneous shape" `Quick test_fig4_homogeneous_shape;
        Alcotest.test_case "fig4 heterogeneous shape" `Slow test_fig4_heterogeneous_shape;
        Alcotest.test_case "fig4 deterministic" `Quick test_fig4_deterministic;
        Alcotest.test_case "E1 exactness" `Quick test_e1_exactness;
        Alcotest.test_case "E1 vanishing" `Quick test_e1_vanishing_with_p;
        Alcotest.test_case "E2 gap" `Quick test_e2_gap_matches;
        Alcotest.test_case "E2 hetero splitters" `Quick test_e2_hetero_improves;
        Alcotest.test_case "E3 bimodal" `Quick test_e3_bimodal_bound;
        Alcotest.test_case "E3 general" `Quick test_e3_general_bound;
        Alcotest.test_case "ablation affinity" `Quick test_ablation_affinity_helps;
      ] );
  ]
