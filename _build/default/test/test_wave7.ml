(* The two-job sort pipeline and online statistics. *)

module Pipeline = Mapreduce.Pipeline
module Star = Platform.Star
module Rng = Numerics.Rng
module Online = Numerics.Stats.Online

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_sort_pipeline () =
  let rng = Rng.create ~seed:181 () in
  let keys = Array.init 8_000 (fun _ -> Rng.float rng) in
  let star = Star.of_speeds [ 1.; 2.; 4. ] in
  let sorted, stats =
    Pipeline.run star ~init:keys ~steps:(Pipeline.sort ~keys ~chunk:500 ~p:8)
  in
  let reference = Array.copy keys in
  Array.sort Float.compare reference;
  Alcotest.(check (array (float 0.))) "sorted" reference sorted;
  Alcotest.(check (list string)) "two jobs"
    [ "sample + select splitters"; "bucket + sort" ]
    (List.map (fun (n, _, _) -> n) stats.Pipeline.steps)

let test_sort_pipeline_duplicates () =
  let rng = Rng.create ~seed:182 () in
  let keys = Array.init 2_000 (fun _ -> float_of_int (Rng.int rng 7)) in
  let star = Star.of_speeds [ 1.; 1. ] in
  let sorted, _ = Pipeline.run star ~init:keys ~steps:(Pipeline.sort ~keys ~chunk:200 ~p:4) in
  let reference = Array.copy keys in
  Array.sort Float.compare reference;
  Alcotest.(check (array (float 0.))) "duplicates" reference sorted

let test_sort_pipeline_validation () =
  checkb "bad chunk rejected" true
    (try
       ignore (Pipeline.sort ~keys:(Array.make 10 0.) ~chunk:3 ~p:2);
       false
     with Invalid_argument _ -> true)

let test_online_matches_batch () =
  let rng = Rng.create ~seed:183 () in
  let samples = Array.init 5_000 (fun _ -> Rng.uniform rng (-3.) 7.) in
  let online = Online.create () in
  Array.iter (Online.add online) samples;
  checkf "mean" ~eps:1e-9 (Numerics.Stats.mean samples) (Online.mean online);
  checkf "variance" ~eps:1e-6 (Numerics.Stats.variance samples) (Online.variance online);
  Alcotest.(check int) "count" 5_000 (Online.count online)

let test_online_merge () =
  let rng = Rng.create ~seed:184 () in
  let samples = Array.init 4_001 (fun _ -> Rng.uniform rng 0. 1.) in
  let whole = Online.create () in
  Array.iter (Online.add whole) samples;
  let left = Online.create () and right = Online.create () in
  Array.iteri (fun i x -> Online.add (if i < 1_234 then left else right) x) samples;
  let merged = Online.merge left right in
  checkf "merged mean" ~eps:1e-9 (Online.mean whole) (Online.mean merged);
  checkf "merged variance" ~eps:1e-9 (Online.variance whole) (Online.variance merged);
  Alcotest.(check int) "merged count" 4_001 (Online.count merged)

let test_online_empty_and_tiny () =
  let t = Online.create () in
  checkf "empty mean" 0. (Online.mean t);
  checkf "empty variance" 0. (Online.variance t);
  Online.add t 5.;
  checkf "single variance" 0. (Online.variance t);
  let merged = Online.merge (Online.create ()) t in
  checkf "merge with empty" 5. (Online.mean merged)

let qcheck_online =
  QCheck.Test.make ~name:"online moments equal batch moments" ~count:100
    QCheck.(array_of_size Gen.(int_range 2 200) (float_range (-50.) 50.))
    (fun samples ->
      QCheck.assume (Array.length samples >= 2);
      let online = Online.create () in
      Array.iter (Online.add online) samples;
      Float.abs (Online.mean online -. Numerics.Stats.mean samples) < 1e-7
      && Float.abs (Online.variance online -. Numerics.Stats.variance samples) < 1e-5)

let suites =
  [
    ( "sort pipeline",
      [
        Alcotest.test_case "sorts" `Quick test_sort_pipeline;
        Alcotest.test_case "duplicates" `Quick test_sort_pipeline_duplicates;
        Alcotest.test_case "validation" `Quick test_sort_pipeline_validation;
      ] );
    ( "online statistics",
      [
        Alcotest.test_case "matches batch" `Quick test_online_matches_batch;
        Alcotest.test_case "merge" `Quick test_online_merge;
        Alcotest.test_case "empty and tiny" `Quick test_online_empty_and_tiny;
        QCheck_alcotest.to_alcotest qcheck_online;
      ] );
  ]
