(* Cholesky and the Monte-Carlo workload. *)

module Cholesky = Linalg.Cholesky
module Matrix = Linalg.Matrix
module Montecarlo = Workloads.Montecarlo
module Rng = Numerics.Rng
module Star = Platform.Star

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* A·Aᵀ + n·I is symmetric positive definite. *)
let spd rng n =
  let a = Matrix.random rng ~rows:n ~cols:n in
  Matrix.add (Matrix.mul a (Matrix.transpose a)) (Matrix.scale (float_of_int n) (Matrix.identity n))

let test_cholesky_reconstruct () =
  let rng = Rng.create ~seed:171 () in
  let a = spd rng 20 in
  let l = Cholesky.factorize ~block:4 a in
  checkb "L Lt = A" true (Matrix.approx_equal ~tol:1e-8 (Cholesky.reconstruct l) a)

let test_cholesky_lower_triangular () =
  let rng = Rng.create ~seed:172 () in
  let a = spd rng 9 in
  let l = Cholesky.factorize a in
  for i = 0 to 8 do
    for j = i + 1 to 8 do
      checkf "upper is zero" 0. (Matrix.get l i j)
    done
  done

let test_cholesky_blocks_agree () =
  let rng = Rng.create ~seed:173 () in
  let a = spd rng 13 in
  let reference = Cholesky.factorize ~block:1 a in
  List.iter
    (fun block ->
      checkb
        (Printf.sprintf "block %d" block)
        true
        (Matrix.approx_equal ~tol:1e-8 (Cholesky.factorize ~block a) reference))
    [ 3; 13; 50 ]

let test_cholesky_solve () =
  let rng = Rng.create ~seed:174 () in
  let n = 12 in
  let a = spd rng n in
  let x_true = Array.init n (fun i -> float_of_int i -. 3.) in
  let rhs =
    Array.init n (fun i ->
        let acc = ref 0. in
        for j = 0 to n - 1 do
          acc := !acc +. (Matrix.get a i j *. x_true.(j))
        done;
        !acc)
  in
  let x = Cholesky.solve (Cholesky.factorize a) rhs in
  Array.iteri (fun i v -> checkf "solution" ~eps:1e-7 x_true.(i) v) x

let test_cholesky_log_det () =
  (* det(c·I) = c^n. *)
  let n = 5 and c = 4. in
  let l = Cholesky.factorize (Matrix.scale c (Matrix.identity n)) in
  checkf "log det" ~eps:1e-9 (float_of_int n *. log c) (Cholesky.log_determinant l)

let test_cholesky_rejects_indefinite () =
  let bad = Matrix.scale (-1.) (Matrix.identity 3) in
  checkb "indefinite rejected" true
    (try
       ignore (Cholesky.factorize bad);
       false
     with Failure _ -> true)

let test_cholesky_agrees_with_lu () =
  let rng = Rng.create ~seed:175 () in
  let a = spd rng 10 in
  let chol = Cholesky.log_determinant (Cholesky.factorize a) in
  let lu = Linalg.Lu.determinant (Linalg.Lu.factorize a) in
  checkf "log det agrees with LU" ~eps:1e-6 chol (log lu)

let qcheck_cholesky =
  QCheck.Test.make ~name:"cholesky reconstructs random SPD matrices" ~count:30
    QCheck.(int_range 1 20)
    (fun n ->
      let rng = Rng.create ~seed:n () in
      let a = spd rng n in
      Matrix.approx_equal ~tol:1e-7 (Cholesky.reconstruct (Cholesky.factorize ~block:4 a)) a)

(* --- Monte Carlo --- *)

let test_pi_estimate () =
  let rng = Rng.create ~seed:176 () in
  let e = Montecarlo.pi rng ~samples:200_000 in
  checkb "close to pi" true (Float.abs (e.Montecarlo.value -. Float.pi) < 0.02);
  checkb "within 4 sigma" true
    (Float.abs (e.Montecarlo.value -. Float.pi) < 4. *. e.Montecarlo.std_error)

let test_std_error_shrinks () =
  let e n = (Montecarlo.pi (Rng.create ~seed:177 ()) ~samples:n).Montecarlo.std_error in
  checkb "error ~ 1/sqrt(n)" true (e 100_000 < e 1_000 /. 5.)

let test_distributed_pools_exactly () =
  let rng = Rng.create ~seed:178 () in
  let star = Star.of_speeds [ 1.; 2.; 5. ] in
  let f x y = if (x *. x) +. (y *. y) < 1. then 4. else 0. in
  let d = Montecarlo.distributed_estimate rng star ~f ~samples:100_000 in
  Alcotest.(check int) "sample counts pool" 100_000
    (Array.fold_left ( + ) 0 d.Montecarlo.per_worker);
  checkb "estimate sane" true (Float.abs (d.Montecarlo.combined.Montecarlo.value -. Float.pi) < 0.05);
  checkb "near-perfect efficiency" true (d.Montecarlo.efficiency > 0.95)

let test_distributed_shares_follow_speeds () =
  let rng = Rng.create ~seed:179 () in
  let star = Star.of_speeds [ 1.; 4. ] in
  let d = Montecarlo.distributed_estimate rng star ~f:(fun x _ -> x) ~samples:10_000 in
  Alcotest.(check int) "fast worker 4x samples" 8_000 d.Montecarlo.per_worker.(1)

let test_constant_function () =
  let rng = Rng.create ~seed:180 () in
  let e = Montecarlo.estimate rng ~f:(fun _ _ -> 7.) ~samples:100 in
  checkf "exact for constants" 7. e.Montecarlo.value;
  checkf "zero error" 0. e.Montecarlo.std_error

let suites =
  [
    ( "cholesky",
      [
        Alcotest.test_case "reconstruct" `Quick test_cholesky_reconstruct;
        Alcotest.test_case "lower triangular" `Quick test_cholesky_lower_triangular;
        Alcotest.test_case "blocks agree" `Quick test_cholesky_blocks_agree;
        Alcotest.test_case "solve" `Quick test_cholesky_solve;
        Alcotest.test_case "log det" `Quick test_cholesky_log_det;
        Alcotest.test_case "indefinite rejected" `Quick test_cholesky_rejects_indefinite;
        Alcotest.test_case "agrees with LU" `Quick test_cholesky_agrees_with_lu;
        QCheck_alcotest.to_alcotest qcheck_cholesky;
      ] );
    ( "monte carlo workload",
      [
        Alcotest.test_case "pi" `Quick test_pi_estimate;
        Alcotest.test_case "error shrinks" `Quick test_std_error_shrinks;
        Alcotest.test_case "distributed pools" `Quick test_distributed_pools_exactly;
        Alcotest.test_case "shares follow speeds" `Quick test_distributed_shares_follow_speeds;
        Alcotest.test_case "constant function" `Quick test_constant_function;
      ] );
  ]
