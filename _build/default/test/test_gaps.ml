(* Gap-filling tests: smaller API surfaces not covered elsewhere. *)

module Profiles = Platform.Profiles
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)

let test_pareto_profile () =
  let rng = Rng.create ~seed:191 () in
  let star =
    Profiles.generate rng ~p:50 (Profiles.Pareto { scale = 2.; shape = 1.5 })
  in
  Array.iter (fun s -> checkb "pareto speeds >= scale" true (s >= 2.)) (Star.speeds star);
  Alcotest.(check string) "name" "pareto"
    (Profiles.name (Profiles.Pareto { scale = 1.; shape = 1. }))

let test_profile_pp () =
  let render profile = Format.asprintf "%a" Profiles.pp profile in
  List.iter
    (fun profile -> checkb "pp non-empty" true (String.length (render profile) > 0))
    [
      Profiles.paper_homogeneous;
      Profiles.paper_uniform;
      Profiles.paper_lognormal;
      Profiles.Bimodal { slow = 1.; factor = 2. };
      Profiles.Pareto { scale = 1.; shape = 2. };
    ]

let test_schedule_pp () =
  let star = Star.of_speeds [ 1.; 2. ] in
  let schedule = Dlt.Linear.schedule Dlt.Schedule.One_port star ~total:10. in
  let rendered = Format.asprintf "%a" Dlt.Schedule.pp schedule in
  checkb "mentions makespan" true (String.length rendered > 20)

let test_layout_pp_and_cost_model_pp () =
  let layout = Partition.Column_partition.peri_sum_layout ~areas:[| 0.5; 0.5 |] in
  checkb "layout pp" true
    (String.length (Format.asprintf "%a" Partition.Layout.pp layout) > 0);
  Alcotest.(check string) "cost model names" "nlogn"
    (Dlt.Cost_model.name Dlt.Cost_model.N_log_n)

let test_fraction_validation () =
  List.iter
    (fun thunk -> checkb "invalid args rejected" true
        (try thunk (); false with Invalid_argument _ -> true))
    [
      (fun () -> ignore (Dlt.Fraction.power_partial_fraction ~alpha:0.5 ~p:4));
      (fun () -> ignore (Dlt.Fraction.power_partial_fraction ~alpha:2. ~p:0));
      (fun () -> ignore (Dlt.Fraction.sorting_gap ~n:1. ~p:4));
      (fun () -> ignore (Dlt.Fraction.done_fraction Dlt.Cost_model.Linear ~allocation:[||] ~total:0.));
    ]

let test_engine_step () =
  let engine = Des.Engine.create () in
  let hits = ref 0 in
  Des.Engine.schedule engine ~time:1. (fun _ -> incr hits);
  Des.Engine.schedule engine ~time:2. (fun _ -> incr hits);
  checkb "first step" true (Des.Engine.step engine);
  Alcotest.(check int) "one handler ran" 1 !hits;
  checkb "second step" true (Des.Engine.step engine);
  checkb "drained" false (Des.Engine.step engine)

let test_processor_equal () =
  let p = Platform.Processor.make ~id:1 ~speed:2. () in
  checkb "equal to itself" true (Platform.Processor.equal p p);
  checkb "id matters" false
    (Platform.Processor.equal p (Platform.Processor.make ~id:2 ~speed:2. ()))

let test_metrics_on_generated () =
  let rng = Rng.create ~seed:192 () in
  let star = Profiles.generate rng ~p:30 Profiles.paper_lognormal in
  checkb "speed ratio > 1" true (Platform.Metrics.speed_ratio star > 1.);
  checkb "cv > 0" true (Platform.Metrics.coefficient_of_variation star > 0.);
  checkb "sum sqrt relative <= sqrt p" true
    (Platform.Metrics.sum_sqrt_relative star <= sqrt 30. +. 1e-9)

let test_ascii_chart_flat_series () =
  (* Constant series exercise the degenerate-span path. *)
  let series =
    { Numerics.Ascii_chart.label = "flat"; points = [| (0., 5.); (1., 5.) |] }
  in
  checkb "renders" true (String.length (Numerics.Ascii_chart.render [ series ]) > 0)

let test_report_helpers () =
  checkb "mean_sd formats" true
    (String.length
       (Experiments.Report.mean_sd
          (Numerics.Stats.summarize [| 1.; 2.; 3. |]))
    > 0);
  Alcotest.(check string) "int cell" "42" (Experiments.Report.int_cell 42)

let suites =
  [
    ( "coverage gaps",
      [
        Alcotest.test_case "pareto profile" `Quick test_pareto_profile;
        Alcotest.test_case "profile pp" `Quick test_profile_pp;
        Alcotest.test_case "schedule pp" `Quick test_schedule_pp;
        Alcotest.test_case "layout/cost pp" `Quick test_layout_pp_and_cost_model_pp;
        Alcotest.test_case "fraction validation" `Quick test_fraction_validation;
        Alcotest.test_case "engine step" `Quick test_engine_step;
        Alcotest.test_case "processor equal" `Quick test_processor_equal;
        Alcotest.test_case "metrics" `Quick test_metrics_on_generated;
        Alcotest.test_case "flat chart" `Quick test_ascii_chart_flat_series;
        Alcotest.test_case "report helpers" `Quick test_report_helpers;
      ] );
  ]
