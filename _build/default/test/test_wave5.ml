(* Cannon's algorithm, Strassen, the MapReduce distributed sort, and the
   event-driven schedule replay. *)

module Cannon = Linalg.Cannon
module Strassen = Linalg.Strassen
module Summa = Linalg.Summa
module Matrix = Linalg.Matrix
module Jobs = Mapreduce.Jobs
module Engine = Mapreduce.Engine
module Simulate = Dlt.Simulate
module Schedule = Dlt.Schedule
module Linear = Dlt.Linear
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let random_square rng n = Matrix.random rng ~rows:n ~cols:n

(* --- Cannon --- *)

let test_cannon_correct () =
  let rng = Rng.create ~seed:81 () in
  let a = random_square rng 24 and b = random_square rng 24 in
  let stats = Cannon.distributed ~grid:4 a b in
  checkb "product correct" true (Matrix.approx_equal stats.Cannon.result (Matrix.mul a b))

let test_cannon_trivial_grid () =
  let rng = Rng.create ~seed:82 () in
  let a = random_square rng 8 and b = random_square rng 8 in
  let stats = Cannon.distributed ~grid:1 a b in
  checkb "1x1 grid" true (Matrix.approx_equal stats.Cannon.result (Matrix.mul a b));
  Alcotest.(check int) "no communication" 0 stats.Cannon.words

let test_cannon_word_count () =
  let rng = Rng.create ~seed:83 () in
  let n = 12 and grid = 3 in
  let a = random_square rng n and b = random_square rng n in
  let stats = Cannon.distributed ~grid a b in
  Alcotest.(check int) "measured = closed form" (Cannon.word_volume ~grid ~n)
    stats.Cannon.words;
  Alcotest.(check int) "rounds" grid stats.Cannon.rounds

let test_cannon_vs_summa_volume () =
  (* Same asymptotic volume class: within a factor ~2 of SUMMA. *)
  let n = 32 and q = 4 in
  let cannon = Cannon.word_volume ~grid:q ~n in
  let summa = Summa.word_volume ~grid_rows:q ~grid_cols:q ~n in
  checkb "same order of magnitude" true
    (float_of_int cannon < 2. *. float_of_int summa
    && float_of_int cannon > 0.5 *. float_of_int summa)

let test_cannon_validation () =
  let rng = Rng.create ~seed:84 () in
  let a = random_square rng 10 and b = random_square rng 10 in
  checkb "grid must divide n" true
    (try
       ignore (Cannon.distributed ~grid:3 a b);
       false
     with Invalid_argument _ -> true)

let qcheck_cannon =
  QCheck.Test.make ~name:"cannon correct on random sizes and grids" ~count:20
    QCheck.(pair (int_range 1 4) small_int)
    (fun (grid, seed) ->
      let n = grid * (1 + (seed mod 5)) in
      let rng = Rng.create ~seed () in
      let a = random_square rng n and b = random_square rng n in
      let stats = Cannon.distributed ~grid a b in
      Matrix.approx_equal stats.Cannon.result (Matrix.mul a b))

(* --- Strassen --- *)

let test_strassen_power_of_two () =
  let rng = Rng.create ~seed:85 () in
  let a = random_square rng 64 and b = random_square rng 64 in
  checkb "64x64" true
    (Matrix.approx_equal ~tol:1e-7 (Strassen.multiply ~cutoff:16 a b) (Matrix.mul a b))

let test_strassen_odd_size () =
  let rng = Rng.create ~seed:86 () in
  let a = random_square rng 37 and b = random_square rng 37 in
  checkb "37x37 (padding)" true
    (Matrix.approx_equal ~tol:1e-7 (Strassen.multiply ~cutoff:8 a b) (Matrix.mul a b))

let test_strassen_below_cutoff () =
  let rng = Rng.create ~seed:87 () in
  let a = random_square rng 8 and b = random_square rng 8 in
  checkb "falls back" true (Matrix.approx_equal (Strassen.multiply a b) (Matrix.mul a b))

let test_strassen_op_count () =
  (* One halving: 7·(n/2)³ < n³ once n > 2·cutoff-ish. *)
  checkf "cutoff regime" 512. (Strassen.operation_count ~n:8 ~cutoff:8);
  checkf "one level" (7. *. 512.) (Strassen.operation_count ~n:16 ~cutoff:8);
  checkb "asymptotically cheaper" true
    (Strassen.operation_count ~n:1024 ~cutoff:32 < 1024. ** 3.)

let qcheck_strassen =
  QCheck.Test.make ~name:"strassen equals naive" ~count:15
    QCheck.(pair (int_range 1 48) small_int)
    (fun (n, seed) ->
      let rng = Rng.create ~seed () in
      let a = random_square rng n and b = random_square rng n in
      Matrix.approx_equal ~tol:1e-7 (Strassen.multiply ~cutoff:8 a b) (Matrix.mul a b))

(* --- MapReduce distributed sort --- *)

let sort_via_mapreduce star keys chunk p =
  let rng = Rng.create ~seed:88 () in
  let s = Sortlib.Sample_sort.default_oversampling ~n:(Array.length keys) in
  let splitters = Sortlib.Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p ~s in
  let job = Jobs.distributed_sort ~keys ~chunk ~splitters in
  let reduce _ runs =
    let merged = Array.concat runs in
    Array.sort Float.compare merged;
    merged
  in
  let result = Engine.run star job ~reduce in
  (Jobs.assemble_sorted result.Engine.output, result)

let test_mr_sort_correct () =
  let rng = Rng.create ~seed:89 () in
  let keys = Array.init 10_000 (fun _ -> Rng.float rng) in
  let star = Star.of_speeds [ 1.; 2.; 4. ] in
  let sorted, _ = sort_via_mapreduce star keys 500 8 in
  let reference = Array.copy keys in
  Array.sort Float.compare reference;
  Alcotest.(check (array (float 0.))) "sorted" reference sorted

let test_mr_sort_pairs_linear () =
  (* A linear-complexity job: exactly one intermediate pair per key —
     no data inflation, unlike the replicated matmul. *)
  let rng = Rng.create ~seed:90 () in
  let keys = Array.init 2_000 (fun _ -> Rng.float rng) in
  let star = Star.of_speeds [ 1.; 1. ] in
  let _, result = sort_via_mapreduce star keys 100 4 in
  Alcotest.(check int) "one pair per key" 2_000
    result.Engine.shuffle.Mapreduce.Shuffle.pairs

let test_mr_sort_chunk_validation () =
  checkb "chunk must divide" true
    (try
       ignore (Jobs.distributed_sort ~keys:(Array.make 10 0.) ~chunk:3 ~splitters:[||]);
       false
     with Invalid_argument _ -> true)

(* --- schedule replay --- *)

let star3 = Star.of_speeds ~bandwidth:2. [ 1.; 2.; 4. ]

let test_replay_matches_makespan () =
  List.iter
    (fun model ->
      let schedule = Linear.schedule model star3 ~total:60. in
      checkf "DES replay = analytic makespan" ~eps:1e-9
        (Schedule.makespan schedule)
        (Simulate.makespan schedule))
    [ Schedule.Parallel; Schedule.One_port ]

let test_replay_trace_resources () =
  let schedule = Linear.schedule Schedule.One_port star3 ~total:60. in
  let trace = Simulate.replay schedule in
  Alcotest.(check int) "6 resources (link+cpu per worker)" 6
    (List.length (Des.Trace.resources trace))

let test_replay_gantt () =
  let schedule = Linear.schedule Schedule.One_port star3 ~total:60. in
  let gantt = Simulate.gantt schedule in
  checkb "gantt non-empty" true (String.length gantt > 0)

let test_replay_nonlinear () =
  let cost = Dlt.Cost_model.Power 2. in
  let schedule = Dlt.Nonlinear.schedule Schedule.One_port star3 cost ~total:30. in
  checkf "nonlinear replay" ~eps:1e-9 (Schedule.makespan schedule)
    (Simulate.makespan schedule)

let suites =
  [
    ( "cannon",
      [
        Alcotest.test_case "correct" `Quick test_cannon_correct;
        Alcotest.test_case "1x1 grid" `Quick test_cannon_trivial_grid;
        Alcotest.test_case "word count" `Quick test_cannon_word_count;
        Alcotest.test_case "vs summa volume" `Quick test_cannon_vs_summa_volume;
        Alcotest.test_case "validation" `Quick test_cannon_validation;
        QCheck_alcotest.to_alcotest qcheck_cannon;
      ] );
    ( "strassen",
      [
        Alcotest.test_case "power of two" `Quick test_strassen_power_of_two;
        Alcotest.test_case "odd size" `Quick test_strassen_odd_size;
        Alcotest.test_case "below cutoff" `Quick test_strassen_below_cutoff;
        Alcotest.test_case "operation count" `Quick test_strassen_op_count;
        QCheck_alcotest.to_alcotest qcheck_strassen;
      ] );
    ( "mapreduce sort",
      [
        Alcotest.test_case "correct" `Quick test_mr_sort_correct;
        Alcotest.test_case "one pair per key" `Quick test_mr_sort_pairs_linear;
        Alcotest.test_case "chunk validation" `Quick test_mr_sort_chunk_validation;
      ] );
    ( "schedule replay",
      [
        Alcotest.test_case "matches makespan" `Quick test_replay_matches_makespan;
        Alcotest.test_case "trace resources" `Quick test_replay_trace_resources;
        Alcotest.test_case "gantt" `Quick test_replay_gantt;
        Alcotest.test_case "nonlinear schedule" `Quick test_replay_nonlinear;
      ] );
  ]
