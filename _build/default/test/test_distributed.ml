(* Distributed outer product and matrix multiplication (paper §4.1-4.2):
   correctness of the computed results and exactness of the
   communication accounting. *)

module Matrix = Linalg.Matrix
module Zone = Linalg.Zone
module Outer_product = Linalg.Outer_product
module Matmul = Linalg.Matmul
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)

let star = Star.of_speeds [ 1.; 2.; 3.; 6. ]

let vectors rng n =
  ( Array.init n (fun _ -> Rng.uniform rng (-1.) 1.),
    Array.init n (fun _ -> Rng.uniform rng (-1.) 1.) )

let test_outer_distributed_correct () =
  let rng = Rng.create ~seed:41 () in
  let a, b = vectors rng 48 in
  let zones = Zone.for_platform star ~n:48 in
  let stats = Outer_product.distributed ~zones a b in
  checkb "matches sequential" true
    (Matrix.approx_equal stats.Outer_product.result (Outer_product.sequential a b))

let test_outer_comm_is_half_perimeters () =
  let rng = Rng.create ~seed:42 () in
  let a, b = vectors rng 32 in
  let zones = Zone.for_platform star ~n:32 in
  let stats = Outer_product.distributed ~zones a b in
  Alcotest.(check int) "total = Σ half-perims" (Zone.half_perimeter_sum zones)
    stats.Outer_product.total;
  Array.iteri
    (fun i z ->
      Alcotest.(check int) "per worker" (Zone.half_perimeter z)
        stats.Outer_product.per_worker.(i))
    zones

let test_outer_rejects_bad_tiling () =
  let rng = Rng.create ~seed:43 () in
  let a, b = vectors rng 8 in
  let zones = [| { Zone.row0 = 0; rows = 4; col0 = 0; cols = 8 } |] in
  checkb "bad tiling rejected" true
    (try
       ignore (Outer_product.distributed ~zones a b);
       false
     with Invalid_argument _ -> true)

(* On 4 equal workers the paper's block side for an n-domain is n/2, so
   demand_driven with k = 1 yields exactly the 2x2 block grid the tests
   below execute. *)
let block_schedule star ~n = Partition.Block_hom.demand_driven star ~n:(float_of_int n) ~k:1

let test_blocks_execution_correct () =
  let rng = Rng.create ~seed:44 () in
  let n = 32 in
  let a, b = vectors rng n in
  let star4 = Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  let schedule = block_schedule star4 ~n in
  (* 4 equal workers: x1 = 1/4, 4 blocks, block side n/2 = 16. *)
  let stats = Outer_product.demand_driven_blocks schedule ~n_side:16 a b in
  checkb "block execution matches sequential" true
    (Matrix.approx_equal stats.Outer_product.result (Outer_product.sequential a b))

let test_blocks_comm_accounting () =
  let n = 32 in
  let rng = Rng.create ~seed:45 () in
  let a, b = vectors rng n in
  let star4 = Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  let schedule = block_schedule star4 ~n in
  let stats = Outer_product.demand_driven_blocks schedule ~n_side:16 a b in
  (* 4 blocks × 2×16 entries each. *)
  Alcotest.(check int) "redundant accounting" 128 stats.Outer_product.total;
  let dedup = Outer_product.demand_driven_blocks ~dedup:true schedule ~n_side:16 a b in
  checkb "dedup never more" true (dedup.Outer_product.total <= stats.Outer_product.total)

let test_dedup_reuses_cache () =
  (* One worker owning every block needs each slice only once under
     dedup: exactly 2n words. *)
  let n = 32 in
  let rng = Rng.create ~seed:46 () in
  let a, b = vectors rng n in
  let star1 = Star.of_speeds [ 1. ] in
  let schedule = Partition.Block_hom.demand_driven star1 ~n:(float_of_int n) ~k:2 in
  (* k=2 on a 1-worker platform: 4 blocks of side 16, all owned by P0. *)
  let redundant = Outer_product.demand_driven_blocks schedule ~n_side:16 a b in
  let dedup = Outer_product.demand_driven_blocks ~dedup:true schedule ~n_side:16 a b in
  Alcotest.(check int) "redundant = 4·32" 128 redundant.Outer_product.total;
  Alcotest.(check int) "dedup = 2n" 64 dedup.Outer_product.total

let test_executed_comm_equals_counted () =
  (* The counting model (Block_hom.communication) and actual execution
     (demand_driven_blocks without dedup) must agree whenever the block
     grid divides the vectors. *)
  let n = 64 in
  let rng = Rng.create ~seed:46 () in
  let a, b = vectors rng n in
  let star = Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  let schedule = Partition.Block_hom.demand_driven star ~n:(float_of_int n) ~k:2 in
  (* 16 blocks of side 16. *)
  let stats = Outer_product.demand_driven_blocks schedule ~n_side:16 a b in
  Alcotest.(check (float 1e-9)) "executed = counted"
    schedule.Partition.Block_hom.communication
    (float_of_int stats.Outer_product.total)

let test_matmul_distributed_correct () =
  let rng = Rng.create ~seed:47 () in
  let n = 24 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let zones = Zone.for_platform star ~n in
  let stats = Matmul.distributed ~zones a b in
  checkb "matches Matrix.mul" true
    (Matrix.approx_equal stats.Matmul.result (Matrix.mul a b))

let test_matmul_comm_identity () =
  let rng = Rng.create ~seed:48 () in
  let n = 24 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let zones = Zone.for_platform star ~n in
  let stats = Matmul.distributed ~zones a b in
  Alcotest.(check int) "comm = n·Σ half-perims"
    (Matmul.predicted_communication ~zones ~n)
    stats.Matmul.total

let test_matmul_above_lower_bound () =
  let n = 24 in
  let zones = Zone.for_platform star ~n in
  checkb "predicted >= LB" true
    (float_of_int (Matmul.predicted_communication ~zones ~n)
    >= Matmul.lower_bound_communication star ~n -. 1e-6)

let test_matmul_uniform_grid () =
  let rng = Rng.create ~seed:49 () in
  let n = 24 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let zones = Zone.uniform_grid ~p:6 ~n in
  let stats = Matmul.distributed ~zones a b in
  checkb "uniform grid correct" true
    (Matrix.approx_equal stats.Matmul.result (Matrix.mul a b))

let qcheck_matmul_random_platforms =
  QCheck.Test.make ~name:"distributed matmul correct on random platforms" ~count:25
    QCheck.(pair (list_of_size Gen.(int_range 1 6) (float_range 0.5 8.)) (int_range 4 20))
    (fun (speeds, n) ->
      let star = Star.of_speeds speeds in
      let rng = Rng.create ~seed:n () in
      let a = Matrix.random rng ~rows:n ~cols:n in
      let b = Matrix.random rng ~rows:n ~cols:n in
      let zones = Zone.for_platform star ~n in
      let stats = Matmul.distributed ~zones a b in
      Matrix.approx_equal stats.Matmul.result (Matrix.mul a b)
      && stats.Matmul.total = Matmul.predicted_communication ~zones ~n)

let suites =
  [
    ( "distributed outer product",
      [
        Alcotest.test_case "correct" `Quick test_outer_distributed_correct;
        Alcotest.test_case "comm = half-perimeters" `Quick test_outer_comm_is_half_perimeters;
        Alcotest.test_case "bad tiling rejected" `Quick test_outer_rejects_bad_tiling;
        Alcotest.test_case "block execution correct" `Quick test_blocks_execution_correct;
        Alcotest.test_case "block comm accounting" `Quick test_blocks_comm_accounting;
        Alcotest.test_case "dedup reuses cache" `Quick test_dedup_reuses_cache;
        Alcotest.test_case "executed = counted" `Quick test_executed_comm_equals_counted;
      ] );
    ( "distributed matmul",
      [
        Alcotest.test_case "correct" `Quick test_matmul_distributed_correct;
        Alcotest.test_case "comm identity" `Quick test_matmul_comm_identity;
        Alcotest.test_case "above lower bound" `Quick test_matmul_above_lower_bound;
        Alcotest.test_case "uniform grid" `Quick test_matmul_uniform_grid;
        QCheck_alcotest.to_alcotest qcheck_matmul_random_platforms;
      ] );
  ]
