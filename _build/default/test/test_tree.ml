(* Multi-level (tree) DLT scheduling and the MapReduce timeline view. *)

module Tree = Dlt.Tree
module Topology = Platform.Topology
module Timeline = Mapreduce.Timeline
module Scheduler = Mapreduce.Scheduler
module Task = Mapreduce.Task
module Star = Platform.Star

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let worker ?(bandwidth = 2.) speed = Topology.worker ~bandwidth ~speed ()

let test_single_level_matches_closed_form () =
  let nodes = [ worker 1.; worker 2.; worker 4. ] in
  let result = Tree.schedule nodes ~total:60. in
  let star = Star.of_speeds ~bandwidth:2. [ 1.; 2.; 4. ] in
  checkf "flat tree = one-port closed form" ~eps:1e-6
    (Dlt.Linear.one_port_makespan star ~total:60.)
    result.Tree.makespan;
  checkf "shares conserved" ~eps:1e-6 60.
    (List.fold_left (fun acc l -> acc +. l.Tree.share) 0. result.Tree.leaves)

let test_two_level_conserves () =
  let cluster = Topology.cluster ~bandwidth:3. [ worker 1.; worker 2. ] in
  let nodes = [ cluster; worker 4. ] in
  let result = Tree.schedule nodes ~total:100. in
  checkf "shares conserved" ~eps:1e-6 100.
    (List.fold_left (fun acc l -> acc +. l.Tree.share) 0. result.Tree.leaves);
  Alcotest.(check int) "three leaves" 3 (List.length result.Tree.leaves)

let test_paths_identify_leaves () =
  let cluster = Topology.cluster ~bandwidth:3. [ worker 1.; worker 2. ] in
  let nodes = [ cluster; worker 4. ] in
  let result = Tree.schedule nodes ~total:100. in
  let paths = List.map (fun l -> l.Tree.path) result.Tree.leaves in
  Alcotest.(check (list (list int))) "depth-first paths" [ [ 0; 0 ]; [ 0; 1 ]; [ 1 ] ] paths

let test_flat_summary_both_directions () =
  (* The flat summary is not a bound in either direction.  A cluster
     whose internal fabric outruns its thin uplink beats the summary
     (the summary double-counts the uplink)... *)
  let fast_inside =
    [ Topology.cluster ~bandwidth:1. [ worker ~bandwidth:10. 50. ] ]
  in
  let tree_fast = (Tree.schedule fast_inside ~total:80.).Tree.makespan in
  checkb "fast fabric beats the summary" true
    (tree_fast < Tree.flat_makespan fast_inside ~total:80.);
  (* ...while a slow internal fabric behind an ample uplink loses to
     it (the summary hides the internal redistribution serialization). *)
  let slow_inside =
    [ Topology.cluster ~bandwidth:100. (List.init 3 (fun _ -> worker ~bandwidth:0.5 1.)) ]
  in
  let tree_slow = (Tree.schedule slow_inside ~total:80.).Tree.makespan in
  checkb "slow fabric loses to the summary" true
    (tree_slow > Tree.flat_makespan slow_inside ~total:80.)

let test_above_ideal_bound () =
  let cluster =
    Topology.cluster ~bandwidth:1.5 (List.init 4 (fun _ -> worker ~bandwidth:2. 1.))
  in
  let nodes = [ cluster; worker 2.; worker 3. ] in
  let result = Tree.schedule nodes ~total:80. in
  let raw_speed = List.fold_left (fun acc n -> acc +. Topology.total_speed n) 0. nodes in
  checkb "tree >= compute-only ideal" true (result.Tree.makespan >= 80. /. raw_speed)

let test_three_levels () =
  let inner = Topology.cluster ~bandwidth:2. [ worker 1.; worker 1. ] in
  let middle = Topology.cluster ~bandwidth:2. [ inner; worker 2. ] in
  let result = Tree.schedule [ middle; worker 3. ] ~total:50. in
  Alcotest.(check int) "four leaves" 4 (List.length result.Tree.leaves);
  checkf "conserved" ~eps:1e-6 50.
    (List.fold_left (fun acc l -> acc +. l.Tree.share) 0. result.Tree.leaves);
  List.iter
    (fun l -> checkb "finishes after 0" true (l.Tree.finish > 0.))
    result.Tree.leaves

let test_validation () =
  checkb "empty rejected" true
    (try
       ignore (Tree.schedule [] ~total:1.);
       false
     with Invalid_argument _ -> true);
  checkb "zero total rejected" true
    (try
       ignore (Tree.schedule [ worker 1. ] ~total:0.);
       false
     with Invalid_argument _ -> true)

let qcheck_tree_conservation =
  QCheck.Test.make ~name:"tree schedule conserves load on random topologies" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Numerics.Rng.create ~seed () in
      let leaf () = worker (Numerics.Rng.uniform rng 0.5 5.) in
      let cluster () =
        Topology.cluster
          ~bandwidth:(Numerics.Rng.uniform rng 0.5 5.)
          (List.init (1 + Numerics.Rng.int rng 4) (fun _ -> leaf ()))
      in
      let nodes =
        List.init
          (1 + Numerics.Rng.int rng 4)
          (fun _ -> if Numerics.Rng.bool rng then leaf () else cluster ())
      in
      let result = Tree.schedule nodes ~total:30. in
      let raw_speed =
        List.fold_left (fun acc n -> acc +. Topology.total_speed n) 0. nodes
      in
      Float.abs (List.fold_left (fun acc l -> acc +. l.Tree.share) 0. result.Tree.leaves -. 30.)
      < 1e-6
      && result.Tree.makespan >= (30. /. raw_speed) -. 1e-6)

(* --- MapReduce timeline --- *)

let test_timeline_utilization () =
  let star = Star.of_speeds [ 1.; 1. ] in
  let tasks = Array.init 4 (fun i -> Task.make ~id:i ~data_ids:[| i |] ~cost:1.) in
  let outcome = Scheduler.run star ~tasks ~block_size:(fun _ -> 1.) in
  let u = Timeline.utilizations star outcome in
  Array.iter (fun x -> checkb "utilization in (0,1]" true (x > 0. && x <= 1.)) u

let test_timeline_gantt () =
  let star = Star.of_speeds [ 1.; 2. ] in
  let tasks = Array.init 6 (fun i -> Task.make ~id:i ~data_ids:[| i |] ~cost:2.) in
  let outcome = Scheduler.run star ~tasks ~block_size:(fun _ -> 1.) in
  let gantt = Timeline.gantt outcome in
  checkb "renders fetch marks" true (String.contains gantt 'f');
  checkb "renders compute marks" true (String.contains gantt 'x')

let test_timeline_empty () =
  let star = Star.of_speeds [ 1. ] in
  let outcome = Scheduler.run star ~tasks:[||] ~block_size:(fun _ -> 1.) in
  Alcotest.(check (array (float 0.))) "no work, zero utilization" [| 0. |]
    (Timeline.utilizations star outcome)

let suites =
  [
    ( "tree DLT",
      [
        Alcotest.test_case "single level" `Quick test_single_level_matches_closed_form;
        Alcotest.test_case "two levels conserve" `Quick test_two_level_conserves;
        Alcotest.test_case "paths" `Quick test_paths_identify_leaves;
        Alcotest.test_case "flat summary both directions" `Quick
          test_flat_summary_both_directions;
        Alcotest.test_case "above ideal bound" `Quick test_above_ideal_bound;
        Alcotest.test_case "three levels" `Quick test_three_levels;
        Alcotest.test_case "validation" `Quick test_validation;
        QCheck_alcotest.to_alcotest qcheck_tree_conservation;
      ] );
    ( "mapreduce timeline",
      [
        Alcotest.test_case "utilization" `Quick test_timeline_utilization;
        Alcotest.test_case "gantt" `Quick test_timeline_gantt;
        Alcotest.test_case "empty" `Quick test_timeline_empty;
      ] );
  ]
