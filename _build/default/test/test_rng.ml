(* PRNG and distribution tests. *)

module Rng = Numerics.Rng
module Distributions = Numerics.Distributions

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let test_determinism () =
  let a = Rng.create ~seed:42 () in
  let b = Rng.create ~seed:42 () in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 () in
  let b = Rng.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  checkb "different seeds diverge" true (!same < 4)

let test_copy_independence () =
  let a = Rng.create ~seed:7 () in
  let b = Rng.copy a in
  let va = Rng.int64 a in
  let vb = Rng.int64 b in
  check Alcotest.int64 "copy replays" va vb;
  ignore (Rng.int64 a);
  ignore (Rng.int64 a);
  let _ = Rng.int64 b in
  ()

let test_split_diverges () =
  let a = Rng.create ~seed:7 () in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  checkb "split streams diverge" true (!same < 4)

let test_float_range () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    checkb "float in [0,1)" true (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let rng = Rng.create ~seed:5 () in
  let xs = Array.init 50_000 (fun _ -> Rng.float rng) in
  let mean = Numerics.Stats.mean xs in
  checkb "uniform mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Rng.create ~seed:9 () in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    checkb "int in [0,7)" true (x >= 0 && x < 7)
  done

let test_int_coverage () =
  let rng = Rng.create ~seed:11 () in
  let seen = Array.make 7 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int rng 7) <- true
  done;
  checkb "all residues reached" true (Array.for_all Fun.id seen)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:13 () in
  let a = Array.init 100 Fun.id in
  let shuffled = Array.copy a in
  Rng.shuffle rng shuffled;
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  check Alcotest.(array int) "shuffle is a permutation" a sorted

let test_gaussian_moments () =
  let rng = Rng.create ~seed:15 () in
  let xs = Array.init 50_000 (fun _ -> Distributions.gaussian rng ~mu:2. ~sigma:3.) in
  checkb "gaussian mean" true (Float.abs (Numerics.Stats.mean xs -. 2.) < 0.08);
  checkb "gaussian sd" true (Float.abs (Numerics.Stats.stddev xs -. 3.) < 0.1)

let test_lognormal_positive () =
  let rng = Rng.create ~seed:17 () in
  for _ = 1 to 1_000 do
    checkb "lognormal > 0" true (Distributions.lognormal rng ~mu:0. ~sigma:1. > 0.)
  done

let test_lognormal_median () =
  let rng = Rng.create ~seed:19 () in
  let xs = Array.init 50_000 (fun _ -> Distributions.lognormal rng ~mu:0. ~sigma:1.) in
  (* The median of lognormal(0,1) is exp(0) = 1. *)
  checkb "lognormal median near 1" true (Float.abs (Numerics.Stats.median xs -. 1.) < 0.05)

let test_exponential_mean () =
  let rng = Rng.create ~seed:21 () in
  let xs = Array.init 50_000 (fun _ -> Distributions.exponential rng ~rate:2.) in
  checkb "exponential mean near 1/rate" true (Float.abs (Numerics.Stats.mean xs -. 0.5) < 0.02)

let test_pareto_support () =
  let rng = Rng.create ~seed:23 () in
  for _ = 1 to 1_000 do
    checkb "pareto >= scale" true (Distributions.pareto rng ~scale:2. ~shape:1.5 >= 2.)
  done

let test_zipf_weights () =
  let w = Distributions.zipf_weights ~n:10 ~skew:1. in
  checkb "zipf normalized" true (Float.abs (Numerics.Kahan.sum w -. 1.) < 1e-12);
  checkb "zipf decreasing" true
    (Array.for_all Fun.id (Array.init 9 (fun i -> w.(i) >= w.(i + 1))))

let test_categorical () =
  let rng = Rng.create ~seed:25 () in
  let weights = [| 0.5; 0.25; 0.25 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 20_000 do
    let i = Distributions.categorical rng ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  checkb "categorical proportions" true
    (Float.abs ((float_of_int counts.(0) /. 20_000.) -. 0.5) < 0.02)

let qcheck_int_bound =
  QCheck.Test.make ~name:"Rng.int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed () in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let qcheck_uniform_bounds =
  QCheck.Test.make ~name:"Rng.uniform within [lo,hi)" ~count:500
    QCheck.(triple small_int (float_range (-1000.) 1000.) (float_range 0.001 1000.))
    (fun (seed, lo, width) ->
      let rng = Rng.create ~seed () in
      let x = Rng.uniform rng lo (lo +. width) in
      x >= lo && x < lo +. width)

let suites =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy replays stream" `Quick test_copy_independence;
        Alcotest.test_case "split diverges" `Quick test_split_diverges;
        Alcotest.test_case "float in range" `Quick test_float_range;
        Alcotest.test_case "float mean" `Quick test_float_mean;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int coverage" `Quick test_int_coverage;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
        QCheck_alcotest.to_alcotest qcheck_int_bound;
        QCheck_alcotest.to_alcotest qcheck_uniform_bounds;
      ] );
    ( "distributions",
      [
        Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
        Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "pareto support" `Quick test_pareto_support;
        Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
        Alcotest.test_case "categorical proportions" `Quick test_categorical;
      ] );
  ]
