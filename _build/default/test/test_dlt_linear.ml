(* Classical linear DLT: closed forms, equal finish times, schedule
   validation, cost models. *)

module Star = Platform.Star
module Processor = Platform.Processor
module Cost_model = Dlt.Cost_model
module Linear = Dlt.Linear
module Schedule = Dlt.Schedule

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let star3 = Star.of_speeds ~bandwidth:2. [ 1.; 2.; 4. ]

let test_cost_model_values () =
  checkf "linear" 5. (Cost_model.work Cost_model.Linear 5.);
  checkf "quadratic" 25. (Cost_model.work (Cost_model.Power 2.) 5.);
  checkf "power zero" 0. (Cost_model.work (Cost_model.Power 2.) 0.);
  checkf "nlogn at 8" 24. (Cost_model.work Cost_model.N_log_n 8.);
  checkf "nlogn below 1" 0. (Cost_model.work Cost_model.N_log_n 0.5)

let test_cost_model_of_alpha () =
  checkb "alpha 1 is linear" true (Cost_model.of_alpha 1. = Cost_model.Linear);
  checkb "alpha 2 is power" true (Cost_model.of_alpha 2. = Cost_model.Power 2.);
  Alcotest.check_raises "alpha < 1 rejected"
    (Invalid_argument "Cost_model.of_alpha: alpha must be >= 1") (fun () ->
      ignore (Cost_model.of_alpha 0.5))

let test_cost_model_derivative () =
  let cost = Cost_model.Power 2. in
  let h = 1e-6 in
  let numeric = (Cost_model.work cost (3. +. h) -. Cost_model.work cost 3.) /. h in
  checkf "quadratic derivative" ~eps:1e-4 numeric (Cost_model.work_derivative cost 3.)

let test_parallel_allocation_sums () =
  let allocation = Linear.parallel_allocation star3 ~total:100. in
  checkf "sums to total" 100. (Numerics.Kahan.sum allocation)

let test_parallel_equal_finish () =
  let allocation = Linear.parallel_allocation star3 ~total:100. in
  let workers = Star.workers star3 in
  let finish i =
    (Processor.c workers.(i) +. Processor.w workers.(i)) *. allocation.(i)
  in
  checkf "P1 = P2" (finish 0) (finish 1);
  checkf "P2 = P3" (finish 1) (finish 2);
  checkf "makespan matches" (finish 0) (Linear.parallel_makespan star3 ~total:100.)

let test_parallel_homogeneous_split () =
  let star = Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  let allocation = Linear.parallel_allocation star ~total:100. in
  Array.iter (fun n -> checkf "equal share" 25. n) allocation

let test_one_port_sums () =
  let allocation = Linear.one_port_allocation star3 ~total:100. in
  checkf "sums to total" ~eps:1e-6 100. (Numerics.Kahan.sum allocation)

let test_one_port_equal_finish () =
  (* Under one-port, worker i finishes at Σ_{j<=i} c_j n_j + w_i n_i:
     all equal in the optimal solution. *)
  let allocation = Linear.one_port_allocation star3 ~total:100. in
  let workers = Star.workers star3 in
  let comm = ref 0. in
  let finishes =
    Array.mapi
      (fun i n ->
        comm := !comm +. (Processor.c workers.(i) *. n);
        !comm +. (Processor.w workers.(i) *. n))
      allocation
  in
  checkf "equal finish 0-1" ~eps:1e-6 finishes.(0) finishes.(1);
  checkf "equal finish 1-2" ~eps:1e-6 finishes.(1) finishes.(2);
  checkf "makespan matches" ~eps:1e-6 finishes.(0) (Linear.one_port_makespan star3 ~total:100.)

let test_one_port_slower_than_parallel () =
  checkb "one-port >= parallel makespan" true
    (Linear.one_port_makespan star3 ~total:100.
    >= Linear.parallel_makespan star3 ~total:100. -. 1e-9)

let test_schedule_validates () =
  List.iter
    (fun model ->
      let schedule = Linear.schedule model star3 ~total:50. in
      match Schedule.validate model Cost_model.Linear schedule with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [ Schedule.Parallel; Schedule.One_port ]

let test_schedule_total_data () =
  let schedule = Linear.schedule Schedule.Parallel star3 ~total:50. in
  checkf "data conserved" ~eps:1e-6 50. (Schedule.total_data schedule)

let test_validate_catches_overlap () =
  (* A parallel-model schedule violates one-port when two transfers
     overlap. *)
  let schedule = Linear.schedule Schedule.Parallel star3 ~total:50. in
  match Schedule.validate Schedule.One_port Cost_model.Linear schedule with
  | Ok () -> Alcotest.fail "expected one-port violation"
  | Error msg -> checkb "mentions overlap" true (String.length msg > 0)

let test_validate_catches_tampering () =
  let schedule = Linear.schedule Schedule.Parallel star3 ~total:50. in
  let entries = Array.copy schedule.Schedule.entries in
  entries.(0) <- { entries.(0) with Schedule.compute_end = 0.1 };
  let tampered = { schedule with Schedule.entries = entries } in
  match Schedule.validate Schedule.Parallel Cost_model.Linear tampered with
  | Ok () -> Alcotest.fail "expected duration mismatch"
  | Error _ -> ()

let test_zero_total () =
  let allocation = Linear.parallel_allocation star3 ~total:0. in
  Array.iter (fun n -> checkf "zero everywhere" 0. n) allocation

let qcheck_parallel_optimality =
  (* Perturbing the optimal allocation can only increase the makespan. *)
  QCheck.Test.make ~name:"parallel closed form is optimal under perturbation" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 2 8) (float_range 0.1 10.))
        (pair (int_range 0 7) (float_range 0.01 0.4)))
    (fun (speeds, (idx, delta)) ->
      let star = Star.of_speeds speeds in
      let p = Star.size star in
      let total = 100. in
      let allocation = Linear.parallel_allocation star ~total in
      let makespan allocation =
        let workers = Star.workers star in
        Array.fold_left Float.max 0.
          (Array.mapi
             (fun i n -> (Processor.c workers.(i) +. Processor.w workers.(i)) *. n)
             allocation)
      in
      let i = idx mod p and j = (idx + 1) mod p in
      let moved = Float.min (allocation.(i) *. delta) allocation.(i) in
      let perturbed = Array.copy allocation in
      perturbed.(i) <- perturbed.(i) -. moved;
      perturbed.(j) <- perturbed.(j) +. moved;
      makespan perturbed >= makespan allocation -. 1e-9)

let qcheck_one_port_allocation_valid =
  QCheck.Test.make ~name:"one-port allocation: positive, sums to total" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 50.))
    (fun speeds ->
      let star = Star.of_speeds speeds in
      let allocation = Linear.one_port_allocation star ~total:42. in
      Array.for_all (fun n -> n > 0.) allocation
      && Float.abs (Numerics.Kahan.sum allocation -. 42.) < 1e-6)

let suites =
  [
    ( "cost model",
      [
        Alcotest.test_case "values" `Quick test_cost_model_values;
        Alcotest.test_case "of_alpha" `Quick test_cost_model_of_alpha;
        Alcotest.test_case "derivative" `Quick test_cost_model_derivative;
      ] );
    ( "linear DLT",
      [
        Alcotest.test_case "parallel sums" `Quick test_parallel_allocation_sums;
        Alcotest.test_case "parallel equal finish" `Quick test_parallel_equal_finish;
        Alcotest.test_case "homogeneous split" `Quick test_parallel_homogeneous_split;
        Alcotest.test_case "one-port sums" `Quick test_one_port_sums;
        Alcotest.test_case "one-port equal finish" `Quick test_one_port_equal_finish;
        Alcotest.test_case "one-port slower" `Quick test_one_port_slower_than_parallel;
        Alcotest.test_case "zero total" `Quick test_zero_total;
        QCheck_alcotest.to_alcotest qcheck_parallel_optimality;
        QCheck_alcotest.to_alcotest qcheck_one_port_allocation_valid;
      ] );
    ( "schedule",
      [
        Alcotest.test_case "validates" `Quick test_schedule_validates;
        Alcotest.test_case "total data" `Quick test_schedule_total_data;
        Alcotest.test_case "one-port overlap caught" `Quick test_validate_catches_overlap;
        Alcotest.test_case "tampering caught" `Quick test_validate_catches_tampering;
      ] );
  ]
