(* Time-domain evaluation of the distribution strategies (E4). *)

module Timed = Partition.Timed
module Star = Platform.Star
module Profiles = Platform.Profiles
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_compute_bound () =
  let star = Star.of_speeds [ 1.; 3. ] in
  checkf "n²/Σs" 25. (Timed.compute_bound star ~n:10.)

let test_het_above_bound () =
  let rng = Rng.create ~seed:61 () in
  let star = Profiles.generate ~bandwidth:10. rng ~p:8 Profiles.paper_uniform in
  let timing = Timed.het star ~n:100. in
  checkb "makespan above compute bound" true
    (timing.Timed.makespan >= Timed.compute_bound star ~n:100. -. 1e-9)

let test_het_decomposition () =
  (* Single worker: makespan = fetch + compute, fetch = 2n/bw. *)
  let star = Star.of_speeds ~bandwidth:4. [ 2. ] in
  let timing = Timed.het star ~n:10. in
  checkf "fetch" 5. timing.Timed.comm_makespan;
  checkf "makespan" (5. +. 50.) timing.Timed.makespan

let test_hom_matches_het_when_homogeneous_and_fast () =
  (* Homogeneous platform, huge bandwidth: both strategies are
     compute-bound and equal the bound. *)
  let star = Star.of_speeds ~bandwidth:1e9 (List.init 16 (fun _ -> 1.)) in
  let bound = Timed.compute_bound star ~n:400. in
  let het = Timed.het star ~n:400. in
  let hom = Timed.hom star ~n:400. in
  checkf "het at bound" ~eps:1e-3 bound het.Timed.makespan;
  checkf "hom at bound" ~eps:1e-3 bound hom.Timed.makespan

let test_hom_suffers_on_slow_network () =
  let rng = Rng.create ~seed:62 () in
  let star = Profiles.generate ~bandwidth:1. rng ~p:16 Profiles.paper_uniform in
  let het = Timed.het star ~n:1000. in
  let hom = Timed.hom_balanced star ~n:1000. in
  checkb "het wins when links are slow" true
    (hom.Timed.makespan > 1.5 *. het.Timed.makespan)

let test_hom_k_increases_comm_time () =
  (* More subdivision = more redundant fetches = more comm time. *)
  let rng = Rng.create ~seed:63 () in
  let star = Profiles.generate ~bandwidth:1. rng ~p:8 Profiles.paper_uniform in
  let t1 = Timed.hom ~k:1 star ~n:500. in
  let t4 = Timed.hom ~k:4 star ~n:500. in
  checkb "comm grows with k" true
    (Array.fold_left ( +. ) 0. t4.Timed.per_worker
    >= Array.fold_left ( +. ) 0. t1.Timed.per_worker -. 1e-9)

let test_invalid_n () =
  let star = Star.of_speeds [ 1. ] in
  checkb "bad n rejected" true
    (try
       ignore (Timed.het star ~n:0.);
       false
     with Invalid_argument _ -> true)

let test_e4_shape () =
  let rows =
    Experiments.Time_exp.run ~p:16 ~trials:2 ~bandwidths:[ 1e4; 1. ]
      Profiles.paper_uniform
  in
  match rows with
  | [ fast; slow ] ->
      checkb "fast network: both near bound" true
        (fast.Experiments.Time_exp.het_ratio < 1.1
        && fast.Experiments.Time_exp.hom_ratio < 1.3);
      checkb "slow network: hom falls behind" true
        (slow.Experiments.Time_exp.hom_ratio
        > 1.5 *. slow.Experiments.Time_exp.het_ratio)
  | _ -> Alcotest.fail "expected two rows"

let suites =
  [
    ( "timed strategies (E4)",
      [
        Alcotest.test_case "compute bound" `Quick test_compute_bound;
        Alcotest.test_case "het above bound" `Quick test_het_above_bound;
        Alcotest.test_case "het decomposition" `Quick test_het_decomposition;
        Alcotest.test_case "fast network parity" `Quick
          test_hom_matches_het_when_homogeneous_and_fast;
        Alcotest.test_case "slow network penalty" `Quick test_hom_suffers_on_slow_network;
        Alcotest.test_case "comm grows with k" `Quick test_hom_k_increases_comm_time;
        Alcotest.test_case "invalid n" `Quick test_invalid_n;
        Alcotest.test_case "E4 shape" `Quick test_e4_shape;
      ] );
  ]
