test/test_pipeline.ml: Alcotest Array Des Linalg List Mapreduce Numerics Platform
