test/test_process.ml: Alcotest Array Des Dlt List Platform
