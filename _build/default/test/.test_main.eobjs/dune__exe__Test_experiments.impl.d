test/test_experiments.ml: Alcotest Experiments Float List Numerics Platform
