test/test_invariants.ml: Array Des Dlt Float Linalg List Numerics Partition Platform QCheck QCheck_alcotest Sortlib
