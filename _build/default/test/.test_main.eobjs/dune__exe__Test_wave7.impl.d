test/test_wave7.ml: Alcotest Array Float Gen List Mapreduce Numerics Platform QCheck QCheck_alcotest
