test/test_wave6.ml: Alcotest Array Float Linalg List Numerics Platform Printf QCheck QCheck_alcotest Workloads
