test/test_matrix.ml: Alcotest Array Linalg Numerics QCheck QCheck_alcotest
