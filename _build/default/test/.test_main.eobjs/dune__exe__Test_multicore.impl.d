test/test_multicore.ml: Alcotest Array Float Linalg List Numerics Platform Printf QCheck QCheck_alcotest Sortlib
