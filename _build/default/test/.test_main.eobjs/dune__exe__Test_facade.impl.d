test/test_facade.ml: Alcotest Array Core Float Numerics String
