test/test_dlt_linear.ml: Alcotest Array Dlt Float Gen List Numerics Platform QCheck QCheck_alcotest String
