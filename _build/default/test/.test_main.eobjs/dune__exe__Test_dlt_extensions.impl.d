test/test_dlt_extensions.ml: Alcotest Array Dlt Float Gen List Numerics Platform QCheck QCheck_alcotest
