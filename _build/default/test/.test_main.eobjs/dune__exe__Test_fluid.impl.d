test/test_fluid.ml: Alcotest Array Des Float Gen List Numerics Partition Platform QCheck QCheck_alcotest
