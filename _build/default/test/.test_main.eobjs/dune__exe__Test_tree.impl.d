test/test_tree.ml: Alcotest Array Dlt Float List Mapreduce Numerics Platform QCheck QCheck_alcotest String
