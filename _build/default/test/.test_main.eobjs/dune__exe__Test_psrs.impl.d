test/test_psrs.ml: Alcotest Array Dlt Float Gen List Mapreduce Numerics Platform QCheck QCheck_alcotest Sortlib
