test/test_column_partition.ml: Alcotest Array Fun Gen List Numerics Partition Platform QCheck QCheck_alcotest
