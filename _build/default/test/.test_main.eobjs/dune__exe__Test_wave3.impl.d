test/test_wave3.ml: Alcotest Array Dlt Float Gen Linalg List Numerics Partition Platform QCheck QCheck_alcotest
