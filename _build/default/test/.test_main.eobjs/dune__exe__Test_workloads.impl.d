test/test_workloads.ml: Alcotest Array Linalg List Numerics Platform QCheck QCheck_alcotest Workloads
