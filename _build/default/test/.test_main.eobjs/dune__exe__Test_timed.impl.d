test/test_timed.ml: Alcotest Array Experiments List Numerics Partition Platform
