test/test_sort_model.ml: Alcotest Array List Platform QCheck QCheck_alcotest Sortlib
