test/test_dlt_nonlinear.ml: Alcotest Array Dlt Float Gen List Numerics Platform QCheck QCheck_alcotest
