test/test_special.ml: Alcotest Array Float List Numerics QCheck QCheck_alcotest String
