test/test_distributed.ml: Alcotest Array Gen Linalg Numerics Partition Platform QCheck QCheck_alcotest
