test/test_partition_geometry.ml: Alcotest Array Gen List Partition Platform QCheck QCheck_alcotest String
