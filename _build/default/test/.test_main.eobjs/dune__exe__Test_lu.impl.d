test/test_lu.ml: Alcotest Array Float Linalg List Numerics Printf QCheck QCheck_alcotest
