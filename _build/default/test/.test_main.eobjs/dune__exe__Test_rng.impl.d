test/test_rng.ml: Alcotest Array Float Fun Numerics QCheck QCheck_alcotest
