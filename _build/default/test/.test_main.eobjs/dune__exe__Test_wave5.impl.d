test/test_wave5.ml: Alcotest Array Des Dlt Float Linalg List Mapreduce Numerics Platform QCheck QCheck_alcotest Sortlib String
