test/test_gaps.ml: Alcotest Array Des Dlt Experiments Format List Numerics Partition Platform String
