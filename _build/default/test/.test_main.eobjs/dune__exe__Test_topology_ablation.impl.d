test/test_topology_ablation.ml: Alcotest Experiments
