test/test_platform.ml: Alcotest Array Float Fun Gen List Numerics Platform QCheck QCheck_alcotest
