test/test_zones.ml: Alcotest Array Float Gen Linalg List Numerics Platform Printf QCheck QCheck_alcotest String
