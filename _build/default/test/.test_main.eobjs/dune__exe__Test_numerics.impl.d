test/test_numerics.ml: Alcotest Array Float Gen List Numerics QCheck QCheck_alcotest String
