test/test_dlt_rounds.ml: Alcotest Dlt Float Gen List Platform QCheck QCheck_alcotest
