test/test_extensions.ml: Alcotest Array Float Gen Linalg List Mapreduce Numerics Partition Platform QCheck QCheck_alcotest Sortlib
