test/test_two_phase.ml: Alcotest Array Linalg List Mapreduce Numerics Platform
