test/test_wave4.ml: Alcotest Array Experiments Filename Float Fun Gen List Mapreduce Numerics Platform QCheck QCheck_alcotest String Sys
