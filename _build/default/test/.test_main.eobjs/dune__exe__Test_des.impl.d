test/test_des.ml: Alcotest Des Float Gen List QCheck QCheck_alcotest String
