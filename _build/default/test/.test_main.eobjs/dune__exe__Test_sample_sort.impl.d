test/test_sample_sort.ml: Alcotest Array Float Gen Int List Numerics Platform QCheck QCheck_alcotest Sortlib
