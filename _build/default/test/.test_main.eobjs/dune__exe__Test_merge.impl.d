test/test_merge.ml: Alcotest Array Float Gen List Numerics QCheck QCheck_alcotest Sortlib
