test/test_parse.ml: Alcotest Array Filename Float Fun Gen List Out_channel Platform Printf QCheck QCheck_alcotest String Sys
