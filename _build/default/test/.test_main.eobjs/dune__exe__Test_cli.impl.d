test/test_cli.ml: Alcotest Array Cli Filename Fun Out_channel String Sys Unix
