test/test_mapreduce.ml: Alcotest Array Float Gen Linalg List Mapreduce Numerics Platform QCheck QCheck_alcotest
