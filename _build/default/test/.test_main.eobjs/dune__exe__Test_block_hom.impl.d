test/test_block_hom.ml: Alcotest Array Float Gen List Partition Platform QCheck QCheck_alcotest
