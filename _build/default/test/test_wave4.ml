(* Hierarchical platforms, reducer placement, CSV output. *)

module Topology = Platform.Topology
module Star = Platform.Star
module Processor = Platform.Processor
module Shuffle = Mapreduce.Shuffle
module Csv_out = Experiments.Csv_out
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- topology --- *)

let test_flat_workers_unchanged () =
  let nodes = [ Topology.worker ~speed:2. (); Topology.worker ~speed:3. () ] in
  let star = Topology.flatten nodes in
  checkf "total speed preserved" 5. (Star.total_speed star);
  Alcotest.(check int) "two workers" 2 (Star.size star)

let test_cluster_uplink_limits () =
  (* Four speed-10 workers behind a bandwidth-1 uplink absorb at most 1
     load/time in steady state. *)
  let inner = List.init 4 (fun _ -> Topology.worker ~bandwidth:100. ~speed:10. ()) in
  let node = Topology.cluster ~bandwidth:1. inner in
  let proc = Topology.equivalent_processor node in
  checkf "uplink-bound speed" 1. proc.Processor.speed;
  checkf "uplink bandwidth kept" 1. proc.Processor.bandwidth

let test_cluster_internal_limit () =
  (* A huge uplink does not help if the gateway's port and children's
     links saturate first: 2 children, speed 3 each, bandwidth 2 each →
     one-port throughput = min(3,2·leftover)… greedy: first child rate
     min(3, 2·1)=2 (uses port fully), second gets 0 → 2? Greedy: child1
     affordable 2, rate 2, port spent; total 2. *)
  let inner = List.init 2 (fun _ -> Topology.worker ~bandwidth:2. ~speed:3. ()) in
  let node = Topology.cluster ~bandwidth:1e6 inner in
  let proc = Topology.equivalent_processor node in
  checkf "internal one-port bound" 2. proc.Processor.speed

let test_nested_clusters () =
  let leafs = List.init 3 (fun _ -> Topology.worker ~bandwidth:10. ~speed:1. ()) in
  let mid = Topology.cluster ~bandwidth:10. leafs in
  let top = Topology.cluster ~bandwidth:2. [ mid; Topology.worker ~speed:1. () ] in
  Alcotest.(check int) "leaf count" 4 (Topology.leaf_count top);
  checkf "raw speed" 4. (Topology.total_speed top);
  let proc = Topology.equivalent_processor top in
  (* mid aggregates to speed 3 (internal), capped by its own uplink 10 →
     3; top children = {speed 3 bw 10, speed 1 bw 1}: greedy fills the
     bw-10 node (3 rate, 0.3 port), then 0.7·1 = 0.7 → total 3.7, capped
     by uplink 2. *)
  checkf "nested aggregation" 2. proc.Processor.speed

let test_aggregation_loss () =
  let nodes =
    [ Topology.cluster ~bandwidth:1. [ Topology.worker ~bandwidth:10. ~speed:9. () ] ]
  in
  checkf "8/9 lost" (8. /. 9.) (Topology.aggregation_loss nodes)

let test_empty_cluster_rejected () =
  checkb "empty rejected" true
    (try
       ignore (Topology.cluster []);
       false
     with Invalid_argument _ -> true)

let qcheck_aggregation_bounded =
  QCheck.Test.make ~name:"aggregated speed never exceeds raw speed or uplink" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 6) (pair (float_range 0.1 10.) (float_range 0.1 10.)))
        (float_range 0.1 10.))
    (fun (children, uplink) ->
      QCheck.assume (children <> []);
      let nodes =
        List.map (fun (s, bw) -> Topology.worker ~bandwidth:bw ~speed:s ()) children
      in
      let node = Topology.cluster ~bandwidth:uplink nodes in
      let proc = Topology.equivalent_processor node in
      proc.Processor.speed <= uplink +. 1e-9
      && proc.Processor.speed <= Topology.total_speed node +. 1e-9
      && proc.Processor.speed > 0.)

(* --- reducer placement --- *)

let test_speed_weighted_placement_range () =
  let star = Star.of_speeds [ 1.; 2.; 3. ] in
  for key = 0 to 1_000 do
    let r = Shuffle.speed_weighted_placement star key in
    checkb "in range" true (r >= 0 && r < 3)
  done

let test_speed_weighted_placement_proportions () =
  let star = Star.of_speeds [ 1.; 4. ] in
  let counts = Array.make 2 0 in
  for key = 0 to 20_000 do
    let r = Shuffle.speed_weighted_placement star key in
    counts.(r) <- counts.(r) + 1
  done;
  let fast_share = float_of_int counts.(1) /. 20_001. in
  checkb "fast worker gets ~80%" true (Float.abs (fast_share -. 0.8) < 0.03)

let test_custom_placement_balances_reducers () =
  (* Heterogeneous platform, many keys, compute-bound reducers (ample
     bandwidth): speed-weighted placement should cut the reduce-phase
     time versus plain hashing. *)
  let star = Star.of_speeds ~bandwidth:1e6 [ 1.; 1.; 8. ] in
  let pairs = List.init 3_000 (fun i -> (i, 1, 0)) in
  let reduce _ vs = List.fold_left ( + ) 0 vs in
  let _, hash_stats = Shuffle.run star ~pairs ~reduce in
  let _, weighted_stats =
    Shuffle.run ~place:(Shuffle.speed_weighted_placement star) star ~pairs ~reduce
  in
  checkb "weighted reduce faster" true
    (weighted_stats.Shuffle.reduce_time < hash_stats.Shuffle.reduce_time)

let test_placement_out_of_range_rejected () =
  let star = Star.of_speeds [ 1.; 1. ] in
  checkb "bad placement rejected" true
    (try
       ignore (Shuffle.run ~place:(fun _ -> 7) star ~pairs:[ ("k", 1, 0) ] ~reduce:(fun _ v -> List.hd v));
       false
     with Invalid_argument _ -> true)

(* --- CSV --- *)

let test_csv_plain () =
  Alcotest.(check string) "simple" "a,b\n1,2\n"
    (Csv_out.to_string ~header:[ "a"; "b" ] ~rows:[ [ "1"; "2" ] ])

let test_csv_quoting () =
  Alcotest.(check string) "escaped" "\"a,b\"\n\"say \"\"hi\"\"\"\n"
    (Csv_out.to_string ~header:[ "a,b" ] ~rows:[ [ "say \"hi\"" ] ])

let test_csv_width_checked () =
  checkb "width mismatch rejected" true
    (try
       ignore (Csv_out.to_string ~header:[ "a"; "b" ] ~rows:[ [ "1" ] ]);
       false
     with Invalid_argument _ -> true)

let test_csv_roundtrip_file () =
  let path = Filename.temp_file "nldl" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_out.write ~path ~header:[ "x" ] ~rows:[ [ "1" ]; [ "2" ] ];
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file content" "x\n1\n2\n" content)

let test_fig4_csv_shape () =
  let points =
    Experiments.Fig4.sweep ~processor_counts:[ 10 ] ~trials:2
      Platform.Profiles.paper_homogeneous
  in
  let header, rows = Experiments.Fig4.csv points in
  Alcotest.(check int) "8 columns" 8 (List.length header);
  Alcotest.(check int) "1 row" 1 (List.length rows);
  checkb "valid csv" true (String.length (Csv_out.to_string ~header ~rows) > 0)

let suites =
  [
    ( "topology",
      [
        Alcotest.test_case "flat workers unchanged" `Quick test_flat_workers_unchanged;
        Alcotest.test_case "uplink limits" `Quick test_cluster_uplink_limits;
        Alcotest.test_case "internal limit" `Quick test_cluster_internal_limit;
        Alcotest.test_case "nested clusters" `Quick test_nested_clusters;
        Alcotest.test_case "aggregation loss" `Quick test_aggregation_loss;
        Alcotest.test_case "empty cluster rejected" `Quick test_empty_cluster_rejected;
        QCheck_alcotest.to_alcotest qcheck_aggregation_bounded;
      ] );
    ( "reducer placement",
      [
        Alcotest.test_case "range" `Quick test_speed_weighted_placement_range;
        Alcotest.test_case "proportions" `Quick test_speed_weighted_placement_proportions;
        Alcotest.test_case "balances reducers" `Quick test_custom_placement_balances_reducers;
        Alcotest.test_case "out of range rejected" `Quick test_placement_out_of_range_rejected;
      ] );
    ( "csv output",
      [
        Alcotest.test_case "plain" `Quick test_csv_plain;
        Alcotest.test_case "quoting" `Quick test_csv_quoting;
        Alcotest.test_case "width checked" `Quick test_csv_width_checked;
        Alcotest.test_case "file roundtrip" `Quick test_csv_roundtrip_file;
        Alcotest.test_case "fig4 csv" `Quick test_fig4_csv_shape;
      ] );
  ]
