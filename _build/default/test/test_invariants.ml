(* Cross-module invariants: properties that tie the theory modules
   together on random platforms, checked with qcheck.  These are the
   repository's "global" consistency laws. *)

module Star = Platform.Star
module Processor = Platform.Processor
module Rng = Numerics.Rng

let random_star ?(min_p = 1) ?(max_p = 12) seed =
  let rng = Rng.create ~seed () in
  let p = min_p + Rng.int rng (max_p - min_p + 1) in
  let speeds = List.init p (fun _ -> Rng.uniform rng 0.2 20.) in
  Star.of_speeds ~bandwidth:(Rng.uniform rng 0.5 10.) speeds

let qtest name f = QCheck.Test.make ~name ~count:150 QCheck.small_int f

(* One-port can never beat parallel links (strictly fewer constraints). *)
let one_port_dominated =
  qtest "one-port makespan >= parallel makespan" (fun seed ->
      let star = random_star seed in
      Dlt.Linear.one_port_makespan star ~total:50.
      >= Dlt.Linear.parallel_makespan star ~total:50. -. 1e-9)

(* Any valid schedule is at least the perfect-parallelism bound. *)
let makespan_above_ideal =
  qtest "linear schedules respect the ideal bound" (fun seed ->
      let star = random_star seed in
      let ideal = Dlt.Bounds.ideal_makespan star Dlt.Cost_model.Linear ~total:50. in
      Dlt.Linear.parallel_makespan star ~total:50. >= ideal -. 1e-9)

(* The nonlinear solver degrades gracefully: makespan is monotone in the
   load. *)
let nonlinear_monotone_in_load =
  qtest "nonlinear makespan monotone in total" (fun seed ->
      let star = random_star seed in
      let cost = Dlt.Cost_model.Power 2. in
      let span total =
        snd (Dlt.Nonlinear.equal_finish_allocation Dlt.Schedule.Parallel star cost ~total)
      in
      span 10. <= span 20. +. 1e-9)

(* Strategy ordering on every platform: the lower bound is a lower
   bound, and the balanced subdivision never ships less than Commhom. *)
let strategy_ordering =
  qtest "LB <= Commhet and Commhom <= Commhom/k" (fun seed ->
      let star = random_star ~min_p:2 seed in
      let r = Partition.Strategies.evaluate star in
      r.Partition.Strategies.het >= 1. -. 1e-6
      && r.Partition.Strategies.hom_over_k >= r.Partition.Strategies.hom -. 1e-6)

(* The PERI-SUM guarantee, on every platform. *)
let peri_sum_guarantee =
  qtest "column DP within 7/4 of the lower bound" (fun seed ->
      let star = random_star seed in
      let areas = Star.relative_speeds star in
      let cost = (Partition.Column_partition.peri_sum ~areas).Partition.Column_partition.cost in
      let lb = Partition.Lower_bound.peri_sum ~areas in
      cost <= (1. +. (1.25 *. lb)) +. 1e-9 && cost >= lb -. 1e-9)

(* Zones realize the layout: integer half-perimeter sum within rounding
   of the continuous one. *)
let zones_track_layout =
  qtest "integer zones track the continuous layout" (fun seed ->
      let star = random_star ~min_p:1 ~max_p:8 seed in
      let n = 64 in
      let zones = Linalg.Zone.for_platform star ~n in
      let continuous =
        Partition.Layout.sum_half_perimeters
          (Partition.Column_partition.peri_sum_layout ~areas:(Star.relative_speeds star))
      in
      let integer = float_of_int (Linalg.Zone.half_perimeter_sum zones) in
      Float.abs (integer -. (continuous *. float_of_int n))
      <= 2. *. float_of_int (Star.size star))

(* Steady state bounds the batch problem: a batch of W takes at least
   W / throughput under the one-port model. *)
let steady_state_bounds_batch =
  qtest "batch makespan >= total / steady-state throughput" (fun seed ->
      let star = random_star seed in
      let throughput = (Dlt.Steady_state.one_port star).Dlt.Steady_state.throughput in
      Dlt.Linear.one_port_makespan star ~total:100. >= (100. /. throughput) -. 1e-6)

(* Return messages only add time, and delta = 0 is free. *)
let returns_monotone =
  qtest "return volume only increases the makespan" (fun seed ->
      let star = random_star seed in
      let allocation = Dlt.Linear.one_port_allocation star ~total:40. in
      let span delta =
        Dlt.Return_messages.makespan ~delta Dlt.Return_messages.Fifo star ~allocation
      in
      span 0. <= span 0.5 +. 1e-9 && span 0.5 <= span 2. +. 1e-9)

(* The sorting gap formula agrees with the measured divisible fraction
   for equal buckets. *)
let sorting_gap_consistency =
  qtest "sorting gap closed form" (fun seed ->
      let rng = Rng.create ~seed () in
      let p = 2 + Rng.int rng 14 in
      let per = 500 + Rng.int rng 2_000 in
      let n = p * per in
      let star = Star.of_speeds (List.init p (fun _ -> 1.)) in
      let timing =
        Sortlib.Parallel_model.evaluate star ~bucket_sizes:(Array.make p per) ~s:16
      in
      let predicted = Dlt.Fraction.sorting_gap ~n:(float_of_int n) ~p in
      Float.abs (1. -. timing.Sortlib.Parallel_model.divisible_fraction -. predicted)
      < 1e-9)

(* Multi-round with 1 round reproduces the static schedule under both
   models. *)
let multi_round_base_case =
  qtest "1-round dispatch equals the static schedule" (fun seed ->
      let star = random_star seed in
      let allocation = Dlt.Linear.parallel_allocation star ~total:30. in
      let simulated =
        Dlt.Multi_round.makespan Dlt.Schedule.Parallel star Dlt.Cost_model.Linear
          ~allocation ~rounds:1
      in
      Float.abs (simulated -. Dlt.Linear.parallel_makespan star ~total:30.) < 1e-6)

(* Fluid with dedicated links reproduces the independent-link model. *)
let fluid_dedicated_links =
  qtest "fluid with private links = independent transfer times" (fun seed ->
      let star = random_star ~min_p:1 ~max_p:6 seed in
      let workers = Star.workers star in
      let links =
        Array.map (fun (p : Processor.t) -> { Des.Fluid.capacity = p.Processor.bandwidth }) workers
      in
      let flows =
        Array.to_list
          (Array.mapi (fun i _ -> Des.Fluid.make_flow ~id:i ~size:10. ~links:[ i ] ()) workers)
      in
      let completions = Des.Fluid.run ~links ~flows in
      List.for_all
        (fun c ->
          let proc = workers.(c.Des.Fluid.flow) in
          Float.abs (c.Des.Fluid.finish -. (10. /. proc.Processor.bandwidth)) < 1e-6)
        completions)

let suites =
  [
    ( "cross-module invariants",
      List.map QCheck_alcotest.to_alcotest
        [
          one_port_dominated;
          makespan_above_ideal;
          nonlinear_monotone_in_load;
          strategy_ordering;
          peri_sum_guarantee;
          zones_track_layout;
          steady_state_bounds_batch;
          returns_monotone;
          sorting_gap_consistency;
          multi_round_base_case;
          fluid_dedicated_links;
        ] );
  ]
