(* Platform text format. *)

module Parse = Platform.Parse
module Star = Platform.Star
module Processor = Platform.Processor

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let expect_ok = function
  | Ok star -> star
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let test_parse_full () =
  let star = expect_ok (Parse.of_string "1 2 0.5\n4 8 0\n") in
  Alcotest.(check int) "two workers" 2 (Star.size star);
  let slow = Star.worker star 0 in
  checkf "speed" 1. slow.Processor.speed;
  checkf "bandwidth" 2. slow.Processor.bandwidth;
  checkf "latency" 0.5 slow.Processor.latency

let test_parse_defaults () =
  let star = expect_ok (Parse.of_string "3\n") in
  let w = Star.worker star 0 in
  checkf "default bandwidth" 1. w.Processor.bandwidth;
  checkf "default latency" 0. w.Processor.latency

let test_parse_comments_blanks () =
  let star = expect_ok (Parse.of_string "# header\n\n1 # inline comment\n\n2\n") in
  Alcotest.(check int) "two workers" 2 (Star.size star)

let test_parse_tabs () =
  let star = expect_ok (Parse.of_string "1\t5\t0.25\n") in
  checkf "tab separated" 5. (Star.worker star 0).Processor.bandwidth

let test_parse_errors () =
  let is_error ~substring text =
    match Parse.of_string text with
    | Ok _ -> Alcotest.failf "expected error for %S" text
    | Error msg ->
        checkb
          (Printf.sprintf "error mentions %S (%s)" substring msg)
          true
          (let re = substring in
           let len = String.length re in
           let rec search i =
             i + len <= String.length msg
             && (String.sub msg i len = re || search (i + 1))
           in
           search 0)
  in
  is_error ~substring:"line 2" "1\nnot_a_number\n";
  is_error ~substring:"expected" "1 2 3 4\n";
  is_error ~substring:"no workers" "# only comments\n";
  is_error ~substring:"speed" "0\n"

let test_roundtrip () =
  let star =
    Star.create
      [
        Processor.make ~id:1 ~speed:1.5 ~bandwidth:2.25 ~latency:0.125 ();
        Processor.make ~id:2 ~speed:3. ();
      ]
  in
  let reparsed = expect_ok (Parse.of_string (Parse.to_string star)) in
  Alcotest.(check int) "size preserved" (Star.size star) (Star.size reparsed);
  Array.iteri
    (fun i (p : Processor.t) ->
      let q = Star.worker reparsed i in
      checkf "speed" p.Processor.speed q.Processor.speed;
      checkf "bandwidth" p.Processor.bandwidth q.Processor.bandwidth;
      checkf "latency" p.Processor.latency q.Processor.latency)
    (Star.workers star)

let test_of_file () =
  let path = Filename.temp_file "nldl" ".platform" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc "1\n2\n4\n");
      let star = expect_ok (Parse.of_file path) in
      Alcotest.(check int) "three workers" 3 (Star.size star))

let test_of_missing_file () =
  match Parse.of_file "/nonexistent/nldl.platform" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let qcheck_roundtrip =
  QCheck.Test.make ~name:"platform text roundtrip" ~count:100
    QCheck.(
      list_of_size Gen.(int_range 1 10)
        (triple (float_range 0.1 100.) (float_range 0.1 100.) (float_range 0. 10.)))
    (fun specs ->
      QCheck.assume (specs <> []);
      let star =
        Star.create
          (List.map
             (fun (s, bw, l) -> Processor.make ~id:0 ~speed:s ~bandwidth:bw ~latency:l ())
             specs)
      in
      match Parse.of_string (Parse.to_string star) with
      | Error _ -> false
      | Ok reparsed ->
          Star.size reparsed = Star.size star
          && Float.abs (Star.total_speed reparsed -. Star.total_speed star) < 1e-9)

let suites =
  [
    ( "platform parsing",
      [
        Alcotest.test_case "full spec" `Quick test_parse_full;
        Alcotest.test_case "defaults" `Quick test_parse_defaults;
        Alcotest.test_case "comments and blanks" `Quick test_parse_comments_blanks;
        Alcotest.test_case "tabs" `Quick test_parse_tabs;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "of_file" `Quick test_of_file;
        Alcotest.test_case "missing file" `Quick test_of_missing_file;
        QCheck_alcotest.to_alcotest qcheck_roundtrip;
      ] );
  ]
