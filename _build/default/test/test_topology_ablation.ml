(* The hierarchy ablation: uplink bandwidth vs stranded compute. *)

let checkb = Alcotest.(check bool)

let test_topology_rows () =
  let rows = Experiments.Ablations.topology ~uplinks:[ 16.; 0.25 ] () in
  match rows with
  | [ ample; thin ] ->
      checkb "ample uplink strands little" true
        (ample.Experiments.Ablations.loss < 0.2);
      checkb "thin uplink strands most" true (thin.Experiments.Ablations.loss > 0.5);
      checkb "loss monotone" true
        (thin.Experiments.Ablations.loss > ample.Experiments.Ablations.loss);
      checkb "ratios positive" true
        (ample.Experiments.Ablations.tree_vs_flat > 0.
        && thin.Experiments.Ablations.tree_vs_flat > 0.)
  | _ -> Alcotest.fail "expected two rows"

let suites =
  [
    ( "topology ablation",
      [ Alcotest.test_case "uplink sweep" `Quick test_topology_rows ] );
  ]
