(* Special functions, histograms, confidence intervals. *)

module Special = Numerics.Special
module Histogram = Numerics.Histogram
module Confidence = Numerics.Confidence
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-6) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_erf_values () =
  checkf "erf 0" 0. (Special.erf 0.);
  checkf "erf 1" ~eps:2e-7 0.8427007929 (Special.erf 1.);
  checkf "erf -1" ~eps:2e-7 (-0.8427007929) (Special.erf (-1.));
  checkf "erf 3 ~ 1" ~eps:1e-4 1. (Special.erf 3.);
  checkf "erfc complement" ~eps:1e-12 1. (Special.erf 0.5 +. Special.erfc 0.5)

let test_normal_cdf () =
  checkf "Phi(0)" 0.5 (Special.normal_cdf 0.);
  checkf "Phi(1.96)" ~eps:1e-4 0.975 (Special.normal_cdf 1.96);
  checkf "scaled" ~eps:1e-7 (Special.normal_cdf 1.) (Special.normal_cdf ~mu:10. ~sigma:2. 12.)

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p -> checkf "quantile roundtrip" ~eps:1e-6 p (Special.normal_cdf (Special.normal_quantile p)))
    [ 0.001; 0.025; 0.31; 0.5; 0.8; 0.975; 0.999 ]

let test_normal_quantile_known () =
  checkf "z(0.975)" ~eps:1e-4 1.959964 (Special.normal_quantile 0.975);
  checkf "z(0.5)" ~eps:1e-7 0. (Special.normal_quantile 0.5)

let test_quantile_domain () =
  checkb "p=0 rejected" true
    (try
       ignore (Special.normal_quantile 0.);
       false
     with Invalid_argument _ -> true)

let test_log_gamma () =
  checkf "gamma(1)" ~eps:1e-10 0. (Special.log_gamma 1.);
  checkf "gamma(5) = 24" ~eps:1e-8 (log 24.) (Special.log_gamma 5.);
  checkf "gamma(0.5) = sqrt pi" ~eps:1e-8 (0.5 *. log Float.pi) (Special.log_gamma 0.5)

let test_log_factorial () =
  checkf "10!" ~eps:1e-6 (log 3628800.) (Special.log_factorial 10);
  checkf "0!" ~eps:1e-10 0. (Special.log_factorial 0)

let qcheck_gamma_recurrence =
  QCheck.Test.make ~name:"log_gamma satisfies Gamma(x+1) = x Gamma(x)" ~count:200
    QCheck.(float_range 0.1 50.)
    (fun x ->
      Float.abs (Special.log_gamma (x +. 1.) -. (Special.log_gamma x +. log x)) < 1e-7)

let test_histogram_counts () =
  let h = Histogram.create ~bins:4 ~lo:0. ~hi:4. () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 3.9; -5.; 10. ];
  Alcotest.(check (array int)) "bin counts" [| 2; 2; 0; 2 |] (Histogram.counts h);
  Alcotest.(check int) "total" 6 (Histogram.total h);
  Alcotest.(check int) "mode" 0 (Histogram.mode_bin h)

let test_histogram_of_array () =
  let h = Histogram.of_array ~bins:2 [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "total" 4 (Histogram.total h);
  let lo, _ = Histogram.bin_bounds h 0 in
  checkf "lower bound" 0. lo

let test_histogram_degenerate () =
  let h = Histogram.of_array [| 5.; 5.; 5. |] in
  Alcotest.(check int) "all in one place" 3 (Histogram.total h)

let test_histogram_render () =
  let h = Histogram.of_array [| 1.; 2.; 2.; 3. |] in
  checkb "renders bars" true (String.contains (Histogram.render h) '#')

let test_confidence_basic () =
  let rng = Rng.create ~seed:131 () in
  let samples = Array.init 1_000 (fun _ -> Numerics.Distributions.gaussian rng ~mu:5. ~sigma:2.) in
  let ci = Confidence.mean_interval samples in
  checkb "contains true mean" true (Confidence.contains ci 5.);
  checkb "narrow at n=1000" true (ci.Confidence.hi -. ci.Confidence.lo < 0.5)

let test_confidence_coverage () =
  (* ~95% of intervals should cover the true mean. *)
  let rng = Rng.create ~seed:132 () in
  let covered = ref 0 in
  let trials = 300 in
  for _ = 1 to trials do
    let samples = Array.init 50 (fun _ -> Numerics.Distributions.gaussian rng ~mu:0. ~sigma:1.) in
    if Confidence.contains (Confidence.mean_interval samples) 0. then incr covered
  done;
  let rate = float_of_int !covered /. float_of_int trials in
  checkb "coverage near 95%" true (rate > 0.88 && rate <= 1.)

let test_confidence_level_effect () =
  let samples = Array.init 100 float_of_int in
  let narrow = Confidence.mean_interval ~level:0.5 samples in
  let wide = Confidence.mean_interval ~level:0.99 samples in
  checkb "higher level, wider interval" true
    (wide.Confidence.hi -. wide.Confidence.lo > narrow.Confidence.hi -. narrow.Confidence.lo)

let test_confidence_validation () =
  checkb "n=1 rejected" true
    (try
       ignore (Confidence.mean_interval [| 1. |]);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "special functions",
      [
        Alcotest.test_case "erf" `Quick test_erf_values;
        Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
        Alcotest.test_case "quantile roundtrip" `Quick test_normal_quantile_roundtrip;
        Alcotest.test_case "quantile known" `Quick test_normal_quantile_known;
        Alcotest.test_case "quantile domain" `Quick test_quantile_domain;
        Alcotest.test_case "log gamma" `Quick test_log_gamma;
        Alcotest.test_case "log factorial" `Quick test_log_factorial;
        QCheck_alcotest.to_alcotest qcheck_gamma_recurrence;
      ] );
    ( "histogram",
      [
        Alcotest.test_case "counts" `Quick test_histogram_counts;
        Alcotest.test_case "of_array" `Quick test_histogram_of_array;
        Alcotest.test_case "degenerate" `Quick test_histogram_degenerate;
        Alcotest.test_case "render" `Quick test_histogram_render;
      ] );
    ( "confidence intervals",
      [
        Alcotest.test_case "basic" `Quick test_confidence_basic;
        Alcotest.test_case "coverage" `Quick test_confidence_coverage;
        Alcotest.test_case "level effect" `Quick test_confidence_level_effect;
        Alcotest.test_case "validation" `Quick test_confidence_validation;
      ] );
  ]
