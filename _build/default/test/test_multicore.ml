(* Multicore execution (OCaml 5 domains): determinism and correctness
   regardless of the domain count. *)

module Parallel = Numerics.Parallel
module Multicore = Sortlib.Multicore
module Parallel_matmul = Linalg.Parallel_matmul
module Matrix = Linalg.Matrix
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)

let test_parallel_for_covers () =
  let n = 1000 in
  let hits = Array.make n 0 in
  Parallel.parallel_for ~domains:4 n (fun i -> hits.(i) <- hits.(i) + 1);
  checkb "each index exactly once" true (Array.for_all (fun h -> h = 1) hits)

let test_parallel_for_sequential_fallback () =
  let n = 10 in
  let hits = Array.make n 0 in
  Parallel.parallel_for ~domains:1 n (fun i -> hits.(i) <- hits.(i) + 1);
  checkb "sequential covers" true (Array.for_all (fun h -> h = 1) hits)

let test_parallel_for_empty () =
  Parallel.parallel_for ~domains:4 0 (fun _ -> Alcotest.fail "no indices expected")

let test_parallel_map () =
  let a = Array.init 257 (fun i -> i) in
  let doubled = Parallel.parallel_map_array ~domains:3 (fun x -> 2 * x) a in
  Alcotest.(check (array int)) "map" (Array.map (fun x -> 2 * x) a) doubled

let test_parallel_map_empty () =
  Alcotest.(check (array int)) "empty map" [||]
    (Parallel.parallel_map_array ~domains:2 (fun x -> x) [||])

let test_multicore_sort_correct () =
  let rng = Rng.create ~seed:121 () in
  let keys = Array.init 50_000 (fun _ -> Rng.float rng) in
  let reference = Array.copy keys in
  Array.sort Float.compare reference;
  List.iter
    (fun domains ->
      let out = Multicore.sort ~domains (Rng.create ~seed:5 ()) keys ~p:8 in
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "%d domains" domains)
        reference out)
    [ 1; 2; 4 ]

let test_multicore_sort_deterministic () =
  let rng = Rng.create ~seed:122 () in
  let keys = Array.init 10_000 (fun _ -> Rng.float rng) in
  let run domains = Multicore.sort ~domains (Rng.create ~seed:9 ()) keys ~p:6 in
  Alcotest.(check (array (float 0.))) "domain count does not change output" (run 1) (run 4)

let test_multicore_speedup_runs () =
  let seq, par, speedup = Multicore.speedup ~domains:2 (Rng.create ~seed:123 ()) ~n:50_000 ~p:4 in
  checkb "times positive" true (seq > 0. && par > 0. && speedup > 0.)

let test_parallel_matmul_correct () =
  let rng = Rng.create ~seed:124 () in
  let a = Matrix.random rng ~rows:37 ~cols:23 in
  let b = Matrix.random rng ~rows:23 ~cols:31 in
  List.iter
    (fun domains ->
      checkb
        (Printf.sprintf "%d domains" domains)
        true
        (Matrix.approx_equal (Parallel_matmul.multiply ~domains a b) (Matrix.mul a b)))
    [ 1; 2; 4 ]

let test_heterogeneous_bands () =
  let star = Platform.Star.of_speeds [ 1.; 3. ] in
  Alcotest.(check (array int)) "1:3 split of 100 rows" [| 25; 75 |]
    (Parallel_matmul.heterogeneous_bands star ~rows:100)

let qcheck_parallel_matmul =
  QCheck.Test.make ~name:"parallel matmul equals sequential" ~count:20
    QCheck.(pair (int_range 1 20) (int_range 1 4))
    (fun (n, domains) ->
      let rng = Rng.create ~seed:n () in
      let a = Matrix.random rng ~rows:n ~cols:n in
      let b = Matrix.random rng ~rows:n ~cols:n in
      Matrix.approx_equal (Parallel_matmul.multiply ~domains a b) (Matrix.mul a b))

let suites =
  [
    ( "multicore",
      [
        Alcotest.test_case "parallel_for covers" `Quick test_parallel_for_covers;
        Alcotest.test_case "sequential fallback" `Quick test_parallel_for_sequential_fallback;
        Alcotest.test_case "empty range" `Quick test_parallel_for_empty;
        Alcotest.test_case "parallel map" `Quick test_parallel_map;
        Alcotest.test_case "empty map" `Quick test_parallel_map_empty;
        Alcotest.test_case "multicore sort correct" `Quick test_multicore_sort_correct;
        Alcotest.test_case "multicore sort deterministic" `Quick
          test_multicore_sort_deterministic;
        Alcotest.test_case "speedup harness runs" `Quick test_multicore_speedup_runs;
        Alcotest.test_case "parallel matmul" `Quick test_parallel_matmul_correct;
        Alcotest.test_case "heterogeneous bands" `Quick test_heterogeneous_bands;
        QCheck_alcotest.to_alcotest qcheck_parallel_matmul;
      ] );
  ]
