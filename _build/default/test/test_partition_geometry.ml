(* Rectangles, layouts, and the communication lower bounds. *)

module Rect = Partition.Rect
module Layout = Partition.Layout
module Lower_bound = Partition.Lower_bound

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rect = Rect.make ~x:0.25 ~y:0.5 ~width:0.5 ~height:0.25

let test_rect_measures () =
  checkf "area" 0.125 (Rect.area rect);
  checkf "half perimeter" 0.75 (Rect.half_perimeter rect);
  checkf "x_max" 0.75 (Rect.x_max rect);
  checkf "y_max" 0.75 (Rect.y_max rect)

let test_rect_contains () =
  checkb "inside" true (Rect.contains rect ~x:0.5 ~y:0.6);
  checkb "low edge closed" true (Rect.contains rect ~x:0.25 ~y:0.5);
  checkb "high edge open" false (Rect.contains rect ~x:0.75 ~y:0.6);
  checkb "outside" false (Rect.contains rect ~x:0.1 ~y:0.1)

let test_rect_intersection () =
  let other = Rect.make ~x:0.5 ~y:0.5 ~width:0.5 ~height:0.5 in
  checkf "overlap area" 0.0625 (Rect.intersection_area rect other);
  checkb "overlaps" true (Rect.overlaps rect other);
  let disjoint = Rect.make ~x:0.8 ~y:0. ~width:0.2 ~height:0.2 in
  checkf "no overlap" 0. (Rect.intersection_area rect disjoint);
  checkb "touching edges do not overlap" false
    (Rect.overlaps rect (Rect.make ~x:0.75 ~y:0.5 ~width:0.25 ~height:0.25))

let test_rect_negative () =
  Alcotest.check_raises "negative size" (Invalid_argument "Rect.make: negative dimensions")
    (fun () -> ignore (Rect.make ~x:0. ~y:0. ~width:(-1.) ~height:1.))

let quadrants =
  {
    Layout.rects =
      [|
        Rect.make ~x:0. ~y:0. ~width:0.5 ~height:0.5;
        Rect.make ~x:0.5 ~y:0. ~width:0.5 ~height:0.5;
        Rect.make ~x:0. ~y:0.5 ~width:0.5 ~height:0.5;
        Rect.make ~x:0.5 ~y:0.5 ~width:0.5 ~height:0.5;
      |];
  }

let test_layout_valid () =
  match Layout.validate quadrants with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_layout_measures () =
  checkf "sum half perims" 4. (Layout.sum_half_perimeters quadrants);
  checkf "max half perim" 1. (Layout.max_half_perimeter quadrants);
  checkf "comm volume" 400. (Layout.communication_volume quadrants ~n:100.)

let test_layout_detects_overlap () =
  let bad =
    {
      Layout.rects =
        [|
          Rect.make ~x:0. ~y:0. ~width:0.7 ~height:1.;
          Rect.make ~x:0.5 ~y:0. ~width:0.5 ~height:1.;
        |];
    }
  in
  match Layout.validate bad with
  | Ok () -> Alcotest.fail "overlap not detected"
  | Error msg -> checkb "mentions overlap" true (String.length msg > 0)

let test_layout_detects_gap () =
  let bad =
    {
      Layout.rects =
        [|
          Rect.make ~x:0. ~y:0. ~width:0.5 ~height:1.;
          Rect.make ~x:0.5 ~y:0. ~width:0.4 ~height:1.;
        |];
    }
  in
  match Layout.validate bad with
  | Ok () -> Alcotest.fail "gap not detected"
  | Error _ -> ()

let test_layout_detects_out_of_square () =
  let bad = { Layout.rects = [| Rect.make ~x:0.5 ~y:0. ~width:0.6 ~height:1. |] } in
  match Layout.validate bad with
  | Ok () -> Alcotest.fail "escape not detected"
  | Error _ -> ()

let test_layout_area_prescription () =
  match Layout.validate ~expected_areas:[| 0.25; 0.25; 0.25; 0.25 |] quadrants with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_layout_area_mismatch () =
  match Layout.validate ~expected_areas:[| 0.5; 0.2; 0.2; 0.1 |] quadrants with
  | Ok () -> Alcotest.fail "area mismatch not detected"
  | Error _ -> ()

let test_layout_render () =
  let picture = Layout.render ~width:8 ~height:4 quadrants in
  checkb "render covers" true (not (String.contains picture '?'))

let test_lower_bound_square_is_best () =
  (* Four equal areas: LB = 2·4·√(1/4) = 4, achieved by quadrants. *)
  checkf "LB equals optimum" 4. (Lower_bound.peri_sum ~areas:[| 0.25; 0.25; 0.25; 0.25 |]);
  checkf "peri-max LB" 1. (Lower_bound.peri_max ~areas:[| 0.25; 0.25; 0.25; 0.25 |])

let test_lower_bound_communication () =
  let star = Platform.Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  (* 2N·Σ√(1/4) = 2N·2 = 4N. *)
  checkf "LBComm" 400. (Lower_bound.communication star ~n:100.)

let qcheck_lower_bound_vs_any_layout =
  (* Any valid layout's PERI-SUM is at least the lower bound of its own
     areas: here exercised on random 1-column stacks. *)
  QCheck.Test.make ~name:"column stack cost >= lower bound" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.01 1.))
    (fun raw ->
      let total = List.fold_left ( +. ) 0. raw in
      let areas = Array.of_list (List.map (fun a -> a /. total) raw) in
      let layout =
        let y = ref 0. in
        {
          Layout.rects =
            Array.map
              (fun a ->
                let r = Rect.make ~x:0. ~y:!y ~width:1. ~height:a in
                y := !y +. a;
                r)
              areas;
        }
      in
      Layout.sum_half_perimeters layout >= Lower_bound.peri_sum ~areas -. 1e-9)

let suites =
  [
    ( "rect",
      [
        Alcotest.test_case "measures" `Quick test_rect_measures;
        Alcotest.test_case "contains" `Quick test_rect_contains;
        Alcotest.test_case "intersection" `Quick test_rect_intersection;
        Alcotest.test_case "negative rejected" `Quick test_rect_negative;
      ] );
    ( "layout",
      [
        Alcotest.test_case "valid tiling" `Quick test_layout_valid;
        Alcotest.test_case "measures" `Quick test_layout_measures;
        Alcotest.test_case "overlap detected" `Quick test_layout_detects_overlap;
        Alcotest.test_case "gap detected" `Quick test_layout_detects_gap;
        Alcotest.test_case "escape detected" `Quick test_layout_detects_out_of_square;
        Alcotest.test_case "areas prescribed" `Quick test_layout_area_prescription;
        Alcotest.test_case "area mismatch detected" `Quick test_layout_area_mismatch;
        Alcotest.test_case "render" `Quick test_layout_render;
      ] );
    ( "lower bounds",
      [
        Alcotest.test_case "square optimum" `Quick test_lower_bound_square_is_best;
        Alcotest.test_case "LBComm" `Quick test_lower_bound_communication;
        QCheck_alcotest.to_alcotest qcheck_lower_bound_vs_any_layout;
      ] );
  ]
