(* The parallel timing model of §3. *)

module Parallel_model = Sortlib.Parallel_model
module Star = Platform.Star

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let log2 x = log x /. log 2.

let test_phase_costs () =
  let star = Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  let timing =
    Parallel_model.evaluate ~with_communication:false star
      ~bucket_sizes:[| 250; 250; 250; 250 |] ~s:16
  in
  checkf "phase1 = sp·log2(sp)" (64. *. log2 64.) timing.Parallel_model.phase1;
  checkf "phase2 = N·log2 p" (1000. *. 2.) timing.Parallel_model.phase2;
  checkf "phase3 = (N/p)·log2(N/p)" (250. *. log2 250.) timing.Parallel_model.phase3

let test_phase3_uses_slowest_loaded_worker () =
  let star = Star.of_speeds [ 1.; 10. ] in
  (* Platform order is slowest first; give the slow worker the big
     bucket so it dominates phase 3. *)
  let timing =
    Parallel_model.evaluate ~with_communication:false star ~bucket_sizes:[| 1000; 1000 |]
      ~s:4
  in
  checkf "slow worker dominates" (1000. *. log2 1000.) timing.Parallel_model.phase3

let test_divisible_fraction_matches_formula () =
  (* Equal buckets: fraction = 1 - log p / log N exactly. *)
  let star = Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  let timing =
    Parallel_model.evaluate star ~bucket_sizes:[| 256; 256; 256; 256 |] ~s:8
  in
  checkf "1 - log p/log N" ~eps:1e-9
    (1. -. (log 4. /. log 1024.))
    timing.Parallel_model.divisible_fraction

let test_speedup_definition () =
  let star = Star.of_speeds [ 1.; 1. ] in
  let timing = Parallel_model.evaluate star ~bucket_sizes:[| 100; 100 |] ~s:2 in
  checkf "speedup = seq/total"
    (timing.Parallel_model.sequential /. timing.Parallel_model.total)
    timing.Parallel_model.speedup

let test_speedup_grows_with_n () =
  (* §3's optimality is asymptotic: the master preprocessing washes out
     as N grows, so the speedup at fixed p must improve with N. *)
  let star = Star.of_speeds (List.init 8 (fun _ -> 1.)) in
  let speedup n =
    let sizes = Array.make 8 (n / 8) in
    (Parallel_model.evaluate ~with_communication:false star ~bucket_sizes:sizes ~s:64)
      .Parallel_model.speedup
  in
  checkb "speedup improves with N" true (speedup 80_000 > speedup 8_000)

let test_bucket_count_checked () =
  let star = Star.of_speeds [ 1.; 1. ] in
  Alcotest.check_raises "bucket arity"
    (Invalid_argument "Parallel_model.evaluate: one bucket per worker required") (fun () ->
      ignore (Parallel_model.evaluate star ~bucket_sizes:[| 10 |] ~s:2))

let test_communication_term () =
  let star = Star.of_speeds ~bandwidth:0.5 [ 1.; 1. ] in
  let with_comm = Parallel_model.evaluate star ~bucket_sizes:[| 100; 100 |] ~s:2 in
  let without =
    Parallel_model.evaluate ~with_communication:false star ~bucket_sizes:[| 100; 100 |]
      ~s:2
  in
  checkf "comm term = data·c" 200. with_comm.Parallel_model.communication;
  checkf "no comm when disabled" 0. without.Parallel_model.communication;
  checkb "total includes comm" true
    (with_comm.Parallel_model.total > without.Parallel_model.total)

let qcheck_fraction_increases_with_n =
  QCheck.Test.make ~name:"divisible fraction increases with N at fixed p" ~count:50
    QCheck.(int_range 2 10)
    (fun p ->
      let star = Star.of_speeds (List.init p (fun _ -> 1.)) in
      let fraction n =
        let sizes = Array.make p (n / p) in
        (Parallel_model.evaluate star ~bucket_sizes:sizes ~s:16)
          .Parallel_model.divisible_fraction
      in
      fraction 100_000 > fraction 1_000)

let suites =
  [
    ( "sort timing model",
      [
        Alcotest.test_case "phase costs" `Quick test_phase_costs;
        Alcotest.test_case "phase3 slowest loaded" `Quick test_phase3_uses_slowest_loaded_worker;
        Alcotest.test_case "divisible fraction" `Quick test_divisible_fraction_matches_formula;
        Alcotest.test_case "speedup definition" `Quick test_speedup_definition;
        Alcotest.test_case "speedup grows with N" `Quick test_speedup_grows_with_n;
        Alcotest.test_case "bucket count checked" `Quick test_bucket_count_checked;
        Alcotest.test_case "communication term" `Quick test_communication_term;
        QCheck_alcotest.to_alcotest qcheck_fraction_increases_with_n;
      ] );
  ]
