(* Blocked LU factorization. *)

module Lu = Linalg.Lu
module Matrix = Linalg.Matrix
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let well_conditioned rng n =
  (* Random matrix with boosted diagonal: comfortably non-singular. *)
  Matrix.init ~rows:n ~cols:n (fun i j ->
      Rng.uniform rng (-1.) 1. +. (if i = j then 4. else 0.))

let test_reconstruct () =
  let rng = Rng.create ~seed:141 () in
  let a = well_conditioned rng 20 in
  let f = Lu.factorize ~block:4 a in
  checkb "P^-1 L U = A" true (Matrix.approx_equal ~tol:1e-8 (Lu.reconstruct f) a)

let test_block_sizes_agree () =
  let rng = Rng.create ~seed:142 () in
  let a = well_conditioned rng 17 in
  let reference = Lu.reconstruct (Lu.factorize ~block:1 a) in
  List.iter
    (fun block ->
      checkb
        (Printf.sprintf "block %d" block)
        true
        (Matrix.approx_equal ~tol:1e-8 (Lu.reconstruct (Lu.factorize ~block a)) reference))
    [ 2; 5; 17; 64 ]

let test_solve () =
  let rng = Rng.create ~seed:143 () in
  let n = 15 in
  let a = well_conditioned rng n in
  let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
  (* rhs = A·x. *)
  let rhs =
    Array.init n (fun i ->
        let acc = ref 0. in
        for j = 0 to n - 1 do
          acc := !acc +. (Matrix.get a i j *. x_true.(j))
        done;
        !acc)
  in
  let x = Lu.solve (Lu.factorize a) rhs in
  Array.iteri (fun i v -> checkf "solution" ~eps:1e-7 x_true.(i) v) x

let test_determinant_identity () =
  checkf "det I = 1" 1. (Lu.determinant (Lu.factorize (Matrix.identity 6)))

let test_determinant_known () =
  (* [[2 0][0 3]] has det 6; swapping rows flips the sign. *)
  let a = Matrix.init ~rows:2 ~cols:2 (fun i j ->
      match (i, j) with 0, 0 -> 0. | 0, 1 -> 3. | 1, 0 -> 2. | _ -> 0.)
  in
  checkf "det with pivot swap" ~eps:1e-12 (-6.) (Lu.determinant (Lu.factorize a))

let test_pivoting_needed () =
  (* Zero leading entry forces a pivot swap; factorization must still
     succeed. *)
  let a = Matrix.init ~rows:3 ~cols:3 (fun i j ->
      match (i, j) with
      | 0, 0 -> 0. | 0, 1 -> 1. | 0, 2 -> 2.
      | 1, 0 -> 3. | 1, 1 -> 1. | 1, 2 -> 0.
      | _, 0 -> 1. | _, 1 -> 1. | _, _ -> 1.)
  in
  let f = Lu.factorize a in
  checkb "reconstructs" true (Matrix.approx_equal ~tol:1e-9 (Lu.reconstruct f) a)

let test_singular_rejected () =
  let a = Matrix.init ~rows:3 ~cols:3 (fun i _ -> float_of_int i) in
  checkb "singular detected" true
    (try
       ignore (Lu.factorize a);
       false
     with Failure _ -> true)

let test_flops () =
  checkf "2n^3/3" (2. /. 3. *. 1e9) (Lu.flop_count ~n:1000)

let qcheck_lu_roundtrip =
  QCheck.Test.make ~name:"LU reconstructs random well-conditioned matrices" ~count:40
    QCheck.(pair (int_range 1 24) (int_range 1 8))
    (fun (n, block) ->
      let rng = Rng.create ~seed:(n + (block * 100)) () in
      let a = well_conditioned rng n in
      let f = Lu.factorize ~block a in
      Matrix.approx_equal ~tol:1e-7 (Lu.reconstruct f) a)

let qcheck_solve_residual =
  QCheck.Test.make ~name:"LU solve has tiny residual" ~count:40
    QCheck.(int_range 1 20)
    (fun n ->
      let rng = Rng.create ~seed:n () in
      let a = well_conditioned rng n in
      let rhs = Array.init n (fun _ -> Rng.uniform rng (-5.) 5.) in
      let x = Lu.solve (Lu.factorize a) rhs in
      let residual = ref 0. in
      for i = 0 to n - 1 do
        let acc = ref 0. in
        for j = 0 to n - 1 do
          acc := !acc +. (Matrix.get a i j *. x.(j))
        done;
        residual := Float.max !residual (Float.abs (!acc -. rhs.(i)))
      done;
      !residual < 1e-7)

let suites =
  [
    ( "LU factorization",
      [
        Alcotest.test_case "reconstruct" `Quick test_reconstruct;
        Alcotest.test_case "block sizes agree" `Quick test_block_sizes_agree;
        Alcotest.test_case "solve" `Quick test_solve;
        Alcotest.test_case "det identity" `Quick test_determinant_identity;
        Alcotest.test_case "det with swap" `Quick test_determinant_known;
        Alcotest.test_case "pivoting" `Quick test_pivoting_needed;
        Alcotest.test_case "singular rejected" `Quick test_singular_rejected;
        Alcotest.test_case "flop count" `Quick test_flops;
        QCheck_alcotest.to_alcotest qcheck_lu_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_solve_residual;
      ] );
  ]
