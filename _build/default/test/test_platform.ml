(* Platform model: processors, star platforms, profiles, metrics. *)

module Processor = Platform.Processor
module Star = Platform.Star
module Profiles = Platform.Profiles
module Metrics = Platform.Metrics

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_processor_accessors () =
  let p = Processor.make ~id:1 ~speed:4. ~bandwidth:2. ~latency:0.5 () in
  checkf "w" 0.25 (Processor.w p);
  checkf "c" 0.5 (Processor.c p);
  checkf "compute" 2.5 (Processor.compute_time p ~work:10.);
  checkf "transfer" 5.5 (Processor.transfer_time p ~data:10.);
  checkf "empty transfer free" 0. (Processor.transfer_time p ~data:0.)

let test_processor_validation () =
  Alcotest.check_raises "bad speed" (Invalid_argument "Processor.make: speed must be positive")
    (fun () -> ignore (Processor.make ~id:1 ~speed:0. ()));
  Alcotest.check_raises "bad latency"
    (Invalid_argument "Processor.make: latency must be non-negative") (fun () ->
      ignore (Processor.make ~id:1 ~speed:1. ~latency:(-1.) ()))

let test_star_sorted () =
  let star = Star.of_speeds [ 3.; 1.; 2. ] in
  Alcotest.(check (list (float 0.)))
    "speeds sorted ascending" [ 1.; 2.; 3. ]
    (Array.to_list (Star.speeds star))

let test_star_totals () =
  let star = Star.of_speeds [ 1.; 2.; 3. ] in
  checkf "total speed" 6. (Star.total_speed star);
  checkf "relative sum" 1. (Numerics.Kahan.sum (Star.relative_speeds star));
  checkf "slowest" 1. (Star.slowest star).Processor.speed;
  checkf "fastest" 3. (Star.fastest star).Processor.speed

let test_star_empty () =
  Alcotest.check_raises "empty platform"
    (Invalid_argument "Star.create: at least one worker required") (fun () ->
      ignore (Star.of_speeds []))

let test_homogeneity () =
  checkb "homogeneous" true (Star.is_homogeneous (Star.of_speeds [ 2.; 2.; 2. ]));
  checkb "heterogeneous" false (Star.is_homogeneous (Star.of_speeds [ 1.; 2. ]))

let test_workers_copy () =
  let star = Star.of_speeds [ 1.; 2. ] in
  let workers = Star.workers star in
  workers.(0) <- Processor.make ~id:99 ~speed:100. ();
  checkf "platform unaffected" 1. (Star.worker star 0).Processor.speed

let generate profile p =
  Profiles.generate (Numerics.Rng.create ~seed:123 ()) ~p profile

let test_profile_sizes () =
  List.iter
    (fun profile ->
      Alcotest.(check int)
        (Profiles.name profile ^ " size")
        17
        (Star.size (generate profile 17)))
    [ Profiles.paper_homogeneous; Profiles.paper_uniform; Profiles.paper_lognormal ]

let test_profile_homogeneous () =
  checkb "all speed 1" true (Star.is_homogeneous (generate Profiles.paper_homogeneous 10))

let test_profile_uniform_range () =
  let star = generate Profiles.paper_uniform 200 in
  Array.iter
    (fun s -> checkb "uniform in [1,100)" true (s >= 1. && s < 100.))
    (Star.speeds star)

let test_profile_bimodal () =
  let star = generate (Profiles.Bimodal { slow = 2.; factor = 5. }) 10 in
  let speeds = Star.speeds star in
  checkb "five slow" true (Array.for_all (fun s -> s = 2.) (Array.sub speeds 0 5));
  checkb "five fast" true (Array.for_all (fun s -> s = 10.) (Array.sub speeds 5 5))

let test_profile_bimodal_odd () =
  let star = generate (Profiles.Bimodal { slow = 1.; factor = 3. }) 5 in
  let slow_count = Array.fold_left (fun acc s -> if s = 1. then acc + 1 else acc) 0 (Star.speeds star) in
  Alcotest.(check int) "odd platform split" 3 slow_count

let test_profile_names () =
  List.iter
    (fun name ->
      match Profiles.of_name name with
      | Some profile -> Alcotest.(check string) "roundtrip" name (Profiles.name profile)
      | None -> Alcotest.fail ("unknown profile " ^ name))
    [ "homogeneous"; "uniform"; "lognormal"; "bimodal" ];
  checkb "bogus name rejected" true (Profiles.of_name "bogus" = None)

let test_metrics_speed_ratio () =
  checkf "ratio" 4. (Metrics.speed_ratio (Star.of_speeds [ 1.; 2.; 4. ]))

let test_metrics_cv () =
  checkf "cv homogeneous" 0. (Metrics.coefficient_of_variation (Star.of_speeds [ 2.; 2. ]))

let test_metrics_lower_bound_quantity () =
  (* p equal workers: Σ√(1/p) = √p. *)
  let star = Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  checkf "sum sqrt relative" 2. (Metrics.sum_sqrt_relative star)

let test_metrics_bimodal_bound () =
  checkf "k=1 bound" 1. (Metrics.bimodal_rho_bound ~factor:1.);
  checkf "k=9 bound" 2.5 (Metrics.bimodal_rho_bound ~factor:9.)

let test_metrics_hom_over_het () =
  (* Homogeneous platform: (4/7)·p/(1·p) = 4/7. *)
  let star = Star.of_speeds [ 1.; 1.; 1. ] in
  checkf "homogeneous bound 4/7" (4. /. 7.) (Metrics.hom_over_het_bound star)

let qcheck_relative_speeds =
  QCheck.Test.make ~name:"relative speeds sum to 1 and order preserved" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range 0.01 1000.))
    (fun speeds ->
      let star = Star.of_speeds (Array.to_list speeds) in
      let x = Star.relative_speeds star in
      Float.abs (Numerics.Kahan.sum x -. 1.) < 1e-9
      && Array.for_all Fun.id (Array.init (Array.length x - 1) (fun i -> x.(i) <= x.(i + 1) +. 1e-12)))

let suites =
  [
    ( "processor",
      [
        Alcotest.test_case "accessors" `Quick test_processor_accessors;
        Alcotest.test_case "validation" `Quick test_processor_validation;
      ] );
    ( "star platform",
      [
        Alcotest.test_case "sorted by speed" `Quick test_star_sorted;
        Alcotest.test_case "totals" `Quick test_star_totals;
        Alcotest.test_case "empty rejected" `Quick test_star_empty;
        Alcotest.test_case "homogeneity" `Quick test_homogeneity;
        Alcotest.test_case "workers returns copy" `Quick test_workers_copy;
        QCheck_alcotest.to_alcotest qcheck_relative_speeds;
      ] );
    ( "profiles",
      [
        Alcotest.test_case "sizes" `Quick test_profile_sizes;
        Alcotest.test_case "homogeneous" `Quick test_profile_homogeneous;
        Alcotest.test_case "uniform range" `Quick test_profile_uniform_range;
        Alcotest.test_case "bimodal halves" `Quick test_profile_bimodal;
        Alcotest.test_case "bimodal odd p" `Quick test_profile_bimodal_odd;
        Alcotest.test_case "name roundtrip" `Quick test_profile_names;
      ] );
    ( "metrics",
      [
        Alcotest.test_case "speed ratio" `Quick test_metrics_speed_ratio;
        Alcotest.test_case "cv" `Quick test_metrics_cv;
        Alcotest.test_case "sum sqrt relative" `Quick test_metrics_lower_bound_quantity;
        Alcotest.test_case "bimodal bound" `Quick test_metrics_bimodal_bound;
        Alcotest.test_case "hom/het bound" `Quick test_metrics_hom_over_het;
      ] );
  ]
