(* The max-min fair fluid network model and its use in the shared-
   backbone strategy evaluation. *)

module Fluid = Des.Fluid
module Timed = Partition.Timed
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let flow = Fluid.make_flow

let rate rates id = List.assoc id rates

let test_single_flow_full_capacity () =
  let links = [| { Fluid.capacity = 5. } |] in
  let rates = Fluid.max_min_rates ~links ~active:[ flow ~id:0 ~size:10. ~links:[ 0 ] () ] in
  checkf "gets the link" 5. (rate rates 0)

let test_equal_sharing () =
  let links = [| { Fluid.capacity = 6. } |] in
  let active = List.init 3 (fun id -> flow ~id ~size:1. ~links:[ 0 ] ()) in
  let rates = Fluid.max_min_rates ~links ~active in
  List.iter (fun (_, r) -> checkf "fair third" 2. r) rates

let test_classic_max_min () =
  (* Textbook instance: link A (cap 1) carries f0 and f1; link B (cap
     10) carries f1 and f2.  Max-min: f0 = f1 = 0.5 (A bottleneck),
     then f2 grows to 9.5 on B. *)
  let links = [| { Fluid.capacity = 1. }; { Fluid.capacity = 10. } |] in
  let active =
    [
      flow ~id:0 ~size:1. ~links:[ 0 ] ();
      flow ~id:1 ~size:1. ~links:[ 0; 1 ] ();
      flow ~id:2 ~size:1. ~links:[ 1 ] ();
    ]
  in
  let rates = Fluid.max_min_rates ~links ~active in
  checkf "f0" 0.5 (rate rates 0);
  checkf "f1" 0.5 (rate rates 1);
  checkf "f2" 9.5 (rate rates 2)

let test_run_two_phases () =
  (* Two equal flows on one cap-2 link: both at rate 1 until the small
     one (size 1) ends at t=1; the big one (size 3) then runs at rate 2:
     remaining 2 -> finishes at t=2. *)
  let links = [| { Fluid.capacity = 2. } |] in
  let flows =
    [ flow ~id:0 ~size:1. ~links:[ 0 ] (); flow ~id:1 ~size:3. ~links:[ 0 ] () ]
  in
  match Fluid.run ~links ~flows with
  | [ first; second ] ->
      Alcotest.(check int) "small first" 0 first.Fluid.flow;
      checkf "t=1" 1. first.Fluid.finish;
      checkf "t=2" 2. second.Fluid.finish
  | _ -> Alcotest.fail "expected two completions"

let test_run_arrival () =
  (* One flow from t=0 (size 4, cap 2 alone).  A second (size 1)
     arrives at t=1: both run at rate 1; the newcomer ends at t=2, by
     when the first has 1 unit left and speeds back up to rate 2,
     finishing at t=2.5. *)
  let links = [| { Fluid.capacity = 2. } |] in
  let flows =
    [ flow ~id:0 ~size:4. ~links:[ 0 ] (); flow ~id:1 ~size:1. ~links:[ 0 ] ~start:1. () ]
  in
  match Fluid.run ~links ~flows with
  | [ a; b ] ->
      Alcotest.(check int) "late flow first" 1 a.Fluid.flow;
      checkf "t=2" 2. a.Fluid.finish;
      checkf "t=2.5" 2.5 b.Fluid.finish
  | _ -> Alcotest.fail "expected two completions"

let test_idle_gap () =
  let links = [| { Fluid.capacity = 1. } |] in
  let flows = [ flow ~id:0 ~size:1. ~links:[ 0 ] ~start:5. () ] in
  checkf "starts after gap" 6. (Fluid.makespan ~links ~flows)

let test_validation () =
  checkb "bad size" true
    (try
       ignore (flow ~id:0 ~size:0. ~links:[ 0 ] ());
       false
     with Invalid_argument _ -> true);
  let links = [| { Fluid.capacity = 1. } |] in
  checkb "bad link index" true
    (try
       ignore (Fluid.run ~links ~flows:[ flow ~id:0 ~size:1. ~links:[ 3 ] () ]);
       false
     with Invalid_argument _ -> true);
  checkb "duplicate ids" true
    (try
       ignore
         (Fluid.run ~links
            ~flows:[ flow ~id:0 ~size:1. ~links:[ 0 ] (); flow ~id:0 ~size:1. ~links:[ 0 ] () ]);
       false
     with Invalid_argument _ -> true)

let qcheck_conservation =
  (* Work conservation on a single shared link: total bytes / capacity
     = makespan when flows keep the link busy from t=0. *)
  QCheck.Test.make ~name:"fluid: single busy link is work-conserving" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 10) (float_range 0.1 10.))
    (fun sizes ->
      QCheck.assume (sizes <> []);
      let links = [| { Des.Fluid.capacity = 2. } |] in
      let flows = List.mapi (fun id size -> flow ~id ~size ~links:[ 0 ] ()) sizes in
      let expected = List.fold_left ( +. ) 0. sizes /. 2. in
      Float.abs (Fluid.makespan ~links ~flows -. expected) < 1e-6)

let qcheck_rates_feasible =
  QCheck.Test.make ~name:"fluid: max-min rates never exceed capacities" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) (float_range 0.5 8.))
        (list_of_size Gen.(int_range 1 12) (pair (int_range 0 7) (int_range 0 7))))
    (fun (capacities, routes) ->
      QCheck.assume (capacities <> [] && routes <> []);
      let nlinks = List.length capacities in
      let links =
        Array.of_list (List.map (fun c -> { Des.Fluid.capacity = c }) capacities)
      in
      let active =
        List.mapi
          (fun id (a, b) ->
            let route = List.sort_uniq compare [ a mod nlinks; b mod nlinks ] in
            flow ~id ~size:1. ~links:route ())
          routes
      in
      let rates = Fluid.max_min_rates ~links ~active in
      let usage = Array.make nlinks 0. in
      List.iter
        (fun f ->
          List.iter (fun l -> usage.(l) <- usage.(l) +. rate rates f.Fluid.id) f.Fluid.links)
        active;
      Array.for_all2 (fun used l -> used <= l.Fluid.capacity +. 1e-6) usage links)

let test_backbone_converges_to_independent () =
  let rng = Rng.create ~seed:64 () in
  let star = Platform.Profiles.generate ~bandwidth:2. rng ~p:8 Platform.Profiles.paper_uniform in
  let independent = Timed.het star ~n:500. in
  let shared = Timed.het_shared_backbone star ~n:500. ~backbone:1e9 in
  checkf "ample backbone = independent links" ~eps:1e-6 independent.Timed.makespan
    shared.Timed.makespan

let test_backbone_contention_slows () =
  let rng = Rng.create ~seed:65 () in
  let star = Platform.Profiles.generate ~bandwidth:2. rng ~p:8 Platform.Profiles.paper_uniform in
  let independent = Timed.het star ~n:500. in
  let shared = Timed.het_shared_backbone star ~n:500. ~backbone:0.5 in
  checkb "tight backbone slower" true
    (shared.Timed.makespan > independent.Timed.makespan);
  checkb "comm bound respected" true
    (shared.Timed.comm_makespan
    >= (500. *. Partition.Lower_bound.peri_sum ~areas:(Star.relative_speeds star) /. 0.5)
       -. 1e-6)

let suites =
  [
    ( "fluid network",
      [
        Alcotest.test_case "single flow" `Quick test_single_flow_full_capacity;
        Alcotest.test_case "equal sharing" `Quick test_equal_sharing;
        Alcotest.test_case "classic max-min" `Quick test_classic_max_min;
        Alcotest.test_case "two-phase run" `Quick test_run_two_phases;
        Alcotest.test_case "dynamic arrival" `Quick test_run_arrival;
        Alcotest.test_case "idle gap" `Quick test_idle_gap;
        Alcotest.test_case "validation" `Quick test_validation;
        QCheck_alcotest.to_alcotest qcheck_conservation;
        QCheck_alcotest.to_alcotest qcheck_rates_feasible;
      ] );
    ( "shared backbone",
      [
        Alcotest.test_case "ample backbone" `Quick test_backbone_converges_to_independent;
        Alcotest.test_case "contention slows" `Quick test_backbone_contention_slows;
      ] );
  ]
