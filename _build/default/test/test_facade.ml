(* The public Core façade. *)

let checkb = Alcotest.(check bool)

let test_version () = checkb "semver-ish" true (String.length Core.version >= 5)

let test_partition_for_speeds () =
  let layout = Core.partition_for_speeds [| 1.; 2.; 3. |] in
  match Core.Layout.validate layout with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_partition_for_speeds_proportional () =
  let layout = Core.partition_for_speeds [| 1.; 3. |] in
  let areas = Core.Layout.areas layout in
  (* Areas follow platform (ascending speed) order: 1/4 then 3/4. *)
  Alcotest.(check (float 1e-9)) "slow share" 0.25 areas.(0);
  Alcotest.(check (float 1e-9)) "fast share" 0.75 areas.(1)

let test_communication_ratios () =
  let star = Core.Star.of_speeds [ 1.; 5.; 10. ] in
  let r = Core.communication_ratios star in
  checkb "het sane" true (r.Core.Strategies.het >= 1. && r.Core.Strategies.het < 1.75)

let test_no_free_lunch () =
  Alcotest.(check (float 1e-12)) "alpha=2 p=10" 0.9 (Core.no_free_lunch ~alpha:2. ~p:10);
  checkb "monotone in p" true
    (Core.no_free_lunch ~alpha:2. ~p:100 > Core.no_free_lunch ~alpha:2. ~p:10)

let test_aliases_usable () =
  (* A user-level end-to-end flow straight through the façade. *)
  let rng = Core.Rng.create ~seed:1 () in
  let star = Core.Profiles.generate rng ~p:4 Core.Profiles.paper_uniform in
  let allocation = Core.Linear_dlt.parallel_allocation star ~total:10. in
  checkb "façade flow works" true
    (Float.abs (Numerics.Kahan.sum allocation -. 10.) < 1e-9)

let suites =
  [
    ( "core façade",
      [
        Alcotest.test_case "version" `Quick test_version;
        Alcotest.test_case "partition_for_speeds" `Quick test_partition_for_speeds;
        Alcotest.test_case "proportional areas" `Quick test_partition_for_speeds_proportional;
        Alcotest.test_case "communication_ratios" `Quick test_communication_ratios;
        Alcotest.test_case "no_free_lunch" `Quick test_no_free_lunch;
        Alcotest.test_case "aliases usable" `Quick test_aliases_usable;
      ] );
  ]
