(* Effect-handler process layer over the DES engine. *)

module Process = Des.Process

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_single_process_waits () =
  let world = Process.create () in
  let log = ref [] in
  Process.spawn world (fun () ->
      log := ("start", Process.now world) :: !log;
      Process.wait 3.;
      log := ("middle", Process.now world) :: !log;
      Process.wait 2.;
      log := ("end", Process.now world) :: !log);
  Process.run world;
  Alcotest.(check (list (pair string (float 0.))))
    "timeline"
    [ ("start", 0.); ("middle", 3.); ("end", 5.) ]
    (List.rev !log)

let test_interleaving () =
  let world = Process.create () in
  let log = ref [] in
  let proc name d1 d2 =
    Process.spawn world (fun () ->
        Process.wait d1;
        log := (name, Process.now world) :: !log;
        Process.wait d2;
        log := (name, Process.now world) :: !log)
  in
  proc "a" 1. 4.;
  proc "b" 2. 1.;
  Process.run world;
  Alcotest.(check (list (pair string (float 0.))))
    "interleaved"
    [ ("a", 1.); ("b", 2.); ("b", 3.); ("a", 5.) ]
    (List.rev !log)

let test_resource_mutual_exclusion () =
  (* Three jobs of 2 time units over a capacity-1 resource: strictly
     serialized, ending at 2, 4, 6. *)
  let world = Process.create () in
  let server = Process.resource world ~capacity:1 in
  let ends = ref [] in
  for _ = 1 to 3 do
    Process.spawn world (fun () ->
        Process.with_resource server (fun () -> Process.wait 2.);
        ends := Process.now world :: !ends)
  done;
  Process.run world;
  Alcotest.(check (list (float 1e-9))) "serialized" [ 2.; 4.; 6. ] (List.rev !ends)

let test_resource_capacity_two () =
  let world = Process.create () in
  let server = Process.resource world ~capacity:2 in
  let ends = ref [] in
  for _ = 1 to 4 do
    Process.spawn world (fun () ->
        Process.with_resource server (fun () -> Process.wait 5.);
        ends := Process.now world :: !ends)
  done;
  Process.run world;
  Alcotest.(check (list (float 1e-9))) "two at a time" [ 5.; 5.; 10.; 10. ] (List.rev !ends)

let test_fifo_grant_order () =
  let world = Process.create () in
  let server = Process.resource world ~capacity:1 in
  let order = ref [] in
  List.iter
    (fun (name, arrival) ->
      Process.spawn world (fun () ->
          Process.wait arrival;
          Process.with_resource server (fun () ->
              order := name :: !order;
              Process.wait 10.)))
    [ ("first", 1.); ("second", 2.); ("third", 3.) ];
  Process.run world;
  Alcotest.(check (list string)) "FIFO waiters" [ "first"; "second"; "third" ]
    (List.rev !order)

let test_nested_spawn () =
  let world = Process.create () in
  let log = ref [] in
  Process.spawn world (fun () ->
      Process.wait 1.;
      Process.spawn world (fun () ->
          Process.wait 2.;
          log := ("child", Process.now world) :: !log);
      Process.wait 0.5;
      log := ("parent", Process.now world) :: !log);
  Process.run world;
  Alcotest.(check (list (pair string (float 0.))))
    "nested"
    [ ("parent", 1.5); ("child", 3.) ]
    (List.rev !log)

let test_outside_process_rejected () =
  checkb "wait outside" true
    (try
       Process.wait 1.;
       false
     with Process.Outside_process -> true);
  let world = Process.create () in
  let server = Process.resource world ~capacity:1 in
  checkb "acquire outside" true
    (try
       Process.acquire server;
       false
     with Process.Outside_process -> true)

let test_release_over_capacity () =
  let world = Process.create () in
  let server = Process.resource world ~capacity:1 in
  checkb "double release rejected" true
    (try
       Process.release server;
       false
     with Invalid_argument _ -> true)

let test_master_worker_in_process_style () =
  (* The one-port master-worker pattern written as processes: the
     master's port is a capacity-1 resource; workers fetch then
     compute.  With the shares of the one-port closed form, every
     worker must finish at the analytic makespan. *)
  let star = Platform.Star.of_speeds ~bandwidth:2. [ 1.; 2.; 4. ] in
  let total = 60. in
  let allocation = Dlt.Linear.one_port_allocation star ~total in
  let order = Dlt.Linear.one_port_order star in
  let expected = Dlt.Linear.one_port_makespan star ~total in
  let world = Process.create () in
  let port = Process.resource world ~capacity:1 in
  let finishes = Array.make (Platform.Star.size star) 0. in
  (* Spawn in activation order so the FIFO port grants match the
     closed form. *)
  Array.iter
    (fun i ->
      let proc = Platform.Star.worker star i in
      Process.spawn world (fun () ->
          Process.with_resource port (fun () ->
              Process.wait (Platform.Processor.transfer_time proc ~data:allocation.(i)));
          Process.wait (Platform.Processor.compute_time proc ~work:allocation.(i));
          finishes.(i) <- Process.now world))
    order;
  Process.run world;
  Array.iter (fun f -> checkf "equal finish at makespan" ~eps:1e-6 expected f) finishes

let suites =
  [
    ( "process simulation (effects)",
      [
        Alcotest.test_case "single process" `Quick test_single_process_waits;
        Alcotest.test_case "interleaving" `Quick test_interleaving;
        Alcotest.test_case "mutual exclusion" `Quick test_resource_mutual_exclusion;
        Alcotest.test_case "capacity 2" `Quick test_resource_capacity_two;
        Alcotest.test_case "FIFO grants" `Quick test_fifo_grant_order;
        Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
        Alcotest.test_case "outside process" `Quick test_outside_process_rejected;
        Alcotest.test_case "release over capacity" `Quick test_release_over_capacity;
        Alcotest.test_case "master-worker equals closed form" `Quick
          test_master_worker_in_process_style;
      ] );
  ]
