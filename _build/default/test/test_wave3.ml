(* Exhaustive column-partition validation, polynomial multiplication,
   and steady-state throughput. *)

module Exact = Partition.Exact
module Column_partition = Partition.Column_partition
module Poly = Linalg.Poly
module Zone = Linalg.Zone
module Steady_state = Dlt.Steady_state
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- exhaustive vs DP --- *)

let random_areas rng p =
  let raw = Array.init p (fun _ -> Rng.uniform rng 0.02 1.) in
  let total = Numerics.Kahan.sum raw in
  Array.map (fun a -> a /. total) raw

let test_dp_matches_exhaustive_peri_sum () =
  (* The structure theorem: contiguous-sorted columns lose nothing.  The
     DP must equal the exhaustive optimum over ALL set partitions. *)
  let rng = Rng.create ~seed:71 () in
  for _ = 1 to 40 do
    let p = 1 + Rng.int rng 7 in
    let areas = random_areas rng p in
    let dp = (Column_partition.peri_sum ~areas).Column_partition.cost in
    let exact = Exact.peri_sum_cost ~areas in
    checkf "DP = exhaustive (PERI-SUM)" ~eps:1e-9 exact dp
  done

let test_dp_close_to_exhaustive_peri_max () =
  (* Contiguity is NOT guaranteed for the min-max objective: the DP is a
     heuristic over the contiguous-sorted class.  It must never beat the
     exhaustive optimum and stays within a few percent in practice
     (worst observed gap 1.8% over 200 random instances). *)
  let rng = Rng.create ~seed:72 () in
  for _ = 1 to 40 do
    let p = 1 + Rng.int rng 7 in
    let areas = random_areas rng p in
    let dp = (Column_partition.peri_max ~areas).Column_partition.cost in
    let exact = Exact.peri_max_cost ~areas in
    checkb "DP >= exhaustive" true (dp >= exact -. 1e-9);
    checkb "DP within 5% of exhaustive" true (dp <= 1.05 *. exact)
  done

let test_exact_size_guard () =
  checkb "too many areas rejected" true
    (try
       ignore (Exact.peri_sum_cost ~areas:(Array.make 11 (1. /. 11.)));
       false
     with Invalid_argument _ -> true)

(* --- polynomial multiplication --- *)

let test_schoolbook_known () =
  (* (1 + 2x)(3 + x) = 3 + 7x + 2x². *)
  Alcotest.(check (array (float 1e-12)))
    "known product" [| 3.; 7.; 2. |]
    (Poly.schoolbook [| 1.; 2. |] [| 3.; 1. |])

let test_schoolbook_degrees () =
  let result = Poly.schoolbook (Array.make 5 1.) (Array.make 3 1.) in
  Alcotest.(check int) "degree" 7 (Array.length result)

let test_karatsuba_matches_schoolbook () =
  let rng = Rng.create ~seed:73 () in
  let a = Array.init 257 (fun _ -> Rng.uniform rng (-1.) 1.) in
  let b = Array.init 257 (fun _ -> Rng.uniform rng (-1.) 1.) in
  let reference = Poly.schoolbook a b in
  let fast = Poly.karatsuba ~cutoff:8 a b in
  Alcotest.(check int) "same length" (Array.length reference) (Array.length fast);
  Array.iteri (fun i v -> checkf "coefficient" ~eps:1e-7 v fast.(i)) reference

let qcheck_karatsuba =
  QCheck.Test.make ~name:"karatsuba equals schoolbook" ~count:50
    QCheck.(pair (int_range 1 96) small_int)
    (fun (n, seed) ->
      let rng = Rng.create ~seed () in
      let a = Array.init n (fun _ -> Rng.uniform rng (-2.) 2.) in
      let b = Array.init n (fun _ -> Rng.uniform rng (-2.) 2.) in
      let reference = Poly.schoolbook a b in
      let fast = Poly.karatsuba ~cutoff:4 a b in
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-6) reference fast)

let test_distributed_poly_correct () =
  let rng = Rng.create ~seed:74 () in
  let n = 48 in
  let a = Array.init n (fun _ -> Rng.uniform rng (-1.) 1.) in
  let b = Array.init n (fun _ -> Rng.uniform rng (-1.) 1.) in
  let star = Star.of_speeds [ 1.; 2.; 5. ] in
  let zones = Zone.for_platform star ~n in
  let stats = Poly.distributed ~zones a b in
  let reference = Poly.schoolbook a b in
  Array.iteri (fun i v -> checkf "coefficient" ~eps:1e-9 v stats.Poly.result.(i)) reference;
  Alcotest.(check int) "comm = half perimeters" (Zone.half_perimeter_sum zones)
    stats.Poly.total

let test_distributed_poly_rejects_bad_zones () =
  checkb "bad tiling rejected" true
    (try
       ignore
         (Poly.distributed
            ~zones:[| { Zone.row0 = 0; rows = 2; col0 = 0; cols = 4 } |]
            [| 1.; 2.; 3.; 4. |] [| 1.; 2.; 3.; 4. |]);
       false
     with Invalid_argument _ -> true)

(* --- steady state --- *)

let test_parallel_throughput () =
  (* speeds 1,2,4 with bandwidth 3: rates min(s,bw) = 1,2,3. *)
  let star = Star.of_speeds ~bandwidth:3. [ 1.; 2.; 4. ] in
  let sol = Steady_state.parallel star in
  checkf "throughput" 6. sol.Steady_state.throughput

let test_one_port_compute_bound () =
  (* Huge bandwidth: the port is no constraint and throughput = Σs. *)
  let star = Star.of_speeds ~bandwidth:1e9 [ 1.; 2.; 4. ] in
  let sol = Steady_state.one_port star in
  checkf "compute bound" ~eps:1e-6 7. sol.Steady_state.throughput;
  checkf "efficiency 1" ~eps:1e-6 1. (Steady_state.efficiency star)

let test_one_port_port_bound () =
  (* bandwidth 1 everywhere: the port serves at most 1 load/time. *)
  let star = Star.of_speeds ~bandwidth:1. [ 10.; 10.; 10. ] in
  let sol = Steady_state.one_port star in
  checkf "port bound" ~eps:1e-9 1. sol.Steady_state.throughput

let test_one_port_greedy_prefers_fast_links () =
  let star =
    Star.create
      [
        Platform.Processor.make ~id:1 ~speed:5. ~bandwidth:1. ();
        Platform.Processor.make ~id:2 ~speed:5. ~bandwidth:10. ();
      ]
  in
  let sol = Steady_state.one_port star in
  (* The bw=10 worker is saturated first (5 rate, 0.5 port), the rest
     of the port feeds the bw=1 worker (0.5 rate). *)
  let workers = Star.workers star in
  Array.iteri
    (fun i (proc : Platform.Processor.t) ->
      if proc.Platform.Processor.bandwidth = 10. then
        checkf "fast link saturated" 5. sol.Steady_state.rates.(i)
      else checkf "slow link gets leftover" 0.5 sol.Steady_state.rates.(i))
    workers;
  checkf "total" 5.5 sol.Steady_state.throughput

let qcheck_one_port_feasible =
  QCheck.Test.make ~name:"steady state: one-port solution is feasible and maximal-ish"
    ~count:200
    QCheck.(
      list_of_size Gen.(int_range 1 10) (pair (float_range 0.1 10.) (float_range 0.1 10.)))
    (fun specs ->
      QCheck.assume (specs <> []);
      let procs =
        List.map (fun (s, bw) -> Platform.Processor.make ~id:0 ~speed:s ~bandwidth:bw ()) specs
      in
      let star = Star.create procs in
      let sol = Steady_state.one_port star in
      let workers = Star.workers star in
      let port_use = ref 0. in
      let feasible = ref true in
      Array.iteri
        (fun i rate ->
          let proc = workers.(i) in
          if rate > proc.Platform.Processor.speed +. 1e-9 then feasible := false;
          port_use := !port_use +. (rate /. proc.Platform.Processor.bandwidth))
        sol.Steady_state.rates;
      (* Feasibility, and tightness: either the port is saturated or all
         workers are compute-saturated. *)
      let all_saturated =
        Array.for_all2
          (fun rate (proc : Platform.Processor.t) ->
            Float.abs (rate -. proc.Platform.Processor.speed) < 1e-9)
          sol.Steady_state.rates workers
      in
      !feasible && !port_use <= 1. +. 1e-9
      && (all_saturated || Float.abs (!port_use -. 1.) < 1e-9))

let suites =
  [
    ( "exhaustive column partition",
      [
        Alcotest.test_case "DP = exhaustive (PERI-SUM)" `Slow
          test_dp_matches_exhaustive_peri_sum;
        Alcotest.test_case "DP near exhaustive (PERI-MAX)" `Slow
          test_dp_close_to_exhaustive_peri_max;
        Alcotest.test_case "size guard" `Quick test_exact_size_guard;
      ] );
    ( "polynomial multiplication",
      [
        Alcotest.test_case "schoolbook known" `Quick test_schoolbook_known;
        Alcotest.test_case "degrees" `Quick test_schoolbook_degrees;
        Alcotest.test_case "karatsuba matches" `Quick test_karatsuba_matches_schoolbook;
        Alcotest.test_case "distributed correct" `Quick test_distributed_poly_correct;
        Alcotest.test_case "bad zones rejected" `Quick test_distributed_poly_rejects_bad_zones;
        QCheck_alcotest.to_alcotest qcheck_karatsuba;
      ] );
    ( "steady state",
      [
        Alcotest.test_case "parallel throughput" `Quick test_parallel_throughput;
        Alcotest.test_case "compute bound" `Quick test_one_port_compute_bound;
        Alcotest.test_case "port bound" `Quick test_one_port_port_bound;
        Alcotest.test_case "greedy link choice" `Quick test_one_port_greedy_prefers_fast_links;
        QCheck_alcotest.to_alcotest qcheck_one_port_feasible;
      ] );
  ]
