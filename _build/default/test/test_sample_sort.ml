(* Sample sort (paper §3): correctness of the sort itself, splitter
   selection, bucketing, and the concentration measurements. *)

module Sample_sort = Sortlib.Sample_sort
module Concentration = Sortlib.Concentration
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)

let is_sorted cmp a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if cmp a.(i) a.(i + 1) > 0 then ok := false
  done;
  !ok

let multiset_equal a b =
  let a = Array.copy a and b = Array.copy b in
  Array.sort compare a;
  Array.sort compare b;
  a = b

let test_sort_random () =
  let rng = Rng.create ~seed:1 () in
  let keys = Array.init 10_000 (fun _ -> Rng.float rng) in
  let out = Sample_sort.sort ~cmp:Float.compare rng keys ~p:8 in
  checkb "sorted" true (is_sorted Float.compare out);
  checkb "permutation" true (multiset_equal keys out)

let test_sort_with_duplicates () =
  let rng = Rng.create ~seed:2 () in
  let keys = Array.init 5_000 (fun _ -> float_of_int (Rng.int rng 10)) in
  let out = Sample_sort.sort ~cmp:Float.compare rng keys ~p:4 in
  checkb "sorted with dups" true (is_sorted Float.compare out);
  checkb "dups preserved" true (multiset_equal keys out)

let test_sort_already_sorted () =
  let rng = Rng.create ~seed:3 () in
  let keys = Array.init 1_000 float_of_int in
  let out = Sample_sort.sort ~cmp:Float.compare rng keys ~p:4 in
  checkb "sorted input" true (is_sorted Float.compare out)

let test_sort_reverse () =
  let rng = Rng.create ~seed:4 () in
  let keys = Array.init 1_000 (fun i -> float_of_int (1_000 - i)) in
  let out = Sample_sort.sort ~cmp:Float.compare rng keys ~p:4 in
  checkb "reverse input" true (is_sorted Float.compare out)

let test_sort_empty_and_tiny () =
  let rng = Rng.create ~seed:5 () in
  Alcotest.(check (array (float 0.))) "empty" [||]
    (Sample_sort.sort ~cmp:Float.compare rng [||] ~p:4);
  Alcotest.(check (array (float 0.))) "singleton" [| 1. |]
    (Sample_sort.sort ~cmp:Float.compare rng [| 1. |] ~p:4);
  Alcotest.(check (array (float 0.))) "p=1" [| 1.; 2.; 3. |]
    (Sample_sort.sort ~cmp:Float.compare rng [| 2.; 3.; 1. |] ~p:1)

let test_sort_p_exceeds_n () =
  let rng = Rng.create ~seed:6 () in
  let keys = [| 5.; 2.; 9. |] in
  let out = Sample_sort.sort ~cmp:Float.compare rng keys ~p:16 in
  checkb "p > n still sorts" true (is_sorted Float.compare out);
  checkb "p > n permutes" true (multiset_equal keys out)

let test_splitters_sorted () =
  let rng = Rng.create ~seed:7 () in
  let keys = Array.init 10_000 (fun _ -> Rng.float rng) in
  let splitters = Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p:8 ~s:64 in
  Alcotest.(check int) "p-1 splitters" 7 (Array.length splitters);
  checkb "splitters sorted" true (is_sorted Float.compare splitters)

let test_bucket_index_bounds () =
  let splitters = [| 10.; 20.; 30. |] in
  Alcotest.(check int) "below first" 0 (Sample_sort.bucket_index ~cmp:Float.compare splitters 5.);
  Alcotest.(check int) "middle" 2 (Sample_sort.bucket_index ~cmp:Float.compare splitters 25.);
  Alcotest.(check int) "above last" 3 (Sample_sort.bucket_index ~cmp:Float.compare splitters 35.);
  Alcotest.(check int) "equal goes right" 1
    (Sample_sort.bucket_index ~cmp:Float.compare splitters 10.)

let qcheck_bucket_index_vs_linear =
  QCheck.Test.make ~name:"bucket_index agrees with linear scan" ~count:300
    QCheck.(pair (list_of_size Gen.(int_range 0 20) (float_range 0. 100.)) (float_range 0. 100.))
    (fun (raw, key) ->
      let splitters = Array.of_list (List.sort_uniq Float.compare raw) in
      let linear =
        let rec scan i =
          if i >= Array.length splitters then i
          else if key < splitters.(i) then i
          else scan (i + 1)
        in
        scan 0
      in
      Sample_sort.bucket_index ~cmp:Float.compare splitters key = linear)

let test_partition_respects_splitters () =
  let rng = Rng.create ~seed:8 () in
  let keys = Array.init 5_000 (fun _ -> Rng.float rng) in
  let splitters = Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p:8 ~s:32 in
  let buckets = Sample_sort.partition ~cmp:Float.compare keys ~splitters in
  Array.iteri
    (fun b contents ->
      Array.iter
        (fun key ->
          if b > 0 then checkb "above previous splitter" true (key >= splitters.(b - 1));
          if b < Array.length splitters then
            checkb "below own splitter" true (key < splitters.(b)))
        contents)
    buckets.Sample_sort.contents

let test_partition_conserves () =
  let rng = Rng.create ~seed:9 () in
  let keys = Array.init 3_000 (fun _ -> Rng.float rng) in
  let splitters = Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p:5 ~s:16 in
  let buckets = Sample_sort.partition ~cmp:Float.compare keys ~splitters in
  let total =
    Array.fold_left (fun acc c -> acc + Array.length c) 0 buckets.Sample_sort.contents
  in
  Alcotest.(check int) "all keys bucketed" 3_000 total

let test_weighted_splitters_proportions () =
  let rng = Rng.create ~seed:10 () in
  let keys = Array.init 200_000 (fun _ -> Rng.float rng) in
  let weights = [| 1.; 3. |] in
  let splitters =
    Sample_sort.weighted_splitters ~cmp:Float.compare rng keys ~weights ~s:4096
  in
  Alcotest.(check int) "one splitter" 1 (Array.length splitters);
  (* Bucket 0 should get ~25% of uniform keys. *)
  checkb "splitter near first quartile" true (Float.abs (splitters.(0) -. 0.25) < 0.05)

let test_default_oversampling_grows () =
  checkb "s grows with n" true
    (Sample_sort.default_oversampling ~n:1_000_000
    > Sample_sort.default_oversampling ~n:1_000)

let test_max_bucket_ratio_uniform () =
  let buckets =
    { Sample_sort.splitters = [| 1. |]; contents = [| [| 0.; 0. |]; [| 2.; 2. |] |] }
  in
  Alcotest.(check (float 1e-9)) "balanced ratio" 1. (Sample_sort.max_bucket_ratio buckets)

let test_concentration_envelope () =
  (* With the paper's oversampling, exceeding the envelope should be
     rare (probability O(n^-1/3)); at n = 20000 and 40 trials we allow a
     small number of violations. *)
  let rng = Rng.create ~seed:11 () in
  let report =
    Concentration.run rng ~keys:Concentration.uniform_keys ~n:20_000 ~p:8 ~trials:40
  in
  checkb "mostly within envelope" true (report.Concentration.exceed_count <= 4);
  checkb "mean ratio sane" true
    (report.Concentration.ratios.Numerics.Stats.mean > 1.
    && report.Concentration.ratios.Numerics.Stats.mean < report.Concentration.envelope)

let test_concentration_skewed_keys () =
  (* Sample sort is distribution-independent: skewed populations behave
     like uniform ones. *)
  let rng = Rng.create ~seed:12 () in
  let report =
    Concentration.run rng ~keys:(Concentration.zipf_like_keys ~skew:3.) ~n:20_000 ~p:8
      ~trials:20
  in
  checkb "skew does not break concentration" true
    (report.Concentration.ratios.Numerics.Stats.mean < report.Concentration.envelope)

let qcheck_sort_correct =
  QCheck.Test.make ~name:"sample sort sorts arbitrary int arrays" ~count:100
    QCheck.(pair small_int (array_of_size Gen.(int_range 0 500) (int_range (-1000) 1000)))
    (fun (seed, keys) ->
      let rng = Rng.create ~seed () in
      let out = Sample_sort.sort ~cmp:Int.compare rng keys ~p:7 in
      is_sorted Int.compare out
      && multiset_equal (Array.map float_of_int keys) (Array.map float_of_int out))

let test_hetero_sort_correct () =
  let rng = Rng.create ~seed:13 () in
  let star = Platform.Star.of_speeds [ 1.; 2.; 5. ] in
  let keys = Array.init 30_000 (fun _ -> Rng.float rng) in
  let result = Sortlib.Hetero_sort.run rng star ~keys in
  checkb "hetero sorted" true (is_sorted Float.compare result.Sortlib.Hetero_sort.sorted);
  checkb "hetero permutation" true (multiset_equal keys result.Sortlib.Hetero_sort.sorted)

let test_hetero_sort_balance () =
  let rng = Rng.create ~seed:14 () in
  let star = Platform.Star.of_speeds [ 1.; 4. ] in
  let keys = Array.init 100_000 (fun _ -> Rng.float rng) in
  let result = Sortlib.Hetero_sort.run rng star ~keys in
  let sizes = result.Sortlib.Hetero_sort.bucket_sizes in
  (* Speed-4 worker should receive about 4x the keys. *)
  let ratio = float_of_int sizes.(1) /. float_of_int sizes.(0) in
  checkb "buckets follow speeds" true (ratio > 3. && ratio < 5.)

let suites =
  [
    ( "sample sort",
      [
        Alcotest.test_case "random input" `Quick test_sort_random;
        Alcotest.test_case "duplicates" `Quick test_sort_with_duplicates;
        Alcotest.test_case "already sorted" `Quick test_sort_already_sorted;
        Alcotest.test_case "reverse" `Quick test_sort_reverse;
        Alcotest.test_case "empty and tiny" `Quick test_sort_empty_and_tiny;
        Alcotest.test_case "p > n" `Quick test_sort_p_exceeds_n;
        Alcotest.test_case "splitters sorted" `Quick test_splitters_sorted;
        Alcotest.test_case "bucket_index bounds" `Quick test_bucket_index_bounds;
        Alcotest.test_case "partition respects splitters" `Quick
          test_partition_respects_splitters;
        Alcotest.test_case "partition conserves" `Quick test_partition_conserves;
        Alcotest.test_case "weighted splitters" `Quick test_weighted_splitters_proportions;
        Alcotest.test_case "oversampling grows" `Quick test_default_oversampling_grows;
        Alcotest.test_case "max bucket ratio" `Quick test_max_bucket_ratio_uniform;
        QCheck_alcotest.to_alcotest qcheck_bucket_index_vs_linear;
        QCheck_alcotest.to_alcotest qcheck_sort_correct;
      ] );
    ( "concentration",
      [
        Alcotest.test_case "envelope holds" `Slow test_concentration_envelope;
        Alcotest.test_case "skewed keys" `Slow test_concentration_skewed_keys;
      ] );
    ( "heterogeneous sort",
      [
        Alcotest.test_case "correct" `Quick test_hetero_sort_correct;
        Alcotest.test_case "balance follows speeds" `Quick test_hetero_sort_balance;
      ] );
  ]
