(* MapReduce job pipelines and the recurring-event engine helper. *)

module Pipeline = Mapreduce.Pipeline
module Engine_mr = Mapreduce.Engine
module Jobs = Mapreduce.Jobs
module Task = Mapreduce.Task
module Matrix = Linalg.Matrix
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let star = Star.of_speeds [ 1.; 2. ]

let test_matmul_pipeline () =
  let rng = Rng.create ~seed:151 () in
  let n = 8 and chunk = 2 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let steps = Pipeline.matmul ~a:(Matrix.get a) ~b:(Matrix.get b) ~n ~chunk in
  let result, stats = Pipeline.run star ~init:(Array.make (n * n) 0.) ~steps in
  let reference = Matrix.mul a b in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      checkf "C(i,j)" ~eps:1e-9 (Matrix.get reference i j) result.((i * n) + j)
    done
  done;
  Alcotest.(check int) "two steps" 2 (List.length stats.Pipeline.steps);
  checkb "stats accumulate" true
    (stats.Pipeline.communication > 0. && stats.Pipeline.makespan > 0.)

let test_pipeline_step_order () =
  (* A two-step counter pipeline: step 2 sees step 1's result. *)
  let counting name =
    Pipeline.Step
      {
        name;
        job =
          (fun count ->
            {
              Engine_mr.tasks = [| Task.make ~id:0 ~data_ids:[| 0 |] ~cost:1. |];
              execute = (fun _ -> [ ("count", count + 1) ]);
              block_size = (fun _ -> 1.);
            });
        reduce = (fun _ vs -> List.fold_left ( + ) 0 vs);
        collect = (fun _ output -> List.assoc "count" output);
      }
  in
  let final, stats = Pipeline.run star ~init:0 ~steps:[ counting "one"; counting "two" ] in
  Alcotest.(check int) "threaded state" 2 final;
  Alcotest.(check (list string)) "step names" [ "one"; "two" ]
    (List.map (fun (n, _, _) -> n) stats.Pipeline.steps)

let test_pipeline_empty () =
  let final, stats = Pipeline.run star ~init:42 ~steps:[] in
  Alcotest.(check int) "state unchanged" 42 final;
  checkf "no cost" 0. stats.Pipeline.communication

let test_engine_every () =
  let engine = Des.Engine.create () in
  let fired = ref [] in
  let cancel =
    Des.Engine.every engine ~period:2. (fun e -> fired := Des.Engine.now e :: !fired)
  in
  Des.Engine.schedule engine ~time:7. (fun _ -> cancel ());
  Des.Engine.run engine;
  Alcotest.(check (list (float 0.))) "three ticks then cancelled" [ 2.; 4.; 6. ]
    (List.rev !fired)

let test_engine_every_start () =
  let engine = Des.Engine.create () in
  let count = ref 0 in
  let cancel = Des.Engine.every engine ~period:1. ~start:0.5 (fun _ -> incr count) in
  Des.Engine.schedule engine ~time:3. (fun _ -> cancel ());
  Des.Engine.run engine;
  (* Fires at 0.5, 1.5, 2.5. *)
  Alcotest.(check int) "three firings" 3 !count

let test_engine_every_bad_period () =
  let engine = Des.Engine.create () in
  checkb "non-positive period rejected" true
    (try
       ignore (Des.Engine.every engine ~period:0. (fun _ -> ()) : Des.Engine.cancel);
       false
     with Des.Engine.Causality _ -> true)

let suites =
  [
    ( "mapreduce pipeline",
      [
        Alcotest.test_case "matmul pipeline" `Quick test_matmul_pipeline;
        Alcotest.test_case "step order" `Quick test_pipeline_step_order;
        Alcotest.test_case "empty pipeline" `Quick test_pipeline_empty;
      ] );
    ( "recurring events",
      [
        Alcotest.test_case "every + cancel" `Quick test_engine_every;
        Alcotest.test_case "explicit start" `Quick test_engine_every_start;
        Alcotest.test_case "bad period" `Quick test_engine_every_bad_period;
      ] );
  ]
