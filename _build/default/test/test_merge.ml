(* K-way merge. *)

module Merge = Sortlib.Merge
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)

let test_two_way () =
  Alcotest.(check (array (float 0.))) "interleaved" [| 1.; 2.; 3.; 4.; 5.; 6. |]
    (Merge.two_way [| 1.; 3.; 5. |] [| 2.; 4.; 6. |]);
  Alcotest.(check (array (float 0.))) "one empty" [| 1.; 2. |]
    (Merge.two_way [||] [| 1.; 2. |]);
  Alcotest.(check (array (float 0.))) "duplicates" [| 1.; 1.; 1. |]
    (Merge.two_way [| 1.; 1. |] [| 1. |])

let test_k_way_basic () =
  Alcotest.(check (array (float 0.))) "three runs" [| 0.; 1.; 2.; 3.; 4.; 5. |]
    (Merge.k_way [ [| 0.; 3. |]; [| 1.; 4. |]; [| 2.; 5. |] ])

let test_k_way_edges () =
  Alcotest.(check (array (float 0.))) "no runs" [||] (Merge.k_way []);
  Alcotest.(check (array (float 0.))) "all empty" [||] (Merge.k_way [ [||]; [||] ]);
  Alcotest.(check (array (float 0.))) "single run" [| 1.; 2. |] (Merge.k_way [ [| 1.; 2. |] ])

let test_k_way_copy_semantics () =
  let run = [| 1.; 2. |] in
  let out = Merge.k_way [ run ] in
  out.(0) <- 99.;
  Alcotest.(check (float 0.)) "input untouched" 1. run.(0)

let qcheck_k_way =
  QCheck.Test.make ~name:"k-way merge equals sort of concatenation" ~count:200
    QCheck.(
      list_of_size Gen.(int_range 0 8)
        (array_of_size Gen.(int_range 0 50) (float_range (-100.) 100.)))
    (fun raw ->
      let runs = List.map (fun r -> Array.sort Float.compare r; r) raw in
      let merged = Merge.k_way runs in
      let reference = Array.concat runs in
      Array.sort Float.compare reference;
      merged = reference)

let qcheck_k_way_stays_sorted =
  QCheck.Test.make ~name:"k-way output is sorted" ~count:200
    QCheck.(
      list_of_size Gen.(int_range 1 6)
        (array_of_size Gen.(int_range 1 100) (float_range 0. 1.)))
    (fun raw ->
      let runs = List.map (fun r -> Array.sort Float.compare r; r) raw in
      Merge.is_sorted (Merge.k_way runs))

let suites =
  [
    ( "k-way merge",
      [
        Alcotest.test_case "two-way" `Quick test_two_way;
        Alcotest.test_case "k-way basic" `Quick test_k_way_basic;
        Alcotest.test_case "edges" `Quick test_k_way_edges;
        Alcotest.test_case "copy semantics" `Quick test_k_way_copy_semantics;
        QCheck_alcotest.to_alcotest qcheck_k_way;
        QCheck_alcotest.to_alcotest qcheck_k_way_stays_sorted;
      ] );
  ]
