(* The sequence-of-jobs matmul (paper §2, option (ii), ref [25]). *)

module Jobs = Mapreduce.Jobs
module Engine = Mapreduce.Engine
module Scheduler = Mapreduce.Scheduler
module Matrix = Linalg.Matrix
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let star = Star.of_speeds [ 1.; 2.; 3. ]

let run_two_phase a b n chunk =
  let phase1 = Jobs.matmul_phase1 ~a:(Matrix.get a) ~b:(Matrix.get b) ~n ~chunk in
  let merge _ = function [ block ] -> block | blocks -> Jobs.sum_blocks () blocks in
  let result1 = Engine.run star phase1 ~reduce:merge in
  let phase2 = Jobs.matmul_phase2 ~phase1_output:result1.Engine.output ~chunk in
  let result2 = Engine.run star phase2 ~reduce:Jobs.sum_blocks in
  (result1, result2)

let test_two_phase_correct () =
  let rng = Rng.create ~seed:101 () in
  let n = 12 and chunk = 3 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let _, result2 = run_two_phase a b n chunk in
  let flat = Jobs.assemble_blocks result2.Engine.output ~n ~chunk in
  let reference = Matrix.mul a b in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      checkf "C(i,j)" ~eps:1e-9 (Matrix.get reference i j) flat.((i * n) + j)
    done
  done

let test_phase1_counts () =
  let rng = Rng.create ~seed:102 () in
  let n = 12 and chunk = 3 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let result1, _ = run_two_phase a b n chunk in
  let blocks = n / chunk in
  (* One intermediate pair per block triple. *)
  Alcotest.(check int) "pairs = (n/chunk)^3" (blocks * blocks * blocks)
    result1.Engine.shuffle.Mapreduce.Shuffle.pairs

let test_two_phase_identity () =
  let n = 8 and chunk = 2 in
  let a = Matrix.identity n in
  let b = Matrix.identity n in
  let _, result2 = run_two_phase a b n chunk in
  let flat = Jobs.assemble_blocks result2.Engine.output ~n ~chunk in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      checkf "identity" (if i = j then 1. else 0.) flat.((i * n) + j)
    done
  done

let test_sum_blocks () =
  Alcotest.(check (array (float 1e-12))) "element-wise sum" [| 5.; 7. |]
    (Jobs.sum_blocks () [ [| 1.; 2. |]; [| 4.; 5. |] ]);
  Alcotest.(check (array (float 0.))) "empty" [||] (Jobs.sum_blocks () [])

let test_trade_off_vs_replicated () =
  (* The inflation moved: the single-job replicated matmul ships
     redundant map inputs; the two-phase pipeline ships partial blocks
     between jobs instead.  Both carry the same order of data
     (n³/chunk values), the point of the paper's discussion. *)
  let rng = Rng.create ~seed:103 () in
  let n = 12 and chunk = 3 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let replicated = Jobs.matmul_replicated ~a:(Matrix.get a) ~b:(Matrix.get b) ~n ~chunk in
  let rep_run =
    Engine.run star replicated ~reduce:(fun _ vs -> List.fold_left ( +. ) 0. vs)
  in
  let result1, _ = run_two_phase a b n chunk in
  let intermediate_words =
    float_of_int
      (result1.Engine.shuffle.Mapreduce.Shuffle.pairs * chunk * chunk)
  in
  let blocks = n / chunk in
  checkf "intermediate volume = n^3/chunk"
    (float_of_int (blocks * blocks * blocks * chunk * chunk))
    intermediate_words;
  (* Replicated map input is also Θ(n³/chunk): each of (n/chunk)³ tasks
     reads 2 chunk² blocks (before caching). *)
  checkb "same order of traffic" true
    (rep_run.Engine.map.Scheduler.communication <= 2. *. intermediate_words +. 1e-9)

let suites =
  [
    ( "two-phase matmul",
      [
        Alcotest.test_case "correct" `Quick test_two_phase_correct;
        Alcotest.test_case "phase-1 counts" `Quick test_phase1_counts;
        Alcotest.test_case "identity" `Quick test_two_phase_identity;
        Alcotest.test_case "sum blocks" `Quick test_sum_blocks;
        Alcotest.test_case "inflation trade-off" `Quick test_trade_off_vs_replicated;
      ] );
  ]
