(* Dense matrices. *)

module Matrix = Linalg.Matrix
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng () = Rng.create ~seed:31 ()

let test_create_zero () =
  let m = Matrix.create ~rows:3 ~cols:2 in
  Alcotest.(check int) "rows" 3 (Matrix.rows m);
  Alcotest.(check int) "cols" 2 (Matrix.cols m);
  checkf "zero" 0. (Matrix.get m 2 1)

let test_init_get_set () =
  let m = Matrix.init ~rows:2 ~cols:2 (fun i j -> float_of_int ((10 * i) + j)) in
  checkf "init" 11. (Matrix.get m 1 1);
  Matrix.set m 0 1 42.;
  checkf "set" 42. (Matrix.get m 0 1)

let test_bounds_checked () =
  let m = Matrix.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "get OOB" (Invalid_argument "Matrix.get: out of bounds") (fun () ->
      ignore (Matrix.get m 2 0));
  Alcotest.check_raises "set OOB" (Invalid_argument "Matrix.set: out of bounds") (fun () ->
      Matrix.set m 0 5 1.)

let test_identity_neutral () =
  let a = Matrix.random (rng ()) ~rows:8 ~cols:8 in
  checkb "A·I = A" true (Matrix.approx_equal (Matrix.mul a (Matrix.identity 8)) a);
  checkb "I·A = A" true (Matrix.approx_equal (Matrix.mul (Matrix.identity 8) a) a)

let test_mul_known () =
  let a = Matrix.init ~rows:2 ~cols:2 (fun i j -> float_of_int ((2 * i) + j + 1)) in
  (* a = [1 2; 3 4]; a² = [7 10; 15 22]. *)
  let sq = Matrix.mul a a in
  checkf "a²(0,0)" 7. (Matrix.get sq 0 0);
  checkf "a²(0,1)" 10. (Matrix.get sq 0 1);
  checkf "a²(1,0)" 15. (Matrix.get sq 1 0);
  checkf "a²(1,1)" 22. (Matrix.get sq 1 1)

let test_blocked_matches_naive () =
  let r = rng () in
  let a = Matrix.random r ~rows:33 ~cols:17 in
  let b = Matrix.random r ~rows:17 ~cols:29 in
  checkb "blocked == naive" true
    (Matrix.approx_equal (Matrix.mul_blocked ~block:8 a b) (Matrix.mul a b))

let test_mul_dimension_mismatch () =
  let a = Matrix.create ~rows:2 ~cols:3 in
  let b = Matrix.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "inner mismatch"
    (Invalid_argument "Matrix.mul: inner dimension mismatch") (fun () ->
      ignore (Matrix.mul a b))

let test_transpose_involution () =
  let a = Matrix.random (rng ()) ~rows:5 ~cols:7 in
  checkb "transpose twice" true (Matrix.approx_equal (Matrix.transpose (Matrix.transpose a)) a)

let test_transpose_of_product () =
  let r = rng () in
  let a = Matrix.random r ~rows:6 ~cols:4 in
  let b = Matrix.random r ~rows:4 ~cols:5 in
  checkb "(AB)^T = B^T A^T" true
    (Matrix.approx_equal
       (Matrix.transpose (Matrix.mul a b))
       (Matrix.mul (Matrix.transpose b) (Matrix.transpose a)))

let test_add_sub_scale () =
  let r = rng () in
  let a = Matrix.random r ~rows:4 ~cols:4 in
  let b = Matrix.random r ~rows:4 ~cols:4 in
  checkb "a+b-b = a" true (Matrix.approx_equal (Matrix.sub (Matrix.add a b) b) a);
  checkb "2a = a+a" true (Matrix.approx_equal (Matrix.scale 2. a) (Matrix.add a a))

let test_outer_known () =
  let m = Matrix.outer [| 1.; 2. |] [| 3.; 4.; 5. |] in
  checkf "outer(1,2)" 10. (Matrix.get m 1 2);
  Alcotest.(check int) "outer cols" 3 (Matrix.cols m)

let test_outer_equals_matmul () =
  (* aᵀ×b as a (n×1)·(1×n) product. *)
  let a = [| 1.; -2.; 3. |] and b = [| 4.; 0.; -1. |] in
  let col = Matrix.init ~rows:3 ~cols:1 (fun i _ -> a.(i)) in
  let row = Matrix.init ~rows:1 ~cols:3 (fun _ j -> b.(j)) in
  checkb "outer == col·row" true (Matrix.approx_equal (Matrix.outer a b) (Matrix.mul col row))

let test_frobenius () =
  let m = Matrix.init ~rows:1 ~cols:2 (fun _ j -> if j = 0 then 3. else 4. ) in
  checkf "3-4-5" 5. (Matrix.frobenius m)

let test_copy_isolated () =
  let a = Matrix.create ~rows:2 ~cols:2 in
  let b = Matrix.copy a in
  Matrix.set b 0 0 9.;
  checkf "original untouched" 0. (Matrix.get a 0 0)

let qcheck_mul_associative =
  QCheck.Test.make ~name:"matrix multiplication is associative" ~count:30
    QCheck.(int_range 1 12)
    (fun n ->
      let r = Rng.create ~seed:n () in
      let a = Matrix.random r ~rows:n ~cols:n in
      let b = Matrix.random r ~rows:n ~cols:n in
      let c = Matrix.random r ~rows:n ~cols:n in
      Matrix.approx_equal ~tol:1e-7
        (Matrix.mul (Matrix.mul a b) c)
        (Matrix.mul a (Matrix.mul b c)))

let qcheck_blocked_equals_naive =
  QCheck.Test.make ~name:"blocked matmul equals naive for all tile sizes" ~count:30
    QCheck.(pair (int_range 1 24) (int_range 1 16))
    (fun (n, block) ->
      let r = Rng.create ~seed:(n + block) () in
      let a = Matrix.random r ~rows:n ~cols:n in
      let b = Matrix.random r ~rows:n ~cols:n in
      Matrix.approx_equal (Matrix.mul_blocked ~block a b) (Matrix.mul a b))

let suites =
  [
    ( "matrix",
      [
        Alcotest.test_case "create zero" `Quick test_create_zero;
        Alcotest.test_case "init/get/set" `Quick test_init_get_set;
        Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
        Alcotest.test_case "identity neutral" `Quick test_identity_neutral;
        Alcotest.test_case "known product" `Quick test_mul_known;
        Alcotest.test_case "blocked == naive" `Quick test_blocked_matches_naive;
        Alcotest.test_case "dimension mismatch" `Quick test_mul_dimension_mismatch;
        Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
        Alcotest.test_case "transpose of product" `Quick test_transpose_of_product;
        Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
        Alcotest.test_case "outer known" `Quick test_outer_known;
        Alcotest.test_case "outer == matmul" `Quick test_outer_equals_matmul;
        Alcotest.test_case "frobenius" `Quick test_frobenius;
        Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
        QCheck_alcotest.to_alcotest qcheck_mul_associative;
        QCheck_alcotest.to_alcotest qcheck_blocked_equals_naive;
      ] );
  ]
