(* Affine one-port DLT (latencies + participation), dispatch-order
   analysis, and return-message schedules — the classical extensions the
   paper's model deliberately strips away. *)

module Star = Platform.Star
module Processor = Platform.Processor
module Affine = Dlt.Affine
module Ordering = Dlt.Ordering
module Return_messages = Dlt.Return_messages
module Linear = Dlt.Linear

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let star_no_latency = Star.of_speeds ~bandwidth:2. [ 1.; 2.; 4. ]

let lazy_star latencies speeds =
  Star.create
    (List.map2
       (fun speed latency -> Processor.make ~id:0 ~speed ~latency ())
       speeds latencies)

let test_affine_matches_linear_without_latency () =
  (* Zero latency: the affine solver must reproduce the latency-free
     closed form. *)
  let sol = Affine.solve star_no_latency ~total:100. in
  let reference = Linear.one_port_allocation star_no_latency ~total:100. in
  Array.iteri
    (fun i n -> checkf "same allocation" ~eps:1e-6 reference.(i) n)
    sol.Affine.allocation;
  checkf "same makespan" ~eps:1e-6
    (Linear.one_port_makespan star_no_latency ~total:100.)
    sol.Affine.makespan

let test_affine_sums_to_total () =
  let star = lazy_star [ 0.5; 1.; 2. ] [ 1.; 2.; 4. ] in
  let sol = Affine.solve star ~total:50. in
  checkf "conserved" ~eps:1e-6 50. (Numerics.Kahan.sum sol.Affine.allocation)

let test_affine_equal_finish () =
  let star = lazy_star [ 0.5; 1.; 2. ] [ 1.; 2.; 4. ] in
  let sol = Affine.solve star ~total:50. in
  (* Recompute each participant's finish from scratch. *)
  let workers = Star.workers star in
  let port = ref 0. in
  List.iter
    (fun i ->
      let proc = workers.(i) in
      let n = sol.Affine.allocation.(i) in
      let arrival = !port +. Processor.transfer_time proc ~data:n in
      port := arrival;
      let finish = arrival +. (Processor.w proc *. n) in
      checkf "participant finishes at makespan" ~eps:1e-6 sol.Affine.makespan finish)
    sol.Affine.participants

let test_affine_drops_hopeless_worker () =
  (* A worker whose latency alone exceeds the whole job's ideal
     makespan must be dropped. *)
  let star = lazy_star [ 0.; 0.; 1000. ] [ 1.; 1.; 1. ] in
  let sol = Affine.solve star ~total:10. in
  checkb "dropped" true (List.length sol.Affine.participants = 2);
  checkb "predicate agrees" true (Affine.drops_slow_high_latency_workers star ~total:10.);
  (* The dropped worker is the high-latency one (platform order may
     place it anywhere since speeds tie). *)
  let workers = Star.workers star in
  List.iter
    (fun i -> checkf "participants have low latency" 0. workers.(i).Processor.latency)
    sol.Affine.participants

let test_affine_keeps_everyone_when_cheap () =
  let star = lazy_star [ 0.01; 0.01; 0.01 ] [ 1.; 2.; 4. ] in
  let sol = Affine.solve star ~total:100. in
  Alcotest.(check int) "all participate" 3 (List.length sol.Affine.participants)

let test_affine_makespan_of_allocation_agrees () =
  let star = lazy_star [ 0.2; 0.4; 0.1 ] [ 1.; 3.; 2. ] in
  let sol = Affine.solve star ~total:20. in
  checkf "simulator agrees with solver" ~eps:1e-6 sol.Affine.makespan
    (Affine.makespan_of_allocation star ~allocation:sol.Affine.allocation)

let test_affine_validates_order () =
  checkb "non-permutation rejected" true
    (try
       ignore (Affine.solve ~order:[| 0; 0; 2 |] star_no_latency ~total:10.);
       false
     with Invalid_argument _ -> true)

let test_order_irrelevant_without_latency () =
  (* With uniform link bandwidth and no latency, the activation order
     does not change the optimal makespan. *)
  checkb "spread ~ 0" true (Ordering.order_spread star_no_latency ~total:100. < 1e-9)

let test_bandwidth_order_optimal () =
  (* Heterogeneous links, no latency: decreasing bandwidth is the
     classical optimal activation order; exhaustive search confirms. *)
  let star =
    Star.create
      [
        Processor.make ~id:1 ~speed:1.5 ~bandwidth:1.5 ();
        Processor.make ~id:2 ~speed:3. ~bandwidth:1. ();
        Processor.make ~id:3 ~speed:4. ~bandwidth:8. ();
      ]
  in
  let best = Ordering.best_order star ~total:500. in
  let bandwidth_order = Dlt.Linear.one_port_order star in
  checkf "bandwidth-descending is optimal" ~eps:1e-6 best.Ordering.makespan
    (Ordering.makespan star ~order:bandwidth_order ~total:500.);
  (* And it strictly beats the worst order on this platform. *)
  let worst = Ordering.worst_order star ~total:500. in
  checkb "order matters without latency here" true
    (worst.Ordering.makespan > 1.2 *. best.Ordering.makespan)

let test_one_port_closed_form_uses_bandwidth_order () =
  let star =
    Star.create
      [
        Processor.make ~id:1 ~speed:1.5 ~bandwidth:1.5 ();
        Processor.make ~id:2 ~speed:3. ~bandwidth:1. ();
        Processor.make ~id:3 ~speed:4. ~bandwidth:8. ();
      ]
  in
  (* The affine solver with no latency must agree with the linear
     closed form, both using the bandwidth order. *)
  let sol = Affine.solve star ~total:500. in
  checkf "closed form agrees" ~eps:1e-6
    (Linear.one_port_makespan star ~total:500.)
    sol.Affine.makespan;
  checkb "beats a single worker" true
    (sol.Affine.makespan < 500. *. ((1. /. 8.) +. (1. /. 4.)))

let test_order_matters_with_latency () =
  let star = lazy_star [ 5.; 0.1; 0.1 ] [ 4.; 1.; 1. ] in
  checkb "spread > 0" true (Ordering.order_spread star ~total:30. > 1e-6)

let test_best_order_beats_heuristics () =
  let star = lazy_star [ 2.; 0.1; 1. ] [ 1.; 3.; 2. ] in
  let total = 30. in
  let best = Ordering.best_order star ~total in
  List.iter
    (fun order ->
      checkb "best <= heuristic" true
        (best.Ordering.makespan <= Ordering.makespan star ~order ~total +. 1e-9))
    [
      Ordering.identity_order 3;
      Ordering.by_bandwidth star;
      Ordering.by_latency star;
      Ordering.by_speed star;
    ]

let test_heuristic_orders_are_permutations () =
  let star = lazy_star [ 1.; 2.; 0.5; 0.1 ] [ 1.; 2.; 3.; 4. ] in
  List.iter
    (fun order ->
      let sorted = Array.copy order in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "permutation" [| 0; 1; 2; 3 |] sorted)
    [ Ordering.by_bandwidth star; Ordering.by_latency star; Ordering.by_speed star ]

let test_exhaustive_size_guard () =
  let star = Star.of_speeds (List.init 10 (fun i -> float_of_int (i + 1))) in
  checkb "p > 9 rejected" true
    (try
       ignore (Ordering.best_order star ~total:10.);
       false
     with Invalid_argument _ -> true)

let test_returns_extend_makespan () =
  let allocation = Linear.one_port_allocation star_no_latency ~total:60. in
  let base = Linear.one_port_makespan star_no_latency ~total:60. in
  let fifo = Return_messages.makespan Return_messages.Fifo star_no_latency ~allocation in
  checkb "returns cost time" true (fifo > base)

let test_returns_zero_delta_free () =
  let allocation = Linear.one_port_allocation star_no_latency ~total:60. in
  let base = Linear.one_port_makespan star_no_latency ~total:60. in
  checkf "delta = 0 changes nothing" ~eps:1e-6 base
    (Return_messages.makespan ~delta:0. Return_messages.Fifo star_no_latency ~allocation)

let test_returns_port_exclusive () =
  let allocation = [| 10.; 10.; 10. |] in
  let result = Return_messages.run Return_messages.Fifo star_no_latency ~allocation in
  (* No two return transfers overlap. *)
  let intervals =
    List.map (fun e -> (e.Return_messages.return_start, e.Return_messages.return_end))
      result.Return_messages.events
    |> List.sort compare
  in
  let rec check = function
    | (_, fin) :: ((start, _) :: _ as rest) ->
        checkb "returns serialized" true (start >= fin -. 1e-9);
        check rest
    | [ _ ] | [] -> ()
  in
  check intervals

let test_returns_after_compute () =
  let allocation = [| 5.; 20.; 10. |] in
  let result = Return_messages.run Return_messages.Lifo star_no_latency ~allocation in
  List.iter
    (fun e ->
      checkb "return after compute" true
        (e.Return_messages.return_start >= e.Return_messages.compute_end -. 1e-9))
    result.Return_messages.events

let test_best_policy_returns_minimum () =
  let allocation = Linear.one_port_allocation star_no_latency ~total:60. in
  let _, best = Return_messages.best_policy star_no_latency ~allocation in
  let fifo = Return_messages.makespan Return_messages.Fifo star_no_latency ~allocation in
  let lifo = Return_messages.makespan Return_messages.Lifo star_no_latency ~allocation in
  checkf "min of both" best (Float.min fifo lifo)

let qcheck_affine_participants_positive =
  QCheck.Test.make ~name:"affine solver: participants have positive shares" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) (float_range 0.3 8.))
        (list_of_size Gen.(int_range 1 8) (float_range 0. 3.)))
    (fun (speeds, latencies) ->
      QCheck.assume (speeds <> [] && List.length speeds = List.length latencies);
      let procs =
        List.map2 (fun s l -> Processor.make ~id:0 ~speed:s ~latency:l ()) speeds latencies
      in
      let star = Star.create procs in
      match Affine.solve star ~total:100. with
      | sol ->
          List.for_all (fun i -> sol.Affine.allocation.(i) > 0.) sol.Affine.participants
          && Float.abs (Numerics.Kahan.sum sol.Affine.allocation -. 100.) < 1e-6
      | exception Invalid_argument _ -> true)

let suites =
  [
    ( "affine one-port DLT",
      [
        Alcotest.test_case "matches linear without latency" `Quick
          test_affine_matches_linear_without_latency;
        Alcotest.test_case "sums to total" `Quick test_affine_sums_to_total;
        Alcotest.test_case "equal finish" `Quick test_affine_equal_finish;
        Alcotest.test_case "drops hopeless worker" `Quick test_affine_drops_hopeless_worker;
        Alcotest.test_case "keeps everyone when cheap" `Quick
          test_affine_keeps_everyone_when_cheap;
        Alcotest.test_case "simulator agrees" `Quick test_affine_makespan_of_allocation_agrees;
        Alcotest.test_case "order validated" `Quick test_affine_validates_order;
        QCheck_alcotest.to_alcotest qcheck_affine_participants_positive;
      ] );
    ( "dispatch ordering",
      [
        Alcotest.test_case "irrelevant without latency" `Quick
          test_order_irrelevant_without_latency;
        Alcotest.test_case "bandwidth order optimal" `Quick test_bandwidth_order_optimal;
        Alcotest.test_case "closed form uses bandwidth order" `Quick
          test_one_port_closed_form_uses_bandwidth_order;
        Alcotest.test_case "matters with latency" `Quick test_order_matters_with_latency;
        Alcotest.test_case "best beats heuristics" `Quick test_best_order_beats_heuristics;
        Alcotest.test_case "heuristics are permutations" `Quick
          test_heuristic_orders_are_permutations;
        Alcotest.test_case "exhaustive size guard" `Quick test_exhaustive_size_guard;
      ] );
    ( "return messages",
      [
        Alcotest.test_case "returns extend makespan" `Quick test_returns_extend_makespan;
        Alcotest.test_case "zero delta free" `Quick test_returns_zero_delta_free;
        Alcotest.test_case "port exclusive" `Quick test_returns_port_exclusive;
        Alcotest.test_case "after compute" `Quick test_returns_after_compute;
        Alcotest.test_case "best policy" `Quick test_best_policy_returns_minimum;
      ] );
  ]
