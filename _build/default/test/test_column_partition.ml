(* The PERI-SUM / PERI-MAX column-based partitioner ([41]) and its
   approximation guarantee. *)

module Column_partition = Partition.Column_partition
module Layout = Partition.Layout
module Lower_bound = Partition.Lower_bound
module Strategies = Partition.Strategies

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let equal_areas p = Array.make p (1. /. float_of_int p)

let test_single_area () =
  let assignment = Column_partition.peri_sum ~areas:[| 1. |] in
  checkf "one full square costs 2" 2. assignment.Column_partition.cost;
  Alcotest.(check int) "one column" 1 (Array.length assignment.Column_partition.columns)

let test_perfect_square_grid () =
  (* 4 equal areas: 2 columns of 2 achieve the lower bound of 4. *)
  let assignment = Column_partition.peri_sum ~areas:(equal_areas 4) in
  checkf "optimal cost" 4. assignment.Column_partition.cost;
  Alcotest.(check int) "two columns" 2 (Array.length assignment.Column_partition.columns)

let test_nine_grid () =
  let assignment = Column_partition.peri_sum ~areas:(equal_areas 9) in
  checkf "3x3 grid cost" 6. assignment.Column_partition.cost

let test_cost_matches_layout () =
  let areas = [| 0.4; 0.3; 0.2; 0.1 |] in
  let assignment = Column_partition.peri_sum ~areas in
  let layout = Column_partition.to_layout ~areas assignment in
  checkf "DP cost == realized half-perimeter sum" ~eps:1e-9
    assignment.Column_partition.cost
    (Layout.sum_half_perimeters layout)

let test_layout_valid_and_balanced () =
  let areas = [| 0.4; 0.3; 0.2; 0.1 |] in
  let layout = Column_partition.peri_sum_layout ~areas in
  match Layout.validate ~expected_areas:areas layout with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_columns_cover_indices () =
  let areas = [| 0.5; 0.2; 0.15; 0.1; 0.05 |] in
  let assignment = Column_partition.peri_sum ~areas in
  let seen = Array.make 5 false in
  Array.iter
    (fun column -> Array.iter (fun i -> seen.(i) <- true) column)
    assignment.Column_partition.columns;
  checkb "every index placed once" true (Array.for_all Fun.id seen)

let test_bad_areas_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Column_partition: empty areas")
    (fun () -> ignore (Column_partition.peri_sum ~areas:[||]));
  checkb "not normalized" true
    (try
       ignore (Column_partition.peri_sum ~areas:[| 0.4; 0.4 |]);
       false
     with Invalid_argument _ -> true);
  checkb "non-positive" true
    (try
       ignore (Column_partition.peri_sum ~areas:[| 1.2; -0.2 |]);
       false
     with Invalid_argument _ -> true)

let test_peri_max_equal_areas () =
  (* 4 equal areas: every zone is a 1/2 x 1/2 square, max half-perim 1. *)
  let assignment = Column_partition.peri_max ~areas:(equal_areas 4) in
  checkf "peri-max optimal" 1. assignment.Column_partition.cost

let test_peri_max_ge_lower_bound () =
  let areas = [| 0.5; 0.3; 0.2 |] in
  let assignment = Column_partition.peri_max ~areas in
  checkb "above 2·sqrt(amax)" true
    (assignment.Column_partition.cost >= Lower_bound.peri_max ~areas -. 1e-9)

let random_areas rng p =
  let raw = Array.init p (fun _ -> Numerics.Rng.uniform rng 0.01 1.) in
  let total = Numerics.Kahan.sum raw in
  Array.map (fun a -> a /. total) raw

let test_guarantee_on_random_instances () =
  (* Ĉ <= 1 + (5/4)·LB (hence <= 7/4·LB): the [41] guarantee our DP
     inherits by covering the heuristic's search space. *)
  let rng = Numerics.Rng.create ~seed:77 () in
  for _ = 1 to 200 do
    let p = 1 + Numerics.Rng.int rng 40 in
    let areas = random_areas rng p in
    let cost = (Column_partition.peri_sum ~areas).Column_partition.cost in
    let lb = Lower_bound.peri_sum ~areas in
    checkb "within guarantee" true (cost <= 1. +. (1.25 *. lb) +. 1e-9);
    checkb "not below LB" true (cost >= lb -. 1e-9)
  done

let qcheck_layout_always_valid =
  QCheck.Test.make ~name:"peri-sum layout tiles the unit square" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0.01 100.))
    (fun raw ->
      let total = List.fold_left ( +. ) 0. raw in
      let areas = Array.of_list (List.map (fun a -> a /. total) raw) in
      let layout = Column_partition.peri_sum_layout ~areas in
      match Layout.validate ~tol:1e-7 ~expected_areas:areas layout with
      | Ok () -> true
      | Error _ -> false)

let qcheck_peri_max_le_peri_sum_max =
  (* The PERI-MAX optimum never exceeds the max half-perimeter of the
     PERI-SUM solution. *)
  QCheck.Test.make ~name:"peri-max cost <= max zone of peri-sum layout" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.01 10.))
    (fun raw ->
      let total = List.fold_left ( +. ) 0. raw in
      let areas = Array.of_list (List.map (fun a -> a /. total) raw) in
      let max_cost = (Column_partition.peri_max ~areas).Column_partition.cost in
      let sum_layout = Column_partition.peri_sum_layout ~areas in
      max_cost <= Layout.max_half_perimeter sum_layout +. 1e-9)

let test_strategies_homogeneous () =
  let star = Platform.Star.of_speeds (List.init 16 (fun _ -> 1.)) in
  let r = Strategies.evaluate star in
  checkf "hom achieves LB" ~eps:1e-9 1. r.Strategies.hom;
  checkf "hom/k stays at LB" ~eps:1e-9 1. r.Strategies.hom_over_k;
  Alcotest.(check int) "k stays 1" 1 r.Strategies.k;
  checkb "het within 2% of LB" true (r.Strategies.het <= 1.02)

let test_strategies_heterogeneous () =
  let rng = Numerics.Rng.create ~seed:2 () in
  let star = Platform.Profiles.generate rng ~p:50 Platform.Profiles.paper_uniform in
  let r = Strategies.evaluate star in
  checkb "het close to LB" true (r.Strategies.het <= 1.05);
  checkb "hom well above het" true (r.Strategies.hom > 1.5 *. r.Strategies.het);
  checkb "hom/k above hom" true (r.Strategies.hom_over_k >= r.Strategies.hom -. 1e-9);
  checkb "balance met" true (r.Strategies.hom_over_k_imbalance <= 0.01)

let suites =
  [
    ( "column partition (PERI-SUM)",
      [
        Alcotest.test_case "single area" `Quick test_single_area;
        Alcotest.test_case "2x2 grid optimal" `Quick test_perfect_square_grid;
        Alcotest.test_case "3x3 grid optimal" `Quick test_nine_grid;
        Alcotest.test_case "cost matches layout" `Quick test_cost_matches_layout;
        Alcotest.test_case "layout valid + balanced" `Quick test_layout_valid_and_balanced;
        Alcotest.test_case "indices covered" `Quick test_columns_cover_indices;
        Alcotest.test_case "bad areas rejected" `Quick test_bad_areas_rejected;
        Alcotest.test_case "7/4 guarantee (random)" `Slow test_guarantee_on_random_instances;
        QCheck_alcotest.to_alcotest qcheck_layout_always_valid;
      ] );
    ( "column partition (PERI-MAX)",
      [
        Alcotest.test_case "equal areas" `Quick test_peri_max_equal_areas;
        Alcotest.test_case "above lower bound" `Quick test_peri_max_ge_lower_bound;
        QCheck_alcotest.to_alcotest qcheck_peri_max_le_peri_sum_max;
      ] );
    ( "strategies",
      [
        Alcotest.test_case "homogeneous platform" `Quick test_strategies_homogeneous;
        Alcotest.test_case "heterogeneous platform" `Quick test_strategies_heterogeneous;
      ] );
  ]
