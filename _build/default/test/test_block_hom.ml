(* Homogeneous Blocks (Commhom / Commhom-over-k) and its demand-driven
   scheduler. *)

module Star = Platform.Star
module Block_hom = Partition.Block_hom
module Lower_bound = Partition.Lower_bound

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let hom16 = Star.of_speeds (List.init 16 (fun _ -> 1.))
let het = Star.of_speeds [ 1.; 1.; 2.; 4. ]

let test_block_count_homogeneous () =
  (* x1 = 1/p, so the paper's block count is p·k². *)
  Alcotest.(check int) "k=1" 16 (Block_hom.block_count hom16 ~k:1);
  Alcotest.(check int) "k=3" 144 (Block_hom.block_count hom16 ~k:3)

let test_homogeneous_perfect_balance () =
  let r = Block_hom.commhom hom16 ~n:1e4 in
  checkf "no imbalance" 0. r.Block_hom.imbalance;
  Array.iter (fun b -> Alcotest.(check int) "one block each" 1 b) r.Block_hom.per_worker

let test_homogeneous_matches_lower_bound () =
  let r = Block_hom.commhom hom16 ~n:1e4 in
  checkf "ratio exactly 1" ~eps:1e-9 1.
    (r.Block_hom.communication /. Lower_bound.communication hom16 ~n:1e4)

let test_communication_formula () =
  let r = Block_hom.demand_driven het ~n:1000. ~k:2 in
  checkf "blocks·2·side" ~eps:1e-9
    (float_of_int r.Block_hom.blocks *. 2. *. r.Block_hom.block_side)
    r.Block_hom.communication

let test_all_blocks_assigned () =
  let r = Block_hom.demand_driven het ~n:1000. ~k:3 in
  Alcotest.(check int) "per_worker sums to blocks" r.Block_hom.blocks
    (Array.fold_left ( + ) 0 r.Block_hom.per_worker);
  Alcotest.(check int) "owners length" r.Block_hom.blocks
    (Array.length r.Block_hom.owners)

let test_demand_driven_favors_fast () =
  let r = Block_hom.demand_driven het ~n:1000. ~k:4 in
  let per = r.Block_hom.per_worker in
  checkb "fastest gets most blocks" true (per.(3) >= per.(0));
  (* Speed 4 worker should get roughly 4x the blocks of a speed 1 one. *)
  checkb "roughly proportional" true
    (float_of_int per.(3) /. float_of_int (max 1 per.(0)) > 2.)

let test_imbalance_decreases_with_k () =
  let e k = (Block_hom.demand_driven het ~n:1000. ~k).Block_hom.imbalance in
  checkb "k=8 better balanced than k=1" true (e 8 < e 1 || e 1 = 0.)

let test_commhom_over_k_meets_target () =
  let r = Block_hom.commhom_over_k ~target_imbalance:0.05 het ~n:1000. in
  checkb "imbalance under target" true (r.Block_hom.imbalance <= 0.05);
  checkb "k at least 1" true (r.Block_hom.k >= 1)

let test_commhom_over_k_max_cap () =
  let r = Block_hom.commhom_over_k ~target_imbalance:0. ~max_k:3 het ~n:1000. in
  checkb "stops at max_k" true (r.Block_hom.k <= 3)

let test_makespan_consistent () =
  let r = Block_hom.demand_driven het ~n:1000. ~k:2 in
  let tmax = Array.fold_left Float.max 0. r.Block_hom.finish_times in
  checkf "makespan is max finish" tmax r.Block_hom.makespan

let test_invalid_inputs () =
  Alcotest.check_raises "n must be positive"
    (Invalid_argument "Block_hom.demand_driven: n must be > 0") (fun () ->
      ignore (Block_hom.demand_driven het ~n:0. ~k:1));
  Alcotest.check_raises "k must be positive"
    (Invalid_argument "Block_hom.demand_driven: k must be > 0") (fun () ->
      ignore (Block_hom.demand_driven het ~n:10. ~k:0))

let test_ideal_ratio_closed_form () =
  (* Homogeneous: 1/(√(1/p)·p·√(1/p)) = 1. *)
  checkf "homogeneous ideal ratio" ~eps:1e-12 1. (Block_hom.ideal_ratio hom16)

let qcheck_comm_grows_with_k =
  QCheck.Test.make ~name:"communication tracks the closed form 2nk/sqrt(x1)" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 8) (float_range 0.5 8.)) (int_range 1 6))
    (fun (speeds, k) ->
      QCheck.assume (speeds <> [] && k >= 1);
      let star = Star.of_speeds speeds in
      let n = 100. in
      let x1 = (Star.relative_speeds star).(0) in
      let comm = (Block_hom.demand_driven star ~n ~k).Block_hom.communication in
      let ideal = 2. *. n *. float_of_int k /. sqrt x1 in
      (* Block-count rounding moves the volume by at most one block's
         worth of data, 2·√x1·n/k. *)
      Float.abs (comm -. ideal) <= (2. *. sqrt x1 *. n /. float_of_int k) +. 1e-6)

let qcheck_work_conserved =
  QCheck.Test.make ~name:"demand-driven executes all the area" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 10) (float_range 0.2 10.)) (int_range 1 5))
    (fun (speeds, k) ->
      QCheck.assume (speeds <> [] && k >= 1);
      let star = Star.of_speeds speeds in
      let r = Block_hom.demand_driven star ~n:50. ~k in
      let executed =
        float_of_int r.Block_hom.blocks *. r.Block_hom.block_side *. r.Block_hom.block_side
      in
      (* Block-count rounding keeps the executed area within one block
         of n². *)
      Float.abs (executed -. 2500.) <= (r.Block_hom.block_side ** 2.) +. 1e-6)

let suites =
  [
    ( "homogeneous blocks",
      [
        Alcotest.test_case "block count" `Quick test_block_count_homogeneous;
        Alcotest.test_case "perfect balance (hom)" `Quick test_homogeneous_perfect_balance;
        Alcotest.test_case "achieves LB (hom)" `Quick test_homogeneous_matches_lower_bound;
        Alcotest.test_case "communication formula" `Quick test_communication_formula;
        Alcotest.test_case "all blocks assigned" `Quick test_all_blocks_assigned;
        Alcotest.test_case "demand-driven favors fast" `Quick test_demand_driven_favors_fast;
        Alcotest.test_case "imbalance decreases with k" `Quick test_imbalance_decreases_with_k;
        Alcotest.test_case "hom/k meets target" `Quick test_commhom_over_k_meets_target;
        Alcotest.test_case "hom/k caps at max_k" `Quick test_commhom_over_k_max_cap;
        Alcotest.test_case "makespan consistent" `Quick test_makespan_consistent;
        Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
        Alcotest.test_case "ideal ratio" `Quick test_ideal_ratio_closed_form;
        QCheck_alcotest.to_alcotest qcheck_comm_grows_with_k;
        QCheck_alcotest.to_alcotest qcheck_work_conserved;
      ] );
  ]
