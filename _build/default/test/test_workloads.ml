(* The §1.1 application workloads: image filtering, database scans,
   streaming pipelines. *)

module Image = Workloads.Image
module Database = Workloads.Database
module Stream = Workloads.Stream
module Matrix = Linalg.Matrix
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- image --- *)

let test_box_blur_constant_image () =
  (* Blurring a constant image leaves the interior unchanged. *)
  let image = Matrix.init ~rows:10 ~cols:10 (fun _ _ -> 3.) in
  let blurred = Image.convolve image ~kernel:(Image.box_blur 3) in
  checkf "interior preserved" 3. (Matrix.get blurred 5 5);
  (* Borders see zero padding, so they attenuate. *)
  checkb "border attenuated" true (Matrix.get blurred 0 0 < 3.)

let test_edge_detect_flat_is_zero () =
  let image = Matrix.init ~rows:8 ~cols:8 (fun _ _ -> 1. ) in
  let edges = Image.convolve image ~kernel:Image.edge_detect in
  checkf "flat interior -> 0" ~eps:1e-12 0. (Matrix.get edges 4 4)

let test_sharpen_identity_on_flat () =
  let image = Matrix.init ~rows:8 ~cols:8 (fun _ _ -> 2. ) in
  let sharpened = Image.convolve image ~kernel:Image.sharpen in
  checkf "flat interior preserved" 2. (Matrix.get sharpened 4 4)

let test_distributed_convolution_matches () =
  let rng = Rng.create ~seed:111 () in
  let image = Matrix.random rng ~rows:64 ~cols:48 in
  let star = Star.of_speeds [ 1.; 2.; 5. ] in
  let d = Image.distribute star image ~kernel:(Image.box_blur 5) in
  checkb "distributed == sequential" true
    (Matrix.approx_equal d.Image.result (Image.convolve image ~kernel:(Image.box_blur 5)))

let test_distribution_bands_cover () =
  let rng = Rng.create ~seed:112 () in
  let image = Matrix.random rng ~rows:50 ~cols:20 in
  let star = Star.of_speeds [ 1.; 3. ] in
  let d = Image.distribute star image ~kernel:Image.sharpen in
  let covered = Array.fold_left (fun acc (_, rows) -> acc + rows) 0 d.Image.bands in
  Alcotest.(check int) "all rows assigned" 50 covered

let test_halo_accounting () =
  let rng = Rng.create ~seed:113 () in
  let image = Matrix.random rng ~rows:40 ~cols:10 in
  let star = Star.of_speeds [ 1.; 1. ] in
  (* Two equal bands, radius 1: one halo row on each side of the cut. *)
  let d = Image.distribute star image ~kernel:Image.sharpen in
  Alcotest.(check int) "two halo rows" 2 d.Image.halo_rows;
  checkf "communication = pixels + halo" (float_of_int ((40 + 2) * 10)) d.Image.communication

let test_bad_kernel () =
  checkb "even kernel rejected" true
    (try
       ignore (Image.box_blur 4);
       false
     with Invalid_argument _ -> true)

let qcheck_distributed_image =
  QCheck.Test.make ~name:"distributed convolution equals sequential" ~count:20
    QCheck.(pair (int_range 6 40) small_int)
    (fun (rows, seed) ->
      let rng = Rng.create ~seed () in
      let image = Matrix.random rng ~rows ~cols:12 in
      let speeds = List.init (1 + (seed mod 3)) (fun i -> float_of_int (i + 1)) in
      let star = Star.of_speeds speeds in
      QCheck.assume (rows >= Star.size star);
      let d = Image.distribute star image ~kernel:Image.edge_detect in
      Matrix.approx_equal d.Image.result (Image.convolve image ~kernel:Image.edge_detect))

(* --- database --- *)

let table seed rows =
  Database.generate (Rng.create ~seed ()) ~rows ~groups:10

let test_scan_count () =
  let records = table 114 10_000 in
  let query = Database.count_where ~name:"group0" (fun r -> r.Database.group = 0) in
  let count = Database.scan query records in
  checkb "about a tenth" true (count > 800. && count < 1_200.)

let test_distributed_scan_matches () =
  let records = table 115 20_000 in
  let star = Star.of_speeds ~bandwidth:10. [ 1.; 2.; 4. ] in
  List.iter
    (fun query ->
      let execution = Database.distributed_scan star query records in
      checkf "distributed == sequential" ~eps:1e-9 (Database.scan query records)
        execution.Database.answer)
    [
      Database.count_where ~name:"evens" (fun r -> r.Database.key mod 2 = 0);
      Database.sum_where ~name:"values of group 3"
        (fun r -> r.Database.group = 3)
        (fun r -> r.Database.value);
    ]

let test_distributed_scan_covers_all () =
  let records = table 116 5_000 in
  let star = Star.of_speeds [ 1.; 5. ] in
  let query = Database.count_where ~name:"all" (fun _ -> true) in
  let execution = Database.distributed_scan star query records in
  checkf "every record scanned once" 5_000. execution.Database.answer;
  Alcotest.(check int) "shares partition" 5_000
    (Array.fold_left ( + ) 0 execution.Database.shares)

let test_distributed_scan_speedup () =
  let records = table 117 50_000 in
  let star = Star.of_speeds ~bandwidth:100. [ 1.; 1.; 1.; 1. ] in
  let query = Database.count_where ~name:"all" (fun _ -> true) in
  let execution = Database.distributed_scan star query records in
  checkb "meaningful speedup" true (execution.Database.speedup > 2.)

(* --- stream --- *)

let star_stream = Star.of_speeds ~bandwidth:8. [ 2.; 4. ]

let test_sustainable_fps_compute_bound () =
  (* Huge bandwidth: fps = Σ s / cost. *)
  let star = Star.of_speeds ~bandwidth:1e9 [ 2.; 4. ] in
  checkf "compute-bound fps" ~eps:1e-6 3. (Stream.sustainable_fps star ~frame_size:1. ~frame_cost:2.)

let test_sustainable_fps_port_bound () =
  (* Tiny frames cost nothing to compute; port limits to Σ ... the
     one-port serves at most bw/size frames through the cheapest links:
     with both links bw 8 and size 4, port serves 2 frames/time total. *)
  let star = Star.of_speeds ~bandwidth:8. [ 1e9; 1e9 ] in
  checkf "port-bound fps" ~eps:1e-6 2. (Stream.sustainable_fps star ~frame_size:4. ~frame_cost:1e-9)

let test_burst_rounds_help () =
  let span rounds =
    Stream.burst_makespan star_stream ~frames:600 ~frame_size:2. ~frame_cost:3. ~rounds
  in
  checkb "pipelining helps bursts" true (span 8 <= span 1 +. 1e-9);
  checkb "gain >= 1" true
    (Stream.pipeline_gain star_stream ~frames:600 ~frame_size:2. ~frame_cost:3. >= 1.)

let test_stream_validation () =
  checkb "bad frame rejected" true
    (try
       ignore (Stream.sustainable_fps star_stream ~frame_size:0. ~frame_cost:1.);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "image workload",
      [
        Alcotest.test_case "box blur constant" `Quick test_box_blur_constant_image;
        Alcotest.test_case "edge detect flat" `Quick test_edge_detect_flat_is_zero;
        Alcotest.test_case "sharpen flat" `Quick test_sharpen_identity_on_flat;
        Alcotest.test_case "distributed matches" `Quick test_distributed_convolution_matches;
        Alcotest.test_case "bands cover" `Quick test_distribution_bands_cover;
        Alcotest.test_case "halo accounting" `Quick test_halo_accounting;
        Alcotest.test_case "bad kernel" `Quick test_bad_kernel;
        QCheck_alcotest.to_alcotest qcheck_distributed_image;
      ] );
    ( "database workload",
      [
        Alcotest.test_case "scan count" `Quick test_scan_count;
        Alcotest.test_case "distributed matches" `Quick test_distributed_scan_matches;
        Alcotest.test_case "covers all" `Quick test_distributed_scan_covers_all;
        Alcotest.test_case "speedup" `Quick test_distributed_scan_speedup;
      ] );
    ( "stream workload",
      [
        Alcotest.test_case "compute-bound fps" `Quick test_sustainable_fps_compute_bound;
        Alcotest.test_case "port-bound fps" `Quick test_sustainable_fps_port_bound;
        Alcotest.test_case "burst rounds help" `Quick test_burst_rounds_help;
        Alcotest.test_case "validation" `Quick test_stream_validation;
      ] );
  ]
