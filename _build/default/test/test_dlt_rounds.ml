(* Multi-installment dispatch and makespan bounds. *)

module Star = Platform.Star
module Cost_model = Dlt.Cost_model
module Multi_round = Dlt.Multi_round
module Linear = Dlt.Linear
module Bounds = Dlt.Bounds
module Schedule = Dlt.Schedule

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let star = Star.of_speeds ~bandwidth:1. [ 1.; 2.; 4. ]
let allocation = Linear.parallel_allocation star ~total:60.

let test_single_round_matches_schedule () =
  (* One round under the parallel model reproduces the static schedule's
     makespan. *)
  let simulated =
    Multi_round.makespan Schedule.Parallel star Cost_model.Linear ~allocation ~rounds:1
  in
  checkf "single-round == closed form" ~eps:1e-6
    (Linear.parallel_makespan star ~total:60.)
    simulated

let test_pipelining_helps_one_port () =
  (* With zero latency, cutting each share into rounds overlaps
     communication and computation, so the makespan cannot increase. *)
  let one_port = Linear.one_port_allocation star ~total:60. in
  let span rounds =
    Multi_round.makespan Schedule.One_port star Cost_model.Linear ~allocation:one_port
      ~rounds
  in
  checkb "2 rounds <= 1 round" true (span 2 <= span 1 +. 1e-9);
  checkb "8 rounds <= 2 rounds" true (span 8 <= span 2 +. 1e-9)

let test_latency_penalizes_many_rounds () =
  let lazy_star = Star.of_speeds ~latency:5. [ 1.; 1. ] in
  let alloc = [| 10.; 10. |] in
  let span rounds =
    Multi_round.makespan Schedule.One_port lazy_star Cost_model.Linear ~allocation:alloc
      ~rounds
  in
  checkb "latency makes 64 rounds worse than 1" true (span 64 > span 1)

let test_best_rounds_bracket () =
  let lazy_star = Star.of_speeds ~latency:0.5 [ 1.; 1.; 1. ] in
  let alloc = [| 20.; 20.; 20. |] in
  let rounds, span =
    Multi_round.best_rounds ~max_rounds:32 Schedule.One_port lazy_star Cost_model.Linear
      ~allocation:alloc
  in
  checkb "best rounds in range" true (rounds >= 1 && rounds <= 32);
  let span1 =
    Multi_round.makespan Schedule.One_port lazy_star Cost_model.Linear ~allocation:alloc
      ~rounds:1
  in
  checkb "best no worse than single round" true (span <= span1 +. 1e-9)

let test_chunk_count () =
  let result =
    Multi_round.run Schedule.One_port star Cost_model.Linear ~allocation ~rounds:3
  in
  Alcotest.(check int) "p·rounds chunks" (3 * 3) (List.length result.Multi_round.chunks)

let test_chunks_conserve_data () =
  let result =
    Multi_round.run Schedule.Parallel star Cost_model.Linear ~allocation ~rounds:4
  in
  let shipped =
    List.fold_left (fun acc c -> acc +. c.Multi_round.data) 0. result.Multi_round.chunks
  in
  checkf "data conserved" ~eps:1e-6 60. shipped

let test_nonlinear_chunking_reduces_work () =
  (* §2's "intrinsic linearity": processing W data in independent unit
     chunks executes Σ chunk^α << W^α work. *)
  let hom = Star.of_speeds [ 1. ] in
  let cost = Cost_model.Power 2. in
  let run rounds = Multi_round.run Schedule.Parallel hom cost ~allocation:[| 16. |] ~rounds in
  (* 1 round: comm 16 then compute 16² -> makespan 272. *)
  checkf "single chunk cost" ~eps:1e-9 272. (run 1).Multi_round.makespan;
  (* 16 unit chunks: compute pipelines behind the 1-unit transfers:
     first chunk arrives at t=1, each costs 1 -> makespan 17. *)
  checkf "unit chunks pipeline" ~eps:1e-9 17. (run 16).Multi_round.makespan;
  let executed rounds =
    List.fold_left
      (fun acc c -> acc +. Cost_model.work cost c.Multi_round.data)
      0. (run rounds).Multi_round.chunks
  in
  checkf "whole-load work is quadratic" ~eps:1e-9 256. (executed 1);
  checkf "unit-chunk work is linear" ~eps:1e-9 16. (executed 16)

let test_invalid_inputs () =
  Alcotest.check_raises "rounds must be positive"
    (Invalid_argument "Multi_round.run: rounds must be > 0") (fun () ->
      ignore (Multi_round.run Schedule.Parallel star Cost_model.Linear ~allocation ~rounds:0));
  Alcotest.check_raises "allocation size"
    (Invalid_argument "Multi_round.run: allocation size mismatch") (fun () ->
      ignore
        (Multi_round.run Schedule.Parallel star Cost_model.Linear ~allocation:[| 1. |]
           ~rounds:1))

let test_ideal_makespan () =
  checkf "W / Σs" (100. /. 7.) (Bounds.ideal_makespan star Cost_model.Linear ~total:100.)

let test_communication_bound () =
  checkf "total / Σbw" (100. /. 3.) (Bounds.communication_bound star ~total:100.)

let test_efficiency_bounded () =
  let makespan = Linear.parallel_makespan star ~total:100. in
  let eff = Bounds.efficiency star Cost_model.Linear ~total:100. ~makespan in
  checkb "efficiency in (0,1]" true (eff > 0. && eff <= 1.)

let test_divisible_ideal_linear_matches () =
  checkf "divisible ideal == ideal for linear" ~eps:1e-6
    (Bounds.ideal_makespan star Cost_model.Linear ~total:100.)
    (Bounds.divisible_ideal_makespan star Cost_model.Linear ~total:100.)

let test_divisible_ideal_below_schedule () =
  let cost = Cost_model.Power 2. in
  let _, makespan =
    Dlt.Nonlinear.equal_finish_allocation Schedule.Parallel star cost ~total:50.
  in
  checkb "compute-only bound below full makespan" true
    (Bounds.divisible_ideal_makespan star cost ~total:50. <= makespan +. 1e-9)

let qcheck_multi_round_monotone_data =
  QCheck.Test.make ~name:"multi-round conserves data over random allocations" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 6) (float_range 0.5 10.))
        (int_range 1 10))
    (fun (speeds, rounds) ->
      let star = Star.of_speeds speeds in
      let allocation = Linear.parallel_allocation star ~total:30. in
      let result =
        Multi_round.run Schedule.One_port star Cost_model.Linear ~allocation ~rounds
      in
      let shipped =
        List.fold_left (fun acc c -> acc +. c.Multi_round.data) 0. result.Multi_round.chunks
      in
      Float.abs (shipped -. 30.) < 1e-6)

let suites =
  [
    ( "multi-round",
      [
        Alcotest.test_case "single round matches closed form" `Quick
          test_single_round_matches_schedule;
        Alcotest.test_case "pipelining helps" `Quick test_pipelining_helps_one_port;
        Alcotest.test_case "latency penalizes rounds" `Quick test_latency_penalizes_many_rounds;
        Alcotest.test_case "best rounds" `Quick test_best_rounds_bracket;
        Alcotest.test_case "chunk count" `Quick test_chunk_count;
        Alcotest.test_case "data conserved" `Quick test_chunks_conserve_data;
        Alcotest.test_case "nonlinear chunking linearizes" `Quick
          test_nonlinear_chunking_reduces_work;
        Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
        QCheck_alcotest.to_alcotest qcheck_multi_round_monotone_data;
      ] );
    ( "bounds",
      [
        Alcotest.test_case "ideal makespan" `Quick test_ideal_makespan;
        Alcotest.test_case "communication bound" `Quick test_communication_bound;
        Alcotest.test_case "efficiency bounded" `Quick test_efficiency_bounded;
        Alcotest.test_case "divisible ideal linear" `Quick test_divisible_ideal_linear_matches;
        Alcotest.test_case "divisible ideal below schedule" `Quick
          test_divisible_ideal_below_schedule;
      ] );
  ]
