(* Non-linear DLT (paper §2): the numerical allocation solver, the
   homogeneous closed form, and the no-free-lunch fraction. *)

module Star = Platform.Star
module Processor = Platform.Processor
module Cost_model = Dlt.Cost_model
module Nonlinear = Dlt.Nonlinear
module Linear = Dlt.Linear
module Fraction = Dlt.Fraction
module Schedule = Dlt.Schedule

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let hom_star p = Star.of_speeds (List.init p (fun _ -> 1.))
let het_star = Star.of_speeds ~bandwidth:2. [ 1.; 3.; 5.; 7. ]

let test_worker_share_roundtrip () =
  let proc = Processor.make ~id:1 ~speed:2. ~bandwidth:4. () in
  let cost = Cost_model.Power 2. in
  let deadline = 10. in
  let n = Nonlinear.worker_share Schedule.Parallel proc cost ~offset:0. ~deadline in
  (* c·n + w·n² should hit the deadline exactly. *)
  checkf "finish = deadline" ~eps:1e-6 deadline ((0.25 *. n) +. (0.5 *. n *. n))

let test_worker_share_zero_budget () =
  let proc = Processor.make ~id:1 ~speed:1. () in
  checkf "no time, no load" 0.
    (Nonlinear.worker_share Schedule.Parallel proc Cost_model.Linear ~offset:5. ~deadline:5.)

let test_homogeneous_equal_split () =
  let star = hom_star 8 in
  let allocation, _ =
    Nonlinear.equal_finish_allocation Schedule.Parallel star (Cost_model.Power 2.)
      ~total:100.
  in
  Array.iter (fun n -> checkf "N/p each" ~eps:1e-6 12.5 n) allocation

let test_homogeneous_makespan_formula () =
  let star = hom_star 4 in
  let cost = Cost_model.Power 2. in
  let _, makespan =
    Nonlinear.equal_finish_allocation Schedule.Parallel star cost ~total:100.
  in
  checkf "c·N/p + w·(N/p)^2" ~eps:1e-5
    (Nonlinear.homogeneous_makespan ~c:1. ~w:1. cost ~p:4 ~total:100.)
    makespan

let test_equal_finish_sums () =
  List.iter
    (fun model ->
      let allocation, _ =
        Nonlinear.equal_finish_allocation model het_star (Cost_model.Power 2.) ~total:50.
      in
      checkf "sums to total" ~eps:1e-6 50. (Numerics.Kahan.sum allocation))
    [ Schedule.Parallel; Schedule.One_port ]

let test_equal_finish_times_parallel () =
  let cost = Cost_model.Power 1.7 in
  let allocation, makespan =
    Nonlinear.equal_finish_allocation Schedule.Parallel het_star cost ~total:50.
  in
  Array.iteri
    (fun i n ->
      let proc = Star.worker het_star i in
      let finish = Processor.transfer_time proc ~data:n
                   +. Processor.compute_time proc ~work:(Cost_model.work cost n) in
      checkf "worker finishes at makespan" ~eps:1e-5 makespan finish)
    allocation

let test_equal_finish_times_one_port () =
  let cost = Cost_model.Power 2. in
  let allocation, makespan =
    Nonlinear.equal_finish_allocation Schedule.One_port het_star cost ~total:50.
  in
  let offset = ref 0. in
  Array.iteri
    (fun i n ->
      let proc = Star.worker het_star i in
      let fetch = Processor.transfer_time proc ~data:n in
      let finish =
        !offset +. fetch +. Processor.compute_time proc ~work:(Cost_model.work cost n)
      in
      offset := !offset +. fetch;
      checkf "sequential finish at makespan" ~eps:1e-5 makespan finish)
    allocation

let test_faster_workers_get_more () =
  let allocation, _ =
    Nonlinear.equal_finish_allocation Schedule.Parallel het_star (Cost_model.Power 2.)
      ~total:50.
  in
  for i = 0 to Array.length allocation - 2 do
    checkb "monotone in speed" true (allocation.(i) <= allocation.(i + 1) +. 1e-9)
  done

let test_alpha_one_matches_linear () =
  let allocation_nl, _ =
    Nonlinear.equal_finish_allocation Schedule.Parallel het_star Cost_model.Linear
      ~total:50.
  in
  let allocation_lin = Linear.parallel_allocation het_star ~total:50. in
  Array.iteri
    (fun i n -> checkf "matches linear closed form" ~eps:1e-6 allocation_lin.(i) n)
    allocation_nl

let test_schedule_valid () =
  List.iter
    (fun model ->
      let cost = Cost_model.Power 2. in
      let schedule = Nonlinear.schedule model het_star cost ~total:20. in
      match Schedule.validate model cost schedule with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [ Schedule.Parallel; Schedule.One_port ]

let qcheck_quadratic_closed_form =
  (* The generic root-finder must agree with the analytic positive root
     for alpha = 2 (Suresh et al.'s second-order loads). *)
  QCheck.Test.make ~name:"numeric worker_share = quadratic closed form" ~count:200
    QCheck.(
      triple (float_range 0.1 10.) (float_range 0.1 10.) (float_range 0.1 100.))
    (fun (speed, bandwidth, deadline) ->
      let proc = Processor.make ~id:1 ~speed ~bandwidth () in
      let numeric =
        Nonlinear.worker_share Schedule.Parallel proc (Cost_model.Power 2.) ~offset:0.
          ~deadline
      in
      let analytic = Nonlinear.quadratic_share proc ~offset:0. ~deadline in
      Float.abs (numeric -. analytic) < 1e-6 *. (1. +. analytic))

let test_quadratic_share_zero_budget () =
  let proc = Processor.make ~id:1 ~speed:1. ~latency:5. () in
  Alcotest.(check (float 0.)) "no budget, no load" 0.
    (Nonlinear.quadratic_share proc ~offset:0. ~deadline:4.)

let test_fraction_closed_forms () =
  checkf "alpha=2, p=10" 0.1 (Fraction.power_partial_fraction ~alpha:2. ~p:10);
  checkf "alpha=3, p=4" 0.0625 (Fraction.power_partial_fraction ~alpha:3. ~p:4);
  checkf "alpha=1 keeps all" 1. (Fraction.power_partial_fraction ~alpha:1. ~p:100);
  checkf "remaining complement" 0.9 (Fraction.power_remaining_fraction ~alpha:2. ~p:10)

let test_fraction_measured_equal_split () =
  (* Equal split of N into p parts does exactly p^(1-alpha) of the work. *)
  let p = 8 and total = 200. in
  let allocation = Nonlinear.homogeneous_allocation ~p ~total in
  checkf "measured matches closed form" ~eps:1e-12
    (Fraction.power_partial_fraction ~alpha:2. ~p)
    (Fraction.done_fraction (Cost_model.Power 2.) ~allocation ~total)

let test_sorting_gap () =
  checkf "log p / log n" (log 8. /. log 1024.) (Fraction.sorting_gap ~n:1024. ~p:8)

let test_no_free_lunch_vanishes () =
  (* The §2 claim: the useful fraction tends to 0 as p grows. *)
  let f p = Fraction.power_partial_fraction ~alpha:2. ~p in
  checkb "decreasing" true (f 10 > f 100 && f 100 > f 1000);
  checkb "vanishing" true (f 100_000 < 1e-4)

let qcheck_equal_finish =
  QCheck.Test.make ~name:"nonlinear solver: equal finish on random platforms" ~count:50
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 10) (float_range 0.2 20.))
        (float_range 1. 3.))
    (fun (speeds, alpha) ->
      let star = Star.of_speeds speeds in
      let cost = Cost_model.of_alpha alpha in
      let allocation, makespan =
        Nonlinear.equal_finish_allocation Schedule.Parallel star cost ~total:10.
      in
      let ok = ref (Float.abs (Numerics.Kahan.sum allocation -. 10.) < 1e-6) in
      Array.iteri
        (fun i n ->
          let proc = Star.worker star i in
          let finish =
            Processor.transfer_time proc ~data:n
            +. Processor.compute_time proc ~work:(Cost_model.work cost n)
          in
          if Float.abs (finish -. makespan) > 1e-4 *. makespan then ok := false)
        allocation;
      !ok)

let qcheck_fraction_bounds =
  QCheck.Test.make ~name:"done_fraction in (0,1] for any split" ~count:200
    QCheck.(
      pair (array_of_size Gen.(int_range 1 20) (float_range 0.01 10.)) (float_range 1. 4.))
    (fun (parts, alpha) ->
      let total = Numerics.Kahan.sum parts in
      let f = Fraction.done_fraction (Cost_model.of_alpha alpha) ~allocation:parts ~total in
      f > 0. && f <= 1. +. 1e-9)

let suites =
  [
    ( "nonlinear DLT",
      [
        Alcotest.test_case "worker share roundtrip" `Quick test_worker_share_roundtrip;
        Alcotest.test_case "worker share zero budget" `Quick test_worker_share_zero_budget;
        Alcotest.test_case "homogeneous equal split" `Quick test_homogeneous_equal_split;
        Alcotest.test_case "homogeneous makespan" `Quick test_homogeneous_makespan_formula;
        Alcotest.test_case "allocations sum" `Quick test_equal_finish_sums;
        Alcotest.test_case "equal finish (parallel)" `Quick test_equal_finish_times_parallel;
        Alcotest.test_case "equal finish (one-port)" `Quick test_equal_finish_times_one_port;
        Alcotest.test_case "monotone in speed" `Quick test_faster_workers_get_more;
        Alcotest.test_case "alpha=1 is linear" `Quick test_alpha_one_matches_linear;
        Alcotest.test_case "schedules validate" `Quick test_schedule_valid;
        Alcotest.test_case "quadratic zero budget" `Quick test_quadratic_share_zero_budget;
        QCheck_alcotest.to_alcotest qcheck_equal_finish;
        QCheck_alcotest.to_alcotest qcheck_quadratic_closed_form;
      ] );
    ( "no free lunch (fractions)",
      [
        Alcotest.test_case "closed forms" `Quick test_fraction_closed_forms;
        Alcotest.test_case "measured equal split" `Quick test_fraction_measured_equal_split;
        Alcotest.test_case "sorting gap" `Quick test_sorting_gap;
        Alcotest.test_case "fraction vanishes with p" `Quick test_no_free_lunch_vanishes;
        QCheck_alcotest.to_alcotest qcheck_fraction_bounds;
      ] );
  ]
