(* Statistics, compensated summation, root finding, apportionment,
   and the text-rendering helpers. *)

module Stats = Numerics.Stats
module Kahan = Numerics.Kahan
module Roots = Numerics.Roots
module Apportion = Numerics.Apportion

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- Stats --- *)

let test_mean_basic () = checkf "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_variance_known () =
  checkf "sample variance" ~eps:1e-12 2.5 (Stats.variance [| 1.; 2.; 3.; 4.; 5. |])

let test_variance_constant () = checkf "constant variance" 0. (Stats.variance [| 3.; 3.; 3. |])
let test_variance_singleton () = checkf "singleton variance" 0. (Stats.variance [| 42. |])

let test_summary () =
  let s = Stats.summarize [| 5.; 1.; 3. |] in
  checkf "summary mean" 3. s.Stats.mean;
  checkf "summary min" 1. s.Stats.min;
  checkf "summary max" 5. s.Stats.max;
  Alcotest.(check int) "summary n" 3 s.Stats.n

let test_median_odd () = checkf "odd median" 3. (Stats.median [| 5.; 1.; 3. |])
let test_median_even () = checkf "even median" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_quantiles () =
  let a = [| 0.; 1.; 2.; 3.; 4. |] in
  checkf "q0" 0. (Stats.quantile a 0.);
  checkf "q1" 4. (Stats.quantile a 1.);
  checkf "q0.25" 1. (Stats.quantile a 0.25)

let test_quantile_does_not_mutate () =
  let a = [| 3.; 1.; 2. |] in
  ignore (Stats.quantile a 0.5);
  Alcotest.(check (array (float 0.))) "input untouched" [| 3.; 1.; 2. |] a

let test_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (a, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile a lo <= Stats.quantile a hi +. 1e-9)

let qcheck_mean_bounds =
  QCheck.Test.make ~name:"mean between min and max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun a ->
      let s = Stats.summarize a in
      s.Stats.min -. 1e-9 <= s.Stats.mean && s.Stats.mean <= s.Stats.max +. 1e-9)

(* --- Kahan --- *)

let test_kahan_catastrophic () =
  (* Naive summation loses the +1 entirely. *)
  checkf "compensated sum" 2. (Kahan.sum [| 1e16; 1.; -1e16; 1. |])

let test_kahan_small_series () =
  let n = 100_000 in
  let a = Array.make n 0.1 in
  checkf "0.1 * 1e5" ~eps:1e-9 10_000. (Kahan.sum a)

let test_kahan_incremental () =
  let t = Kahan.create () in
  List.iter (Kahan.add t) [ 1e16; 1.; -1e16; 1. ];
  checkf "incremental" 2. (Kahan.total t)

let test_kahan_sum_by () =
  checkf "sum_by squares" 14. (Kahan.sum_by (fun x -> x *. x) [| 1.; 2.; 3. |])

(* --- Roots --- *)

let test_bisect_sqrt2 () =
  let f x = (x *. x) -. 2. in
  checkf "bisect sqrt 2" ~eps:1e-9 (sqrt 2.) (Roots.bisect ~f ~lo:0. ~hi:2. ())

let test_brent_sqrt2 () =
  let f x = (x *. x) -. 2. in
  checkf "brent sqrt 2" ~eps:1e-9 (sqrt 2.) (Roots.brent ~f ~lo:0. ~hi:2. ())

let test_brent_transcendental () =
  (* Root of cos x - x (the Dottie number). *)
  let f x = cos x -. x in
  checkf "dottie" ~eps:1e-9 0.7390851332151607 (Roots.brent ~f ~lo:0. ~hi:1. ())

let test_no_bracket () =
  Alcotest.check_raises "no bracket" Roots.No_bracket (fun () ->
      ignore (Roots.brent ~f:(fun x -> (x *. x) +. 1.) ~lo:(-1.) ~hi:1. ()))

let test_newton_converges () =
  let f x = (x *. x) -. 2. in
  let df x = 2. *. x in
  match Roots.newton ~f ~df ~x0:1. () with
  | Some x -> checkf "newton sqrt 2" ~eps:1e-9 (sqrt 2.) x
  | None -> Alcotest.fail "newton failed to converge"

let test_newton_zero_derivative () =
  match Roots.newton ~f:(fun _ -> 1.) ~df:(fun _ -> 0.) ~x0:1. () with
  | Some _ -> Alcotest.fail "should not converge"
  | None -> ()

let test_expand_bracket () =
  let f x = x -. 100. in
  match Roots.expand_bracket ~f ~lo:0. ~hi:1. () with
  | Some (lo, hi) -> checkb "brackets" true (f lo *. f hi <= 0.)
  | None -> Alcotest.fail "expand_bracket failed"

let test_expand_bracket_none () =
  match Roots.expand_bracket ~f:(fun _ -> 1.) ~lo:0. ~hi:1. ~max_iter:8 () with
  | Some _ -> Alcotest.fail "no root exists"
  | None -> ()

let qcheck_brent_polynomial =
  (* x^3 - c has the unique real root c^(1/3). *)
  QCheck.Test.make ~name:"brent solves cube roots" ~count:200
    QCheck.(float_range 0.1 1000.)
    (fun c ->
      let f x = (x *. x *. x) -. c in
      let root = Roots.brent ~f ~lo:0. ~hi:(Float.max 1. c) () in
      Float.abs (root -. (c ** (1. /. 3.))) < 1e-6 *. (1. +. c))

(* --- Apportion --- *)

let test_apportion_exact () =
  Alcotest.(check (array int)) "exact split" [| 2; 3; 5 |]
    (Apportion.largest_remainder ~weights:[| 2.; 3.; 5. |] ~total:10)

let test_apportion_rounding () =
  let parts = Apportion.largest_remainder ~weights:[| 1.; 1.; 1. |] ~total:10 in
  Alcotest.(check int) "sums to total" 10 (Array.fold_left ( + ) 0 parts);
  checkb "within one of fair share" true
    (Array.for_all (fun p -> p = 3 || p = 4) parts)

let test_apportion_zero_total () =
  Alcotest.(check (array int)) "zero total" [| 0; 0 |]
    (Apportion.largest_remainder ~weights:[| 1.; 2. |] ~total:0)

let qcheck_apportion =
  QCheck.Test.make ~name:"apportionment: sums, within-1 fairness" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 30) (float_range 0.01 100.))
        (int_range 0 10_000))
    (fun (weights, total) ->
      let parts = Apportion.largest_remainder ~weights ~total in
      let sum_w = Array.fold_left ( +. ) 0. weights in
      Array.fold_left ( + ) 0 parts = total
      && Array.for_all2
           (fun part w ->
             let exact = w /. sum_w *. float_of_int total in
             float_of_int part > exact -. 1. -. 1e-6
             && float_of_int part < exact +. 1. +. 1e-6)
           parts weights)

(* --- Text rendering --- *)

let test_table_render () =
  let t = Numerics.Ascii_table.create ~headers:[ "a"; "bb" ] in
  Numerics.Ascii_table.add_row t [ "1"; "22" ];
  let rendered = Numerics.Ascii_table.render t in
  checkb "contains header" true (String.length rendered > 0);
  checkb "has rule line" true (String.contains rendered '-')

let test_table_bad_row () =
  let t = Numerics.Ascii_table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Ascii_table.add_row: expected 2 cells, got 1") (fun () ->
      Numerics.Ascii_table.add_row t [ "only" ])

let test_chart_render () =
  let series =
    { Numerics.Ascii_chart.label = "x"; points = [| (0., 0.); (1., 1.); (2., 4.) |] }
  in
  let rendered = Numerics.Ascii_chart.render [ series ] in
  checkb "chart non-empty" true (String.length rendered > 0);
  checkb "legend present" true
    (String.length rendered >= 3 && String.contains rendered '[')

let test_chart_empty () =
  Alcotest.(check string) "empty chart" "" (Numerics.Ascii_chart.render [])

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean_basic;
        Alcotest.test_case "variance known" `Quick test_variance_known;
        Alcotest.test_case "variance constant" `Quick test_variance_constant;
        Alcotest.test_case "variance singleton" `Quick test_variance_singleton;
        Alcotest.test_case "summary" `Quick test_summary;
        Alcotest.test_case "median odd" `Quick test_median_odd;
        Alcotest.test_case "median even" `Quick test_median_even;
        Alcotest.test_case "quantiles" `Quick test_quantiles;
        Alcotest.test_case "quantile pure" `Quick test_quantile_does_not_mutate;
        Alcotest.test_case "empty raises" `Quick test_empty_raises;
        QCheck_alcotest.to_alcotest qcheck_quantile_monotone;
        QCheck_alcotest.to_alcotest qcheck_mean_bounds;
      ] );
    ( "kahan",
      [
        Alcotest.test_case "catastrophic cancellation" `Quick test_kahan_catastrophic;
        Alcotest.test_case "long series" `Quick test_kahan_small_series;
        Alcotest.test_case "incremental" `Quick test_kahan_incremental;
        Alcotest.test_case "sum_by" `Quick test_kahan_sum_by;
      ] );
    ( "roots",
      [
        Alcotest.test_case "bisect sqrt2" `Quick test_bisect_sqrt2;
        Alcotest.test_case "brent sqrt2" `Quick test_brent_sqrt2;
        Alcotest.test_case "brent dottie" `Quick test_brent_transcendental;
        Alcotest.test_case "no bracket raises" `Quick test_no_bracket;
        Alcotest.test_case "newton converges" `Quick test_newton_converges;
        Alcotest.test_case "newton flat fails" `Quick test_newton_zero_derivative;
        Alcotest.test_case "expand bracket" `Quick test_expand_bracket;
        Alcotest.test_case "expand bracket none" `Quick test_expand_bracket_none;
        QCheck_alcotest.to_alcotest qcheck_brent_polynomial;
      ] );
    ( "apportion",
      [
        Alcotest.test_case "exact" `Quick test_apportion_exact;
        Alcotest.test_case "rounding" `Quick test_apportion_rounding;
        Alcotest.test_case "zero total" `Quick test_apportion_zero_total;
        QCheck_alcotest.to_alcotest qcheck_apportion;
      ] );
    ( "text rendering",
      [
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table arity" `Quick test_table_bad_row;
        Alcotest.test_case "chart render" `Quick test_chart_render;
        Alcotest.test_case "chart empty" `Quick test_chart_empty;
      ] );
  ]
