(* Integer zones and the block-cyclic distribution. *)

module Zone = Linalg.Zone
module Block_cyclic = Linalg.Block_cyclic
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)

let test_zone_measures () =
  let z = { Zone.row0 = 2; rows = 3; col0 = 1; cols = 4 } in
  Alcotest.(check int) "area" 12 (Zone.area z);
  Alcotest.(check int) "half perimeter" 7 (Zone.half_perimeter z);
  checkb "contains" true (Zone.contains z ~row:4 ~col:4);
  checkb "excludes" false (Zone.contains z ~row:5 ~col:4)

let test_uniform_grid_tiles () =
  List.iter
    (fun (p, n) ->
      let zones = Zone.uniform_grid ~p ~n in
      Alcotest.(check int) "p zones" p (Array.length zones);
      match Zone.validate_tiling ~n zones with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "p=%d n=%d: %s" p n msg))
    [ (1, 5); (4, 8); (6, 10); (12, 13); (7, 21) ]

let test_platform_zones_tile () =
  let rng = Rng.create ~seed:21 () in
  let star = Platform.Profiles.generate rng ~p:10 Platform.Profiles.paper_uniform in
  let zones = Zone.for_platform star ~n:64 in
  match Zone.validate_tiling ~n:64 zones with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_platform_zones_proportional () =
  let star = Star.of_speeds [ 1.; 3. ] in
  let zones = Zone.for_platform star ~n:100 in
  (* Areas should be ~2500 and ~7500, apportioned on a 100x100 grid. *)
  let a0 = Zone.area zones.(0) and a1 = Zone.area zones.(1) in
  Alcotest.(check int) "total area" 10_000 (a0 + a1);
  checkb "proportional" true (abs (a1 - (3 * a0)) < 300)

let test_validate_catches_overlap () =
  let zones =
    [|
      { Zone.row0 = 0; rows = 3; col0 = 0; cols = 4 };
      { Zone.row0 = 2; rows = 2; col0 = 0; cols = 4 };
    |]
  in
  match Zone.validate_tiling ~n:4 zones with
  | Ok () -> Alcotest.fail "overlap accepted"
  | Error msg -> checkb "reports duplication" true (String.length msg > 0)

let test_validate_catches_gap () =
  let zones = [| { Zone.row0 = 0; rows = 2; col0 = 0; cols = 4 } |] in
  match Zone.validate_tiling ~n:4 zones with
  | Ok () -> Alcotest.fail "gap accepted"
  | Error _ -> ()

let qcheck_zones_tile =
  QCheck.Test.make ~name:"platform zones always tile the domain" ~count:100
    QCheck.(
      pair (list_of_size Gen.(int_range 1 12) (float_range 0.1 20.)) (int_range 4 48))
    (fun (speeds, n) ->
      let star = Star.of_speeds speeds in
      let zones = Zone.for_platform star ~n in
      match Zone.validate_tiling ~n zones with Ok () -> true | Error _ -> false)

let qcheck_zone_areas_close =
  QCheck.Test.make ~name:"zone areas within a row+col of the prescription" ~count:100
    QCheck.(
      pair (list_of_size Gen.(int_range 1 8) (float_range 0.5 10.)) (int_range 16 64))
    (fun (speeds, n) ->
      let star = Star.of_speeds speeds in
      let x = Star.relative_speeds star in
      let zones = Zone.for_platform star ~n in
      Array.for_all2
        (fun z xi ->
          let exact = xi *. float_of_int (n * n) in
          Float.abs (float_of_int (Zone.area z) -. exact) <= float_of_int (2 * n))
        zones x)

let test_block_cyclic_owner () =
  let d = Block_cyclic.create ~grid_rows:2 ~grid_cols:2 ~block:2 ~n:8 in
  Alcotest.(check int) "origin owner" 0 (Block_cyclic.owner d ~row:0 ~col:0);
  Alcotest.(check int) "block (0,1) owner" 1 (Block_cyclic.owner d ~row:0 ~col:2);
  Alcotest.(check int) "block (1,0) owner" 2 (Block_cyclic.owner d ~row:2 ~col:0);
  Alcotest.(check int) "wraps" 0 (Block_cyclic.owner d ~row:4 ~col:4)

let test_block_cyclic_load_balanced () =
  let d = Block_cyclic.create ~grid_rows:2 ~grid_cols:2 ~block:2 ~n:8 in
  let loads = Block_cyclic.load d in
  Array.iter (fun l -> Alcotest.(check int) "16 cells each" 16 l) loads;
  Alcotest.(check int) "covers matrix" 64 (Array.fold_left ( + ) 0 loads)

let test_block_cyclic_comm_matches_blocked () =
  (* A q×q cyclic distribution moves the same volume as q×q square
     zones: n·Σ(rows+cols) = n·(q·n/q + q·n/q)·... = 2n²·q. *)
  let n = 16 and q = 4 in
  let d = Block_cyclic.create ~grid_rows:q ~grid_cols:q ~block:2 ~n in
  Alcotest.(check int) "volume 2n²q" (2 * n * n * q) (Block_cyclic.communication_volume d)

let test_block_cyclic_owner_bounds () =
  let d = Block_cyclic.create ~grid_rows:2 ~grid_cols:3 ~block:4 ~n:10 in
  Alcotest.check_raises "row OOB" (Invalid_argument "Block_cyclic.owner: out of bounds")
    (fun () -> ignore (Block_cyclic.owner d ~row:10 ~col:0))

let qcheck_block_cyclic_partition =
  QCheck.Test.make ~name:"block-cyclic loads partition the matrix" ~count:100
    QCheck.(triple (int_range 1 4) (int_range 1 4) (pair (int_range 1 5) (int_range 4 32)))
    (fun (q, r, (block, n)) ->
      let d = Block_cyclic.create ~grid_rows:q ~grid_cols:r ~block ~n in
      (* Count ownership cell by cell and compare with load. *)
      let counted = Array.make (q * r) 0 in
      for row = 0 to n - 1 do
        for col = 0 to n - 1 do
          let o = Block_cyclic.owner d ~row ~col in
          counted.(o) <- counted.(o) + 1
        done
      done;
      counted = Block_cyclic.load d)

let suites =
  [
    ( "zones",
      [
        Alcotest.test_case "measures" `Quick test_zone_measures;
        Alcotest.test_case "uniform grid tiles" `Quick test_uniform_grid_tiles;
        Alcotest.test_case "platform zones tile" `Quick test_platform_zones_tile;
        Alcotest.test_case "areas proportional" `Quick test_platform_zones_proportional;
        Alcotest.test_case "overlap caught" `Quick test_validate_catches_overlap;
        Alcotest.test_case "gap caught" `Quick test_validate_catches_gap;
        QCheck_alcotest.to_alcotest qcheck_zones_tile;
        QCheck_alcotest.to_alcotest qcheck_zone_areas_close;
      ] );
    ( "block cyclic",
      [
        Alcotest.test_case "owner" `Quick test_block_cyclic_owner;
        Alcotest.test_case "load balanced" `Quick test_block_cyclic_load_balanced;
        Alcotest.test_case "comm matches blocked" `Quick test_block_cyclic_comm_matches_blocked;
        Alcotest.test_case "owner bounds" `Quick test_block_cyclic_owner_bounds;
        QCheck_alcotest.to_alcotest qcheck_block_cyclic_partition;
      ] );
  ]
