let () = exit (Cmdliner.Cmd.eval' Lint.Cmd.command)
