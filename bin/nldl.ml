let () = exit (Cli.run ())
