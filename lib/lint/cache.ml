(* Digest-keyed per-file analysis cache.

   Phase 1 of the lint pipeline (parse + per-file rules + fragment
   extraction) dominates lint wall-clock; its output depends only on the
   file's path and content, so it is cached on disk keyed by
   [Source.digest].  Phase 2 (graph + R401-403) is whole-program and
   always recomputed — it is linear and cheap.

   Entries are [Marshal]ed, which is not layout-safe across binaries, so
   the cache directory is namespaced by a format version *and* a stamp
   of the running executable (size + mtime): rebuilding the linter — the
   only way rule semantics can change — invalidates everything, and two
   different binaries (e.g. the CLI and the test runner) never share
   entries.  Any read failure is treated as a miss. *)

let format_version = 1

type payload = {
  p_findings : Finding.t list;  (* per-file (phase 1) findings *)
  p_fragment : Callgraph.fragment;
}

let binary_stamp =
  lazy
    (try
       let st = Unix.stat Sys.executable_name in
       Printf.sprintf "%d-%.0f" st.Unix.st_size st.Unix.st_mtime
     with _ -> "nostat")

let default_dir () =
  let tmp = Filename.get_temp_dir_name () in
  let tag =
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "nldl-lint-v%d-%s" format_version
            (Lazy.force binary_stamp)))
  in
  Filename.concat tmp ("nldl-lint-cache-" ^ String.sub tag 0 16)

let ensure_dir dir =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    true
  with _ -> Sys.file_exists dir

let entry_path dir digest = Filename.concat dir (digest ^ ".bin")

let load ~dir ~digest =
  let path = entry_path dir digest in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let v = (Marshal.from_channel ic : payload) in
          Some v)
    with _ -> None

let store ~dir ~digest payload =
  if ensure_dir dir then
    try
      let path = entry_path dir digest in
      let tmp =
        Printf.sprintf "%s.%d.tmp" path (Unix.getpid ())
      in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Marshal.to_channel oc payload []);
      Sys.rename tmp path
    with _ -> ()
