open Cmdliner

type outcome = {
  header : string list;
  rows : string list list;
  out_json : Obs.Json.t;
  status : int;
}

let dirs =
  Arg.(
    value & pos_all string Driver.default_roots
    & info [] ~docv:"DIR" ~doc:"Directories to lint (default: lib bin bench test).")

let root =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Repository root; DIRs and --baseline are resolved against it.")

let baseline =
  Arg.(
    value & opt string "lint_baseline.txt"
    & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline of tolerated findings.")

let update =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:"Rewrite the baseline to the current findings instead of gating.")

let json_out ~name =
  Arg.(
    value
    & opt (some string) None
    & info [ name ] ~docv:"FILE"
        ~doc:"Write the findings as JSON to $(docv) (\"-\" = stdout).")

let graph_json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph-json" ] ~docv:"FILE"
        ~doc:
          "Write the call-graph/escape-set artifact to $(docv) (\"-\" = \
           stdout).")

let no_cache =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the digest-keyed phase-1 cache.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Phase-1 cache directory (default: under the system temp dir).")

let rules_flag =
  Arg.(value & flag & info [ "rules" ] ~doc:"List the rule catalog and exit.")

let print_rules () =
  List.iter
    (fun (id, synopsis) -> Printf.printf "%-5s %s\n" id synopsis)
    Rules.catalog

let execute root dirs baseline update json_out graph_json_out no_cache cache_dir
    rules () =
  if rules then begin
    print_rules ();
    { header = [ "rule"; "synopsis" ]; rows = []; out_json = Obs.Json.Null; status = 0 }
  end
  else begin
    let r =
      Driver.run ~root ~roots:dirs ~baseline_file:baseline ~update_baseline:update
        ?cache_dir ~use_cache:(not no_cache) ()
    in
    print_string (Driver.render r);
    let j = Driver.json r in
    (match json_out with
    | None -> ()
    | Some "-" -> print_string (Obs.Json.to_string j)
    | Some path ->
        Obs.Json.write_file path j;
        Printf.eprintf "Lint findings written to %s\n%!" path);
    (match graph_json_out with
    | None -> ()
    | Some "-" -> print_string (Obs.Json.to_string (Driver.graph_json r))
    | Some path ->
        Obs.Json.write_file path (Driver.graph_json r);
        Printf.eprintf "Call graph written to %s\n%!" path);
    {
      header = [ "rule"; "file"; "line"; "col"; "message" ];
      rows =
        List.map
          (fun (f : Finding.t) ->
            [ f.rule; f.file; string_of_int f.line; string_of_int f.col; f.message ])
          r.findings;
      out_json = j;
      status = (if update || Driver.gate_ok r then 0 else 1);
    }
  end

let make_thunk_term ~json_flag =
  Term.(
    const execute $ root $ dirs $ baseline $ update $ json_out ~name:json_flag
    $ graph_json_out $ no_cache $ cache_dir $ rules_flag)

let thunk_term = make_thunk_term ~json_flag:"json"

(* The Experiments.Registry wrapper already owns [--json] (series dump),
   so the embedded [nldl lint] subcommand exposes the artifact under a
   distinct name. *)
let embedded_term = make_thunk_term ~json_flag:"lint-json"

let command =
  let doc = "Static invariant checker for the nldl tree (D/U/S/H/R rules)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml/.mli under the given directories with compiler-libs \
         and enforces the project invariants: determinism (D-rules), audited \
         unsafe zones (U-rules), domain safety of pool-executed libraries \
         (S-rules), hygiene (H-rules), and the interprocedural race / \
         proof-obligation / blocking-call rules (R-rules) over a whole-program \
         call graph.  Exits 1 when a finding is not absorbed by the committed \
         baseline.";
    ]
  in
  Cmd.v
    (Cmd.info "nldl_lint" ~doc ~man)
    Term.(const (fun thunk -> (thunk ()).status) $ thunk_term)
