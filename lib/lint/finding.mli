(** One lint finding: a rule id anchored to a source location.

    Findings are value types ordered by (file, line, col, rule) so
    reports and baselines are deterministic regardless of rule
    registration or file-walk order. *)

type t = {
  rule : string;  (** rule id, e.g. ["U101"] *)
  file : string;  (** repo-relative path with ['/'] separators *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

val make : rule:string -> file:string -> line:int -> col:int -> message:string -> t

val of_loc : rule:string -> file:string -> loc:Location.t -> message:string -> t
(** Anchor at [loc]'s start position. *)

val compare : t -> t -> int

val key : t -> string
(** Baseline identity: [rule ^ "|" ^ file ^ "|" ^ message] — the line
    number is deliberately excluded so unrelated edits above a
    baselined finding do not re-open it. *)

val to_string : t -> string
(** [file:line:col: \[rule\] message] — the compiler's error format, so
    editors and CI log scrapers link it. *)

val to_json : t -> Obs.Json.t
