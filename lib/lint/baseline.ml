type entry = { rule : string; file : string; line : int; message : string }

let key_of_entry e = e.rule ^ "|" ^ e.file ^ "|" ^ e.message

(* "rule|file|line|message": the first three fields cannot contain
   '|', the message keeps any it has. *)
let parse_line s =
  match String.index_opt s '|' with
  | None -> None
  | Some i -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt rest '|' with
      | None -> None
      | Some j -> (
          let tail = String.sub rest (j + 1) (String.length rest - j - 1) in
          match String.index_opt tail '|' with
          | None -> None
          | Some k ->
              let line =
                Option.value ~default:0 (int_of_string_opt (String.sub tail 0 k))
              in
              Some
                {
                  rule = String.sub s 0 i;
                  file = String.sub rest 0 j;
                  line;
                  message = String.sub tail (k + 1) (String.length tail - k - 1);
                }))

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match parse_line line with
           | Some e -> entries := e :: !entries
           | None ->
               Printf.eprintf "nldl-lint: %s: ignoring malformed baseline line %S\n%!"
                 path line
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let save path findings =
  let oc = open_out path in
  output_string oc
    "# nldl-lint baseline — findings tolerated by the gate, one per line:\n\
     # rule|file|line|message\n\
     # Regenerate with: dune exec bin/nldl_lint.exe -- --update-baseline\n\
     # Keep this empty: fix or [@nldl.allow] new findings instead of baselining them.\n";
  List.iter
    (fun (f : Finding.t) ->
      Printf.fprintf oc "%s|%s|%d|%s\n" f.rule f.file f.line f.message)
    findings;
  close_out oc

let diff ~baseline findings =
  let remaining = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = key_of_entry e in
      Hashtbl.replace remaining k
        (1 + Option.value ~default:0 (Hashtbl.find_opt remaining k)))
    baseline;
  let fresh =
    List.filter
      (fun f ->
        let k = Finding.key f in
        match Hashtbl.find_opt remaining k with
        | Some n when n > 0 ->
            Hashtbl.replace remaining k (n - 1);
            false
        | _ -> true)
      findings
  in
  let resolved =
    Hashtbl.fold
      (fun k n acc -> if n > 0 then List.init n (fun _ -> k) @ acc else acc)
      remaining []
    |> List.sort String.compare
  in
  (fresh, resolved)
