(** Interprocedural rules (phase 2 of the lint pipeline).

    - {b R401} — race detector: an unprotected write ([:=], [incr],
      mutable-field [<-], [Array]/[Bytes]/[Bigarray]/[Fbuf] store) whose
      target resolves to module-level state, performed by code that
      escapes to a pool domain, in a file with no
      [[\@\@\@nldl.domain_safe]] audit.
    - {b R402} — unsafe-zone proof obligations: every [*.unsafe_*] call
      in a zone must have its index variables covered by an enclosing
      for-loop or a bounds/length guard in the same top-level function,
      or carry [[\@nldl.bounds_validated "site"]] naming a definition
      that exists (a stale pointer is itself a finding).
    - {b R403} — no blocking syscalls ([Unix.sleep*], blocking reads,
      bare [Mutex.lock], [Condition.wait]) in pool-escaping code.

    All three honour [[\@nldl.allow "R40x"]] at the site, binding or
    file level, evaluated during extraction. *)

val findings : Callgraph.t -> Escape.t -> Finding.t list
(** Sorted by file/line; messages are line-number-free so baseline keys
    survive code motion. *)

val graph_json : Callgraph.t -> Escape.t -> Obs.Json.t
(** The [--graph-json] artifact: nodes (with escape provenance), edges,
    roots and parallel call sites. *)
