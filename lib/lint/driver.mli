(** The two-phase lint pipeline.

    Phase 1 parses every unit through {!Source} and runs the per-file
    rule registry ({!Rules.all} under {!Rules.scoping}, plus the
    driver-side U102/U103/X001/E000 checks), producing findings and a
    {!Callgraph.fragment} per file; this phase is pure in (path,
    content) and cached on disk through {!Cache}.  Phase 2 links all
    fragments into the whole-program {!Callgraph}, computes the
    parallel {!Escape} set and evaluates the interprocedural rules
    R401/R402/R403 ({!Interproc}).  H304 (missing [.mli]) still runs on
    the collected file list. *)

val default_roots : string list
(** [lib bin bench test]. *)

val lint_string : file:string -> string -> Finding.t list
(** Lint one compilation unit given as a string; [file] is the
    repo-relative path used for scoping (a path under [lib/kernels/]
    enables the kernel rules, [.mli] suffix parses as an interface).
    Runs both phases on the singleton tree. *)

val lint_strings : (string * string) list -> Finding.t list
(** Lint a multi-file fixture tree ([(file, source)] pairs) through both
    phases — cross-module escape and resolution included.  The
    interprocedural test fixture entry point. *)

val analyze_strings :
  (string * string) list -> Callgraph.t * Escape.t * Finding.t list
(** Like {!lint_strings} but also exposing the graph and escape set for
    resolution / fixpoint assertions. *)

val lint_file : root:string -> string -> Finding.t list
(** [lint_file ~root rel] reads [root/rel] and lints it as [rel]. *)

type result = {
  files : int;
  findings : Finding.t list;  (** all findings, sorted *)
  fresh : Finding.t list;  (** findings not absorbed by the baseline *)
  resolved : string list;  (** stale baseline keys *)
  baseline_path : string;
  updated : bool;  (** baseline file was rewritten *)
  graph : Callgraph.t;  (** whole-program call graph (phase 2) *)
  escape : Escape.t;
  cache_hits : int;
  cache_misses : int;
}

val run :
  ?root:string ->
  ?roots:string list ->
  ?baseline_file:string ->
  ?update_baseline:bool ->
  ?cache_dir:string ->
  ?use_cache:bool ->
  ?interproc:bool ->
  unit ->
  result
(** Walk [roots] (relative to [root], default ["."], skipping [_build]
    and dot-directories), lint every [.ml]/[.mli], and diff against
    [baseline_file] (relative to [root], default [lint_baseline.txt]).
    With [update_baseline] the baseline is rewritten to the current
    findings instead of gating.  [cache_dir] overrides the phase-1 cache
    location (default {!Cache.default_dir}); [use_cache:false] disables
    it; [interproc:false] skips phase 2 entirely (the PR-5 per-file
    behaviour, kept as the bench baseline). *)

val gate_ok : result -> bool
(** No new findings (the CI gate; stale baseline lines are reported but
    do not fail the build). *)

val graph_json : result -> Obs.Json.t
(** The [lint_graph.json] artifact ({!Interproc.graph_json}). *)

val render : result -> string
(** Human report: one compiler-style line per finding (new ones marked
    [NEW]), stale baseline keys, and a one-line summary. *)

val json : result -> Obs.Json.t
(** The [lint_findings.json] artifact: totals plus every finding with a
    ["new"] flag. *)
