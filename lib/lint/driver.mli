(** Parse the tree, run the rule registry, apply the baseline.

    Sources are parsed with [compiler-libs] ([Parse.implementation] /
    [Parse.interface]) — no ppx, no typing — and walked by the composed
    {!Rules.all} iterator under the {!Rules.scoping} wrapper.  Driver-
    side checks that need more than one AST node run here: U102/U103
    annotation hygiene, X001 unknown [nldl.*] attributes, H304 missing
    [.mli], and E000 parse failures. *)

val default_roots : string list
(** [lib bin bench test]. *)

val lint_string : file:string -> string -> Finding.t list
(** Lint one compilation unit given as a string; [file] is the
    repo-relative path used for scoping (a path under [lib/kernels/]
    enables the kernel rules, [.mli] suffix parses as an interface).
    The test fixture entry point. *)

val lint_file : root:string -> string -> Finding.t list
(** [lint_file ~root rel] reads [root/rel] and lints it as [rel]. *)

type result = {
  files : int;
  findings : Finding.t list;  (** all findings, sorted *)
  fresh : Finding.t list;  (** findings not absorbed by the baseline *)
  resolved : string list;  (** stale baseline keys *)
  baseline_path : string;
  updated : bool;  (** baseline file was rewritten *)
}

val run :
  ?root:string ->
  ?roots:string list ->
  ?baseline_file:string ->
  ?update_baseline:bool ->
  unit ->
  result
(** Walk [roots] (relative to [root], default ["."], skipping [_build]
    and dot-directories), lint every [.ml]/[.mli], and diff against
    [baseline_file] (relative to [root], default [lint_baseline.txt]).
    With [update_baseline] the baseline is rewritten to the current
    findings instead of gating. *)

val gate_ok : result -> bool
(** No new findings (the CI gate; stale baseline lines are reported but
    do not fail the build). *)

val render : result -> string
(** Human report: one compiler-style line per finding (new ones marked
    [NEW]), stale baseline keys, and a one-line summary. *)

val json : result -> Obs.Json.t
(** The [lint_findings.json] artifact: totals plus every finding with a
    ["new"] flag. *)
