(* Cross-module value-level call graph.

   Phase 1 (per file, cacheable): [extract] walks one parsetree and
   produces a [fragment] — the file's top-level value definitions, every
   identifier each one references, the mutation / blocking / unsafe
   sites inside it, and the references made from inside arguments of a
   parallel primitive.  Fragments are plain data (no [Location.t], no
   closures) so they marshal into the digest-keyed cache.

   Phase 2 (whole program): [build] indexes every definition of every
   fragment under all dotted suffixes of its qualified path
   ([lib/exec/pool.ml]'s [parallel_for] answers to
   [Exec.Pool.parallel_for], [Pool.parallel_for] and — within its own
   file — [parallel_for]) and resolves references into edges.

   The graph deliberately over-approximates: referencing a function
   counts as calling it (so first-class functions, functors and
   closures stored in records are all covered without data-flow
   analysis), unqualified names resolve against every same-file
   top-level binding regardless of shadowing, and [open]/module-alias
   expansion is applied file-wide.  Missing an edge would silence a
   race finding; a spurious edge only costs a reviewed audit
   annotation. *)

type pos = { line : int; col : int }

type mutation = {
  m_target : string;  (* printable target, e.g. "global" or "Pool.global" *)
  m_path : string list;  (* target identifier path, for phase-2 resolution *)
  m_op : string;  (* ":=", "<-", "Array.set", ... *)
  m_protected : bool;  (* under a Mutex.protect argument *)
}

type unsafe_site = {
  u_callee : string;  (* e.g. "Array.unsafe_get" *)
  u_vars : string list;  (* variables of the index arguments *)
  u_forvars : string list;  (* enclosing for-loop variables at the site *)
  u_validated_by : string option;  (* [@nldl.bounds_validated "site"] in scope *)
}

type site_kind =
  | Mutation of mutation
  | Blocking of string  (* blocking primitive, e.g. "Unix.sleepf" *)
  | Unsafe of unsafe_site

type site = {
  s_pos : pos;
  s_kind : site_kind;
  s_allowed : bool;  (* the matching rule id is allow-suppressed here *)
  s_direct : string option;
      (* [Some prim] when the site sits syntactically inside an argument
         of a parallel primitive: escaping by construction, no graph
         reachability needed *)
}

type def = {
  d_names : string list;  (* variables bound (several for tuple patterns) *)
  d_path : string list;  (* module path of the file + nested modules + first name *)
  d_pos : pos;
  d_is_func : bool;
      (* body is syntactically a lambda: cannot be mutable state, so a
         same-named local ref shadowing it is not a module-level write *)
  d_refs : string list list;  (* every identifier path referenced in the body *)
  d_escape_refs : (string list * string) list;
      (* (path, primitive): references made inside parallel-primitive
         arguments — the escape-analysis roots *)
  d_sites : site list;
  d_guards : string list;
      (* identifiers mentioned in if/while/assert/when conditions
         anywhere in the body (flow-insensitive dominance approximation
         for R402) *)
}

type fragment = {
  f_file : string;
  f_modpath : string list;  (* qualified module path of the file *)
  f_opens : string list list;
  f_aliases : (string * string list) list;  (* module P = Exec.Pool *)
  f_defs : def list;
  f_unsafe_zone : bool;
  f_domain_safe : bool;
  f_parallel_sites : (pos * string) list;  (* artifact: where fan-out happens *)
}

let empty_fragment ~file =
  {
    f_file = file;
    f_modpath = [];
    f_opens = [];
    f_aliases = [];
    f_defs = [];
    f_unsafe_zone = false;
    f_domain_safe = false;
    f_parallel_sites = [];
  }

(* lib/exec/pool.ml defines Exec.Pool (each lib/ directory is a wrapped
   library whose name is the directory); bin/bench/test executables are
   unwrapped, so their files answer to the bare module name. *)
let modpath_of_file file =
  let modname base =
    String.capitalize_ascii (Filename.remove_extension base)
  in
  match String.split_on_char '/' file with
  | [ "lib"; dir; base ] -> [ String.capitalize_ascii dir; modname base ]
  | segs -> (
      match List.rev segs with base :: _ -> [ modname base ] | [] -> [])

(* --- parallel primitives and blocking syscalls -------------------------- *)

let fanout_modules = [ "Pool"; "Parallel"; "Batch" ]

(* Is this callee path a parallel fan-out primitive?  Closures passed to
   it run on other domains.  [Numerics.Parallel] forwards to
   [Exec.Pool], and [Serve.Batch] fans misses out on the pool, so their
   entry points are triggers of their own: a closure handed to a
   forwarding wrapper never syntactically reaches the inner
   [parallel_for] call (the wrapper passes its parameter on), so the
   wrapper must be recognized directly. *)
let parallel_prim path =
  match List.rev path with
  | [ "spawn"; "Domain" ] -> Some "Domain.spawn"
  | last :: rest -> (
      let qualifies =
        match rest with
        | [] -> true (* unqualified: inside the defining module itself *)
        | m :: _ -> List.mem m fanout_modules
      in
      match last with
      | "parallel_for" | "parallel_map_array" | "parallel_reduce"
        when qualifies ->
          Some (String.concat "." path)
      | ("submit" | "run" | "handle_batch" | "handle_line")
        when (match rest with m :: _ -> List.mem m fanout_modules | [] -> false)
        ->
          Some (String.concat "." path)
      | _ -> None)
  | [] -> None

let blocking_prims =
  [
    [ "Unix"; "sleep" ];
    [ "Unix"; "sleepf" ];
    [ "Unix"; "select" ];
    [ "Unix"; "accept" ];
    [ "Unix"; "read" ];
    [ "Unix"; "recv" ];
    [ "Unix"; "connect" ];
    [ "Unix"; "wait" ];
    [ "Unix"; "waitpid" ];
    [ "Mutex"; "lock" ];
    [ "Condition"; "wait" ];
    [ "Thread"; "delay" ];
    [ "input_line" ];
    [ "input_char" ];
    [ "input_byte" ];
    [ "really_input" ];
    [ "really_input_string" ];
  ]

(* Stores: a call [M.set x ...] / [M.blit .. x ..] / [x := ...] mutates
   its target.  [Atomic] and [Domain.DLS] are the sanctioned mechanisms
   and are not stores for R401's purposes. *)
let store_op path =
  match path with
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> Some (String.concat "." path)
  | _ -> (
      match List.rev path with
      | ("set" | "unsafe_set" | "fill") :: m :: _
        when m <> "Atomic" && m <> "DLS" ->
          Some (String.concat "." path)
      | _ -> None)

(* --- extraction --------------------------------------------------------- *)

open Parsetree

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  { line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> peel e
  | _ -> e

let ident_path e =
  match (peel e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match try Longident.flatten txt with _ -> [] with
      | "Stdlib" :: rest -> rest
      | p -> p)
  | _ -> []

let longident_path lid =
  match try Longident.flatten lid with _ -> [] with
  | "Stdlib" :: rest -> rest
  | p -> p

let rec pattern_vars p acc =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pattern_vars p (txt :: acc)
  | Ppat_tuple ps | Ppat_array ps ->
      List.fold_left (fun acc p -> pattern_vars p acc) acc ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
      pattern_vars p acc
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pattern_vars p acc) acc fields
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p
  | Ppat_exception p ->
      pattern_vars p acc
  | Ppat_or (a, b) -> pattern_vars a (pattern_vars b acc)
  | _ -> acc

(* Variables of an index expression: plain identifiers plus the base
   variable of field accesses ([t.off] reads as [t]).  Operators ([+],
   [!], ...) are applications of symbolic idents and are not variables. *)
let is_var_name v =
  v <> ""
  && (match v.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)

let rec expr_vars e acc =
  match (peel e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match longident_path txt with
      | [ v ] when is_var_name v -> v :: acc
      | _ -> acc)
  | Pexp_field (b, _) -> expr_vars b acc
  | Pexp_apply (f, args) ->
      List.fold_left (fun acc (_, a) -> expr_vars a acc) (expr_vars f acc) args
  | Pexp_tuple es -> List.fold_left (fun acc e -> expr_vars e acc) acc es
  | _ -> acc

(* Accumulator for the definition currently being walked. *)
type def_builder = {
  mutable b_refs : string list list;
  mutable b_escape_refs : (string list * string) list;
  mutable b_sites : site list;
  mutable b_guards : string list;
}

type ctx = {
  file : string;
  file_allows : string list;
  mutable modstack : string list;  (* reversed nested-module names *)
  mutable opens : string list list;
  mutable aliases : (string * string list) list;
  mutable defs : def list;  (* reversed *)
  mutable parallel_sites : (pos * string) list;
  mutable cur : def_builder option;
  mutable allow_stack : string list list;
  mutable bv_stack : string list;  (* bounds_validated payloads in scope *)
  mutable protect_depth : int;
  mutable par_prim : string option;  (* innermost parallel-argument context *)
  mutable forvars : string list;
}

let allowed ctx id =
  List.mem id ctx.file_allows
  || List.exists (fun ids -> List.mem id ids) ctx.allow_stack

let bounds_validated_of attrs =
  List.fold_left
    (fun acc (a : attribute) ->
      if a.attr_name.Location.txt = "nldl.bounds_validated" then
        match Attrs.string_payload a with Some s -> Some s | None -> acc
      else acc)
    None attrs

let add_site ctx ~loc kind =
  match ctx.cur with
  | None -> ()
  | Some b ->
      let rule =
        match kind with
        | Mutation _ -> "R401"
        | Blocking _ -> "R403"
        | Unsafe _ -> "R402"
      in
      b.b_sites <-
        {
          s_pos = pos_of loc;
          s_kind = kind;
          s_allowed = allowed ctx rule;
          s_direct = ctx.par_prim;
        }
        :: b.b_sites

let add_ref ctx path =
  match ctx.cur with
  | None -> ()
  | Some b -> (
      b.b_refs <- path :: b.b_refs;
      match ctx.par_prim with
      | Some prim -> b.b_escape_refs <- (path, prim) :: b.b_escape_refs
      | None -> ())

let add_guards ctx e =
  match ctx.cur with
  | None -> ()
  | Some b -> b.b_guards <- expr_vars e b.b_guards

let rec walk_expr ctx e =
  let allows = Attrs.allows e.pexp_attributes in
  let saved_allow = ctx.allow_stack in
  if allows <> [] then ctx.allow_stack <- allows :: ctx.allow_stack;
  let saved_bv = ctx.bv_stack in
  (match bounds_validated_of e.pexp_attributes with
  | Some s -> ctx.bv_stack <- s :: ctx.bv_stack
  | None -> ());
  (match e.pexp_desc with
  | Pexp_ident { txt; _ } -> add_ref ctx (longident_path txt)
  | Pexp_apply (f, args) -> walk_apply ctx e f args
  | Pexp_setfield (target, field, v) ->
      (match ident_path target with
      | [] -> ()
      | path ->
          let fname =
            match longident_path field.Location.txt with
            | [] -> "?"
            | p -> List.nth p (List.length p - 1)
          in
          add_site ctx ~loc:e.pexp_loc
            (Mutation
               {
                 m_target = String.concat "." path;
                 m_path = path;
                 m_op = "." ^ fname ^ " <-";
                 m_protected = ctx.protect_depth > 0;
               }));
      walk_expr ctx target;
      walk_expr ctx v
  | Pexp_for (pat, lo, hi, _, body) ->
      walk_expr ctx lo;
      walk_expr ctx hi;
      let saved = ctx.forvars in
      ctx.forvars <- pattern_vars pat ctx.forvars;
      walk_expr ctx body;
      ctx.forvars <- saved
  | Pexp_ifthenelse (c, t, f) ->
      add_guards ctx c;
      walk_expr ctx c;
      walk_expr ctx t;
      Option.iter (walk_expr ctx) f
  | Pexp_while (c, body) ->
      add_guards ctx c;
      walk_expr ctx c;
      walk_expr ctx body
  | Pexp_assert c ->
      add_guards ctx c;
      walk_expr ctx c
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
      walk_expr ctx s;
      walk_cases ctx cases
  | Pexp_function cases -> walk_cases ctx cases
  | Pexp_fun (_, default, _, body) ->
      Option.iter (walk_expr ctx) default;
      walk_expr ctx body
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk_vb_expr ctx vb) vbs;
      walk_expr ctx body
  | Pexp_open (od, body) ->
      (match od.popen_expr.pmod_desc with
      | Pmod_ident { txt; _ } -> ctx.opens <- longident_path txt :: ctx.opens
      | _ -> ());
      walk_expr ctx body
  | Pexp_letmodule (name, me, body) ->
      (match (name.Location.txt, me.pmod_desc) with
      | Some n, Pmod_ident { txt; _ } ->
          ctx.aliases <- (n, longident_path txt) :: ctx.aliases
      | _ -> ());
      walk_module_expr ctx me;
      walk_expr ctx body
  | Pexp_sequence (a, b) ->
      walk_expr ctx a;
      walk_expr ctx b
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_lazy e
  | Pexp_newtype (_, e) | Pexp_poly (e, _) | Pexp_send (e, _) ->
      walk_expr ctx e
  | Pexp_tuple es | Pexp_array es -> List.iter (walk_expr ctx) es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      Option.iter (walk_expr ctx) arg
  | Pexp_record (fields, base) ->
      List.iter (fun (_, e) -> walk_expr ctx e) fields;
      Option.iter (walk_expr ctx) base
  | Pexp_field (b, _) -> walk_expr ctx b
  | Pexp_letexception (_, body) -> walk_expr ctx body
  | Pexp_letop { let_; ands; body } ->
      walk_expr ctx let_.pbop_exp;
      List.iter (fun a -> walk_expr ctx a.pbop_exp) ands;
      walk_expr ctx body
  | Pexp_constant _ | Pexp_new _ | Pexp_pack _ | Pexp_extension _
  | Pexp_object _ | Pexp_override _ | Pexp_setinstvar _ | Pexp_unreachable ->
      ());
  ctx.allow_stack <- saved_allow;
  ctx.bv_stack <- saved_bv

and walk_cases ctx cases =
  List.iter
    (fun c ->
      (match c.pc_guard with
      | Some g ->
          add_guards ctx g;
          walk_expr ctx g
      | None -> ());
      walk_expr ctx c.pc_rhs)
    cases

and walk_apply ctx e f args =
  let callee = ident_path f in
  (* Record the callee reference itself (outside any argument context it
     may open below). *)
  walk_expr ctx f;
  (* Mutation: [:=]/[incr]/[decr] and [M.set]-shaped stores on an
     identifier target. *)
  (match (store_op callee, args) with
  | Some op, (_, target) :: _ -> (
      match ident_path target with
      | [] -> ()
      | path ->
          add_site ctx ~loc:e.pexp_loc
            (Mutation
               {
                 m_target = String.concat "." path;
                 m_path = path;
                 m_op = op;
                 m_protected = ctx.protect_depth > 0;
               }))
  | _ -> ());
  (* Unsafe access: obligation payload for R402. *)
  (match List.rev callee with
  | last :: _ :: _ when String.length last > 7 && String.sub last 0 7 = "unsafe_"
    -> (
      match args with
      | [] -> ()
      | _ :: index_args ->
          let index_args =
            (* the final argument of a store is the value, not an index *)
            if
              (match List.rev callee with
              | l :: _ ->
                  (String.length l >= 3
                  && String.sub l (String.length l - 3) 3 = "set")
                  || l = "unsafe_fill" || l = "unsafe_blit"
              | [] -> false)
              && List.length index_args > 1
            then
              List.filteri
                (fun i _ -> i < List.length index_args - 1)
                index_args
            else index_args
          in
          let vars =
            List.sort_uniq String.compare
              (List.fold_left
                 (fun acc (_, a) -> expr_vars a acc)
                 [] index_args)
          in
          add_site ctx ~loc:e.pexp_loc
            (Unsafe
               {
                 u_callee = String.concat "." callee;
                 u_vars = vars;
                 u_forvars = List.sort_uniq String.compare ctx.forvars;
                 u_validated_by =
                   (match ctx.bv_stack with s :: _ -> Some s | [] -> None);
               }))
  | _ -> ());
  (* Blocking syscalls. *)
  if List.mem callee blocking_prims then
    add_site ctx ~loc:e.pexp_loc (Blocking (String.concat "." callee));
  (* Argument context: Mutex.protect guards its argument; a parallel
     primitive makes everything inside its arguments escape. *)
  if callee = [ "Mutex"; "protect" ] then begin
    ctx.protect_depth <- ctx.protect_depth + 1;
    List.iter (fun (_, a) -> walk_expr ctx a) args;
    ctx.protect_depth <- ctx.protect_depth - 1
  end
  else
    match parallel_prim callee with
    | Some prim ->
        ctx.parallel_sites <- (pos_of e.pexp_loc, prim) :: ctx.parallel_sites;
        let saved = ctx.par_prim in
        ctx.par_prim <- Some prim;
        List.iter (fun (_, a) -> walk_expr ctx a) args;
        ctx.par_prim <- saved
    | None -> List.iter (fun (_, a) -> walk_expr ctx a) args

(* A let inside an expression: its attributes still scope allows and
   bounds_validated over the bound body. *)
and walk_vb_expr ctx vb =
  let allows = Attrs.allows vb.pvb_attributes in
  let saved_allow = ctx.allow_stack in
  if allows <> [] then ctx.allow_stack <- allows :: ctx.allow_stack;
  let saved_bv = ctx.bv_stack in
  (match bounds_validated_of vb.pvb_attributes with
  | Some s -> ctx.bv_stack <- s :: ctx.bv_stack
  | None -> ());
  walk_expr ctx vb.pvb_expr;
  ctx.allow_stack <- saved_allow;
  ctx.bv_stack <- saved_bv

and walk_module_expr ctx me =
  match me.pmod_desc with
  | Pmod_structure str -> walk_structure ctx str
  | Pmod_functor (_, body) -> walk_module_expr ctx body
  | Pmod_constraint (me, _) -> walk_module_expr ctx me
  | Pmod_apply (a, b) ->
      walk_module_expr ctx a;
      walk_module_expr ctx b
  | Pmod_apply_unit a -> walk_module_expr ctx a
  | Pmod_ident _ | Pmod_unpack _ | Pmod_extension _ -> ()

and walk_structure ctx str = List.iter (walk_structure_item ctx) str

and walk_structure_item ctx si =
  match si.pstr_desc with
  | Pstr_value (_, vbs) when ctx.cur = None ->
      List.iter (fun vb -> walk_top_binding ctx vb) vbs
  | Pstr_value (_, vbs) -> List.iter (fun vb -> walk_vb_expr ctx vb) vbs
  | Pstr_eval (e, _) when ctx.cur = None ->
      finish_def ctx ~names:[ "_" ] ~loc:si.pstr_loc (fun () ->
          walk_expr ctx e)
  | Pstr_eval (e, _) -> walk_expr ctx e
  | Pstr_module mb -> walk_module_binding ctx mb
  | Pstr_recmodule mbs -> List.iter (walk_module_binding ctx) mbs
  | Pstr_open od -> (
      match od.popen_expr.pmod_desc with
      | Pmod_ident { txt; _ } -> ctx.opens <- longident_path txt :: ctx.opens
      | me -> walk_module_expr ctx { od.popen_expr with pmod_desc = me })
  | Pstr_include id -> walk_module_expr ctx id.pincl_mod
  | Pstr_attribute _ | Pstr_primitive _ | Pstr_type _ | Pstr_typext _
  | Pstr_exception _ | Pstr_modtype _ | Pstr_class _ | Pstr_class_type _
  | Pstr_extension _ ->
      ()

and walk_module_binding ctx mb =
  match (mb.pmb_name.Location.txt, mb.pmb_expr.pmod_desc) with
  | Some n, Pmod_ident { txt; _ } ->
      ctx.aliases <- (n, longident_path txt) :: ctx.aliases
  | name, _ ->
      let saved = ctx.modstack in
      (match name with Some n -> ctx.modstack <- n :: ctx.modstack | None -> ());
      walk_module_expr ctx mb.pmb_expr;
      ctx.modstack <- saved

and finish_def ctx ~names ~loc ?(is_func = false) walk =
  let b =
    { b_refs = []; b_escape_refs = []; b_sites = []; b_guards = [] }
  in
  ctx.cur <- Some b;
  walk ();
  ctx.cur <- None;
  let first = match names with n :: _ -> n | [] -> "_" in
  let path = List.rev_append ctx.modstack [ first ] in
  ctx.defs <-
    {
      d_names = names;
      d_path = path;
      d_pos = pos_of loc;
      d_is_func = is_func;
      d_refs = List.sort_uniq compare b.b_refs;
      d_escape_refs = List.sort_uniq compare b.b_escape_refs;
      d_sites = List.rev b.b_sites;
      d_guards = List.sort_uniq String.compare b.b_guards;
    }
    :: ctx.defs

and walk_top_binding ctx vb =
  let names =
    match List.rev (pattern_vars vb.pvb_pat []) with
    | [] -> [ "_" ]
    | ns -> ns
  in
  let allows = Attrs.allows vb.pvb_attributes in
  let saved_allow = ctx.allow_stack in
  if allows <> [] then ctx.allow_stack <- allows :: ctx.allow_stack;
  let saved_bv = ctx.bv_stack in
  (match bounds_validated_of vb.pvb_attributes with
  | Some s -> ctx.bv_stack <- s :: ctx.bv_stack
  | None -> ());
  let rec is_func e =
    match (peel e).pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | Pexp_newtype (_, e) -> is_func e
    | _ -> false
  in
  finish_def ctx ~names ~loc:vb.pvb_loc ~is_func:(is_func vb.pvb_expr)
    (fun () -> walk_expr ctx vb.pvb_expr);
  ctx.allow_stack <- saved_allow;
  ctx.bv_stack <- saved_bv

let extract ~file ~(marks : Attrs.file_marks) (str : structure) =
  let modpath = modpath_of_file file in
  let ctx =
    {
      file;
      file_allows = marks.file_allows;
      modstack = List.rev modpath;
      opens = [];
      aliases = [];
      defs = [];
      parallel_sites = [];
      cur = None;
      allow_stack = [];
      bv_stack = [];
      protect_depth = 0;
      par_prim = None;
      forvars = [];
    }
  in
  walk_structure ctx str;
  {
    f_file = file;
    f_modpath = modpath;
    f_opens = List.rev ctx.opens;
    f_aliases = List.rev ctx.aliases;
    f_defs = List.rev ctx.defs;
    f_unsafe_zone = marks.unsafe_zone <> None;
    f_domain_safe = marks.domain_safe <> None;
    f_parallel_sites = List.rev ctx.parallel_sites;
  }

(* --- whole-program graph ------------------------------------------------ *)

type node = {
  n_id : int;
  n_names : string list;
  n_path : string list;
  n_file : string;
  n_pos : pos;
  n_frag : int;  (* fragment index *)
  n_def : int;  (* def index within the fragment *)
}

type t = {
  fragments : fragment array;
  nodes : node array;
  succs : int list array;
  roots : (int * string) list;  (* (node, primitive) escape roots *)
  suffix_tbl : (string, int list) Hashtbl.t;
  local_tbl : (string * string, int list) Hashtbl.t;
}

let key path = String.concat "." path

let rec suffixes path =
  match path with
  | [] | [ _ ] -> []
  | _ :: tl as p -> p :: suffixes tl

let add_tbl tbl k id =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
  if not (List.mem id prev) then Hashtbl.replace tbl k (id :: prev)

(* Resolve a reference path seen in [frag] to node ids.  Unqualified
   names resolve against same-file top-level bindings (plus anything a
   file-wide [open] brings in); qualified names resolve by dotted-path
   suffix, with module aliases expanded first. *)
let resolve t frag path =
  let path =
    match path with
    | head :: tl -> (
        match List.assoc_opt head t.fragments.(frag).f_aliases with
        | Some target -> target @ tl
        | None -> path)
    | [] -> []
  in
  match path with
  | [] -> []
  | [ name ] ->
      let local =
        Option.value ~default:[]
          (Hashtbl.find_opt t.local_tbl (t.fragments.(frag).f_file, name))
      in
      List.fold_left
        (fun acc o ->
          Option.value ~default:[]
            (Hashtbl.find_opt t.suffix_tbl (key (o @ [ name ])))
          @ acc)
        local
        t.fragments.(frag).f_opens
      |> List.sort_uniq compare
  | _ ->
      Option.value ~default:[] (Hashtbl.find_opt t.suffix_tbl (key path))

(* Resolve a dotted name (e.g. an [@nldl.bounds_validated] payload) from
   anywhere: suffix match, falling back to same-file locals. *)
let resolve_name t ~file name =
  let path = String.split_on_char '.' (String.trim name) in
  match path with
  | [ n ] ->
      Option.value ~default:[] (Hashtbl.find_opt t.local_tbl (file, n))
  | _ -> Option.value ~default:[] (Hashtbl.find_opt t.suffix_tbl (key path))

let build fragments =
  let fragments = Array.of_list fragments in
  let nodes = ref [] in
  let n = ref 0 in
  Array.iteri
    (fun fi frag ->
      List.iteri
        (fun di (d : def) ->
          nodes :=
            {
              n_id = !n;
              n_names = d.d_names;
              n_path = d.d_path;
              n_file = frag.f_file;
              n_pos = d.d_pos;
              n_frag = fi;
              n_def = di;
            }
            :: !nodes;
          incr n)
        frag.f_defs)
    fragments;
  let nodes = Array.of_list (List.rev !nodes) in
  let suffix_tbl = Hashtbl.create 1024 in
  let local_tbl = Hashtbl.create 1024 in
  Array.iter
    (fun node ->
      let frag = fragments.(node.n_frag) in
      List.iter
        (fun name ->
          add_tbl local_tbl (node.n_file, name) node.n_id;
          let qualified = frag.f_modpath @ [ name ] in
          List.iter
            (fun sfx -> add_tbl suffix_tbl (key sfx) node.n_id)
            (suffixes qualified))
        node.n_names)
    nodes;
  let t =
    {
      fragments;
      nodes;
      succs = Array.make (Array.length nodes) [];
      roots = [];
      suffix_tbl;
      local_tbl;
    }
  in
  let roots = ref [] in
  Array.iter
    (fun node ->
      let d = List.nth fragments.(node.n_frag).f_defs node.n_def in
      t.succs.(node.n_id) <-
        List.sort_uniq compare
          (List.concat_map (fun p -> resolve t node.n_frag p) d.d_refs);
      List.iter
        (fun (p, prim) ->
          List.iter
            (fun id -> roots := (id, prim) :: !roots)
            (resolve t node.n_frag p))
        d.d_escape_refs)
    nodes;
  { t with roots = List.sort_uniq compare !roots }

let node_count t = Array.length t.nodes
let node t id = t.nodes.(id)
let succs t id = t.succs.(id)
let roots t = t.roots
let fragments t = Array.to_list t.fragments

let def_of t id =
  let node = t.nodes.(id) in
  (t.fragments.(node.n_frag), List.nth t.fragments.(node.n_frag).f_defs node.n_def)

let find t name =
  match String.split_on_char '.' name with
  | [] -> []
  | [ _ ] ->
      Hashtbl.fold
        (fun (_, n) ids acc -> if n = name then ids @ acc else acc)
        t.local_tbl []
      |> List.sort_uniq compare
  | path -> Option.value ~default:[] (Hashtbl.find_opt t.suffix_tbl (key path))
