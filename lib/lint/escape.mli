(** Parallel-escape analysis over {!Callgraph.t}.

    A definition {e escapes} when it is referenced from inside an
    argument of a parallel primitive, or is call-graph-reachable from
    one that is.  Escaping code may run on a pool domain concurrently
    with the submitting domain, so R401/R403 apply to it. *)

type witness = {
  w_prim : string;  (** parallel primitive at the root *)
  w_root : string;  (** qualified name of the root definition *)
}

type t

val compute : Callgraph.t -> t
(** Breadth-first forward closure from the graph's escape roots.
    Cycle-tolerant; linear in nodes + edges. *)

val escapes : t -> int -> bool
val witness : t -> int -> witness option
val describe : t -> int -> string
(** Human-readable provenance for findings. *)

val count : t -> int
(** Number of escaping definitions. *)
