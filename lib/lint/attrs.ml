open Parsetree

type mark = { reason : string option; mark_loc : Location.t }

type file_marks = {
  unsafe_zone : mark option;
  domain_safe : mark option;
  file_allows : string list;
  unknown : (string * Location.t) list;
}

let name_of (a : attribute) = a.attr_name.Location.txt

let const_string e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Payload strings: a single string constant or a tuple of them. *)
let strings_payload (a : attribute) =
  match a.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
      | Pexp_tuple es -> List.filter_map const_string es
      | _ -> [])
  | _ -> []

let string_payload a =
  match strings_payload a with
  | s :: _ when String.trim s <> "" -> Some s
  | _ -> None

let allows attrs =
  List.concat_map
    (fun a -> if name_of a = "nldl.allow" then strings_payload a else [])
    attrs

let empty_marks =
  { unsafe_zone = None; domain_safe = None; file_allows = []; unknown = [] }

let is_nldl name = String.length name > 5 && String.sub name 0 5 = "nldl."

let file_marks str =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_attribute a -> (
          let mark = { reason = string_payload a; mark_loc = a.attr_loc } in
          match name_of a with
          | "nldl.unsafe_zone" -> { acc with unsafe_zone = Some mark }
          | "nldl.domain_safe" -> { acc with domain_safe = Some mark }
          | "nldl.allow" ->
              { acc with file_allows = acc.file_allows @ strings_payload a }
          | name when is_nldl name ->
              { acc with unknown = (name, a.attr_loc) :: acc.unknown }
          | _ -> acc)
      | _ -> acc)
    empty_marks str
