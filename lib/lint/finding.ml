type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~file ~line ~col ~message = { rule; file; line; col; message }

let of_loc ~rule ~file ~(loc : Location.t) ~message =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let key f = f.rule ^ "|" ^ f.file ^ "|" ^ f.message

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let to_json f =
  Obs.Json.Obj
    [
      ("rule", Obs.Json.String f.rule);
      ("file", Obs.Json.String f.file);
      ("line", Obs.Json.Int f.line);
      ("col", Obs.Json.Int f.col);
      ("message", Obs.Json.String f.message);
    ]
