(** Digest-keyed on-disk cache for phase-1 lint results.

    Keyed by {!Source.digest} (path + content); the directory name
    embeds a format version and a stamp of the running executable, so
    rebuilding the linter invalidates every entry and incompatible
    [Marshal] layouts can never be read back.  All I/O failures degrade
    to cache misses. *)

type payload = {
  p_findings : Finding.t list;  (** per-file (phase 1) findings *)
  p_fragment : Callgraph.fragment;
}

val default_dir : unit -> string
(** Under the system temp dir; stable across runs of one binary. *)

val load : dir:string -> digest:string -> payload option
val store : dir:string -> digest:string -> payload -> unit
