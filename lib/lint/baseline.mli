(** Checked-in finding baseline: the gate fails only on {e new}
    findings.

    File format, one finding per line (['#'] comments and blank lines
    ignored):

    {v rule|file|line|message v}

    Matching is by {!Finding.key} — rule, file and message, {e not} the
    line number — with bag semantics: a baseline line absorbs exactly
    one identical finding, so adding a second copy of a baselined
    defect still fails the gate. *)

type entry = { rule : string; file : string; line : int; message : string }

val load : string -> entry list
(** Missing file = empty baseline. *)

val save : string -> Finding.t list -> unit

val diff :
  baseline:entry list -> Finding.t list -> Finding.t list * string list
(** [diff ~baseline findings] is [(fresh, resolved)]: findings not
    absorbed by the baseline, and keys of baseline entries that no
    longer occur (stale lines to prune with [--update-baseline]). *)
