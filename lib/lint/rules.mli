(** The rule registry.

    Each syntactic rule extends an {!Ast_iterator.iterator}; the driver
    folds {!all} over {!Ast_iterator.default_iterator}, wraps the
    result in a scoping layer that tracks [[\@nldl.allow]] suppression
    and expression depth, and runs it over every parsed file.  Rules
    report through {!scope.emit} via {!report}, which drops findings
    whose id is suppressed at the current point.

    Rule groups (see CONTRIBUTING.md for the one-line table):
    - {b D} determinism: D001 bans [Stdlib.Random] global state, D002
      bans wall-clock reads outside [Obs.Clock];
    - {b U} unsafe zones: U101 bans [*.unsafe_*] access outside an
      [[\@\@\@nldl.unsafe_zone]] module (U102/U103 are driver-side
      annotation hygiene);
    - {b S} domain safety: S201 flags top-level mutable state in [lib/]
      modules unless the file carries [[\@\@\@nldl.domain_safe]];
    - {b H} hygiene: H301 [Obj.magic], H302 polymorphic [=]/[<>]/
      [compare] against a float literal in [lib/], H303 [Array.concat]/
      [Array.append] in [lib/kernels] hot paths (H304, missing [.mli],
      is driver-side), H305 boxed float-matrix construction or
      tuple-returning slice helpers in the hot libraries ([lib/kernels],
      [lib/linalg]) — flat [Kernels.Fbuf] stores and int accessors /
      mutable slice records are the sanctioned shapes. *)

type scope = {
  file : string;  (** repo-relative path, ['/'] separators *)
  in_lib : bool;
  in_kernels : bool;
  in_hot : bool;  (** [lib/kernels/] or [lib/linalg/] (H305's scope) *)
  in_instrumented : bool;
      (** [lib/des/], [lib/mapreduce/] or [lib/exec/] (H307's
          histogram-array scope; [lib/sortlib] is deliberately out —
          its counting arrays are the algorithm, not telemetry) *)
  in_experiments : bool;
      (** [lib/experiments/] (H308's scope: response JSON goes through
          the [Api.Response] envelope, never hand-rolled) *)
  unsafe_zone : bool;  (** file carries [[\@\@\@nldl.unsafe_zone]] *)
  domain_safe : bool;  (** file carries [[\@\@\@nldl.domain_safe]] *)
  file_allows : string list;
  mutable expr_depth : int;  (** > 0 while inside any expression *)
  mutable allow_stack : string list list;
  mutable unsafe_sites : int;  (** [*.unsafe_*] uses seen (U103 input) *)
  emit : Finding.t -> unit;
}

type t = {
  id : string;
  group : string;
  synopsis : string;
  extend : scope -> Ast_iterator.iterator -> Ast_iterator.iterator;
}

val allowed : scope -> string -> bool
(** Is the rule id suppressed here (enclosing or file-wide allow)? *)

val report : scope -> id:string -> loc:Location.t -> string -> unit

val all : t list
(** The syntactic rules, in id order. *)

val catalog : (string * string) list
(** (id, synopsis) for every rule id the linter can emit, including the
    driver-side ones (U102, U103, H304, X001, E000) — the [--rules]
    listing and the CONTRIBUTING.md table. *)

val scoping : scope -> Ast_iterator.iterator -> Ast_iterator.iterator
(** Outermost layer: pushes [[\@nldl.allow]] sets found on expressions
    and module bindings onto [allow_stack] and tracks [expr_depth]
    around expression descent.  Must wrap the composed rule iterator
    so suppression is in force when the rules run. *)
