let default_roots = [ "lib"; "bin"; "bench"; "test" ]

(* Normalize to '/' separators so findings and baselines are identical
   across platforms (and so scoping prefixes match). *)
let normalize path =
  String.map (fun c -> if c = '\\' then '/' else c) path

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let scope_of ~file ~(marks : Attrs.file_marks) ~emit : Rules.scope =
  {
    file;
    in_lib = starts_with ~prefix:"lib/" file;
    in_kernels = starts_with ~prefix:"lib/kernels/" file;
    in_hot =
      starts_with ~prefix:"lib/kernels/" file || starts_with ~prefix:"lib/linalg/" file;
    in_instrumented =
      starts_with ~prefix:"lib/des/" file
      || starts_with ~prefix:"lib/mapreduce/" file
      || starts_with ~prefix:"lib/exec/" file;
    in_experiments = starts_with ~prefix:"lib/experiments/" file;
    unsafe_zone = marks.unsafe_zone <> None;
    domain_safe = marks.domain_safe <> None;
    file_allows = marks.file_allows;
    expr_depth = 0;
    allow_stack = [];
    unsafe_sites = 0;
    emit;
  }

let iterator scope =
  Rules.scoping scope
    (List.fold_left
       (fun it (r : Rules.t) -> r.extend scope it)
       Ast_iterator.default_iterator Rules.all)

(* Annotation hygiene that needs whole-file context. *)
let mark_findings ~file ~(marks : Attrs.file_marks) ~unsafe_sites =
  let missing_reason name (m : Attrs.mark option) =
    match m with
    | Some { reason = None; mark_loc } ->
        [
          Finding.of_loc ~rule:"U102" ~file ~loc:mark_loc
            ~message:
              (Printf.sprintf
                 "[@@@%s] without a reason string; name the validation site or \
                  safety mechanism"
                 name);
        ]
    | _ -> []
  in
  missing_reason "nldl.unsafe_zone" marks.unsafe_zone
  @ missing_reason "nldl.domain_safe" marks.domain_safe
  @ (match marks.unsafe_zone with
    | Some { mark_loc; _ } when unsafe_sites = 0 ->
        [
          Finding.of_loc ~rule:"U103" ~file ~loc:mark_loc
            ~message:
              "[@@@nldl.unsafe_zone] but the file no longer contains any \
               unsafe access; drop the annotation";
        ]
    | _ -> [])
  @ List.map
      (fun (name, loc) ->
        Finding.of_loc ~rule:"X001" ~file ~loc
          ~message:
            (Printf.sprintf
               "unknown attribute [%s]; known: nldl.allow, nldl.unsafe_zone, \
                nldl.domain_safe, nldl.bounds_validated"
               name))
      marks.unknown

(* Phase 1 for one unit: per-file rules + call-graph fragment.  Pure in
   the source (path + content), which is what makes it cacheable. *)
let lint_source (src : Source.t) : Finding.t list * Callgraph.fragment =
  let file = src.Source.file in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  match Source.parse src with
  | Source.Parse_error msg ->
      let what =
        match src.Source.kind with
        | Source.Intf -> "interface failed to parse: "
        | Source.Impl -> "failed to parse: "
      in
      ( [ Finding.make ~rule:"E000" ~file ~line:1 ~col:0 ~message:(what ^ msg) ],
        Callgraph.empty_fragment ~file )
  | Source.Signature sg ->
      (* Interfaces carry no expressions the D/U/S/H rules look at, but
         walking keeps any future signature-level rules wired. *)
      let marks = Attrs.empty_marks in
      let scope = scope_of ~file ~marks ~emit in
      let it = iterator scope in
      it.signature it sg;
      (List.rev !findings, Callgraph.empty_fragment ~file)
  | Source.Structure str ->
      let marks = Attrs.file_marks str in
      let scope = scope_of ~file ~marks ~emit in
      let it = iterator scope in
      it.structure it str;
      ( mark_findings ~file ~marks ~unsafe_sites:scope.unsafe_sites
        @ List.rev !findings,
        Callgraph.extract ~file ~marks str )

(* Phase 2: link fragments, close over parallel escapes, run R401-403. *)
let analyze_fragments frags =
  let graph = Callgraph.build frags in
  let esc = Escape.compute graph in
  (graph, esc, Interproc.findings graph esc)

let analyze_strings units =
  let per_unit =
    List.map
      (fun (file, src) -> lint_source (Source.of_string ~file:(normalize file) src))
      units
  in
  let graph, esc, inter = analyze_fragments (List.map snd per_unit) in
  ( graph,
    esc,
    List.sort Finding.compare (List.concat_map fst per_unit @ inter) )

let lint_strings units =
  let _, _, findings = analyze_strings units in
  findings

let lint_string ~file src = lint_strings [ (file, src) ]

let lint_file ~root rel =
  let src = Source.read ~root (normalize rel) in
  let local, frag = lint_source src in
  let _, _, inter = analyze_fragments [ frag ] in
  List.sort Finding.compare (local @ inter)

(* --- tree walk ---------------------------------------------------------- *)

let rec walk root acc rel =
  let path = Filename.concat root rel in
  if (not (Sys.file_exists path)) || not (Sys.is_directory path) then acc
  else
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else
          let rel = rel ^ "/" ^ entry in
          let path = Filename.concat root rel in
          if Sys.is_directory path then walk root acc rel
          else if
            Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
          then rel :: acc
          else acc)
      acc
      (Sys.readdir path)

let collect ~root ~roots =
  List.sort String.compare
    (List.fold_left (fun acc r -> walk root acc (normalize r)) [] roots)

(* H304: every lib/ implementation needs an interface. *)
let missing_mli files =
  let set = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace set f ()) files;
  List.filter_map
    (fun f ->
      if
        starts_with ~prefix:"lib/" f
        && Filename.check_suffix f ".ml"
        && not (Hashtbl.mem set (f ^ "i"))
      then
        Some
          (Finding.make ~rule:"H304" ~file:f ~line:1 ~col:0
             ~message:
               "lib/ module without an .mli; write one exporting only what \
                callers use")
      else None)
    files

type result = {
  files : int;
  findings : Finding.t list;
  fresh : Finding.t list;
  resolved : string list;
  baseline_path : string;
  updated : bool;
  graph : Callgraph.t;
  escape : Escape.t;
  cache_hits : int;
  cache_misses : int;
}

let run ?(root = ".") ?(roots = default_roots) ?(baseline_file = "lint_baseline.txt")
    ?(update_baseline = false) ?cache_dir ?(use_cache = true)
    ?(interproc = true) () =
  let files = collect ~root ~roots in
  let dir = match cache_dir with Some d -> d | None -> Cache.default_dir () in
  let hits = ref 0 and misses = ref 0 in
  let per_file =
    List.map
      (fun rel ->
        let src = Source.read ~root rel in
        if not use_cache then begin
          incr misses;
          lint_source src
        end
        else
          let digest = Source.digest src in
          match Cache.load ~dir ~digest with
          | Some p ->
              incr hits;
              (p.Cache.p_findings, p.Cache.p_fragment)
          | None ->
              incr misses;
              let local, frag = lint_source src in
              Cache.store ~dir ~digest
                { Cache.p_findings = local; p_fragment = frag };
              (local, frag))
      files
  in
  let local = List.concat_map fst per_file in
  let graph, escape, inter =
    if interproc then analyze_fragments (List.map snd per_file)
    else analyze_fragments []
  in
  let findings =
    List.sort Finding.compare (local @ inter @ missing_mli files)
  in
  let baseline_path = Filename.concat root baseline_file in
  let baseline = Baseline.load baseline_path in
  let fresh, resolved = Baseline.diff ~baseline findings in
  if update_baseline then Baseline.save baseline_path findings;
  {
    files = List.length files;
    findings;
    fresh;
    resolved;
    baseline_path;
    updated = update_baseline;
    graph;
    escape;
    cache_hits = !hits;
    cache_misses = !misses;
  }

let gate_ok r = r.fresh = []

let graph_json r = Interproc.graph_json r.graph r.escape

let render r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      let tag = if List.memq f r.fresh then " NEW" else "" in
      Buffer.add_string buf (Finding.to_string f ^ tag ^ "\n"))
    r.findings;
  List.iter
    (fun k ->
      Buffer.add_string buf
        (Printf.sprintf "stale baseline entry (fixed? run --update-baseline): %s\n" k))
    r.resolved;
  Buffer.add_string buf
    (Printf.sprintf
       "nldl-lint: %d files, %d findings (%d new, %d baselined, %d stale \
        baseline); graph: %d nodes, %d escaping; cache: %d hit, %d miss%s\n"
       r.files (List.length r.findings) (List.length r.fresh)
       (List.length r.findings - List.length r.fresh)
       (List.length r.resolved)
       (Callgraph.node_count r.graph)
       (Escape.count r.escape) r.cache_hits r.cache_misses
       (if r.updated then Printf.sprintf "; baseline %s updated" r.baseline_path
        else ""))
  ;
  Buffer.contents buf

let json r =
  Obs.Json.Obj
    [
      ("files", Obs.Json.Int r.files);
      ("total", Obs.Json.Int (List.length r.findings));
      ("new", Obs.Json.Int (List.length r.fresh));
      ("stale_baseline", Obs.Json.Int (List.length r.resolved));
      ("graph_nodes", Obs.Json.Int (Callgraph.node_count r.graph));
      ("escaping", Obs.Json.Int (Escape.count r.escape));
      ("cache_hits", Obs.Json.Int r.cache_hits);
      ("cache_misses", Obs.Json.Int r.cache_misses);
      ( "findings",
        Obs.Json.List
          (List.map
             (fun f ->
               match Finding.to_json f with
               | Obs.Json.Obj fields ->
                   Obs.Json.Obj
                     (fields @ [ ("new", Obs.Json.Bool (List.memq f r.fresh)) ])
               | j -> j)
             r.findings) );
    ]
