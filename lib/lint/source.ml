(* Reading and normalizing compilation units for the linter.

   All parsing funnels through here so the whole tree gets the same
   robustness fixes: a UTF-8 byte-order mark makes [Parse.implementation]
   raise on the very first token (a spurious E000 on an otherwise clean
   file), so it is stripped before lexing; empty files parse to an empty
   structure rather than being special-cased anywhere else; CRLF line
   endings are already handled by the OCaml lexer and are only covered
   by fixtures.  The digest keys the on-disk analysis cache, so it
   covers exactly what the analysis sees: the normalized content plus
   the repo-relative path (scoping depends on the path). *)

let utf8_bom = "\xef\xbb\xbf"

let strip_bom src =
  let n = String.length utf8_bom in
  if String.length src >= n && String.sub src 0 n = utf8_bom then
    String.sub src n (String.length src - n)
  else src

type kind = Impl | Intf

type t = {
  file : string;  (* repo-relative, '/'-separated *)
  kind : kind;
  content : string;  (* BOM-stripped *)
}

let kind_of_file file = if Filename.check_suffix file ".mli" then Intf else Impl

let of_string ~file src =
  { file; kind = kind_of_file file; content = strip_bom src }

let read ~root rel =
  let path = Filename.concat root rel in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  of_string ~file:rel src

let digest t = Digest.to_hex (Digest.string (t.file ^ "\x00" ^ t.content))

type ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature
  | Parse_error of string

let parse t =
  let lexbuf = Lexing.from_string t.content in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = t.file; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  match t.kind with
  | Intf -> (
      match Parse.interface lexbuf with
      | sg -> Signature sg
      | exception e -> Parse_error (Printexc.to_string e))
  | Impl -> (
      match Parse.implementation lexbuf with
      | str -> Structure str
      | exception e -> Parse_error (Printexc.to_string e))
