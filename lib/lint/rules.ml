open Parsetree
open Ast_iterator

type scope = {
  file : string;
  in_lib : bool;
  in_kernels : bool;
  in_hot : bool;  (* lib/kernels/ or lib/linalg/: the flat-buffer hot libraries *)
  in_instrumented : bool;
      (* lib/des/, lib/mapreduce/, lib/exec/: hot paths that report
         through Obs and must not grow private timing/histogram code *)
  in_experiments : bool;
      (* lib/experiments/: response JSON goes through the Api.Response
         envelope, never hand-rolled Obs.Json constructors *)
  unsafe_zone : bool;
  domain_safe : bool;
  file_allows : string list;
  mutable expr_depth : int;
  mutable allow_stack : string list list;
  mutable unsafe_sites : int;
  emit : Finding.t -> unit;
}

type t = {
  id : string;
  group : string;
  synopsis : string;
  extend : scope -> iterator -> iterator;
}

let allowed scope id =
  List.mem id scope.file_allows
  || List.exists (fun ids -> List.mem id ids) scope.allow_stack

let report scope ~id ~loc message =
  if not (allowed scope id) then
    scope.emit (Finding.of_loc ~rule:id ~file:scope.file ~loc ~message)

(* --- shared syntax helpers ---------------------------------------------- *)

(* Flattened path of an identifier expression, with any [Stdlib.]
   qualification stripped so [Stdlib.Random.int] and [Random.int] hit
   the same rule. *)
let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match try Longident.flatten txt with _ -> [] with
      | "Stdlib" :: rest -> rest
      | p -> p)
  | _ -> []

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> peel e
  | _ -> e

let on_expr check scope it =
  { it with expr = (fun self e -> check scope e; it.expr self e) }

(* --- D: determinism ----------------------------------------------------- *)

let d001 =
  {
    id = "D001";
    group = "D";
    synopsis = "no Stdlib.Random global PRNG state; thread a seeded Numerics.Rng";
    extend =
      on_expr (fun scope e ->
          match ident_path e with
          | "Random" :: rest ->
              report scope ~id:"D001" ~loc:e.pexp_loc
                (Printf.sprintf
                   "%s uses the global Stdlib.Random state, which breaks seeded replay; \
                    thread a Numerics.Rng split per trial (the ?seed convention in \
                    Experiments.Registry)"
                   (String.concat "." ("Random" :: rest)))
          | _ -> ());
  }

let wall_clocks =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "gmtime" ];
    [ "Sys"; "time" ];
  ]

let d002 =
  {
    id = "D002";
    group = "D";
    synopsis = "no wall-clock reads outside Obs.Clock";
    extend =
      on_expr (fun scope e ->
          if scope.file <> "lib/obs/clock.ml" then
            let p = ident_path e in
            if List.mem p wall_clocks then
              report scope ~id:"D002" ~loc:e.pexp_loc
                (Printf.sprintf
                   "%s reads the wall clock (NTP slew, DST, non-determinism); use \
                    Obs.Clock's monotonic reads"
                   (String.concat "." p)));
  }

(* --- U: unsafe zones ---------------------------------------------------- *)

let u101 =
  {
    id = "U101";
    group = "U";
    synopsis = "*.unsafe_* access only inside an [@@@nldl.unsafe_zone] module";
    extend =
      on_expr (fun scope e ->
          match List.rev (ident_path e) with
          | last :: _ :: _
            when String.length last > 7 && String.sub last 0 7 = "unsafe_" ->
              scope.unsafe_sites <- scope.unsafe_sites + 1;
              if not scope.unsafe_zone then
                report scope ~id:"U101" ~loc:e.pexp_loc
                  (Printf.sprintf
                   "%s outside an [@@@nldl.unsafe_zone \"reason\"] module; validate \
                    bounds first and annotate the module, or use safe access"
                     (String.concat "." (ident_path e)))
          | _ -> ());
  }

(* --- S: domain safety --------------------------------------------------- *)

let mutable_ctors =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
  ]

let binding_name vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | _ -> "_"

let s201 =
  {
    id = "S201";
    group = "S";
    synopsis =
      "no top-level mutable state in lib/ without [@@@nldl.domain_safe]";
    extend =
      (fun scope it ->
        {
          it with
          structure_item =
            (fun self si ->
              (match si.pstr_desc with
              | Pstr_value (_, vbs)
                when scope.expr_depth = 0 && scope.in_lib
                     && not scope.domain_safe ->
                  List.iter
                    (fun vb ->
                      if not (List.mem "S201" (Attrs.allows vb.pvb_attributes))
                      then
                        let flag what =
                          report scope ~id:"S201" ~loc:vb.pvb_loc
                            (Printf.sprintf
                               "top-level binding %s holds mutable state (%s) in a \
                                library that pool domains may execute; make it \
                                domain-local, or annotate the file with \
                                [@@@nldl.domain_safe \"mechanism\"]"
                               (binding_name vb) what)
                        in
                        match (peel vb.pvb_expr).pexp_desc with
                        | Pexp_apply (f, _)
                          when List.mem (ident_path f) mutable_ctors ->
                            flag (String.concat "." (ident_path f))
                        | Pexp_array (_ :: _) -> flag "array literal"
                        | _ -> ())
                    vbs
              | _ -> ());
              it.structure_item self si);
        });
  }

(* --- H: hygiene --------------------------------------------------------- *)

let h301 =
  {
    id = "H301";
    group = "H";
    synopsis = "no Obj.magic";
    extend =
      on_expr (fun scope e ->
          if ident_path e = [ "Obj"; "magic" ] then
            report scope ~id:"H301" ~loc:e.pexp_loc
              "Obj.magic defeats the type system; find a typed encoding");
  }

let is_float_lit e =
  match (peel e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let h302 =
  {
    id = "H302";
    group = "H";
    synopsis = "no polymorphic =/<>/compare against float literals in lib/";
    extend =
      on_expr (fun scope e ->
          if scope.in_lib then
            match e.pexp_desc with
            | Pexp_apply (f, args) -> (
                match ident_path f with
                | [ "=" ] | [ "<>" ] | [ "compare" ] ->
                    if List.exists (fun (_, a) -> is_float_lit a) args then
                      report scope ~id:"H302" ~loc:e.pexp_loc
                        "polymorphic comparison against a float literal; use \
                         Float.equal/Float.compare or an epsilon test (NaN and \
                         -0. bite), or [@nldl.allow \"H302\"] an intentional \
                         exact test"
                | _ -> ())
            | _ -> ());
  }

let h303 =
  {
    id = "H303";
    group = "H";
    synopsis = "no Array.concat/Array.append in lib/kernels hot paths";
    extend =
      on_expr (fun scope e ->
          if scope.in_kernels then
            match ident_path e with
            | [ "Array"; "concat" ] | [ "Array"; "append" ] ->
                report scope ~id:"H303" ~loc:e.pexp_loc
                  (Printf.sprintf
                     "%s allocates and copies per call; kernels must scatter into \
                      preallocated arrays (see Kernels.Scatter)"
                     (String.concat "." (ident_path e)))
            | _ -> ());
  }

(* Innermost body of a (possibly curried) function expression. *)
let rec fun_body e =
  match (peel e).pexp_desc with
  | Pexp_fun (_, _, _, body) -> fun_body body
  | _ -> peel e

(* Syntactic "this expression builds a float array": Array.make/init
   with a float-literal element, Array.create_float, or a float-literal
   array literal.  Non-literal elements escape the net — this is a
   linter, not a type checker — but every boxed-matrix constructor the
   flat-buffer overhaul removed matched one of these shapes. *)
let constructs_float_array e =
  match (peel e).pexp_desc with
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | [ "Array"; "create_float" ] -> true
      | [ "Array"; "make" ] -> (
          match List.rev args with (_, init) :: _ -> is_float_lit init | [] -> false)
      | [ "Array"; "init" ] -> (
          match List.rev args with
          | (_, f_arg) :: _ -> is_float_lit (fun_body f_arg)
          | [] -> false)
      | _ -> false)
  | Pexp_array (e0 :: _) -> is_float_lit e0
  | _ -> false

let rec returns_tuple e =
  match (peel e).pexp_desc with
  | Pexp_tuple _ -> true
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> returns_tuple body
  | Pexp_ifthenelse (_, t, Some f) -> returns_tuple t || returns_tuple f
  | _ -> false

let name_contains name sub =
  let n = String.length name and m = String.length sub in
  let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
  go 0

let h305 =
  {
    id = "H305";
    group = "H";
    synopsis =
      "no boxed float-matrix construction or tuple-returning slice helpers in \
       lib/kernels and lib/linalg";
    extend =
      (fun scope it ->
        let it =
          on_expr
            (fun scope e ->
              if scope.in_hot then
                match e.pexp_desc with
                | Pexp_apply (f, args) -> (
                    let flag what =
                      report scope ~id:"H305" ~loc:e.pexp_loc
                        (Printf.sprintf
                           "%s builds a row-per-row boxed float matrix (a pointer chase \
                            per row and a header per allocation); use a flat row-major \
                            Kernels.Fbuf, or [@nldl.allow \"H305\"] a cold path"
                           what)
                    in
                    match ident_path f with
                    | [ "Array"; "make_matrix" ] -> (
                        match List.rev args with
                        | (_, init) :: _ when is_float_lit init -> flag "Array.make_matrix"
                        | _ -> ())
                    | [ "Array"; "make" ] -> (
                        match List.rev args with
                        | (_, elt) :: _ when constructs_float_array elt ->
                            flag "nested Array.make"
                        | _ -> ())
                    | [ "Array"; "init" ] -> (
                        match List.rev args with
                        | (_, f_arg) :: _ when constructs_float_array (fun_body f_arg) ->
                            flag "nested Array.init"
                        | _ -> ())
                    | _ -> ())
                | _ -> ())
            scope it
        in
        {
          it with
          structure_item =
            (fun self si ->
              (match si.pstr_desc with
              | Pstr_value (_, vbs) when scope.in_hot && scope.expr_depth = 0 ->
                  List.iter
                    (fun vb ->
                      if not (List.mem "H305" (Attrs.allows vb.pvb_attributes)) then begin
                        let name = binding_name vb in
                        if
                          (name_contains name "bounds" || name_contains name "slice")
                          && (match (peel vb.pvb_expr).pexp_desc with
                             | Pexp_fun _ -> returns_tuple (fun_body vb.pvb_expr)
                             | _ -> false)
                        then
                          report scope ~id:"H305" ~loc:vb.pvb_loc
                            (Printf.sprintf
                               "slice helper %s returns a tuple, allocating a block per \
                                query on the hot path; return ints from separate \
                                accessors or fill a mutable slice record (see \
                                Kernels.Scatter.slice)"
                               name)
                      end)
                    vbs
              | _ -> ());
              it.structure_item self si);
        });
  }

let h306 =
  {
    id = "H306";
    group = "H";
    synopsis = "no new Des.Event_queue usage in lib/ (frozen; use Des.Event_heap)";
    extend =
      on_expr (fun scope e ->
          if scope.in_lib && scope.file <> "lib/des/event_queue.ml" then
            match ident_path e with
            | "Event_queue" :: _ :: _ | "Des" :: "Event_queue" :: _ | "Core" :: "Event_queue" :: _ ->
                report scope ~id:"H306" ~loc:e.pexp_loc
                  (Printf.sprintf
                     "%s: the boxed event queue is frozen (kept only as the \
                      Event_heap test oracle); new DES code uses Des.Event_heap — \
                      flat buffers, zero per-op allocation (see DESIGN.md s13)"
                     (String.concat "." (ident_path e)))
            | _ -> ());
  }

(* H307 guards the Obs funnel: the instrumented hot paths (lib/des,
   lib/mapreduce, lib/exec) report timing and distributions through
   Obs.Hist/Obs.Metrics, so they must not grow private clock externals
   (which would bypass both Obs.Clock and D002's name list) or ad-hoc
   histogram arrays.  lib/sortlib is deliberately out of scope: its
   histogram_sort uses counting arrays as the algorithm, not as
   instrumentation. *)
let file_starts_with prefix scope =
  String.length scope.file >= String.length prefix
  && String.sub scope.file 0 (String.length prefix) = prefix

let clockish_prim prim =
  name_contains prim "clock"
  || name_contains prim "gettimeofday"
  || name_contains prim "time"

let array_ctor e =
  match (peel e).pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | [ "Array"; "make" ] | [ "Array"; "init" ] | [ "Array"; "create_float" ] ->
          Some (String.concat "." (ident_path f))
      | _ -> None)
  | _ -> None

let h307 =
  {
    id = "H307";
    group = "H";
    synopsis =
      "no private clock externals in lib/ outside lib/obs, and no ad-hoc \
       histogram arrays in instrumented hot paths (lib/des, lib/mapreduce, \
       lib/exec); record through Obs.Clock and Obs.Hist";
    extend =
      (fun scope it ->
        let it =
          {
            it with
            value_description =
              (fun self vd ->
                (if
                   vd.pval_prim <> []
                   && scope.in_lib
                   && (not (file_starts_with "lib/obs/" scope))
                   && List.exists clockish_prim vd.pval_prim
                 then
                   report scope ~id:"H307" ~loc:vd.pval_loc
                     (Printf.sprintf
                        "external %s binds a clock primitive (%s) outside lib/obs; \
                         time through Obs.Clock so reads stay monotonic, mockable \
                         and visible to the D002 gate"
                        vd.pval_name.txt
                        (String.concat ", " vd.pval_prim)));
                it.value_description self vd);
          }
        in
        {
          it with
          value_binding =
            (fun self vb ->
              (if scope.in_instrumented then
                 let name = binding_name vb in
                 if name_contains name "hist" then
                   match array_ctor vb.pvb_expr with
                   | Some ctor ->
                       report scope ~id:"H307" ~loc:vb.pvb_loc
                         (Printf.sprintf
                            "binding %s builds an ad-hoc histogram array (%s) in an \
                             instrumented hot path; record into a registered \
                             Obs.Hist (sharded, zero-alloc, exported with \
                             quantiles), or [@nldl.allow \"H307\"] a non-telemetry \
                             array"
                            name ctor)
                   | None -> ());
              it.value_binding self vb);
        });
  }

(* H308 guards the response-schema funnel: every JSON an experiment
   emits must go through the Api.Response envelope (built by
   Experiments.Registry.dump), so the CLI --json surface, the serve
   daemon and the bench artifact stay one schema.  Hand-rolled
   Obs.Json.Obj/List construction in lib/experiments bypasses that;
   registry.ml itself is the one sanctioned builder. *)
let h308 =
  {
    id = "H308";
    group = "H";
    synopsis =
      "no hand-rolled response JSON (Obs.Json.Obj/List construction) in \
       lib/experiments outside registry.ml; return Registry.table and let the \
       Api.Response envelope serialize";
    extend =
      (fun scope it ->
        {
          it with
          expr =
            (fun self e ->
              (if scope.in_experiments && scope.file <> "lib/experiments/registry.ml"
               then
                 match e.pexp_desc with
                 | Pexp_construct ({ txt; _ }, _) -> (
                     match (try Longident.flatten txt with _ -> []) with
                     | [ "Obs"; "Json"; ("Obj" | "List") ] | [ "Json"; ("Obj" | "List") ]
                       ->
                         report scope ~id:"H308" ~loc:e.pexp_loc
                           (Printf.sprintf
                              "%s hand-rolls response JSON in lib/experiments; return \
                               a Registry.table and let the Api.Response envelope \
                               serialize it (one schema for --json, nldl serve and \
                               the bench artifact), or [@nldl.allow \"H308\"] a \
                               non-response payload"
                              (String.concat "." (Longident.flatten txt)))
                     | _ -> ())
                 | _ -> ());
              it.expr self e);
        });
  }

let all = [ d001; d002; u101; s201; h301; h302; h303; h305; h306; h307; h308 ]

let catalog =
  List.map (fun r -> (r.id, r.synopsis)) all
  @ [
      ("U102", "nldl.unsafe_zone/domain_safe annotation must carry a reason string");
      ("U103", "stale [@@@nldl.unsafe_zone]: file has no unsafe access left");
      ("H304", "every lib/ .ml needs an .mli interface");
      ("X001", "unknown nldl.* attribute (typo would silently disable a gate)");
      ("E000", "file failed to parse");
      ( "R401",
        "unprotected write to module-level state reachable from a pool domain" );
      ( "R402",
        "unsafe access in a zone with no dominating bounds check or valid \
         nldl.bounds_validated pointer" );
      ("R403", "blocking syscall inside a pool-escaping closure");
    ]

(* --- scoping wrapper ---------------------------------------------------- *)

let scoping scope it =
  let expr self e =
    let allows = Attrs.allows e.pexp_attributes in
    scope.allow_stack <- allows :: scope.allow_stack;
    scope.expr_depth <- scope.expr_depth + 1;
    it.expr self e;
    scope.expr_depth <- scope.expr_depth - 1;
    scope.allow_stack <- List.tl scope.allow_stack
  in
  let module_binding self mb =
    let allows = Attrs.allows mb.pmb_attributes in
    scope.allow_stack <- allows :: scope.allow_stack;
    it.module_binding self mb;
    scope.allow_stack <- List.tl scope.allow_stack
  in
  let value_binding self vb =
    let allows = Attrs.allows vb.pvb_attributes in
    scope.allow_stack <- allows :: scope.allow_stack;
    it.value_binding self vb;
    scope.allow_stack <- List.tl scope.allow_stack
  in
  { it with expr; module_binding; value_binding }
