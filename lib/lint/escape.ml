(* Parallel-escape analysis: which functions can run on a pool domain?

   Roots are the definitions referenced from inside an argument of a
   parallel primitive ([Exec.Pool.parallel_for]/[submit]/...,
   [Domain.spawn], [Serve.Batch] fan-out, [Numerics.Parallel] wrappers);
   the escape set is their forward closure over the call graph.  A plain
   breadth-first fixpoint suffices — edges are static and cycles are
   harmless (a visited-set BFS terminates on any graph).

   Each escaping node keeps a witness: the primitive and root that first
   reached it, so findings can say *why* a function counts as parallel
   ("reachable from closure passed to Exec.Pool.submit via
   Serve.Batch.eval_miss"). *)

type witness = {
  w_prim : string;  (* the parallel primitive at the root *)
  w_root : string;  (* qualified name of the root definition *)
}

type t = {
  escaping : bool array;
  witness : witness option array;
}

let compute g =
  let n = Callgraph.node_count g in
  let escaping = Array.make n false in
  let witness = Array.make n None in
  let q = Queue.create () in
  List.iter
    (fun (id, prim) ->
      if not escaping.(id) then begin
        escaping.(id) <- true;
        witness.(id) <-
          Some
            {
              w_prim = prim;
              w_root = String.concat "." (Callgraph.node g id).Callgraph.n_path;
            };
        Queue.add id q
      end)
    (Callgraph.roots g);
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    List.iter
      (fun s ->
        if not escaping.(s) then begin
          escaping.(s) <- true;
          witness.(s) <- witness.(id);
          Queue.add s q
        end)
      (Callgraph.succs g id)
  done;
  { escaping; witness }

let escapes t id = t.escaping.(id)
let witness t id = t.witness.(id)

let describe t id =
  match t.witness.(id) with
  | Some w -> Printf.sprintf "reachable from closure passed to %s (root %s)" w.w_prim w.w_root
  | None -> "not escaping"

let count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.escaping
