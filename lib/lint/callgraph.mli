(** Cross-module value-level call graph.

    Built in two phases: {!extract} turns one file's parsetree into a
    marshal-friendly {!fragment} (cacheable per content digest), and
    {!build} links all fragments into a graph whose nodes are top-level
    value bindings and whose edges are identifier references.

    The graph over-approximates on purpose: referencing a function
    counts as calling it, which subsumes first-class functions, functors
    and closures stored in records without any data-flow analysis.  See
    DESIGN.md §16 for the soundness discussion. *)

type pos = { line : int; col : int }

type mutation = {
  m_target : string;  (** printable target, e.g. ["Pool.global"] *)
  m_path : string list;  (** target identifier path, for resolution *)
  m_op : string;  (** [":="], ["<-"], ["Array.set"], ... *)
  m_protected : bool;  (** lexically under a [Mutex.protect] argument *)
}

type unsafe_site = {
  u_callee : string;  (** e.g. ["Array.unsafe_get"] *)
  u_vars : string list;  (** variables appearing in the index arguments *)
  u_forvars : string list;  (** enclosing for-loop variables at the site *)
  u_validated_by : string option;
      (** payload of an [[\@nldl.bounds_validated "site"]] in scope *)
}

type site_kind =
  | Mutation of mutation
  | Blocking of string  (** blocking primitive, e.g. ["Unix.sleepf"] *)
  | Unsafe of unsafe_site

type site = {
  s_pos : pos;
  s_kind : site_kind;
  s_allowed : bool;  (** the matching rule id is allow-suppressed here *)
  s_direct : string option;
      (** [Some prim] when the site sits syntactically inside an
          argument of a parallel primitive *)
}

type def = {
  d_names : string list;
  d_path : string list;
  d_pos : pos;
  d_is_func : bool;  (** body is syntactically a lambda *)
  d_refs : string list list;
  d_escape_refs : (string list * string) list;
  d_sites : site list;
  d_guards : string list;
}

type fragment = {
  f_file : string;
  f_modpath : string list;
  f_opens : string list list;
  f_aliases : (string * string list) list;
  f_defs : def list;
  f_unsafe_zone : bool;
  f_domain_safe : bool;
  f_parallel_sites : (pos * string) list;
}

val empty_fragment : file:string -> fragment
(** Fragment for interfaces and unparseable files: no defs, no sites. *)

val modpath_of_file : string -> string list
(** [lib/exec/pool.ml] -> [\["Exec"; "Pool"\]]; executables are bare. *)

val parallel_prim : string list -> string option
(** Recognize a parallel fan-out primitive by callee path. *)

val extract :
  file:string -> marks:Attrs.file_marks -> Parsetree.structure -> fragment

(** {1 Whole-program graph} *)

type node = {
  n_id : int;
  n_names : string list;
  n_path : string list;  (** qualified path, e.g. [\["Exec";"Pool";"submit"\]] *)
  n_file : string;
  n_pos : pos;
  n_frag : int;
  n_def : int;
}

type t

val build : fragment list -> t

val node_count : t -> int
val node : t -> int -> node
val succs : t -> int -> int list
val roots : t -> (int * string) list
(** Escape roots: [(node, primitive)] for every definition referenced
    from inside a parallel primitive's arguments. *)

val fragments : t -> fragment list
val def_of : t -> int -> fragment * def
(** Fragment and definition record backing a node. *)

val resolve : t -> int -> string list -> int list
(** [resolve t frag path] resolves a reference path seen in fragment
    index [frag] (aliases expanded, opens tried for unqualified names,
    dotted-suffix match otherwise). *)

val resolve_name : t -> file:string -> string -> int list
(** Resolve a dotted name from an attribute payload (e.g.
    ["Fbuf.ensure"]); bare names resolve against [file]'s bindings. *)

val find : t -> string -> int list
(** Test helper: nodes answering to a dotted (or bare) name anywhere. *)
