(** Cmdliner surface shared by the standalone [nldl_lint] executable
    and the [nldl lint] subcommand. *)

type outcome = {
  header : string list;
  rows : string list list;  (** one row per finding *)
  out_json : Obs.Json.t;
  status : int;  (** 0 = gate passed, 1 = new findings *)
}

val thunk_term : (unit -> outcome) Cmdliner.Term.t
(** Parses [DIR...] positionals plus [--root], [--baseline],
    [--update-baseline], [--json FILE] and [--rules]; running the thunk
    lints, prints the human report (or the rule catalog for [--rules]),
    writes the JSON artifact if asked, and returns the outcome. *)

val embedded_term : (unit -> outcome) Cmdliner.Term.t
(** Same as {!thunk_term} but the findings artifact flag is
    [--lint-json], leaving [--json] to the wrapping
    [Experiments.Registry] command. *)

val command : int Cmdliner.Cmd.t
(** The standalone command; evaluate with [Cmd.eval'] so the exit code
    carries the gate result. *)
