(** Reading, normalizing and parsing compilation units.

    Every file the linter touches goes through this module so the
    robustness fixes apply uniformly: UTF-8 BOMs are stripped before
    lexing (they otherwise produce a spurious E000 on the first token),
    empty files parse to an empty structure, and [.mli]-only modules are
    plain interfaces with no special casing downstream. *)

type kind = Impl | Intf

type t = {
  file : string;  (** repo-relative path, ['/'] separators *)
  kind : kind;
  content : string;  (** BOM-stripped source *)
}

val of_string : file:string -> string -> t
(** Normalize an in-memory unit ([.mli] suffix selects {!Intf}). *)

val read : root:string -> string -> t
(** [read ~root rel] loads [root/rel] in binary mode and normalizes. *)

val digest : t -> string
(** Hex digest of (path, normalized content) — the analysis-cache key.
    The path is included because rule scoping depends on it. *)

type ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature
  | Parse_error of string  (** the E000 payload *)

val parse : t -> ast
(** Parse with [compiler-libs], positions rooted at [t.file]:1:0. *)
