(** The [nldl.*] attribute grammar understood by the linter.

    - [[\@nldl.allow "RULE"]] (or a tuple [("R1", "R2")]) on an
      expression or a [let] binding suppresses those rule ids for that
      construct; the floating form [[\@\@\@nldl.allow "RULE"]] at the
      top of a module suppresses them for the whole file.
    - [[\@\@\@nldl.unsafe_zone "reason"]] (floating, file level) declares
      the module an audited unsafe zone: [Array.unsafe_*]-style access
      is permitted, and the reason must name the bounds-validation
      site (U102 fires on a missing reason, U103 on a zone with no
      unsafe access left).
    - [[\@\@\@nldl.domain_safe "mechanism"]] (floating, file level)
      declares that the module's top-level mutable state is safe to
      touch from pool domains, naming the mechanism (mutex, DLS, ...).

    Unknown [nldl.*] attribute names are themselves a finding (X001),
    so a typo like [nldl.unsafe_zon] cannot silently disable a gate. *)

type mark = {
  reason : string option;  (** payload string, if present and non-empty *)
  mark_loc : Location.t;
}

type file_marks = {
  unsafe_zone : mark option;
  domain_safe : mark option;
  file_allows : string list;
  unknown : (string * Location.t) list;
      (** floating [nldl.*] attributes that are none of the above *)
}

val empty_marks : file_marks

val allows : Parsetree.attributes -> string list
(** Rule ids named by [[\@nldl.allow ...]] attributes in the list. *)

val string_payload : Parsetree.attribute -> string option
(** First non-empty string constant of the payload, if any. *)

val file_marks : Parsetree.structure -> file_marks
(** Scan a structure's floating attributes ([[\@\@\@...]] items). *)
