(* Interprocedural rules R401/R402/R403, evaluated in phase 2 over the
   whole-program call graph and escape set.

   Finding messages deliberately avoid line numbers: the baseline keys
   findings by [rule|file|message], so a message that names the target
   and its provenance survives unrelated line moves, exactly like the
   per-file rules. *)

let fmt = Printf.sprintf

(* A mutation target counts as module-level state iff its identifier
   path resolves to some top-level binding that is not syntactically a
   function (same file for bare names, dotted-suffix match otherwise).
   Writes to locals and parameters resolve to nothing and are ignored;
   a local ref shadowing a same-named top-level *function* (a common
   accessor pattern) resolves only to lambdas and is ignored too. *)
let module_level g frag_idx (m : Callgraph.mutation) =
  List.exists
    (fun id ->
      let _, d = Callgraph.def_of g id in
      not d.Callgraph.d_is_func)
    (Callgraph.resolve g frag_idx m.m_path)

let provenance esc id (site : Callgraph.site) =
  match site.s_direct with
  | Some prim -> fmt "inside closure passed to %s" prim
  | None -> Escape.describe esc id

let check_node g esc id acc =
  let node = Callgraph.node g id in
  let frag, def = Callgraph.def_of g id in
  let escaping = Escape.escapes esc id in
  List.fold_left
    (fun acc (site : Callgraph.site) ->
      if site.s_allowed then acc
      else
        let emit rule message =
          Finding.make ~rule ~file:node.Callgraph.n_file
            ~line:site.s_pos.Callgraph.line ~col:site.s_pos.Callgraph.col
            ~message
          :: acc
        in
        let in_parallel = escaping || site.s_direct <> None in
        match site.s_kind with
        | Mutation m ->
            if
              in_parallel && (not m.m_protected)
              && (not frag.Callgraph.f_domain_safe)
              && module_level g node.Callgraph.n_frag m
            then
              emit "R401"
                (fmt
                   "unprotected write (%s) to module-level state '%s' in \
                    '%s', %s; wrap in Mutex.protect, use Atomic/Domain.DLS, \
                    or audit the file with [@@@nldl.domain_safe \"mechanism\"]"
                   m.m_op m.m_target
                   (String.concat "." def.Callgraph.d_path)
                   (provenance esc id site))
            else acc
        | Blocking prim ->
            (* A [@@@nldl.domain_safe] audit names the file's locking
               mechanism, which covers its own short-critical-section
               Mutex.lock / Condition.wait; real syscalls still fire. *)
            let audited =
              frag.Callgraph.f_domain_safe
              && (prim = "Mutex.lock" || prim = "Condition.wait")
            in
            if in_parallel && not audited then
              emit "R403"
                (fmt
                   "blocking call %s in '%s', %s; blocking a pool domain \
                    stalls every queued task (use Mutex.protect or move the \
                    wait off the pool)"
                   prim
                   (String.concat "." def.Callgraph.d_path)
                   (provenance esc id site))
            else acc
        | Unsafe u ->
            if not frag.Callgraph.f_unsafe_zone then acc
              (* outside a zone U101 already rejects the call per file *)
            else (
              match u.u_validated_by with
              | Some target ->
                  if Callgraph.resolve_name g ~file:frag.Callgraph.f_file target = []
                  then
                    emit "R402"
                      (fmt
                         "stale [@nldl.bounds_validated \"%s\"] on %s in \
                          '%s': no such definition; point it at the \
                          validating function"
                         target u.u_callee
                         (String.concat "." def.Callgraph.d_path))
                  else acc
              | None ->
                  let checked v =
                    List.mem v u.u_forvars
                    || List.mem v def.Callgraph.d_guards
                  in
                  if List.for_all checked u.u_vars then acc
                  else
                    emit "R402"
                      (fmt
                         "%s in '%s' indexes [%s] with no dominating \
                          bounds/length check on [%s]; add the check or \
                          annotate with [@nldl.bounds_validated \"site\"]"
                         u.u_callee
                         (String.concat "." def.Callgraph.d_path)
                         (String.concat "; " u.u_vars)
                         (String.concat "; "
                            (List.filter (fun v -> not (checked v)) u.u_vars)))))
    acc def.Callgraph.d_sites

let findings g esc =
  let acc = ref [] in
  for id = 0 to Callgraph.node_count g - 1 do
    acc := check_node g esc id !acc
  done;
  List.sort Finding.compare !acc

(* --- call-graph artifact (--graph-json) --------------------------------- *)

let graph_json g esc =
  let open Obs.Json in
  let nodes = ref [] in
  let edge_count = ref 0 in
  for id = Callgraph.node_count g - 1 downto 0 do
    let node = Callgraph.node g id in
    let succs = Callgraph.succs g id in
    edge_count := !edge_count + List.length succs;
    let fields =
      [
        ("id", Int id);
        ("path", String (String.concat "." node.Callgraph.n_path));
        ("file", String node.Callgraph.n_file);
        ("line", Int node.Callgraph.n_pos.Callgraph.line);
        ("escaping", Bool (Escape.escapes esc id));
        ("succs", List (List.map (fun s -> Int s) succs));
      ]
    in
    let fields =
      match Escape.witness esc id with
      | Some w ->
          fields
          @ [
              ("escape_prim", String w.Escape.w_prim);
              ("escape_root", String w.Escape.w_root);
            ]
      | None -> fields
    in
    nodes := Obj fields :: !nodes
  done;
  let parallel_sites =
    List.concat_map
      (fun (f : Callgraph.fragment) ->
        List.map
          (fun ((p : Callgraph.pos), prim) ->
            Obj
              [
                ("file", String f.Callgraph.f_file);
                ("line", Int p.Callgraph.line);
                ("prim", String prim);
              ])
          f.Callgraph.f_parallel_sites)
      (Callgraph.fragments g)
  in
  Obj
    [
      ( "summary",
        Obj
          [
            ("nodes", Int (Callgraph.node_count g));
            ("edges", Int !edge_count);
            ("escaping", Int (Escape.count esc));
            ("roots", Int (List.length (Callgraph.roots g)));
            ("parallel_sites", Int (List.length parallel_sites));
          ] );
      ("nodes", List !nodes);
      ( "roots",
        List
          (List.map
             (fun (id, prim) ->
               Obj [ ("node", Int id); ("prim", String prim) ])
             (Callgraph.roots g)) );
      ("parallel_sites", List parallel_sites);
    ]
