(** The map-phase scheduler: demand-driven task hand-out on a
    heterogeneous platform, as in Hadoop (Section 4: "processors ask for
    new tasks as soon as they end processing one"), extended from the
    original clairvoyant simulation to a progress-based, fault-tolerant
    runtime:

    - {b affinity-aware} selection (the conclusion's proposal): among
      pending tasks, prefer the one whose input blocks are already
      cached on the requesting worker;
    - {b speculative re-execution}: an idle worker duplicates a running
      task; either Hadoop-style ({!At_idle}: duplicate the task with
      the latest realized finish) or LATE-style ({!Late}: duplicate
      only tasks whose {e observed} progress rate extrapolates to the
      latest finish and falls below a threshold of the mean rate);
    - {b fault injection} ([?faults]): a deterministic [Fault.Plan] of
      worker crashes (with optional recovery), compute slowdown
      windows, and per-link fetch-failure probabilities.  Crashed
      workers lose their block cache and their in-flight copy; the
      orphaned task is re-enqueued with capped exponential backoff
      ([config.retry]).  A failed fetch costs
      [config.fetch_timeout *. transfer_time] before it is detected,
      then retries under the same backoff; after
      [config.retry.max_attempts] failures the (worker, task) pair is
      quarantined and the task is offered to other workers.

    Every injected fault is recorded in the outcome's [fault_log] and
    mirrored through [Obs.Trace] instants / [Obs.Metrics] counters, so
    Perfetto traces show the failures inline. *)

type policy =
  | Fifo  (** take pending tasks in submission order *)
  | Affinity  (** minimize the volume of blocks to fetch; ties → Fifo *)

type speculation =
  | Off
  | At_idle
      (** Hadoop: when no pending task remains, duplicate the running
          task with the latest (clairvoyantly known) finish if this
          worker would beat it *)
  | Late of { threshold : float }
      (** LATE (Zaharia et al.): duplicate the running task with the
          latest {e estimated} finish — extrapolated from observed
          fractional progress — but only when its progress rate is
          below [threshold] times the mean rate of all running copies.
          [threshold] in (0, 1]; 0.7 is a reasonable default. *)

type config = {
  policy : policy;
  speculation : speculation;
  retry : Fault.Retry.t;
      (** backoff for task re-execution and fetch retries (delays in
          simulated time units; [deadline] is ignored here) *)
  fetch_timeout : float;
      (** a failed fetch attempt occupies the worker for
          [fetch_timeout *. transfer_time] before it is detected *)
}

val default_config : config
(** [Fifo], no speculation, 3 fetch/retry attempts with backoff base
    0.5 capped at 8 time units, fetch timeout 0.5: plain MapReduce. *)

type assignment = {
  task : int;  (** task id *)
  worker : int;
  start : float;  (** when the worker was assigned the copy *)
  fetch_end : float;  (** when all missing blocks had arrived *)
  finish : float;
  fetched : float;  (** data volume actually transferred *)
}

type outcome = {
  assignments : assignment list;
      (** completed copies, in completion order; killed or aborted
          copies appear in [attempts]/[wasted_work] instead *)
  completion : float array;  (** per task: earliest copy finish; [infinity] if none *)
  winner : int array;  (** per task: worker of the earliest copy; -1 if none *)
  makespan : float;  (** last finite task completion *)
  busy_until : float array;  (** per worker: end of its last copy (or kill) *)
  communication : float;  (** total data fetched, incl. duplicates *)
  per_worker_comm : float array;
  per_worker_tasks : int array;  (** copies completed by each worker *)
  duplicates : int;  (** speculative copies launched *)
  retries : int;
      (** injected-fault recoveries: fetch retries + task re-enqueues *)
  crashes_survived : int;  (** injected crashes processed during the run *)
  attempts : int array;  (** per task: copies started, incl. failed ones *)
  idle_workers : int;  (** workers that completed no copy *)
  unfinished : int list;  (** tasks no copy of which ever finished *)
  wasted_work : float;
      (** work units spent on copies that lost the duplicate race, were
          killed by a crash, or aborted on fetch exhaustion *)
  events_processed : int;
      (** discrete events popped during the simulation — the numerator
          of the events/sec throughput benchmark *)
  fault_log : Fault.Clock.event list;  (** injected events, in order *)
}

val run :
  ?config:config ->
  ?jitter:Numerics.Rng.t * float ->
  ?faults:Fault.Plan.t ->
  Platform.Star.t ->
  tasks:Task.t array ->
  block_size:(int -> float) ->
  outcome
(** Simulate the map phase.  Workers cache every block they fetch until
    they crash (the paper's "data already stored on a slave
    processor").  Deterministic given the same inputs: ties are broken
    by worker then task index, and all fault randomness is fixed inside
    [faults] — the same plan replays byte-identically at any domain
    count of the surrounding trial loop.

    [jitter] = [(rng, sigma)] multiplies every copy's computation time
    by an independent log-normal(0, sigma) factor — the stragglers that
    make speculative re-execution worthwhile.  Under {!At_idle} the
    scheduler still sees realized durations (clairvoyant); under
    {!Late} it only observes fractional progress.

    Raises [Invalid_argument] when [faults] addresses more workers than
    the platform has, or on a malformed config. *)

val imbalance : outcome -> float
(** [(tmax - tmin)/tmin] over [busy_until] of the workers that
    completed at least one copy (crashed or starved workers no longer
    poison the ratio with [infinity] — use [idle_workers] to see how
    many sat out); 0 when fewer than two workers ran. *)
