module Star = Platform.Star
module Processor = Platform.Processor

let src = Logs.Src.create "nldl.mapreduce" ~doc:"MapReduce map-phase scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type policy = Fifo | Affinity
type config = { policy : policy; speculation : bool }

let default_config = { policy = Fifo; speculation = false }

type assignment = {
  task : int;
  worker : int;
  start : float;
  fetch_end : float;
  finish : float;
  fetched : float;
}

type outcome = {
  assignments : assignment list;
  completion : float array;
  winner : int array;
  makespan : float;
  busy_until : float array;
  communication : float;
  per_worker_comm : float array;
  per_worker_tasks : int array;
  duplicates : int;
}

(* Doubly-linked list over task indices for O(1) removal and O(pending)
   scans during affinity selection. *)
module Pending = struct
  type t = { next : int array; prev : int array; mutable count : int }
  (* Virtual head at index n. *)

  let create n =
    let next = Array.init (n + 1) (fun i -> if i = n then 0 else i + 1) in
    let prev = Array.init (n + 1) (fun i -> if i = 0 then n else i - 1) in
    { next; prev; count = n }

  let head t = Array.length t.next - 1
  let is_empty t = t.count = 0
  let first t = t.next.(head t)
  let iter t f =
    let h = head t in
    let rec loop i = if i <> h then begin f i; loop t.next.(i) end in
    loop (first t)

  let remove t i =
    t.next.(t.prev.(i)) <- t.next.(i);
    t.prev.(t.next.(i)) <- t.prev.(i);
    t.count <- t.count - 1
end

let missing_volume cache ~block_size task =
  Array.fold_left
    (fun acc id -> if Hashtbl.mem cache id then acc else acc +. block_size id)
    0. task.Task.data_ids

let m_assignments = Obs.Metrics.counter "mapreduce.assignments"
let m_speculative = Obs.Metrics.counter "mapreduce.speculative_copies"

let run ?(config = default_config) ?jitter star ~tasks ~block_size =
  let compute_factor =
    match jitter with
    | None -> fun () -> 1.
    | Some (rng, sigma) ->
        if sigma < 0. then invalid_arg "Scheduler.run: jitter sigma must be >= 0";
        fun () -> Numerics.Distributions.lognormal rng ~mu:0. ~sigma
  in
  let p = Star.size star in
  let workers = Star.workers star in
  let n_tasks = Array.length tasks in
  let pending = Pending.create n_tasks in
  let caches = Array.init p (fun _ -> Hashtbl.create 64) in
  let completion = Array.make n_tasks infinity in
  let winner = Array.make n_tasks (-1) in
  let copies = Array.make n_tasks 0 in
  let busy_until = Array.make p 0. in
  let per_worker_comm = Array.make p 0. in
  let per_worker_tasks = Array.make p 0 in
  let assignments = ref [] in
  let duplicates = ref 0 in
  let total_comm = ref 0. in
  let queue = Des.Event_queue.create ~initial_capacity:p () in
  for w = 0 to p - 1 do
    Des.Event_queue.push queue ~priority:0. w
  done;
  let select_task w =
    match config.policy with
    | Fifo -> Pending.first pending
    | Affinity ->
        let best = ref (-1) and best_volume = ref infinity in
        Pending.iter pending (fun i ->
            let volume = missing_volume caches.(w) ~block_size tasks.(i) in
            if volume < !best_volume then begin
              best := i;
              best_volume := volume
            end);
        !best
  in
  let execute_copy w now i =
    let proc = workers.(w) in
    let volume = missing_volume caches.(w) ~block_size tasks.(i) in
    Array.iter (fun id -> Hashtbl.replace caches.(w) id ()) tasks.(i).Task.data_ids;
    let fetch_end = now +. Processor.transfer_time proc ~data:volume in
    let finish =
      fetch_end
      +. (compute_factor () *. Processor.compute_time proc ~work:tasks.(i).Task.cost)
    in
    if finish < completion.(i) then begin
      completion.(i) <- finish;
      winner.(i) <- w
    end;
    copies.(i) <- copies.(i) + 1;
    busy_until.(w) <- finish;
    per_worker_comm.(w) <- per_worker_comm.(w) +. volume;
    per_worker_tasks.(w) <- per_worker_tasks.(w) + 1;
    total_comm := !total_comm +. volume;
    Obs.Metrics.incr_counter m_assignments;
    assignments := { task = i; worker = w; start = now; fetch_end; finish; fetched = volume } :: !assignments;
    Log.debug (fun m ->
        m "t=%.4g: task %d -> worker %d (fetch %.4g, finish %.4g)" now i w volume finish);
    Des.Event_queue.push queue ~priority:finish w
  in
  (* A speculative copy targets the unfinished task with the latest
     estimated completion, if this worker can beat that estimate and the
     task has fewer than 2 copies. *)
  let try_speculate w now =
    let target = ref (-1) and latest = ref now in
    Array.iteri
      (fun i done_at ->
        if done_at > !latest && copies.(i) < 2 && winner.(i) <> w then begin
          latest := done_at;
          target := i
        end)
      completion;
    if !target < 0 then false
    else begin
      let i = !target in
      let proc = workers.(w) in
      let volume = missing_volume caches.(w) ~block_size tasks.(i) in
      let eta =
        now +. Processor.transfer_time proc ~data:volume
        +. Processor.compute_time proc ~work:tasks.(i).Task.cost
      in
      if eta < completion.(i) then begin
        incr duplicates;
        Obs.Metrics.incr_counter m_speculative;
        Log.info (fun m ->
            m "t=%.4g: worker %d speculates on task %d (eta %.4g < %.4g)" now w i eta
              completion.(i));
        execute_copy w now i;
        true
      end
      else false
    end
  in
  let rec drain () =
    match Des.Event_queue.pop queue with
    | None -> ()
    | Some (now, w) ->
        if not (Pending.is_empty pending) then begin
          let i = select_task w in
          Pending.remove pending i;
          execute_copy w now i
        end
        else if config.speculation then begin
          (* If nothing is worth duplicating the worker retires. *)
          ignore (try_speculate w now : bool)
        end;
        drain ()
  in
  Obs.Trace.begin_span "mapreduce.schedule";
  drain ();
  Obs.Trace.end_span "mapreduce.schedule";
  let makespan = Array.fold_left Float.max 0. completion in
  let makespan = if n_tasks = 0 then 0. else makespan in
  {
    assignments = List.rev !assignments;
    completion;
    winner;
    makespan;
    busy_until;
    communication = !total_comm;
    per_worker_comm;
    per_worker_tasks;
    duplicates = !duplicates;
  }

let imbalance outcome =
  let tmax = Array.fold_left Float.max 0. outcome.busy_until in
  let tmin = Array.fold_left Float.min infinity outcome.busy_until in
  if tmin > 0. then (tmax -. tmin) /. tmin else infinity
