module Star = Platform.Star
module Processor = Platform.Processor

let src = Logs.Src.create "nldl.mapreduce" ~doc:"MapReduce map-phase scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type policy = Fifo | Affinity
type speculation = Off | At_idle | Late of { threshold : float }

type config = {
  policy : policy;
  speculation : speculation;
  retry : Fault.Retry.t;
  fetch_timeout : float;
}

let default_config =
  {
    policy = Fifo;
    speculation = Off;
    retry = { Fault.Retry.default with base_delay = 0.5; max_delay = 8. };
    fetch_timeout = 0.5;
  }

type assignment = {
  task : int;
  worker : int;
  start : float;
  fetch_end : float;
  finish : float;
  fetched : float;
}

type outcome = {
  assignments : assignment list;
  completion : float array;
  winner : int array;
  makespan : float;
  busy_until : float array;
  communication : float;
  per_worker_comm : float array;
  per_worker_tasks : int array;
  duplicates : int;
  retries : int;
  crashes_survived : int;
  attempts : int array;
  idle_workers : int;
  unfinished : int list;
  wasted_work : float;
  events_processed : int;
  fault_log : Fault.Clock.event list;
}

(* Doubly-linked list over task indices for O(1) removal/re-insertion
   and O(pending) scans during affinity selection. *)
module Pending = struct
  type t = { next : int array; prev : int array; mutable count : int }
  (* Virtual head at index n. *)

  let create n =
    let next = Array.init (n + 1) (fun i -> if i = n then 0 else i + 1) in
    let prev = Array.init (n + 1) (fun i -> if i = 0 then n else i - 1) in
    { next; prev; count = n }

  let head t = Array.length t.next - 1
  let is_empty t = t.count = 0
  let first t = t.next.(head t)

  let remove t i =
    t.next.(t.prev.(i)) <- t.next.(i);
    t.prev.(t.next.(i)) <- t.prev.(i);
    t.count <- t.count + (-1)

  (* Append at the tail (re-enqueued tasks go behind fresher pending
     work, like Hadoop's re-execution queue). *)
  let add t i =
    let h = head t in
    t.prev.(i) <- t.prev.(h);
    t.next.(i) <- h;
    t.next.(t.prev.(h)) <- i;
    t.prev.(h) <- i;
    t.count <- t.count + 1
end

(* Open-addressing set of non-negative ints: the flat replacement for
   the per-worker block-cache [Hashtbl]s and the [(worker, task)]
   quarantine table.  [Hashtbl.mem cache (w, i)] allocated a tuple per
   membership query and the caches churned a bucket list per insert —
   per *event* costs at 10^5-worker scale.  Linear probing over a
   power-of-two [int array] with [min_int] as the empty marker does
   both in zero allocations.  Only membership is ever queried, so
   iteration order (the one observable difference from Hashtbl) cannot
   leak into outcomes. *)
module Intset = struct
  type t = { mutable slots : int array; mutable mask : int; mutable count : int }

  let empty_slot = min_int

  let create cap =
    let cap = max 8 cap in
    let size = ref 8 in
    while !size < cap do
      size := !size * 2
    done;
    { slots = Array.make !size empty_slot; mask = !size - 1; count = 0 }

  (* Fibonacci-style multiplicative mix; the low bits of [x * odd] are a
     bijection, so sequential block ids stay collision-free. *)
  let slot_of t x = x * 0x9E3779B9 land t.mask

  let mem t x =
    let slots = t.slots in
    let j = ref (slot_of t x) in
    let found = ref false in
    let probing = ref true in
    while !probing do
      let v = slots.(!j) in
      if v = x then begin
        found := true;
        probing := false
      end
      else if v = empty_slot then probing := false
      else j := (!j + 1) land t.mask
    done;
    !found

  let rec add t x =
    if 2 * (t.count + 1) > Array.length t.slots then grow t;
    let slots = t.slots in
    let j = ref (slot_of t x) in
    let probing = ref true in
    while !probing do
      let v = slots.(!j) in
      if v = x then probing := false
      else if v = empty_slot then begin
        slots.(!j) <- x;
        t.count <- t.count + 1;
        probing := false
      end
      else j := (!j + 1) land t.mask
    done

  and grow t =
    let old = t.slots in
    t.slots <- Array.make (2 * Array.length old) empty_slot;
    t.mask <- Array.length t.slots - 1;
    t.count <- 0;
    Array.iter (fun v -> if v <> empty_slot then add t v) old

  let reset t =
    if t.count > 0 then begin
      Array.fill t.slots 0 (Array.length t.slots) empty_slot;
      t.count <- 0
    end
end

let m_assignments = Obs.Metrics.counter "mapreduce.assignments"
let m_speculative = Obs.Metrics.counter "mapreduce.speculative_copies"

(* Per-event-type counters, flushed once per [run] from a flat local
   tally (a DLS-backed [Metrics.add] per event would be measurable at
   10^6-event scale; one add per tag per run is not). *)
let m_ev_free = Obs.Metrics.counter "mapreduce.events.free"
let m_ev_done = Obs.Metrics.counter "mapreduce.events.done"
let m_ev_crash = Obs.Metrics.counter "mapreduce.events.crash"
let m_ev_recover = Obs.Metrics.counter "mapreduce.events.recover"
let m_ev_retry = Obs.Metrics.counter "mapreduce.events.retry"
let g_heap_hwm = Obs.Metrics.gauge "mapreduce.heap_hwm"

(* Simulated-time distributions (recorded as integer nanoseconds of sim
   time: 1 sim unit = 1 s) and the sampled heap depth.  All recording
   is gated on one [obs_on] boolean hoisted to the top of [run], with
   shards cached outside the loop, so the disabled event loop is
   byte-for-byte the uninstrumented one. *)
let h_heap = Obs.Hist.create "mapreduce.heap_size"
let h_wait = Obs.Hist.create "mapreduce.task_wait_s"
let h_service = Obs.Hist.create "mapreduce.task_service_s"
let h_fetch = Obs.Hist.create "mapreduce.fetch_s"
let h_retry_delay = Obs.Hist.create "mapreduce.retry_delay_s"

let heap_sample_mask = 63

(* Events live in the [Des.Event_heap] as ints: tag in the low 3 bits,
   worker / task / crash-plan index above.  Same five cases as the old
   boxed [ev] variant, minus the allocation per event. *)
let tag_free = 0 (* worker w asks for work *)
let tag_done = 1 (* worker w's copy finishes *)
let tag_crash = 2 (* crash_at.(idx) fires *)
let tag_recover = 3 (* worker w comes back up *)
let tag_retry = 4 (* task i becomes pending again *)

let[@inline] encode tag arg = (arg lsl 3) lor tag

(* Worker states, kept as bare ints in a flat array. *)
let w_idle = 0
let w_busy = 1
let w_down = 2

let run ?(config = default_config) ?jitter ?(faults = Fault.Plan.none) star ~tasks
    ~block_size =
  let compute_factor =
    match jitter with
    | None -> fun () -> 1.
    | Some (rng, sigma) ->
        if sigma < 0. then invalid_arg "Scheduler.run: jitter sigma must be >= 0";
        fun () -> Numerics.Distributions.lognormal rng ~mu:0. ~sigma
  in
  let p = Star.size star in
  if Fault.Plan.p faults > p then
    invalid_arg "Scheduler.run: fault plan addresses more workers than the platform has";
  let retry = config.retry in
  if retry.max_attempts < 1 then
    invalid_arg "Scheduler.run: retry.max_attempts must be >= 1";
  if config.fetch_timeout < 0. then
    invalid_arg "Scheduler.run: fetch_timeout must be >= 0";
  (match config.speculation with
  | Late { threshold } when threshold <= 0. || threshold > 1. ->
      invalid_arg "Scheduler.run: Late threshold must be in (0, 1]"
  | _ -> ());
  let clock = Fault.Clock.create faults in
  let workers = Star.workers star in
  let n_tasks = Array.length tasks in
  let pending = Pending.create n_tasks in
  let caches = Array.init p (fun _ -> Intset.create 64) in
  let completion = Array.make n_tasks infinity in
  let winner = Array.make n_tasks (-1) in
  let attempts = Array.make n_tasks 0 in
  let live_copies = Array.make n_tasks 0 in
  let retry_pending = Array.make n_tasks false in
  (* Quarantined (worker, task) pairs, keyed [w * n_tasks + i]. *)
  let barred = Intset.create 8 in
  let busy_until = Array.make p 0. in
  let per_worker_comm = Array.make p 0. in
  let per_worker_tasks = Array.make p 0 in
  let wstate = Array.make p w_idle in
  (* The in-flight copy of each worker, struct-of-arrays: [run_task] is
     -1 when the worker runs nothing; a doomed copy (dies mid-fetch at
     the next crash) has fetch_end = finish = infinity and compute = 0,
     exactly like the old [copy] record. *)
  let run_task = Array.make p (-1) in
  let run_start = Array.make p 0. in
  let run_fetch_end = Array.make p 0. in
  let run_finish = Array.make p 0. in
  let run_compute = Array.make p 0. in
  let run_volume = Array.make p 0. in
  let fetch_attempt_no = Array.make p 0 in
  (* Completed copies, accumulated into growable flat columns and
     converted to the [assignment list] once at the end. *)
  let a_cap = ref 256 in
  let a_n = ref 0 in
  let a_task = ref (Array.make !a_cap 0) in
  let a_worker = ref (Array.make !a_cap 0) in
  let a_start = ref (Array.make !a_cap 0.) in
  let a_fetch_end = ref (Array.make !a_cap 0.) in
  let a_finish = ref (Array.make !a_cap 0.) in
  let a_fetched = ref (Array.make !a_cap 0.) in
  let duplicates = ref 0 in
  let retries = ref 0 in
  let crashes = ref 0 in
  let events_processed = ref 0 in
  (* Float accumulators and scratch live in 1-slot float arrays (unboxed
     load/store); [ref 0.] or a mutable float field in a mixed record
     would box on every update. *)
  let total_comm = [| 0. |] in
  let wasted = [| 0. |] in
  let mv = [| 0. |] in (* missing_volume result *)
  let ft = [| 0. |] in (* fetch-loop clock *)
  let bv = [| infinity |] in (* affinity best volume *)
  let lat = [| 0. |] in (* speculation latest finish *)
  let rate_sum = [| 0. |] in
  (* Per-worker progress observations for LATE, reused across calls;
     entries are only read for workers with a running copy, which are
     exactly the entries the observation loop wrote. *)
  let rate_arr = Array.make p 0. in
  let est_arr = Array.make p 0. in
  (* Observability: one boolean read per run gates every record; the
     histogram shards are hoisted here so each enabled record is a few
     domain-local stores.  [avail] (when-did-the-task-become-runnable,
     for wait-time distributions) only exists when observing. *)
  let obs_on = Obs.Hist.enabled () || Obs.Metrics.enabled () in
  let evt_counts = Array.make 8 0 in
  let sh_heap = Obs.Hist.shard h_heap in
  let sh_wait = Obs.Hist.shard h_wait in
  let sh_service = Obs.Hist.shard h_service in
  let sh_fetch = Obs.Hist.shard h_fetch in
  let sh_retry_delay = Obs.Hist.shard h_retry_delay in
  let avail = if obs_on then Array.make n_tasks 0. else [||] in
  let[@inline] rec_s sh x = Obs.Hist.record_into sh (int_of_float (x *. 1e9)) in
  let queue = Des.Event_heap.create ~initial_capacity:(max 16 p) () in
  (* Plan events first: a crash at the same instant as an assignment
     opportunity wins the FIFO tie, so "crash before first assignment"
     means exactly that. *)
  let crash_arr = Array.of_list (Fault.Plan.crashes faults) in
  Array.iteri
    (fun idx (c : Fault.Plan.crash) ->
      Des.Event_heap.push queue ~priority:c.at (encode tag_crash idx);
      match c.recovery with
      | Some r -> Des.Event_heap.push queue ~priority:r (encode tag_recover c.worker)
      | None -> ())
    crash_arr;
  for w = 0 to p - 1 do
    Des.Event_heap.push queue ~priority:0. (encode tag_free w)
  done;
  let is_barred w i = Intset.mem barred ((w * n_tasks) + i) in
  (* Sum of block sizes the worker has not cached, into [mv.(0)]; same
     left-to-right order as the old [Array.fold_left]. *)
  let missing_volume w i =
    let cache = caches.(w) in
    let ids = tasks.(i).Task.data_ids in
    mv.(0) <- 0.;
    for k = 0 to Array.length ids - 1 do
      let id = ids.(k) in
      if not (Intset.mem cache id) then mv.(0) <- mv.(0) +. block_size id
    done
  in
  let enqueue_retry i now =
    if completion.(i) = infinity && live_copies.(i) = 0 && not retry_pending.(i)
    then begin
      retry_pending.(i) <- true;
      incr retries;
      let delay = Fault.Retry.delay retry ~attempt:(min attempts.(i) 30) in
      if obs_on then rec_s sh_retry_delay delay;
      Fault.Clock.record clock
        (Task_retry { task = i; attempt = attempts.(i); time = now +. delay });
      Des.Event_heap.push queue ~priority:(now +. delay) (encode tag_retry i)
    end
  in
  let execute_copy w now i =
    if obs_on then rec_s sh_wait (now -. avail.(i));
    attempts.(i) <- attempts.(i) + 1;
    live_copies.(i) <- live_copies.(i) + 1;
    wstate.(w) <- w_busy;
    let proc = workers.(w) in
    missing_volume w i;
    let volume = mv.(0) in
    let transfer = Processor.transfer_time proc ~data:volume in
    let t_kill =
      match Fault.Plan.next_crash faults ~worker:w ~after:now with
      | Some c -> c.at
      | None -> infinity
    in
    (* Fetch phase: each attempt consumes one per-worker counter value
       (deterministic regardless of history); a failed attempt occupies
       the link for [fetch_timeout *. transfer] before it is detected,
       then backs off.  Events past the worker's next crash are not
       recorded — the crash kills the copy first.  Iterative version of
       the old recursive [fetch], clock carried in [ft.(0)]:
       0 = fetched (at ft.(0)), 1 = doomed, 2 = exhausted (at ft.(0)). *)
    let fkind = ref 0 in
    if volume <= 0. then ft.(0) <- now
    else begin
      ft.(0) <- now;
      let k = ref 1 in
      let deciding = ref true in
      while !deciding do
        let a = fetch_attempt_no.(w) in
        fetch_attempt_no.(w) <- a + 1;
        if not (Fault.Plan.fetch_fails faults ~worker:w ~attempt:a) then begin
          ft.(0) <- ft.(0) +. transfer;
          deciding := false
        end
        else begin
          let detected = ft.(0) +. (config.fetch_timeout *. transfer) in
          if detected >= t_kill then begin
            fkind := 1;
            deciding := false
          end
          else begin
            Fault.Clock.record clock
              (Fetch_failure { worker = w; task = i; attempt = !k; time = detected });
            incr retries;
            if !k >= retry.max_attempts then begin
              fkind := 2;
              ft.(0) <- detected;
              deciding := false
            end
            else begin
              ft.(0) <- detected +. Fault.Retry.delay retry ~attempt:!k;
              incr k
            end
          end
        end
      done
    end;
    let doom () =
      (* the crash at [t_kill] finds this copy in flight and kills it *)
      run_task.(w) <- i;
      run_start.(w) <- now;
      run_fetch_end.(w) <- infinity;
      run_finish.(w) <- infinity;
      run_compute.(w) <- 0.;
      run_volume.(w) <- volume
    in
    if !fkind = 1 then doom ()
    else if !fkind = 2 then begin
      (* fetch retries exhausted: quarantine the (worker, task) pair,
         hand the task back, free the worker at [t_ex] *)
      let t_ex = ft.(0) in
      live_copies.(i) <- live_copies.(i) - 1;
      Intset.add barred ((w * n_tasks) + i);
      Fault.Clock.record clock (Quarantine { worker = w; task = i; time = t_ex });
      busy_until.(w) <- Float.max busy_until.(w) t_ex;
      enqueue_retry i t_ex;
      run_task.(w) <- -1;
      Des.Event_heap.push queue ~priority:t_ex (encode tag_free w)
    end
    else begin
      let t_f = ft.(0) in
      if t_f >= t_kill then doom ()
      else begin
        if obs_on then rec_s sh_fetch (t_f -. now);
        let cache = caches.(w) in
        let ids = tasks.(i).Task.data_ids in
        for k = 0 to Array.length ids - 1 do
          Intset.add cache ids.(k)
        done;
        per_worker_comm.(w) <- per_worker_comm.(w) +. volume;
        total_comm.(0) <- total_comm.(0) +. volume;
        let d_c = compute_factor () *. Processor.compute_time proc ~work:tasks.(i).Task.cost in
        let finish = Fault.Plan.advance faults ~worker:w ~start:t_f ~duration:d_c in
        run_task.(w) <- i;
        run_start.(w) <- now;
        run_fetch_end.(w) <- t_f;
        run_finish.(w) <- finish;
        run_compute.(w) <- d_c;
        run_volume.(w) <- volume;
        Obs.Metrics.incr_counter m_assignments;
        Log.debug (fun m ->
            m "t=%.4g: task %d -> worker %d (fetch %.4g, finish %.4g)" now i w volume
              finish);
        if finish < t_kill then
          Des.Event_heap.push queue ~priority:finish (encode tag_done w)
        (* else: the crash event at [t_kill] kills the copy *)
      end
    end
  in
  let select_task w =
    let h = Pending.head pending in
    match config.policy with
    | Fifo ->
        (* first pending task this worker is not quarantined from *)
        let found = ref (-1) in
        let i = ref (Pending.first pending) in
        while !found < 0 && !i <> h do
          if not (is_barred w !i) then found := !i else i := pending.next.(!i)
        done;
        !found
    | Affinity ->
        (* minimum missing volume; strict [<] keeps the first (oldest)
           minimum, like the old fold *)
        let best = ref (-1) in
        bv.(0) <- infinity;
        let i = ref (Pending.first pending) in
        while !i <> h do
          if not (is_barred w !i) then begin
            missing_volume w !i;
            if mv.(0) < bv.(0) then begin
              best := !i;
              bv.(0) <- mv.(0)
            end
          end;
          i := pending.next.(!i)
        done;
        !best
  in
  (* Clairvoyant eta of a fresh copy on [w], used to decide whether a
     speculative duplicate is worth launching (nominal speed: the
     scheduler cannot see the jitter of a copy it has not started). *)
  let nominal_eta w now i =
    let proc = workers.(w) in
    missing_volume w i;
    now
    +. Processor.transfer_time proc ~data:mv.(0)
    +. Processor.compute_time proc ~work:tasks.(i).Task.cost
  in
  let launch_speculative w now i =
    incr duplicates;
    Obs.Metrics.incr_counter m_speculative;
    Log.info (fun m -> m "t=%.4g: worker %d speculates on task %d" now w i);
    execute_copy w now i
  in
  let eligible_target w i =
    completion.(i) = infinity && live_copies.(i) < 2 && not (is_barred w i)
  in
  (* Hadoop-style: duplicate the task with the latest realized finish
     if this worker can beat it. *)
  let speculate_at_idle w now =
    let target = ref (-1) in
    lat.(0) <- now;
    for w' = 0 to p - 1 do
      let i = run_task.(w') in
      if i >= 0 && run_finish.(w') > lat.(0) && eligible_target w i then begin
        lat.(0) <- run_finish.(w');
        target := i
      end
    done;
    if !target >= 0 && nominal_eta w now !target < lat.(0) then
      launch_speculative w now !target
  in
  (* LATE: observe fractional progress, extrapolate the finish, and
     duplicate only slow-rate outliers this worker would beat. *)
  let speculate_late w now ~threshold =
    let n_running = ref 0 in
    rate_sum.(0) <- 0.;
    for w' = 0 to p - 1 do
      if run_task.(w') >= 0 then begin
        let elapsed = now -. run_start.(w') in
        let progress =
          if now <= run_fetch_end.(w') || run_compute.(w') <= 0. then 0.
          else
            Float.min 1.
              (Fault.Plan.work_between faults ~worker:w' ~start:run_fetch_end.(w')
                 ~until:now
              /. run_compute.(w'))
        in
        let rate = if elapsed <= 0. then 0. else progress /. elapsed in
        let estimate =
          if progress <= 0. then infinity else run_start.(w') +. (elapsed /. progress)
        in
        rate_arr.(w') <- rate;
        est_arr.(w') <- estimate;
        incr n_running;
        rate_sum.(0) <- rate_sum.(0) +. rate
      end
    done;
    if !n_running > 0 then begin
      let mean_rate = rate_sum.(0) /. float_of_int !n_running in
      let target = ref (-1) in
      lat.(0) <- now;
      for w' = 0 to p - 1 do
        let i = run_task.(w') in
        if i >= 0 && eligible_target w i then
          if est_arr.(w') > lat.(0) && rate_arr.(w') < (threshold *. mean_rate)
          then begin
            lat.(0) <- est_arr.(w');
            target := i
          end
      done;
      if !target >= 0 && nominal_eta w now !target < lat.(0) then
        launch_speculative w now !target
    end
  in
  let dispatch w now =
    if wstate.(w) = w_idle then begin
      let assigned =
        if Pending.is_empty pending then false
        else
          match select_task w with
          | -1 -> false
          | i ->
              Pending.remove pending i;
              execute_copy w now i;
              true
      in
      if not assigned then
        match config.speculation with
        | Off -> ()
        | At_idle -> speculate_at_idle w now
        | Late { threshold } -> speculate_late w now ~threshold
    end
  in
  let handle now e =
    let tag = e land 7 in
    let arg = e asr 3 in
    if tag = tag_free then begin
      let w = arg in
      if wstate.(w) = w_idle then dispatch w now
      else if wstate.(w) = w_busy && run_task.(w) < 0 then begin
        (* freed after a fetch-exhausted copy *)
        wstate.(w) <- w_idle;
        dispatch w now
      end
    end
    else if tag = tag_done then begin
      let w = arg in
      let i = run_task.(w) in
      if i >= 0 && run_finish.(w) = now then begin
        if obs_on then rec_s sh_service (now -. run_start.(w));
        run_task.(w) <- -1;
        wstate.(w) <- w_idle;
        live_copies.(i) <- live_copies.(i) - 1;
        per_worker_tasks.(w) <- per_worker_tasks.(w) + 1;
        busy_until.(w) <- Float.max busy_until.(w) now;
        (if !a_n = !a_cap then begin
           let cap' = 2 * !a_cap in
           let grow_i r = let a' = Array.make cap' 0 in Array.blit !r 0 a' 0 !a_n; r := a' in
           let grow_f r = let a' = Array.make cap' 0. in Array.blit !r 0 a' 0 !a_n; r := a' in
           grow_i a_task;
           grow_i a_worker;
           grow_f a_start;
           grow_f a_fetch_end;
           grow_f a_finish;
           grow_f a_fetched;
           a_cap := cap'
         end);
        let k = !a_n in
        !a_task.(k) <- i;
        !a_worker.(k) <- w;
        !a_start.(k) <- run_start.(w);
        !a_fetch_end.(k) <- run_fetch_end.(w);
        !a_finish.(k) <- now;
        !a_fetched.(k) <- run_volume.(w);
        a_n := k + 1;
        if completion.(i) = infinity then begin
          completion.(i) <- now;
          winner.(i) <- w
        end
        else
          (* lost the duplicate race: the whole copy was wasted *)
          wasted.(0) <- wasted.(0) +. tasks.(i).Task.cost;
        dispatch w now
      end
    end
    else if tag = tag_crash then begin
      let c = crash_arr.(arg) in
      let w = c.Fault.Plan.worker in
      if wstate.(w) <> w_down then begin
        incr crashes;
        Fault.Clock.record clock (Crash { worker = w; time = now });
        let i = run_task.(w) in
        if i >= 0 then begin
          live_copies.(i) <- live_copies.(i) - 1;
          (if run_fetch_end.(w) < now && run_compute.(w) > 0. then begin
             let done_ =
               Fault.Plan.work_between faults ~worker:w ~start:run_fetch_end.(w)
                 ~until:now
             in
             wasted.(0) <-
               wasted.(0)
               +. (Float.min 1. (done_ /. run_compute.(w)) *. tasks.(i).Task.cost)
           end);
          busy_until.(w) <- Float.max busy_until.(w) now;
          enqueue_retry i now
        end;
        run_task.(w) <- -1;
        wstate.(w) <- w_down;
        (* a crash loses the worker's block cache *)
        Intset.reset caches.(w)
      end
    end
    else if tag = tag_recover then begin
      let w = arg in
      if wstate.(w) = w_down then begin
        Fault.Clock.record clock (Recover { worker = w; time = now });
        wstate.(w) <- w_idle;
        dispatch w now
      end
    end
    else begin
      (* tag_retry *)
      let i = arg in
      retry_pending.(i) <- false;
      if completion.(i) = infinity && live_copies.(i) = 0 then begin
        if obs_on then avail.(i) <- now;
        Pending.add pending i;
        let w = ref 0 in
        while !w < p && not (Pending.is_empty pending) do
          if wstate.(!w) = w_idle then dispatch !w now;
          incr w
        done
      end
    end
  in
  Obs.Trace.begin_span "mapreduce.schedule";
  while not (Des.Event_heap.is_empty queue) do
    let now = Des.Event_heap.min_priority queue in
    let e = Des.Event_heap.pop queue in
    incr events_processed;
    if obs_on then begin
      let tag = e land 7 in
      evt_counts.(tag) <- evt_counts.(tag) + 1;
      if !events_processed land heap_sample_mask = 0 then
        Obs.Hist.record_into sh_heap (Des.Event_heap.size queue)
    end;
    handle now e
  done;
  Obs.Trace.end_span "mapreduce.schedule";
  if obs_on then begin
    Obs.Metrics.add m_ev_free evt_counts.(tag_free);
    Obs.Metrics.add m_ev_done evt_counts.(tag_done);
    Obs.Metrics.add m_ev_crash evt_counts.(tag_crash);
    Obs.Metrics.add m_ev_recover evt_counts.(tag_recover);
    Obs.Metrics.add m_ev_retry evt_counts.(tag_retry);
    Obs.Metrics.set_gauge g_heap_hwm
      (float_of_int (Des.Event_heap.high_water queue))
  end;
  let makespan =
    Array.fold_left
      (fun acc c -> if Float.is_finite c then Float.max acc c else acc)
      0. completion
  in
  let unfinished =
    let acc = ref [] in
    for i = n_tasks - 1 downto 0 do
      if completion.(i) = infinity then acc := i :: !acc
    done;
    !acc
  in
  let idle_workers =
    Array.fold_left (fun acc n -> if n = 0 then acc + 1 else acc) 0 per_worker_tasks
  in
  let assignments =
    let acc = ref [] in
    for k = !a_n - 1 downto 0 do
      acc :=
        {
          task = !a_task.(k);
          worker = !a_worker.(k);
          start = !a_start.(k);
          fetch_end = !a_fetch_end.(k);
          finish = !a_finish.(k);
          fetched = !a_fetched.(k);
        }
        :: !acc
    done;
    !acc
  in
  {
    assignments;
    completion;
    winner;
    makespan;
    busy_until;
    communication = total_comm.(0);
    per_worker_comm;
    per_worker_tasks;
    duplicates = !duplicates;
    retries = !retries;
    crashes_survived = !crashes;
    attempts;
    idle_workers;
    unfinished;
    wasted_work = wasted.(0);
    events_processed = !events_processed;
    fault_log = Fault.Clock.events clock;
  }

let imbalance outcome =
  let tmax = ref 0. and tmin = ref infinity and ran = ref 0 in
  Array.iteri
    (fun w t ->
      if outcome.per_worker_tasks.(w) > 0 then begin
        incr ran;
        if t > !tmax then tmax := t;
        if t < !tmin then tmin := t
      end)
    outcome.busy_until;
  if !ran < 2 || !tmin <= 0. then 0. else (!tmax -. !tmin) /. !tmin
