(** Visualization of a map-phase outcome: per-worker fetch/compute
    intervals as a {!Des.Trace}, with utilization figures. *)

val trace : Scheduler.outcome -> Des.Trace.t
(** Resources ["w<i>"]: label [f] for fetch intervals, [x] for compute
    intervals (one pair per executed copy). *)

val gantt : ?width:int -> Scheduler.outcome -> string

val chrome : ?max_events:int -> Scheduler.outcome -> Obs.Json.t
(** The schedule as a Chrome trace-event array (via
    {!Des.Trace.to_chrome}): one thread row per worker, one "X" event
    per fetch/compute interval.  [max_events] bounds the export with
    the bridge's deterministic 1-in-k sampler; the leading
    "trace_stats" metadata event reports recorded / sampled_out /
    emitted counts either way. *)

val write_chrome : ?max_events:int -> Scheduler.outcome -> string -> unit

val utilizations : Platform.Star.t -> Scheduler.outcome -> float array
(** Busy time / makespan per worker (0 when the makespan is 0). *)
