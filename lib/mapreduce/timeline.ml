let trace (outcome : Scheduler.outcome) =
  let t = Des.Trace.create () in
  List.iter
    (fun (a : Scheduler.assignment) ->
      let resource = Printf.sprintf "w%d" a.Scheduler.worker in
      if a.Scheduler.fetch_end > a.Scheduler.start then
        Des.Trace.record t ~resource ~start:a.Scheduler.start ~finish:a.Scheduler.fetch_end
          ~label:"f";
      Des.Trace.record t ~resource ~start:a.Scheduler.fetch_end ~finish:a.Scheduler.finish
        ~label:"x")
    outcome.Scheduler.assignments;
  t

let gantt ?width outcome = Des.Trace.render_gantt ?width (trace outcome)

(* Chrome export of the schedule through the shared [Des.Trace] bridge.
   A million-task outcome holds up to two intervals per executed copy;
   [max_events] bounds the artifact via the bridge's deterministic
   1-in-k sampler, with explicit sampled_out accounting in the emitted
   trace_stats event. *)
let chrome ?max_events outcome = Des.Trace.to_chrome ?max_events (trace outcome)

let write_chrome ?max_events outcome path =
  Des.Trace.write_chrome ?max_events (trace outcome) path

let utilizations star (outcome : Scheduler.outcome) =
  let t = trace outcome in
  let makespan = outcome.Scheduler.makespan in
  Array.init (Platform.Star.size star) (fun w ->
      if makespan <= 0. then 0.
      else Des.Trace.busy_time t ~resource:(Printf.sprintf "w%d" w) /. makespan)
