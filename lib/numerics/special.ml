(* Abramowitz & Stegun 7.1.26. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let a1 = 0.254829592 and a2 = -0.284496736 and a3 = 1.421413741 in
  let a4 = -1.453152027 and a5 = 1.061405429 in
  let poly = ((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1) *. t in
  sign *. (1. -. (poly *. exp (-.x *. x)))

let erfc x = 1. -. erf x

let normal_cdf ?(mu = 0.) ?(sigma = 1.) x =
  0.5 *. (1. +. erf ((x -. mu) /. (sigma *. sqrt 2.)))

(* Acklam's inverse normal CDF. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Special.normal_quantile: p must be in (0,1)";
  let a =
    [| -39.69683028665376; 220.9460984245205; -275.9285104469687; 138.3577518672690;
       -30.66479806614716; 2.506628277459239 |]
  in
  let b =
    [| -54.47609879822406; 161.5858368580409; -155.6989798598866; 66.80131188771972;
       -13.28068155288572 |]
  in
  let c =
    [| -0.007784894002430293; -0.3223964580411365; -2.400758277161838;
       -2.549732539343734; 4.374664141464968; 2.938163982698783 |]
  in
  let d =
    [| 0.007784695709041462; 0.3224671290700398; 2.445134137142996; 3.754408661907416 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
    end
    else begin
      let q = sqrt (-2. *. log (1. -. p)) in
      -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
         /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.))
    end
  in
  (* One Newton refinement against the CDF. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

(* Lanczos, g = 7, n = 9. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028; 771.32342877765313;
     -176.61502916214059; 12.507343278686905; -0.13857109526572012;
     9.9843695780195716e-6; 1.5056327351493116e-7 |]
[@@nldl.allow "S201"] (* read-only coefficient table *)

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: x must be > 0";
  if x < 0.5 then
    (* Reflection. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative";
  log_gamma (float_of_int (n + 1))
