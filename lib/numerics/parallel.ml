(* Thin facade over the persistent domain pool in [Exec.Pool]: same
   signatures as the original spawn-per-call helpers, but the worker
   domains are spawned once and reused across every call. *)

let default_domains = Exec.Pool.default_domains

let resolve domains =
  match domains with Some d -> max 1 d | None -> default_domains ()

let parallel_for ?domains n body =
  let domains = resolve domains in
  if domains <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      body i
    done
  else
    Exec.Pool.parallel_for ~workers:domains
      (Exec.Pool.get_global ~at_least:domains ())
      n body

let parallel_map_array ?domains f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    parallel_for ?domains (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end

let parallel_reduce ?domains ?chunk ~init ~map ~combine n =
  let domains = resolve domains in
  if domains <= 1 then
    Exec.Pool.parallel_reduce ~workers:1 ?chunk
      (Exec.Pool.get_global ())
      ~init ~map ~combine n
  else
    Exec.Pool.parallel_reduce ~workers:domains ?chunk
      (Exec.Pool.get_global ~at_least:domains ())
      ~init ~map ~combine n

let warm_up ?domains () =
  let domains = resolve domains in
  if domains > 1 then ignore (Exec.Pool.get_global ~at_least:domains ())
