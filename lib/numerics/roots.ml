(* Exact [f x = 0.] tests are the textbook early-exit for bracketing
   root finders: landing on the root is rare but must terminate the
   bracket immediately, and no epsilon is meaningful before scaling by
   the (unknown) slope of [f]. *)
[@@@nldl.allow "H302"]

exception No_bracket

let default_tol = 1e-12

let bisect ?(tol = default_tol) ?(max_iter = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then raise No_bracket
  else
    let rec loop lo hi flo i =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo <= tol *. (1. +. Float.abs mid) || i >= max_iter then mid
      else
        let fmid = f mid in
        if fmid = 0. then mid
        else if flo *. fmid < 0. then loop lo mid flo (i + 1)
        else loop mid hi fmid (i + 1)
    in
    loop lo hi flo 0

let brent ?(tol = default_tol) ?(max_iter = 200) ~f ~lo ~hi () =
  let a = ref lo and b = ref hi in
  let fa = ref (f !a) and fb = ref (f !b) in
  if !fa = 0. then !a
  else if !fb = 0. then !b
  else if !fa *. !fb > 0. then raise No_bracket
  else begin
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref !b in
    (try
       for _ = 1 to max_iter do
         if !fb *. !fc > 0. then begin
           c := !a; fc := !fa; d := !b -. !a; e := !d
         end;
         if Float.abs !fc < Float.abs !fb then begin
           a := !b; b := !c; c := !a;
           fa := !fb; fb := !fc; fc := !fa
         end;
         let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
         let xm = 0.5 *. (!c -. !b) in
         if Float.abs xm <= tol1 || !fb = 0. then begin
           result := !b;
           raise Exit
         end;
         if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
           let s = !fb /. !fa in
           let p, q =
             if !a = !c then
               let p = 2. *. xm *. s in
               let q = 1. -. s in
               (p, q)
             else
               let q0 = !fa /. !fc and r = !fb /. !fc in
               let p = s *. ((2. *. xm *. q0 *. (q0 -. r)) -. ((!b -. !a) *. (r -. 1.))) in
               let q = (q0 -. 1.) *. (r -. 1.) *. (s -. 1.) in
               (p, q)
           in
           let p, q = if p > 0. then (p, -.q) else (-.p, q) in
           let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
           let min2 = Float.abs (!e *. q) in
           if 2. *. p < Float.min min1 min2 then begin
             e := !d;
             d := p /. q
           end
           else begin
             d := xm;
             e := !d
           end
         end
         else begin
           d := xm;
           e := !d
         end;
         a := !b;
         fa := !fb;
         if Float.abs !d > tol1 then b := !b +. !d
         else b := !b +. (if xm >= 0. then tol1 else -.tol1);
         fb := f !b
       done;
       result := !b
     with Exit -> ());
    !result
  end

let newton ?(tol = default_tol) ?(max_iter = 100) ~f ~df ~x0 () =
  let rec loop x i =
    if i >= max_iter then None
    else
      let fx = f x in
      let dfx = df x in
      if dfx = 0. || not (Float.is_finite dfx) then None
      else
        let x' = x -. (fx /. dfx) in
        if not (Float.is_finite x') then None
        else if Float.abs (x' -. x) <= tol *. (1. +. Float.abs x') then Some x'
        else loop x' (i + 1)
  in
  loop x0 0

let expand_bracket ~f ~lo ~hi ?(grow = 2.) ?(max_iter = 64) () =
  let flo = f lo in
  let rec loop hi i =
    if i >= max_iter then None
    else
      let fhi = f hi in
      if flo *. fhi <= 0. then Some (lo, hi) else loop (lo +. ((hi -. lo) *. grow)) (i + 1)
  in
  loop hi 0
