(** Small multicore helpers over OCaml 5 domains.

    The simulators in this repository model parallel platforms; these
    helpers let the heavy kernels (local sorts, matrix products, trial
    sweeps) also *run* in parallel on the host machine.  Since the
    execution-layer refactor they delegate to the persistent domain pool
    in {!Exec.Pool}: workers are spawned once and parked between calls
    instead of paying a [Domain.spawn]/[Domain.join] round-trip per
    call, and indices are handed out in dynamically claimed chunks so
    uneven bodies load-balance. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val parallel_for : ?domains:int -> int -> (int -> unit) -> unit
(** [parallel_for n body] runs [body i] for [i in 0..n-1] on up to
    [domains] domains of the shared pool (the calling domain works
    too).  [body] must only write to disjoint state per index.  Falls
    back to a sequential loop when [domains <= 1] or [n <= 1].  An
    exception raised by a body cancels the remaining chunks and is
    re-raised in the caller. *)

val parallel_map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Element-wise map with the same partitioning contract. *)

val parallel_reduce :
  ?domains:int ->
  ?chunk:int ->
  init:'a ->
  map:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  int ->
  'a
(** [parallel_reduce ~init ~map ~combine n] is
    [fold_left combine init (map 0 .. map (n-1))] for associative
    [combine].  Chunk geometry depends only on [n] (and [?chunk]), so
    the result — including floating-point rounding — is identical at
    any domain count. *)

val warm_up : ?domains:int -> unit -> unit
(** Ensure the shared pool exists with at least [domains] workers, so a
    subsequent timed call does not pay the one-off spawn cost. *)
