module Star = Platform.Star
module Processor = Platform.Processor

type timing = { makespan : float; comm_makespan : float; per_worker : float array }

let of_finish_times ~comm per_worker =
  {
    makespan = Array.fold_left Float.max 0. per_worker;
    comm_makespan = Array.fold_left Float.max 0. comm;
    per_worker;
  }

let het star ~n =
  if n <= 0. then invalid_arg "Timed.het: n must be > 0";
  let layout = Column_partition.peri_sum_layout ~areas:(Star.relative_speeds star) in
  let workers = Star.workers star in
  let comm = Array.make (Star.size star) 0. in
  let per_worker =
    Array.mapi
      (fun i rect ->
        let proc = workers.(i) in
        let data = n *. Rect.half_perimeter rect in
        let cells = n *. n *. Rect.area rect in
        let fetch = Processor.transfer_time proc ~data in
        comm.(i) <- fetch;
        fetch +. Processor.compute_time proc ~work:cells)
      layout.Layout.rects
  in
  of_finish_times ~comm per_worker

let hom ?(k = 1) star ~n =
  if n <= 0. then invalid_arg "Timed.hom: n must be > 0";
  let p = Star.size star in
  let workers = Star.workers star in
  let blocks = Block_hom.block_count star ~k in
  let x = Star.relative_speeds star in
  let side = sqrt x.(0) *. n /. float_of_int k in
  let block_data = 2. *. side in
  let block_work = side *. side in
  let per_worker = Array.make p 0. in
  let comm = Array.make p 0. in
  (* Demand-driven with the fetch folded into each block's service
     time: the worker requests, receives, computes, requests again. *)
  let queue = Des.Event_heap.create ~initial_capacity:p () in
  for i = 0 to p - 1 do
    Des.Event_heap.push queue ~priority:0. i
  done;
  for _ = 1 to blocks do
    let now = Des.Event_heap.min_priority queue in
    let i = Des.Event_heap.pop queue in
    let proc = workers.(i) in
    let fetch = Processor.transfer_time proc ~data:block_data in
    let finish = now +. fetch +. Processor.compute_time proc ~work:block_work in
    comm.(i) <- comm.(i) +. fetch;
    per_worker.(i) <- finish;
    Des.Event_heap.push queue ~priority:finish i
  done;
  of_finish_times ~comm per_worker

let hom_balanced ?target_imbalance star ~n =
  let result = Block_hom.commhom_over_k ?target_imbalance star ~n in
  hom ~k:result.Block_hom.k star ~n

let het_shared_backbone star ~n ~backbone =
  if n <= 0. then invalid_arg "Timed.het_shared_backbone: n must be > 0";
  if backbone <= 0. then invalid_arg "Timed.het_shared_backbone: backbone must be > 0";
  let layout = Column_partition.peri_sum_layout ~areas:(Star.relative_speeds star) in
  let workers = Star.workers star in
  let p = Star.size star in
  (* Link 0 is the backbone; link i+1 is worker i's private link. *)
  let links =
    Array.init (p + 1) (fun l ->
        if l = 0 then { Des.Fluid.capacity = backbone }
        else { Des.Fluid.capacity = workers.(l - 1).Processor.bandwidth })
  in
  let flows =
    Array.to_list
      (Array.mapi
         (fun i rect ->
           Des.Fluid.make_flow ~id:i
             ~size:(n *. Rect.half_perimeter rect)
             ~links:[ 0; i + 1 ] ())
         layout.Layout.rects)
  in
  let completions = Des.Fluid.run ~links ~flows in
  let fetch_end = Array.make p 0. in
  List.iter
    (fun c -> fetch_end.(c.Des.Fluid.flow) <- c.Des.Fluid.finish)
    completions;
  let per_worker =
    Array.mapi
      (fun i rect ->
        let cells = n *. n *. Rect.area rect in
        fetch_end.(i) +. Processor.compute_time workers.(i) ~work:cells)
      layout.Layout.rects
  in
  of_finish_times ~comm:fetch_end per_worker

let compute_bound star ~n = n *. n /. Star.total_speed star
