module Star = Platform.Star
module Processor = Platform.Processor
module Kahan = Numerics.Kahan

let src = Logs.Src.create "nldl.partition" ~doc:"Data-distribution strategies"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  k : int;
  blocks : int;
  block_side : float;
  owners : int array;
  per_worker : int array;
  finish_times : float array;
  communication : float;
  imbalance : float;
  makespan : float;
}

let block_count star ~k =
  let x = Star.relative_speeds star in
  let kf = float_of_int k in
  max 1 (int_of_float (Float.round (kf *. kf /. x.(0))))

let demand_driven star ~n ~k =
  if n <= 0. then invalid_arg "Block_hom.demand_driven: n must be > 0";
  if k <= 0 then invalid_arg "Block_hom.demand_driven: k must be > 0";
  let p = Star.size star in
  let workers = Star.workers star in
  let x = Star.relative_speeds star in
  let blocks = block_count star ~k in
  let block_side = sqrt x.(0) *. n /. float_of_int k in
  let block_work = block_side *. block_side in
  let owners = Array.make blocks 0 in
  let per_worker = Array.make p 0 in
  let finish_times = Array.make p 0. in
  (* Demand-driven = each worker requests a block the instant it becomes
     idle; ties at t = 0 resolved by worker index (FIFO). *)
  let queue = Des.Event_heap.create ~initial_capacity:p () in
  for i = 0 to p - 1 do
    Des.Event_heap.push queue ~priority:0. i
  done;
  for b = 0 to blocks - 1 do
    let now = Des.Event_heap.min_priority queue in
    let i = Des.Event_heap.pop queue in
    let finish = now +. Processor.compute_time workers.(i) ~work:block_work in
    owners.(b) <- i;
    per_worker.(i) <- per_worker.(i) + 1;
    finish_times.(i) <- finish;
    Des.Event_heap.push queue ~priority:finish i
  done;
  let tmax = Array.fold_left Float.max 0. finish_times in
  let tmin = Array.fold_left Float.min infinity finish_times in
  let imbalance = if tmin > 0. then (tmax -. tmin) /. tmin else infinity in
  {
    k;
    blocks;
    block_side;
    owners;
    per_worker;
    finish_times;
    communication = float_of_int blocks *. 2. *. block_side;
    imbalance;
    makespan = tmax;
  }

let commhom star ~n = demand_driven star ~n ~k:1

let commhom_over_k ?(target_imbalance = 0.01) ?(max_k = 128) star ~n =
  let rec search k =
    let result = demand_driven star ~n ~k in
    Log.debug (fun m ->
        m "Commhom/k search: k=%d blocks=%d imbalance=%.4g" k result.blocks
          result.imbalance);
    if result.imbalance <= target_imbalance || k >= max_k then result else search (k + 1)
  in
  search 1

let ideal_ratio star =
  let x = Star.relative_speeds star in
  1. /. (sqrt x.(0) *. Kahan.sum_by sqrt x)
