(** Execution traces: per-resource busy intervals recorded during a
    simulation, with a text Gantt rendering for the examples. *)

type interval = { start : float; finish : float; label : string }

type t

val create : unit -> t

val record : t -> resource:string -> start:float -> finish:float -> label:string -> unit
(** Raises [Invalid_argument] when [finish < start]. *)

val resources : t -> string list
(** In first-recorded order. *)

val intervals : t -> resource:string -> interval list
(** In recording order; empty for unknown resources. *)

val busy_time : t -> resource:string -> float
val makespan : t -> float
(** Largest [finish] over all intervals; 0 when empty. *)

val utilization : t -> resource:string -> float
(** busy time / makespan; 0 when the makespan is 0. *)

val render_gantt : ?width:int -> t -> string
(** A fixed-width text Gantt chart, one row per resource. *)

val to_chrome : ?max_events:int -> t -> Obs.Json.t
(** Chrome trace-event array for Perfetto / about://tracing: one thread
    row per resource, one complete ("X") event per interval.  One
    simulated time unit renders as one second.

    When [max_events] is given and the trace holds more intervals, a
    deterministic 1-in-k systematic sample is emitted instead
    (byte-identical across runs for identical traces).  Every export
    starts with a "trace_stats" metadata event carrying explicit
    recorded / sampled_out / emitted counts. *)

val write_chrome : ?max_events:int -> t -> string -> unit
(** [write_chrome t path] writes {!to_chrome} to [path]. *)
