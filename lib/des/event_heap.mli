(** Unboxed discrete-event heap — the million-event replacement for
    {!Event_queue}'s hot path.

    An implicit binary min-heap in structure-of-arrays layout:
    priorities in a flat [float array] (unboxed, single-load access),
    insertion seq numbers and int-encoded payloads in flat
    [int array]s.  Same ordering contract as [Event_queue] —
    minimum priority first, FIFO among equal priorities — with zero
    per-operation allocation once capacity is reached (growth doubles
    all buffers, amortized O(1) words per push).

    Payloads are ints: consumers either encode the whole event in the
    integer (tag in low bits, index in high bits — [Mapreduce.Scheduler])
    or use it as a slot into a side table ([Engine]'s handler slab).

    [push], [pop], [min_priority] and [is_empty] are [@inline always]
    in the implementation, so float priorities cross the module
    boundary unboxed (the Closure middle-end inlines through the .cmx
    even without flambda); the Gc-counter tests in [test_des.ml] prove
    0 minor words per push+pop. *)

type t

val create : ?initial_capacity:int -> unit -> t

val size : t -> int

val capacity : t -> int
(** Current buffer length (for the growth tests). *)

val high_water : t -> int
(** Maximum {!size} ever reached since creation or {!clear} — tracked
    unconditionally (one predicted branch per push) so instrumented
    consumers can report peak queue depth without sampling. *)

val is_empty : t -> bool

val min_priority : t -> float
(** Priority of the next event to pop.  Undefined (garbage, not an
    error) on an empty heap — check {!is_empty} first. *)

val push : t -> priority:float -> int -> unit
(** Raises [Invalid_argument] on a NaN priority. *)

val pop : t -> int
(** Removes and returns the minimum-priority payload; its priority is
    [min_priority] read before the call.  Raises [Invalid_argument] on
    an empty heap. *)

val clear : t -> unit
(** Empties the heap and resets the FIFO seq counter. *)

val exercise : t -> rounds:int -> batch:int -> unit
(** [rounds] iterations of [batch] pushes (scrambled priorities)
    followed by [batch] pops — the driver for the Gc-counter
    zero-allocation proof and the events/sec benchmark.  Lives inside
    the module so the measurement does not depend on cross-module
    inlining, which dev-profile builds disable via [-opaque] (those
    builds box one float per out-of-module [push] call; release builds
    and all inlined call sites pay zero). *)
