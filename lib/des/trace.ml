type interval = { start : float; finish : float; label : string }

type t = {
  table : (string, interval list ref) Hashtbl.t;
  mutable order : string list; (* reverse first-recorded order *)
  mutable makespan : float;
}

let create () = { table = Hashtbl.create 16; order = []; makespan = 0. }

let record t ~resource ~start ~finish ~label =
  if finish < start then invalid_arg "Trace.record: finish < start";
  let cell =
    match Hashtbl.find_opt t.table resource with
    | Some cell -> cell
    | None ->
        let cell = ref [] in
        Hashtbl.add t.table resource cell;
        t.order <- resource :: t.order;
        cell
  in
  cell := { start; finish; label } :: !cell;
  if finish > t.makespan then t.makespan <- finish

let resources t = List.rev t.order

let intervals t ~resource =
  match Hashtbl.find_opt t.table resource with
  | None -> []
  | Some cell -> List.rev !cell

let busy_time t ~resource =
  List.fold_left (fun acc iv -> acc +. (iv.finish -. iv.start)) 0. (intervals t ~resource)

let makespan t = t.makespan

let utilization t ~resource =
  if t.makespan <= 0. then 0. else busy_time t ~resource /. t.makespan

let render_gantt ?(width = 72) t =
  let horizon = if t.makespan > 0. then t.makespan else 1. in
  let buf = Buffer.create 1024 in
  let name_width =
    List.fold_left (fun acc r -> max acc (String.length r)) 0 (resources t)
  in
  let column time = int_of_float (time /. horizon *. float_of_int (width - 1)) in
  let row resource =
    let cells = Bytes.make width '.' in
    let paint iv =
      let mark = if String.length iv.label > 0 then iv.label.[0] else '#' in
      for col = column iv.start to column iv.finish do
        Bytes.set cells col mark
      done
    in
    List.iter paint (intervals t ~resource);
    Buffer.add_string buf (Printf.sprintf "%-*s |%s|\n" name_width resource (Bytes.to_string cells))
  in
  List.iter row (resources t);
  Buffer.add_string buf
    (Printf.sprintf "%-*s  0%*s%.4g\n" name_width "t" (width - 1) "" t.makespan);
  Buffer.contents buf

(* Render through the same Chrome trace-event builders as the runtime
   tracer, one Perfetto thread row per resource.  Simulated time is
   unitless; one simulated time unit maps to one second (1e6 µs) so
   short schedules stay readable in the viewer.

   [max_events] bounds the export: when the trace holds more intervals,
   a deterministic 1-in-k systematic sample is emitted instead (the
   stream order — resources in first-recorded order, intervals in
   recording order — is a pure function of the simulation, so the
   sampled artifact is byte-identical across runs).  Every export
   carries a "trace_stats" metadata event with explicit recorded /
   sampled_out / emitted counts, so truncation is never silent. *)
let to_chrome ?max_events t =
  let tids = List.mapi (fun i r -> (r, i + 1)) (resources t) in
  let n_intervals =
    List.fold_left (fun acc (r, _) -> acc + List.length (intervals t ~resource:r)) 0 tids
  in
  let k =
    match max_events with
    | Some budget when n_intervals > budget -> (n_intervals + budget - 1) / max 1 budget
    | _ -> 1
  in
  let take = Obs.Sample.every k in
  let body =
    List.concat_map
      (fun (r, tid) ->
        List.filter_map
          (fun iv ->
            if Obs.Sample.keep take then
              let name = if iv.label = "" then r else iv.label in
              Some
                (Obs.Export.complete ~name ~tid ~ts_us:(iv.start *. 1e6)
                   ~dur_us:((iv.finish -. iv.start) *. 1e6))
            else None)
          (intervals t ~resource:r))
      tids
  in
  let stats =
    Obs.Export.sampling_stats ~recorded:n_intervals ~dropped:0
      ~sampled_out:(n_intervals - Obs.Sample.kept take)
      ~emitted:(List.length body)
      [ ("sample_every", Obs.Json.Int k) ]
  in
  let metadata =
    Obs.Export.process_name "nldl.sim"
    :: List.map (fun (r, tid) -> Obs.Export.thread_name ~tid r) tids
  in
  Obs.Json.List ((stats :: metadata) @ body)

let write_chrome ?max_events t path =
  Obs.Json.write_file path (to_chrome ?max_events t)
