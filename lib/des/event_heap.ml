(* Implicit binary min-heap in structure-of-arrays layout: the DES hot
   path.

   [Event_queue] pays a 4-word boxed [entry] record per push plus an
   [Some (priority, payload)] pair per pop — ~393 ns and ~10 minor words
   per push+pop at 10k events, which caps every consumer (the MapReduce
   scheduler, the engine, the demand-driven partitioners) far below the
   10^5-worker x 10^6-task scale the paper sweeps need.  This module
   keeps the same (priority, FIFO-by-seq) ordering contract with zero
   per-operation allocation:

   - priorities live in a flat [float array]: OCaml stores those
     unboxed, and [Array.unsafe_get] on a statically-known float array
     is a single direct float64 load (a Bigarray access would pay an
     extra indirection through the data pointer on every sift step —
     measurably slower in the sift loops);
   - the insertion seq number (FIFO tie-break) and the int-encoded
     payload of slot [k] sit side by side at [meta.(2k)] and
     [meta.(2k+1)]: both are immediate ints, and interleaving them
     means each sift step touches two adjacent words (one cache line)
     instead of two separate arrays;
   - [push]/[pop] are [@inline always] wrappers so the float [priority]
     argument stays unboxed at every call site (a plain cross-module
     call would box it — the same reasoning as Fbuf's externals), while
     the iterative sift loops stay out of line (they move floats only
     between buffer slots, never through a call boundary);
   - growth doubles both buffers at once, so allocation is amortized
     O(1) per push and exactly zero once capacity is reached.

   Payloads are ints by design: consumers encode their event in the
   integer (tag in the low bits, index in the high bits — see
   [Mapreduce.Scheduler]) or use it as a slot index into a side table
   (see [Engine]'s handler slab). *)

[@@@nldl.unsafe_zone
  "sift loops and push/pop access slots [0, size) of the prio buffer and \
   [0, 2*size) of the meta buffer; [size] is bounds-checked against \
   capacity in push (grow) and against 0 in pop before any unsafe access \
   (U-audit 2026-08)"]

type t = {
  mutable prio : float array;  (* heap slot -> priority *)
  mutable meta : int array;  (* slot k -> seq at 2k, payload at 2k+1 *)
  mutable size : int;
  mutable next_seq : int;
  mutable hwm : int;  (* max [size] ever reached; one predicted branch per push *)
}

let create ?(initial_capacity = 16) () =
  let cap = max 1 initial_capacity in
  {
    prio = Array.make cap 0.;
    meta = Array.make (2 * cap) 0;
    size = 0;
    next_seq = 0;
    hwm = 0;
  }

let size t = t.size
let capacity t = Array.length t.prio
let high_water t = t.hwm

let[@inline always] is_empty t = t.size = 0

(* Undefined when empty (returns whatever is in slot 0); callers check
   [is_empty] first.  Inlined so the read is a direct unboxed load. *)
let[@inline always] min_priority t = Array.unsafe_get t.prio 0

let clear t =
  t.size <- 0;
  t.next_seq <- 0;
  t.hwm <- 0

(* (prio, seq) lexicographic order, split into two comparisons so the
   common unequal-priority case never touches the seq words. *)

(* [i0 < t.size] is the callers' invariant: [push] grows first and
   passes the slot it just filled; [relocate_last] passes a hole index
   the walk kept inside the heap. *)
let[@nldl.bounds_validated "Event_heap.push"] sift_up t i0 =
  let prio = t.prio and meta = t.meta in
  let p = Array.unsafe_get prio i0 in
  let s = Array.unsafe_get meta (2 * i0) in
  let y = Array.unsafe_get meta ((2 * i0) + 1) in
  let i = ref i0 in
  let live = ref true in
  while !live && !i > 0 do
    let parent = (!i - 1) lsr 1 in
    let pp = Array.unsafe_get prio parent in
    if p < pp || (p = pp && s < Array.unsafe_get meta (2 * parent)) then begin
      Array.unsafe_set prio !i pp;
      Array.unsafe_set meta (2 * !i) (Array.unsafe_get meta (2 * parent));
      Array.unsafe_set meta ((2 * !i) + 1) (Array.unsafe_get meta ((2 * parent) + 1));
      i := parent
    end
    else live := false
  done;
  Array.unsafe_set prio !i p;
  Array.unsafe_set meta (2 * !i) s;
  Array.unsafe_set meta ((2 * !i) + 1) y

(* Floyd's bottom-up delete-min: the hole left by the popped root walks
   to a leaf along the min-child path with no comparison against the
   element being relocated (the old last slot, which is large and would
   sink near a leaf anyway), then that element drops into the hole and
   [sift_up] repairs the rare overshoot.  One float compare and one
   branch per level cheaper than the classic sift-down.  The pop order
   is unaffected: every delete-min returns the global minimum of a
   unique-(prio, seq) key set, whatever the internal arrangement. *)
let[@nldl.bounds_validated "Event_heap.pop"] sift_hole_down t =
  let prio = t.prio and meta = t.meta in
  let n = t.size in
  let i = ref 0 in
  let l = ref 1 in
  (* fast path: both children exist; the move reuses the child priority
     already in a register instead of re-loading it *)
  while !l + 1 < n do
    let l0 = !l in
    let r = l0 + 1 in
    let pl = Array.unsafe_get prio l0 and pr = Array.unsafe_get prio r in
    let hole = !i in
    if pr < pl
       || (pr = pl && Array.unsafe_get meta (2 * r) < Array.unsafe_get meta (2 * l0))
    then begin
      Array.unsafe_set prio hole pr;
      Array.unsafe_set meta (2 * hole) (Array.unsafe_get meta (2 * r));
      Array.unsafe_set meta ((2 * hole) + 1) (Array.unsafe_get meta ((2 * r) + 1));
      i := r;
      l := (2 * r) + 1
    end
    else begin
      Array.unsafe_set prio hole pl;
      Array.unsafe_set meta (2 * hole) (Array.unsafe_get meta (2 * l0));
      Array.unsafe_set meta ((2 * hole) + 1) (Array.unsafe_get meta ((2 * l0) + 1));
      i := l0;
      l := (2 * l0) + 1
    end
  done;
  (if !l < n then begin
     (* frontier slot with a single (left) child *)
     let l0 = !l in
     let hole = !i in
     Array.unsafe_set prio hole (Array.unsafe_get prio l0);
     Array.unsafe_set meta (2 * hole) (Array.unsafe_get meta (2 * l0));
     Array.unsafe_set meta ((2 * hole) + 1) (Array.unsafe_get meta ((2 * l0) + 1));
     i := l0
   end);
  !i

let grow t =
  let cap = Array.length t.prio in
  let cap' = 2 * cap in
  let prio' = Array.make cap' 0. in
  Array.blit t.prio 0 prio' 0 t.size;
  let meta' = Array.make (2 * cap') 0 in
  Array.blit t.meta 0 meta' 0 (2 * t.size);
  t.prio <- prio';
  t.meta <- meta'

let[@inline always] push t ~priority payload =
  if priority <> priority (* NaN: would corrupt the heap order *) then
    invalid_arg "Event_heap.push: NaN priority";
  if t.size = Array.length t.prio then grow t;
  let i = t.size in
  Array.unsafe_set t.prio i priority;
  Array.unsafe_set t.meta (2 * i) t.next_seq;
  Array.unsafe_set t.meta ((2 * i) + 1) payload;
  t.size <- i + 1;
  if i + 1 > t.hwm then t.hwm <- i + 1;
  t.next_seq <- t.next_seq + 1;
  sift_up t i

(* Out-of-line tail of [pop]: walk the hole down, drop the old last
   element (slot [n], already outside [t.size]) into it, and call
   [sift_up] only when the single inlined parent check says the element
   overshot — which is rare, since it came from a leaf. *)
let[@nldl.bounds_validated "Event_heap.pop"] relocate_last t n =
  let hole = sift_hole_down t in
  let prio = t.prio and meta = t.meta in
  let p = Array.unsafe_get prio n in
  let s = Array.unsafe_get meta (2 * n) in
  Array.unsafe_set prio hole p;
  Array.unsafe_set meta (2 * hole) s;
  Array.unsafe_set meta ((2 * hole) + 1) (Array.unsafe_get meta ((2 * n) + 1));
  if hole > 0 then begin
    let parent = (hole - 1) lsr 1 in
    let pp = Array.unsafe_get prio parent in
    if p < pp || (p = pp && s < Array.unsafe_get meta (2 * parent)) then
      sift_up t hole
  end

let[@inline always] pop t =
  if t.size = 0 then invalid_arg "Event_heap.pop: empty heap";
  let top = Array.unsafe_get t.meta 1 in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then relocate_last t n;
  top

(* Intra-module driver for the Gc-counter zero-allocation proof and the
   events/sec bench.  Dev-profile dune passes [-opaque], which disables
   the cross-module inlining that keeps [push]'s float argument unboxed;
   an external measurement loop would therefore observe one boxed float
   per push that release builds (and every inlined call site) do not
   pay.  Driving the loop from inside the module keeps the measurement
   build-profile independent.  [batch] pushes with scrambled priorities,
   then [batch] pops, [rounds] times, on top of whatever the heap
   already holds. *)
let exercise t ~rounds ~batch =
  for r = 0 to rounds - 1 do
    for i = 0 to batch - 1 do
      let x = (r * batch) + i in
      push t ~priority:(float_of_int ((x * 7919) land 0xFFFFF)) x
    done;
    for _ = 1 to batch do
      ignore (pop t)
    done
  done
