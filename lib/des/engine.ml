(* The closure-facing engine, backed by the unboxed [Event_heap].

   Handlers cannot live in the heap itself (its payloads are ints), so
   they sit in a boxed slab: [schedule] claims a slot — reusing one off
   the free stack, or extending the high-water mark — stores the
   closure there, and pushes the slot index as the event payload.
   [step] pops the index, clears the slot back to [noop] (releasing the
   closure to the GC and the slot to the free stack), then runs the
   handler.  Timestamps never round-trip through a boxed field: [now]
   lives in a 1-slot [float array], which OCaml stores unboxed, instead
   of a [mutable now : float] record field, which would allocate a
   fresh box on every event in this mixed int/float record. *)

type t = {
  heap : Event_heap.t;
  mutable handlers : (t -> unit) array;  (* slot -> pending handler, or noop *)
  mutable free : int array;  (* stack of released slots below [hwm] *)
  mutable free_top : int;
  mutable hwm : int;  (* slots [0, hwm) have been claimed at least once *)
  now_cell : float array;  (* 1 slot; unboxed mutable current time *)
}

exception Causality of { now : float; requested : float }

let noop (_ : t) = ()

let create () =
  {
    heap = Event_heap.create ~initial_capacity:16 ();
    handlers = Array.make 16 noop;
    free = Array.make 16 0;
    free_top = 0;
    hwm = 0;
    now_cell = [| 0. |];
  }

let now t = t.now_cell.(0)

let claim_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    if t.hwm = Array.length t.handlers then begin
      let cap' = 2 * Array.length t.handlers in
      let handlers' = Array.make cap' noop in
      Array.blit t.handlers 0 handlers' 0 t.hwm;
      let free' = Array.make cap' 0 in
      Array.blit t.free 0 free' 0 t.free_top;
      t.handlers <- handlers';
      t.free <- free'
    end;
    let slot = t.hwm in
    t.hwm <- slot + 1;
    slot
  end

let schedule t ~time handler =
  let now = t.now_cell.(0) in
  if time < now then raise (Causality { now; requested = time });
  let slot = claim_slot t in
  t.handlers.(slot) <- handler;
  Event_heap.push t.heap ~priority:time slot

let schedule_after t ~delay handler =
  if delay < 0. then
    raise (Causality { now = t.now_cell.(0); requested = t.now_cell.(0) +. delay });
  schedule t ~time:(t.now_cell.(0) +. delay) handler

let pending t = Event_heap.size t.heap

type cancel = unit -> unit

let every t ~period ?start handler =
  if period <= 0. then
    raise (Causality { now = t.now_cell.(0); requested = t.now_cell.(0) +. period });
  let cancelled = ref false in
  let rec tick engine =
    if not !cancelled then begin
      handler engine;
      if not !cancelled then schedule_after engine ~delay:period tick
    end
  in
  let first = match start with Some s -> s | None -> t.now_cell.(0) +. period in
  schedule t ~time:first tick;
  fun () -> cancelled := true

let step t =
  if Event_heap.is_empty t.heap then false
  else begin
    let time = Event_heap.min_priority t.heap in
    let slot = Event_heap.pop t.heap in
    let handler = t.handlers.(slot) in
    t.handlers.(slot) <- noop;
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1;
    t.now_cell.(0) <- time;
    handler t;
    true
  end

(* Instrumentation for [run]: registered once, recorded only when the
   obs layer is enabled.  The gate is hoisted to one boolean read per
   [run] call, and the pending-depth histogram is sampled 1-in-64
   steps, so the disabled loop is byte-for-byte the old one and the
   enabled loop pays a few domain-local stores per sample. *)
let m_events = Obs.Metrics.counter "des.events"
let g_heap_hwm = Obs.Metrics.gauge "des.heap_hwm"
let h_pending = Obs.Hist.create "des.pending_depth"

let depth_sample_mask = 63

let run ?until t =
  let obs_on = Obs.Hist.enabled () || Obs.Metrics.enabled () in
  let steps = ref 0 in
  let pending_shard = Obs.Hist.shard h_pending in
  (match until with
  | None ->
      while step t do
        incr steps;
        if obs_on && !steps land depth_sample_mask = 0 then
          Obs.Hist.record_into pending_shard (Event_heap.size t.heap)
      done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        if Event_heap.is_empty t.heap || Event_heap.min_priority t.heap > horizon
        then continue := false
        else begin
          ignore (step t);
          incr steps;
          if obs_on && !steps land depth_sample_mask = 0 then
            Obs.Hist.record_into pending_shard (Event_heap.size t.heap)
        end
      done);
  if obs_on then begin
    Obs.Metrics.add m_events !steps;
    Obs.Metrics.set_gauge g_heap_hwm (float_of_int (Event_heap.high_water t.heap))
  end
