type result = {
  splitters : float array;
  bucket_sizes : int array;
  sorted : float array;
}

let sort keys ~p =
  if p < 1 then invalid_arg "Psrs.sort: p must be >= 1";
  let n = Array.length keys in
  if n = 0 then { splitters = [||]; bucket_sizes = Array.make p 0; sorted = [||] }
  else begin
    (* Local phase: p contiguous chunks, each sorted. *)
    Obs.Trace.begin_span "psrs.local_sort";
    let chunk_sizes = Numerics.Apportion.largest_remainder ~weights:(Array.make p 1.) ~total:n in
    let chunks =
      let start = ref 0 in
      Array.map
        (fun size ->
          let chunk = Array.sub keys !start size in
          start := !start + size;
          Array.sort Float.compare chunk;
          chunk)
        chunk_sizes
    in
    (* Regular samples: p from each non-empty chunk, written into a
       preallocated p*p array (chunks are only empty when n < p, so [m]
       tracks how much of it is live). *)
    let samples = Array.make (p * p) 0. in
    let m = ref 0 in
    Array.iter
      (fun chunk ->
        let size = Array.length chunk in
        if size > 0 then
          for j = 0 to p - 1 do
            samples.(!m) <- chunk.(j * size / p);
            incr m
          done)
      chunks;
    let m = !m in
    Kernels.Seg_sort.sort_floats samples ~lo:0 ~len:m;
    let splitters =
      if p = 1 then [||]
      else
        Array.init (p - 1) (fun j ->
            let rank = (j + 1) * m / p in
            samples.(min rank (m - 1)))
    in
    Obs.Trace.end_span "psrs.local_sort";
    (* Exchange phase: every (sorted) chunk is split by the splitters;
       bucket b collects its slice of every chunk, then merges. *)
    Obs.Trace.begin_span "psrs.exchange";
    let buckets = Array.make p [] in
    Array.iter
      (fun chunk ->
        let start = ref 0 in
        for b = 0 to p - 1 do
          let finish =
            if b = p - 1 then Array.length chunk
            else begin
              (* First index with chunk.(i) >= splitters.(b). *)
              let rec search lo hi =
                if lo >= hi then lo
                else
                  let mid = (lo + hi) / 2 in
                  if chunk.(mid) < splitters.(b) then search (mid + 1) hi else search lo mid
              in
              search !start (Array.length chunk)
            end
          in
          buckets.(b) <- Array.sub chunk !start (finish - !start) :: buckets.(b);
          start := finish
        done)
      chunks;
    Obs.Trace.end_span "psrs.exchange";
    (* Each bucket's pieces are already sorted: k-way merge them. *)
    Obs.Trace.begin_span "psrs.merge";
    let merged = Array.map (fun pieces -> Merge.k_way (List.rev pieces)) buckets in
    Obs.Trace.end_span "psrs.merge";
    {
      splitters;
      bucket_sizes = Array.map Array.length merged;
      sorted = Array.concat (Array.to_list merged);
    }
  end

let max_bucket_ratio result =
  let n = Array.fold_left ( + ) 0 result.bucket_sizes in
  let p = Array.length result.bucket_sizes in
  if n = 0 then 0.
  else
    float_of_int (Array.fold_left max 0 result.bucket_sizes)
    /. (float_of_int n /. float_of_int p)
