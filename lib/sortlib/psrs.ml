type result = {
  splitters : float array;
  bucket_sizes : int array;
  sorted : float array;
}

(* Flat-buffer PSRS: the p local chunks live inside one working copy of
   the keys (chunk c is [chunk_off.(c), chunk_off.(c + 1)), offsets
   convention) and are sorted in place; the exchange phase records, per
   chunk, the p + 1 bucket boundaries in one flat [p × (p + 1)] int
   matrix instead of slicing a fresh array per (chunk, bucket); the
   merge phase streams every bucket's p runs straight into the output
   through one reusable merger.  Auxiliary allocation is O(p²) —
   nothing per key — where the array-of-arrays predecessor allocated
   ~100 words per key (chunk copies, per-slice subs, cons cells and a
   boxing priority queue). *)
let sort keys ~p =
  if p < 1 then invalid_arg "Psrs.sort: p must be >= 1";
  let n = Array.length keys in
  if n = 0 then { splitters = [||]; bucket_sizes = Array.make p 0; sorted = [||] }
  else begin
    (* Local phase: p contiguous chunks of one working copy, each sorted
       in place. *)
    Obs.Trace.begin_span "psrs.local_sort";
    let chunk_sizes = Numerics.Apportion.largest_remainder ~weights:(Array.make p 1.) ~total:n in
    let chunk_off = Array.make (p + 1) 0 in
    for c = 0 to p - 1 do
      chunk_off.(c + 1) <- chunk_off.(c) + chunk_sizes.(c)
    done;
    let work = Array.copy keys in
    for c = 0 to p - 1 do
      Kernels.Seg_sort.sort_floats work ~lo:chunk_off.(c) ~len:(chunk_off.(c + 1) - chunk_off.(c))
    done;
    (* Regular samples: p from each non-empty chunk, written into a
       preallocated p*p array (chunks are only empty when n < p, so [m]
       tracks how much of it is live). *)
    let samples = Array.make (p * p) 0. in
    let m = ref 0 in
    for c = 0 to p - 1 do
      let lo = chunk_off.(c) in
      let size = chunk_off.(c + 1) - lo in
      if size > 0 then
        for j = 0 to p - 1 do
          samples.(!m) <- work.(lo + (j * size / p));
          incr m
        done
    done;
    let m = !m in
    Kernels.Seg_sort.sort_floats samples ~lo:0 ~len:m;
    let splitters =
      if p = 1 then [||]
      else
        Array.init (p - 1) (fun j ->
            let rank = (j + 1) * m / p in
            samples.(min rank (m - 1)))
    in
    Obs.Trace.end_span "psrs.local_sort";
    (* Exchange phase: row c of [bounds] holds chunk c's bucket
       boundaries — bounds.((c * stride) + b) is the first absolute
       index in chunk c whose key routes to bucket >= b (binary search
       resumed from the previous boundary, since boundaries are
       monotone in b). *)
    Obs.Trace.begin_span "psrs.exchange";
    let stride = p + 1 in
    let bounds = Array.make (p * stride) 0 in
    for c = 0 to p - 1 do
      let row = c * stride in
      let chi = chunk_off.(c + 1) in
      bounds.(row) <- chunk_off.(c);
      bounds.(row + p) <- chi;
      for b = 1 to p - 1 do
        let target = splitters.(b - 1) in
        let lo = ref bounds.(row + b - 1) and hi = ref chi in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if work.(mid) < target then lo := mid + 1 else hi := mid
        done;
        bounds.(row + b) <- !lo
      done
    done;
    Obs.Trace.end_span "psrs.exchange";
    (* Each bucket's p runs are already sorted: k-way merge them into
       the output, bucket after bucket. *)
    Obs.Trace.begin_span "psrs.merge";
    let sorted = Array.make n 0. in
    let bucket_sizes = Array.make p 0 in
    let mg = Merge.merger ~k:p in
    let out = ref 0 in
    for b = 0 to p - 1 do
      let len =
        Merge.k_way_strided mg ~src:work ~bounds ~runs:p ~stride ~off:b ~dst:sorted ~dst_lo:!out
      in
      bucket_sizes.(b) <- len;
      out := !out + len
    done;
    Obs.Trace.end_span "psrs.merge";
    { splitters; bucket_sizes; sorted }
  end

let max_bucket_ratio result =
  let n = Array.fold_left ( + ) 0 result.bucket_sizes in
  let p = Array.length result.bucket_sizes in
  if n = 0 then 0.
  else
    float_of_int (Array.fold_left max 0 result.bucket_sizes)
    /. (float_of_int n /. float_of_int p)
