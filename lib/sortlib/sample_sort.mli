(** Randomized sample sort (Frazer-McKellar / Blelloch et al.), the
    preprocessing that turns sorting into an (almost) divisible load
    (paper Section 3, Figure 1).

    The three phases:
    + pick [s·p] random keys, sort them, keep every [s]-th as a splitter
      ([p - 1] splitters);
    + route every key to its bucket by binary search among the
      splitters;
    + sort each bucket independently (one bucket per worker).

    With oversampling ratio [s = log² N], the largest bucket is
    [(N/p)(1 + (1/log N)^(1/3))] with probability [1 - O(N^(-1/3))], so
    phase 3 — the only parallel phase — carries asymptotically all the
    [N log N] work. *)

type 'a buckets = {
  splitters : 'a array;  (** [p - 1] sorted splitter keys *)
  contents : 'a array array;  (** [p] buckets, in key order *)
}

val default_oversampling : n:int -> int
(** The paper's [s = (log₂ n)²], at least 1. *)

val choose_splitters :
  ?cmp:('a -> 'a -> int) ->
  Numerics.Rng.t -> 'a array -> p:int -> s:int -> 'a array
(** Phase 1 on equal-speed buckets: sample [s·p] keys uniformly with
    replacement, sort the sample, return the keys of sample ranks
    [s, 2s, …, (p-1)s].  Requires [p >= 1], [s >= 1] and a non-empty
    input. *)

val weighted_splitters :
  ?cmp:('a -> 'a -> int) ->
  Numerics.Rng.t -> 'a array -> weights:float array -> s:int -> 'a array
(** Heterogeneous variant (Section 3.2): bucket [i] should receive a
    fraction [weights.(i)] of the keys (weights need not be normalized),
    so splitter [i] is the sample key of rank
    [round(cum_i · sample_size)]. *)

val choose_splitters_floats : Numerics.Rng.t -> float array -> p:int -> s:int -> float array
(** Monomorphic {!choose_splitters}: same draws and ranks, but the
    sample fill and sort never box a key ([Array.sort Float.compare]
    boxes both sides of every comparison), so phase 1 allocates [O(s·p)]
    instead of [O(s·p·log(s·p))] words. *)

val weighted_splitters_floats :
  Numerics.Rng.t -> float array -> weights:float array -> s:int -> float array
(** Monomorphic {!weighted_splitters}. *)

val bucket_index : ?cmp:('a -> 'a -> int) -> 'a array -> 'a -> int
(** [bucket_index splitters key]: the bucket of [key], by binary search
    — [O(log p)] comparisons (phase 2's [N log p] master cost). *)

val partition_flat :
  ?cmp:('a -> 'a -> int) -> 'a array -> splitters:'a array -> 'a Kernels.Scatter.t
(** Phase 2 on the counting kernel: all keys scattered, stably, into one
    bucket-contiguous array with an offset table as a zero-copy view —
    [O(p)] auxiliary allocation instead of a cons cell per key.  This is
    the hot path; see {!Kernels.Scatter}. *)

val partition : ?cmp:('a -> 'a -> int) -> 'a array -> splitters:'a array -> 'a buckets
(** Phase 2: route all keys.  Compatibility wrapper over
    {!partition_flat} that copies each bucket out into its own array;
    bucket contents are in input order (stable), as before. *)

val sort :
  ?cmp:('a -> 'a -> int) ->
  ?s:int -> Numerics.Rng.t -> 'a array -> p:int -> 'a array
(** The full pipeline (phases 1-3 run sequentially); returns a sorted
    copy.  [s] defaults to {!default_oversampling}. *)

val max_bucket_ratio : 'a buckets -> float
(** [MaxSize / (N/p)]: the concentration statistic of Theorem B.4. *)

val theoretical_envelope : n:int -> float
(** [1 + (1/ln n)^(1/3)], the w.h.p. bound on {!max_bucket_ratio} for
    [s = log² n]. *)
