(** Sample sort executed on real cores (OCaml 5 domains): the Section 3
    pipeline with phase 3's local sorts — the divisible part — actually
    running in parallel.  The speedup measured by the benchmark harness
    is the practical counterpart of the paper's claim that sorting is
    almost divisible. *)

val sort :
  ?domains:int -> ?s:int -> Numerics.Rng.t -> float array -> p:int -> float array
(** Same contract as {!Sample_sort.sort} specialized to floats, with
    the per-bucket sorts dispatched over [domains] (default
    [Domain.recommended_domain_count]).  Deterministic: the domain count
    affects timing only, never the output. *)

val speedup :
  ?domains:int -> ?trials:int -> Numerics.Rng.t -> n:int -> p:int -> float * float * float
(** Measure [(sequential seconds, parallel seconds, speedup)] on a
    fresh random array of size [n] — used by the bench harness.  Times
    come from the monotonic clock; the shared domain pool is warmed up
    and one untimed run of each variant precedes measurement, then
    [trials] (default 3, at least 1) sequential/parallel pairs are timed
    {e interleaved} and the median of each side is reported — so neither
    variant is systematically charged cold caches or load drift. *)
