module Star = Platform.Star
module Processor = Platform.Processor

type result = {
  bucket_sizes : int array;
  sorted : float array;
  times : float array;
  imbalance : float;
  timing : Parallel_model.timing;
}

let log2 x = log x /. log 2.
let nlogn n = if n <= 1. then 0. else n *. log2 n

let run ?s rng star ~keys =
  if Array.length keys = 0 then invalid_arg "Hetero_sort.run: empty input";
  let n = Array.length keys in
  let s = match s with Some s -> s | None -> Sample_sort.default_oversampling ~n in
  let weights = Star.speeds star in
  let splitters =
    if Star.size star = 1 then [||]
    else Sample_sort.weighted_splitters_floats rng keys ~weights ~s
  in
  Obs.Trace.begin_span "heterosort.partition";
  let flat = Kernels.Scatter.partition_floats keys ~splitters in
  Obs.Trace.end_span "heterosort.partition";
  let sorted = flat.Kernels.Scatter.data in
  Obs.Trace.begin_span "heterosort.bucket_sort";
  let sl = Kernels.Scatter.slice_make () in
  for b = 0 to Kernels.Scatter.num_buckets flat - 1 do
    Kernels.Scatter.bucket_slice flat b sl;
    Kernels.Seg_sort.sort_floats sorted ~lo:sl.Kernels.Scatter.lo ~len:sl.Kernels.Scatter.len
  done;
  Obs.Trace.end_span "heterosort.bucket_sort";
  let bucket_sizes = Kernels.Scatter.bucket_sizes flat in
  let workers = Star.workers star in
  let times =
    Array.mapi
      (fun i size ->
        Processor.compute_time workers.(i) ~work:(nlogn (float_of_int size)))
      bucket_sizes
  in
  let tmax = Array.fold_left Float.max 0. times in
  let tmin = Array.fold_left Float.min infinity times in
  let imbalance = if tmin > 0. then (tmax -. tmin) /. tmin else infinity in
  let timing = Parallel_model.evaluate star ~bucket_sizes ~s in
  { bucket_sizes; sorted; times; imbalance; timing }
