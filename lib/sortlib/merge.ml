let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok

let two_way a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0. in
  let i = ref 0 and j = ref 0 in
  for k = 0 to na + nb - 1 do
    if !i < na && (!j >= nb || a.(!i) <= b.(!j)) then begin
      out.(k) <- a.(!i);
      incr i
    end
    else begin
      out.(k) <- b.(!j);
      incr j
    end
  done;
  out

(* Reusable k-way merge state: a manual binary min-heap over (head
   value, run index) pairs kept in two parallel flat arrays, plus
   per-run read cursors.  Allocated once per sort, so the merge phase
   itself allocates nothing. *)
type merger = {
  heap_val : float array;  (* heap slot -> current head value of the run *)
  heap_run : int array;  (* heap slot -> run index *)
  cursor : int array;  (* run -> next absolute index to read in [src] *)
  stop : int array;  (* run -> exclusive end of the run in [src] *)
}

let merger ~k =
  if k < 1 then invalid_arg "Merge.merger: k must be >= 1";
  {
    heap_val = Array.make k 0.;
    heap_run = Array.make k 0;
    cursor = Array.make k 0;
    stop = Array.make k 0;
  }

(* The [float array] annotation is load-bearing: without it inference
   generalizes [hv] to ['a array] (nothing in the body pins the element
   type) and every [<] becomes a polymorphic compare over boxed reads —
   ~32 minor words per merged key at p = 16 instead of zero. *)
let sift_down (hv : float array) hr size i0 =
  let i = ref i0 and live = ref true in
  while !live do
    let l = (2 * !i) + 1 in
    if l >= size then live := false
    else begin
      let r = l + 1 in
      let child = if r < size && hv.(r) < hv.(l) then r else l in
      if hv.(child) < hv.(!i) then begin
        let v = hv.(child) and run = hr.(child) in
        hv.(child) <- hv.(!i);
        hr.(child) <- hr.(!i);
        hv.(!i) <- v;
        hr.(!i) <- run;
        i := child
      end
      else live := false
    end
  done

let k_way_strided mg ~src ~bounds ~runs ~stride ~off ~dst ~dst_lo =
  if runs > Array.length mg.cursor then invalid_arg "Merge.k_way_strided: merger too small";
  let hv = mg.heap_val and hr = mg.heap_run in
  let cursor = mg.cursor and stop = mg.stop in
  let size = ref 0 in
  for run = 0 to runs - 1 do
    let lo = bounds.((run * stride) + off) and hi = bounds.((run * stride) + off + 1) in
    cursor.(run) <- lo;
    stop.(run) <- hi;
    if hi > lo then begin
      hv.(!size) <- src.(lo);
      hr.(!size) <- run;
      incr size
    end
  done;
  for i = (!size / 2) - 1 downto 0 do
    sift_down hv hr !size i
  done;
  let out = ref dst_lo in
  while !size > 0 do
    let run = hr.(0) in
    dst.(!out) <- hv.(0);
    incr out;
    let next = cursor.(run) + 1 in
    cursor.(run) <- next;
    if next < stop.(run) then begin
      hv.(0) <- src.(next);
      sift_down hv hr !size 0
    end
    else begin
      decr size;
      hv.(0) <- hv.(!size);
      hr.(0) <- hr.(!size);
      if !size > 1 then sift_down hv hr !size 0
    end
  done;
  !out - dst_lo

(* List-of-runs convenience entry point: pack the runs into one flat
   buffer and reuse the strided zero-alloc merger above.  (This used to
   carry its own [Des.Event_queue] heap — the last boxed merge path;
   equal keys are equal floats, so the output is byte-identical
   whichever run a tie is drawn from.) *)
let k_way runs =
  List.iter (fun run -> assert (is_sorted run)) runs;
  let runs = Array.of_list (List.filter (fun r -> Array.length r > 0) runs) in
  let k = Array.length runs in
  if k = 0 then [||]
  else if k = 1 then Array.copy runs.(0)
  else begin
    let total = Array.fold_left (fun acc r -> acc + Array.length r) 0 runs in
    let src = Array.make total 0. in
    let bounds = Array.make (k + 1) 0 in
    let off = ref 0 in
    for r = 0 to k - 1 do
      bounds.(r) <- !off;
      Array.blit runs.(r) 0 src !off (Array.length runs.(r));
      off := !off + Array.length runs.(r)
    done;
    bounds.(k) <- total;
    let dst = Array.make total 0. in
    let merged =
      k_way_strided (merger ~k) ~src ~bounds ~runs:k ~stride:1 ~off:0 ~dst ~dst_lo:0
    in
    assert (merged = total);
    dst
  end
