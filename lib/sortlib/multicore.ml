module Rng = Numerics.Rng
module Scatter = Kernels.Scatter
module Seg_sort = Kernels.Seg_sort

let sort ?domains ?s rng keys ~p =
  if p < 1 then invalid_arg "Multicore.sort: p must be >= 1";
  let n = Array.length keys in
  if n = 0 then [||]
  else if p = 1 then begin
    let out = Array.copy keys in
    Array.sort Float.compare out;
    out
  end
  else begin
    let s = match s with Some s -> s | None -> Sample_sort.default_oversampling ~n in
    let splitters = Sample_sort.choose_splitters_floats rng keys ~p ~s in
    let d = match domains with Some d -> max 1 d | None -> Exec.Pool.default_domains () in
    (* Phase 2 through the counting scatter kernel: stable, so the pool
       variant is byte-identical to the sequential one at any domain
       count. *)
    Obs.Trace.begin_span "multicore.partition";
    let flat =
      if d <= 1 then Scatter.partition_floats keys ~splitters
      else
        Scatter.partition_floats_pool ~workers:d
          (Exec.Pool.get_global ~at_least:d ())
          keys ~splitters
    in
    Obs.Trace.end_span "multicore.partition";
    let data = flat.Scatter.data in
    (* Phase 3 in parallel: bucket segments are disjoint slices of [data],
       so sorting them from different domains is race-free — and the flat
       array is already in bucket order, so no final concat. *)
    Obs.Trace.begin_span "multicore.bucket_sort";
    (* [bucket_lo]/[bucket_len] rather than a shared slice record: the
       closure runs concurrently on several domains. *)
    Numerics.Parallel.parallel_for ?domains (Scatter.num_buckets flat) (fun b ->
        Seg_sort.sort_floats data ~lo:(Scatter.bucket_lo flat b) ~len:(Scatter.bucket_len flat b));
    Obs.Trace.end_span "multicore.bucket_sort";
    data
  end

(* Monotonic clock (ns): wall-clock [Unix.gettimeofday] is subject to
   NTP slew and skews the reported speedup on loaded hosts.
   [Obs.Clock] wraps the same noalloc primitive the bench harness
   uses. *)
let time = Obs.Clock.elapsed_s

let median samples =
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  sorted.(Array.length sorted / 2)

let speedup ?domains ?(trials = 3) rng ~n ~p =
  if trials < 1 then invalid_arg "Multicore.speedup: trials must be >= 1";
  let keys = Array.init n (fun _ -> Rng.float rng) in
  (* Warm the shared pool so the parallel runs are not charged the
     one-off domain-spawn cost. *)
  Numerics.Parallel.warm_up ?domains ();
  (* One untimed warm-up of each variant (cold caches would otherwise
     penalize whichever variant runs first), then interleaved trials so
     drift — thermal, competing load — hits both variants equally. *)
  ignore (sort ~domains:1 (Rng.copy rng) keys ~p);
  ignore (sort ?domains (Rng.copy rng) keys ~p);
  let seq = Array.make trials 0. and par = Array.make trials 0. in
  for t = 0 to trials - 1 do
    let _, s = time (fun () -> sort ~domains:1 (Rng.copy rng) keys ~p) in
    seq.(t) <- s;
    let _, q = time (fun () -> sort ?domains (Rng.copy rng) keys ~p) in
    par.(t) <- q
  done;
  let sequential = median seq and parallel = median par in
  (sequential, parallel, sequential /. parallel)
