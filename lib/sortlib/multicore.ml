module Rng = Numerics.Rng

let sort ?domains ?s rng keys ~p =
  if p < 1 then invalid_arg "Multicore.sort: p must be >= 1";
  let n = Array.length keys in
  if n = 0 then [||]
  else if p = 1 then begin
    let out = Array.copy keys in
    Array.sort Float.compare out;
    out
  end
  else begin
    let s = match s with Some s -> s | None -> Sample_sort.default_oversampling ~n in
    let splitters = Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p ~s in
    let buckets = Sample_sort.partition ~cmp:Float.compare keys ~splitters in
    let contents = buckets.Sample_sort.contents in
    (* Phase 3 in parallel: buckets are disjoint arrays, so sorting them
       from different domains is race-free. *)
    Numerics.Parallel.parallel_for ?domains (Array.length contents) (fun b ->
        Array.sort Float.compare contents.(b));
    Array.concat (Array.to_list contents)
  end

(* Monotonic clock (ns): wall-clock [Unix.gettimeofday] is subject to
   NTP slew and skews the reported speedup on loaded hosts. *)
let time f =
  let t0 = Monotonic_clock.now () in
  let result = f () in
  (result, Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9)

let speedup ?domains rng ~n ~p =
  let keys = Array.init n (fun _ -> Rng.float rng) in
  (* Warm the shared pool so the parallel run is not charged the one-off
     domain-spawn cost. *)
  Numerics.Parallel.warm_up ?domains ();
  let sequential_rng = Rng.copy rng in
  let _, sequential =
    time (fun () -> sort ~domains:1 sequential_rng keys ~p)
  in
  let parallel_rng = Rng.copy rng in
  let _, parallel = time (fun () -> sort ?domains parallel_rng keys ~p) in
  (sequential, parallel, sequential /. parallel)
