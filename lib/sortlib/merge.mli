(** K-way merge of sorted runs with a binary heap — the linear-ithmic
    building block the bucket-merging phases of PSRS and the MapReduce
    sort reducers need ([O(N log k)] instead of re-sorting,
    [O(N log N)]). *)

val k_way : float array list -> float array
(** Merge sorted runs into one sorted array.  Runs must each be sorted
    ascending (checked in debug builds via [assert]); empty runs are
    fine. *)

type merger
(** Reusable k-way merge state (heap + cursors, [O(k)] ints and floats),
    allocated once by {!merger} so {!k_way_strided} allocates nothing. *)

val merger : k:int -> merger
(** State for merges of up to [k] runs. *)

val k_way_strided :
  merger ->
  src:float array ->
  bounds:int array ->
  runs:int ->
  stride:int ->
  off:int ->
  dst:float array ->
  dst_lo:int ->
  int
(** [k_way_strided mg ~src ~bounds ~runs ~stride ~off ~dst ~dst_lo]
    merges [runs] sorted slices of [src] into [dst] starting at
    [dst_lo], returning the merged length.  Run [r] is
    [src.(bounds.((r·stride) + off)) ..
    src.(bounds.((r·stride) + off + 1) - 1)] — the flat row-per-run
    boundary layout PSRS produces (row [r] holds the offsets-convention
    bucket boundaries of chunk [r], so [off = b] selects bucket [b] of
    every chunk).  Runs must each be sorted ascending and [dst] must not
    alias [src].  Beyond the reusable [mg], no allocation. *)

val two_way : float array -> float array -> float array
(** The classical binary merge, exposed for tests and small cases. *)

val is_sorted : float array -> bool
