module Scatter = Kernels.Scatter

type result = { splitters : float array; bucket_sizes : int array; passes : int }

(* Count, in one pass, how many keys are (strictly) below each probe.
   Probes must be sorted; returns cumulative counts.  Built on the
   counting kernel: a histogram over the probe intervals followed by a
   prefix sum — no scatter, O(m) allocation. *)
let ranks keys probes =
  let m = Array.length probes in
  let counts = Scatter.histogram_floats keys ~splitters:probes in
  let cumulative = Array.make m 0 in
  let acc = ref 0 in
  for j = 0 to m - 1 do
    acc := !acc + counts.(j);
    cumulative.(j) <- !acc
  done;
  cumulative

let bucket_sizes_of keys splitters = Scatter.histogram_floats keys ~splitters

let splitters ?(tolerance = 0.02) ?(max_passes = 64) keys ~p =
  if Array.length keys = 0 then invalid_arg "Histogram_sort.splitters: empty input";
  if p < 1 then invalid_arg "Histogram_sort.splitters: p must be >= 1";
  let n = Array.length keys in
  if p = 1 then { splitters = [||]; bucket_sizes = [| n |]; passes = 0 }
  else begin
    let lo0 = Array.fold_left Float.min keys.(0) keys in
    let hi0 = Array.fold_left Float.max keys.(0) keys in
    let m = p - 1 in
    let lo = Array.make m lo0 and hi = Array.make m (hi0 +. 1.) in
    let targets = Array.init m (fun j -> (j + 1) * n / p) in
    let ideal = float_of_int n /. float_of_int p in
    let balanced sizes =
      Array.for_all
        (fun size -> Float.abs (float_of_int size -. ideal) <= tolerance *. ideal)
        sizes
    in
    let passes = ref 0 in
    let current () = Array.init m (fun j -> 0.5 *. (lo.(j) +. hi.(j))) in
    let rec refine () =
      let probes = current () in
      (* The counting pass needs sorted probes, but each rank must be
         credited to the bracket that produced the probe: sort an index
         permutation alongside. *)
      let order = Array.init m (fun j -> j) in
      Array.sort (fun i j -> Float.compare probes.(i) probes.(j)) order;
      let sorted_probes = Array.map (fun j -> probes.(j)) order in
      incr passes;
      let cumulative = ranks keys sorted_probes in
      Array.iteri
        (fun position j ->
          (* [cumulative.(position)] keys lie strictly below probe j. *)
          if cumulative.(position) < targets.(j) then lo.(j) <- probes.(j)
          else hi.(j) <- probes.(j))
        order;
      let sizes = bucket_sizes_of keys sorted_probes in
      if balanced sizes || !passes >= max_passes then
        { splitters = sorted_probes; bucket_sizes = sizes; passes = !passes }
      else refine ()
    in
    refine ()
  end

let sort ?tolerance keys ~p =
  if Array.length keys = 0 then [||]
  else begin
    Obs.Trace.begin_span "histsort.splitters";
    let { splitters = s; _ } = splitters ?tolerance keys ~p in
    Obs.Trace.end_span "histsort.splitters";
    Obs.Trace.begin_span "histsort.partition";
    let flat = Scatter.partition_floats keys ~splitters:s in
    Obs.Trace.end_span "histsort.partition";
    let data = flat.Scatter.data in
    Obs.Trace.begin_span "histsort.bucket_sort";
    for b = 0 to Scatter.num_buckets flat - 1 do
      let lo, len = Scatter.bucket_bounds flat b in
      Kernels.Seg_sort.sort_floats data ~lo ~len
    done;
    Obs.Trace.end_span "histsort.bucket_sort";
    data
  end

let max_bucket_ratio result =
  let n = Array.fold_left ( + ) 0 result.bucket_sizes in
  let p = Array.length result.bucket_sizes in
  let ideal = float_of_int n /. float_of_int p in
  float_of_int (Array.fold_left max 0 result.bucket_sizes) /. ideal
