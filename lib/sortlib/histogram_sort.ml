module Scatter = Kernels.Scatter

type result = { splitters : float array; bucket_sizes : int array; passes : int }

(* One pass, no boxing: a 2-slot float array accumulator (unboxed float
   storage) instead of two [Array.fold_left Float.min/max] sweeps, each
   of which boxes every element it folds — 4 words per key, the entire
   allocation budget of splitter refinement before this. *)
let min_max (keys : float array) =
  (* The annotation is load-bearing: un-annotated, [keys] generalizes to
     ['a array] and both [<] tests become polymorphic compares over
     boxed reads — 6 minor words per key, i.e. the whole refinement
     budget. *)
  let acc = Array.make 2 keys.(0) in
  for i = 1 to Array.length keys - 1 do
    let key = keys.(i) in
    if key < acc.(0) then acc.(0) <- key;
    if key > acc.(1) then acc.(1) <- key
  done;
  acc

let splitters ?(tolerance = 0.02) ?(max_passes = 64) keys ~p =
  if Array.length keys = 0 then invalid_arg "Histogram_sort.splitters: empty input";
  if p < 1 then invalid_arg "Histogram_sort.splitters: p must be >= 1";
  let n = Array.length keys in
  if p = 1 then { splitters = [||]; bucket_sizes = [| n |]; passes = 0 }
  else begin
    let extremes = min_max keys in
    let m = p - 1 in
    let lo = Array.make m extremes.(0) and hi = Array.make m (extremes.(1) +. 1.) in
    let targets = Array.init m (fun j -> (j + 1) * n / p) in
    let ideal = float_of_int n /. float_of_int p in
    (* One set of pass buffers, reused across every refinement sweep. *)
    let probes = Array.make m 0. in
    let order = Array.make m 0 in
    let sorted_probes = Array.make m 0. in
    let counts = Array.make p 0 in
    let passes = ref 0 in
    let out = ref { splitters = [||]; bucket_sizes = [||]; passes = 0 } in
    let refining = ref true in
    while !refining do
      (* The counting pass needs sorted probes, but each rank must be
         credited to the bracket that produced the probe: sort an index
         permutation alongside. *)
      for j = 0 to m - 1 do
        probes.(j) <- 0.5 *. (lo.(j) +. hi.(j));
        order.(j) <- j
      done;
      Array.sort (fun i j -> Float.compare probes.(i) probes.(j)) order;
      for position = 0 to m - 1 do
        sorted_probes.(position) <- probes.(order.(position))
      done;
      incr passes;
      (* One histogram serves both the rank updates (prefix sums: [rank]
         keys lie strictly below sorted probe [position]) and the
         balance check (the counts themselves are the bucket sizes). *)
      Scatter.histogram_floats_into counts keys ~splitters:sorted_probes;
      let rank = ref 0 in
      for position = 0 to m - 1 do
        rank := !rank + counts.(position);
        let j = order.(position) in
        if !rank < targets.(j) then lo.(j) <- probes.(j) else hi.(j) <- probes.(j)
      done;
      let balanced = ref true in
      for b = 0 to p - 1 do
        if Float.abs (float_of_int counts.(b) -. ideal) > tolerance *. ideal then
          balanced := false
      done;
      if !balanced || !passes >= max_passes then begin
        out :=
          {
            splitters = Array.copy sorted_probes;
            bucket_sizes = Array.copy counts;
            passes = !passes;
          };
        refining := false
      end
    done;
    !out
  end

let sort ?tolerance keys ~p =
  if Array.length keys = 0 then [||]
  else begin
    Obs.Trace.begin_span "histsort.splitters";
    let { splitters = s; _ } = splitters ?tolerance keys ~p in
    Obs.Trace.end_span "histsort.splitters";
    Obs.Trace.begin_span "histsort.partition";
    let flat = Scatter.partition_floats keys ~splitters:s in
    Obs.Trace.end_span "histsort.partition";
    let data = flat.Scatter.data in
    Obs.Trace.begin_span "histsort.bucket_sort";
    let sl = Scatter.slice_make () in
    for b = 0 to Scatter.num_buckets flat - 1 do
      Scatter.bucket_slice flat b sl;
      Kernels.Seg_sort.sort_floats data ~lo:sl.Scatter.lo ~len:sl.Scatter.len
    done;
    Obs.Trace.end_span "histsort.bucket_sort";
    data
  end

let max_bucket_ratio result =
  let n = Array.fold_left ( + ) 0 result.bucket_sizes in
  let p = Array.length result.bucket_sizes in
  let ideal = float_of_int n /. float_of_int p in
  float_of_int (Array.fold_left max 0 result.bucket_sizes) /. ideal
