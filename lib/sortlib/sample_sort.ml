module Rng = Numerics.Rng

type 'a buckets = { splitters : 'a array; contents : 'a array array }

let default_oversampling ~n =
  let l = log (float_of_int (max 2 n)) /. log 2. in
  max 1 (int_of_float (Float.round (l *. l)))

let take_sample rng keys count =
  Array.init count (fun _ -> keys.(Rng.int rng (Array.length keys)))

let choose_splitters ?(cmp = compare) rng keys ~p ~s =
  if p < 1 then invalid_arg "Sample_sort.choose_splitters: p must be >= 1";
  if s < 1 then invalid_arg "Sample_sort.choose_splitters: s must be >= 1";
  if Array.length keys = 0 then invalid_arg "Sample_sort.choose_splitters: empty input";
  let sample = take_sample rng keys (s * p) in
  Array.sort cmp sample;
  Array.init (p - 1) (fun j -> sample.((j + 1) * s))

(* Float clone of [take_sample]: a plain fill loop into an unboxed
   float array — [Array.init] routes every drawn key through the
   closure's boxed return value. *)
let take_sample_floats rng (keys : float array) sample count =
  let n = Array.length keys in
  for i = 0 to count - 1 do
    sample.(i) <- keys.(Rng.int rng n)
  done

let choose_splitters_floats rng (keys : float array) ~p ~s =
  if p < 1 then invalid_arg "Sample_sort.choose_splitters_floats: p must be >= 1";
  if s < 1 then invalid_arg "Sample_sort.choose_splitters_floats: s must be >= 1";
  if Array.length keys = 0 then invalid_arg "Sample_sort.choose_splitters_floats: empty input";
  (* Same draws, same ranks as the generic path, but the sample is
     sorted in place by the monomorphic introsort — [Array.sort
     Float.compare] boxes both floats of every comparison, which made
     phase 1 allocate more than the scatter it feeds. *)
  let sample = Array.make (s * p) 0. in
  take_sample_floats rng keys sample (s * p);
  Kernels.Seg_sort.sort_floats sample ~lo:0 ~len:(s * p);
  Array.init (p - 1) (fun j -> sample.((j + 1) * s))

let weighted_splitters_floats rng (keys : float array) ~weights ~s =
  let p = Array.length weights in
  if p < 1 then invalid_arg "Sample_sort.weighted_splitters_floats: empty weights";
  if s < 1 then invalid_arg "Sample_sort.weighted_splitters_floats: s must be >= 1";
  if Array.length keys = 0 then
    invalid_arg "Sample_sort.weighted_splitters_floats: empty input";
  Array.iter
    (fun w ->
      if w <= 0. || Float.is_nan w then
        invalid_arg "Sample_sort.weighted_splitters_floats: bad weight")
    weights;
  let total = Numerics.Kahan.sum weights in
  let sample_size = s * p in
  let sample = Array.make sample_size 0. in
  take_sample_floats rng keys sample sample_size;
  Kernels.Seg_sort.sort_floats sample ~lo:0 ~len:sample_size;
  let cumulative = ref 0. in
  Array.init (p - 1) (fun j ->
      cumulative := !cumulative +. weights.(j);
      let rank =
        int_of_float (Float.round (!cumulative /. total *. float_of_int sample_size))
      in
      sample.(min (max rank 0) (sample_size - 1)))

let weighted_splitters ?(cmp = compare) rng keys ~weights ~s =
  let p = Array.length weights in
  if p < 1 then invalid_arg "Sample_sort.weighted_splitters: empty weights";
  if s < 1 then invalid_arg "Sample_sort.weighted_splitters: s must be >= 1";
  if Array.length keys = 0 then invalid_arg "Sample_sort.weighted_splitters: empty input";
  Array.iter
    (fun w -> if w <= 0. || Float.is_nan w then invalid_arg "Sample_sort.weighted_splitters: bad weight")
    weights;
  let total = Numerics.Kahan.sum weights in
  let sample_size = s * p in
  let sample = take_sample rng keys sample_size in
  Array.sort cmp sample;
  let cumulative = ref 0. in
  Array.init (p - 1) (fun j ->
      cumulative := !cumulative +. weights.(j);
      let rank =
        int_of_float (Float.round (!cumulative /. total *. float_of_int sample_size))
      in
      sample.(min (max rank 0) (sample_size - 1)))

let bucket_index = Kernels.Scatter.bucket_index

let partition_flat ?cmp keys ~splitters = Kernels.Scatter.partition ?cmp keys ~splitters

let partition ?(cmp = compare) keys ~splitters =
  (* Compatibility view over the flat counting kernel: same contents in
     the same (stable) order as the original cons-per-key path, but the
     only per-bucket allocation is the [Array.sub] copy-out. *)
  let flat = partition_flat ~cmp keys ~splitters in
  let contents =
    Array.init (Kernels.Scatter.num_buckets flat) (fun b -> Kernels.Scatter.bucket flat b)
  in
  { splitters; contents }

let sort ?(cmp = compare) ?s rng keys ~p =
  if p < 1 then invalid_arg "Sample_sort.sort: p must be >= 1";
  if Array.length keys = 0 then [||]
  else if p = 1 then begin
    let out = Array.copy keys in
    Array.sort cmp out;
    out
  end
  else begin
    let s = match s with Some s -> s | None -> default_oversampling ~n:(Array.length keys) in
    Obs.Trace.begin_span "samplesort.splitters";
    let splitters = choose_splitters ~cmp rng keys ~p ~s in
    Obs.Trace.end_span "samplesort.splitters";
    Obs.Trace.begin_span "samplesort.partition";
    let flat = partition_flat ~cmp keys ~splitters in
    Obs.Trace.end_span "samplesort.partition";
    let data = flat.Kernels.Scatter.data in
    Obs.Trace.begin_span "samplesort.bucket_sort";
    let sl = Kernels.Scatter.slice_make () in
    for b = 0 to Kernels.Scatter.num_buckets flat - 1 do
      Kernels.Scatter.bucket_slice flat b sl;
      Kernels.Seg_sort.sort ~cmp data ~lo:sl.Kernels.Scatter.lo ~len:sl.Kernels.Scatter.len
    done;
    Obs.Trace.end_span "samplesort.bucket_sort";
    data
  end

let max_bucket_ratio buckets =
  let sizes = Array.map Array.length buckets.contents in
  let total = Array.fold_left ( + ) 0 sizes in
  let p = Array.length sizes in
  let expected = float_of_int total /. float_of_int p in
  float_of_int (Array.fold_left max 0 sizes) /. expected

let theoretical_envelope ~n =
  1. +. ((1. /. log (float_of_int (max 3 n))) ** (1. /. 3.))
