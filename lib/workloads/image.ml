module Matrix = Linalg.Matrix
module Star = Platform.Star
module Processor = Platform.Processor

type kernel = float array array

let check_kernel kernel =
  let size = Array.length kernel in
  if size = 0 || size mod 2 = 0 then invalid_arg "Image: kernel side must be odd";
  Array.iter
    (fun row -> if Array.length row <> size then invalid_arg "Image: kernel must be square")
    kernel;
  size / 2

let box_blur size =
  if size <= 0 || size mod 2 = 0 then invalid_arg "Image.box_blur: size must be odd";
  let w = 1. /. float_of_int (size * size) in
  Array.make_matrix size size w

let sharpen =
  [| [| 0.; -1.; 0. |]; [| -1.; 5.; -1. |]; [| 0.; -1.; 0. |] |]
[@@nldl.allow "S201"] (* read-only convolution kernel *)

let edge_detect =
  [| [| -1.; -1.; -1. |]; [| -1.; 8.; -1. |]; [| -1.; -1.; -1. |] |]
[@@nldl.allow "S201"] (* read-only convolution kernel *)

(* Convolve rows [row0, row0+rows) of [image], reading neighbours with
   zero padding; writes into the same rows of [target]. *)
let convolve_rows image ~kernel ~radius ~row0 ~rows target =
  let height = Matrix.rows image and width = Matrix.cols image in
  for i = row0 to row0 + rows - 1 do
    for j = 0 to width - 1 do
      let acc = ref 0. in
      for di = -radius to radius do
        for dj = -radius to radius do
          let si = i + di and sj = j + dj in
          if si >= 0 && si < height && sj >= 0 && sj < width then
            acc :=
              !acc
              +. (kernel.(di + radius).(dj + radius) *. Matrix.get image si sj)
        done
      done;
      Matrix.set target i j !acc
    done
  done

let convolve image ~kernel =
  let radius = check_kernel kernel in
  let target = Matrix.create ~rows:(Matrix.rows image) ~cols:(Matrix.cols image) in
  convolve_rows image ~kernel ~radius ~row0:0 ~rows:(Matrix.rows image) target;
  target

type distribution = {
  bands : (int * int) array;
  halo_rows : int;
  communication : float;
  makespan : float;
  result : Matrix.t;
}

let distribute star image ~kernel =
  let radius = check_kernel kernel in
  let height = Matrix.rows image and width = Matrix.cols image in
  let p = Star.size star in
  if height < p then invalid_arg "Image.distribute: fewer rows than workers";
  (* Linear DLT on the row count: the cost of a band is ∝ its pixels. *)
  let rows_per_worker =
    Numerics.Apportion.largest_remainder
      ~weights:(Dlt.Linear.parallel_allocation star ~total:(float_of_int height))
      ~total:height
  in
  let workers = Star.workers star in
  let result = Matrix.create ~rows:height ~cols:width in
  let bands = Array.make p (0, 0) in
  let halo_rows = ref 0 in
  let communication = ref 0. in
  let makespan = ref 0. in
  let row0 = ref 0 in
  Array.iteri
    (fun i rows ->
      bands.(i) <- (!row0, rows);
      if rows > 0 then begin
        let halo_top = min radius !row0 in
        let halo_bottom = min radius (height - (!row0 + rows)) in
        halo_rows := !halo_rows + halo_top + halo_bottom;
        let shipped = float_of_int ((rows + halo_top + halo_bottom) * width) in
        communication := !communication +. shipped;
        let proc = workers.(i) in
        let finish =
          Processor.transfer_time proc ~data:shipped
          +. Processor.compute_time proc ~work:(float_of_int (rows * width))
        in
        if finish > !makespan then makespan := finish;
        convolve_rows image ~kernel ~radius ~row0:!row0 ~rows result
      end;
      row0 := !row0 + rows)
    rows_per_worker;
  {
    bands;
    halo_rows = !halo_rows;
    communication = !communication;
    makespan = !makespan;
    result;
  }
