(* Persistent domain pool with a chunked dynamic scheduler.

   Workers are spawned once and parked on a condition variable between
   submissions; each submission publishes a task whose chunk indices are
   claimed through a shared atomic counter, so uneven per-index costs
   load-balance instead of following a fixed contiguous split.

   The pool is instrumented: per-participant counters (tasks run,
   chunks claimed, busy/parked nanoseconds on the shared monotonic
   clock) accumulate into cache-line-sized records each written by
   exactly one domain, and submissions emit [Obs] spans / latency
   histogram samples when tracing/metrics are enabled.  With both
   disabled the per-submission overhead is two clock reads and a few
   plain stores — no allocation. *)

(* R403 flags blocking waits in pool-escaping code, but this file IS the
   pool runtime: worker parking (Mutex.lock + Condition.wait) and the
   completion rendezvous in [parallel_for] are the scheduler itself, not
   work that stalls it. *)
[@@@nldl.allow "R403"]

(* Per-participant counters.  One record per domain slot (slot 0 is the
   submitting domain, then one per worker); the seven mutable fields
   plus the header fill a 64-byte cache line, so two slots never share
   one. *)
type wstats = {
  mutable ws_tasks : int; (* submissions this slot ran chunks for *)
  mutable ws_chunks : int;
  mutable ws_busy_ns : int;
  mutable ws_parked_ns : int;
  mutable pad1 : int;
  mutable pad2 : int;
  mutable pad3 : int;
}

let fresh_wstats () =
  { ws_tasks = 0; ws_chunks = 0; ws_busy_ns = 0; ws_parked_ns = 0; pad1 = 0; pad2 = 0; pad3 = 0 }

(* Keep the padding fields alive against unused-field warnings. *)
let _touch_pads st = st.pad1 + st.pad2 + st.pad3

(* One reusable task slot per pool, mutated between generations instead
   of allocated per submission: the record, its three atomics and the
   [Some] wrapper used to cost ~30 minor words on every [parallel_for],
   which doubled the allocation profile of otherwise zero-alloc kernels
   (the pool scatter measured 2x its sequential twin).  The submitting
   domain only writes these fields while no generation is in flight
   (before the broadcast, or after every worker has retired), and
   workers acquire the pool mutex before reading, so the fields are
   race-free without per-field atomicity. *)
type task = {
  mutable n : int;
  mutable chunk_size : int;
  mutable chunk_count : int;
  mutable body : int -> unit;
  next_chunk : int Atomic.t;
  (* Participation slots for workers (the caller always participates);
     workers beyond [max_extra] report done without pulling chunks, which
     is how [~workers] caps effective parallelism on a larger pool. *)
  mutable max_extra : int;
  claimed : int Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
}

let idle_body (_ : int) = ()

let fresh_task () =
  {
    n = 0;
    chunk_size = 1;
    chunk_count = 0;
    body = idle_body;
    next_chunk = Atomic.make 0;
    max_extra = 0;
    claimed = Atomic.make 0;
    failure = Atomic.make None;
  }

type t = {
  mutex : Mutex.t;
  work : Condition.t;
  retired : Condition.t;
  mutable workers : unit Domain.t array;
  task : task;
  mutable generation : int;
  mutable finished : int;  (* workers done with the current generation *)
  mutable torn_down : bool;
  mutable wstats : wstats array; (* slot 0 = submitting domain, 1.. = workers *)
  mutable submissions : int; (* parallel submissions; submitting domain only *)
  seq_runs : int Atomic.t; (* sequential-fallback runs, any domain *)
  nested_runs : int Atomic.t; (* subset of seq_runs from nested calls *)
  quarantines : int Atomic.t; (* [submit] calls that exhausted their retry policy *)
}

let m_submissions = Obs.Metrics.counter "pool.submissions"
let m_sequential = Obs.Metrics.counter "pool.sequential_runs"
let m_quarantined = Obs.Metrics.counter "pool.quarantined"
let m_retries = Obs.Metrics.counter "pool.submit_retries"

let h_submit_ns =
  Obs.Metrics.histogram "pool.submit_latency_ns"
    ~bounds:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let default_domains () = max 1 (Domain.recommended_domain_count ())
let size pool = 1 + Array.length pool.workers

(* True while this domain is executing pool work (worker loop, or a
   caller inside a submission).  Nested submissions from such a domain
   run sequentially instead of deadlocking on the single task slot. *)
let busy_key = Domain.DLS.new_key (fun () -> false)

let run_chunks task st =
  let rec loop () =
    let c = Atomic.fetch_and_add task.next_chunk 1 in
    if c < task.chunk_count then begin
      st.ws_chunks <- st.ws_chunks + 1;
      (* After a failure the remaining chunks are drained without
         running the body, so the submission finishes promptly. *)
      (match Atomic.get task.failure with
      | Some _ -> ()
      | None -> (
          try
            let start = c * task.chunk_size in
            let stop = min task.n (start + task.chunk_size) in
            for i = start to stop - 1 do
              task.body i
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set task.failure None (Some (e, bt)))));
      loop ()
    end
  in
  loop ()

let rec worker_loop pool st seen =
  let t0 = Obs.Clock.now_ns () in
  Mutex.lock pool.mutex;
  while pool.generation = seen && not pool.torn_down do
    Condition.wait pool.work pool.mutex
  done;
  if pool.generation = seen then begin
    (* torn down, no pending task *)
    st.ws_parked_ns <- st.ws_parked_ns + (Obs.Clock.now_ns () - t0);
    Mutex.unlock pool.mutex
  end
  else begin
    let gen = pool.generation in
    let task = pool.task in
    Mutex.unlock pool.mutex;
    let t1 = Obs.Clock.now_ns () in
    st.ws_parked_ns <- st.ws_parked_ns + (t1 - t0);
    if Atomic.fetch_and_add task.claimed 1 < task.max_extra then begin
      Obs.Trace.begin_span "pool.worker.run";
      run_chunks task st;
      Obs.Trace.end_span "pool.worker.run";
      st.ws_tasks <- st.ws_tasks + 1;
      st.ws_busy_ns <- st.ws_busy_ns + (Obs.Clock.now_ns () - t1)
    end;
    Mutex.lock pool.mutex;
    pool.finished <- pool.finished + 1;
    Condition.broadcast pool.retired;
    Mutex.unlock pool.mutex;
    worker_loop pool st gen
  end

let spawn_worker pool st seen =
  Domain.spawn (fun () ->
      Domain.DLS.set busy_key true;
      worker_loop pool st seen)

let create ?domains () =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let wstats = Array.init domains (fun _ -> fresh_wstats ()) in
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      retired = Condition.create ();
      workers = [||];
      task = fresh_task ();
      generation = 0;
      finished = 0;
      torn_down = false;
      wstats;
      submissions = 0;
      seq_runs = Atomic.make 0;
      nested_runs = Atomic.make 0;
      quarantines = Atomic.make 0;
    }
  in
  pool.workers <- Array.init (domains - 1) (fun i -> spawn_worker pool wstats.(i + 1) 0);
  pool

let ensure pool ~domains =
  (* Only ever called between submissions, so no task is in flight. *)
  Mutex.lock pool.mutex;
  let missing = if pool.torn_down then 0 else domains - size pool in
  let seen = pool.generation in
  Mutex.unlock pool.mutex;
  if missing > 0 then begin
    (* Existing slots keep their counters; the new workers start from
       zero. *)
    let added = Array.init missing (fun _ -> fresh_wstats ()) in
    pool.wstats <- Array.append pool.wstats added;
    pool.workers <-
      Array.append pool.workers
        (Array.init missing (fun i -> spawn_worker pool added.(i) seen))
  end

let teardown pool =
  Mutex.lock pool.mutex;
  if pool.torn_down then Mutex.unlock pool.mutex
  else begin
    pool.torn_down <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
    (* [wstats] is kept: stats survive teardown (the sequential
       fallback of a torn-down pool still counts into [seq_runs]). *)
  end

let default_chunks_per_worker = 8

let parallel_for ?workers ?chunk pool n body =
  let workers =
    match workers with Some w -> max 1 w | None -> size pool
  in
  let workers = min workers (size pool) in
  if n <= 0 then ()
  else if n = 1 || workers = 1 || pool.torn_down || Domain.DLS.get busy_key
  then begin
    if Domain.DLS.get busy_key then Atomic.incr pool.nested_runs;
    Atomic.incr pool.seq_runs;
    Obs.Metrics.incr_counter m_sequential;
    for i = 0 to n - 1 do
      body i
    done
  end
  else begin
    let parts = min workers n in
    let chunk_size =
      match chunk with
      | Some c -> max 1 c
      | None ->
          let target = parts * default_chunks_per_worker in
          max 1 ((n + target - 1) / target)
    in
    let chunk_count = (n + chunk_size - 1) / chunk_size in
    let task = pool.task in
    Obs.Trace.begin_span "pool.parallel_for";
    let t0 = Obs.Clock.now_ns () in
    Mutex.lock pool.mutex;
    (* Refill the reusable slot under the mutex: the broadcast below is
       what publishes it, and no worker touches the slot between
       generations. *)
    task.n <- n;
    task.chunk_size <- chunk_size;
    task.chunk_count <- chunk_count;
    task.body <- body;
    task.max_extra <- parts - 1;
    Atomic.set task.next_chunk 0;
    Atomic.set task.claimed 0;
    Atomic.set task.failure None;
    pool.generation <- pool.generation + 1;
    pool.finished <- 0;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    (* Manual cleanup instead of [Fun.protect]: no closure pair per
       submission, and [run_chunks] already funnels body exceptions into
       [task.failure], so the handler is for belt and braces only. *)
    Domain.DLS.set busy_key true;
    (try run_chunks task pool.wstats.(0)
     with e ->
       Domain.DLS.set busy_key false;
       raise e);
    Domain.DLS.set busy_key false;
    Mutex.lock pool.mutex;
    (* Every worker responds to every generation (participant or not), so
       completion is simply all workers having reported in. *)
    while pool.finished < Array.length pool.workers do
      Condition.wait pool.retired pool.mutex
    done;
    (* Drop the caller's closure so the slot does not retain it until the
       next submission. *)
    task.body <- idle_body;
    Mutex.unlock pool.mutex;
    let st = pool.wstats.(0) in
    let elapsed = Obs.Clock.now_ns () - t0 in
    st.ws_tasks <- st.ws_tasks + 1;
    st.ws_busy_ns <- st.ws_busy_ns + elapsed;
    pool.submissions <- pool.submissions + 1;
    Obs.Metrics.incr_counter m_submissions;
    Obs.Metrics.observe_int h_submit_ns elapsed;
    Obs.Trace.end_span "pool.parallel_for";
    match Atomic.get task.failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_map_array ?workers ?chunk pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    parallel_for ?workers ?chunk pool (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end

let default_reduce_chunks = 64

let parallel_reduce ?workers ?chunk pool ~init ~map ~combine n =
  if n <= 0 then init
  else begin
    (* Chunk geometry depends only on [n] (and [?chunk]) — never on the
       worker count — and partials are combined in chunk order, so the
       result is identical at any domain count. *)
    let chunk_size =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 ((n + default_reduce_chunks - 1) / default_reduce_chunks)
    in
    let chunk_count = (n + chunk_size - 1) / chunk_size in
    let partials = Array.make chunk_count init in
    parallel_for ?workers ~chunk:1 pool chunk_count (fun c ->
        let start = c * chunk_size in
        let stop = min n (start + chunk_size) in
        let acc = ref (map start) in
        for i = start + 1 to stop - 1 do
          acc := combine !acc (map i)
        done;
        partials.(c) <- !acc);
    Array.fold_left combine init partials
  end

(* --- retrying submissions ---------------------------------------------- *)

(* The retry policy is the shared failure vocabulary of the execution
   and simulation paths: [Fault.Retry.t] is an alias of this record, so
   the simulated scheduler's task re-execution and the pool's real
   submissions are configured with the same type.  Delays are in
   seconds here and in simulated time units there. *)

type retry = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  deadline : float option;
}

let default_retry =
  { max_attempts = 3; base_delay = 0.; max_delay = 30.; deadline = None }

let backoff_delay r ~attempt =
  if attempt < 1 then invalid_arg "Pool.backoff_delay: attempt must be >= 1";
  if r.base_delay <= 0. then 0.
  else Float.min r.max_delay (r.base_delay *. Float.pow 2. (float_of_int (attempt - 1)))

type quarantine = {
  attempts : int;  (* attempts actually made *)
  elapsed : float;  (* seconds from first attempt to giving up *)
  deadline_hit : bool;
  error : exn;  (* last exception *)
}

let validate_retry r =
  if r.max_attempts < 1 then invalid_arg "Pool.submit: retry.max_attempts must be >= 1";
  if r.base_delay < 0. || r.max_delay < 0. then
    invalid_arg "Pool.submit: retry delays must be >= 0";
  match r.deadline with
  | Some d when d < 0. -> invalid_arg "Pool.submit: retry.deadline must be >= 0"
  | _ -> ()

let quarantined pool = Atomic.get pool.quarantines

let submit ?(retry = default_retry) pool f =
  validate_retry retry;
  let t0 = Obs.Clock.now_ns () in
  let elapsed () = float_of_int (Obs.Clock.now_ns () - t0) *. 1e-9 in
  let give_up ~deadline_hit ~attempts error =
    Atomic.incr pool.quarantines;
    Obs.Metrics.incr_counter m_quarantined;
    Obs.Trace.instant "pool.quarantine";
    Error { attempts; elapsed = elapsed (); deadline_hit; error }
  in
  let rec attempt k =
    match f () with
    | v -> Ok v
    | exception e ->
        if k >= retry.max_attempts then give_up ~deadline_hit:false ~attempts:k e
        else begin
          let delay = backoff_delay retry ~attempt:k in
          let over_deadline =
            match retry.deadline with
            | None -> false
            | Some d -> elapsed () +. delay > d
          in
          if over_deadline then give_up ~deadline_hit:true ~attempts:k e
          else begin
            Obs.Metrics.incr_counter m_retries;
            Obs.Trace.instant "pool.submit_retry";
            if delay > 0. then Unix.sleepf delay;
            attempt (k + 1)
          end
        end
  in
  attempt 1

(* --- stats ------------------------------------------------------------- *)

type worker_stats = { tasks : int; chunks : int; busy_ns : int; parked_ns : int }

type stats = {
  domains : int;
  submissions : int;
  sequential_runs : int;
  nested_runs : int;
  per_domain : worker_stats array;
}

let stats pool =
  {
    domains = size pool;
    submissions = pool.submissions;
    sequential_runs = Atomic.get pool.seq_runs;
    nested_runs = Atomic.get pool.nested_runs;
    per_domain =
      Array.map
        (fun ws ->
          {
            tasks = ws.ws_tasks;
            chunks = ws.ws_chunks;
            busy_ns = ws.ws_busy_ns;
            parked_ns = ws.ws_parked_ns;
          })
        pool.wstats;
  }

(* Global pool, shared by Numerics.Parallel and anything else that does
   not want to manage a pool of its own.  Grown on demand when a caller
   asks for more domains than it currently has; torn down at exit. *)
let global : t option ref = ref None
[@@nldl.allow "S201"] (* only touched from the orchestrating domain: workers
                         never call get_global, and pool creation/growth happens
                         before any parallel section runs *)

(* R401: [global :=] below shares the [global] binding's audit — pool
   creation/growth happens on the orchestrating domain before any
   parallel section runs, never from a worker. *)
let[@nldl.allow "R401"] get_global ?(at_least = 1) () =
  match !global with
  | Some pool ->
      if at_least > size pool then ensure pool ~domains:at_least;
      pool
  | None ->
      let pool = create ~domains:(max at_least (default_domains ())) () in
      global := Some pool;
      at_exit (fun () -> teardown pool);
      pool
