(** Persistent domain pool with chunked dynamic scheduling.

    [Numerics.Parallel]'s original helpers paid a [Domain.spawn] /
    [Domain.join] round-trip on every call and split the index range into
    fixed contiguous blocks.  This pool spawns its worker domains once,
    parks them on a condition variable between submissions, and hands out
    work in chunks claimed through a shared atomic index, so uneven tasks
    (buckets of different sizes, rows of different cost) load-balance
    dynamically.

    Submissions are synchronous: [parallel_for] returns once every index
    has run.  A pool must only receive submissions from one domain at a
    time (the experiment drivers and benches are single-threaded at the
    top level); nested submissions from inside a running body are safe
    and execute sequentially on the calling domain. *)

type t
(** A pool of worker domains.  The submitting domain always participates
    in the work, so a pool of size [d] runs bodies on up to [d] domains
    while owning only [d - 1] workers. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] parked worker domains
    (default {!default_domains}).  [domains <= 1] gives a pool that runs
    everything sequentially on the caller. *)

val size : t -> int
(** Number of domains the pool can use, including the caller. *)

val ensure : t -> domains:int -> unit
(** Grow the pool to at least [domains] domains (no-op if already that
    large or torn down).  Must not be called while a submission is in
    flight. *)

val teardown : t -> unit
(** Shut down and join all workers.  Idempotent.  A torn-down pool still
    accepts submissions but runs them sequentially. *)

val parallel_for : ?workers:int -> ?chunk:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n body] runs [body i] for [i] in [0 .. n-1].
    [?workers] caps how many domains participate (default: pool size);
    [?chunk] overrides the chunk size (default: enough chunks for ~8 per
    participant).  [body] must only touch disjoint state per index.  If a
    body raises, remaining chunks are skipped and the first exception is
    re-raised in the caller with its backtrace; the pool remains usable.
    Runs sequentially when [n <= 1], [workers = 1], the pool is torn
    down, or the call is nested inside another submission. *)

val parallel_map_array :
  ?workers:int -> ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Element-wise map with the same contract as {!parallel_for}. *)

val parallel_reduce :
  ?workers:int ->
  ?chunk:int ->
  t ->
  init:'a ->
  map:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  int ->
  'a
(** [parallel_reduce pool ~init ~map ~combine n] is
    [fold_left combine init (map 0 .. map (n-1))] for associative
    [combine].  Chunk geometry depends only on [n] (and [?chunk]), and
    per-chunk partials are combined in chunk order, so the result —
    including floating-point rounding — is identical at any domain
    count. *)

(** {2 Retrying submissions}

    The retry record is the shared failure vocabulary of the real and
    simulated execution paths: [Fault.Retry.t] aliases it, so
    [Mapreduce.Scheduler]'s task re-execution and [Pool.submit] are
    configured with the same type.  Delays are seconds here, simulated
    time units there. *)

type retry = {
  max_attempts : int;  (** total tries, >= 1 *)
  base_delay : float;  (** delay before the first retry; 0 = immediate *)
  max_delay : float;  (** cap on the exponential backoff *)
  deadline : float option;  (** stop retrying once this much time has elapsed *)
}

val default_retry : retry
(** 3 attempts, no delay, no deadline. *)

val backoff_delay : retry -> attempt:int -> float
(** Capped exponential backoff: [base_delay * 2^(attempt-1)], at most
    [max_delay]; 0 when [base_delay = 0].  [attempt] is the 1-based
    index of the attempt that just failed. *)

type quarantine = {
  attempts : int;  (** attempts actually made *)
  elapsed : float;  (** seconds from first attempt to giving up *)
  deadline_hit : bool;  (** the deadline, not the attempt cap, stopped us *)
  error : exn;  (** the last exception raised *)
}

val submit : ?retry:retry -> t -> (unit -> 'a) -> ('a, quarantine) result
(** [submit ~retry pool f] runs [f ()] (typically a closure performing
    {!parallel_for} submissions on [pool]) on the calling domain,
    retrying with capped exponential backoff when it raises.  After
    [retry.max_attempts] failures — or as soon as the next retry would
    overrun [retry.deadline] — the task is {e quarantined}: the pool's
    {!quarantined} counter is bumped, a ["pool.quarantine"] instant /
    metric is emitted, and the last exception is returned in the
    [Error].  Raises [Invalid_argument] on a malformed policy. *)

val quarantined : t -> int
(** Number of {!submit} calls quarantined since [create]. *)

val get_global : ?at_least:int -> unit -> t
(** The process-wide shared pool, created on first use (sized
    {!default_domains}, or [at_least] if larger) and torn down via
    [at_exit].  Grows if a later caller asks for more domains. *)

(** {2 Stats}

    Always-on per-pool counters on the shared monotonic clock
    ([Obs.Clock]); recording costs two clock reads and a few plain
    stores per submission, no allocation.  Spans ([pool.parallel_for],
    [pool.worker.run]) and the [pool.submit_latency_ns] histogram are
    additionally emitted when [Obs.Trace] / [Obs.Metrics] are
    enabled. *)

type worker_stats = {
  tasks : int;  (** submissions this slot ran chunks for *)
  chunks : int;  (** chunks claimed through the atomic index *)
  busy_ns : int;  (** time spent running chunks (slot 0: whole submissions) *)
  parked_ns : int;  (** workers only: time parked between submissions *)
}

type stats = {
  domains : int;
  submissions : int;  (** parallel submissions completed *)
  sequential_runs : int;
      (** calls that ran sequentially: [n <= 1], [workers = 1], torn
          down, or nested *)
  nested_runs : int;  (** the nested subset of [sequential_runs] *)
  per_domain : worker_stats array;
      (** slot 0 is the submitting domain, then one slot per worker in
          spawn order *)
}

val stats : t -> stats
(** A copy of the counters.  Counters accumulate from [create] for the
    pool's whole lifetime: {!ensure} appends zeroed slots for the new
    workers and preserves existing ones, and {!teardown} does not reset
    anything — joined workers simply stop accumulating, while the
    sequential fallback of a torn-down pool still counts into
    [sequential_runs].  Exact when read between submissions (the
    documented single-submitter contract); a read that races a running
    submission may lag by the in-flight updates. *)
