(** Request batching, admission control and cache management: the
    daemon's engine, factored out of the socket loop so tests and the
    bench can drive it in-process.

    Every answer is the canonical {!Api.Response.to_line} rendering, so
    a cached response is byte-identical to a cold solve and to
    [nldl query --inline]. *)

type config = {
  cache_capacity : int;  (** LRU entries; > 0 *)
  max_inflight : int;  (** domains evaluating a batch concurrently; > 0 *)
  queue_depth : int;  (** cache misses admitted per batch; overflow is rejected *)
  deadline_s : float option;  (** per-request wall-clock budget *)
}

val default_config : config
(** 1024 entries, pool-sized inflight, depth 256, no deadline. *)

type t

val create : ?pool:Exec.Pool.t -> config -> t
(** [pool] defaults to {!Exec.Pool.get_global}.  Raises
    [Invalid_argument] on a non-positive capacity, inflight or
    depth. *)

val handle_line : t -> string -> string
(** Answer one raw request line (no trailing newline).  Repeats of a
    byte-identical line are answered from the memo with zero
    allocation; semantically-equal spellings hit the fingerprint LRU.
    Misses are solved under [Exec.Pool.submit ~retry] with the
    configured deadline; failures come back as [Error]-body response
    lines, never exceptions. *)

val handle_batch : t -> string array -> string array
(** Answer a batch: hits resolve first, then the admitted misses are
    evaluated concurrently on the pool ([max_inflight] wide) and
    inserted into the cache.  Misses beyond [queue_depth] are rejected
    with an ["overloaded"] error.  Responses are in request order. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val requests : t -> int

val stats_json : t -> Obs.Json.t
(** Counters, cache occupancy and the latency histogram's quantiles —
    the payload of the daemon's [{"control":"stats"}] query. *)
