type node = {
  key : string;
  mutable line : string;
  mutable raws : string list;  (* memoized raw spellings, evicted with the node *)
  mutable prev : node;
  mutable next : node;
}

type t = {
  cap : int;
  table : (string, node) Hashtbl.t;
  memo : (string, node) Hashtbl.t;
  sentinel : node;  (* sentinel.next = MRU, sentinel.prev = LRU *)
  mutable count : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable evict_count : int;
}

exception Miss

let metric_hits = Obs.Metrics.counter "serve.cache.hits"
let metric_misses = Obs.Metrics.counter "serve.cache.misses"
let metric_evictions = Obs.Metrics.counter "serve.cache.evictions"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  let rec sentinel = { key = ""; line = ""; raws = []; prev = sentinel; next = sentinel } in
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    memo = Hashtbl.create (2 * capacity);
    sentinel;
    count = 0;
    hit_count = 0;
    miss_count = 0;
    evict_count = 0;
  }

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let touch t n =
  if t.sentinel.next != n then begin
    unlink n;
    push_front t n
  end

let record_hit t =
  t.hit_count <- t.hit_count + 1;
  Obs.Metrics.incr_counter metric_hits

let find t key =
  match Hashtbl.find t.table key with
  | n ->
      touch t n;
      record_hit t;
      n.line
  | exception Not_found ->
      t.miss_count <- t.miss_count + 1;
      Obs.Metrics.incr_counter metric_misses;
      raise Miss

let find_memo t raw =
  match Hashtbl.find t.memo raw with
  | n ->
      touch t n;
      record_hit t;
      n.line
  | exception Not_found -> raise Miss

let evict_lru t =
  let n = t.sentinel.prev in
  if n != t.sentinel then begin
    unlink n;
    Hashtbl.remove t.table n.key;
    List.iter (Hashtbl.remove t.memo) n.raws;
    t.count <- t.count - 1;
    t.evict_count <- t.evict_count + 1;
    Obs.Metrics.incr_counter metric_evictions
  end

let insert t ~key ~line =
  (match Hashtbl.find_opt t.table key with
  | Some n ->
      n.line <- line;
      touch t n
  | None ->
      if t.count >= t.cap then evict_lru t;
      let rec n = { key; line; raws = []; prev = n; next = n } in
      Hashtbl.replace t.table key n;
      push_front t n;
      t.count <- t.count + 1)

let memoize t ~raw ~key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
      if not (Hashtbl.mem t.memo raw) then begin
        Hashtbl.replace t.memo raw n;
        n.raws <- raw :: n.raws
      end

let size t = t.count
let capacity t = t.cap
let hits t = t.hit_count
let misses t = t.miss_count
let evictions t = t.evict_count
