type t = { fd : Unix.file_descr; ic : in_channel }

let wrap fd = { fd; ic = Unix.in_channel_of_descr fd }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  wrap fd

let connect_tcp ?(host = "127.0.0.1") port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  wrap fd

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let request t line =
  write_all t.fd (line ^ "\n");
  input_line t.ic

let close t = try close_in t.ic with Sys_error _ -> ()
