module Json = Obs.Json

(* R403: the accept loop runs on a dedicated I/O domain ([Domain.spawn]
   in [run], not a pool worker); blocking in select/accept/read is that
   domain's entire job.  Solver work is handed to the pool via
   [Batch], which never blocks. *)
[@@@nldl.allow "R403"]

type config = {
  socket_path : string;
  tcp_port : int option;
  batch : Batch.config;
}

let default_socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nldl-serve-%d.sock" (Unix.getpid ()))

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received, not yet terminated by '\n' *)
}

(* One poll round: read whatever each ready client has, split complete
   lines off its buffer.  Returns the lines in arrival order tagged
   with their client, plus the clients that disconnected. *)
let drain_ready clients ready =
  let chunk = Bytes.create 65536 in
  let lines = ref [] in
  let closed = ref [] in
  List.iter
    (fun c ->
      if List.memq c.fd ready then
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> closed := c :: !closed
        | n ->
            for i = 0 to n - 1 do
              let ch = Bytes.get chunk i in
              if ch = '\n' then begin
                lines := (c, Buffer.contents c.buf) :: !lines;
                Buffer.clear c.buf
              end
              else Buffer.add_char c.buf ch
            done
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            closed := c :: !closed)
    clients;
  (List.rev !lines, !closed)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  (try
     while !off < len do
       off := !off + Unix.write fd b !off (len - !off)
     done
   with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ())

let control_of_line line =
  match Json.of_string line with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "control" fields with
      | Some (Json.String c) -> Some c
      | _ -> None)
  | _ -> None

let pong = Json.to_compact (Json.Obj [ ("control", Json.String "pong") ])
let ok = Json.to_compact (Json.Obj [ ("control", Json.String "ok") ])

let unknown_control c =
  Api.Response.to_line
    (Api.Response.error ~code:"bad_request" (Printf.sprintf "unknown control %S" c))

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let run ?pool ?(on_ready = fun () -> ()) cfg =
  let engine = Batch.create ?pool cfg.batch in
  let unix_fd = listen_unix cfg.socket_path in
  let tcp_fd = Option.map listen_tcp cfg.tcp_port in
  let listeners = unix_fd :: Option.to_list tcp_fd in
  let clients = ref [] in
  let running = ref true in
  on_ready ();
  while !running do
    let watched = listeners @ List.map (fun c -> c.fd) !clients in
    match Unix.select watched [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun lfd ->
            if List.memq lfd ready then
              match Unix.accept lfd with
              | fd, _ -> clients := { fd; buf = Buffer.create 256 } :: !clients
              | exception Unix.Unix_error _ -> ())
          listeners;
        let lines, closed = drain_ready !clients ready in
        List.iter
          (fun c ->
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            clients := List.filter (fun c' -> c' != c) !clients)
          closed;
        (* Control lines answer immediately; the rest of the round's
           lines form one batch across all clients. *)
        let queries = ref [] in
        List.iter
          (fun (c, line) ->
            match control_of_line line with
            | Some "ping" -> write_all c.fd (pong ^ "\n")
            | Some "stats" ->
                write_all c.fd (Json.to_compact (Batch.stats_json engine) ^ "\n")
            | Some "shutdown" ->
                write_all c.fd (ok ^ "\n");
                running := false
            | Some other -> write_all c.fd (unknown_control other ^ "\n")
            | None -> queries := (c, line) :: !queries)
          lines;
        let queries = Array.of_list (List.rev !queries) in
        if Array.length queries > 0 then begin
          let answers = Batch.handle_batch engine (Array.map snd queries) in
          Array.iteri (fun i (c, _) -> write_all c.fd (answers.(i) ^ "\n")) queries
        end
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  engine
