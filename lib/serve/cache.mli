(** Bounded LRU response cache with an allocation-free hit path.

    Two lookup levels back the daemon:

    - a {e memo} table keyed on the raw request line, hit when a client
      repeats a byte-identical query — the fast path the serve bench
      measures and the Gc test pins to zero minor words;
    - the main table keyed on {!Api.Fingerprint.of_request}, hit when a
      semantically equal request arrives spelled differently (permuted
      speeds, reordered JSON fields).  A fingerprint hit memoizes the
      new spelling, so the next repeat takes the fast path.

    Recency is an intrusive doubly-linked list threaded through the
    nodes with a sentinel, so a hit is two hashtable probes at most and
    a handful of pointer swaps — no allocation.  Eviction removes the
    least recently used node from both tables.

    Not thread-safe: only the daemon's accept loop mutates it. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

exception Miss

val find : t -> string -> string
(** [find t key] is the cached response line for fingerprint [key],
    promoting the entry to most recently used.  Raises {!Miss} (a
    constant — no allocation) otherwise.  Counts a hit or a miss. *)

val find_memo : t -> string -> string
(** Like {!find} but keyed on the raw request line.  A memo miss does
    NOT count a miss (the caller falls through to {!find}). *)

val insert : t -> key:string -> line:string -> unit
(** Insert a response for fingerprint [key] as most recently used,
    evicting the LRU entry when full.  Replaces any existing entry. *)

val memoize : t -> raw:string -> key:string -> unit
(** Bind raw request line [raw] to the node for [key] (no-op if the
    key is absent), so future byte-identical repeats hit the memo. *)

val size : t -> int
val capacity : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
