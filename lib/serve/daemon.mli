(** The [nldl serve] accept loop: a line protocol over a Unix-domain
    socket (and optionally TCP on localhost), one JSON request per
    line, one canonical {!Api.Response} line back, in order.

    All complete lines collected in one poll round form a batch for
    {!Batch.handle_batch}, so concurrent clients share the pool fan-out
    and the cache.  Control queries bypass the solver:

    - [{"control":"ping"}] → [{"control":"pong"}]
    - [{"control":"stats"}] → the {!Batch.stats_json} payload
    - [{"control":"shutdown"}] → [{"control":"ok"}], then the daemon
      drains, closes every socket, unlinks the path and returns. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** also listen on 127.0.0.1:port ([--http]) *)
  batch : Batch.config;
}

val default_socket_path : unit -> string
(** [$TMPDIR/nldl-serve-<pid>.sock]. *)

val run : ?pool:Exec.Pool.t -> ?on_ready:(unit -> unit) -> config -> Batch.t
(** Bind, listen, call [on_ready], serve until a shutdown control line
    (or [Exit]), then tear down and return the engine so the caller can
    report final stats.  Raises [Unix.Unix_error] if binding fails. *)
