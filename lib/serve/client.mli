(** Minimal blocking client for the daemon's line protocol, used by the
    serve tests, the bench and [nldl query --socket]. *)

type t

val connect_unix : string -> t
val connect_tcp : ?host:string -> int -> t
(** [host] defaults to ["127.0.0.1"]. *)

val request : t -> string -> string
(** Send one request line (newline appended) and block for the
    response line (returned without the newline).  Raises
    [End_of_file] if the daemon closes the connection first. *)

val close : t -> unit
