module Json = Obs.Json

type config = {
  cache_capacity : int;
  max_inflight : int;
  queue_depth : int;
  deadline_s : float option;
}

let default_config =
  {
    cache_capacity = 1024;
    max_inflight = Exec.Pool.default_domains ();
    queue_depth = 256;
    deadline_s = None;
  }

type t = {
  cfg : config;
  pool : Exec.Pool.t;
  cache : Cache.t;
  latency : Obs.Hist.t;
  metric_requests : Obs.Metrics.counter;
  metric_rejected : Obs.Metrics.counter;
  mutable request_count : int;
  mutable rejected_count : int;
}

let create ?pool cfg =
  if cfg.max_inflight <= 0 then invalid_arg "Batch.create: max_inflight must be positive";
  if cfg.queue_depth <= 0 then invalid_arg "Batch.create: queue_depth must be positive";
  let pool = match pool with Some p -> p | None -> Exec.Pool.get_global () in
  {
    cfg;
    pool;
    cache = Cache.create ~capacity:cfg.cache_capacity;
    latency = Obs.Hist.create "serve.latency_ns";
    metric_requests = Obs.Metrics.counter "serve.requests";
    metric_rejected = Obs.Metrics.counter "serve.rejected";
    request_count = 0;
    rejected_count = 0;
  }

let error_line ?solver ~code msg =
  Api.Response.to_line (Api.Response.error ?solver ~code msg)

let deadline_ns cfg =
  match cfg.deadline_s with None -> max_int | Some d -> int_of_float (d *. 1e9)

(* A request whose wall-clock budget is already spent is rejected before
   any solver work — this is what makes [deadline_s = Some 0.] an
   admission test rather than a race. *)
let expired t ~t0 = Obs.Clock.now_ns () - t0 > deadline_ns t.cfg

let count_rejected t =
  t.rejected_count <- t.rejected_count + 1;
  Obs.Metrics.incr_counter t.metric_rejected

let solve_guarded t ~t0 req =
  if expired t ~t0 then begin
    count_rejected t;
    Api.Response.error ~code:"deadline" "per-request deadline exceeded before solve"
  end
  else
    let retry = { Exec.Pool.default_retry with deadline = t.cfg.deadline_s } in
    match Exec.Pool.submit ~retry t.pool (fun () -> Api.Eval.eval req) with
    | Ok resp -> resp
    | Error q ->
        let code = if q.Exec.Pool.deadline_hit then "deadline" else "solver_failure" in
        if q.Exec.Pool.deadline_hit then count_rejected t;
        Api.Response.error ~code (Printexc.to_string q.Exec.Pool.error)

let count_request t =
  t.request_count <- t.request_count + 1;
  Obs.Metrics.incr_counter t.metric_requests

let record_latency t t0 = Obs.Hist.record t.latency (Obs.Clock.now_ns () - t0)

let handle_miss t ~t0 ~raw req key =
  let resp = solve_guarded t ~t0 req in
  let line = Api.Response.to_line resp in
  if not (Api.Response.is_error resp) then begin
    Cache.insert t.cache ~key ~line;
    Cache.memoize t.cache ~raw ~key
  end;
  line

let slow_path t ~t0 raw =
  let line =
    match Api.Request.of_line raw with
    | Error msg -> error_line ~solver:"api.parse" ~code:"bad_request" msg
    | Ok req -> (
        let key = Api.Fingerprint.of_request req in
        match Cache.find t.cache key with
        | line ->
            Cache.memoize t.cache ~raw ~key;
            line
        | exception Cache.Miss -> handle_miss t ~t0 ~raw req key)
  in
  record_latency t t0;
  line

let handle_line t raw =
  let t0 = Obs.Clock.now_ns () in
  count_request t;
  match Cache.find_memo t.cache raw with
  | line ->
      record_latency t t0;
      line
  | exception Cache.Miss -> slow_path t ~t0 raw

type pending = {
  p_index : int;
  p_raw : string;
  p_req : Api.Request.t;
  p_key : string;
  mutable p_followers : (int * string) list;  (* same-key repeats within the batch *)
}

let handle_batch t lines =
  let n = Array.length lines in
  let t0 = Obs.Clock.now_ns () in
  let out = Array.make n "" in
  let by_key : (string, pending) Hashtbl.t = Hashtbl.create 16 in
  let misses = ref [] in
  let admitted = ref 0 in
  for i = 0 to n - 1 do
    let raw = lines.(i) in
    count_request t;
    match Cache.find_memo t.cache raw with
    | line -> out.(i) <- line
    | exception Cache.Miss -> (
        match Api.Request.of_line raw with
        | Error msg -> out.(i) <- error_line ~solver:"api.parse" ~code:"bad_request" msg
        | Ok req -> (
            let key = Api.Fingerprint.of_request req in
            match Cache.find t.cache key with
            | line ->
                Cache.memoize t.cache ~raw ~key;
                out.(i) <- line
            | exception Cache.Miss -> (
                match Hashtbl.find_opt by_key key with
                | Some p -> p.p_followers <- (i, raw) :: p.p_followers
                | None ->
                    if !admitted >= t.cfg.queue_depth then begin
                      count_rejected t;
                      out.(i) <-
                        error_line ~code:"overloaded"
                          (Printf.sprintf "queue depth %d exceeded" t.cfg.queue_depth)
                    end
                    else if expired t ~t0 then begin
                      count_rejected t;
                      out.(i) <-
                        error_line ~code:"deadline"
                          "per-request deadline exceeded before solve"
                    end
                    else begin
                      incr admitted;
                      let p =
                        {
                          p_index = i;
                          p_raw = raw;
                          p_req = req;
                          p_key = key;
                          p_followers = [];
                        }
                      in
                      Hashtbl.add by_key key p;
                      misses := p :: !misses
                    end)))
  done;
  let miss_arr = Array.of_list (List.rev !misses) in
  let solved =
    Exec.Pool.parallel_map_array ~workers:t.cfg.max_inflight t.pool
      (fun p ->
        ( p,
          try Api.Eval.eval p.p_req
          with e -> Api.Response.error ~code:"solver_failure" (Printexc.to_string e) ))
      miss_arr
  in
  Array.iter
    (fun (p, resp) ->
      let line = Api.Response.to_line resp in
      out.(p.p_index) <- line;
      if not (Api.Response.is_error resp) then begin
        Cache.insert t.cache ~key:p.p_key ~line;
        Cache.memoize t.cache ~raw:p.p_raw ~key:p.p_key
      end;
      List.iter
        (fun (j, raw) ->
          out.(j) <- line;
          if not (Api.Response.is_error resp) then Cache.memoize t.cache ~raw ~key:p.p_key)
        p.p_followers)
    solved;
  record_latency t t0;
  out

let hits t = Cache.hits t.cache
let misses t = Cache.misses t.cache
let evictions t = Cache.evictions t.cache
let requests t = t.request_count

let stats_json t =
  let s = Obs.Hist.snapshot_one t.latency in
  Json.Obj
    [
      ("requests", Json.Int t.request_count);
      ("rejected", Json.Int t.rejected_count);
      ("cache_hits", Json.Int (Cache.hits t.cache));
      ("cache_misses", Json.Int (Cache.misses t.cache));
      ("cache_evictions", Json.Int (Cache.evictions t.cache));
      ("cache_size", Json.Int (Cache.size t.cache));
      ("cache_capacity", Json.Int (Cache.capacity t.cache));
      ( "latency_ns",
        Json.Obj
          [
            ("count", Json.Int s.Obs.Hist.count);
            ("mean", Json.Float (Obs.Hist.mean s));
            ("p50", Json.Int (Obs.Hist.quantile s 0.5));
            ("p99", Json.Int (Obs.Hist.quantile s 0.99));
            ("max", Json.Int s.Obs.Hist.max_v);
          ] );
    ]
