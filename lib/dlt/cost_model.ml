(* The [n = 0.] / [a = 1.] tests below are exact boundary-case guards
   (0 ** alpha and the alpha = 1 degenerate model), not tolerance
   comparisons. *)
[@@@nldl.allow "H302"]

type t = Linear | Power of float | N_log_n

let log2 x = log x /. log 2.

let work t n =
  assert (n >= 0.);
  match t with
  | Linear -> n
  | Power alpha -> if n = 0. then 0. else n ** alpha
  | N_log_n -> if n <= 1. then 0. else n *. log2 n

let work_derivative t n =
  match t with
  | Linear -> 1.
  | Power alpha -> if n = 0. then 0. else alpha *. (n ** (alpha -. 1.))
  | N_log_n -> if n <= 1. then 0. else log2 n +. (1. /. log 2.)

let is_linear = function Linear -> true | Power _ | N_log_n -> false

let alpha = function
  | Linear -> Some 1.
  | Power a -> Some a
  | N_log_n -> None

let of_alpha a =
  if a < 1. then invalid_arg "Cost_model.of_alpha: alpha must be >= 1";
  if a = 1. then Linear else Power a

let name = function
  | Linear -> "linear"
  | Power a -> Printf.sprintf "power(%.3g)" a
  | N_log_n -> "nlogn"

let pp ppf t = Format.pp_print_string ppf (name t)
