type event =
  | Crash of { worker : int; time : float }
  | Recover of { worker : int; time : float }
  | Fetch_failure of { worker : int; task : int; attempt : int; time : float }
  | Task_retry of { task : int; attempt : int; time : float }
  | Quarantine of { worker : int; task : int; time : float }

type tally = {
  crashes : int;
  recoveries : int;
  fetch_failures : int;
  retries : int;
  quarantines : int;
}

type t = {
  plan : Plan.t;
  mutable events : event list;  (* reverse recording order *)
  mutable tally : tally;
  sink : (event -> unit) option;
}

let m_crashes = Obs.Metrics.counter "fault.crashes"
let m_recoveries = Obs.Metrics.counter "fault.recoveries"
let m_fetch_failures = Obs.Metrics.counter "fault.fetch_failures"
let m_retries = Obs.Metrics.counter "fault.task_retries"
let m_quarantines = Obs.Metrics.counter "fault.quarantines"

let zero_tally =
  { crashes = 0; recoveries = 0; fetch_failures = 0; retries = 0; quarantines = 0 }

let create ?sink plan = { plan; events = []; tally = zero_tally; sink }
let plan t = t.plan

let record t ev =
  t.events <- ev :: t.events;
  let y = t.tally in
  (match ev with
  | Crash _ ->
      t.tally <- { y with crashes = y.crashes + 1 };
      Obs.Metrics.incr_counter m_crashes;
      Obs.Trace.instant "fault.crash"
  | Recover _ ->
      t.tally <- { y with recoveries = y.recoveries + 1 };
      Obs.Metrics.incr_counter m_recoveries;
      Obs.Trace.instant "fault.recover"
  | Fetch_failure _ ->
      t.tally <- { y with fetch_failures = y.fetch_failures + 1 };
      Obs.Metrics.incr_counter m_fetch_failures;
      Obs.Trace.instant "fault.fetch_failure"
  | Task_retry _ ->
      t.tally <- { y with retries = y.retries + 1 };
      Obs.Metrics.incr_counter m_retries;
      Obs.Trace.instant "fault.task_retry"
  | Quarantine _ ->
      t.tally <- { y with quarantines = y.quarantines + 1 };
      Obs.Metrics.incr_counter m_quarantines;
      Obs.Trace.instant "fault.quarantine");
  match t.sink with None -> () | Some f -> f ev

let events t = List.rev t.events
let counts t = t.tally

let arm t engine ?on_recover ~on_crash () =
  List.iter
    (fun (c : Plan.crash) ->
      Des.Engine.schedule engine ~time:c.at (fun eng ->
          record t (Crash { worker = c.worker; time = c.at });
          on_crash ~worker:c.worker eng);
      match (c.recovery, on_recover) with
      | Some r, Some f ->
          Des.Engine.schedule engine ~time:r (fun eng ->
              record t (Recover { worker = c.worker; time = r });
              f ~worker:c.worker eng)
      | _ -> ())
    (Plan.crashes t.plan)

let time_of = function
  | Crash { time; _ }
  | Recover { time; _ }
  | Fetch_failure { time; _ }
  | Task_retry { time; _ }
  | Quarantine { time; _ } ->
      time

let pp_event ppf = function
  | Crash { worker; time } -> Format.fprintf ppf "t=%g crash worker %d" time worker
  | Recover { worker; time } -> Format.fprintf ppf "t=%g recover worker %d" time worker
  | Fetch_failure { worker; task; attempt; time } ->
      Format.fprintf ppf "t=%g fetch failure worker %d task %d attempt %d" time worker
        task attempt
  | Task_retry { task; attempt; time } ->
      Format.fprintf ppf "t=%g retry task %d (attempt %d)" time task attempt
  | Quarantine { worker; task; time } ->
      Format.fprintf ppf "t=%g quarantine worker %d / task %d" time worker task
