(** Deterministic fault plans.

    A plan is a pure, immutable description of every fault a run will
    inject: permanent or recoverable {e worker crashes} at fixed
    simulated times, {e transient slowdown windows} (a worker computes
    [factor] times slower inside the window — the stragglers of Dean &
    Ghemawat and of LATE), and {e fetch failures} with a per-link
    probability.  All randomness is fixed when the plan is built:
    crash/slowdown placement is drawn from the seeded [Numerics.Rng]
    passed to {!generate}, and per-attempt fetch-failure decisions are
    a pure hash of [(plan salt, worker, attempt counter)] — so replay
    is byte-identical no matter how many domains run trials
    concurrently or in which order links are queried. *)

type crash = {
  worker : int;
  at : float;  (** crash instant (simulated time) *)
  recovery : float option;  (** rejoin instant; [None] = permanent *)
}

type slowdown = {
  worker : int;
  from_time : float;
  until : float;
  factor : float;  (** computation runs [factor >= 1] times slower *)
}

type t

val none : t
(** The empty plan: no faults, valid for any platform size. *)

val make :
  ?crashes:crash list ->
  ?slowdowns:slowdown list ->
  ?fetch_failure:(int * float) list ->
  ?seed:int ->
  p:int ->
  unit ->
  t
(** Build an explicit plan for a [p]-worker platform.  [fetch_failure]
    maps worker index to the probability that one fetch attempt on its
    link fails; [seed] salts the per-attempt failure hash.  Raises
    [Invalid_argument] on out-of-range workers, probabilities outside
    [\[0, 1\]], factors [< 1], empty or inverted windows, overlapping
    windows or crash intervals on one worker, or a non-final permanent
    crash. *)

val generate :
  rng:Numerics.Rng.t ->
  p:int ->
  horizon:float ->
  ?crash_rate:float ->
  ?downtime:float ->
  ?permanent:bool ->
  ?slowdown_rate:float ->
  ?slowdown_factor:float ->
  ?fetch_failure:float ->
  unit ->
  t
(** Draw a random plan: each worker crashes with probability
    [crash_rate] (default 0) at a uniform time in [\[0, horizon)],
    recovering after [downtime] (default [horizon /. 4.]; ignored when
    [permanent], default false); each worker gets, with probability
    [slowdown_rate] (default 0), one slowdown window of factor
    [slowdown_factor] (default 4) covering a uniform quarter of the
    horizon; every link fails each fetch attempt with probability
    [fetch_failure] (default 0).  All draws come from [rng] in a fixed
    order, so the same seed yields the same plan. *)

val p : t -> int
(** Worker count the plan addresses (0 for {!none}). *)

val is_none : t -> bool
(** No crash, no slowdown, no failing link. *)

val crashes : t -> crash list
(** All crashes, sorted by time (ties: worker index). *)

val slowdowns : t -> slowdown list

val fetch_failure : t -> worker:int -> float
(** Per-attempt failure probability of the link to [worker]. *)

val fetch_fails : t -> worker:int -> attempt:int -> bool
(** Whether the [attempt]-th fetch ever issued on [worker]'s link
    fails: a pure hash decision, independent of query order. *)

val next_crash : t -> worker:int -> after:float -> crash option
(** First crash of [worker] with [at >= after]. *)

val available : t -> worker:int -> time:float -> bool
(** [false] while [time] falls in a crash's [\[at, recovery)] interval
    (or past a permanent crash). *)

val factor_at : t -> worker:int -> time:float -> float
(** Compute-slowdown factor in effect at [time] (1 outside windows). *)

val advance : t -> worker:int -> start:float -> duration:float -> float
(** Completion instant of [duration] seconds of unslowed computation
    started at [start], stretched through the worker's slowdown
    windows.  Crashes are {e not} applied here — truncate with
    {!next_crash}. *)

val work_between : t -> worker:int -> start:float -> until:float -> float
(** Inverse of {!advance}: unslowed-equivalent seconds of computation
    accumulated over [\[start, until\]] — the progress observations the
    LATE-style scheduler extrapolates from. *)
