(** Retry/backoff policy — the shared vocabulary of the real and
    simulated execution paths.

    The type is an alias of [Exec.Pool.retry], so the policy handed to
    [Pool.submit ~retry] (real domains, delays in seconds) and the one
    inside [Mapreduce.Scheduler.config] (simulated platform, delays in
    simulated time units) are literally the same record. *)

type t = Exec.Pool.retry = {
  max_attempts : int;  (** total tries, >= 1 *)
  base_delay : float;  (** delay before the first retry; 0 = immediate *)
  max_delay : float;  (** cap on the exponential backoff *)
  deadline : float option;  (** stop retrying past this elapsed time *)
}

val default : t
(** [Exec.Pool.default_retry]: 3 attempts, no delay, no deadline. *)

val delay : t -> attempt:int -> float
(** Capped exponential backoff after the [attempt]-th (1-based)
    failure: [base_delay * 2^(attempt-1)], at most [max_delay]. *)
