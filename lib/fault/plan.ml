(* Deterministic fault plans: every injected fault is fixed at plan
   construction.  Fetch-failure decisions are a pure splitmix64 hash of
   (salt, worker, per-link attempt counter) rather than draws from a
   live generator, so replay does not depend on the order in which the
   scheduler happens to query links. *)

type crash = { worker : int; at : float; recovery : float option }
type slowdown = { worker : int; from_time : float; until : float; factor : float }

type t = {
  p : int;
  crashes : crash array;  (* sorted by (at, worker) *)
  by_worker : crash list array;  (* per worker, sorted by at *)
  slowdowns : slowdown list array;  (* per worker, sorted, non-overlapping *)
  fetch_failure : float array;  (* length p *)
  salt : int64;
}

let none =
  {
    p = 0;
    crashes = [||];
    by_worker = [||];
    slowdowns = [||];
    fetch_failure = [||];
    salt = 0L;
  }

let default_seed = 0x7fddd4d5

(* splitmix64 finalizer: a high-quality 64-bit mixer. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float h =
  (* top 53 bits to [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let validate ~p crashes slowdowns fetch_failure =
  let check_worker what w =
    if w < 0 || w >= p then
      invalid_arg (Printf.sprintf "Fault.Plan: %s names worker %d outside [0, %d)" what w p)
  in
  List.iter
    (fun (c : crash) ->
      check_worker "crash" c.worker;
      if c.at < 0. || not (Float.is_finite c.at) then
        invalid_arg "Fault.Plan: crash time must be finite and >= 0";
      match c.recovery with
      | Some r when r <= c.at || not (Float.is_finite r) ->
          invalid_arg "Fault.Plan: crash recovery must be finite and after the crash"
      | _ -> ())
    crashes;
  List.iter
    (fun (s : slowdown) ->
      check_worker "slowdown" s.worker;
      if s.from_time < 0. || s.until <= s.from_time || not (Float.is_finite s.until) then
        invalid_arg "Fault.Plan: slowdown window must be non-empty, finite and >= 0";
      if s.factor < 1. || not (Float.is_finite s.factor) then
        invalid_arg "Fault.Plan: slowdown factor must be >= 1")
    slowdowns;
  List.iter
    (fun (w, q) ->
      check_worker "fetch_failure" w;
      if q < 0. || q > 1. || Float.is_nan q then
        invalid_arg "Fault.Plan: fetch-failure probability must be in [0, 1]")
    fetch_failure

let group_by_worker ~p items worker =
  let per = Array.make p [] in
  List.iter (fun x -> per.(worker x) <- x :: per.(worker x)) items;
  per

let make ?(crashes = []) ?(slowdowns = []) ?(fetch_failure = []) ?(seed = default_seed)
    ~p () =
  if p <= 0 then invalid_arg "Fault.Plan.make: p must be > 0";
  validate ~p crashes slowdowns fetch_failure;
  let by_worker = group_by_worker ~p crashes (fun c -> c.worker) in
  Array.iteri
    (fun w cs ->
      let cs = List.sort (fun a b -> compare a.at b.at) cs in
      (* crash intervals on one worker must not overlap, and a
         permanent crash must be the last one *)
      let rec check = function
        | { recovery = None; _ } :: _ :: _ ->
            invalid_arg "Fault.Plan: permanent crash followed by another crash"
        | { recovery = Some r; _ } :: (next :: _ as rest) ->
            if next.at < r then invalid_arg "Fault.Plan: overlapping crash intervals";
            check rest
        | _ -> ()
      in
      check cs;
      by_worker.(w) <- cs)
    by_worker;
  let per_slow = group_by_worker ~p slowdowns (fun s -> s.worker) in
  Array.iteri
    (fun w ss ->
      let ss = List.sort (fun a b -> compare a.from_time b.from_time) ss in
      let rec check = function
        | a :: (b :: _ as rest) ->
            if b.from_time < a.until then
              invalid_arg "Fault.Plan: overlapping slowdown windows";
            check rest
        | _ -> ()
      in
      check ss;
      per_slow.(w) <- ss)
    per_slow;
  let ff = Array.make p 0. in
  List.iter (fun (w, q) -> ff.(w) <- q) fetch_failure;
  let sorted =
    List.sort (fun a b -> compare (a.at, a.worker) (b.at, b.worker)) crashes
  in
  {
    p;
    crashes = Array.of_list sorted;
    by_worker;
    slowdowns = per_slow;
    fetch_failure = ff;
    salt = mix64 (Int64.of_int seed);
  }

let generate ~rng ~p ~horizon ?(crash_rate = 0.) ?downtime ?(permanent = false)
    ?(slowdown_rate = 0.) ?(slowdown_factor = 4.) ?(fetch_failure = 0.) () =
  if p <= 0 then invalid_arg "Fault.Plan.generate: p must be > 0";
  if horizon <= 0. || not (Float.is_finite horizon) then
    invalid_arg "Fault.Plan.generate: horizon must be finite and > 0";
  let downtime = match downtime with Some d -> d | None -> horizon /. 4. in
  if downtime <= 0. then invalid_arg "Fault.Plan.generate: downtime must be > 0";
  let crashes = ref [] and slowdowns = ref [] in
  (* one pass per worker, fixed draw order: crash coin, crash time,
     slowdown coin, slowdown start — so a given seed always yields the
     same plan *)
  for w = 0 to p - 1 do
    let crash_coin = Numerics.Rng.float rng in
    let crash_time = Numerics.Rng.uniform rng 0. horizon in
    let slow_coin = Numerics.Rng.float rng in
    let slow_start = Numerics.Rng.uniform rng 0. (0.75 *. horizon) in
    if crash_coin < crash_rate then
      crashes :=
        {
          worker = w;
          at = crash_time;
          recovery = (if permanent then None else Some (crash_time +. downtime));
        }
        :: !crashes;
    if slow_coin < slowdown_rate then
      slowdowns :=
        {
          worker = w;
          from_time = slow_start;
          until = slow_start +. (0.25 *. horizon);
          factor = slowdown_factor;
        }
        :: !slowdowns
  done;
  let salt_seed = Int64.to_int (Numerics.Rng.int64 rng) in
  let ff = List.init p (fun w -> (w, fetch_failure)) in
  make ~crashes:!crashes ~slowdowns:!slowdowns ~fetch_failure:ff ~seed:salt_seed ~p ()

let p t = t.p
let crashes t = Array.to_list t.crashes
let slowdowns t = Array.to_list t.slowdowns |> List.concat

let is_none t =
  Array.length t.crashes = 0
  && Array.for_all (fun l -> l = []) t.slowdowns
  && Array.for_all (fun q -> (q = 0.) [@nldl.allow "H302"] (* exact: unset *)) t.fetch_failure

let in_range t w = w >= 0 && w < t.p

let fetch_failure t ~worker =
  if in_range t worker then t.fetch_failure.(worker) else 0.

let fetch_fails t ~worker ~attempt =
  let q = fetch_failure t ~worker in
  if q <= 0. then false
  else if q >= 1. then true
  else begin
    let h =
      mix64
        (Int64.add t.salt
           (Int64.add
              (Int64.mul (Int64.of_int worker) 0x9e3779b97f4a7c15L)
              (Int64.mul (Int64.of_int attempt) 0xd1b54a32d192ed03L)))
    in
    unit_float h < q
  end

let next_crash t ~worker ~after =
  if not (in_range t worker) then None
  else List.find_opt (fun c -> c.at >= after) t.by_worker.(worker)

let available t ~worker ~time =
  if not (in_range t worker) then true
  else
    not
      (List.exists
         (fun c ->
           time >= c.at
           && match c.recovery with None -> true | Some r -> time < r)
         t.by_worker.(worker))

let factor_at t ~worker ~time =
  if not (in_range t worker) then 1.
  else
    match
      List.find_opt (fun s -> time >= s.from_time && time < s.until) t.slowdowns.(worker)
    with
    | Some s -> s.factor
    | None -> 1.

let advance t ~worker ~start ~duration =
  if duration <= 0. then start
  else if not (in_range t worker) then start +. duration
  else begin
    let remaining = ref duration and cursor = ref start in
    let finished = ref None in
    List.iter
      (fun s ->
        match !finished with
        | Some _ -> ()
        | None ->
            if s.until > !cursor then begin
              (* unslowed gap before the window *)
              (if s.from_time > !cursor then begin
                 let gap = s.from_time -. !cursor in
                 if !remaining <= gap then finished := Some (!cursor +. !remaining)
                 else begin
                   remaining := !remaining -. gap;
                   cursor := s.from_time
                 end
               end);
              match !finished with
              | Some _ -> ()
              | None ->
                  (* inside the window: time passes [factor] times faster *)
                  let capacity = (s.until -. !cursor) /. s.factor in
                  if !remaining <= capacity then
                    finished := Some (!cursor +. (!remaining *. s.factor))
                  else begin
                    remaining := !remaining -. capacity;
                    cursor := s.until
                  end
            end)
      t.slowdowns.(worker);
    match !finished with Some f -> f | None -> !cursor +. !remaining
  end

let work_between t ~worker ~start ~until =
  if until <= start then 0.
  else if not (in_range t worker) then until -. start
  else begin
    let work = ref 0. and cursor = ref start in
    List.iter
      (fun s ->
        if s.until > !cursor && s.from_time < until then begin
          (if s.from_time > !cursor then begin
             work := !work +. (Float.min s.from_time until -. !cursor);
             cursor := Float.min s.from_time until
           end);
          if !cursor < until && !cursor < s.until then begin
            let stop = Float.min s.until until in
            work := !work +. ((stop -. !cursor) /. s.factor);
            cursor := stop
          end
        end)
      t.slowdowns.(worker);
    if !cursor < until then work := !work +. (until -. !cursor);
    !work
  end
