type t = Exec.Pool.retry = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  deadline : float option;
}

let default = Exec.Pool.default_retry
let delay = Exec.Pool.backoff_delay
