(** The fault clock: the stateful bridge between an immutable
    {!Plan} and one run of a consumer (the MapReduce scheduler, a
    [Des.Engine] simulation, ...).

    A clock records every fault the run actually injects, in
    simulated-time order, and mirrors each one into the observability
    layer: an [Obs.Trace] instant (static names, ["fault.crash"],
    ["fault.fetch_failure"], ...) stamped at the wall-clock moment the
    simulator processed it — so Perfetto shows injected faults inline
    with the run's spans — plus an [Obs.Metrics] counter per kind. *)

type event =
  | Crash of { worker : int; time : float }
  | Recover of { worker : int; time : float }
  | Fetch_failure of { worker : int; task : int; attempt : int; time : float }
      (** [attempt] is the 1-based attempt within one copy's fetch *)
  | Task_retry of { task : int; attempt : int; time : float }
      (** the task was re-enqueued; it will restart at [time] *)
  | Quarantine of { worker : int; task : int; time : float }
      (** [worker] exhausted its fetch retries on [task]; the pair is
          barred for the rest of the run *)

type t

val create : ?sink:(event -> unit) -> Plan.t -> t
(** A fresh clock over [plan].  [sink], when given, additionally
    receives every recorded event (for tests and custom exporters). *)

val plan : t -> Plan.t

val record : t -> event -> unit
(** Append an event and emit its trace instant / metric counter. *)

val events : t -> event list
(** Everything recorded so far, in recording (simulated-time) order. *)

type tally = {
  crashes : int;
  recoveries : int;
  fetch_failures : int;
  retries : int;
  quarantines : int;
}

val counts : t -> tally

val arm :
  t ->
  Des.Engine.t ->
  ?on_recover:(worker:int -> Des.Engine.t -> unit) ->
  on_crash:(worker:int -> Des.Engine.t -> unit) ->
  unit ->
  unit
(** Schedule the plan's crash (and recovery) instants into a
    discrete-event engine: at each instant the clock records the event
    and invokes the callback.  This is how a [Des.Engine]-based
    simulation consumes a plan without re-implementing the timeline. *)

val time_of : event -> float
val pp_event : Format.formatter -> event -> unit
