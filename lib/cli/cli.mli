(** The nldl command-line interface, as a library so the argument
    grammar is testable ({!eval_value}) and reusable. *)

val command : unit Cmdliner.Cmd.t
(** The full command group: fig4 | nonlinear | sort | ratio | partition
    | mapreduce | time | ablations, each with a [-v] logging flag plus
    [--trace FILE] (Chrome trace-event JSON of the run's spans) and
    [--metrics[=FILE]] (merged metrics snapshot). *)

val run : unit -> int
(** Evaluate [Sys.argv] and return the exit code. *)

val eval_value :
  argv:string array ->
  (unit Cmdliner.Cmd.eval_ok, Cmdliner.Cmd.eval_error) result
(** Evaluate an explicit argv (for tests). *)

type capture = { status : int; out : string }

val eval_for_test : string list -> (capture, [ `Parse | `Term | `Exn ]) result
(** The documented programmatic entry for tests: run
    [nldl args...] in-process with stdout captured, returning what the
    command printed.  [--help]/[--version] count as status 0.  Gated
    commands that would [exit] non-zero must not be driven through this
    (the [exit] is not catchable); drive their library API instead. *)
