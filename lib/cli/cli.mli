(** The nldl command-line interface, as a library so the argument
    grammar is testable ({!eval_value}) and reusable. *)

val command : unit Cmdliner.Cmd.t
(** The full command group: fig4 | nonlinear | sort | ratio | partition
    | mapreduce | time | ablations, each with a [-v] logging flag plus
    [--trace FILE] (Chrome trace-event JSON of the run's spans) and
    [--metrics[=FILE]] (merged metrics snapshot). *)

val run : unit -> int
(** Evaluate [Sys.argv] and return the exit code. *)

val eval_value :
  argv:string array ->
  (unit Cmdliner.Cmd.eval_ok, Cmdliner.Cmd.eval_error) result
(** Evaluate an explicit argv (for tests). *)
