(* nldl — command-line driver for the paper-reproduction experiments.

   The subcommand group is built by folding over
   [Experiments.Catalog.all]: each experiment registers itself there as
   an [Experiments.Registry.entry] (name, synopsis, argument term), and
   [Registry.to_cmd] uniformly equips it with logging (-v), tracing
   (--trace/--metrics) and table dumps (--csv/--json).  Adding a
   subcommand means adding a catalog entry — this file does not
   change. *)

open Cmdliner

(* The one non-experiment subcommand: the static invariant checker,
   registered through the same Registry plumbing so it gets -v,
   --trace/--metrics and --csv/--json for free.  Its exit status is the
   gate result, so `nldl lint` can serve as a CI step directly. *)
let lint_entry =
  let run thunk () =
    let o : Lint.Cmd.outcome = thunk () in
    ( Some
        (Experiments.Registry.output ~header:o.Lint.Cmd.header
           ~rows:o.Lint.Cmd.rows ~json:o.Lint.Cmd.out_json),
      o.Lint.Cmd.status )
  in
  Experiments.Registry.gated ~name:"lint"
    ~synopsis:
      "Statically check the tree's determinism, unsafe-zone and domain-safety \
       invariants."
    Term.(const run $ Lint.Cmd.embedded_term)

let command =
  let doc = "Non-Linear Divisible Loads: There is No Free Lunch — reproduction toolkit" in
  Cmd.group
    (Cmd.info "nldl" ~version:Core.version ~doc)
    (List.map Experiments.Registry.to_cmd (Experiments.Catalog.all @ [ lint_entry ]))

let run () = Cmd.eval command

let eval_value ~argv = Cmd.eval_value ~argv command
