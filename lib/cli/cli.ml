(* nldl — command-line driver for the paper-reproduction experiments.

   The subcommand group is built by folding over
   [Experiments.Catalog.all]: each experiment registers itself there as
   an [Experiments.Registry.entry] (name, synopsis, argument term), and
   [Registry.to_cmd] uniformly equips it with logging (-v), tracing
   (--trace/--metrics) and table dumps (--csv/--json).  Adding a
   subcommand means adding a catalog entry — this file does not
   change. *)

open Cmdliner

(* The one non-experiment subcommand: the static invariant checker,
   registered through the same Registry plumbing so it gets -v,
   --trace/--metrics and --csv/--json for free.  Its exit status is the
   gate result, so `nldl lint` can serve as a CI step directly. *)
let lint_entry =
  let run thunk () =
    let o : Lint.Cmd.outcome = thunk () in
    (* The rich findings JSON (counts, per-finding "new" flags) stays on
       Lint.Cmd's own flag; the Registry --json surface gets the findings
       table in the standard Api.Response envelope like every command. *)
    ( Some (Experiments.Registry.table ~header:o.Lint.Cmd.header ~rows:o.Lint.Cmd.rows),
      o.Lint.Cmd.status )
  in
  Experiments.Registry.gated ~name:"lint"
    ~synopsis:
      "Statically check the tree's determinism, unsafe-zone and domain-safety \
       invariants."
    Term.(const run $ Lint.Cmd.embedded_term)

(* nldl profile EXPERIMENT [--out FILE] [--trace-events N] [-- ARG...]:
   look the experiment up in the catalog, re-evaluate its own argument
   term on the passthrough args (everything after --), run the thunk
   with the full observability stack force-enabled from a clean slate,
   and write a self-contained report: metrics snapshot (counters,
   gauges, histograms with quantiles), log2-histogram summaries, and a
   bounded trace with explicit dropped/sampled accounting. *)
let profile_entry =
  let exp_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Catalog experiment to profile.")
  in
  let passthrough =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"ARG"
          ~doc:"Arguments for the experiment itself; separate with --.")
  in
  let out =
    Arg.(
      value & opt string "profile.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the profile report.")
  in
  let trace_events =
    Arg.(
      value & opt int 10_000
      & info [ "trace-events" ] ~docv:"N"
          ~doc:
            "Event budget for the embedded trace (deterministic 1-in-k sampling \
             above it).")
  in
  let catalog_names () =
    String.concat ", "
      (List.map (fun (e : Experiments.Registry.entry) -> e.name) Experiments.Catalog.all)
  in
  let hist_summary_output () =
    let header = [ "hist"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ] in
    let rows =
      List.filter_map
        (fun (s : Obs.Hist.summary) ->
          if s.Obs.Hist.count = 0 then None
          else
            Some
              [
                s.Obs.Hist.s_name;
                string_of_int s.Obs.Hist.count;
                Printf.sprintf "%.4g" (Obs.Hist.mean s);
                string_of_int (Obs.Hist.quantile s 0.5);
                string_of_int (Obs.Hist.quantile s 0.9);
                string_of_int (Obs.Hist.quantile s 0.99);
                string_of_int s.Obs.Hist.max_v;
              ])
        (Obs.Hist.snapshot ())
    in
    Experiments.Registry.table ~header ~rows
  in
  let run name args out trace_events () =
    match
      List.find_opt
        (fun (e : Experiments.Registry.entry) -> e.name = name)
        Experiments.Catalog.all
    with
    | None ->
        Printf.eprintf "nldl profile: unknown experiment %S (catalog: %s)\n%!" name
          (catalog_names ());
        (None, 2)
    | Some e -> (
        let inner = Cmd.v (Cmd.info name) e.term in
        match Cmd.eval_value ~argv:(Array.of_list (name :: args)) inner with
        | Error _ ->
            Printf.eprintf "nldl profile: bad arguments for %s: %s\n%!" name
              (String.concat " " args);
            (None, 2)
        | Ok (`Help | `Version) -> (None, 0)
        | Ok (`Ok thunk) ->
            let prev_m = Obs.Metrics.enabled () in
            let prev_h = Obs.Hist.enabled () in
            let prev_t = Obs.Trace.enabled () in
            Obs.Metrics.reset ();
            Obs.Hist.reset ();
            Obs.Trace.clear ();
            Obs.Metrics.set_enabled true;
            Obs.Hist.set_enabled true;
            Obs.Trace.set_enabled true;
            let t0 = Obs.Clock.now_ns () in
            let table, status = thunk () in
            let elapsed = Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0) in
            Obs.Metrics.set_enabled prev_m;
            Obs.Hist.set_enabled prev_h;
            Obs.Trace.set_enabled prev_t;
            let report =
              Obs.Json.Obj
                [
                  ("experiment", Obs.Json.String name);
                  ("argv", Obs.Json.List (List.map (fun a -> Obs.Json.String a) args));
                  ("elapsed_s", Obs.Json.Float elapsed);
                  ("metrics", Obs.Export.metrics_json ());
                  ("trace", Obs.Export.trace_json ~max_events:trace_events ());
                ]
            in
            Obs.Json.write_file out report;
            Printf.eprintf "Profile written to %s\n%!" out;
            let summary = hist_summary_output () in
            List.iter
              (fun row -> print_endline (String.concat "  " row))
              (summary.Experiments.Registry.header :: summary.Experiments.Registry.rows);
            ignore (table : Experiments.Registry.output option);
            (Some summary, status))
  in
  Experiments.Registry.gated ~name:"profile"
    ~synopsis:
      "Run a catalog experiment fully instrumented and emit a self-contained \
       profile report (metrics + quantiles + bounded trace)."
    Term.(const run $ exp_name $ passthrough $ out $ trace_events)

let command =
  let doc = "Non-Linear Divisible Loads: There is No Free Lunch — reproduction toolkit" in
  Cmd.group
    (Cmd.info "nldl" ~version:Core.version ~doc)
    (List.map Experiments.Registry.to_cmd
       (Experiments.Catalog.all @ [ lint_entry; profile_entry ]))

let run () = Cmd.eval command

let eval_value ~argv = Cmd.eval_value ~argv command

(* The documented programmatic entry for tests: evaluate an argument
   list in-process with stdout captured to a temp file, so test_cli and
   the serve byte-identity tests never shell out or hand-build argv
   arrays with dup2 plumbing of their own. *)

type capture = { status : int; out : string }

let eval_for_test args =
  let argv = Array.of_list ("nldl" :: args) in
  let tmp = Filename.temp_file "nldl-cli" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let result =
    Fun.protect
      ~finally:(fun () ->
        flush stdout;
        Unix.dup2 saved Unix.stdout;
        Unix.close saved)
      (fun () -> eval_value ~argv)
  in
  let out = In_channel.with_open_bin tmp In_channel.input_all in
  Sys.remove tmp;
  match result with
  | Ok (`Ok () | `Help | `Version) -> Ok { status = 0; out }
  | Error `Parse -> Error `Parse
  | Error `Term -> Error `Term
  | Error `Exn -> Error `Exn
