(* nldl — command-line driver for the paper-reproduction experiments.

   Subcommands:
     fig4       Figure 4(a/b/c) communication-ratio sweep
     nonlinear  E1: work fraction of a divisible round of an N^alpha load
     sort       E2: sorting as an almost-divisible load
     ratio      E3: Commhom/Commhet ratio on bimodal platforms
     partition  partition a platform and print the layout
     mapreduce  affinity-aware scheduling ablation *)

open Cmdliner

(* Logging: -v / -vv enable info / debug messages from the library's
   sources (nldl.dlt, nldl.partition, nldl.mapreduce). *)
let setup_logs verbosity =
  let level =
    match verbosity with 0 -> Some Logs.Warning | 1 -> Some Logs.Info | _ -> Some Logs.Debug
  in
  Logs.set_level level;
  Logs.set_reporter (Logs.format_reporter ())

let verbosity =
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc:"Increase log verbosity (repeatable).")

let logs_term = Term.(const setup_logs $ (const List.length $ verbosity))

(* Observability: --trace FILE records spans during the command body and
   writes a Chrome trace-event JSON (Perfetto / about://tracing);
   --metrics[=FILE] enables the metrics registry and dumps the merged
   snapshot to FILE, or to stdout for "-" (the default when the flag is
   given bare). *)
let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record runtime spans and write a Chrome trace-event JSON to $(docv).")

let metrics_file =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Collect runtime metrics; write the snapshot to $(docv) (\"-\" = stdout).")

let setup_obs trace metrics =
  if trace <> None then Obs.Trace.set_enabled true;
  if metrics <> None then Obs.Metrics.set_enabled true;
  (trace, metrics)

let finish_obs (trace, metrics) =
  (match trace with
  | None -> ()
  | Some path ->
      Obs.Trace.set_enabled false;
      Obs.Export.write_trace path;
      let dropped = Obs.Trace.dropped () in
      if dropped > 0 then
        Printf.eprintf "nldl: trace ring buffers dropped %d events\n%!" dropped;
      Printf.eprintf "Trace written to %s\n%!" path);
  match metrics with
  | None -> ()
  | Some "-" -> print_endline (Obs.Json.to_string (Obs.Export.metrics_json ()))
  | Some path ->
      Obs.Export.write_metrics path;
      Printf.eprintf "Metrics written to %s\n%!" path

let obs_term = Term.(const setup_obs $ trace_file $ metrics_file)

(* Run the logging and observability setup before the actual command
   body (cmdliner evaluates [$] arguments left to right), then flush
   the trace/metrics files after it returns. *)
let wrap term =
  Term.(
    const (fun () obs result ->
        finish_obs obs;
        result)
    $ logs_term $ obs_term $ term)

let profile_arg =
  let parse s =
    match Core.Profiles.of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown profile %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Core.Profiles.name p) in
  Arg.conv (parse, print)

let profile =
  Arg.(
    value
    & opt profile_arg Core.Profiles.paper_uniform
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:"Speed profile: homogeneous, uniform, lognormal or bimodal.")

let trials =
  Arg.(
    value & opt int 100
    & info [ "trials" ] ~docv:"T" ~doc:"Random platforms per data point.")

let seed = Arg.(value & opt int 20130520 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")

let processors =
  Arg.(
    value
    & opt (list int) Experiments.Fig4.default_processor_counts
    & info [ "p" ] ~docv:"P,..." ~doc:"Processor counts to sweep.")

let csv_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV to $(docv).")

let fig4_cmd =
  let run profile trials seed processors csv =
    let points =
      Experiments.Fig4.sweep ~processor_counts:processors ~trials ~seed profile
    in
    Experiments.Fig4.print
      ~title:
        (Printf.sprintf "Figure 4 reproduction, %s speeds (%d trials/point)"
           (Core.Profiles.name profile) trials)
      points;
    match csv with
    | None -> ()
    | Some path ->
        let header, rows = Experiments.Fig4.csv points in
        Experiments.Csv_out.write ~path ~header ~rows;
        Printf.printf "\nCSV written to %s\n" path
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Reproduce the Figure 4 communication-ratio sweep.")
    (wrap Term.(const run $ profile $ trials $ seed $ processors $ csv_file))

let nonlinear_cmd =
  let alphas =
    Arg.(
      value & opt (list float) [ 1.5; 2.; 3. ]
      & info [ "alpha" ] ~docv:"A,..." ~doc:"Cost exponents.")
  in
  let run alphas processors =
    Experiments.Nonlinear_exp.print
      (Experiments.Nonlinear_exp.run ~alphas ~processor_counts:processors ())
  in
  let default_p = [ 2; 4; 16; 64; 256 ] in
  let processors =
    Arg.(value & opt (list int) default_p & info [ "p" ] ~docv:"P,..." ~doc:"Worker counts.")
  in
  Cmd.v
    (Cmd.info "nonlinear" ~doc:"E1: the no-free-lunch fraction for N^alpha loads.")
    (wrap Term.(const run $ alphas $ processors))

let sort_cmd =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 10_000; 100_000; 1_000_000 ]
      & info [ "n" ] ~docv:"N,..." ~doc:"Input sizes.")
  in
  let processors =
    Arg.(value & opt (list int) [ 4; 16; 64 ] & info [ "p" ] ~docv:"P,..." ~doc:"Worker counts.")
  in
  let run sizes processors =
    Experiments.Sorting_exp.print
      (Experiments.Sorting_exp.run ~sizes ~processor_counts:processors ());
    Experiments.Sorting_exp.print_hetero
      (Experiments.Sorting_exp.run_hetero ~processor_counts:processors ())
  in
  Cmd.v
    (Cmd.info "sort" ~doc:"E2: sorting as an almost-divisible load.")
    (wrap Term.(const run $ sizes $ processors))

let ratio_cmd =
  let factors =
    Arg.(
      value
      & opt (list float) [ 1.; 4.; 9.; 16.; 25.; 49.; 100. ]
      & info [ "k" ] ~docv:"K,..." ~doc:"Fast/slow speed factors.")
  in
  let p = Arg.(value & opt int 20 & info [ "p" ] ~docv:"P" ~doc:"Platform size.") in
  let run factors p =
    Experiments.Ratio_exp.print_bimodal (Experiments.Ratio_exp.run_bimodal ~p ~factors ());
    Experiments.Ratio_exp.print_general (Experiments.Ratio_exp.run_general ())
  in
  Cmd.v
    (Cmd.info "ratio" ~doc:"E3: the Commhom/Commhet ratio bounds.")
    (wrap Term.(const run $ factors $ p))

let partition_cmd =
  let speeds =
    Arg.(
      value
      & opt (list float) [ 1.; 1.; 2.; 4.; 4.; 12. ]
      & info [ "speeds" ] ~docv:"S,..." ~doc:"Worker speeds.")
  in
  let platform_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "platform" ] ~docv:"FILE"
          ~doc:"Read the platform from $(docv) (one worker per line: speed [bandwidth \
                [latency]]); overrides --speeds.")
  in
  let run platform_file speeds =
    let star =
      match platform_file with
      | None -> Core.Star.of_speeds speeds
      | Some path -> (
          match Platform.Parse.of_file path with
          | Ok star -> star
          | Error msg ->
              prerr_endline ("nldl: cannot read platform: " ^ msg);
              exit 1)
    in
    let layout = Core.Strategies.het_layout star in
    print_string (Core.Layout.render layout);
    Printf.printf "\nSum of half-perimeters %.4f, lower bound %.4f\n"
      (Core.Layout.sum_half_perimeters layout)
      (Core.Comm_lower_bound.peri_sum ~areas:(Core.Star.relative_speeds star));
    let r = Core.communication_ratios star in
    Printf.printf "Ratios to LB: het %.4f, hom %.4f, hom/k %.4f (k = %d)\n"
      r.Core.Strategies.het r.Core.Strategies.hom r.Core.Strategies.hom_over_k
      r.Core.Strategies.k
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Partition a platform's outer-product domain (PERI-SUM).")
    (wrap Term.(const run $ platform_file $ speeds))

let mapreduce_cmd =
  let n = Arg.(value & opt int 512 & info [ "n" ] ~docv:"N" ~doc:"Vector size.") in
  let run n =
    Experiments.Mapreduce_exp.print (Experiments.Mapreduce_exp.run ~n ())
  in
  Cmd.v
    (Cmd.info "mapreduce" ~doc:"Affinity-aware MapReduce scheduling ablation.")
    (wrap Term.(const run $ n))

let time_cmd =
  let run profile trials =
    Experiments.Time_exp.print
      ~profile:(Core.Profiles.name profile)
      (Experiments.Time_exp.run ~trials profile)
  in
  let trials = Arg.(value & opt int 10 & info [ "trials" ] ~docv:"T" ~doc:"Trials per point.") in
  Cmd.v
    (Cmd.info "time"
       ~doc:"E4: strategy makespans (not just volumes) as the network slows down.")
    (wrap Term.(const run $ profile $ trials))

let ablations_cmd =
  let run () = Experiments.Ablations.print_all () in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:
         "Ablation studies: partitioner choice, SUMMA panels, 2.5D replication, splitter \
          selection, speculation, dispatch order.")
    (wrap Term.(const run $ const ()))

let command =
  let doc = "Non-Linear Divisible Loads: There is No Free Lunch — reproduction toolkit" in
  Cmd.group
    (Cmd.info "nldl" ~version:Core.version ~doc)
    [
      fig4_cmd; nonlinear_cmd; sort_cmd; ratio_cmd; partition_cmd; mapreduce_cmd;
      time_cmd; ablations_cmd;
    ]

let run () = Cmd.eval command

let eval_value ~argv = Cmd.eval_value ~argv command
