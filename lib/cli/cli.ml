(* nldl — command-line driver for the paper-reproduction experiments.

   The subcommand group is built by folding over
   [Experiments.Catalog.all]: each experiment registers itself there as
   an [Experiments.Registry.entry] (name, synopsis, argument term), and
   [Registry.to_cmd] uniformly equips it with logging (-v), tracing
   (--trace/--metrics) and table dumps (--csv/--json).  Adding a
   subcommand means adding a catalog entry — this file does not
   change. *)

open Cmdliner

let command =
  let doc = "Non-Linear Divisible Loads: There is No Free Lunch — reproduction toolkit" in
  Cmd.group
    (Cmd.info "nldl" ~version:Core.version ~doc)
    (List.map Experiments.Registry.to_cmd Experiments.Catalog.all)

let run () = Cmd.eval command

let eval_value ~argv = Cmd.eval_value ~argv command
