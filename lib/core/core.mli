(** Non-Linear Divisible Loads — public façade.

    One-stop module assembling the reproduction of Beaumont,
    Larchevêque & Marchal, {e Non-Linear Divisible Loads: There is No
    Free Lunch} (IPDPS 2013).  The aliases below are the supported
    entry points; the underlying libraries can also be used directly. *)

val version : string

(* Randomness and statistics. *)
module Rng = Numerics.Rng
module Distributions = Numerics.Distributions
module Stats = Numerics.Stats
module Parallel = Numerics.Parallel
module Pool = Exec.Pool
module Fbuf = Kernels.Fbuf
module Scatter = Kernels.Scatter
module Seg_sort = Kernels.Seg_sort

(* Platforms (paper §1.2). *)
module Processor = Platform.Processor
module Star = Platform.Star
module Profiles = Platform.Profiles
module Platform_metrics = Platform.Metrics
module Topology = Platform.Topology

(* Discrete-event substrate. *)
module Event_queue = Des.Event_queue
module Engine = Des.Engine
module Trace = Des.Trace
module Process = Des.Process
module Fluid = Des.Fluid

(* Divisible load theory (§2, §3). *)
module Cost_model = Dlt.Cost_model
module Linear_dlt = Dlt.Linear
module Nonlinear_dlt = Dlt.Nonlinear
module Dlt_schedule = Dlt.Schedule
module Multi_round = Dlt.Multi_round
module Fraction = Dlt.Fraction
module Dlt_bounds = Dlt.Bounds
module Affine_dlt = Dlt.Affine
module Dlt_ordering = Dlt.Ordering
module Return_messages = Dlt.Return_messages
module Steady_state = Dlt.Steady_state
module Dlt_simulate = Dlt.Simulate
module Tree_dlt = Dlt.Tree

(* Data partitioning (§4.1). *)
module Rect = Partition.Rect
module Layout = Partition.Layout
module Column_partition = Partition.Column_partition
module Comm_lower_bound = Partition.Lower_bound
module Block_hom = Partition.Block_hom
module Strategies = Partition.Strategies
module Bisection = Partition.Bisection
module Timed_strategies = Partition.Timed

(* Sorting as an almost-divisible load (§3). *)
module Sample_sort = Sortlib.Sample_sort
module Hetero_sort = Sortlib.Hetero_sort
module Sort_model = Sortlib.Parallel_model
module Concentration = Sortlib.Concentration
module Histogram_sort = Sortlib.Histogram_sort
module Multicore_sort = Sortlib.Multicore
module Psrs = Sortlib.Psrs
module Merge = Sortlib.Merge

(* Linear algebra workloads (§4.2). *)
module Matrix = Linalg.Matrix
module Zone = Linalg.Zone
module Outer_product = Linalg.Outer_product
module Matmul = Linalg.Matmul
module Block_cyclic = Linalg.Block_cyclic
module Summa = Linalg.Summa
module C25d = Linalg.C25d
module Poly = Linalg.Poly
module Cannon = Linalg.Cannon
module Strassen = Linalg.Strassen
module Parallel_matmul = Linalg.Parallel_matmul
module Lu = Linalg.Lu
module Cholesky = Linalg.Cholesky

(* Application workloads (§1.1). *)
module Image = Workloads.Image
module Database = Workloads.Database
module Stream = Workloads.Stream
module Montecarlo = Workloads.Montecarlo

(* MapReduce runtime (§1.1, §4, conclusion). *)
module Mr_task = Mapreduce.Task
module Mr_scheduler = Mapreduce.Scheduler
module Mr_engine = Mapreduce.Engine
module Mr_jobs = Mapreduce.Jobs
module Mr_shuffle = Mapreduce.Shuffle
module Mr_timeline = Mapreduce.Timeline
module Mr_pipeline = Mapreduce.Pipeline

val partition_for_speeds : float array -> Partition.Layout.t
(** [partition_for_speeds speeds] is the communication-minimizing
    Heterogeneous Blocks layout (PERI-SUM column partition) for workers
    of the given positive speeds, zone areas proportional to speeds. *)

val communication_ratios :
  ?n:float -> ?target_imbalance:float -> Platform.Star.t -> Partition.Strategies.ratios
(** [communication_ratios star] compares the three §4.3 strategies on
    [star]; see {!Partition.Strategies.evaluate}. *)

val no_free_lunch : alpha:float -> p:int -> float
(** [no_free_lunch ~alpha ~p] is the §2 headline number: the fraction of
    an [N^alpha] workload that one divisible-load round over [p]
    identical workers leaves undone — [1 - p^(1-alpha)]. *)
