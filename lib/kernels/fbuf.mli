(** Flat float64 buffer — Bigarray [float64] [c_layout] 1-D backing for
    the matrix and kernel hot paths.

    The payload lives outside the OCaml heap: allocating, filling and
    dropping a buffer costs the GC only a custom-block header, and
    neither minor collections nor the major scanner ever touch the
    data.  Native-code access is a direct float64 load/store, unboxed
    like a [float array].

    2-D consumers (matrices) keep explicit [rows]/[cols] and address
    row-major through {!idx} — one flat layout shared with the
    [Scatter.offsets] convention, no view types.

    [unsafe_get]/[unsafe_set]/[unsafe_blit] skip bounds checks; they are
    for audited [\[@@@nldl.unsafe_zone\]] modules that validate their
    index ranges once up front. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Zero-filled buffer of the given length (length 0 is fine).  Raises
    [Invalid_argument] on a negative length. *)

val init : int -> (int -> float) -> t

(** The accessors are [external] re-declarations of the Bigarray
    primitives (not [val]s): exposed as functions they would compile to
    cross-module calls that box the float on every read, which is the
    overhead this module exists to remove.  As externals every access is
    a direct unboxed float64 load/store at the call site. *)

external length : t -> int = "%caml_ba_dim_1"

external get : t -> int -> float = "%caml_ba_ref_1"
(** Bounds-checked. *)

external set : t -> int -> float -> unit = "%caml_ba_set_1"
(** Bounds-checked. *)

external unsafe_get : t -> int -> float = "%caml_ba_unsafe_ref_1"
external unsafe_set : t -> int -> float -> unit = "%caml_ba_unsafe_set_1"

val fill : t -> float -> unit

val idx : cols:int -> int -> int -> int
(** [idx ~cols i j] is the flat offset of row-major cell [(i, j)]. *)

val of_array : float array -> t
val to_array : t -> float array
val copy : t -> t

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Bounds-checked copy, correct for overlapping ranges within one
    buffer.  Allocation-free (no view headers). *)

val unsafe_blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Forward copy with no bounds checks; ranges must be valid and, within
    one buffer, non-overlapping (or [dst_pos <= src_pos]). *)

val equal : t -> t -> bool
(** Bitwise equality ([Int64.bits_of_float] per cell): distinguishes
    [0.] from [-0.] and treats [NaN] as equal to itself — the
    byte-identity predicate of the kernel tests. *)
