(* In-place introsort over an array segment, generic and
   float-specialized.  The two clones exist for the same reason as in
   [Scatter]: generic access to an unboxed [float array] boxes every
   element, so a shared polymorphic implementation would allocate O(len)
   words per sort. *)

[@@@nldl.unsafe_zone
  "every entry point runs check_bounds on (lo, len) before the unchecked \
   introsort/heapsort/insertion loops, whose indices stay inside the validated \
   segment by the partition invariants (U-audit 2026-08)"]

let check_bounds name data ~lo ~len =
  if lo < 0 || len < 0 || lo + len > Array.length data then
    invalid_arg (name ^ ": segment out of bounds")

let depth_budget len =
  let d = ref 0 in
  let n = ref len in
  while !n > 1 do
    incr d;
    n := !n / 2
  done;
  2 * !d

(* --- generic ----------------------------------------------------------- *)

let insertion cmp data lo hi =
  for i = lo + 1 to hi - 1 do
    let x = data.(i) in
    let j = ref (i - 1) in
    while !j >= lo && cmp data.(!j) x > 0 do
      data.(!j + 1) <- data.(!j);
      decr j
    done;
    data.(!j + 1) <- x
  done

let heapsort cmp data lo hi =
  let len = hi - lo in
  let sift root last =
    let r = ref root in
    let continue = ref true in
    while !continue do
      let child = (2 * !r) + 1 in
      if child > last then continue := false
      else begin
        let child =
          if child + 1 <= last && cmp data.(lo + child) data.(lo + child + 1) < 0 then
            child + 1
          else child
        in
        if cmp data.(lo + !r) data.(lo + child) < 0 then begin
          let tmp = data.(lo + !r) in
          data.(lo + !r) <- data.(lo + child);
          data.(lo + child) <- tmp;
          r := child
        end
        else continue := false
      end
    done
  in
  for root = (len / 2) - 1 downto 0 do
    sift root (len - 1)
  done;
  for last = len - 1 downto 1 do
    let tmp = data.(lo) in
    data.(lo) <- data.(lo + last);
    data.(lo + last) <- tmp;
    sift 0 (last - 1)
  done

let rec intro cmp data lo hi depth =
  if hi - lo <= 16 then insertion cmp data lo hi
  else if depth <= 0 then heapsort cmp data lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let a = data.(lo) and b = data.(mid) and c = data.(hi - 1) in
    let pivot =
      if cmp a b < 0 then
        if cmp b c < 0 then b else if cmp a c < 0 then c else a
      else if cmp a c < 0 then a
      else if cmp b c < 0 then c
      else b
    in
    (* Hoare partition: safe because [pivot] is a value of the segment,
       so both scans stop before running off the end. *)
    let i = ref (lo - 1) and j = ref hi in
    let continue = ref true in
    while !continue do
      incr i;
      while cmp data.(!i) pivot < 0 do
        incr i
      done;
      decr j;
      while cmp data.(!j) pivot > 0 do
        decr j
      done;
      if !i >= !j then continue := false
      else begin
        let tmp = data.(!i) in
        data.(!i) <- data.(!j);
        data.(!j) <- tmp
      end
    done;
    intro cmp data lo (!j + 1) (depth - 1);
    intro cmp data (!j + 1) hi (depth - 1)
  end

let sort ?(cmp = compare) data ~lo ~len =
  check_bounds "Seg_sort.sort" data ~lo ~len;
  if len > 1 then begin
    Obs.Trace.begin_span "segsort.sort";
    intro cmp data lo (lo + len) (depth_budget len);
    Obs.Trace.end_span "segsort.sort"
  end

(* --- float-specialized ------------------------------------------------- *)

let insertion_f (data : float array) lo hi =
  for i = lo + 1 to hi - 1 do
    let x = Array.unsafe_get data i in
    let j = ref (i - 1) in
    while !j >= lo && Array.unsafe_get data !j > x do
      Array.unsafe_set data (!j + 1) (Array.unsafe_get data !j);
      decr j
    done;
    Array.unsafe_set data (!j + 1) x
  done

let heapsort_f (data : float array) lo hi =
  let len = hi - lo in
  let sift root last =
    let r = ref root in
    let continue = ref true in
    while !continue do
      let child = (2 * !r) + 1 in
      if child > last then continue := false
      else begin
        let child =
          if
            child + 1 <= last
            && Array.unsafe_get data (lo + child) < Array.unsafe_get data (lo + child + 1)
          then child + 1
          else child
        in
        if Array.unsafe_get data (lo + !r) < Array.unsafe_get data (lo + child) then begin
          let tmp = Array.unsafe_get data (lo + !r) in
          Array.unsafe_set data (lo + !r) (Array.unsafe_get data (lo + child));
          Array.unsafe_set data (lo + child) tmp;
          r := child
        end
        else continue := false
      end
    done
  in
  for root = (len / 2) - 1 downto 0 do
    sift root (len - 1)
  done;
  for last = len - 1 downto 1 do
    let tmp = Array.unsafe_get data lo in
    Array.unsafe_set data lo (Array.unsafe_get data (lo + last));
    Array.unsafe_set data (lo + last) tmp;
    sift 0 (last - 1)
  done

(* [mid] ∈ [lo, hi) and [lo, hi) ⊆ [0, length data): the public entry
   runs [check_bounds] once, and recursion only narrows the segment. *)
let[@nldl.bounds_validated "Seg_sort.check_bounds"] rec intro_f
    (data : float array) lo hi depth =
  if hi - lo <= 16 then insertion_f data lo hi
  else if depth <= 0 then heapsort_f data lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let a = Array.unsafe_get data lo
    and b = Array.unsafe_get data mid
    and c = Array.unsafe_get data (hi - 1) in
    let pivot =
      if a < b then if b < c then b else if a < c then c else a
      else if a < c then a
      else if b < c then c
      else b
    in
    let i = ref (lo - 1) and j = ref hi in
    let continue = ref true in
    while !continue do
      incr i;
      while Array.unsafe_get data !i < pivot do
        incr i
      done;
      decr j;
      while Array.unsafe_get data !j > pivot do
        decr j
      done;
      if !i >= !j then continue := false
      else begin
        let tmp = Array.unsafe_get data !i in
        Array.unsafe_set data !i (Array.unsafe_get data !j);
        Array.unsafe_set data !j tmp
      end
    done;
    intro_f data lo (!j + 1) (depth - 1);
    intro_f data (!j + 1) hi (depth - 1)
  end

let sort_floats data ~lo ~len =
  check_bounds "Seg_sort.sort_floats" data ~lo ~len;
  if len > 1 then begin
    Obs.Trace.begin_span "segsort.sort_floats";
    intro_f data lo (lo + len) (depth_budget len);
    Obs.Trace.end_span "segsort.sort_floats"
  end
