(* Counting-based scatter kernels: bucket-index histogram, exclusive
   prefix sum, stable scatter into one preallocated array.  See the .mli
   for the determinism contract; the float-specialized clones exist
   because generic access to an unboxed [float array] boxes every read,
   which would reintroduce the O(n) allocation this layer removes. *)

[@@@nldl.unsafe_zone
  "binary-search cursors stay in [0, |splitters|] by the loop invariant, and \
   scatter writes land inside the preallocated [data] because cursors come from \
   histogram + exclusive prefix sums over the same keys (U-audit 2026-08)"]

type 'a t = { data : 'a array; offsets : int array }
type slice = { mutable lo : int; mutable len : int }

let slice_make () = { lo = 0; len = 0 }
let num_buckets t = Array.length t.offsets - 1
let bucket_lo t b = t.offsets.(b)
let bucket_len t b = t.offsets.(b + 1) - t.offsets.(b)

let bucket_slice t b s =
  s.lo <- t.offsets.(b);
  s.len <- t.offsets.(b + 1) - s.lo

let bucket_sizes t = Array.init (num_buckets t) (fun b -> bucket_len t b)
let bucket t b = Array.sub t.data (bucket_lo t b) (bucket_len t b)

let bucket_index ?(cmp = compare) splitters key =
  (* Smallest i with key < splitters.(i); p-1 when none. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cmp key splitters.(mid) < 0 then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length splitters)

(* The float hot loops below inline this binary search as a while loop
   over local refs (which the compiler keeps in registers): calling out
   to a function would box the float key and allocate the closure of a
   local [let rec] on every key, putting O(n) words right back on the
   minor heap.  [key < s] is [Float.compare key s < 0] for non-NaN keys,
   which is all the random-key workloads ever route. *)
let bucket_index_floats (splitters : float array) (key : float) =
  let lo = ref 0 and hi = ref (Array.length splitters) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key < Array.unsafe_get splitters mid then hi := mid else lo := mid + 1
  done;
  !lo

let histogram ?(cmp = compare) keys ~splitters =
  let counts = Array.make (Array.length splitters + 1) 0 in
  Array.iter
    (fun key ->
      let b = bucket_index ~cmp splitters key in
      counts.(b) <- counts.(b) + 1)
    keys;
  counts

let histogram_floats_into counts (keys : float array) ~(splitters : float array) =
  let m = Array.length splitters in
  if Array.length counts < m + 1 then
    invalid_arg "Scatter.histogram_floats_into: counts shorter than p";
  Array.fill counts 0 (m + 1) 0;
  for i = 0 to Array.length keys - 1 do
    let key = Array.unsafe_get keys i in
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if key < Array.unsafe_get splitters mid then hi := mid else lo := mid + 1
    done;
    Array.unsafe_set counts !lo (Array.unsafe_get counts !lo + 1)
  done

let histogram_floats (keys : float array) ~(splitters : float array) =
  let counts = Array.make (Array.length splitters + 1) 0 in
  histogram_floats_into counts keys ~splitters;
  counts

let exclusive_prefix counts =
  let p = Array.length counts in
  let offsets = Array.make (p + 1) 0 in
  for b = 0 to p - 1 do
    offsets.(b + 1) <- offsets.(b) + counts.(b)
  done;
  offsets

let empty_result ~p = { data = [||]; offsets = Array.make (p + 1) 0 }

let partition ?(cmp = compare) keys ~splitters =
  let n = Array.length keys in
  let p = Array.length splitters + 1 in
  if n = 0 then empty_result ~p
  else begin
    Obs.Trace.begin_span "scatter.histogram";
    let cursors = histogram ~cmp keys ~splitters in
    let offsets = exclusive_prefix cursors in
    Obs.Trace.end_span "scatter.histogram";
    Array.blit offsets 0 cursors 0 p;
    Obs.Trace.begin_span "scatter.scatter";
    let data = Array.make n keys.(0) in
    for i = 0 to n - 1 do
      let key = keys.(i) in
      let b = bucket_index ~cmp splitters key in
      data.(cursors.(b)) <- key;
      cursors.(b) <- cursors.(b) + 1
    done;
    Obs.Trace.end_span "scatter.scatter";
    { data; offsets }
  end

(* Cursor targets stay inside [data]: [exclusive_prefix] turns the
   histogram into bucket starts summing to [n], and each bucket's cursor
   advances exactly its count times. *)
let[@nldl.bounds_validated "Scatter.exclusive_prefix"] partition_floats
    (keys : float array) ~(splitters : float array) =
  let n = Array.length keys in
  let p = Array.length splitters + 1 in
  if n = 0 then empty_result ~p
  else begin
    Obs.Trace.begin_span "scatter.histogram";
    let cursors = histogram_floats keys ~splitters in
    let offsets = exclusive_prefix cursors in
    Obs.Trace.end_span "scatter.histogram";
    Array.blit offsets 0 cursors 0 p;
    Obs.Trace.begin_span "scatter.scatter";
    let data = Array.make n 0. in
    let m = Array.length splitters in
    for i = 0 to n - 1 do
      let key = Array.unsafe_get keys i in
      let lo = ref 0 and hi = ref m in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if key < Array.unsafe_get splitters mid then hi := mid else lo := mid + 1
      done;
      let at = Array.unsafe_get cursors !lo in
      Array.unsafe_set data at key;
      Array.unsafe_set cursors !lo (at + 1)
    done;
    Obs.Trace.end_span "scatter.scatter";
    { data; offsets }
  end

(* Slice geometry for the pool variants: a function of [n] only — never
   of the worker count — so the merged prefix, and therefore the output,
   cannot depend on how many domains run. *)
let slice_count n = if n < 16_384 then 1 else min 64 (n / 8_192)
let slice_lo ~n ~slices s = s * n / slices

(* Turn the slice-major count matrix into per-(slice, bucket) write
   cursors, in place: bucket b's region holds slice 0's keys, then slice
   1's, ... — exactly input order, i.e. the same stable order as the
   sequential scatter.  Returns the bucket offsets. *)
let merge_cursors counts ~slices ~p =
  let offsets = Array.make (p + 1) 0 in
  let total = ref 0 in
  for b = 0 to p - 1 do
    offsets.(b) <- !total;
    for s = 0 to slices - 1 do
      let c = counts.((s * p) + b) in
      counts.((s * p) + b) <- !total;
      total := !total + c
    done
  done;
  offsets.(p) <- !total;
  offsets

let partition_pool ?(cmp = compare) ?workers pool keys ~splitters =
  let n = Array.length keys in
  let p = Array.length splitters + 1 in
  if n = 0 then empty_result ~p
  else begin
    let slices = slice_count n in
    if slices = 1 then partition ~cmp keys ~splitters
    else begin
      let counts = Array.make (slices * p) 0 in
      Obs.Trace.begin_span "scatter.pool.count";
      Exec.Pool.parallel_for ?workers pool slices (fun s ->
          let lo = slice_lo ~n ~slices s and hi = slice_lo ~n ~slices (s + 1) in
          let base = s * p in
          for i = lo to hi - 1 do
            let b = bucket_index ~cmp splitters keys.(i) in
            counts.(base + b) <- counts.(base + b) + 1
          done);
      Obs.Trace.end_span "scatter.pool.count";
      let offsets = merge_cursors counts ~slices ~p in
      let data = Array.make n keys.(0) in
      Obs.Trace.begin_span "scatter.pool.scatter";
      Exec.Pool.parallel_for ?workers pool slices (fun s ->
          let lo = slice_lo ~n ~slices s and hi = slice_lo ~n ~slices (s + 1) in
          let base = s * p in
          for i = lo to hi - 1 do
            let key = keys.(i) in
            let b = bucket_index ~cmp splitters key in
            data.(counts.(base + b)) <- key;
            counts.(base + b) <- counts.(base + b) + 1
          done);
      { data; offsets }
    end
  end

(* Per-slice cursor bases come from [merge_cursors] (global exclusive
   prefix over the slice histograms), so every [base + !lo] write lands
   in that slice's disjoint span of [data]. *)
let[@nldl.bounds_validated "Scatter.merge_cursors"] partition_floats_pool
    ?workers pool (keys : float array) ~(splitters : float array) =
  let n = Array.length keys in
  let p = Array.length splitters + 1 in
  if n = 0 then empty_result ~p
  else begin
    let slices = slice_count n in
    if slices = 1 then partition_floats keys ~splitters
    else begin
      let m = Array.length splitters in
      let counts = Array.make (slices * p) 0 in
      Exec.Pool.parallel_for ?workers pool slices (fun s ->
          let i0 = slice_lo ~n ~slices s and i1 = slice_lo ~n ~slices (s + 1) in
          let base = s * p in
          for i = i0 to i1 - 1 do
            let key = Array.unsafe_get keys i in
            let lo = ref 0 and hi = ref m in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if key < Array.unsafe_get splitters mid then hi := mid else lo := mid + 1
            done;
            Array.unsafe_set counts (base + !lo) (Array.unsafe_get counts (base + !lo) + 1)
          done);
      let offsets = merge_cursors counts ~slices ~p in
      let data = Array.make n 0. in
      Exec.Pool.parallel_for ?workers pool slices (fun s ->
          let i0 = slice_lo ~n ~slices s and i1 = slice_lo ~n ~slices (s + 1) in
          let base = s * p in
          for i = i0 to i1 - 1 do
            let key = Array.unsafe_get keys i in
            let lo = ref 0 and hi = ref m in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if key < Array.unsafe_get splitters mid then hi := mid else lo := mid + 1
            done;
            let at = Array.unsafe_get counts (base + !lo) in
            Array.unsafe_set data at key;
            Array.unsafe_set counts (base + !lo) (at + 1)
          done);
      { data; offsets }
    end
  end
