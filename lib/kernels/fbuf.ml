(* Flat float64 buffer on a Bigarray backing store.

   The matrix and kernel layers keep their numeric payloads here instead
   of on [float array]: the data block lives outside the OCaml heap, so
   creating, filling and dropping large buffers costs the GC a
   custom-block header (a few words) rather than [n] major-heap words,
   and the scanners never trace the payload.  Access compiles to direct
   float64 loads/stores — no boxing on get/set in native code, same as a
   [float array].

   Only 1-D buffers exist; 2-D users (matrices) keep explicit [rows] /
   [cols] and index row-major via {!idx}.  That keeps every consumer on
   one layout — the same flat, offset-based convention as
   [Scatter.offsets] — instead of growing a zoo of view types. *)

[@@@nldl.unsafe_zone
  "unsafe_get/unsafe_set/unsafe_blit are re-exports for audited kernel zones \
   (Matmul, Outer_product, Parallel_matmul, Summa, Matrix) that validate index \
   ranges once before their inner loops; everything else here is bounds-checked \
   Bigarray access (U-audit 2026-08)"]

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n =
  if n < 0 then invalid_arg "Fbuf.create: negative length";
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill b 0.;
  b

(* [external] re-declarations of the Bigarray primitives rather than
   wrapper functions: a cross-module wrapper call returns its float
   boxed (no flambda to inline it away), which would put two words back
   on the minor heap per read — the exact overhead this module exists
   to remove.  As externals, callers compile every access to a direct
   unboxed float64 load/store. *)
external length : t -> int = "%caml_ba_dim_1"
external get : t -> int -> float = "%caml_ba_ref_1"
external set : t -> int -> float -> unit = "%caml_ba_set_1"
external unsafe_get : t -> int -> float = "%caml_ba_unsafe_ref_1"
external unsafe_set : t -> int -> float -> unit = "%caml_ba_unsafe_set_1"

let fill (b : t) v = Bigarray.Array1.fill b v

let idx ~cols i j = (i * cols) + j

let init n f =
  let b = create n in
  for i = 0 to n - 1 do
    unsafe_set b i (f i)
  done;
  b

let of_array a =
  let n = Array.length a in
  let b = create n in
  for i = 0 to n - 1 do
    unsafe_set b i (Array.unsafe_get a i)
  done;
  b

let to_array (b : t) = Array.init (length b) (fun i -> unsafe_get b i)

let copy (b : t) =
  let n = length b in
  let out = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.blit b out;
  out

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if
    len < 0 || src_pos < 0 || dst_pos < 0
    || src_pos + len > length src
    || dst_pos + len > length dst
  then invalid_arg "Fbuf.blit: range out of bounds";
  (* A manual loop instead of Array1.sub + Array1.blit: sub allocates a
     view header per call, and row-blits (Strassen, Summa panels) sit in
     loops where that would put O(rows) words back on the minor heap. *)
  if src != dst || dst_pos <= src_pos then
    for i = 0 to len - 1 do
      unsafe_set dst (dst_pos + i) (unsafe_get src (src_pos + i))
    done
  else
    for i = len - 1 downto 0 do
      unsafe_set dst (dst_pos + i) (unsafe_get src (src_pos + i))
    done

let unsafe_blit ~src ~src_pos ~dst ~dst_pos ~len =
  for i = 0 to len - 1 do
    unsafe_set dst (dst_pos + i) (unsafe_get src (src_pos + i))
  done

let equal (a : t) (b : t) =
  length a = length b
  &&
  let ok = ref true in
  for i = 0 to length a - 1 do
    (* Bitwise equality: Int64 views so 0. <> -0. and NaN = NaN — this
       is the byte-identity predicate the kernel tests gate on. *)
    if
      not
        (Int64.equal
           (Int64.bits_of_float (unsafe_get a i))
           (Int64.bits_of_float (unsafe_get b i)))
    then ok := false
  done;
  !ok
