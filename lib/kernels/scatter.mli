(** Counting-based scatter/partition kernels (paper §3, phase 2).

    The sample-sort family routes every key to a bucket chosen by binary
    search among [p - 1] splitters.  The original implementation built a
    cons cell per key and re-concatenated ([O(n)] short-lived
    allocations); these kernels do it in two passes — bucket-index
    histogram, exclusive prefix sum, scatter into one preallocated array
    — with [O(p)] auxiliary allocation beyond the output array itself.

    The scatter is {e stable}: within each bucket, keys keep their input
    order.  Stability is what makes the pool-parallel variants
    byte-identical to the sequential kernel at any domain count: slice
    [s]'s keys for bucket [b] always land before slice [s + 1]'s, so the
    output is independent of how slices are scheduled.

    Float-specialized entry points ([..._floats]) are compiled
    monomorphically: generic access to an unboxed [float array] boxes
    every element it reads, which would put the [O(n)] allocation right
    back.  Use them for [float array] keys. *)

type 'a t = {
  data : 'a array;
      (** All keys, bucket-contiguous and stable within each bucket. *)
  offsets : int array;
      (** [p + 1] entries; bucket [b] is [data.(offsets.(b)) ..
          data.(offsets.(b + 1) - 1)], a zero-copy view. *)
}

type slice = { mutable lo : int; mutable len : int }
(** Stack-like slice geometry: one record allocated up front and
    overwritten per query, so walking every bucket of every pass costs
    zero allocation (the tuple-returning predecessor allocated a block
    per call).  Not for sharing across domains — give each worker its
    own, or read {!bucket_lo}/{!bucket_len} directly. *)

val slice_make : unit -> slice
(** A fresh slice record ([lo = 0], [len = 0]). *)

val num_buckets : 'a t -> int
(** [Array.length offsets - 1]. *)

val bucket_lo : 'a t -> int -> int
(** Offset of bucket [b] inside [t.data] — an unallocated int read. *)

val bucket_len : 'a t -> int -> int
(** Length of bucket [b] — an unallocated int read. *)

val bucket_slice : 'a t -> int -> slice -> unit
(** [bucket_slice t b s] overwrites [s] with bucket [b]'s geometry. *)

val bucket_sizes : 'a t -> int array
(** Length of every bucket (fresh [O(p)] array). *)

val bucket : 'a t -> int -> 'a array
(** [bucket t b] copies bucket [b] out into a fresh array. *)

val bucket_index : ?cmp:('a -> 'a -> int) -> 'a array -> 'a -> int
(** [bucket_index splitters key]: smallest [i] with
    [cmp key splitters.(i) < 0], or [Array.length splitters] when none —
    [O(log p)] comparisons.  Splitters must be sorted. *)

val bucket_index_floats : float array -> float -> int
(** Monomorphic {!bucket_index} with [Float.compare] ordering. *)

val histogram : ?cmp:('a -> 'a -> int) -> 'a array -> splitters:'a array -> int array
(** Bucket sizes in one counting pass — no scatter, [O(p)] allocation.
    (Generic: boxes each key read from an unboxed float array; use
    {!histogram_floats} for floats.) *)

val histogram_floats : float array -> splitters:float array -> int array
(** Monomorphic {!histogram}. *)

val histogram_floats_into : int array -> float array -> splitters:float array -> unit
(** {!histogram_floats} into a caller-owned [counts] buffer of at least
    [|splitters| + 1] entries (zeroed first; entries past [p] are left
    alone) — the refinement loops of histogram sort reuse one buffer
    across every pass instead of allocating per sweep. *)

val partition : ?cmp:('a -> 'a -> int) -> 'a array -> splitters:'a array -> 'a t
(** Two-pass sequential scatter.  Beyond the output [data] array, it
    allocates two [p + 1] int arrays — nothing per key. *)

val partition_floats : float array -> splitters:float array -> float t
(** Monomorphic {!partition}: zero per-key allocation on float keys. *)

val partition_pool :
  ?cmp:('a -> 'a -> int) -> ?workers:int -> Exec.Pool.t -> 'a array -> splitters:'a array -> 'a t
(** Pool-parallel scatter: per-worker local histograms over disjoint
    slices, merged prefix, parallel scatter into disjoint regions.  The
    slice geometry depends only on [Array.length keys], and the scatter
    is stable, so the result is byte-identical to {!partition} at any
    pool size (including a torn-down pool).  Auxiliary allocation is
    [O(slices · p)] ints. *)

val partition_floats_pool :
  ?workers:int -> Exec.Pool.t -> float array -> splitters:float array -> float t
(** Monomorphic {!partition_pool}. *)
