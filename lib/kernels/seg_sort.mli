(** In-place sorting of an array segment.

    The sample-sort family sorts each bucket of the scattered flat array
    ({!Scatter.t}) in place; [Array.sort] only takes whole arrays, so the
    old code paid an [Array.sub] / sort / blit round-trip (or a fresh
    array per bucket) per segment.  These routines sort [data.(lo) ..
    data.(lo + len - 1)] directly with zero heap allocation: introsort —
    median-of-three quicksort, insertion sort below 16 elements, heapsort
    past a [2 log₂ len] depth bound, so adversarial inputs stay
    [O(len log len)].

    The result is the unique sorted sequence of the segment's multiset
    (the sort is not stable, like [Array.sort]); elements outside the
    segment are untouched. *)

val sort : ?cmp:('a -> 'a -> int) -> 'a array -> lo:int -> len:int -> unit
(** [sort data ~lo ~len] sorts the segment by [cmp] (default
    [Stdlib.compare]).  Raises [Invalid_argument] when the segment does
    not lie inside [data]. *)

val sort_floats : float array -> lo:int -> len:int -> unit
(** Monomorphic [sort ~cmp:Float.compare] on unboxed floats — no closure
    call and no boxing per comparison.  NaNs are treated as equal to
    everything (the routine still terminates, but their position is
    unspecified); the random-key workloads never contain them. *)
