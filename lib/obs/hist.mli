(** Log2-bucketed (HDR-style) histograms with per-domain shards.

    Values are non-negative integers (nanoseconds, sizes, depths;
    negative samples clamp to 0).  Values below [2^5] are counted
    exactly; larger values land in one of 32 linear sub-buckets per
    power-of-two octave, so bucket width never exceeds 1/32 of the
    bucket's lower bound and quantile estimates carry a bounded ~3%
    relative error.  The full non-negative [int] range fits in
    {!n_buckets} slots (~15 kB per histogram per recording domain).

    Disabled-mode contract (the default): {!record}/{!record_s} are a
    single atomic flag load and allocate zero words.  Enabled-mode
    recording is also allocation-free once a domain's shard exists; hot
    loops should hoist {!shard} out of the loop and use {!record_into}
    (unconditional — gate it on your own cached enabled check).

    Registration is idempotent by name and mutex-protected, like
    [Metrics]; register at module init, not in hot loops. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

type t
(** A registered histogram. *)

val create : string -> t
(** Register (or look up) a histogram by name. *)

val name : t -> string

val record : t -> int -> unit
(** Count one sample.  Zero-allocation; no-op while disabled. *)

val record_s : t -> float -> unit
(** [record_s h seconds] records a duration in seconds as integer
    nanoseconds (conversion happens after the enabled check). *)

type shard
(** One domain's slots for one histogram. *)

val shard : t -> shard
(** This domain's shard for [t], created on first use.  Call outside
    hot loops; the handle stays valid for the domain's lifetime. *)

val record_into : shard -> int -> unit
(** Unconditional record into a cached shard: a few domain-local array
    stores, zero allocation, no enabled check — the caller is expected
    to have hoisted the gate. *)

(* --- bucket geometry (pure, exposed for tests and exporters) --- *)

val n_buckets : int
val bucket_of : int -> int
(** Bucket index of a clamped non-negative value, in [0, n_buckets). *)

val bucket_lo : int -> int
val bucket_hi : int -> int
(** Inclusive value range covered by a bucket index. *)

(* --- snapshots --- *)

type summary = {
  s_name : string;
  count : int;
  sum : int;
  min_v : int;  (** exact tracked minimum; 0 when [count = 0] *)
  max_v : int;  (** exact tracked maximum; 0 when [count = 0] *)
  counts : int array;  (** merged bucket counts, length {!n_buckets} *)
}

val snapshot_one : t -> summary
val snapshot : unit -> summary list
(** Merge all domain shards; registration order. *)

val reset : unit -> unit
(** Zero every shard.  Registrations remain. *)

val mean : summary -> float

val quantile : summary -> float -> int
(** [quantile s q] estimates the [q]-quantile ([0 <= q <= 1]) from the
    merged buckets: never below the true sample, overshooting by at
    most one bucket width (relative error <= 1/32); [q = 0] and
    [q = 1] return the exact tracked min/max. *)
