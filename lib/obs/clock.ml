(* The monotonic nanosecond clock, shared by every measured path in the
   repo (pool instrumentation, span tracing, Multicore.speedup, bench).
   Wall clocks ([Unix.gettimeofday], [Sys.time]) are subject to NTP slew
   and must not appear in measured paths.

   The external is re-declared here (the stubs come from
   bechamel.monotonic_clock, which the library links) so the int64
   result stays unboxed through [Int64.to_int]: a [now] call then
   allocates nothing, which is what lets the tracing hot path stay
   allocation-free even when enabled. *)

external clock_linux_get_time : unit -> (int64[@unboxed])
  = "clock_linux_get_time_bytecode" "clock_linux_get_time_native"
[@@noalloc]

let now_ns () = Int64.to_int (clock_linux_get_time ())
let now_ns64 () = clock_linux_get_time ()

let ns_to_s ns = float_of_int ns /. 1e9

let elapsed_s f =
  let t0 = now_ns () in
  let result = f () in
  (result, ns_to_s (now_ns () - t0))
