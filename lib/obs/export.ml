(* Exporters: Chrome trace-event JSON (loadable in Perfetto and
   about://tracing) for the span tracer, and a flat JSON rendering of
   the metrics snapshot.  The building blocks ([duration], [complete],
   [thread_name], ...) are exposed so other timeline sources — the
   simulated [Des.Trace] Gantt in particular — can render through the
   same format.

   Every trace export carries a "trace_stats" metadata event with
   explicit recorded / ring_dropped / sampled_out / emitted counts, so
   a bounded artifact can never silently pretend to be complete. *)

(* Trace-event JSON array format: a top-level list of event objects.
   Timestamps ("ts") are in microseconds. *)

let event_obj ~name ~ph ~tid ~ts_us extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Float ts_us);
       ("pid", Json.Int 1);
       ("tid", Json.Int tid);
     ]
    @ extra)

let duration ~phase ~name ~tid ~ts_us =
  event_obj ~name ~ph:(match phase with `Begin -> "B" | `End -> "E") ~tid ~ts_us []

let complete ~name ~tid ~ts_us ~dur_us =
  event_obj ~name ~ph:"X" ~tid ~ts_us [ ("dur", Json.Float dur_us) ]

let instant ~name ~tid ~ts_us =
  event_obj ~name ~ph:"i" ~tid ~ts_us [ ("s", Json.String "t") ]

let process_name name =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let thread_name ~tid name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let sampling_stats ~recorded ~dropped ~sampled_out ~emitted extra =
  Json.Obj
    [
      ("name", Json.String "trace_stats");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ( "args",
        Json.Obj
          ([
             ("recorded", Json.Int recorded);
             ("dropped", Json.Int dropped);
             ("sampled_out", Json.Int sampled_out);
             ("emitted", Json.Int emitted);
           ]
          @ extra) );
    ]

(* --- span tracer export ------------------------------------------------- *)

let ring_stats_fields () =
  [
    ( "ring_dropped_per_domain",
      Json.Obj
        (List.map
           (fun (d, n) -> (string_of_int d, Json.Int n))
           (Trace.dropped_by_domain ())) );
  ]

(* Pair B/E events into complete spans per domain (spans nest, so a
   per-domain stack suffices).  Orphans — an E whose B was lost to ring
   wrap, or a B still open — cannot be sampled as spans; they are
   counted explicitly, never silently discarded. *)
let pair_spans evs =
  let stacks = Hashtbl.create 8 in
  let spans = ref [] and instants = ref [] and unpaired = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Instant -> instants := e :: !instants
      | Trace.Begin ->
          let st = try Hashtbl.find stacks e.domain with Not_found -> [] in
          Hashtbl.replace stacks e.domain (e :: st)
      | Trace.End -> (
          match Hashtbl.find_opt stacks e.domain with
          | Some (b :: rest) when b.Trace.name = e.name ->
              Hashtbl.replace stacks e.domain rest;
              spans := (b, e) :: !spans
          | _ -> incr unpaired))
    evs;
  Hashtbl.iter (fun _ st -> unpaired := !unpaired + List.length st) stacks;
  (List.rev !spans, List.rev !instants, !unpaired)

let trace_json ?max_events () =
  let evs = Trace.events () in
  let recorded = Trace.recorded () in
  let ring_dropped = Trace.dropped () in
  let n_evs = List.length evs in
  let domains =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.domain) evs)
  in
  (* Rebase timestamps so the trace starts near 0 (raw monotonic ns
     since boot would cost double precision for no benefit). *)
  let t0 = List.fold_left (fun acc (e : Trace.event) -> min acc e.ts_ns) max_int evs in
  let us ts_ns = float_of_int (ts_ns - t0) /. 1e3 in
  let metadata =
    process_name "nldl"
    :: List.map
         (fun d ->
           thread_name ~tid:d
             (if d = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" d))
         domains
  in
  let body, sampled_out, extra_stats =
    match max_events with
    | Some budget when n_evs > budget ->
        (* Over budget: collapse B/E pairs into "X" complete events
           (each independent, so systematic sampling cannot break
           nesting) and 1-in-k sample spans and instants alike. *)
        let spans, instants, unpaired = pair_spans evs in
        let candidates = List.length spans + List.length instants in
        let k = (candidates + budget - 1) / max 1 budget in
        let k = max 1 k in
        let take = Sample.every k in
        let body =
          List.filter_map
            (fun ((b : Trace.event), (e : Trace.event)) ->
              if Sample.keep take then
                Some
                  (complete ~name:b.name ~tid:b.domain ~ts_us:(us b.ts_ns)
                     ~dur_us:(float_of_int (e.ts_ns - b.ts_ns) /. 1e3))
              else None)
            spans
          @ List.filter_map
              (fun (e : Trace.event) ->
                if Sample.keep take then
                  Some (instant ~name:e.name ~tid:e.domain ~ts_us:(us e.ts_ns))
                else None)
              instants
        in
        ( body,
          candidates - Sample.kept take,
          [ ("sample_every", Json.Int k); ("unpaired", Json.Int unpaired) ] )
    | _ ->
        let body =
          List.map
            (fun (e : Trace.event) ->
              let ts_us = us e.ts_ns in
              match e.kind with
              | Trace.Begin -> duration ~phase:`Begin ~name:e.name ~tid:e.domain ~ts_us
              | Trace.End -> duration ~phase:`End ~name:e.name ~tid:e.domain ~ts_us
              | Trace.Instant -> instant ~name:e.name ~tid:e.domain ~ts_us)
            evs
        in
        (body, 0, [])
  in
  let stats =
    sampling_stats ~recorded ~dropped:ring_dropped ~sampled_out
      ~emitted:(List.length body)
      (ring_stats_fields () @ extra_stats)
  in
  Json.List ((stats :: metadata) @ body)

let write_trace ?max_events path = Json.write_file path (trace_json ?max_events ())

(* --- metrics export ----------------------------------------------------- *)

let quantile_points = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

let fixed_hist_json (h : Metrics.hist_snapshot) =
  let quantiles =
    if h.total = 0 then []
    else
      [
        ( "quantiles",
          Json.Obj
            (List.map
               (fun (k, q) -> (k, Json.Float (Metrics.hist_quantile h q)))
               quantile_points) );
      ]
  in
  Json.Obj
    ([
       ( "bounds",
         Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)) );
       ( "buckets",
         Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.buckets)) );
       ("total", Json.Int h.total);
     ]
    @ quantiles)

let log2_hist_json (s : Hist.summary) =
  let nonzero = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then
        nonzero :=
          Json.List
            [ Json.Int (Hist.bucket_lo i); Json.Int (Hist.bucket_hi i); Json.Int c ]
          :: !nonzero)
    s.Hist.counts;
  Json.Obj
    [
      ("count", Json.Int s.Hist.count);
      ("sum", Json.Int s.Hist.sum);
      ("min", Json.Int s.Hist.min_v);
      ("max", Json.Int s.Hist.max_v);
      ("mean", Json.Float (Hist.mean s));
      ( "quantiles",
        Json.Obj
          (List.map
             (fun (k, q) -> (k, Json.Int (Hist.quantile s q)))
             quantile_points) );
      ("buckets", Json.List (List.rev !nonzero));
    ]

let trace_stats_json () =
  Json.Obj
    [
      ("recorded", Json.Int (Trace.recorded ()));
      ("dropped", Json.Int (Trace.dropped ()));
      ( "dropped_per_domain",
        Json.Obj
          (List.map
             (fun (d, n) -> (string_of_int d, Json.Int n))
             (Trace.dropped_by_domain ())) );
    ]

let metrics_json () =
  let s = Metrics.snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.counters));
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.Metrics.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, h) -> (n, fixed_hist_json h))
             s.Metrics.histograms) );
      ( "hists",
        Json.Obj
          (List.map
             (fun (sum : Hist.summary) -> (sum.Hist.s_name, log2_hist_json sum))
             (Hist.snapshot ())) );
      ("trace", trace_stats_json ());
    ]

let write_metrics path = Json.write_file path (metrics_json ())
