(* Exporters: Chrome trace-event JSON (loadable in Perfetto and
   about://tracing) for the span tracer, and a flat JSON rendering of
   the metrics snapshot.  The building blocks ([duration], [complete],
   [thread_name], ...) are exposed so other timeline sources — the
   simulated [Des.Trace] Gantt in particular — can render through the
   same format. *)

(* Trace-event JSON array format: a top-level list of event objects.
   Timestamps ("ts") are in microseconds. *)

let event_obj ~name ~ph ~tid ~ts_us extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Float ts_us);
       ("pid", Json.Int 1);
       ("tid", Json.Int tid);
     ]
    @ extra)

let duration ~phase ~name ~tid ~ts_us =
  event_obj ~name ~ph:(match phase with `Begin -> "B" | `End -> "E") ~tid ~ts_us []

let complete ~name ~tid ~ts_us ~dur_us =
  event_obj ~name ~ph:"X" ~tid ~ts_us [ ("dur", Json.Float dur_us) ]

let instant ~name ~tid ~ts_us =
  event_obj ~name ~ph:"i" ~tid ~ts_us [ ("s", Json.String "t") ]

let process_name name =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let thread_name ~tid name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let trace_json () =
  let evs = Trace.events () in
  (* Rebase timestamps so the trace starts near 0 (raw monotonic ns
     since boot would cost double precision for no benefit). *)
  let t0 = List.fold_left (fun acc (e : Trace.event) -> min acc e.ts_ns) max_int evs in
  let domains =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.domain) evs)
  in
  let metadata =
    process_name "nldl"
    :: List.map
         (fun d ->
           thread_name ~tid:d
             (if d = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" d))
         domains
  in
  let body =
    List.map
      (fun (e : Trace.event) ->
        let ts_us = float_of_int (e.ts_ns - t0) /. 1e3 in
        match e.kind with
        | Trace.Begin -> duration ~phase:`Begin ~name:e.name ~tid:e.domain ~ts_us
        | Trace.End -> duration ~phase:`End ~name:e.name ~tid:e.domain ~ts_us
        | Trace.Instant -> instant ~name:e.name ~tid:e.domain ~ts_us)
      evs
  in
  Json.List (metadata @ body)

let write_trace path = Json.write_file path (trace_json ())

let metrics_json () =
  let s = Metrics.snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.counters));
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.Metrics.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, (h : Metrics.hist_snapshot)) ->
               ( n,
                 Json.Obj
                   [
                     ( "bounds",
                       Json.List
                         (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)) );
                     ( "buckets",
                       Json.List
                         (Array.to_list (Array.map (fun c -> Json.Int c) h.buckets)) );
                     ("total", Json.Int h.total);
                   ] ))
             s.Metrics.histograms) );
    ]

let write_metrics path = Json.write_file path (metrics_json ())
