(* Minimal JSON emitter/parser shared by the bench artifact
   (BENCH_results.json), the Chrome trace exporter and the metrics
   snapshot.  No external dependency: the values exchanged are records
   of numbers and strings.  Promoted from bench/json_out.ml so the repo
   grows exactly one hand-rolled JSON layer. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Shortest decimal form that parses back to the same float: %.6g is
   fine for human-facing reports but loses bits, and the query-plane
   wire format (Api/Serve line protocol) needs byte-stable, lossless
   values. *)
let float_compact f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit_compact buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_compact f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit_compact buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit_compact buf item)
        fields;
      Buffer.add_char buf '}'

let to_compact v =
  let buf = Buffer.create 256 in
  emit_compact buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* --- parser ------------------------------------------------------------ *)

(* Recursive-descent parser for the subset above (which is all of JSON
   minus exotic number forms).  Exists so the exporter tests can verify
   emitted traces are well-formed without shelling out to python. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Codepoints above 0x7f are emitted raw by [escape], so a
                 plain byte round-trips everything this repo writes. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          let rec loop () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          loop ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            (key, parse_value ())
          in
          let fields = ref [ field () ] in
          let rec loop () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          loop ();
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
