(* Span tracing on the monotonic nanosecond clock.

   Events are recorded into per-domain ring buffers (parallel int /
   byte / string arrays, preallocated on a domain's first event), so
   recording is a handful of array stores with no synchronization and
   no allocation — the name argument is expected to be a static string
   literal.  The whole layer is gated on one atomic flag: while
   disabled (the default) [begin_span]/[end_span]/[instant] are a
   single flag load, zero allocation. *)

[@@@nldl.unsafe_zone
  "ring writes index with [len land mask], always inside the fixed-capacity \
   per-domain arrays allocated at DLS-key init (U-audit 2026-08)"]
[@@@nldl.domain_safe
  "per-domain DLS ring buffers; the global [bufs] registry list is only \
   consed under [mutex] at shard creation and read at export time"]

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* 16K events per domain; the ring wraps, keeping the newest events. *)
let ring_bits = 14
let capacity = 1 lsl ring_bits
let mask = capacity - 1

type buf = {
  dom : int;
  ts : int array;
  kinds : Bytes.t;
  names : string array;
  mutable len : int; (* total events ever recorded; ring index is [len land mask] *)
}

let mutex = Mutex.create ()
let bufs : buf list ref = ref []

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          ts = Array.make capacity 0;
          kinds = Bytes.make capacity '\000';
          names = Array.make capacity "";
          len = 0;
        }
      in
      Mutex.lock mutex;
      bufs := b :: !bufs;
      Mutex.unlock mutex;
      b)

(* [i = len land mask] with [mask = capacity - 1] and all three buffers
   allocated at [capacity] in [buf_key]'s initializer. *)
let[@nldl.bounds_validated "Trace.buf_key"] record kind name =
  let b = Domain.DLS.get buf_key in
  let i = b.len land mask in
  Array.unsafe_set b.ts i (Clock.now_ns ());
  Bytes.unsafe_set b.kinds i (Char.unsafe_chr kind);
  Array.unsafe_set b.names i name;
  b.len <- b.len + 1

let begin_span name = if Atomic.get enabled_flag then record 0 name
let end_span name = if Atomic.get enabled_flag then record 1 name
let instant name = if Atomic.get enabled_flag then record 2 name

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    record 0 name;
    match f () with
    | v ->
        record 1 name;
        v
    | exception e ->
        record 1 name;
        raise e
  end

(* --- collection -------------------------------------------------------- *)

type kind = Begin | End | Instant
type event = { domain : int; ts_ns : int; kind : kind; name : string }

let decode_kind = function 0 -> Begin | 1 -> End | _ -> Instant

let events () =
  Mutex.lock mutex;
  let per_buf =
    List.rev_map
      (fun b ->
        let total = b.len in
        let first = max 0 (total - capacity) in
        List.init (total - first) (fun j ->
            let idx = (first + j) land mask in
            {
              domain = b.dom;
              ts_ns = b.ts.(idx);
              kind = decode_kind (Char.code (Bytes.get b.kinds idx));
              name = b.names.(idx);
            }))
      !bufs
  in
  Mutex.unlock mutex;
  (* Stable sort on the shared clock: per-domain recording order is
     preserved for equal timestamps. *)
  List.stable_sort
    (fun a b -> compare a.ts_ns b.ts_ns)
    (List.concat per_buf)

let dropped () =
  Mutex.lock mutex;
  let d = List.fold_left (fun acc b -> acc + max 0 (b.len - capacity)) 0 !bufs in
  Mutex.unlock mutex;
  d

let dropped_by_domain () =
  Mutex.lock mutex;
  let l = List.rev_map (fun b -> (b.dom, max 0 (b.len - capacity))) !bufs in
  Mutex.unlock mutex;
  List.sort compare l

let recorded () =
  Mutex.lock mutex;
  let n = List.fold_left (fun acc b -> acc + b.len) 0 !bufs in
  Mutex.unlock mutex;
  n

let clear () =
  Mutex.lock mutex;
  List.iter (fun b -> b.len <- 0) !bufs;
  Mutex.unlock mutex
