(** Exporters: Chrome trace-event JSON (Perfetto / about://tracing)
    and a flat metrics snapshot.

    The trace file is the JSON *array* format: a top-level list of
    event objects with ["ts"] in microseconds, ["pid"]/["tid"] lanes
    (one tid per domain), metadata events naming the process and
    threads.  The event builders are exposed so other timeline sources
    (e.g. the simulated [Des.Trace]) render through the same format. *)

val duration :
  phase:[ `Begin | `End ] -> name:string -> tid:int -> ts_us:float -> Json.t
(** A "B"/"E" duration event. *)

val complete : name:string -> tid:int -> ts_us:float -> dur_us:float -> Json.t
(** An "X" complete event (span with an explicit duration). *)

val instant : name:string -> tid:int -> ts_us:float -> Json.t
(** An "i" instant event (thread scope). *)

val process_name : string -> Json.t
val thread_name : tid:int -> string -> Json.t
(** "M" metadata events labelling the pid / a tid lane. *)

val sampling_stats :
  recorded:int ->
  dropped:int ->
  sampled_out:int ->
  emitted:int ->
  (string * Json.t) list ->
  Json.t
(** A "trace_stats" metadata event carrying explicit loss accounting;
    the extra fields are appended to its [args].  Every bounded
    exporter (runtime trace, sim-time Gantt) embeds one of these so
    truncation is never silent. *)

val trace_json : ?max_events:int -> unit -> Json.t
(** Render the buffered {!Trace} events, timestamps rebased to start
    near 0, preceded by a "trace_stats" metadata event (recorded /
    ring-dropped incl. per-domain / sampled_out / emitted counts) and
    process/thread metadata.

    When [max_events] is given and the buffers hold more events, B/E
    pairs are collapsed into "X" complete events and spans/instants are
    deterministically 1-in-k sampled to fit the budget; the stats event
    then also reports [sample_every] and the count of [unpaired] B/E
    orphans (ends whose begins were lost to ring wrap, or still-open
    spans). *)

val write_trace : ?max_events:int -> string -> unit

val metrics_json : unit -> Json.t
(** Render {!Metrics.snapshot} as
    [{"counters", "gauges", "histograms", "hists", "trace"}]:
    fixed-bucket histograms gain a ["quantiles"] object (p50/p90/p99,
    interpolated) when non-empty; ["hists"] renders every {!Hist}
    summary with count/sum/min/max/mean, p50/p90/p99 estimates and its
    non-zero [lo, hi, count] buckets; ["trace"] surfaces the span
    tracer's recorded/dropped counts (total and per domain). *)

val write_metrics : string -> unit
