(** Exporters: Chrome trace-event JSON (Perfetto / about://tracing)
    and a flat metrics snapshot.

    The trace file is the JSON *array* format: a top-level list of
    event objects with ["ts"] in microseconds, ["pid"]/["tid"] lanes
    (one tid per domain), metadata events naming the process and
    threads.  The event builders are exposed so other timeline sources
    (e.g. the simulated [Des.Trace]) render through the same format. *)

val duration :
  phase:[ `Begin | `End ] -> name:string -> tid:int -> ts_us:float -> Json.t
(** A "B"/"E" duration event. *)

val complete : name:string -> tid:int -> ts_us:float -> dur_us:float -> Json.t
(** An "X" complete event (span with an explicit duration). *)

val instant : name:string -> tid:int -> ts_us:float -> Json.t
(** An "i" instant event (thread scope). *)

val process_name : string -> Json.t
val thread_name : tid:int -> string -> Json.t
(** "M" metadata events labelling the pid / a tid lane. *)

val trace_json : unit -> Json.t
(** Render every buffered {!Trace} event, timestamps rebased to start
    near 0, preceded by process/thread metadata. *)

val write_trace : string -> unit

val metrics_json : unit -> Json.t
(** Render {!Metrics.snapshot} as
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val write_metrics : string -> unit
