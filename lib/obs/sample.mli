(** Deterministic sampling for bounded trace/timeline exports.

    Both primitives are replayable — the set of kept elements is a
    pure function of the constructor arguments and the offered stream —
    and both keep explicit seen/kept accounting so exporters can state
    exactly how much was dropped (no silent truncation). *)

type every
(** Systematic 1-in-k sampler (keeps elements 0, k, 2k, ...). *)

val every : int -> every
(** [every k] keeps one element in [k].  Raises [Invalid_argument] when
    [k < 1].  [every 1] keeps everything. *)

val keep : every -> bool
(** Decide the next element; zero allocation, safe in hot loops. *)

val seen : every -> int
val kept : every -> int

type 'a reservoir
(** Uniform fixed-capacity reservoir (algorithm R) over a stream of
    unknown length, driven by a private splitmix64 state. *)

val reservoir : seed:int -> capacity:int -> 'a reservoir
val offer : 'a reservoir -> 'a -> unit
val reservoir_seen : 'a reservoir -> int
val reservoir_kept : 'a reservoir -> int

val contents : 'a reservoir -> 'a list
(** Kept elements in slot order (deterministic; not stream order once
    the reservoir has wrapped). *)
