(* Log2-bucketed (HDR-style) histograms for million-event scale.

   [Metrics.histogram]'s fixed bounds work for a handful of known
   ranges but cannot resolve the heavy-tailed latencies a fault-injected
   million-task simulation produces.  [Hist] buckets by bit length with
   [sub_count] linear sub-buckets per octave: values below [sub_count]
   are counted exactly, larger values land in a bucket whose width is
   at most [1/sub_count] of its lower bound, so any quantile estimate
   carries a bounded ~3% relative error while the whole range of
   non-negative OCaml ints fits in 1856 slots.

   Recording is sharded per domain exactly like [Metrics]: each domain
   lazily allocates a private slot array per histogram (registered
   globally under [mutex], merged at snapshot), so a record is a few
   unsynchronized stores into domain-local memory.  Hot loops that
   record at every event should hoist the [shard] lookup out of the
   loop and call [record_into] directly; both paths allocate zero words
   after the shard exists. *)

[@@@nldl.unsafe_zone
  "bucket indices come from [bucket_of], which maps any clamped \
   non-negative int into [0, n_buckets); [msb_table] is indexed by a \
   byte; stats slots use constant indices 0..3 into 4-slot arrays \
   (U-audit 2026-08)"]
[@@@nldl.domain_safe
  "registry list and shard slot tables are mutated only under [mutex]; \
   hot-path records go to this domain's DLS shard, merged at snapshot \
   under the same mutex; [msb_table] is written once at module init \
   before any domain can read it"]

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* --- bucket geometry --------------------------------------------------- *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 linear sub-buckets per octave *)

(* Highest value bucket index: msb of max_int is 61, giving
   (61 - sub_bits + 1) full octaves of [sub_count] buckets on top of
   the [sub_count] exact small-value buckets. *)
let n_buckets = ((61 - sub_bits + 1) * sub_count) + sub_count

(* Bit length minus one for each byte value; index 0 is unused (callers
   guarantee v >= sub_count > 0). *)
let msb_table =
  Array.init 256 (fun i ->
      let rec go n k = if n = 0 then k else go (n lsr 1) (k + 1) in
      go i (-1))

let[@inline] msb v =
  if v lsr 32 = 0 then
    if v lsr 16 = 0 then
      if v lsr 8 = 0 then Array.unsafe_get msb_table v
      else 8 + Array.unsafe_get msb_table (v lsr 8)
    else if v lsr 24 = 0 then 16 + Array.unsafe_get msb_table (v lsr 16)
    else 24 + Array.unsafe_get msb_table (v lsr 24)
  else if v lsr 48 = 0 then
    if v lsr 40 = 0 then 32 + Array.unsafe_get msb_table (v lsr 32)
    else 40 + Array.unsafe_get msb_table (v lsr 40)
  else if v lsr 56 = 0 then 48 + Array.unsafe_get msb_table (v lsr 48)
  else 56 + Array.unsafe_get msb_table (v lsr 56)

let[@inline] bucket_of v =
  if v < sub_count then v
  else
    let m = msb v in
    let shift = m - sub_bits in
    ((shift + 1) lsl sub_bits) lor ((v lsr shift) land (sub_count - 1))

let bucket_lo i =
  if i < sub_count then i
  else
    let q = i lsr sub_bits and r = i land (sub_count - 1) in
    (sub_count lor r) lsl (q - 1)

let bucket_hi i =
  if i < sub_count then i
  else
    let q = i lsr sub_bits in
    bucket_lo i + (1 lsl (q - 1)) - 1

(* --- registry and per-domain shards ------------------------------------ *)

type t = { id : int; name : string }

(* One domain's slots for one histogram: [b] holds bucket counts, [st]
   is a 4-slot stats array (0 = count, 1 = sum, 2 = min, 3 = max) kept
   flat so [record_into] never boxes. *)
type shard = { b : int array; st : int array }

let null_shard = { b = [||]; st = [||] }

type dshard = { mutable slots : shard array (* indexed by histogram id *) }

let mutex = Mutex.create ()
let registered : t list ref = ref [] (* reverse registration order *)
let n_registered = ref 0
let dshards : dshard list ref = ref []

let dkey =
  Domain.DLS.new_key (fun () ->
      Mutex.lock mutex;
      let d = { slots = Array.make (max 8 !n_registered) null_shard } in
      dshards := d :: !dshards;
      Mutex.unlock mutex;
      d)

let create name =
  Mutex.lock mutex;
  let h =
    match List.find_opt (fun h -> h.name = name) !registered with
    | Some h -> h
    | None ->
        let h = { id = !n_registered; name } in
        incr n_registered;
        registered := h :: !registered;
        h
  in
  Mutex.unlock mutex;
  h

let name h = h.name

(* Slow path: first record of histogram [h] on this domain (or [h] was
   registered after the domain shard table was sized). *)
let new_slots d id =
  Mutex.lock mutex;
  if id >= Array.length d.slots then begin
    let grown =
      Array.make (max (id + 1) (2 * Array.length d.slots)) null_shard
    in
    Array.blit d.slots 0 grown 0 (Array.length d.slots);
    d.slots <- grown
  end;
  if d.slots.(id) == null_shard then
    d.slots.(id) <-
      { b = Array.make n_buckets 0; st = [| 0; 0; max_int; min_int |] };
  Mutex.unlock mutex;
  d.slots.(id)

let shard h =
  let d = Domain.DLS.get dkey in
  if h.id < Array.length d.slots then begin
    let s = Array.unsafe_get d.slots h.id in
    if s != null_shard then s else new_slots d h.id
  end
  else new_slots d h.id

(* [bucket_of] clamps any non-negative value into [0, buckets); the
   [st] summary slots are the fixed constants 0..3 of its 4-wide
   array. *)
let[@inline] [@nldl.bounds_validated "Hist.bucket_of"] record_into s v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  Array.unsafe_set s.b i (Array.unsafe_get s.b i + 1);
  let st = s.st in
  Array.unsafe_set st 0 (Array.unsafe_get st 0 + 1);
  Array.unsafe_set st 1 (Array.unsafe_get st 1 + v);
  if v < Array.unsafe_get st 2 then Array.unsafe_set st 2 v;
  if v > Array.unsafe_get st 3 then Array.unsafe_set st 3 v

let record h v = if Atomic.get enabled_flag then record_into (shard h) v

(* Seconds -> integer nanoseconds after the flag check, so simulated
   time distributions share the bucket geometry with the wall clock and
   the disabled path stays allocation-free. *)
let record_s h s =
  if Atomic.get enabled_flag then
    record_into (shard h) (int_of_float (s *. 1e9))

(* --- snapshot ----------------------------------------------------------- *)

type summary = {
  s_name : string;
  count : int;
  sum : int;
  min_v : int; (* 0 when count = 0 *)
  max_v : int;
  counts : int array; (* merged bucket counts, length [n_buckets] *)
}

let snapshot_one h =
  Mutex.lock mutex;
  let counts = Array.make n_buckets 0 in
  let count = ref 0 and sum = ref 0 in
  let mn = ref max_int and mx = ref min_int in
  List.iter
    (fun d ->
      if h.id < Array.length d.slots then begin
        let s = d.slots.(h.id) in
        if s != null_shard then begin
          Array.iteri (fun i v -> counts.(i) <- counts.(i) + v) s.b;
          count := !count + s.st.(0);
          sum := !sum + s.st.(1);
          if s.st.(2) < !mn then mn := s.st.(2);
          if s.st.(3) > !mx then mx := s.st.(3)
        end
      end)
    !dshards;
  Mutex.unlock mutex;
  {
    s_name = h.name;
    count = !count;
    sum = !sum;
    min_v = (if !count = 0 then 0 else !mn);
    max_v = (if !count = 0 then 0 else !mx);
    counts;
  }

let snapshot () =
  let hs = Mutex.protect mutex (fun () -> List.rev !registered) in
  List.map snapshot_one hs

let reset () =
  Mutex.lock mutex;
  List.iter
    (fun d ->
      Array.iter
        (fun s ->
          if s != null_shard then begin
            Array.fill s.b 0 (Array.length s.b) 0;
            s.st.(0) <- 0;
            s.st.(1) <- 0;
            s.st.(2) <- max_int;
            s.st.(3) <- min_int
          end)
        d.slots)
    !dshards;
  Mutex.unlock mutex

(* --- quantiles ---------------------------------------------------------- *)

let mean s = if s.count = 0 then 0. else float_of_int s.sum /. float_of_int s.count

(* Rank-based estimate: find the bucket containing the ceil(q*count)-th
   smallest sample and report its upper bound (clamped to the exact
   tracked extremes).  The estimate is never below the true value and
   overshoots by at most one bucket width, i.e. a relative error of at
   most 1/sub_count (~3%). *)
let quantile s q =
  if s.count = 0 then 0
  else if q <= 0. then s.min_v
  else if q >= 1. then s.max_v
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < n_buckets do
      cum := !cum + s.counts.(!i);
      incr i
    done;
    let est = bucket_hi (!i - 1) in
    let est = if est > s.max_v then s.max_v else est in
    if est < s.min_v then s.min_v else est
  end
