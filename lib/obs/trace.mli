(** Span tracing: begin/end spans and instant events on the monotonic
    nanosecond clock, recorded into per-domain ring buffers.

    Disabled-mode contract (the default): every recording call is a
    single atomic flag load and allocates zero words — safe to leave in
    the hottest paths.  Enabled-mode recording is also allocation-free
    (preallocated ring buffers, the clock's int64 stays unboxed), but
    pass static string literals as names: the string is stored by
    reference, not copied.

    Each domain owns a 16384-event ring buffer created on its first
    event; when it wraps, the oldest events are overwritten ({!dropped}
    counts the loss).  Collection ({!events}, {!clear}) is meant to run
    at a quiescent point — after the traced workload, not during. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val begin_span : string -> unit
val end_span : string -> unit
(** Begin/end a named span on the calling domain.  Calls must nest
    properly per domain (Chrome trace B/E semantics). *)

val instant : string -> unit
(** A zero-duration marker event. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] wraps [f] in a span, ending it on exceptions
    too.  Convenience for drivers; hot kernels should prefer explicit
    [begin_span]/[end_span] so no closure is built when disabled. *)

type kind = Begin | End | Instant
type event = { domain : int; ts_ns : int; kind : kind; name : string }

val events : unit -> event list
(** All buffered events, merged across domains, sorted by timestamp
    (stable: per-domain order is preserved for equal stamps). *)

val dropped : unit -> int
(** Events lost to ring-buffer wrap since the last {!clear}. *)

val dropped_by_domain : unit -> (int * int) list
(** Per-domain wrap losses as [(domain, dropped)] pairs, sorted by
    domain id — every domain that ever recorded appears, 0 when its
    ring has not wrapped. *)

val recorded : unit -> int
(** Total events ever recorded (kept + dropped) since the last
    {!clear}, across all domains. *)

val clear : unit -> unit
(** Empty every ring buffer (buffers stay allocated). *)
