(** Metrics registry: named counters, gauges and fixed-bucket latency
    histograms, sharded per domain.

    Counter and histogram increments write to domain-private slot
    arrays (one shard per domain, created on first touch), so hot-path
    updates never contend and never share cache lines across domains;
    shards are merged only by {!snapshot}.  Everything is gated on one
    atomic flag: while disabled (the default) each operation is a
    single flag load and allocates zero words.

    Registration ([counter], [gauge], [histogram]) is idempotent by
    name and cheap but takes a mutex — register at module init or
    outside hot loops.  {!snapshot} taken while other domains are
    actively incrementing may lag by in-flight updates; taken at a
    quiescent point (between pool submissions) it is exact. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a counter. *)

val incr_counter : counter -> unit
val add : counter -> int -> unit

val gauge : string -> gauge
(** Register (or look up) a gauge; initial value NaN (unset). *)

val set_gauge : gauge -> float -> unit
(** Last write wins across domains. *)

val histogram : string -> bounds:float array -> histogram
(** Register a histogram with the given strictly-increasing bucket
    upper bounds; an implicit +inf overflow bucket is appended.
    Raises [Invalid_argument] on empty or non-increasing bounds. *)

val observe : histogram -> float -> unit
(** Count [v] into the first bucket whose bound exceeds it. *)

val observe_int : histogram -> int -> unit
(** [observe] of an integer sample (e.g. nanoseconds); the float
    conversion happens after the enabled check, so the disabled path
    stays allocation-free. *)

type hist_snapshot = { bounds : float array; buckets : int array; total : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** Merge all shards; names in registration order. *)

val reset : unit -> unit
(** Zero every shard and reset gauges to NaN.  Registrations remain. *)

val counter_value : snapshot -> string -> int option

val hist_quantile : hist_snapshot -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile by linear
    interpolation inside the bucket containing rank [q * total];
    samples in the +inf overflow bucket clamp to the last finite
    bound.  NaN when the histogram is empty. *)
