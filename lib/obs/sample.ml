(* Deterministic sampling primitives for bounded exports.

   Two shapes, both seeded and replayable so sampled artifacts are
   byte-identical across runs and domain counts:

   - [every k]: systematic 1-in-k sampling with explicit seen/kept
     accounting.  Zero allocation per decision — safe to consult in
     instrumented hot loops.

   - [reservoir]: uniform fixed-capacity sampling over a stream of
     unknown length (Vitter's algorithm R) driven by a private
     splitmix64 generator, not [Stdlib.Random], so the picks are a
     pure function of (seed, stream).

   Neither primitive drops anything silently: both expose how many
   elements were seen and how many were kept, and exporters are
   expected to write those numbers into the artifact. *)

(* --- systematic every-k ------------------------------------------------- *)

type every = { k : int; mutable seen : int; mutable kept : int }

let every k =
  if k < 1 then invalid_arg "Sample.every: k must be >= 1";
  { k; seen = 0; kept = 0 }

let[@inline] keep e =
  let take = e.seen mod e.k = 0 in
  e.seen <- e.seen + 1;
  if take then e.kept <- e.kept + 1;
  take

let seen e = e.seen
let kept e = e.kept

(* --- splitmix64 --------------------------------------------------------- *)

(* Same generator family as Numerics.Rng's seeding stage, duplicated
   here so [lib/obs] keeps zero dependencies on the numerics stack. *)
let sm64_next state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let s = z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, Int64.logxor z (Int64.shift_right_logical z 31))

(* --- reservoir ---------------------------------------------------------- *)

type 'a reservoir = {
  cap : int;
  mutable state : int64;
  slots : 'a option array;
  mutable r_seen : int;
}

let reservoir ~seed ~capacity =
  if capacity < 1 then invalid_arg "Sample.reservoir: capacity must be >= 1";
  {
    cap = capacity;
    state = Int64.of_int seed;
    slots = Array.make capacity None;
    r_seen = 0;
  }

let offer r x =
  let i = r.r_seen in
  r.r_seen <- i + 1;
  if i < r.cap then r.slots.(i) <- Some x
  else begin
    let state, z = sm64_next r.state in
    r.state <- state;
    (* Map to [0, i] without modulo bias mattering here: i is far below
       2^62 in any realistic stream. *)
    let j = Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int (i + 1))) in
    if j < r.cap then r.slots.(j) <- Some x
  end

let reservoir_seen r = r.r_seen
let reservoir_kept r = min r.r_seen r.cap

let contents r =
  Array.to_list r.slots
  |> List.filter_map (fun x -> x)
