(* Metrics registry: named counters, gauges and fixed-bucket histograms.

   Counters and histograms are sharded per domain: every domain that
   touches a metric owns a private slot array (obtained through
   [Domain.DLS], registered globally on first touch), so a hot-path
   increment is a plain unsynchronized write to domain-local memory —
   no atomics, no contention, and no false sharing because each
   domain's slots live in their own heap blocks.  Shards are merged
   only at {!snapshot} time.

   The whole layer is gated on one atomic flag: when disabled (the
   default) every operation is a single flag load and allocates
   nothing. *)

[@@@nldl.unsafe_zone
  "counter/histogram slots are indexed by dense metric ids after \
   grow_counts/hist_slots guarantee the shard arrays cover the id, and the \
   bucket scan is bounded by |h_bounds| (U-audit 2026-08)"]
[@@@nldl.domain_safe
  "registry lists and counts are mutated only under [mutex]; hot-path \
   increments go to this domain's DLS shard, merged at snapshot under the \
   same mutex"]

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type counter = { c_id : int; c_name : string }
type gauge = { g_name : string; mutable g_value : float }
type histogram = { h_id : int; h_name : string; h_bounds : float array }

(* Shard of one domain: slot arrays indexed by metric id, grown under
   the registry mutex when a metric registered later is first touched
   from this domain. *)
type shard = {
  mutable s_counts : int array;
  mutable s_hists : int array array;
}

let mutex = Mutex.create ()
let counters : counter list ref = ref [] (* reverse registration order *)
let gauges : gauge list ref = ref []
let histograms : histogram list ref = ref []
let n_counters = ref 0
let n_histograms = ref 0
let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock mutex;
      let s =
        {
          s_counts = Array.make (max 8 !n_counters) 0;
          s_hists =
            Array.init !n_histograms (fun _ -> [||]);
        }
      in
      (* Bucket arrays are filled in lazily by [hist_slots]; ids are
         dense so positional init is enough. *)
      shards := s :: !shards;
      Mutex.unlock mutex;
      s)

let counter name =
  Mutex.lock mutex;
  let c =
    match List.find_opt (fun c -> c.c_name = name) !counters with
    | Some c -> c
    | None ->
        let c = { c_id = !n_counters; c_name = name } in
        incr n_counters;
        counters := c :: !counters;
        c
  in
  Mutex.unlock mutex;
  c

let gauge name =
  Mutex.lock mutex;
  let g =
    match List.find_opt (fun g -> g.g_name = name) !gauges with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_value = Float.nan } in
        gauges := g :: !gauges;
        g
  in
  Mutex.unlock mutex;
  g

let histogram name ~bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty bounds";
  for i = 0 to Array.length bounds - 2 do
    if bounds.(i) >= bounds.(i + 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done;
  Mutex.lock mutex;
  let h =
    match List.find_opt (fun h -> h.h_name = name) !histograms with
    | Some h -> h
    | None ->
        let h = { h_id = !n_histograms; h_name = name; h_bounds = Array.copy bounds } in
        incr n_histograms;
        histograms := h :: !histograms;
        h
  in
  Mutex.unlock mutex;
  h

(* Slow path: the counter was registered after this domain's shard was
   created.  Grow under the mutex so [snapshot] never sees a torn
   shard. *)
let grow_counts s id =
  Mutex.lock mutex;
  if id >= Array.length s.s_counts then begin
    let grown = Array.make (max (id + 1) (2 * Array.length s.s_counts)) 0 in
    Array.blit s.s_counts 0 grown 0 (Array.length s.s_counts);
    s.s_counts <- grown
  end;
  Mutex.unlock mutex

let add c k =
  if Atomic.get enabled_flag then begin
    let s = Domain.DLS.get shard_key in
    if c.c_id >= Array.length s.s_counts then grow_counts s c.c_id;
    let a = s.s_counts in
    Array.unsafe_set a c.c_id (Array.unsafe_get a c.c_id + k)
  end

let incr_counter c = add c 1

let set_gauge g v = if Atomic.get enabled_flag then g.g_value <- v

let hist_slots s (h : histogram) =
  if h.h_id >= Array.length s.s_hists || Array.length s.s_hists.(h.h_id) = 0 then begin
    Mutex.lock mutex;
    if h.h_id >= Array.length s.s_hists then begin
      let grown = Array.make (max (h.h_id + 1) (2 * max 1 (Array.length s.s_hists))) [||] in
      Array.blit s.s_hists 0 grown 0 (Array.length s.s_hists);
      s.s_hists <- grown
    end;
    if Array.length s.s_hists.(h.h_id) = 0 then
      s.s_hists.(h.h_id) <- Array.make (Array.length h.h_bounds + 1) 0;
    Mutex.unlock mutex
  end;
  s.s_hists.(h.h_id)

let observe_enabled h v =
  let s = Domain.DLS.get shard_key in
  let slots = hist_slots s h in
  let bounds = h.h_bounds in
  let m = Array.length bounds in
  (* First bucket whose upper bound exceeds [v]; the last bucket is
     the +inf overflow.  Linear scan: bound arrays are short. *)
  let b = ref 0 in
  while !b < m && v >= Array.unsafe_get bounds !b do
    Stdlib.incr b
  done;
  Array.unsafe_set slots !b (Array.unsafe_get slots !b + 1)

let observe h v = if Atomic.get enabled_flag then observe_enabled h v

(* The int variant keeps the disabled path allocation-free: the float
   conversion (which boxes at the call boundary) only happens once the
   flag check has passed. *)
let observe_int h v =
  if Atomic.get enabled_flag then observe_enabled h (float_of_int v)

(* --- snapshot ---------------------------------------------------------- *)

type hist_snapshot = { bounds : float array; buckets : int array; total : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot () =
  Mutex.lock mutex;
  let counter_sums =
    List.rev_map
      (fun c ->
        let sum =
          List.fold_left
            (fun acc s ->
              if c.c_id < Array.length s.s_counts then acc + s.s_counts.(c.c_id) else acc)
            0 !shards
        in
        (c.c_name, sum))
      !counters
  in
  let gauge_values = List.rev_map (fun g -> (g.g_name, g.g_value)) !gauges in
  let hist_sums =
    List.rev_map
      (fun h ->
        let buckets = Array.make (Array.length h.h_bounds + 1) 0 in
        List.iter
          (fun s ->
            if h.h_id < Array.length s.s_hists then
              let slots = s.s_hists.(h.h_id) in
              Array.iteri (fun i v -> buckets.(i) <- buckets.(i) + v) slots)
          !shards;
        ( h.h_name,
          {
            bounds = Array.copy h.h_bounds;
            buckets;
            total = Array.fold_left ( + ) 0 buckets;
          } ))
      !histograms
  in
  Mutex.unlock mutex;
  { counters = counter_sums; gauges = gauge_values; histograms = hist_sums }

let reset () =
  Mutex.lock mutex;
  List.iter
    (fun s ->
      Array.fill s.s_counts 0 (Array.length s.s_counts) 0;
      Array.iter (fun slots -> Array.fill slots 0 (Array.length slots) 0) s.s_hists)
    !shards;
  List.iter (fun g -> g.g_value <- Float.nan) !gauges;
  Mutex.unlock mutex

let counter_value snap name = List.assoc_opt name snap.counters

(* Rank-based quantile with linear interpolation inside the containing
   bucket.  The first bucket interpolates from 0; the +inf overflow
   bucket is clamped to the last finite bound (the snapshot holds no
   information beyond it). *)
let hist_quantile (h : hist_snapshot) q =
  if h.total = 0 then Float.nan
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = q *. float_of_int h.total in
    let m = Array.length h.bounds in
    let i = ref 0 and cum = ref 0 in
    while !i <= m && float_of_int (!cum + h.buckets.(min !i m)) < rank do
      cum := !cum + h.buckets.(!i);
      incr i
    done;
    if !i >= m then h.bounds.(m - 1)
    else begin
      let lo = if !i = 0 then 0. else h.bounds.(!i - 1) in
      let hi = h.bounds.(!i) in
      let in_bucket = h.buckets.(!i) in
      if in_bucket = 0 then hi
      else
        let frac = (rank -. float_of_int !cum) /. float_of_int in_bucket in
        let frac = if frac < 0. then 0. else if frac > 1. then 1. else frac in
        lo +. (frac *. (hi -. lo))
    end
  end
