(** Minimal JSON values: the one emitter shared by the bench artifact,
    the Chrome trace exporter and the metrics snapshot, plus a parser
    for the same subset so tests can validate emitted files without
    external tools. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed, 2-space indent, trailing newline.  Non-finite
    floats are emitted as [null] (JSON has no NaN/inf). *)

val to_compact : t -> string
(** Single-line rendering with no whitespace and lossless floats (the
    shortest decimal that parses back to the same value), for the
    line-delimited query-plane wire format.  Non-finite floats emit as
    [null], like {!to_string}. *)

val write_file : string -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  Numbers without [.], [e] or
    overflow parse as [Int], others as [Float]. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the value bound to [key]; [None] for
    missing keys and non-objects. *)
