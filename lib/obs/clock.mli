(** Monotonic nanosecond clock.

    The single clock every measured path uses: pool instrumentation,
    span tracing, [Sortlib.Multicore.speedup] and the bench harness.
    Monotonic (NTP slew and wall-clock steps do not affect it), origin
    arbitrary — only differences are meaningful. *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds as a native [int] (63 bits
    holds ~146 years of nanoseconds).  Allocation-free. *)

val now_ns64 : unit -> int64
(** Same instant as a boxed [int64]. *)

val ns_to_s : int -> float
(** Nanoseconds to seconds. *)

val elapsed_s : (unit -> 'a) -> 'a * float
(** [elapsed_s f] runs [f] and returns its result together with the
    elapsed monotonic time in seconds. *)
