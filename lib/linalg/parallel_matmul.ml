module Fbuf = Kernels.Fbuf

[@@@nldl.unsafe_zone
  "multiply validates the matrix dimensions up front; each band's i/k/j loops \
   are clamped to rows/inner/cols, so the blocked kernel stays inside the \
   row-major stores (U-audit 2026-08)"]

let[@nldl.bounds_validated "Matrix.create"] multiply ?domains ?(block = 32) a b =
  if Matrix.cols a <> Matrix.rows b then
    invalid_arg "Parallel_matmul.multiply: inner dimension mismatch";
  if block <= 0 then invalid_arg "Parallel_matmul.multiply: block must be > 0";
  let rows = Matrix.rows a and cols = Matrix.cols b and inner = Matrix.cols a in
  let c = Matrix.create ~rows ~cols in
  (* Dimensions are validated above and every loop below stays inside
     them, so the inner kernel indexes the row-major stores directly. *)
  let ad = Matrix.data a and bd = Matrix.data b and cd = Matrix.data c in
  let band bi =
    (* One contiguous band of [block] result rows, k-tiled.  Bands are
       disjoint in [c], so running them from different domains is
       race-free, and each cell sees the same k-order as the sequential
       loop — identical floats at any domain count. *)
    let i0 = bi * block in
    let i1 = min rows (i0 + block) in
    let k0 = ref 0 in
    while !k0 < inner do
      let k1 = min inner (!k0 + block) in
      for i = i0 to i1 - 1 do
        let abase = i * inner and cbase = i * cols in
        for k = !k0 to k1 - 1 do
          let aik = Fbuf.unsafe_get ad (abase + k) in
          if (aik <> 0.) [@nldl.allow "H302"] (* exact sparse skip *) then begin
            let bbase = k * cols in
            for j = 0 to cols - 1 do
              Fbuf.unsafe_set cd (cbase + j)
                (Fbuf.unsafe_get cd (cbase + j)
                +. (aik *. Fbuf.unsafe_get bd (bbase + j)))
            done
          end
        done
      done;
      k0 := k1
    done
  in
  let bands = (rows + block - 1) / block in
  let d = match domains with Some d -> max 1 d | None -> Exec.Pool.default_domains () in
  if d <= 1 || bands <= 1 then
    for bi = 0 to bands - 1 do
      band bi
    done
  else Exec.Pool.parallel_for ~workers:d (Exec.Pool.get_global ~at_least:d ()) bands band;
  c

let heterogeneous_bands star ~rows =
  Numerics.Apportion.largest_remainder ~weights:(Platform.Star.speeds star) ~total:rows
