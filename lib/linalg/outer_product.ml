[@@@nldl.unsafe_zone
  "distributed runs Zone.validate_tiling and demand_driven_blocks checks the \
   block schedule (n_side divides n, enough owners) before the unchecked rank-1 \
   fill loops over the flat stores (U-audit 2026-08)"]

module Fbuf = Kernels.Fbuf

type stats = { per_worker : int array; total : int; result : Matrix.t }

let sequential a b = Matrix.outer a b

let[@nldl.bounds_validated "Zone.validate_tiling"] distributed ~zones a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Outer_product.distributed: |a| <> |b|";
  (match Zone.validate_tiling ~n zones with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Outer_product.distributed: " ^ msg));
  let result = Matrix.create ~rows:n ~cols:n in
  (* Zones validated above, so the fill loops index the row-major store
     directly — no per-cell bounds check. *)
  let rd = Matrix.data result in
  let per_worker =
    Array.map
      (fun z ->
        (* The worker receives a[row0..row0+rows) and b[col0..col0+cols),
           then fills its zone of the result. *)
        for i = z.Zone.row0 to z.Zone.row0 + z.Zone.rows - 1 do
          let ai = Array.unsafe_get a i in
          let rbase = i * n in
          for j = z.Zone.col0 to z.Zone.col0 + z.Zone.cols - 1 do
            Fbuf.unsafe_set rd (rbase + j) (ai *. Array.unsafe_get b j)
          done
        done;
        Zone.half_perimeter z)
      zones
  in
  { per_worker; total = Array.fold_left ( + ) 0 per_worker; result }

let[@nldl.bounds_validated "Matrix.create"] demand_driven_blocks ?(dedup = false)
    (schedule : Partition.Block_hom.result) ~n_side a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Outer_product.demand_driven_blocks: |a| <> |b|";
  if n_side <= 0 || n mod n_side <> 0 then
    invalid_arg "Outer_product.demand_driven_blocks: n_side must divide |a|";
  let blocks_per_side = n / n_side in
  let blocks = blocks_per_side * blocks_per_side in
  if Array.length schedule.Partition.Block_hom.owners < blocks then
    invalid_arg "Outer_product.demand_driven_blocks: schedule has too few blocks";
  let p = Array.length schedule.Partition.Block_hom.per_worker in
  for block = 0 to blocks - 1 do
    let owner = schedule.Partition.Block_hom.owners.(block) in
    if owner < 0 || owner >= p then
      invalid_arg "Outer_product.demand_driven_blocks: owner out of range"
  done;
  let per_worker = Array.make p 0 in
  let result = Matrix.create ~rows:n ~cols:n in
  (* Per-worker received-slice caches as two flat p×n byte planes (row
     w = worker w's flags) instead of an array of arrays: one flat
     allocation each, same layout convention as the matrices. *)
  let have_a = Bytes.make (p * n) '\000' in
  let have_b = Bytes.make (p * n) '\000' in
  let charge cache worker lo len =
    if dedup then begin
      let base = worker * n in
      let fresh = ref 0 in
      for idx = base + lo to base + lo + len - 1 do
        if Bytes.unsafe_get cache idx = '\000' then begin
          Bytes.unsafe_set cache idx '\001';
          incr fresh
        end
      done;
      !fresh
    end
    else len
  in
  (* Every block lies inside [0, n)² by construction ([n_side] divides
     [n] and [block < blocks_per_side²]), so fill directly. *)
  let rd = Matrix.data result in
  for block = 0 to blocks - 1 do
    let owner = schedule.Partition.Block_hom.owners.(block) in
    let brow = block / blocks_per_side and bcol = block mod blocks_per_side in
    let row0 = brow * n_side and col0 = bcol * n_side in
    per_worker.(owner) <-
      per_worker.(owner)
      + charge have_a owner row0 n_side
      + charge have_b owner col0 n_side;
    for i = row0 to row0 + n_side - 1 do
      let ai = Array.unsafe_get a i in
      let rbase = i * n in
      for j = col0 to col0 + n_side - 1 do
        Fbuf.unsafe_set rd (rbase + j) (ai *. Array.unsafe_get b j)
      done
    done
  done;
  { per_worker; total = Array.fold_left ( + ) 0 per_worker; result }
