let schoolbook a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Poly.schoolbook: empty polynomial";
  let result = Array.make (na + nb - 1) 0. in
  for i = 0 to na - 1 do
    let ai = a.(i) in
    if (ai <> 0.) [@nldl.allow "H302"] (* exact sparse skip *) then
      for j = 0 to nb - 1 do
        result.(i + j) <- result.(i + j) +. (ai *. b.(j))
      done
  done;
  result

let add_into target offset source =
  Array.iteri (fun i v -> target.(offset + i) <- target.(offset + i) +. v) source

let rec karatsuba ?(cutoff = 32) a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Poly.karatsuba: empty polynomial";
  if na <= cutoff || nb <= cutoff || na <> nb then schoolbook a b
  else begin
    let half = na / 2 in
    let a_low = Array.sub a 0 half and a_high = Array.sub a half (na - half) in
    let b_low = Array.sub b 0 half and b_high = Array.sub b half (nb - half) in
    let low = karatsuba ~cutoff a_low b_low in
    let high = karatsuba ~cutoff a_high b_high in
    (* (a_low + a_high)(b_low + b_high); pad the shorter halves. *)
    let width = max (Array.length a_low) (Array.length a_high) in
    let padded part = Array.init width (fun i -> if i < Array.length part then part.(i) else 0.) in
    let a_sum = Array.map2 ( +. ) (padded a_low) (padded a_high) in
    let b_sum = Array.map2 ( +. ) (padded b_low) (padded b_high) in
    let middle = karatsuba ~cutoff a_sum b_sum in
    let result = Array.make (na + nb - 1) 0. in
    add_into result 0 low;
    add_into result (2 * half) high;
    let cross = Array.copy middle in
    (* cross = middle - low - high, aligned at [half]. *)
    Array.iteri (fun i v -> if i < Array.length cross then cross.(i) <- cross.(i) -. v) low;
    Array.iteri (fun i v -> if i < Array.length cross then cross.(i) <- cross.(i) -. v) high;
    add_into result half cross;
    result
  end

type stats = { per_worker : int array; total : int; result : float array }

let distributed ~zones a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Poly.distributed: |a| <> |b|";
  (match Zone.validate_tiling ~n zones with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Poly.distributed: " ^ msg));
  let result = Array.make ((2 * n) - 1) 0. in
  let per_worker =
    Array.map
      (fun z ->
        (* The worker receives a[row0..) and b[col0..) slices and
           contributes the partial coefficient sums of its zone. *)
        for i = z.Zone.row0 to z.Zone.row0 + z.Zone.rows - 1 do
          for j = z.Zone.col0 to z.Zone.col0 + z.Zone.cols - 1 do
            result.(i + j) <- result.(i + j) +. (a.(i) *. b.(j))
          done
        done;
        Zone.half_perimeter z)
      zones
  in
  { per_worker; total = Array.fold_left ( + ) 0 per_worker; result }
