(* Strassen's seven-multiplication recursion.  The quadrant extraction
   and reassembly work by row blits over the flat Fbuf stores (one
   [Fbuf.blit] per row instead of a closure call per cell), with
   out-of-range rows/columns of an odd-sized matrix zero-padded by the
   zero-filled [Matrix.create]. *)

module Fbuf = Kernels.Fbuf

let quadrant m ~half ~qi ~qj =
  let q = Matrix.create ~rows:half ~cols:half in
  let src = Matrix.data m and dst = Matrix.data q in
  let src_cols = Matrix.cols m in
  let rows_avail = min half (Matrix.rows m - (qi * half)) in
  let cols_avail = min half (src_cols - (qj * half)) in
  for i = 0 to rows_avail - 1 do
    Fbuf.blit ~src
      ~src_pos:(((qi * half) + i) * src_cols + (qj * half))
      ~dst ~dst_pos:(i * half) ~len:cols_avail
  done;
  q

let assemble ~n ~half c11 c12 c21 c22 =
  let out = Matrix.create ~rows:n ~cols:n in
  let dst = Matrix.data out in
  let place q ~qi ~qj =
    let src = Matrix.data q in
    for i = 0 to half - 1 do
      Fbuf.blit ~src ~src_pos:(i * half) ~dst
        ~dst_pos:((((qi * half) + i) * n) + (qj * half))
        ~len:half
    done
  in
  place c11 ~qi:0 ~qj:0;
  place c12 ~qi:0 ~qj:1;
  place c21 ~qi:1 ~qj:0;
  place c22 ~qi:1 ~qj:1;
  out

(* Top-left n×n corner of a (possibly padded) larger matrix. *)
let corner m ~n =
  let out = Matrix.create ~rows:n ~cols:n in
  let src = Matrix.data m and dst = Matrix.data out in
  let src_cols = Matrix.cols m in
  for i = 0 to n - 1 do
    Fbuf.blit ~src ~src_pos:(i * src_cols) ~dst ~dst_pos:(i * n) ~len:n
  done;
  out

let rec multiply ?(cutoff = 64) a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n || Matrix.rows b <> n || Matrix.cols b <> n then
    invalid_arg "Strassen.multiply: square matrices of equal size required";
  if n <= cutoff then Matrix.mul_blocked a b
  else begin
    let half = (n + 1) / 2 in
    let a11 = quadrant a ~half ~qi:0 ~qj:0 and a12 = quadrant a ~half ~qi:0 ~qj:1 in
    let a21 = quadrant a ~half ~qi:1 ~qj:0 and a22 = quadrant a ~half ~qi:1 ~qj:1 in
    let b11 = quadrant b ~half ~qi:0 ~qj:0 and b12 = quadrant b ~half ~qi:0 ~qj:1 in
    let b21 = quadrant b ~half ~qi:1 ~qj:0 and b22 = quadrant b ~half ~qi:1 ~qj:1 in
    let mul = multiply ~cutoff in
    let m1 = mul (Matrix.add a11 a22) (Matrix.add b11 b22) in
    let m2 = mul (Matrix.add a21 a22) b11 in
    let m3 = mul a11 (Matrix.sub b12 b22) in
    let m4 = mul a22 (Matrix.sub b21 b11) in
    let m5 = mul (Matrix.add a11 a12) b22 in
    let m6 = mul (Matrix.sub a21 a11) (Matrix.add b11 b12) in
    let m7 = mul (Matrix.sub a12 a22) (Matrix.add b21 b22) in
    let c11 = Matrix.add (Matrix.sub (Matrix.add m1 m4) m5) m7 in
    let c12 = Matrix.add m3 m5 in
    let c21 = Matrix.add m2 m4 in
    let c22 = Matrix.add (Matrix.add (Matrix.sub m1 m2) m3) m6 in
    let padded = assemble ~n:(2 * half) ~half c11 c12 c21 c22 in
    if 2 * half = n then padded else corner padded ~n
  end

let rec operation_count ~n ~cutoff =
  if n <= cutoff then float_of_int n ** 3.
  else 7. *. operation_count ~n:((n + 1) / 2) ~cutoff
