(** Dense row-major float matrices — the substrate for the outer-product
    and matrix-multiplication experiments of Section 4. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled.  Raises [Invalid_argument] on non-positive dims. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val identity : int -> t
val random : Numerics.Rng.t -> rows:int -> cols:int -> t
(** Entries uniform in [\[-1, 1)]. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val data : t -> float array
(** The row-major backing store (length [rows * cols]; element [(i, j)]
    at index [i * cols + j]), shared with the matrix — writes are
    visible.  Exposed for the zero-allocation inner loops
    ([Matmul.distributed], [Outer_product], [Parallel_matmul]) that
    validate their index ranges once up front instead of paying
    {!get}/{!set} bounds checks per flop. *)

val copy : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val transpose : t -> t

val mul : t -> t -> t
(** Naive triple loop, [i k j] order for cache friendliness. *)

val mul_blocked : ?block:int -> t -> t -> t
(** Tiled multiplication (default tile 32). *)

val outer : float array -> float array -> t
(** [outer a b] is the [|a| × |b|] matrix of all products [a_i·b_j]
    (Section 4.1). *)

val frobenius : t -> float
val max_abs_diff : t -> t -> float
val approx_equal : ?tol:float -> t -> t -> bool
(** Max-norm comparison with tolerance [tol] (default 1e-9) scaled by
    the magnitude of the entries. *)

val pp : Format.formatter -> t -> unit
