(** Dense row-major float matrices — the substrate for the outer-product
    and matrix-multiplication experiments of Section 4.

    Backed by a flat {!Kernels.Fbuf} (Bigarray float64) buffer: the
    payload lives outside the OCaml heap, so creating and dropping
    matrices costs the GC a custom-block header rather than
    [rows * cols] heap words, and the distributed kernels run
    GC-silent. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled.  Raises [Invalid_argument] on non-positive dims. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val identity : int -> t
val random : Numerics.Rng.t -> rows:int -> cols:int -> t
(** Entries uniform in [\[-1, 1)]. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val data : t -> Kernels.Fbuf.t
(** The row-major backing buffer (length [rows * cols]; element [(i, j)]
    at offset [i * cols + j]), shared with the matrix — writes are
    visible.  Exposed for the zero-allocation inner loops
    ([Matmul.distributed], [Outer_product], [Parallel_matmul], [Summa])
    that validate their index ranges once up front instead of paying
    {!get}/{!set} bounds checks per flop. *)

val copy : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val transpose : t -> t

val mul : t -> t -> t
(** Naive triple loop, [i k j] order for cache friendliness. *)

val mul_blocked : ?block:int -> t -> t -> t
(** Tiled multiplication (default tile 32).  Cell [(i, j)] accumulates
    over [k] ascending, exactly like {!mul}, so the two are
    bit-identical. *)

val outer : float array -> float array -> t
(** [outer a b] is the [|a| × |b|] matrix of all products [a_i·b_j]
    (Section 4.1). *)

val frobenius : t -> float
val max_abs_diff : t -> t -> float
val approx_equal : ?tol:float -> t -> t -> bool
(** Max-norm comparison with tolerance [tol] (default 1e-9) scaled by
    the magnitude of the entries. *)

val equal : t -> t -> bool
(** Bitwise equality (dimensions plus {!Kernels.Fbuf.equal} on the
    backing buffers) — the byte-identity predicate of the kernel
    tests. *)

val pp : Format.formatter -> t -> unit
