[@@@nldl.unsafe_zone
  "distributed runs Zone.validate_tiling (every zone inside [0, n) x [0, n)) \
   before the unchecked rank-1 update loops over the row-major stores \
   (U-audit 2026-08)"]

type stats = { per_worker : int array; total : int; result : Matrix.t }

let[@nldl.bounds_validated "Zone.validate_tiling"] distributed ~zones a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n || Matrix.rows b <> n || Matrix.cols b <> n then
    invalid_arg "Matmul.distributed: square n x n matrices required";
  (match Zone.validate_tiling ~n zones with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Matmul.distributed: " ^ msg));
  let result = Matrix.create ~rows:n ~cols:n in
  let per_worker = Array.make (Array.length zones) 0 in
  (* The tiling was validated above (every zone inside [0, n)²), so the
     rank-1 inner loops index the row-major stores directly instead of
     paying a [Matrix.get]/[set] bounds check per flop. *)
  let ad = Matrix.data a and bd = Matrix.data b and rd = Matrix.data result in
  (* Step k: rank-1 update with column k of A and row k of B.  Each
     worker applies the update to its own zone using only the slices it
     received, which we charge as communication.  Plain [for] over the
     zones (not [Array.iteri]) so no closure is allocated per step; each
     result cell still accumulates over [k] ascending, so the output is
     bit-identical to the sequential triple loop. *)
  for k = 0 to n - 1 do
    let bbase = k * n in
    for w = 0 to Array.length zones - 1 do
      let z = Array.unsafe_get zones w in
      per_worker.(w) <- per_worker.(w) + Zone.half_perimeter z;
      for i = z.Zone.row0 to z.Zone.row0 + z.Zone.rows - 1 do
        let aik = Kernels.Fbuf.unsafe_get ad ((i * n) + k) in
        if (aik <> 0.) [@nldl.allow "H302"] (* exact sparse skip *) then begin
          let rbase = i * n in
          for j = z.Zone.col0 to z.Zone.col0 + z.Zone.cols - 1 do
            Kernels.Fbuf.unsafe_set rd (rbase + j)
              (Kernels.Fbuf.unsafe_get rd (rbase + j)
              +. (aik *. Kernels.Fbuf.unsafe_get bd (bbase + j)))
          done
        end
      done
    done
  done;
  { per_worker; total = Array.fold_left ( + ) 0 per_worker; result }

let predicted_communication ~zones ~n = n * Zone.half_perimeter_sum zones

let lower_bound_communication star ~n =
  float_of_int n *. Partition.Lower_bound.communication star ~n:(float_of_int n)
