(* Dense row-major matrices on a flat Bigarray buffer (Kernels.Fbuf).

   The payload lives outside the OCaml heap: creating a result matrix
   costs the GC a custom-block header instead of [rows * cols]
   major-heap words, so the matmul/outer-product kernels allocate O(1)
   GC words per call.  [data] exposes the backing buffer for the audited
   unsafe zones (Matmul, Outer_product, Parallel_matmul, Summa) that
   validate their index ranges once up front. *)

[@@@nldl.unsafe_zone
  "the fused map2/scale/mul/mul_blocked/outer loops run over dimensions \
   validated at entry (equal lengths, inner-dimension match), so the unchecked \
   Fbuf accesses stay inside the row-major stores (U-audit 2026-08)"]

module Fbuf = Kernels.Fbuf

type t = { rows : int; cols : int; data : Fbuf.t }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimensions";
  { rows; cols; data = Fbuf.create (rows * cols) }

(* The flat stores below hold exactly rows*cols floats by construction
   ([create] / local [Fbuf.create]), and every [i*cols + j] offset stays
   under that product because i/j are loop-bounded by the same dims. *)
let[@nldl.bounds_validated "Matrix.create"] init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Fbuf.unsafe_set m.data ((i * cols) + j) (f i j)
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let random rng ~rows ~cols =
  init ~rows ~cols (fun _ _ -> Numerics.Rng.uniform rng (-1.) 1.)

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.get: out of bounds";
  Fbuf.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.set: out of bounds";
  Fbuf.unsafe_set m.data ((i * m.cols) + j) v

let data m = m.data
let copy m = { m with data = Fbuf.copy m.data }

let map2 op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix: dimension mismatch";
  (* Hot path under [add]/[sub] in the LU/Cholesky benches: a direct
     fused loop instead of a closure per element through [Array.init]. *)
  let ad = a.data and bd = b.data in
  let n = Fbuf.length ad in
  let data = Fbuf.create n in
  for i = 0 to n - 1 do
    Fbuf.unsafe_set data i (op (Fbuf.unsafe_get ad i) (Fbuf.unsafe_get bd i))
  done;
  { a with data }

let add = map2 ( +. )
let sub = map2 ( -. )

let scale s m =
  (* Same fused-loop treatment as [map2]: no closure per element. *)
  let src = m.data in
  let n = Fbuf.length src in
  let data = Fbuf.create n in
  for i = 0 to n - 1 do
    Fbuf.unsafe_set data i (s *. Fbuf.unsafe_get src i)
  done;
  { m with data }

let[@nldl.bounds_validated "Fbuf.create"] transpose m =
  let rows = m.cols and cols = m.rows in
  let src = m.data in
  let data = Fbuf.create (rows * cols) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Fbuf.unsafe_set data ((i * cols) + j) (Fbuf.unsafe_get src ((j * m.cols) + i))
    done
  done;
  { rows; cols; data }

let[@nldl.bounds_validated "Matrix.create"] mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: inner dimension mismatch";
  let c = create ~rows:a.rows ~cols:b.cols in
  let ad = a.data and bd = b.data and cd = c.data in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = Fbuf.unsafe_get ad ((i * a.cols) + k) in
      if (aik <> 0.) [@nldl.allow "H302"] (* exact sparse skip *) then
        for j = 0 to b.cols - 1 do
          Fbuf.unsafe_set cd ((i * c.cols) + j)
            (Fbuf.unsafe_get cd ((i * c.cols) + j) +. (aik *. Fbuf.unsafe_get bd ((k * b.cols) + j)))
        done
    done
  done;
  c

let mul_blocked ?(block = 32) a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul_blocked: inner dimension mismatch";
  if block <= 0 then invalid_arg "Matrix.mul_blocked: block must be > 0";
  let c = create ~rows:a.rows ~cols:b.cols in
  let n = a.rows and m = b.cols and kk = a.cols in
  let ad = a.data and bd = b.data and cd = c.data in
  let bi = ref 0 in
  while !bi < n do
    let i_hi = min n (!bi + block) in
    let bk = ref 0 in
    while !bk < kk do
      let k_hi = min kk (!bk + block) in
      let bj = ref 0 in
      while !bj < m do
        let j_hi = min m (!bj + block) in
        for i = !bi to i_hi - 1 do
          for k = !bk to k_hi - 1 do
            let aik = Fbuf.unsafe_get ad ((i * kk) + k) in
            if (aik <> 0.) [@nldl.allow "H302"] (* exact sparse skip *) then
              for j = !bj to j_hi - 1 do
                Fbuf.unsafe_set cd ((i * m) + j)
                  (Fbuf.unsafe_get cd ((i * m) + j) +. (aik *. Fbuf.unsafe_get bd ((k * m) + j)))
              done
          done
        done;
        bj := j_hi
      done;
      bk := k_hi
    done;
    bi := i_hi
  done;
  c

let[@nldl.bounds_validated "Fbuf.create"] outer a b =
  let rows = Array.length a and cols = Array.length b in
  if rows = 0 || cols = 0 then invalid_arg "Matrix.outer: empty vector";
  let data = Fbuf.create (rows * cols) in
  for i = 0 to rows - 1 do
    let ai = Array.unsafe_get a i in
    let base = i * cols in
    for j = 0 to cols - 1 do
      Fbuf.unsafe_set data (base + j) (ai *. Array.unsafe_get b j)
    done
  done;
  { rows; cols; data }

let frobenius m =
  let acc = Numerics.Kahan.create () in
  let d = m.data in
  for i = 0 to Fbuf.length d - 1 do
    let x = Fbuf.unsafe_get d i in
    Numerics.Kahan.add acc (x *. x)
  done;
  sqrt (Numerics.Kahan.total acc)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.max_abs_diff: dimension mismatch";
  let ad = a.data and bd = b.data in
  let worst = ref 0. in
  for i = 0 to Fbuf.length ad - 1 do
    let d = Float.abs (Fbuf.unsafe_get ad i -. Fbuf.unsafe_get bd i) in
    if d > !worst then worst := d
  done;
  !worst

let approx_equal ?(tol = 1e-9) a b =
  let magnitude = Float.max (frobenius a) (frobenius b) in
  max_abs_diff a b <= tol *. (1. +. magnitude)

let equal a b = a.rows = b.rows && a.cols = b.cols && Fbuf.equal a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to min (m.rows - 1) 9 do
    Format.fprintf ppf "[";
    for j = 0 to min (m.cols - 1) 9 do
      Format.fprintf ppf "%8.3g " (get m i j)
    done;
    if m.cols > 10 then Format.fprintf ppf "...";
    Format.fprintf ppf "]@,"
  done;
  if m.rows > 10 then Format.fprintf ppf "...@,";
  Format.fprintf ppf "@]"
