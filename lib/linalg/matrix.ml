type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimensions";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let random rng ~rows ~cols =
  init ~rows ~cols (fun _ _ -> Numerics.Rng.uniform rng (-1.) 1.)

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.set: out of bounds";
  m.data.((i * m.cols) + j) <- v

let data m = m.data
let copy m = { m with data = Array.copy m.data }

let map2 op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix: dimension mismatch";
  (* Hot path under [add]/[sub] in the LU/Cholesky benches: a direct
     fused loop instead of a closure per element through [Array.init]. *)
  let ad = a.data and bd = b.data in
  let n = Array.length ad in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    data.(i) <- op ad.(i) bd.(i)
  done;
  { a with data }

let add = map2 ( +. )
let sub = map2 ( -. )

let scale s m =
  (* Same fused-loop treatment as [map2]: no closure per element. *)
  let src = m.data in
  let n = Array.length src in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    data.(i) <- s *. src.(i)
  done;
  { m with data }

let transpose m =
  let rows = m.cols and cols = m.rows in
  let src = m.data in
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- src.((j * m.cols) + i)
    done
  done;
  { rows; cols; data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: inner dimension mismatch";
  let c = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if (aik <> 0.) [@nldl.allow "H302"] (* exact sparse skip *) then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_blocked ?(block = 32) a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul_blocked: inner dimension mismatch";
  if block <= 0 then invalid_arg "Matrix.mul_blocked: block must be > 0";
  let c = create ~rows:a.rows ~cols:b.cols in
  let n = a.rows and m = b.cols and kk = a.cols in
  let bi = ref 0 in
  while !bi < n do
    let i_hi = min n (!bi + block) in
    let bk = ref 0 in
    while !bk < kk do
      let k_hi = min kk (!bk + block) in
      let bj = ref 0 in
      while !bj < m do
        let j_hi = min m (!bj + block) in
        for i = !bi to i_hi - 1 do
          for k = !bk to k_hi - 1 do
            let aik = a.data.((i * kk) + k) in
            if (aik <> 0.) [@nldl.allow "H302"] (* exact sparse skip *) then
              for j = !bj to j_hi - 1 do
                c.data.((i * m) + j) <- c.data.((i * m) + j) +. (aik *. b.data.((k * m) + j))
              done
          done
        done;
        bj := j_hi
      done;
      bk := k_hi
    done;
    bi := i_hi
  done;
  c

let outer a b =
  let rows = Array.length a and cols = Array.length b in
  if rows = 0 || cols = 0 then invalid_arg "Matrix.outer: empty vector";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    let ai = a.(i) in
    let base = i * cols in
    for j = 0 to cols - 1 do
      data.(base + j) <- ai *. b.(j)
    done
  done;
  { rows; cols; data }

let frobenius m = sqrt (Numerics.Kahan.sum_by (fun x -> x *. x) m.data)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.max_abs_diff: dimension mismatch";
  let worst = ref 0. in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. b.data.(i)) in
      if d > !worst then worst := d)
    a.data;
  !worst

let approx_equal ?(tol = 1e-9) a b =
  let magnitude = Float.max (frobenius a) (frobenius b) in
  max_abs_diff a b <= tol *. (1. +. magnitude)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to min (m.rows - 1) 9 do
    Format.fprintf ppf "[";
    for j = 0 to min (m.cols - 1) 9 do
      Format.fprintf ppf "%8.3g " m.data.((i * m.cols) + j)
    done;
    if m.cols > 10 then Format.fprintf ppf "...";
    Format.fprintf ppf "]@,"
  done;
  if m.rows > 10 then Format.fprintf ppf "...@,";
  Format.fprintf ppf "@]"
