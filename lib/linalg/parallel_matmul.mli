(** Shared-memory parallel matrix multiplication over OCaml 5 domains:
    the result rows are partitioned into contiguous bands of [block]
    rows, dispatched over the persistent {!Exec.Pool} — the same
    row-band decomposition the DLT image workload uses, but executed on
    real cores with the cache-blocked inner kernel. *)

val multiply : ?domains:int -> ?block:int -> Matrix.t -> Matrix.t -> Matrix.t
(** Same result as {!Matrix.mul} (identical floats at any domain count:
    each output cell is accumulated by exactly one domain, in the same
    k-order).  [domains] defaults to the recommended domain count;
    [block] (default 32, must be positive) is both the row-band height
    handed to the pool and the k-tile depth of the blocked kernel. *)

val heterogeneous_bands :
  Platform.Star.t -> rows:int -> int array
(** Row counts proportional to worker speeds (largest remainder): how a
    heterogeneity-aware runtime would cut the band work; exposed for
    the examples and tests. *)
