[@@@nldl.unsafe_zone
  "distributed validates the grid tiling (Zone.validate_tiling over [0, n)²) \
   and clamps every panel to [0, n) before the unchecked panel-update loops \
   over the flat stores (U-audit 2026-08)"]

module Fbuf = Kernels.Fbuf

type stats = { result : Matrix.t; words : int; messages : int; steps : int }

let grid_zones ~grid_rows ~grid_cols ~n =
  let rows = Numerics.Apportion.largest_remainder ~weights:(Array.make grid_rows 1.) ~total:n in
  let cols = Numerics.Apportion.largest_remainder ~weights:(Array.make grid_cols 1.) ~total:n in
  let zones = ref [] in
  let row0 = ref 0 in
  Array.iter
    (fun h ->
      let col0 = ref 0 in
      Array.iter
        (fun w ->
          zones := { Zone.row0 = !row0; rows = h; col0 = !col0; cols = w } :: !zones;
          col0 := !col0 + w)
        cols;
      row0 := !row0 + h)
    rows;
  Array.of_list (List.rev !zones)

let[@nldl.bounds_validated "Zone.validate_tiling"] distributed ~grid_rows
    ~grid_cols ~panel a b =
  if grid_rows <= 0 || grid_cols <= 0 then invalid_arg "Summa.distributed: bad grid";
  let n = Matrix.rows a in
  if Matrix.cols a <> n || Matrix.rows b <> n || Matrix.cols b <> n then
    invalid_arg "Summa.distributed: square n x n matrices required";
  if panel < 1 || panel > n then invalid_arg "Summa.distributed: panel out of range";
  let zones = grid_zones ~grid_rows ~grid_cols ~n in
  (match Zone.validate_tiling ~n zones with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Summa.distributed: " ^ msg));
  let result = Matrix.create ~rows:n ~cols:n in
  (* Tiling validated above and panels clamped to [0, n), so the update
     loops index the flat row-major stores directly — no per-flop
     bounds check, no closure per panel.  Each result cell accumulates
     over [k] ascending (panels in order, [k] ascending within each), so
     the output is bit-identical to [Matrix.mul]. *)
  let ad = Matrix.data a and bd = Matrix.data b and rd = Matrix.data result in
  let words = ref 0 and messages = ref 0 and steps = ref 0 in
  let k0 = ref 0 in
  while !k0 < n do
    let width = min panel (n - !k0) in
    let k_hi = !k0 + width in
    incr steps;
    for w = 0 to Array.length zones - 1 do
      let z = Array.unsafe_get zones w in
      (* Receive the A panel slice (rows × width) and B panel slice
         (width × cols) for this step: 2 messages. *)
      words := !words + (width * Zone.half_perimeter z);
      messages := !messages + 2;
      for i = z.Zone.row0 to z.Zone.row0 + z.Zone.rows - 1 do
        let abase = i * n and rbase = i * n in
        for k = !k0 to k_hi - 1 do
          let aik = Fbuf.unsafe_get ad (abase + k) in
          if (aik <> 0.) [@nldl.allow "H302"] (* exact sparse skip *) then begin
            let bbase = k * n in
            for j = z.Zone.col0 to z.Zone.col0 + z.Zone.cols - 1 do
              Fbuf.unsafe_set rd (rbase + j)
                (Fbuf.unsafe_get rd (rbase + j) +. (aik *. Fbuf.unsafe_get bd (bbase + j)))
            done
          end
        done
      done
    done;
    k0 := k_hi
  done;
  { result; words = !words; messages = !messages; steps = !steps }

let word_volume ~grid_rows ~grid_cols ~n =
  let zones = grid_zones ~grid_rows ~grid_cols ~n in
  n * Zone.half_perimeter_sum zones

let message_count ~grid_rows ~grid_cols ~n ~panel =
  2 * grid_rows * grid_cols * ((n + panel - 1) / panel)
