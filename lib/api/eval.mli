(** Request evaluation: the one place that dispatches a query to the
    DLT solvers.  The CLI one-shot path, the serve daemon and the bench
    serve-throughput section all call {!eval}, which is what makes
    their answers byte-identical. *)

val solver_name : Request.t -> string
(** Which solver {!eval} will use: ["dlt.linear"] (closed form),
    ["dlt.nonlinear.bisection"], or ["dlt.steady_state"] for
    multi-load admission. *)

val eval : Request.t -> Response.t
(** Validate and answer.  Invalid requests yield an [Error] body with
    code ["invalid_request"] rather than raising. *)

val eval_line : string -> Response.t
(** Parse one wire line and {!eval} it; malformed JSON yields an
    [Error] body with code ["bad_request"]. *)
