module Json = Obs.Json

type platform =
  | Speeds of float array
  | Profile of { name : string; p : int; seed : int }

type kind = Schedule | Ratio | Plan | Multi_load of float array

type t = {
  platform : platform;
  bandwidth : float;
  latency : float;
  workload : Dlt.Cost_model.t;
  comm_model : Dlt.Schedule.comm_model;
  total : float;
  kind : kind;
}

let schema_version = 1
let default_seed = 20130520

(* --- validation --------------------------------------------------------- *)

let positive_finite what v =
  if Float.is_finite v && v > 0. then Ok ()
  else Error (Printf.sprintf "%s must be finite and positive, got %h" what v)

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    match t.platform with
    | Speeds [||] -> Error "platform.speeds must not be empty"
    | Speeds speeds ->
        let bad = ref None in
        Array.iteri
          (fun i s ->
            if !bad = None && not (Float.is_finite s && s > 0.) then bad := Some (i, s))
          speeds;
        (match !bad with
        | None -> Ok ()
        | Some (i, s) ->
            Error (Printf.sprintf "platform.speeds[%d] must be finite and positive, got %h" i s))
    | Profile { name; p; seed = _ } ->
        if p <= 0 then Error (Printf.sprintf "platform.p must be positive, got %d" p)
        else if Platform.Profiles.of_name name = None then
          Error (Printf.sprintf "unknown profile %S" name)
        else Ok ()
  in
  let* () = positive_finite "bandwidth" t.bandwidth in
  let* () =
    if Float.is_finite t.latency && t.latency >= 0. then Ok ()
    else Error (Printf.sprintf "latency must be finite and non-negative, got %h" t.latency)
  in
  let* () =
    match t.workload with
    | Dlt.Cost_model.Power alpha when not (Float.is_finite alpha && alpha >= 1.) ->
        Error (Printf.sprintf "workload.power must be finite and >= 1, got %h" alpha)
    | _ -> Ok ()
  in
  match t.kind with
  | Multi_load [||] -> Error "loads must not be empty"
  | Multi_load loads ->
      let bad = ref None in
      Array.iteri
        (fun i l ->
          if !bad = None && not (Float.is_finite l && l > 0.) then bad := Some (i, l))
        loads;
      (match !bad with
      | None -> Ok ()
      | Some (i, l) ->
          Error (Printf.sprintf "loads[%d] must be finite and positive, got %h" i l))
  | Schedule | Ratio | Plan -> positive_finite "total" t.total

let make ?(bandwidth = 1.) ?(latency = 0.) ?(workload = Dlt.Cost_model.Linear)
    ?(comm_model = Dlt.Schedule.Parallel) ?(total = 1.) ~platform ~kind () =
  let t = { platform; bandwidth; latency; workload; comm_model; total; kind } in
  match validate t with Ok () -> Ok t | Error e -> Error e

let star t =
  match t.platform with
  | Speeds speeds ->
      Platform.Star.of_speeds ~bandwidth:t.bandwidth ~latency:t.latency
        (Array.to_list speeds)
  | Profile { name; p; seed } ->
      let profile =
        match Platform.Profiles.of_name name with
        | Some p -> p
        | None -> invalid_arg (Printf.sprintf "Request.star: unknown profile %S" name)
      in
      Platform.Profiles.generate ~bandwidth:t.bandwidth ~latency:t.latency
        (Numerics.Rng.create ~seed ())
        ~p profile

(* --- JSON codec --------------------------------------------------------- *)

let kind_name = function
  | Schedule -> "schedule"
  | Ratio -> "ratio"
  | Plan -> "plan"
  | Multi_load _ -> "multi_load"

let workload_json = function
  | Dlt.Cost_model.Linear -> Json.String "linear"
  | Dlt.Cost_model.N_log_n -> Json.String "nlogn"
  | Dlt.Cost_model.Power alpha -> Json.Obj [ ("power", Json.Float alpha) ]

let comm_model_name = function
  | Dlt.Schedule.Parallel -> "parallel"
  | Dlt.Schedule.One_port -> "one_port"

let floats_json a = Json.List (Array.to_list (Array.map (fun f -> Json.Float f) a))

let platform_json = function
  | Speeds speeds -> Json.Obj [ ("speeds", floats_json speeds) ]
  | Profile { name; p; seed } ->
      Json.Obj
        [ ("profile", Json.String name); ("p", Json.Int p); ("seed", Json.Int seed) ]

let to_json t =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("kind", Json.String (kind_name t.kind));
       ("platform", platform_json t.platform);
       ("bandwidth", Json.Float t.bandwidth);
       ("latency", Json.Float t.latency);
       ("workload", workload_json t.workload);
       ("comm_model", Json.String (comm_model_name t.comm_model));
     ]
    @
    match t.kind with
    | Multi_load loads -> [ ("loads", floats_json loads) ]
    | Schedule | Ratio | Plan -> [ ("total", Json.Float t.total) ])

(* Strict field-by-field decoding: every consumed key is checked off,
   and leftovers are reported by name, so a typoed option can never be
   silently defaulted. *)

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let float_list what j =
  match j with
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | item :: rest -> (
            match number item with
            | Some f -> go (f :: acc) rest
            | None -> Error (Printf.sprintf "%s must contain only numbers" what))
      in
      go [] items
  | _ -> Error (Printf.sprintf "%s must be a list of numbers" what)

let of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.Obj fields ->
      let seen = Hashtbl.create 8 in
      let take key =
        Hashtbl.replace seen key ();
        List.assoc_opt key fields
      in
      let num_field key default =
        match take key with
        | None -> Ok default
        | Some j -> (
            match number j with
            | Some f -> Ok f
            | None -> Error (Printf.sprintf "%s must be a number" key))
      in
      let* () =
        match take "schema_version" with
        | None | Some (Json.Int 1) -> Ok ()
        | Some (Json.Int v) ->
            Error
              (Printf.sprintf "unsupported schema_version %d (this server speaks %d)" v
                 schema_version)
        | Some _ -> Error "schema_version must be an integer"
      in
      let* kind_tag =
        match take "kind" with
        | Some (Json.String s) -> Ok s
        | Some _ -> Error "kind must be a string"
        | None -> Error "missing required field kind"
      in
      let* platform =
        match take "platform" with
        | Some (Json.Obj pf) -> (
            let pseen = Hashtbl.create 4 in
            let ptake key =
              Hashtbl.replace pseen key ();
              List.assoc_opt key pf
            in
            let speeds = ptake "speeds" in
            let profile = ptake "profile" in
            let p = ptake "p" in
            let seed = ptake "seed" in
            let unknown =
              List.filter (fun (k, _) -> not (Hashtbl.mem pseen k)) pf
            in
            match unknown with
            | (k, _) :: _ -> Error (Printf.sprintf "unknown platform field %S" k)
            | [] -> (
                match (speeds, profile) with
                | Some _, Some _ ->
                    Error "platform must give speeds or a profile, not both"
                | Some j, None ->
                    if p <> None || seed <> None then
                      Error "p/seed only apply to profile platforms"
                    else
                      let* arr = float_list "platform.speeds" j in
                      Ok (Speeds arr)
                | None, Some (Json.String name) -> (
                    let* p =
                      match p with
                      | Some (Json.Int p) -> Ok p
                      | Some _ -> Error "platform.p must be an integer"
                      | None -> Error "profile platforms require p"
                    in
                    match seed with
                    | Some (Json.Int seed) -> Ok (Profile { name; p; seed })
                    | None -> Ok (Profile { name; p; seed = default_seed })
                    | Some _ -> Error "platform.seed must be an integer")
                | None, Some _ -> Error "platform.profile must be a string"
                | None, None -> Error "platform must give speeds or a profile"))
        | Some _ -> Error "platform must be an object"
        | None -> Error "missing required field platform"
      in
      let* bandwidth = num_field "bandwidth" 1. in
      let* latency = num_field "latency" 0. in
      let* workload =
        match take "workload" with
        | None | Some (Json.String "linear") -> Ok Dlt.Cost_model.Linear
        | Some (Json.String "nlogn") -> Ok Dlt.Cost_model.N_log_n
        | Some (Json.Obj [ ("power", j) ]) -> (
            match number j with
            | Some alpha -> Ok (Dlt.Cost_model.Power alpha)
            | None -> Error "workload.power must be a number")
        | Some _ -> Error "workload must be \"linear\", \"nlogn\" or {\"power\": A}"
      in
      let* comm_model =
        match take "comm_model" with
        | None | Some (Json.String "parallel") -> Ok Dlt.Schedule.Parallel
        | Some (Json.String "one_port") -> Ok Dlt.Schedule.One_port
        | Some _ -> Error "comm_model must be \"parallel\" or \"one_port\""
      in
      let* total = num_field "total" 1. in
      let loads = take "loads" in
      let* kind =
        match (kind_tag, loads) with
        | "multi_load", Some j ->
            let* arr = float_list "loads" j in
            Ok (Multi_load arr)
        | "multi_load", None -> Error "multi_load requests require loads"
        | _, Some _ -> Error "loads only applies to multi_load requests"
        | "schedule", None -> Ok Schedule
        | "ratio", None -> Ok Ratio
        | "plan", None -> Ok Plan
        | other, None -> Error (Printf.sprintf "unknown kind %S" other)
      in
      let unknown = List.filter (fun (k, _) -> not (Hashtbl.mem seen k)) fields in
      let* () =
        match unknown with
        | [] -> Ok ()
        | (k, _) :: _ -> Error (Printf.sprintf "unknown field %S" k)
      in
      let t = { platform; bandwidth; latency; workload; comm_model; total; kind } in
      let* () = validate t in
      Ok t
  | _ -> Error "request must be a JSON object"

let of_line line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "malformed JSON: %s" e)
  | Ok json -> of_json json
