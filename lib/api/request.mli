(** The typed query plane: what a consumer may ask the scheduling
    service.

    A request names a platform (explicit speeds or a named
    {!Platform.Profiles} draw), a cost model, a communication model and
    a query kind.  The same value drives the one-shot CLI
    ([nldl query --inline]), the [nldl serve] daemon and the bench
    serve-throughput section, so all three answer byte-identically.

    The JSON codec is {e strict}: unknown fields, non-finite or
    non-positive speeds, and malformed workloads are rejected with a
    message rather than defaulted away — a daemon serving many clients
    must not guess. *)

type platform =
  | Speeds of float array
      (** Explicit worker speeds, any order (the platform sorts). *)
  | Profile of { name : string; p : int; seed : int }
      (** A named {!Platform.Profiles} drawn deterministically from
          [seed] for [p] workers. *)

type kind =
  | Schedule  (** full single-round schedule: intervals + makespan *)
  | Ratio  (** no-free-lunch diagnosis: makespan vs ideal, done work *)
  | Plan  (** allocation only: per-worker data amounts and fractions *)
  | Multi_load of float array
      (** steady-state admission of multiple simultaneous loads with
          the given demand rates (Gallet/Robert/Vivien-style) *)

type t = {
  platform : platform;
  bandwidth : float;  (** uniform link bandwidth, > 0 *)
  latency : float;  (** per-message latency, >= 0 *)
  workload : Dlt.Cost_model.t;
  comm_model : Dlt.Schedule.comm_model;
  total : float;  (** load size; > 0 for Schedule/Ratio/Plan, unused for Multi_load *)
  kind : kind;
}

val schema_version : int

val make :
  ?bandwidth:float ->
  ?latency:float ->
  ?workload:Dlt.Cost_model.t ->
  ?comm_model:Dlt.Schedule.comm_model ->
  ?total:float ->
  platform:platform ->
  kind:kind ->
  unit ->
  (t, string) result
(** Build and {!validate} a request.  Defaults: [bandwidth = 1.],
    [latency = 0.], [workload = Linear], [comm_model = Parallel],
    [total = 1.]. *)

val validate : t -> (unit, string) result
(** Reject NaN/infinite/non-positive speeds, empty platforms,
    non-positive [p]/[total], negative latency, non-positive demand
    rates, and unknown profile names. *)

val star : t -> Platform.Star.t
(** Materialize the platform (profile draws are deterministic in the
    request's seed).  The star sorts workers by speed, which is what
    makes permuted-but-equal speed vectors indistinguishable
    downstream.  Call only on validated requests. *)

val to_json : t -> Obs.Json.t
(** Canonical encoding; optional fields are always emitted so the
    encoding of a value is unique. *)

val of_json : Obs.Json.t -> (t, string) result
(** Strict decoding: unknown fields are errors, [schema_version] (if
    present) must match {!schema_version}, and the result is
    {!validate}d. *)

val of_line : string -> (t, string) result
(** Parse one line of the wire protocol. *)
