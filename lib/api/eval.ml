let solver_name (r : Request.t) =
  match r.kind with
  | Request.Multi_load _ -> "dlt.steady_state"
  | Request.Schedule | Request.Ratio | Request.Plan ->
      if Dlt.Cost_model.is_linear r.workload then "dlt.linear"
      else "dlt.nonlinear.bisection"

let allocation (r : Request.t) star =
  if Dlt.Cost_model.is_linear r.workload then
    match r.comm_model with
    | Dlt.Schedule.Parallel ->
        ( Dlt.Linear.parallel_allocation star ~total:r.total,
          Dlt.Linear.parallel_makespan star ~total:r.total )
    | Dlt.Schedule.One_port ->
        ( Dlt.Linear.one_port_allocation star ~total:r.total,
          Dlt.Linear.one_port_makespan star ~total:r.total )
  else Dlt.Nonlinear.equal_finish_allocation r.comm_model star r.workload ~total:r.total

let schedule (r : Request.t) star =
  if Dlt.Cost_model.is_linear r.workload then
    Dlt.Linear.schedule r.comm_model star ~total:r.total
  else Dlt.Nonlinear.schedule r.comm_model star r.workload ~total:r.total

let worker_rows total (s : Dlt.Schedule.t) =
  Array.map
    (fun (e : Dlt.Schedule.entry) ->
      {
        Response.speed = e.proc.Platform.Processor.speed;
        data = e.data;
        fraction = e.data /. total;
        comm_start = e.comm_start;
        comm_end = e.comm_end;
        compute_start = e.compute_start;
        compute_end = e.compute_end;
      })
    s.Dlt.Schedule.entries

let solve (r : Request.t) =
  let provenance = { Response.solver = solver_name r; cache = Response.Uncached } in
  let body =
    match r.kind with
    | Request.Schedule ->
        let s = schedule r (Request.star r) in
        Response.Schedule
          { makespan = s.Dlt.Schedule.makespan; workers = worker_rows r.total s }
    | Request.Ratio ->
        let star = Request.star r in
        let alloc, makespan = allocation r star in
        let ideal = Dlt.Bounds.ideal_makespan star r.workload ~total:r.total in
        Response.Ratio
          {
            makespan;
            ideal;
            ratio = makespan /. ideal;
            done_fraction =
              Dlt.Fraction.done_fraction r.workload ~allocation:alloc ~total:r.total;
          }
    | Request.Plan ->
        let star = Request.star r in
        let alloc, makespan = allocation r star in
        Response.Plan
          {
            makespan;
            allocation = alloc;
            fractions = Array.map (fun n -> n /. r.total) alloc;
          }
    | Request.Multi_load loads ->
        let star = Request.star r in
        let solution =
          match r.comm_model with
          | Dlt.Schedule.Parallel -> Dlt.Steady_state.parallel star
          | Dlt.Schedule.One_port -> Dlt.Steady_state.one_port star
        in
        (* Greedy admission in request order: each load receives as much
           of the remaining steady-state capacity as it asks for. *)
        let capacity = solution.Dlt.Steady_state.throughput in
        let remaining = ref capacity in
        let admitted =
          Array.map
            (fun demand ->
              let granted = Float.min demand !remaining in
              remaining := !remaining -. granted;
              granted)
            loads
        in
        let used = capacity -. !remaining in
        Response.Multi_load
          {
            throughput = capacity;
            rates = solution.Dlt.Steady_state.rates;
            admitted;
            utilization = (if capacity > 0. then used /. capacity else 0.);
          }
  in
  { Response.body; provenance }

let eval r =
  match Request.validate r with
  | Ok () -> solve r
  | Error msg -> Response.error ~solver:"api.validate" ~code:"invalid_request" msg

let eval_line line =
  match Request.of_line line with
  | Ok r -> solve r
  | Error msg -> Response.error ~solver:"api.parse" ~code:"bad_request" msg
