let quantize f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let add_floats buf a =
  Array.iter
    (fun f ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (quantize f))
    a

let of_request (r : Request.t) =
  let star = Request.star r in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "v1";
  Buffer.add_char buf '|';
  (Buffer.add_string buf
  @@
  match r.kind with
  | Request.Schedule -> "schedule"
  | Request.Ratio -> "ratio"
  | Request.Plan -> "plan"
  | Request.Multi_load _ -> "multi_load");
  Buffer.add_char buf '|';
  (Buffer.add_string buf
  @@
  match r.comm_model with Dlt.Schedule.Parallel -> "par" | Dlt.Schedule.One_port -> "1p");
  Buffer.add_char buf '|';
  (match r.workload with
  | Dlt.Cost_model.Linear -> Buffer.add_string buf "lin"
  | Dlt.Cost_model.N_log_n -> Buffer.add_string buf "nlogn"
  | Dlt.Cost_model.Power alpha ->
      Buffer.add_string buf "pow:";
      Buffer.add_string buf (quantize alpha));
  Buffer.add_string buf "|bw:";
  Buffer.add_string buf (quantize r.bandwidth);
  Buffer.add_string buf "|lat:";
  Buffer.add_string buf (quantize r.latency);
  (match r.kind with
  | Request.Multi_load loads ->
      Buffer.add_string buf "|loads:";
      add_floats buf loads
  | Request.Schedule | Request.Ratio | Request.Plan ->
      Buffer.add_string buf "|total:";
      Buffer.add_string buf (quantize r.total));
  Buffer.add_string buf "|speeds:";
  add_floats buf (Platform.Star.speeds star);
  Buffer.contents buf
