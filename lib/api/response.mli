(** The versioned response envelope shared by every JSON-emitting
    surface: [nldl <exp> --json] tables, the [nldl serve] daemon's
    answers, [nldl query --inline], and the bench artifact's header.

    The typed value carries full provenance — which solver produced it,
    whether it came out of the daemon's cache, and the schema version.
    The {e canonical} JSON rendering deliberately omits the cache
    status: responses are pure functions of the request, so a cache hit
    must be byte-identical to a cold solve (that identity is what the
    serve tests assert), and hit/miss accounting is telemetry that
    lives in [Obs.Metrics] and the daemon's [stats] control query
    instead. *)

type cache_status =
  | Hit  (** answered from the daemon's LRU *)
  | Miss  (** solved, then inserted into the LRU *)
  | Uncached  (** one-shot path, no cache involved *)

type provenance = { solver : string; cache : cache_status }

type worker_row = {
  speed : float;
  data : float;  (** data units assigned *)
  fraction : float;  (** data / total *)
  comm_start : float;
  comm_end : float;
  compute_start : float;
  compute_end : float;
}

type body =
  | Schedule of { makespan : float; workers : worker_row array }
  | Ratio of {
      makespan : float;
      ideal : float;  (** perfect-parallelism bound *)
      ratio : float;  (** makespan / ideal *)
      done_fraction : float;  (** fraction of sequential work performed *)
    }
  | Plan of { makespan : float; allocation : float array; fractions : float array }
  | Multi_load of {
      throughput : float;  (** platform steady-state capacity *)
      rates : float array;  (** per-worker steady-state rates *)
      admitted : float array;  (** per-load admitted demand, request order *)
      utilization : float;  (** admitted demand / capacity *)
    }
  | Table of { experiment : string; header : string list; rows : Obs.Json.t }
      (** registry experiment series — the [--json] surface *)
  | Error of { code : string; message : string }
      (** daemon-side rejections (parse, validation, admission) *)

type t = { body : body; provenance : provenance }

val schema_version : int

val error : ?solver:string -> code:string -> string -> t
(** An [Error] response; [solver] defaults to ["serve"]. *)

val is_error : t -> bool

val to_json : t -> Obs.Json.t
(** Canonical envelope: [schema_version], [kind], [provenance.solver],
    then the body fields.  Cache status is not serialized (see above). *)

val to_line : t -> string
(** Compact single-line {!to_json}, the wire format (no newline). *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; the decoded cache status is always
    [Uncached]. *)
